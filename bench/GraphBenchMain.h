//===- bench/GraphBenchMain.h - Shared JGraphT-bench driver ----*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared main() body for the four JGraphT figure benches (Figs. 7-10):
/// generate the synthetic LAW-scale graph once, then per run build its
/// managed representation (shuffled allocation order) and execute the
/// algorithm, end-to-end like the paper's minimal driver.
///
/// Flags: --runs --configs --heap-mb --workers --scale --iters (CC) /
///        --budget (MC) --seed
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_BENCH_GRAPHBENCHMAIN_H
#define HCSGC_BENCH_GRAPHBENCHMAIN_H

#include "harness/Report.h"
#include "support/ArgParse.h"
#include "workloads/GraphAlgos.h"

namespace hcsgc {

enum class GraphAlgo { ConnectedComponents, MaximalCliques };

inline int graphBenchMain(int Argc, char **Argv, const char *Name,
                          GraphSpec Spec, GraphAlgo Algo,
                          size_t DefaultHeapMb, double DefaultScale,
                          uint64_t DefaultItersOrBudget) {
  ArgParse Args(Argc, Argv);

  ExperimentSpec Exp;
  Exp.Name = Name;
  Exp.Runs = 3;
  Exp.BaseConfig = benchBaseConfig(DefaultHeapMb);
  // Graph runs allocate in bursts (loader churn, clique sets) against a
  // modest live set; an earlier trigger and a small hysteresis give the
  // paper's "few cycles, concentrated early" behaviour while leaving
  // RELOCATEALLSMALLPAGES enough headroom.
  Exp.BaseConfig.TriggerFraction = 0.45;
  Exp.BaseConfig.TriggerHysteresisFraction = 0.05;
  // The graphs are scaled down from Table 3; scale the simulated cache
  // hierarchy with them so the working set still exceeds the LLC the way
  // the paper's multi-megabyte graphs exceeded a 4 MiB LLC. The clique
  // benchmarks' inner loops live on the (smaller) vertex/neighbor-id set,
  // so their caches scale further.
  bool McAlgo = Algo == GraphAlgo::MaximalCliques;
  Exp.BaseConfig.Cache.L1Size = McAlgo ? 8 * 1024 : 16 * 1024;
  Exp.BaseConfig.Cache.L2Size = McAlgo ? 32 * 1024 : 64 * 1024;
  Exp.BaseConfig.Cache.L3Size = McAlgo ? 256 * 1024 : 512 * 1024;
  applyCommonFlags(Args, Exp);

  double Scale = Args.getDouble("scale", DefaultScale);
  Spec = scaleSpec(Spec, Scale);
  Spec.Seed = static_cast<uint64_t>(Args.getInt("seed", Spec.Seed));
  CsrGraph Csr = generateWebGraph(Spec);
  std::fprintf(stderr, "%s: graph nodes=%zu edges=%zu (scale %.2f)\n",
               Name, Csr.N, Csr.edgeCount(), Scale);

  bool Mc = McAlgo;
  uint64_t Iters = static_cast<uint64_t>(
      Args.getInt(Mc ? "budget" : "iters", DefaultItersOrBudget));

  Exp.Body = [&Csr, Mc, Iters](Mutator &M, RunMeasurement &) -> uint64_t {
    ManagedGraph G(M, Csr, /*ShuffleSeed=*/0x5eed, /*WithNeighborIds=*/Mc);
    uint64_t Ck = 0;
    if (Mc) {
      // Repeated enumerations under one budget each; the recursion's
      // set allocation provides the paper's periodic GC cycles.
      for (unsigned It = 0; It < 3; ++It) {
        BkResult R = bronKerbosch(M, G, Iters);
        Ck += R.Cliques * 31 + R.MaxSize * 7 + R.Steps;
      }
    } else {
      for (unsigned It = 1; It <= Iters; ++It) {
        CcResult R = connectedComponents(M, G, It);
        Ck += R.Components * 1000003 + R.ArticulationPoints * 31 +
              R.LowSum;
      }
    }
    return Ck;
  };

  ExperimentResult R = runExperiment(Exp);
  printReport(R);
  return 0;
}

} // namespace hcsgc

#endif // HCSGC_BENCH_GRAPHBENCHMAIN_H
