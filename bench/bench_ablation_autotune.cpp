//===- bench/bench_ablation_autotune.cpp - §4.8 auto-tuner ablation ------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// Ablation for the paper's §4.8 future-work idea, implemented here as the
// AUTOTUNE knob: compare the synthetic benchmark under (a) baseline ZGC,
// (b) fixed COLDCONFIDENCE values 0.5/1.0 (configs 6/7), and (c) the
// feedback-tuned confidence. The tuned run should land near the best
// fixed setting without having been told the workload's hot fraction.
//
//===----------------------------------------------------------------------===//

#include "harness/Report.h"
#include "support/ArgParse.h"
#include "workloads/Synthetic.h"

#include <cstdio>

using namespace hcsgc;

namespace {

struct Variant {
  const char *Name;
  bool Hotness;
  double ColdConfidence;
  bool AutoTune;
};

} // namespace

int main(int Argc, char **Argv) {
  ArgParse Args(Argc, Argv);
  unsigned Runs = static_cast<unsigned>(Args.getInt("runs", 2));

  SyntheticParams P;
  P.ArraySize = static_cast<size_t>(Args.getInt("array", 150000));
  P.InnerIters = static_cast<size_t>(Args.getInt("inner", 60000));
  P.OuterIters = static_cast<unsigned>(Args.getInt("outer", 12));

  const Variant Variants[] = {
      {"baseline ZGC", false, 0.0, false},
      {"fixed cc=0.5 (config 6)", true, 0.5, false},
      {"fixed cc=1.0 (config 7)", true, 1.0, false},
      {"auto-tuned (§4.8)", true, 0.5, true},
  };

  std::printf("Ablation: fixed vs auto-tuned COLDCONFIDENCE "
              "(synthetic, %u runs each)\n\n",
              Runs);
  std::printf("%-26s %14s %14s %12s %14s\n", "variant", "sim-seconds",
              "L1 misses", "LLC misses", "final conf");

  for (const Variant &V : Variants) {
    double Exec = 0, L1 = 0, Llc = 0, FinalConf = 0;
    for (unsigned R = 0; R < Runs; ++R) {
      GcConfig Cfg = benchBaseConfig(16);
      Cfg.TriggerHysteresisFraction = 0.20;
      Cfg.Hotness = V.Hotness;
      Cfg.ColdConfidence = V.ColdConfidence;
      Cfg.AutoTuneColdConfidence = V.AutoTune;
      Runtime RT(Cfg);
      auto M = RT.attachMutator();
      (void)runSynthetic(*M, P);
      CacheCounters C = M->counters();
      Exec += static_cast<double>(C.Cycles) / 3.0e9 /
              static_cast<double>(Runs);
      FinalConf += RT.heap().effectiveColdConfidence() /
                   static_cast<double>(Runs);
      M.reset();
      RT.driver().shutdown();
      CacheCounters All = RT.mutatorCounters();
      All += RT.gcThreadCounters();
      L1 += static_cast<double>(All.L1Misses) / Runs;
      Llc += static_cast<double>(All.LlcMisses) / Runs;
    }
    std::printf("%-26s %14.3f %14.0f %12.0f %14.2f\n", V.Name, Exec, L1,
                Llc, FinalConf);
  }
  std::printf("\nExpected: the auto-tuned variant converges to the "
              "workload's cold fraction\n(1 - hot/live) without being "
              "told it, tracking the best fixed setting.\n");
  return 0;
}
