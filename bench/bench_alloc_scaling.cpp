//===- bench/bench_alloc_scaling.cpp - mutator allocation scaling --------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// Multi-mutator allocation throughput sweep for the sharded allocation
// stack (INTERNALS §10). For each mutator count in --list, a fresh
// runtime is created and every mutator thread runs the same churn loop —
// mostly small objects with a retained ring plus an occasional
// medium-class object — and the aggregate allocation rate is reported
// together with the allocator-observability counters (TLAB refills,
// shard-lock acquisitions, cache hits/misses, fallback scans, medium
// refills). With lock striping the rate should grow with the mutator
// count instead of flatlining on a global allocator mutex; the counters
// say why when it does not (fallback scans and cross-shard takes climb
// when shards are starved).
//
// Flags: --ops=N          allocations per mutator      [default 400000]
//        --heap-mb=N      max heap                     [default 256]
//        --shards=N       allocator shards, 0 = auto   [default 0]
//        --list=a,b,c     mutator counts               [default 1,2,4,8]
//        --retain=N       live-ring slots per mutator  [default 512]
//        --out=PATH       write a JSON report          [default ""]
//        --min-single-mops=X  fail (exit 1) if the 1-mutator rate drops
//                             below X Mops/s; 0 disables [default 0]
//        --preset=short   CI smoke sizing (ops=60000, heap=128 MB)
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"
#include "support/ArgParse.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace hcsgc;

namespace {

struct SweepPoint {
  unsigned Mutators = 0;
  double Seconds = 0;
  double Mops = 0;
  uint64_t TlabRefills = 0;
  uint64_t MediumRefills = 0;
  uint64_t ShardLocks = 0;
  uint64_t FallbackScans = 0;
  uint64_t CrossShardTakes = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t GcCycles = 0;
};

std::vector<unsigned> parseList(const std::string &S) {
  std::vector<unsigned> Out;
  size_t Pos = 0;
  while (Pos < S.size()) {
    size_t Comma = S.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = S.size();
    Out.push_back(
        static_cast<unsigned>(std::stoul(S.substr(Pos, Comma - Pos))));
    Pos = Comma + 1;
  }
  return Out;
}

/// One mutator's churn: small objects dominate (TLAB bump path), every
/// 64th allocation is a medium-class object (per-thread medium TLAB),
/// and a ring of --retain slots keeps a slice of the heap live so the
/// GC has real work when the trigger fires.
void churn(Mutator &M, ClassId SmallCls, ClassId MediumCls, uint64_t Ops,
           uint32_t RetainSlots) {
  Root Ring(M);
  M.allocateRefArray(Ring, RetainSlots);
  Root Tmp(M);
  for (uint64_t I = 0; I < Ops; ++I) {
    M.allocate(Tmp, (I & 63) == 0 ? MediumCls : SmallCls);
    if ((I & 7) == 0)
      M.storeElem(Ring, static_cast<uint32_t>(I % RetainSlots), Tmp);
  }
}

SweepPoint runPoint(unsigned Mutators, uint64_t OpsPerMutator,
                    size_t HeapMb, unsigned Shards, uint32_t RetainSlots) {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 1024 * 1024;
  Cfg.MaxHeapBytes = HeapMb << 20;
  Cfg.AllocatorShards = Shards;
  Cfg.GcWorkers = 2;
  Runtime RT(Cfg);
  ClassId SmallCls = RT.registerClass("scale.Small", 1, 48);
  // 16 KiB payload: above smallObjectMax (8 KiB for 64 KiB pages).
  ClassId MediumCls = RT.registerClass("scale.Medium", 0, 16 * 1024);

  auto Start = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < Mutators; ++T)
    Threads.emplace_back([&] {
      auto M = RT.attachMutator();
      churn(*M, SmallCls, MediumCls, OpsPerMutator, RetainSlots);
    });
  for (auto &T : Threads)
    T.join();
  auto End = std::chrono::steady_clock::now();

  SweepPoint P;
  P.Mutators = Mutators;
  P.Seconds = std::chrono::duration<double>(End - Start).count();
  P.Mops = double(Mutators) * double(OpsPerMutator) / P.Seconds / 1e6;
  MetricsRegistry &MR = RT.metrics();
  P.TlabRefills = MR.counterValue("alloc.tlab.refills");
  P.MediumRefills = MR.counterValue("alloc.tlab.medium_refills");
  P.ShardLocks = MR.counterValue("alloc.shard.lock_acquisitions");
  P.FallbackScans = MR.counterValue("alloc.shard.fallback_scans");
  P.CrossShardTakes = MR.counterValue("alloc.shard.cross_shard_takes");
  P.CacheHits = MR.counterValue("alloc.cache.page_hits");
  P.CacheMisses = MR.counterValue("alloc.cache.page_misses");
  P.GcCycles = RT.gcStats().cycleCount();
  return P;
}

bool writeJson(const std::string &Path, const std::vector<SweepPoint> &Pts,
               uint64_t OpsPerMutator, size_t HeapMb) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << "{\n  \"bench\": \"alloc_scaling\",\n";
  Out << "  \"ops_per_mutator\": " << OpsPerMutator << ",\n";
  Out << "  \"cores\": " << std::thread::hardware_concurrency() << ",\n";
  Out << "  \"heap_mb\": " << HeapMb << ",\n  \"points\": [\n";
  for (size_t I = 0; I < Pts.size(); ++I) {
    const SweepPoint &P = Pts[I];
    Out << "    {\"mutators\": " << P.Mutators
        << ", \"seconds\": " << P.Seconds
        << ", \"throughput_mops\": " << P.Mops
        << ", \"gc_cycles\": " << P.GcCycles
        << ", \"tlab_refills\": " << P.TlabRefills
        << ", \"medium_refills\": " << P.MediumRefills
        << ", \"shard_lock_acquisitions\": " << P.ShardLocks
        << ", \"fallback_scans\": " << P.FallbackScans
        << ", \"cross_shard_takes\": " << P.CrossShardTakes
        << ", \"cache_page_hits\": " << P.CacheHits
        << ", \"cache_page_misses\": " << P.CacheMisses << "}"
        << (I + 1 < Pts.size() ? "," : "") << "\n";
  }
  Out << "  ]\n}\n";
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParse Args(Argc, Argv);

  uint64_t Ops = static_cast<uint64_t>(Args.getInt("ops", 400000));
  size_t HeapMb = static_cast<size_t>(Args.getInt("heap-mb", 256));
  unsigned Shards = static_cast<unsigned>(Args.getInt("shards", 0));
  uint32_t Retain = static_cast<uint32_t>(Args.getInt("retain", 512));
  std::string List = Args.getString("list", "1,2,4,8");
  std::string OutPath = Args.getString("out", "");
  double MinSingleMops = Args.getDouble("min-single-mops", 0.0);
  if (Args.getString("preset", "") == "short") {
    Ops = static_cast<uint64_t>(Args.getInt("ops", 60000));
    HeapMb = static_cast<size_t>(Args.getInt("heap-mb", 128));
  }

  std::vector<unsigned> Counts = parseList(List);
  if (Counts.empty()) {
    std::fprintf(stderr, "bench_alloc_scaling: empty --list\n");
    return 2;
  }

  std::printf("alloc scaling: %" PRIu64 " ops/mutator, %zu MB heap, "
              "shards=%s\n\n",
              Ops, HeapMb, Shards ? std::to_string(Shards).c_str() : "auto");
  std::printf("%8s %9s %10s %8s %12s %10s %10s %9s\n", "mutators", "Mops/s",
              "refills", "medium", "shard-locks", "fallbacks", "cache-hit",
              "gc-cycles");

  std::vector<SweepPoint> Points;
  for (unsigned M : Counts) {
    SweepPoint P = runPoint(M, Ops, HeapMb, Shards, Retain);
    double HitRate =
        P.CacheHits + P.CacheMisses
            ? double(P.CacheHits) / double(P.CacheHits + P.CacheMisses)
            : 0.0;
    std::printf("%8u %9.2f %10" PRIu64 " %8" PRIu64 " %12" PRIu64
                " %10" PRIu64 " %9.1f%% %9" PRIu64 "\n",
                P.Mutators, P.Mops, P.TlabRefills, P.MediumRefills,
                P.ShardLocks, P.FallbackScans, HitRate * 100.0, P.GcCycles);
    Points.push_back(P);
  }

  if (!OutPath.empty()) {
    if (!writeJson(OutPath, Points, Ops, HeapMb)) {
      std::fprintf(stderr, "bench_alloc_scaling: cannot write %s\n",
                   OutPath.c_str());
      return 2;
    }
    std::printf("\nwrote %s\n", OutPath.c_str());
  }

  if (MinSingleMops > 0.0) {
    for (const SweepPoint &P : Points)
      if (P.Mutators == 1 && P.Mops < MinSingleMops) {
        std::fprintf(stderr,
                     "FAIL: single-mutator throughput %.2f Mops/s below "
                     "floor %.2f\n",
                     P.Mops, MinSingleMops);
        return 1;
      }
  }
  return 0;
}
