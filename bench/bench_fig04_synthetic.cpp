//===- bench/bench_fig04_synthetic.cpp - Fig. 4 --------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// Fig. 4: the synthetic single-phase benchmark across all 19 Table 2
// configurations. Expected shape (per the paper): configs 4, 10, 16, 18
// fastest (large EC + LazyRelocate), then 3 and 17, then 7 and 13;
// configs 2, 5, 8, 11, 14 show no improvement because fully-live pages
// are never selected without RELOCATEALLSMALLPAGES or high
// COLDCONFIDENCE. L1/LLC misses drop in the improving configs while
// total loads increase (extra GC work hidden by idle cores).
//
// Flags: --runs=N --configs=a,b,c --heap-mb=N --workers=N --array=N
//        --inner=N --outer=N --compute=N
//
//===----------------------------------------------------------------------===//

#include "harness/Report.h"
#include "support/ArgParse.h"
#include "workloads/Synthetic.h"

using namespace hcsgc;

int main(int Argc, char **Argv) {
  ArgParse Args(Argc, Argv);

  ExperimentSpec Spec;
  Spec.Name = "Fig 4: synthetic single-phase";
  Spec.Runs = 3;
  Spec.BaseConfig = benchBaseConfig(16);
  applyCommonFlags(Args, Spec);

  SyntheticParams P;
  P.ArraySize = static_cast<size_t>(Args.getInt("array", 200000));
  P.InnerIters = static_cast<size_t>(Args.getInt("inner", 80000));
  P.OuterIters = static_cast<unsigned>(Args.getInt("outer", 20));
  P.ComputeCyclesPerOp =
      static_cast<uint64_t>(Args.getInt("compute", 40));
  P.Phases = 1;

  Spec.Body = [P](Mutator &M, RunMeasurement &) {
    return runSynthetic(M, P).Checksum;
  };

  ExperimentResult R = runExperiment(Spec);
  printReport(R);
  return 0;
}
