//===- bench/bench_fig05_multiphase.cpp - Fig. 5 --------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// Fig. 5: the synthetic benchmark going through three phases, each with
// its own access-pattern seed ("rand = new Random(phase)"). HCSGC should
// adapt to each phase change and deliver the same shape as Fig. 4.
//
//===----------------------------------------------------------------------===//

#include "harness/Report.h"
#include "support/ArgParse.h"
#include "workloads/Synthetic.h"

using namespace hcsgc;

int main(int Argc, char **Argv) {
  ArgParse Args(Argc, Argv);

  ExperimentSpec Spec;
  Spec.Name = "Fig 5: synthetic three-phase";
  Spec.Runs = 3;
  Spec.BaseConfig = benchBaseConfig(16);
  applyCommonFlags(Args, Spec);

  SyntheticParams P;
  P.ArraySize = static_cast<size_t>(Args.getInt("array", 200000));
  P.InnerIters = static_cast<size_t>(Args.getInt("inner", 80000));
  // Same total work as Fig 4, split across three phases.
  P.OuterIters = static_cast<unsigned>(Args.getInt("outer", 7));
  P.Phases = static_cast<unsigned>(Args.getInt("phases", 3));
  P.ComputeCyclesPerOp =
      static_cast<uint64_t>(Args.getInt("compute", 40));

  Spec.Body = [P](Mutator &M, RunMeasurement &) {
    return runSynthetic(M, P).Checksum;
  };

  ExperimentResult R = runExperiment(Spec);
  printReport(R);
  return 0;
}
