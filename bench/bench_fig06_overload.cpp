//===- bench/bench_fig06_overload.cpp - Fig. 6 ---------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// Fig. 6: the cost of RELOCATEALLSMALLPAGES when many objects are cold
// and computing resources are constrained. A 10x never-accessed cold
// array is added and the core model charges GC-thread cycles to the same
// (single) core the mutator runs on (the paper used taskset). Expected
// shape: configs 3, 4, 17, 18 show large overhead; 7, 10, 13, 16
// (COLDCONFIDENCE) still improve.
//
//===----------------------------------------------------------------------===//

#include "harness/Report.h"
#include "support/ArgParse.h"
#include "workloads/Synthetic.h"

using namespace hcsgc;

int main(int Argc, char **Argv) {
  ArgParse Args(Argc, Argv);

  ExperimentSpec Spec;
  Spec.Name = "Fig 6: RelocateAllSmallPages overhead (single core, 10x "
              "cold array)";
  Spec.Runs = 3;
  Spec.BaseConfig = benchBaseConfig(48);
  Spec.Model = CoreModel::SingleCore;
  applyCommonFlags(Args, Spec);

  SyntheticParams P;
  P.ArraySize = static_cast<size_t>(Args.getInt("array", 60000));
  P.ColdArraySize = static_cast<size_t>(
      Args.getInt("cold-array", 10 * Args.getInt("array", 60000)));
  P.InnerIters = static_cast<size_t>(Args.getInt("inner", 60000));
  P.OuterIters = static_cast<unsigned>(Args.getInt("outer", 16));
  P.ComputeCyclesPerOp =
      static_cast<uint64_t>(Args.getInt("compute", 40));

  Spec.Body = [P](Mutator &M, RunMeasurement &) {
    return runSynthetic(M, P).Checksum;
  };

  ExperimentResult R = runExperiment(Spec);
  printReport(R);
  return 0;
}
