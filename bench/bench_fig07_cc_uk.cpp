//===- bench/bench_fig07_cc_uk.cpp - Fig. 7 ------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// Fig. 7: connected/biconnected components (JGraphT BiconnectivityInspector
// stand-in) on the uk dataset scale. Expected shape: large speedups for the
// big-EC configurations, few GC cycles concentrated early.
//
//===----------------------------------------------------------------------===//

#include "GraphBenchMain.h"

int main(int Argc, char **Argv) {
  return hcsgc::graphBenchMain(
      Argc, Argv, "Fig 7: CC on uk", hcsgc::ukCcSpec(),
      hcsgc::GraphAlgo::ConnectedComponents, /*DefaultHeapMb=*/16,
      /*DefaultScale=*/0.10, /*Iters=*/5);
}
