//===- bench/bench_fig08_cc_enwiki.cpp - Fig. 8 --------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// Fig. 8: connected/biconnected components on the enwiki dataset scale.
//
//===----------------------------------------------------------------------===//

#include "GraphBenchMain.h"

int main(int Argc, char **Argv) {
  return hcsgc::graphBenchMain(
      Argc, Argv, "Fig 8: CC on enwiki", hcsgc::enwikiCcSpec(),
      hcsgc::GraphAlgo::ConnectedComponents, /*DefaultHeapMb=*/16,
      /*DefaultScale=*/0.35, /*Iters=*/5);
}
