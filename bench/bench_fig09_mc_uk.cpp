//===- bench/bench_fig09_mc_uk.cpp - Fig. 9 ------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// Fig. 9: Bron-Kerbosch maximal cliques (JGraphT BronKerboschCliqueFinder
// stand-in) on the uk dataset scale. The recursion's candidate-set
// allocation triggers the periodic GC cycles the paper reports; expect a
// staircase as COLDCONFIDENCE grows within configs 5-7, 8-10, 11-13, 14-16.
//
//===----------------------------------------------------------------------===//

#include "GraphBenchMain.h"

int main(int Argc, char **Argv) {
  return hcsgc::graphBenchMain(
      Argc, Argv, "Fig 9: MC on uk", hcsgc::ukMcSpec(),
      hcsgc::GraphAlgo::MaximalCliques, /*DefaultHeapMb=*/16,
      /*DefaultScale=*/0.3, /*Budget=*/8000);
}
