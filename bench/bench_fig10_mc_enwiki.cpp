//===- bench/bench_fig10_mc_enwiki.cpp - Fig. 10 --------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// Fig. 10: Bron-Kerbosch maximal cliques on the enwiki dataset scale.
//
//===----------------------------------------------------------------------===//

#include "GraphBenchMain.h"

int main(int Argc, char **Argv) {
  return hcsgc::graphBenchMain(
      Argc, Argv, "Fig 10: MC on enwiki", hcsgc::enwikiMcSpec(),
      hcsgc::GraphAlgo::MaximalCliques, /*DefaultHeapMb=*/16,
      /*DefaultScale=*/0.25, /*Budget=*/8000);
}
