//===- bench/bench_fig11_tradebeans.cpp - Fig. 11 -------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// Fig. 11: the tradebeans-like workload (short-lived-object dominated).
// Expected shape: little to no HCSGC improvement — objects that die
// before surviving a cycle get their locality from allocation order, not
// relocation. DaCapo-style warm-up: one untimed iteration precedes the
// measured one.
//
//===----------------------------------------------------------------------===//

#include "harness/Report.h"
#include "support/ArgParse.h"
#include "workloads/TradeSim.h"

using namespace hcsgc;

int main(int Argc, char **Argv) {
  ArgParse Args(Argc, Argv);

  ExperimentSpec Spec;
  Spec.Name = "Fig 11: tradebeans (tradesim)";
  Spec.Runs = 3;
  Spec.BaseConfig = benchBaseConfig(8);
  applyCommonFlags(Args, Spec);

  TradeSimParams P;
  P.Transactions =
      static_cast<unsigned>(Args.getInt("txns", 40000));
  P.Accounts = static_cast<unsigned>(Args.getInt("accounts", P.Accounts));

  Spec.Body = [P](Mutator &M, RunMeasurement &) {
    return runTradeSim(M, P).BalanceChecksum;
  };

  ExperimentResult R = runExperiment(Spec);
  printReport(R);
  return 0;
}
