//===- bench/bench_fig12_h2.cpp - Fig. 12 ----------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// Fig. 12: the h2-like workload (minidb): a managed B-tree with hot
// long-lived index nodes and row-version churn. Expected shape: several
// configurations improve ~5-9%; hotness tracking alone (config 5) costs
// under ~2%.
//
//===----------------------------------------------------------------------===//

#include "harness/Report.h"
#include "support/ArgParse.h"
#include "workloads/MiniDb.h"

using namespace hcsgc;

int main(int Argc, char **Argv) {
  ArgParse Args(Argc, Argv);

  ExperimentSpec Spec;
  Spec.Name = "Fig 12: h2 (minidb)";
  Spec.Runs = 3;
  Spec.BaseConfig = benchBaseConfig(10);
  // The database's hot index + row churn regime needs an earlier trigger
  // (h2 runs many cycles in the paper) and, like the graph benches, a
  // cache hierarchy scaled down with the scaled-down table.
  Spec.BaseConfig.TriggerFraction = 0.45;
  Spec.BaseConfig.TriggerHysteresisFraction = 0.05;
  Spec.BaseConfig.Cache.L1Size = 16 * 1024;
  Spec.BaseConfig.Cache.L2Size = 64 * 1024;
  Spec.BaseConfig.Cache.L3Size = 512 * 1024;
  applyCommonFlags(Args, Spec);

  MiniDbParams P;
  P.Rows = static_cast<unsigned>(Args.getInt("rows", 40000));
  P.Ops = static_cast<unsigned>(Args.getInt("ops", 50000));

  Spec.Body = [P](Mutator &M, RunMeasurement &) {
    MiniDbResult R = runMiniDb(M, P);
    return R.QueryChecksum + R.RowCount;
  };

  ExperimentResult R = runExperiment(Spec);
  printReport(R);
  return 0;
}
