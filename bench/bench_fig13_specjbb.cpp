//===- bench/bench_fig13_specjbb.cpp - Fig. 13 -----------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// Fig. 13: the SPECjbb2015-like ramping-injection workload, reporting a
// throughput score and a latency score per configuration (higher is
// better), plus the Config 0 heap-usage ramp. Expected result: the
// confidence intervals overlap — inconclusive, because only ~1% of
// objects survive a GC cycle.
//
//===----------------------------------------------------------------------===//

#include "harness/Report.h"
#include "support/ArgParse.h"
#include "workloads/JbbSim.h"

using namespace hcsgc;

int main(int Argc, char **Argv) {
  ArgParse Args(Argc, Argv);

  ExperimentSpec Spec;
  Spec.Name = "Fig 13: SPECjbb2015 (jbbsim)";
  Spec.Runs = 3;
  Spec.BaseConfig = benchBaseConfig(32);
  applyCommonFlags(Args, Spec);

  JbbSimParams P;
  P.RampLevels =
      static_cast<unsigned>(Args.getInt("levels", 6));
  P.TxnsPerLevelBase = static_cast<unsigned>(
      Args.getInt("txns-per-level", P.TxnsPerLevelBase));

  Spec.Body = [P](Mutator &M, RunMeasurement &Meas) {
    JbbSimResult R = runJbbSim(M, P);
    Meas.Aux1 = R.ThroughputScore;
    Meas.Aux2 = R.LatencyScore;
    return R.Checksum;
  };

  ExperimentResult R = runExperiment(Spec);
  printReport(R);
  printScoreReport(R, "throughput", "latency");
  return 0;
}
