//===- bench/bench_kv_ycsb.cpp - YCSB-style KV-store family -------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// The "million users" scenario (ROADMAP): a managed KV store whose hot
// working set is buried among cold records, driven with YCSB-style
// mixes. Sweeps the Table 2 configurations like every other family and
// reports throughput (kops/s) plus p99/p50 op latency (us) alongside
// the standard locality/GC tables. Joins --snapshot-log so
// tools/heapscope can audit the EC decisions and show the hot set
// compacting.
//
// Flags (plus the common --runs/--configs/--heap-mb/--workers/
// --snapshot-log/... set):
//   --records=N       base keys loaded up front        [default 100000]
//   --churn=N         churn keyspace (insert/delete)   [default records/8]
//   --ops=N           mixed ops across all threads     [default 500000]
//   --threads=N       mutator worker threads           [default 4]
//   --dist=zipf|hotspot|uniform                        [default zipf]
//   --theta=X         Zipf skew                        [default 0.99]
//   --hot-keys=X      hotspot: hot key fraction        [default 0.2]
//   --hot-ops=X       hotspot: hot op fraction         [default 0.8]
//   --read-pct=N      read share of the mix            [default 95]
//   --update-pct=N    update share (rest is churn)     [default 5]
//   --value-words=N   payload words per record         [default 8]
//   --shards=N        index shards                     [default 16]
//   --compute=N       simulated cycles per op          [default 64]
//   --seed=N          workload seed                    [default 0x5EED]
//   --out=PATH        machine-readable JSON report     [default ""]
//
//===----------------------------------------------------------------------===//

#include "harness/Report.h"
#include "support/ArgParse.h"
#include "workloads/KvWorkload.h"

#include <cstdio>
#include <fstream>
#include <mutex>
#include <vector>

using namespace hcsgc;

namespace {

/// One Body invocation's scores, kept for the JSON report (the harness
/// measurement only carries the Aux slots).
struct KvRunRecord {
  int ConfigId = 0;
  KvWorkloadResult R;
};

bool writeJson(const std::string &Path, const KvWorkloadParams &P,
               const std::vector<KvRunRecord> &Runs) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << "{\n  \"bench\": \"kv_ycsb\",\n";
  Out << "  \"records\": " << P.Records << ",\n";
  Out << "  \"churn_keys\": " << P.ChurnKeys << ",\n";
  Out << "  \"ops\": " << P.Ops << ",\n";
  Out << "  \"threads\": " << P.Threads << ",\n";
  Out << "  \"dist\": \""
      << (P.D == KvKeySpace::Dist::Zipf
              ? "zipf"
              : P.D == KvKeySpace::Dist::Hotspot ? "hotspot" : "uniform")
      << "\",\n";
  Out << "  \"theta\": " << P.Theta << ",\n";
  Out << "  \"read_pct\": " << P.ReadPct << ",\n";
  Out << "  \"update_pct\": " << P.UpdatePct << ",\n  \"runs\": [\n";
  for (size_t I = 0; I < Runs.size(); ++I) {
    const KvRunRecord &RR = Runs[I];
    Out << "    {\"config\": " << RR.ConfigId
        << ", \"throughput_kops\": " << RR.R.ThroughputKops
        << ", \"p50_us\": " << RR.R.OpP50Ns / 1000.0
        << ", \"p99_us\": " << RR.R.OpP99Ns / 1000.0
        << ", \"ops\": " << RR.R.OpsDone
        << ", \"read_misses\": " << RR.R.ReadMisses
        << ", \"consistency_failures\": " << RR.R.ConsistencyFailures
        << ", \"heap_exhausted\": " << RR.R.HeapExhausted
        << ", \"live_records\": " << RR.R.LiveRecords
        << ", \"checksum\": " << RR.R.Checksum << "}"
        << (I + 1 < Runs.size() ? "," : "") << "\n";
  }
  Out << "  ]\n}\n";
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParse Args(Argc, Argv);

  ExperimentSpec Spec;
  Spec.Name = "KV: YCSB-style managed key-value store";
  Spec.Runs = 3;
  Spec.BaseConfig = benchBaseConfig(256);
  applyCommonFlags(Args, Spec);

  KvWorkloadParams P;
  P.Records = static_cast<size_t>(Args.getInt("records", 100 * 1000));
  P.ChurnKeys = static_cast<size_t>(
      Args.getInt("churn", static_cast<int64_t>(P.Records / 8)));
  P.Ops = static_cast<uint64_t>(Args.getInt("ops", 500 * 1000));
  P.Threads = static_cast<unsigned>(Args.getInt("threads", 4));
  std::string Dist = Args.getString("dist", "zipf");
  if (Dist == "hotspot")
    P.D = KvKeySpace::Dist::Hotspot;
  else if (Dist == "uniform")
    P.D = KvKeySpace::Dist::Uniform;
  else if (Dist == "zipf")
    P.D = KvKeySpace::Dist::Zipf;
  else {
    std::fprintf(stderr, "bench_kv_ycsb: unknown --dist=%s\n",
                 Dist.c_str());
    return 2;
  }
  P.Theta = Args.getDouble("theta", 0.99);
  P.HotKeyFraction = Args.getDouble("hot-keys", 0.2);
  P.HotOpFraction = Args.getDouble("hot-ops", 0.8);
  P.ReadPct = static_cast<unsigned>(Args.getInt("read-pct", 95));
  P.UpdatePct = static_cast<unsigned>(Args.getInt("update-pct", 5));
  P.ValueWords = static_cast<unsigned>(Args.getInt("value-words", 8));
  P.Shards = static_cast<unsigned>(Args.getInt("shards", 16));
  P.ComputeCyclesPerOp =
      static_cast<uint64_t>(Args.getInt("compute", 64));
  P.Seed = static_cast<uint64_t>(Args.getInt("seed", 0x5EED));
  std::string OutPath = Args.getString("out", "");
  if (P.ReadPct + P.UpdatePct > 100) {
    std::fprintf(stderr,
                 "bench_kv_ycsb: --read-pct + --update-pct > 100\n");
    return 2;
  }

  std::vector<KvRunRecord> RunLog;
  std::mutex RunLogMu;
  // The runner executes Body once per (config, run); configs currently
  // run sequentially, but guard the shared log anyway.
  Spec.Body = [&](Mutator &M, RunMeasurement &Meas) {
    KvWorkloadResult R = runKvWorkload(M, P);
    Meas.Aux1 = R.ThroughputKops;
    Meas.Aux2 = R.OpP99Ns / 1000.0; // us
    Meas.Aux3 = R.OpP50Ns / 1000.0; // us
    {
      std::lock_guard<std::mutex> G(RunLogMu);
      KvRunRecord RR;
      RR.R = R;
      RunLog.push_back(RR);
    }
    if (R.ConsistencyFailures || R.ReadMisses)
      std::fprintf(stderr,
                   "bench_kv_ycsb: CONSISTENCY VIOLATION "
                   "(failures=%llu misses=%llu)\n",
                   (unsigned long long)R.ConsistencyFailures,
                   (unsigned long long)R.ReadMisses);
    return R.Checksum;
  };

  ExperimentResult R = runExperiment(Spec);
  // Backfill config ids (runs execute in config-major order).
  {
    size_t I = 0;
    for (const ConfigResult &CR : R.Configs)
      for (size_t K = 0; K < CR.Runs.size() && I < RunLog.size(); ++K)
        RunLog[I++].ConfigId = CR.Knobs.Id;
  }
  printReport(R);
  printScoreReport(R, "kops/s", "p99(us)", "p50(us)");

  uint64_t Violations = 0;
  for (const KvRunRecord &RR : RunLog)
    Violations += RR.R.ConsistencyFailures + RR.R.ReadMisses;

  if (!OutPath.empty()) {
    if (!writeJson(OutPath, P, RunLog)) {
      std::fprintf(stderr, "bench_kv_ycsb: cannot write %s\n",
                   OutPath.c_str());
      return 2;
    }
    std::printf("\nwrote %s\n", OutPath.c_str());
  }
  if (Violations) {
    std::fprintf(stderr, "bench_kv_ycsb: FAILED with %llu violations\n",
                 (unsigned long long)Violations);
    return 1;
  }
  return 0;
}
