//===- bench/bench_micro_gc.cpp - GC mechanism micro-benchmarks --------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// Ablation micro-benchmarks for the mechanisms whose costs the paper
// discusses: the load-barrier fast path ("no additional work"), the
// hotmap update on the slow path ("the overhead of updating the hotmap
// which in its current implementation involves a CAS operation", §4.1),
// forwarding-table insertion (the relocation linearization point), and
// allocation throughput.
//
//===----------------------------------------------------------------------===//

#include "heap/Forwarding.h"
#include "runtime/Runtime.h"
#include "support/BitMap.h"

#include <benchmark/benchmark.h>

using namespace hcsgc;

static GcConfig microConfig(bool Hotness) {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 256 * 1024;
  Cfg.Geometry.MediumPageSize = 4 * 1024 * 1024;
  Cfg.MaxHeapBytes = 64u << 20;
  Cfg.Hotness = Hotness;
  return Cfg;
}

/// Load-barrier fast path: repeated loads of an already-good slot.
static void BM_BarrierFastPath(benchmark::State &State) {
  Runtime RT(microConfig(false));
  ClassId Cls = RT.registerClass("m.Pair", 1, 8);
  auto M = RT.attachMutator();
  {
    Root A(*M), B(*M), Out(*M);
    M->allocate(A, Cls);
    M->allocate(B, Cls);
    M->storeRef(A, 0, B);
    for (auto _ : State) {
      M->loadRef(A, 0, Out);
      benchmark::DoNotOptimize(&Out);
    }
  }
  M.reset();
}
BENCHMARK(BM_BarrierFastPath);

/// Full GC cycle cost over a live list, without vs with hotness
/// tracking (the config-5 overhead of Table 2).
static void BM_GcCycle(benchmark::State &State) {
  bool Hotness = State.range(0) != 0;
  Runtime RT(microConfig(Hotness));
  ClassId Cls = RT.registerClass("m.Node", 1, 16);
  auto M = RT.attachMutator();
  {
    Root Head(*M), Cur(*M), Tmp(*M);
    M->allocate(Head, Cls);
    M->copyRoot(Head, Cur);
    for (int I = 0; I < 50000; ++I) {
      M->allocate(Tmp, Cls);
      M->storeRef(Cur, 0, Tmp);
      M->copyRoot(Tmp, Cur);
    }
    for (auto _ : State)
      M->requestGcAndWait();
  }
  M.reset();
}
BENCHMARK(BM_GcCycle)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Allocation throughput (TLAB bump path).
static void BM_Allocate32B(benchmark::State &State) {
  Runtime RT(microConfig(false));
  ClassId Cls = RT.registerClass("m.Elem", 0, 24);
  auto M = RT.attachMutator();
  {
    Root Out(*M);
    for (auto _ : State)
      M->allocate(Out, Cls);
  }
  M.reset();
}
BENCHMARK(BM_Allocate32B);

/// Hotmap update: the atomic bit set + hot-bytes accounting.
static void BM_HotmapFlag(benchmark::State &State) {
  Page P(/*Begin=*/1 << 20, /*Size=*/256 * 1024, PageSizeClass::Small,
         /*Seq=*/0);
  uint64_t Addr = (1 << 20);
  for (auto _ : State) {
    benchmark::DoNotOptimize(P.flagHot(Addr, 32));
    Addr = (1 << 20) + ((Addr + 32) & (256 * 1024 - 1));
  }
}
BENCHMARK(BM_HotmapFlag);

/// Forwarding-table insert-or-get (relocation linearization point).
static void BM_ForwardingInsert(benchmark::State &State) {
  ForwardingTable Table(1 << 16);
  uint32_t Off = 0;
  for (auto _ : State) {
    bool Won;
    benchmark::DoNotOptimize(Table.insertOrGet(Off, Off + 64, Won));
    Off = (Off + 8) & ((1u << 18) - 1);
  }
}
BENCHMARK(BM_ForwardingInsert);

/// Forwarding lookup of present entries.
static void BM_ForwardingLookup(benchmark::State &State) {
  ForwardingTable Table(1 << 12);
  for (uint32_t I = 0; I < (1u << 12); ++I) {
    bool Won;
    Table.insertOrGet(I * 8, I * 8 + 16, Won);
  }
  uint32_t Off = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Table.lookup(Off));
    Off = (Off + 8) & ((1u << 15) - 1);
  }
}
BENCHMARK(BM_ForwardingLookup);

//===----------------------------------------------------------------------===//
// Raw-speed pass (INTERNALS §14): the vectorized metadata walks and the
// prefetched mark drain, benchmarked at the layer where each lives.
//===----------------------------------------------------------------------===//

namespace {

/// A temperature-tracking page with a configurable percentage of its
/// 32-byte slots live (and a third of those hot), the shape the
/// pre-STW1 walk sees.
struct PopulatedPage {
  Page P;
  explicit PopulatedPage(unsigned LivePct)
      : P(/*Begin=*/uintptr_t(1) << 20, /*Size=*/256 * 1024,
          PageSizeClass::Small, /*Seq=*/0, /*TrackTemp=*/true) {
    uintptr_t Begin = uintptr_t(1) << 20;
    // Bump the whole page so used() spans every granule.
    while (P.allocate(32) != 0)
      ;
    unsigned Step = LivePct ? 100 / LivePct : 0;
    for (uintptr_t A = Begin, I = 0; A < Begin + 256 * 1024;
         A += 32, ++I) {
      if (!Step || I % Step != 0)
        continue;
      P.markLive(A, 32);
      if (I % (3 * Step) == 0)
        P.flagHot(A, 32);
    }
  }
};

} // namespace

/// The SWAR nibble-aging walk (one 64-bit word ages 16 granules).
/// Arg = percent of granules live. Steady state: after a few iterations
/// unmarked granules sit at a saturated cold streak, exactly like a
/// long-lived page across cycles.
static void BM_PageAgeTemperature(benchmark::State &State) {
  PopulatedPage PP(static_cast<unsigned>(State.range(0)));
  for (auto _ : State)
    PP.P.ageTemperature();
  State.SetBytesProcessed(State.iterations() * (256 * 1024 / 8 / 16) * 8);
}
BENCHMARK(BM_PageAgeTemperature)->Arg(100)->Arg(25)->Arg(3);

/// The ctz-driven live-object walk feeding tier accounting and the EC
/// selector. Arg = percent of granules live; sparse pages show the
/// word-skip win over the old per-bit findNext restart.
static void BM_PageForEachLiveObject(benchmark::State &State) {
  PopulatedPage PP(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    size_t N = 0;
    PP.P.forEachLiveObject([&N](uintptr_t) { ++N; });
    benchmark::DoNotOptimize(N);
  }
}
BENCHMARK(BM_PageForEachLiveObject)->Arg(100)->Arg(25)->Arg(3);

/// Full-cycle mark cost at a given GcConfig::MarkPrefetchDistance over a
/// pointer-chasing list (the workload software prefetch targets). Arg 0
/// compiles the hint out; compare 0 vs. 4 vs. 16 in one run.
static void BM_GcCycleMarkPrefetch(benchmark::State &State) {
  GcConfig Cfg = microConfig(false);
  Cfg.MarkPrefetchDistance = static_cast<unsigned>(State.range(0));
  Runtime RT(Cfg);
  ClassId Cls = RT.registerClass("m.PfNode", 1, 16);
  auto M = RT.attachMutator();
  {
    Root Head(*M), Cur(*M), Tmp(*M);
    M->allocate(Head, Cls);
    M->copyRoot(Head, Cur);
    for (int I = 0; I < 50000; ++I) {
      M->allocate(Tmp, Cls);
      M->storeRef(Cur, 0, Tmp);
      M->copyRoot(Tmp, Cur);
    }
    for (auto _ : State)
      M->requestGcAndWait();
  }
  M.reset();
  State.counters["prefetches"] = static_cast<double>(
      RT.metrics().counterValue("mark.prefetch_issued"));
}
BENCHMARK(BM_GcCycleMarkPrefetch)
    ->Arg(0)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

/// Concurrent livemap marking (the per-object mark CAS).
static void BM_LivemapParSet(benchmark::State &State) {
  BitMap Map(1 << 20);
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Map.parSet(I));
    I = (I + 7) & ((1 << 20) - 1);
  }
}
BENCHMARK(BM_LivemapParSet);

BENCHMARK_MAIN();
