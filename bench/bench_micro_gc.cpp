//===- bench/bench_micro_gc.cpp - GC mechanism micro-benchmarks --------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// Ablation micro-benchmarks for the mechanisms whose costs the paper
// discusses: the load-barrier fast path ("no additional work"), the
// hotmap update on the slow path ("the overhead of updating the hotmap
// which in its current implementation involves a CAS operation", §4.1),
// forwarding-table insertion (the relocation linearization point), and
// allocation throughput.
//
//===----------------------------------------------------------------------===//

#include "heap/Forwarding.h"
#include "runtime/Runtime.h"
#include "support/BitMap.h"

#include <benchmark/benchmark.h>

using namespace hcsgc;

static GcConfig microConfig(bool Hotness) {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 256 * 1024;
  Cfg.Geometry.MediumPageSize = 4 * 1024 * 1024;
  Cfg.MaxHeapBytes = 64u << 20;
  Cfg.Hotness = Hotness;
  return Cfg;
}

/// Load-barrier fast path: repeated loads of an already-good slot.
static void BM_BarrierFastPath(benchmark::State &State) {
  Runtime RT(microConfig(false));
  ClassId Cls = RT.registerClass("m.Pair", 1, 8);
  auto M = RT.attachMutator();
  {
    Root A(*M), B(*M), Out(*M);
    M->allocate(A, Cls);
    M->allocate(B, Cls);
    M->storeRef(A, 0, B);
    for (auto _ : State) {
      M->loadRef(A, 0, Out);
      benchmark::DoNotOptimize(&Out);
    }
  }
  M.reset();
}
BENCHMARK(BM_BarrierFastPath);

/// Full GC cycle cost over a live list, without vs with hotness
/// tracking (the config-5 overhead of Table 2).
static void BM_GcCycle(benchmark::State &State) {
  bool Hotness = State.range(0) != 0;
  Runtime RT(microConfig(Hotness));
  ClassId Cls = RT.registerClass("m.Node", 1, 16);
  auto M = RT.attachMutator();
  {
    Root Head(*M), Cur(*M), Tmp(*M);
    M->allocate(Head, Cls);
    M->copyRoot(Head, Cur);
    for (int I = 0; I < 50000; ++I) {
      M->allocate(Tmp, Cls);
      M->storeRef(Cur, 0, Tmp);
      M->copyRoot(Tmp, Cur);
    }
    for (auto _ : State)
      M->requestGcAndWait();
  }
  M.reset();
}
BENCHMARK(BM_GcCycle)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Allocation throughput (TLAB bump path).
static void BM_Allocate32B(benchmark::State &State) {
  Runtime RT(microConfig(false));
  ClassId Cls = RT.registerClass("m.Elem", 0, 24);
  auto M = RT.attachMutator();
  {
    Root Out(*M);
    for (auto _ : State)
      M->allocate(Out, Cls);
  }
  M.reset();
}
BENCHMARK(BM_Allocate32B);

/// Hotmap update: the atomic bit set + hot-bytes accounting.
static void BM_HotmapFlag(benchmark::State &State) {
  Page P(/*Begin=*/1 << 20, /*Size=*/256 * 1024, PageSizeClass::Small,
         /*Seq=*/0);
  uint64_t Addr = (1 << 20);
  for (auto _ : State) {
    benchmark::DoNotOptimize(P.flagHot(Addr, 32));
    Addr = (1 << 20) + ((Addr + 32) & (256 * 1024 - 1));
  }
}
BENCHMARK(BM_HotmapFlag);

/// Forwarding-table insert-or-get (relocation linearization point).
static void BM_ForwardingInsert(benchmark::State &State) {
  ForwardingTable Table(1 << 16);
  uint32_t Off = 0;
  for (auto _ : State) {
    bool Won;
    benchmark::DoNotOptimize(Table.insertOrGet(Off, Off + 64, Won));
    Off = (Off + 8) & ((1u << 18) - 1);
  }
}
BENCHMARK(BM_ForwardingInsert);

/// Forwarding lookup of present entries.
static void BM_ForwardingLookup(benchmark::State &State) {
  ForwardingTable Table(1 << 12);
  for (uint32_t I = 0; I < (1u << 12); ++I) {
    bool Won;
    Table.insertOrGet(I * 8, I * 8 + 16, Won);
  }
  uint32_t Off = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Table.lookup(Off));
    Off = (Off + 8) & ((1u << 15) - 1);
  }
}
BENCHMARK(BM_ForwardingLookup);

/// Concurrent livemap marking (the per-object mark CAS).
static void BM_LivemapParSet(benchmark::State &State) {
  BitMap Map(1 << 20);
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Map.parSet(I));
    I = (I + 7) & ((1 << 20) - 1);
  }
}
BENCHMARK(BM_LivemapParSet);

BENCHMARK_MAIN();
