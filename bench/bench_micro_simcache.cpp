//===- bench/bench_micro_simcache.cpp - Cache simulator micro-benchmarks -----===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// Micro-benchmarks of the cache simulator itself (the substitution for
// perf hardware counters) and a demonstration of the locality effect the
// whole reproduction rests on: sequential streams are nearly free under
// the stream prefetcher, random streams pay full miss latency.
//
//===----------------------------------------------------------------------===//

#include "simcache/Hierarchy.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

using namespace hcsgc;

static void BM_SeqAccess(benchmark::State &State) {
  CacheHierarchy H;
  uintptr_t Addr = 0;
  for (auto _ : State) {
    H.onLoad(Addr, 8);
    Addr += 32;
  }
  State.counters["l1_miss_rate"] =
      static_cast<double>(H.counters().L1Misses) /
      static_cast<double>(H.counters().Loads);
  State.counters["cycles_per_access"] =
      static_cast<double>(H.counters().Cycles) /
      static_cast<double>(H.counters().Loads);
}
BENCHMARK(BM_SeqAccess);

static void BM_RandomAccess(benchmark::State &State) {
  CacheHierarchy H;
  SplitMix64 Rng(7);
  for (auto _ : State)
    H.onLoad(Rng.nextBelow(64 << 20), 8);
  State.counters["l1_miss_rate"] =
      static_cast<double>(H.counters().L1Misses) /
      static_cast<double>(H.counters().Loads);
  State.counters["cycles_per_access"] =
      static_cast<double>(H.counters().Cycles) /
      static_cast<double>(H.counters().Loads);
}
BENCHMARK(BM_RandomAccess);

static void BM_NoPrefetchSeq(benchmark::State &State) {
  CacheConfig Cfg;
  Cfg.PrefetchEnabled = false;
  CacheHierarchy H(Cfg);
  uintptr_t Addr = 0;
  for (auto _ : State) {
    H.onLoad(Addr, 8);
    Addr += 32;
  }
  State.counters["cycles_per_access"] =
      static_cast<double>(H.counters().Cycles) /
      static_cast<double>(H.counters().Loads);
}
BENCHMARK(BM_NoPrefetchSeq);

BENCHMARK_MAIN();
