//===- bench/bench_micro_simcache.cpp - Cache simulator micro-benchmarks -----===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// Micro-benchmarks of the cache simulator itself (the substitution for
// perf hardware counters) and a demonstration of the locality effect the
// whole reproduction rests on: sequential streams are nearly free under
// the stream prefetcher, random streams pay full miss latency.
//
//===----------------------------------------------------------------------===//

#include "simcache/Hierarchy.h"
#include "simcache/ProbeBatch.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

using namespace hcsgc;

static void BM_SeqAccess(benchmark::State &State) {
  CacheHierarchy H;
  uintptr_t Addr = 0;
  for (auto _ : State) {
    H.onLoad(Addr, 8);
    Addr += 32;
  }
  State.counters["l1_miss_rate"] =
      static_cast<double>(H.counters().L1Misses) /
      static_cast<double>(H.counters().Loads);
  State.counters["cycles_per_access"] =
      static_cast<double>(H.counters().Cycles) /
      static_cast<double>(H.counters().Loads);
}
BENCHMARK(BM_SeqAccess);

static void BM_RandomAccess(benchmark::State &State) {
  CacheHierarchy H;
  SplitMix64 Rng(7);
  for (auto _ : State)
    H.onLoad(Rng.nextBelow(64 << 20), 8);
  State.counters["l1_miss_rate"] =
      static_cast<double>(H.counters().L1Misses) /
      static_cast<double>(H.counters().Loads);
  State.counters["cycles_per_access"] =
      static_cast<double>(H.counters().Cycles) /
      static_cast<double>(H.counters().Loads);
}
BENCHMARK(BM_RandomAccess);

static void BM_NoPrefetchSeq(benchmark::State &State) {
  CacheConfig Cfg;
  Cfg.PrefetchEnabled = false;
  CacheHierarchy H(Cfg);
  uintptr_t Addr = 0;
  for (auto _ : State) {
    H.onLoad(Addr, 8);
    Addr += 32;
  }
  State.counters["cycles_per_access"] =
      static_cast<double>(H.counters().Cycles) /
      static_cast<double>(H.counters().Loads);
}
BENCHMARK(BM_NoPrefetchSeq);

//===----------------------------------------------------------------------===//
// Probe delivery: per-access virtual dispatch vs. the batched ring
// (INTERNALS §14). The ISSUE-9 acceptance number is the ratio
// BM_ProbePerAccessDirect / BM_ProbeBatchBarrierOnly — the cost the
// *barrier* pays per instrumented access before vs. after batching.
// BM_ProbeBatchFull keeps us honest about conserved work: with the
// flush's full simulation included, batching only removes the per-event
// dispatch; the big win on the access path comes from deferring the
// simulation to safepoint-side flushes (and, optionally, sampling).
//===----------------------------------------------------------------------===//

namespace {

/// The shared access pattern: pointer-chasing-style spread over 64 MB,
/// identical in every probe-delivery benchmark below.
inline uintptr_t nextProbeAddr(SplitMix64 &Rng) {
  return Rng.nextBelow(64 << 20);
}

/// Swallows flushed events without simulating them — isolates the
/// barrier-side record cost, which is all the mutator pays at the access
/// site (real flushes run at TLAB refills / safepoints, off this path).
class NullProbe : public MemoryProbe {
public:
  void onLoad(uintptr_t, uint32_t) override {}
  void onStore(uintptr_t, uint32_t) override {}
  void onCompute(uint64_t) override {}
  void onBatch(const ProbeEvent *, size_t) override {}
};

} // namespace

/// What the pre-batching barrier paid per access: a virtual call into
/// the simulator for every probed load.
static void BM_ProbePerAccessDirect(benchmark::State &State) {
  CacheHierarchy H;
  MemoryProbe &P = H; // force the virtual dispatch the old barrier paid
  SplitMix64 Rng(7);
  for (auto _ : State)
    P.onLoad(nextProbeAddr(Rng), 8);
  State.counters["events"] =
      static_cast<double>(H.counters().Loads);
}
BENCHMARK(BM_ProbePerAccessDirect);

/// What the batched barrier pays per access at the access site: append
/// to the ring + increment (flush cost excluded via NullProbe).
static void BM_ProbeBatchBarrierOnly(benchmark::State &State) {
  ProbeBatch Batch;
  NullProbe Sink;
  SplitMix64 Rng(7);
  for (auto _ : State)
    if (Batch.record(nextProbeAddr(Rng), 8, /*IsStore=*/false))
      Batch.flush(Sink);
  State.counters["events"] = static_cast<double>(Batch.EventsFlushed);
}
BENCHMARK(BM_ProbeBatchBarrierOnly);

/// End-to-end batched cost with the full simulation inside the flush:
/// same simulated work as the direct path, minus 255/256 of the
/// dispatch. Arg = SimcacheSampleShift (0 = exact, n = keep every
/// 2^n-th event).
static void BM_ProbeBatchFull(benchmark::State &State) {
  CacheHierarchy H;
  ProbeBatch Batch;
  Batch.SampleShift = static_cast<uint32_t>(State.range(0));
  SplitMix64 Rng(7);
  for (auto _ : State)
    if (Batch.record(nextProbeAddr(Rng), 8, /*IsStore=*/false))
      Batch.flush(H);
  Batch.flush(H);
  State.counters["events_simulated"] =
      static_cast<double>(H.counters().Loads);
  State.counters["events_sampled_out"] =
      static_cast<double>(Batch.SampledOut);
}
BENCHMARK(BM_ProbeBatchFull)->Arg(0)->Arg(1)->Arg(3);

/// Exactness check doubling as a bench: replaying one ring through
/// onBatch must produce the same counters as per-access delivery (the
/// determinism contract from ProbeBatch.h).
static void BM_ProbeBatchReplayExactness(benchmark::State &State) {
  SplitMix64 Seq(7);
  for (auto _ : State) {
    State.PauseTiming();
    CacheHierarchy Direct, Batched;
    ProbeBatch Batch;
    SplitMix64 RngA = Seq, RngB = Seq;
    State.ResumeTiming();
    for (unsigned I = 0; I < ProbeBatch::Capacity; ++I)
      Direct.onLoad(nextProbeAddr(RngA), 8);
    for (unsigned I = 0; I < ProbeBatch::Capacity; ++I)
      if (Batch.record(nextProbeAddr(RngB), 8, false))
        Batch.flush(Batched);
    if (Direct.counters().Cycles != Batched.counters().Cycles ||
        Direct.counters().L1Misses != Batched.counters().L1Misses)
      State.SkipWithError("batched replay diverged from per-access");
  }
}
BENCHMARK(BM_ProbeBatchReplayExactness);

BENCHMARK_MAIN();
