//===- bench/bench_table1_pages.cpp - Table 1 --------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// Prints Table 1 (ZGC page size classes) from the implementation's
// geometry, both at paper scale (defaults) and at the scaled geometry the
// benchmarks use, and verifies the invariants (object limit = page/8,
// large pages sized N x small with N x small > 4 MiB at paper scale).
//
//===----------------------------------------------------------------------===//

#include "heap/Geometry.h"

#include <cstdio>

using namespace hcsgc;

static void printGeometry(const char *Title, const HeapGeometry &Geo) {
  std::printf("\n%s\n", Title);
  std::printf("%-16s %-18s %-20s\n", "Page Size Class", "Page Size",
              "Object Size");
  std::printf("%-16s %-18zu [0, %zu]\n", "Small", Geo.SmallPageSize,
              Geo.smallObjectMax());
  std::printf("%-16s %-18zu (%zu, %zu]\n", "Medium", Geo.MediumPageSize,
              Geo.smallObjectMax(), Geo.mediumObjectMax());
  std::printf("%-16s N x %-14zu > %zu\n", "Large", Geo.SmallPageSize,
              Geo.mediumObjectMax());
}

int main() {
  std::printf("Table 1: ZGC page size classes (bytes)\n");

  HeapGeometry Paper; // defaults = the paper's 2 MiB / 32 MiB
  printGeometry("-- Paper scale --", Paper);
  if (Paper.SmallPageSize != (size_t(2) << 20) ||
      Paper.MediumPageSize != (size_t(32) << 20) ||
      Paper.smallObjectMax() != (size_t(256) << 10) ||
      Paper.mediumObjectMax() != (size_t(4) << 20)) {
    std::printf("MISMATCH with Table 1!\n");
    return 1;
  }
  std::printf("matches Table 1: small 2MiB/[0,256KiB], medium "
              "32MiB/(256KiB,4MiB], large N x 2MiB\n");

  HeapGeometry Bench;
  Bench.SmallPageSize = 256 * 1024;
  Bench.MediumPageSize = 4 * 1024 * 1024;
  printGeometry("-- Bench scale (pages scaled with the scaled heaps) --",
                Bench);
  return 0;
}
