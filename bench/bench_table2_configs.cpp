//===- bench/bench_table2_configs.cpp - Table 2 -------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// Prints Table 2 (the 19 benchmark configurations) as implemented by the
// harness. Every figure bench sweeps exactly these.
//
//===----------------------------------------------------------------------===//

#include "harness/Config.h"

#include <cstdio>

using namespace hcsgc;

int main() {
  std::printf("Table 2: configurations used in benchmarking "
              "(0 = unmodified ZGC baseline)\n\n");
  std::printf("%-22s", "Tuning Knobs");
  for (int I = 0; I <= 18; ++I)
    std::printf("%5d", I);
  std::printf("\n");

  auto Row = [](const char *Name, auto Get) {
    std::printf("%-22s", Name);
    for (int I = 0; I <= 18; ++I) {
      KnobConfig K = table2Config(I);
      if (I == 0)
        std::printf("%5s", "n/a");
      else
        Get(K);
    }
    std::printf("\n");
  };

  Row("Hotness",
      [](const KnobConfig &K) { std::printf("%5d", K.Hotness ? 1 : 0); });
  Row("ColdPage",
      [](const KnobConfig &K) { std::printf("%5d", K.ColdPage ? 1 : 0); });
  Row("ColdConfidence", [](const KnobConfig &K) {
    std::printf("%5.1f", K.ColdConfidence);
  });
  Row("RelocateAllSmallPages", [](const KnobConfig &K) {
    std::printf("%5d", K.RelocateAllSmallPages ? 1 : 0);
  });
  Row("LazyRelocate", [](const KnobConfig &K) {
    std::printf("%5d", K.LazyRelocate ? 1 : 0);
  });
  return 0;
}
