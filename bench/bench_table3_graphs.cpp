//===- bench/bench_table3_graphs.cpp - Table 3 --------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// Prints Table 3 (graph datasets): the target LAW subgraph sizes and the
// realized sizes of our synthetic stand-in graphs (see DESIGN.md for the
// substitution rationale), plus degree-distribution summaries showing the
// power-law-ish shape.
//
//===----------------------------------------------------------------------===//

#include "support/ArgParse.h"
#include "workloads/GraphGen.h"

#include <algorithm>
#include <cstdio>

using namespace hcsgc;

static void report(const char *Name, const GraphSpec &Spec,
                   size_t HeapMb) {
  CsrGraph G = generateWebGraph(Spec);
  std::vector<size_t> Degs(G.N);
  for (size_t I = 0; I < G.N; ++I)
    Degs[I] = G.degree(I);
  std::sort(Degs.begin(), Degs.end());
  size_t MaxDeg = Degs.empty() ? 0 : Degs.back();
  size_t P99 = Degs.empty() ? 0 : Degs[Degs.size() * 99 / 100];
  double AvgDeg =
      G.N ? 2.0 * static_cast<double>(G.edgeCount()) /
                static_cast<double>(G.N)
          : 0;
  std::printf("%-18s %10zu %12zu %12zu %8.1f %8zu %8zu %10zu\n", Name,
              G.N, Spec.Edges, G.edgeCount(), AvgDeg, P99, MaxDeg,
              HeapMb);
}

int main(int Argc, char **Argv) {
  ArgParse Args(Argc, Argv);
  double Scale = Args.getDouble("scale", 1.0);

  std::printf("Table 3: graph datasets (synthetic stand-ins for the LAW "
              "subgraphs; scale=%.2f)\n\n",
              Scale);
  std::printf("%-18s %10s %12s %12s %8s %8s %8s %10s\n", "Dataset",
              "Nodes", "EdgesTarget", "EdgesReal", "AvgDeg", "p99Deg",
              "MaxDeg", "Heap(MB)");
  report("uk (CC)", scaleSpec(ukCcSpec(), Scale), 96);
  report("uk (MC)", scaleSpec(ukMcSpec(), Scale), 64);
  report("enwiki (CC)", scaleSpec(enwikiCcSpec(), Scale), 48);
  report("enwiki (MC)", scaleSpec(enwikiMcSpec(), Scale), 64);
  std::printf("\nPaper targets: uk(CC) 28128/900002 @1024MB, uk(MC) "
              "5099/239294 @4096MB,\n               enwiki(CC) "
              "28126/80002 @600MB, enwiki(MC) 43354/170660 @4096MB\n");
  return 0;
}
