//===- examples/gcbench.cpp - Boehm's GCBench on HCSGC --------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// The classic GCBench (Boehm/Ellis/Detlefs): build complete binary trees
// top-down and bottom-up at increasing depths, keeping a long-lived tree
// and array alive throughout. A standard smoke workload for any new
// collector — here it doubles as a demonstration that a *fifth* way of
// exercising the public API works unchanged under every HCSGC knob.
//
//   $ ./gcbench [--max-depth=16] [--config=16]
//
//===----------------------------------------------------------------------===//

#include "harness/Config.h"
#include "runtime/Runtime.h"
#include "support/ArgParse.h"
#include "support/Stopwatch.h"

#include <cstdio>

using namespace hcsgc;

namespace {

ClassId NodeCls;

// Node: ref0 = left, ref1 = right, payload: i, j.
void populate(Mutator &M, int Depth, const Root &ThisNode) {
  if (Depth <= 0)
    return;
  Root Child(M);
  M.allocate(Child, NodeCls);
  M.storeRef(ThisNode, 0, Child);
  populate(M, Depth - 1, Child);
  M.allocate(Child, NodeCls);
  M.storeRef(ThisNode, 1, Child);
  populate(M, Depth - 1, Child);
}

void makeTree(Mutator &M, int Depth, Root &Out) {
  M.allocate(Out, NodeCls);
  if (Depth <= 0)
    return;
  Root L(M), R(M);
  makeTree(M, Depth - 1, L);
  makeTree(M, Depth - 1, R);
  M.storeRef(Out, 0, L);
  M.storeRef(Out, 1, R);
}

int treeDepth(Mutator &M, const Root &Node) {
  if (Node.isNull())
    return 0;
  Root L(M);
  M.loadRef(Node, 0, L);
  int D = 0;
  Root Cur(M), Next(M);
  M.copyRoot(Node, Cur);
  while (!Cur.isNull()) {
    ++D;
    M.loadRef(Cur, 0, Next);
    M.copyRoot(Next, Cur);
  }
  return D;
}

void timeConstruction(Mutator &M, int Depth) {
  int Iterations = 1 << (16 - Depth > 0 ? 16 - Depth : 0);
  if (Iterations < 1)
    Iterations = 1;
  Stopwatch SW;
  {
    Root Temp(M);
    for (int I = 0; I < Iterations; ++I) {
      M.allocate(Temp, NodeCls);
      populate(M, Depth, Temp); // top-down
    }
  }
  double TopDown = SW.elapsedMs();
  SW.restart();
  {
    Root Temp(M);
    for (int I = 0; I < Iterations; ++I)
      makeTree(M, Depth, Temp); // bottom-up
  }
  double BottomUp = SW.elapsedMs();
  std::printf("depth %2d, %6d trees: top-down %8.1f ms, bottom-up "
              "%8.1f ms\n",
              Depth, Iterations, TopDown, BottomUp);
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParse Args(Argc, Argv);
  int MaxDepth = static_cast<int>(Args.getInt("max-depth", 14));
  int ConfigId = static_cast<int>(Args.getInt("config", 16));

  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 256 * 1024;
  Cfg.Geometry.MediumPageSize = 4 * 1024 * 1024;
  Cfg.MaxHeapBytes = 24u << 20;
  Cfg = applyKnobs(Cfg, table2Config(ConfigId));

  Runtime RT(Cfg);
  NodeCls = RT.registerClass("gcbench.Node", 2, 16);
  auto M = RT.attachMutator();

  std::printf("GCBench on HCSGC config %d (%s), heap %zu MB\n\n",
              ConfigId, describeConfig(table2Config(ConfigId)).c_str(),
              Cfg.MaxHeapBytes >> 20);
  Stopwatch Total;
  {
    // Long-lived structures stay alive across the whole run.
    Root LongLived(*M), Array(*M), Tmp(*M);
    M->allocate(LongLived, NodeCls);
    populate(*M, MaxDepth, LongLived);
    M->allocateRefArray(Array, 50000);
    for (uint32_t I = 0; I < 50000; ++I) {
      M->allocate(Tmp, NodeCls);
      M->storeWord(Tmp, 0, I);
      M->storeElem(Array, I, Tmp);
    }

    for (int D = 4; D <= MaxDepth; D += 2)
      timeConstruction(*M, D);

    // Long-lived data must still be intact.
    if (treeDepth(*M, LongLived) != MaxDepth + 1)
      std::printf("ERROR: long-lived tree corrupted!\n");
    M->loadElem(Array, 42, Tmp);
    if (M->loadWord(Tmp, 0) != 42)
      std::printf("ERROR: long-lived array corrupted!\n");
  }
  M.reset();

  std::printf("\ntotal %.1f ms, GC cycles %llu\n", Total.elapsedMs(),
              (unsigned long long)RT.gcStats().cycleCount());
  return 0;
}
