//===- examples/graph_analytics.cpp - Graph workload walk-through --------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// Demonstrates the paper's §4.5 scenario end-to-end on one configuration
// pair: run the biconnectivity analysis on a pointer-scattered managed
// graph under baseline ZGC and under an HCSGC configuration, and compare
// the cache-simulator counters. This is the "aha" demo: same algorithm,
// same graph, different object layout after collection.
//
//   $ ./graph_analytics [--scale=0.2] [--iters=8]
//
//===----------------------------------------------------------------------===//

#include "harness/Config.h"
#include "support/ArgParse.h"
#include "workloads/GraphAlgos.h"

#include <cstdio>

using namespace hcsgc;

static void runOnce(const CsrGraph &Csr, int ConfigId, unsigned Iters) {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 256 * 1024;
  Cfg.Geometry.MediumPageSize = 4 * 1024 * 1024;
  Cfg.MaxHeapBytes = 16u << 20;
  Cfg.EvacBudgetPages = 8;
  Cfg.TriggerFraction = 0.45;
  Cfg.TriggerHysteresisFraction = 0.05;
  Cfg.EnableProbes = true;
  // Cache scaled with the scaled-down graph (see DESIGN.md).
  Cfg.Cache.L1Size = 16 * 1024;
  Cfg.Cache.L2Size = 64 * 1024;
  Cfg.Cache.L3Size = 512 * 1024;
  Cfg = applyKnobs(Cfg, table2Config(ConfigId));

  Runtime RT(Cfg);
  auto M = RT.attachMutator();
  uint64_t Components = 0, Articulation = 0;
  {
    ManagedGraph G(*M, Csr, /*ShuffleSeed=*/0x5eed,
                   /*WithNeighborIds=*/false);
    for (unsigned It = 1; It <= Iters; ++It) {
      CcResult R = connectedComponents(*M, G, It);
      Components = R.Components;
      Articulation = R.ArticulationPoints;
    }
  }
  CacheCounters C = M->counters();
  uint64_t Cycles = RT.gcStats().cycleCount();
  M.reset();

  std::printf("config %2d (%-22s): components=%llu articulation=%llu "
              "gc-cycles=%llu\n"
              "            loads=%10llu  L1 misses=%9llu  LLC misses=%9llu"
              "  sim-cycles=%llu\n",
              ConfigId, describeConfig(table2Config(ConfigId)).c_str(),
              (unsigned long long)Components,
              (unsigned long long)Articulation,
              (unsigned long long)Cycles, (unsigned long long)C.Loads,
              (unsigned long long)C.L1Misses,
              (unsigned long long)C.LlcMisses,
              (unsigned long long)C.Cycles);
}

int main(int Argc, char **Argv) {
  ArgParse Args(Argc, Argv);
  double Scale = Args.getDouble("scale", 0.2);
  unsigned Iters = static_cast<unsigned>(Args.getInt("iters", 8));

  CsrGraph Csr = generateWebGraph(scaleSpec(ukCcSpec(), Scale));
  std::printf("graph: %zu nodes, %zu edges (uk(CC) scaled by %.2f)\n\n",
              Csr.N, Csr.edgeCount(), Scale);

  runOnce(Csr, /*ConfigId=*/0, Iters);  // baseline ZGC
  runOnce(Csr, /*ConfigId=*/16, Iters); // hotness+coldpage+cc1+lazy
  std::printf("\nConfig 16 should show fewer LLC misses and simulated "
              "cycles: mutator-order\nrelocation rebuilt edge objects in "
              "traversal order (see EXPERIMENTS.md for\nmagnitude "
              "discussion).\n");
  return 0;
}
