//===- examples/memdb.cpp - In-memory database on the managed heap -------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// Uses the MiniDb managed B-tree as a library: load a table, run point
// queries, range scans and updates, then show how the collector's
// hot-cold segregation classifies the index (hot) versus row versions
// (mostly cold). This is the §4.6 "h2" scenario as an application.
//
//   $ ./memdb [--rows=40000] [--ops=30000]
//
//===----------------------------------------------------------------------===//

#include "support/ArgParse.h"
#include "support/Random.h"
#include "workloads/MiniDb.h"

#include <cstdio>

using namespace hcsgc;

int main(int Argc, char **Argv) {
  ArgParse Args(Argc, Argv);
  unsigned Rows = static_cast<unsigned>(Args.getInt("rows", 40000));
  unsigned Ops = static_cast<unsigned>(Args.getInt("ops", 30000));

  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 256 * 1024;
  Cfg.Geometry.MediumPageSize = 4 * 1024 * 1024;
  Cfg.MaxHeapBytes = 48u << 20;
  Cfg.Hotness = true;
  Cfg.ColdPage = true;
  Cfg.ColdConfidence = 0.5;
  Cfg.VerboseGc = true;

  Runtime RT(Cfg);
  auto M = RT.attachMutator();
  {
    MiniDb Db(*M);

    std::printf("loading %u rows...\n", Rows);
    SplitMix64 Rng(99);
    for (unsigned I = 0; I < Rows; ++I) {
      int64_t Key = static_cast<int64_t>(Rng.nextBelow(Rows * 4));
      Db.insert(Key, Key * 3 + 1);
    }
    std::printf("loaded: %llu distinct rows, tree height %u\n",
                (unsigned long long)Db.size(), Db.height());

    uint64_t Hits = 0, ScanSum = 0;
    for (unsigned I = 0; I < Ops; ++I) {
      int64_t Key = static_cast<int64_t>(Rng.nextBelow(Rows * 4));
      switch (Rng.nextBelow(10)) {
      case 0: // update: replaces the row version (old one is garbage)
        Db.insert(Key, static_cast<int64_t>(I));
        break;
      case 1:
      case 2: // range scan
        ScanSum += Db.scan(Key, 32);
        break;
      default: { // point query
        int64_t V;
        if (Db.lookup(Key, V))
          ++Hits;
      }
      }
    }
    std::printf("%u ops done: %llu point hits, scan checksum %llu\n", Ops,
                (unsigned long long)Hits, (unsigned long long)ScanSum);

    M->requestGcAndWait();
  }
  M.reset();

  CycleRecord Last;
  bool HaveCycle = false;
  RT.gcStats().forEachCycle([&](const CycleRecord &R) {
    Last = R;
    HaveCycle = true;
  });
  if (HaveCycle)
    std::printf("\nlast GC cycle: live=%lluKB hot=%lluKB — the B-tree "
                "index and recent rows are the hot fraction the\n"
                "COLDCONFIDENCE knob excavates from otherwise-dense "
                "pages.\n",
                (unsigned long long)(Last.LiveBytesMarked / 1024),
                (unsigned long long)(Last.HotBytesMarked / 1024));
  return 0;
}
