//===- examples/phase_adaptive.cpp - Adapting to phase changes ------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// Shows HCSGC's headline property (§1, Fig. 5): when a program changes
// its access pattern over the same objects, mutator-driven relocation
// re-lays them out for the *new* pattern — something no static layout
// can do. We run three phases with different random access orders and
// print per-phase cache-miss rates: each phase starts expensive and gets
// cheap once a GC cycle lets the mutator reorder the objects.
//
//   $ ./phase_adaptive [--array=150000] [--rounds=12]
//
//===----------------------------------------------------------------------===//

#include "support/ArgParse.h"
#include "support/Random.h"
#include "runtime/Runtime.h"

#include <cstdio>

using namespace hcsgc;

int main(int Argc, char **Argv) {
  ArgParse Args(Argc, Argv);
  size_t ArraySize = static_cast<size_t>(Args.getInt("array", 100000));
  unsigned Rounds = static_cast<unsigned>(Args.getInt("rounds", 12));

  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 256 * 1024;
  Cfg.Geometry.MediumPageSize = 4 * 1024 * 1024;
  Cfg.MaxHeapBytes = 10u << 20;
  Cfg.TriggerFraction = 0.55;
  Cfg.TriggerHysteresisFraction = 0.05;
  Cfg.EnableProbes = true;
  // Config 18: relocate-all + lazy — maximal mutator participation.
  Cfg.Hotness = true;
  Cfg.ColdPage = true;
  Cfg.RelocateAllSmallPages = true;
  Cfg.LazyRelocate = true;

  Runtime RT(Cfg);
  ClassId Elem = RT.registerClass("phase.Elem", 0, 24);
  ClassId GarbageCls = RT.registerClass("phase.Garbage", 0, 248);
  auto M = RT.attachMutator();
  {
    Root Arr(*M), Tmp(*M), Garbage(*M);
    M->allocateRefArray(Arr, static_cast<uint32_t>(ArraySize));
    for (size_t I = 0; I < ArraySize; ++I) {
      M->allocate(Tmp, Elem);
      M->storeWord(Tmp, 0, static_cast<int64_t>(I));
      M->storeElem(Arr, static_cast<uint32_t>(I), Tmp);
    }

    std::printf("%-6s %-6s %12s %12s %14s\n", "phase", "round", "loads",
                "L1 misses", "miss rate");
    SplitMix64 Rng(0);
    uint64_t Sink = 0;
    for (unsigned Phase = 0; Phase < 3; ++Phase) {
      for (unsigned Round = 0; Round < Rounds; ++Round) {
        CacheCounters Before = M->counters();
        Rng.seed(Phase * 7 + 1); // per-phase stable access order
        for (size_t J = 0; J < ArraySize / 2; ++J) {
          uint32_t Idx =
              static_cast<uint32_t>(Rng.nextBelow(ArraySize));
          M->loadElem(Arr, Idx, Tmp);
          Sink += static_cast<uint64_t>(M->loadWord(Tmp, 0));
          if (J % 8 == 0)
            M->allocate(Garbage, GarbageCls); // churn keeps cycles coming
        }
        CacheCounters After = M->counters();
        uint64_t Loads = After.Loads - Before.Loads;
        uint64_t Miss = After.L1Misses - Before.L1Misses;
        std::printf("%-6u %-6u %12llu %12llu %13.1f%%\n", Phase, Round,
                    (unsigned long long)Loads, (unsigned long long)Miss,
                    100.0 * static_cast<double>(Miss) /
                        static_cast<double>(Loads ? Loads : 1));
      }
      std::printf("-- access pattern changes --\n");
    }
    std::printf("(sink %llu)\n", (unsigned long long)Sink);
  }
  M.reset();
  std::printf("GC cycles: %llu\n",
              (unsigned long long)RT.gcStats().cycleCount());
  return 0;
}
