//===- examples/quickstart.cpp - Hello, HCSGC ----------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// The smallest useful program: create a runtime, attach a mutator, build
// a linked structure, survive a few GC cycles, and inspect the collector
// statistics. Start here.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

#include <cstdio>

using namespace hcsgc;

int main() {
  // 1. Configure the collector. These five knobs are the paper's
  //    Table 2 tuning knobs; this is "config 16" (hotness + cold page +
  //    full cold confidence + lazy relocation).
  GcConfig Cfg;
  Cfg.MaxHeapBytes = 64u << 20;
  Cfg.Hotness = true;
  Cfg.ColdPage = true;
  Cfg.ColdConfidence = 1.0;
  Cfg.LazyRelocate = true;
  Cfg.VerboseGc = true;    // print one line per GC cycle
  Cfg.TraceEnabled = true; // record GC events for chrome://tracing
  // Per-object events (hot flags, relocations) are plentiful; give each
  // thread a deeper ring so the demo trace keeps most of them.
  Cfg.TraceBufferEvents = size_t(1) << 17;

  Runtime RT(Cfg);

  // 2. Describe your object shapes: a list node with one reference slot
  //    ("next") and 16 bytes of payload.
  ClassId Node = RT.registerClass("quickstart.Node", /*NumRefs=*/1,
                                  /*PayloadBytes=*/16);

  // 3. Attach the current thread as a mutator. All heap access flows
  //    through it (and through the paper's load barrier).
  auto M = RT.attachMutator();
  {
    // 4. Roots are scoped handles; anything reachable from them
    //    survives collection (and relocation).
    Root Head(*M), Cur(*M), Tmp(*M);
    M->allocate(Head, Node);
    M->storeWord(Head, 0, 0);
    M->copyRoot(Head, Cur);
    const int N = 100000;
    for (int I = 1; I < N; ++I) {
      M->allocate(Tmp, Node);
      M->storeWord(Tmp, 0, I);
      M->storeRef(Cur, 0, Tmp); // Cur->next = Tmp
      M->copyRoot(Tmp, Cur);
    }

    // 5. Force two GC cycles (normally they trigger on heap usage) and
    //    walk the list — every object may have been relocated, yet the
    //    structure is intact.
    M->requestGcAndWait();
    M->requestGcAndWait();

    long Sum = 0;
    M->copyRoot(Head, Cur);
    for (int I = 0; I < N; ++I) {
      Sum += M->loadWord(Cur, 0);
      if (I + 1 < N) {
        M->loadRef(Cur, 0, Tmp);
        M->copyRoot(Tmp, Cur);
      }
    }
    std::printf("sum over %d nodes: %ld (expected %ld)\n", N, Sum,
                static_cast<long>(N) * (N - 1) / 2);
  }
  M.reset(); // detach before the runtime goes away

  // 6. Collector statistics.
  RT.gcStats().forEachCycle([](const CycleRecord &R) {
    std::printf("cycle %llu: EC small pages=%llu, relocated by "
                "mutators=%llu, by GC threads=%llu\n",
                (unsigned long long)R.Cycle,
                (unsigned long long)R.SmallPagesInEc,
                (unsigned long long)R.ObjectsRelocatedByMutators,
                (unsigned long long)R.ObjectsRelocatedByGc);
  });

  // 7. Aggregated metrics (counters the driver publishes every cycle)...
  std::printf("gc.cycles=%llu  gc.reloc.bytes_mutator=%llu  "
              "gc.reloc.bytes_gc=%llu\n",
              (unsigned long long)RT.metrics().counterValue("gc.cycles"),
              (unsigned long long)RT.metrics().counterValue(
                  "gc.reloc.bytes_mutator"),
              (unsigned long long)RT.metrics().counterValue(
                  "gc.reloc.bytes_gc"));

  // ...and the full event trace, viewable in chrome://tracing / Perfetto
  // or summarized with tools/gctrace.
  const char *TracePath = "quickstart_trace.json";
  if (RT.dumpTrace(TracePath))
    std::printf("wrote %s (open in chrome://tracing, or run: gctrace "
                "%s)\n",
                TracePath, TracePath);
  return 0;
}
