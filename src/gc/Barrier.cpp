//===- gc/Barrier.cpp - ZGC-style load barrier -------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gc/Barrier.h"

#include "gc/Marker.h"
#include "gc/Relocator.h"

using namespace hcsgc;

Oop hcsgc::loadBarrierSlow(GcHeap &Heap, std::atomic<Oop> *Slot,
                           Oop Observed, ThreadContext &Ctx) {
  Ctx.probeCompute(Heap.config().BarrierSlowPathCycles);
  for (;;) {
    uintptr_t Addr = oopAddr(Observed);
    Page *P = Heap.pageTable().lookup(Addr);
    assert(P && "stale pointer outside the heap");

    uintptr_t Cur = Addr;
    if (P->isRelocSourceOrQuarantined()) {
      if (P->state() == PageState::RelocSource) {
        // Relocation window: relocate the object ourselves or adopt the
        // winning copy. This is the mutator-participation mechanism of
        // §3.2 (GC workers also come through here while draining).
        Cur = relocateOrForward(Heap, P, Addr, Ctx);
      } else {
        Cur = P->forwarding()->lookup(P->offsetOf(Addr));
        if (HCSGC_UNLIKELY(Cur == 0))
          fatalError("unforwarded stale pointer to quarantined page");
      }
    }

    // During the M/R phase, a slow-path hit is both a mark obligation and
    // a hotness signal ("Mutators flag an object as hot on the slow path
    // of a load barrier (because if accessed, it is hot by definition)",
    // §3.1.2).
    if (Heap.markActive()) {
      Page *Target = Cur == Addr ? P : Heap.pageTable().lookup(Cur);
      if (Heap.config().Hotness &&
          Target->sizeClass() == PageSizeClass::Small &&
          Target->allocSeq() < Heap.currentCycle()) {
        Ctx.probeLoad(Cur, HeaderBytes);
        ObjectView TV(Cur);
        if (Target->flagHot(Cur, TV.sizeBytes()))
          HCSGC_TRACE(Heap.traceSession(), Ctx.Trace, Ctx.IsGcThread,
                      TraceEventKind::HotFlag, Heap.currentCycle(), Cur,
                      TV.sizeBytes());
      }
      markAndPush(Heap, Cur, Ctx);
    }

    // Self-heal the slot.
    Oop Good = Heap.makeGood(Cur);
    if (Slot->compare_exchange_strong(Observed, Good,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
      Ctx.probeStore(reinterpret_cast<uintptr_t>(Slot), 8);
      return Good;
    }
    // Lost the heal race: the slot now holds either a good value (another
    // thread healed it, or a mutator stored a different reference) or a
    // new stale value to process.
    if (Observed == NullOop || Heap.isGood(Observed))
      return Observed;
  }
}
