//===- gc/Barrier.h - ZGC-style load barrier -------------------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The load barrier (§2): "Loading a pointer from heap to stack always
/// involves a check — a load barrier — and a good-coloured pointer will
/// always hit the fast path which incurs no additional work. Otherwise it
/// will hit the slow path and the slot where this pointer resides will be
/// updated with a good coloured alias" (self-healing).
///
/// The slow path, by page state:
///  - RelocSource page (evacuation candidate, relocation window): the
///    caller relocates the object itself — this is how mutators lay
///    objects out in access order (§3.2) — or adopts the already-published
///    copy.
///  - Quarantined page (evacuated earlier): forwarding-table lookup.
///  - Active page: the object has not moved; only the color is stale.
/// During marking the slow path additionally marks the target and flags
/// it hot (§3.1.2).
///
/// Contract: callers poll safepoints *before* invoking the barrier and
/// must not poll between the barrier and the dereference of its result;
/// the returned good-colored address is valid until the next poll.
///
/// Cost model: the fast path is one load + mask + compare (~4 ns,
/// BM_BarrierFastPath). With probes on, the caller additionally records
/// the access into a per-thread ProbeBatch ring (store + increment,
/// ~0.4 ns) rather than simulating it inline — the fast-path cost
/// budget and the batching/flush protocol are INTERNALS §14.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_GC_BARRIER_H
#define HCSGC_GC_BARRIER_H

#include "gc/GcHeap.h"
#include "support/Compiler.h"

namespace hcsgc {

/// Out-of-line slow path; \p Observed is the stale value just loaded.
Oop loadBarrierSlow(GcHeap &Heap, std::atomic<Oop> *Slot, Oop Observed,
                    ThreadContext &Ctx);

/// Loads a reference from \p Slot through the barrier.
/// \returns a good-colored oop (or null).
inline Oop loadBarrier(GcHeap &Heap, std::atomic<Oop> *Slot,
                       ThreadContext &Ctx) {
  Oop V = Slot->load(std::memory_order_acquire);
  if (HCSGC_LIKELY(V == NullOop || Heap.isGood(V)))
    return V;
  return loadBarrierSlow(Heap, Slot, V, Ctx);
}

/// Stores \p GoodValue (a good-colored oop or null, typically obtained
/// from loadBarrier or a fresh allocation) into \p Slot. No read of the
/// old value is needed: marking correctness comes from the load barrier
/// alone (§2).
inline void storeBarrier(std::atomic<Oop> *Slot, Oop GoodValue) {
  Slot->store(GoodValue, std::memory_order_release);
}

} // namespace hcsgc

#endif // HCSGC_GC_BARRIER_H
