//===- gc/ColoredPtr.h - ZGC-style colored pointers ------------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Colored pointers per §2 of the paper: "pointers have colours (captured
/// by meta data stored in the higher-order bits of pointer addresses), and
/// at every moment in time, all threads agree on what colour is the good
/// colour". The three colors are M0, M1 (alternating mark colors) and R
/// (the relocation color); the good color changes twice per cycle, at STW1
/// (to M0 or M1) and at STW3 (to R) — see Fig. 2 of the paper.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_GC_COLOREDPTR_H
#define HCSGC_GC_COLOREDPTR_H

#include "heap/ObjectModel.h"

#include <atomic>
#include <cassert>

namespace hcsgc {

/// Color metadata values (stored shifted into the pointer's high bits).
enum class PtrColor : uint64_t {
  None = 0,
  M0 = 1,
  M1 = 2,
  R = 4,
};

constexpr unsigned ColorShift = 60;
constexpr Oop OopAddrMask = (Oop(1) << ColorShift) - 1;
constexpr Oop OopColorMask = Oop(7) << ColorShift;

/// \returns the address bits of \p V (the color is stripped).
inline uintptr_t oopAddr(Oop V) {
  return static_cast<uintptr_t>(V & OopAddrMask);
}

/// \returns the color of \p V.
inline PtrColor oopColor(Oop V) {
  return static_cast<PtrColor>(V >> ColorShift);
}

/// \returns \p Addr tinted with \p C.
inline Oop makeOop(uintptr_t Addr, PtrColor C) {
  assert((Addr & ~OopAddrMask) == 0 && "address clobbers color bits");
  return static_cast<Oop>(Addr) |
         (static_cast<Oop>(C) << ColorShift);
}

/// \returns the mark color to use in the cycle after \p Prev (M0 and M1
/// alternate, Fig. 2).
inline PtrColor nextMarkColor(PtrColor Prev) {
  return Prev == PtrColor::M0 ? PtrColor::M1 : PtrColor::M0;
}

/// Heap reference slots are plain words in page memory; all concurrent
/// accesses go through std::atomic. This helper reinterprets a slot
/// address as an atomic word (the standard lock-free-64-bit idiom used by
/// production runtimes).
inline std::atomic<Oop> *oopSlot(uintptr_t SlotAddr) {
  static_assert(sizeof(std::atomic<Oop>) == sizeof(Oop),
                "atomic<Oop> must be layout-compatible with Oop");
  static_assert(std::atomic<Oop>::is_always_lock_free,
                "atomic<Oop> must be lock-free");
  return reinterpret_cast<std::atomic<Oop> *>(SlotAddr);
}

} // namespace hcsgc

#endif // HCSGC_GC_COLOREDPTR_H
