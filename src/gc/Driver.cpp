//===- gc/Driver.cpp - GC cycle orchestration ---------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gc/Driver.h"

#include "gc/Barrier.h"
#include "gc/Marker.h"
#include "gc/Relocator.h"
#include "inject/FaultInject.h"
#include "support/MathExtras.h"
#include "support/Stopwatch.h"

#include <cassert>
#include <chrono>
#include <cstdio>

#if __has_include(<sys/mman.h>)
#include <sys/mman.h>
#endif

using namespace hcsgc;

GcDriver::GcDriver(GcHeap &Heap, SafepointManager &SP, RuntimeHooks Hooks)
    : Heap(Heap), SP(SP), Hooks(std::move(Hooks)) {
  const GcConfig &Cfg = Heap.config();

  CoordCtx.IsGcThread = true;
  if (Cfg.EnableProbes) {
    CoordProbe = std::make_unique<CacheHierarchy>(Cfg.Cache);
    CoordCtx.Probe = CoordProbe.get();
  }
  Heap.registerContext(&CoordCtx);

  MetricsRegistry &MR = Heap.metrics();
  Met.Cycles = &MR.counter("gc.cycles");
  Met.RelocObjMut = &MR.counter("gc.reloc.objects_mutator");
  Met.RelocObjGc = &MR.counter("gc.reloc.objects_gc");
  Met.RelocBytesMut = &MR.counter("gc.reloc.bytes_mutator");
  Met.RelocBytesGc = &MR.counter("gc.reloc.bytes_gc");
  Met.LiveBytes = &MR.counter("gc.marked.live_bytes");
  Met.HotBytes = &MR.counter("gc.marked.hot_bytes");
  Met.EcSmallPages = &MR.counter("gc.ec.small_pages");
  Met.EcMediumPages = &MR.counter("gc.ec.medium_pages");
  Met.EmptyReclaimed = &MR.counter("gc.ec.empty_pages_reclaimed");
  Met.TempHotBytes = &MR.counter("temp.hot_bytes");
  Met.TempWarmBytes = &MR.counter("temp.warm_bytes");
  Met.TempColdBytes = &MR.counter("temp.cold_bytes");
  Met.TempAgingWalks = &MR.counter("temp.aging_walks");
  Met.ColdRelocBytes = &MR.counter("coldpage.relocated_bytes");
  Met.ColdMadviseCalls = &MR.counter("coldpage.madvise_calls");
  Met.ColdMadviseBytes = &MR.counter("coldpage.madvise_bytes");
  Met.PauseUs = &MR.histogram("gc.pause_us");
  Met.HotRatioPct = &MR.histogram("gc.hot_ratio_pct");
  Met.RelocBytesPerCycle = &MR.histogram("gc.reloc_bytes_per_cycle");
  Met.ColdResidentBytes = &MR.histogram("coldpage.resident_bytes");

  unsigned NumWorkers = Cfg.GcWorkers ? Cfg.GcWorkers : 1;
  for (unsigned I = 0; I < NumWorkers; ++I) {
    auto Ctx = std::make_unique<ThreadContext>();
    Ctx->IsGcThread = true;
    if (Cfg.EnableProbes) {
      WorkerProbes.push_back(std::make_unique<CacheHierarchy>(Cfg.Cache));
      Ctx->Probe = WorkerProbes.back().get();
    }
    Heap.registerContext(Ctx.get());
    WorkerCtxs.push_back(std::move(Ctx));
  }
  for (unsigned I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
  Coordinator = std::thread([this] { coordinatorLoop(); });
}

GcDriver::~GcDriver() { shutdown(); }

void GcDriver::requestCycle() {
  std::lock_guard<std::mutex> G(CycleLock);
  if (!CycleRequested) {
    CycleRequested = true;
    CycleCv.notify_all();
  }
}

uint64_t GcDriver::completedCycles() const {
  std::lock_guard<std::mutex> G(CycleLock);
  return Completed;
}

void GcDriver::waitForCompletedCycles(uint64_t N) {
  std::unique_lock<std::mutex> L(CycleLock);
  CycleCv.wait(L, [&] { return Completed >= N || ExitRequested; });
}

void GcDriver::waitIdle() {
  std::unique_lock<std::mutex> L(CycleLock);
  CycleCv.wait(L, [&] {
    return (!InCycle && !CycleRequested) || ExitRequested;
  });
}

void GcDriver::requestCycleAndWait() {
  uint64_t Target;
  {
    std::lock_guard<std::mutex> G(CycleLock);
    Target = Completed + 1;
    CycleRequested = true;
    CycleCv.notify_all();
  }
  waitForCompletedCycles(Target);
}

void GcDriver::requestCyclesAndWait(unsigned N) {
  for (unsigned I = 0; I < N; ++I)
    requestCycleAndWait();
}

void GcDriver::requestEmergencyCycleAndWait() {
  uint64_t Target;
  {
    std::lock_guard<std::mutex> G(CycleLock);
    Target = EmergencyCompleted + 1;
    EmergencyRequested = true;
    CycleRequested = true;
    CycleCv.notify_all();
  }
  std::unique_lock<std::mutex> L(CycleLock);
  CycleCv.wait(
      L, [&] { return EmergencyCompleted >= Target || ExitRequested; });
}

void GcDriver::shutdown() {
  {
    std::lock_guard<std::mutex> G(CycleLock);
    if (ExitRequested && !Coordinator.joinable())
      return;
    ExitRequested = true;
    CycleCv.notify_all();
  }
  if (Coordinator.joinable())
    Coordinator.join();
  startTask(Task::Exit);
  for (std::thread &W : Workers)
    if (W.joinable())
      W.join();
  Heap.unregisterContext(&CoordCtx);
  for (auto &Ctx : WorkerCtxs)
    Heap.unregisterContext(Ctx.get());
}

CacheCounters GcDriver::gcThreadCounters() const {
  // Workers drained their batches at task end (workerLoop); the
  // coordinator's ring can still hold events from root scans and EC
  // selection, so drain it here. Callers hold the documented contract —
  // driver idle or shut down — which makes the const_cast safe.
  const_cast<GcDriver *>(this)->CoordCtx.flushProbes();
  CacheCounters Sum;
  if (CoordProbe)
    Sum += CoordProbe->counters();
  for (const auto &P : WorkerProbes)
    Sum += P->counters();
  return Sum;
}

// --- Worker task machinery ----------------------------------------------

void GcDriver::startTask(Task T) {
  std::lock_guard<std::mutex> G(TaskLock);
  CurrentTask = T;
  ++TaskEpoch;
  RunningWorkers = static_cast<unsigned>(Workers.size());
  TaskCv.notify_all();
}

void GcDriver::waitTaskDone() {
  std::unique_lock<std::mutex> L(TaskLock);
  TaskDoneCv.wait(L, [&] { return RunningWorkers == 0; });
  CurrentTask = Task::None;
}

void GcDriver::workerLoop(unsigned Id) {
  ThreadContext &Ctx = *WorkerCtxs[Id];
  uint64_t SeenEpoch = 0;
  for (;;) {
    Task T;
    {
      std::unique_lock<std::mutex> L(TaskLock);
      TaskCv.wait(L, [&] { return TaskEpoch != SeenEpoch; });
      SeenEpoch = TaskEpoch;
      T = CurrentTask;
    }
    if (T == Task::Exit)
      return;
    if (T == Task::Mark)
      markTask(Ctx);
    else if (T == Task::Relocate)
      relocateTask(Ctx);
    // Worker-side drain of the probe-event batch: by the time the
    // coordinator sees RunningWorkers == 0 every worker ring is empty,
    // so gcThreadCounters never reads a worker mid-batch.
    Ctx.flushProbes();
    {
      std::lock_guard<std::mutex> G(TaskLock);
      if (--RunningWorkers == 0)
        TaskDoneCv.notify_all();
    }
  }
}

void GcDriver::markTask(ThreadContext &Ctx) {
  using namespace std::chrono_literals;
  for (;;) {
    (void)drainMarkWork(Heap, Ctx);
    if (StopMark.load(std::memory_order_acquire))
      return;
    // No work: declare idle, then wait for the queue to refill. The
    // ordering (idle++ only while provably empty-handed, idle-- before
    // taking work again) is what makes the coordinator's termination
    // check inside STW2 sound.
    IdleWorkers.fetch_add(1, std::memory_order_acq_rel);
    while (!StopMark.load(std::memory_order_acquire) &&
           Heap.markQueue().empty())
      std::this_thread::sleep_for(50us);
    IdleWorkers.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void GcDriver::relocateTask(ThreadContext &Ctx) {
  for (;;) {
    size_t I = RelocNext.fetch_add(1, std::memory_order_relaxed);
    if (I >= RelocPages.size())
      return;
    relocatePage(Heap, RelocPages[I], RelocEcCycle, Ctx);
  }
}

// --- Cycle machine ---------------------------------------------------------

void GcDriver::stwPause(GcPhase Phase, uint64_t Cycle,
                        const std::function<void()> &Fn) {
  HCSGC_TRACE(Heap.traceSession(), CoordCtx.Trace, true,
              TraceEventKind::PauseBegin, Cycle,
              static_cast<uint64_t>(Phase));
  SP.beginPause();
  Fn();
  SP.endPause();
  HCSGC_TRACE(Heap.traceSession(), CoordCtx.Trace, true,
              TraceEventKind::PauseEnd, Cycle,
              static_cast<uint64_t>(Phase));
}

void GcDriver::recordCycle(const CycleRecord &Rec) {
  Heap.stats().addCycle(Rec);
  Met.Cycles->increment();
  Met.RelocObjMut->add(Rec.ObjectsRelocatedByMutators);
  Met.RelocObjGc->add(Rec.ObjectsRelocatedByGc);
  Met.RelocBytesMut->add(Rec.BytesRelocatedByMutators);
  Met.RelocBytesGc->add(Rec.BytesRelocatedByGc);
  Met.LiveBytes->add(Rec.LiveBytesMarked);
  Met.HotBytes->add(Rec.HotBytesMarked);
  Met.EcSmallPages->add(Rec.SmallPagesInEc);
  Met.EcMediumPages->add(Rec.MediumPagesInEc);
  Met.EmptyReclaimed->add(Rec.EmptyPagesReclaimed);
  for (double Ms : {Rec.Stw1Ms, Rec.Stw2Ms, Rec.Stw3Ms})
    Met.PauseUs->record(static_cast<uint64_t>(Ms * 1000.0));
  if (Rec.LiveBytesMarked > 0)
    Met.HotRatioPct->record(Rec.HotBytesMarked * 100 /
                            Rec.LiveBytesMarked);
  Met.RelocBytesPerCycle->record(Rec.BytesRelocated);
}

void GcDriver::drainRelocationSet(EcSet &Ec, CycleRecord &Rec) {
  Stopwatch Sw;
  HCSGC_TRACE(Heap.traceSession(), CoordCtx.Trace, true,
              TraceEventKind::PhaseBegin, Ec.Cycle,
              static_cast<uint64_t>(GcPhase::Relocate));
  RelocPages = Ec.Pages;
  RelocNext.store(0, std::memory_order_relaxed);
  RelocEcCycle = Ec.Cycle;
  startTask(Task::Relocate);
  waitTaskDone();
  RelocPages.clear();
  HCSGC_TRACE(Heap.traceSession(), CoordCtx.Trace, true,
              TraceEventKind::PhaseEnd, Ec.Cycle,
              static_cast<uint64_t>(GcPhase::Relocate));

  uint64_t ByMut = 0, ByGc = 0, BytesMut = 0, BytesGc = 0;
  Heap.takeRelocationCounters(ByMut, ByGc, BytesMut, BytesGc);
  if (uint64_t ColdBytes = Heap.takeColdRelocationBytes())
    Met.ColdRelocBytes->add(ColdBytes);
  Rec.ObjectsRelocatedByMutators += ByMut;
  Rec.ObjectsRelocatedByGc += ByGc;
  Rec.BytesRelocatedByMutators += BytesMut;
  Rec.BytesRelocatedByGc += BytesGc;
  Rec.BytesRelocated += BytesMut + BytesGc;
  Rec.RelocMs += Sw.elapsedMs();
  Rec.UsedAfterBytes = Heap.allocator().usedBytes();

  if (Heap.config().VerboseGc)
    std::fprintf(stderr,
                 "[gc] cycle=%llu ec_small=%llu ec_medium=%llu empty=%llu "
                 "reloc_mut=%llu reloc_gc=%llu live=%lluK hot=%lluK "
                 "used=%lluK\n",
                 (unsigned long long)Rec.Cycle,
                 (unsigned long long)Rec.SmallPagesInEc,
                 (unsigned long long)Rec.MediumPagesInEc,
                 (unsigned long long)Rec.EmptyPagesReclaimed,
                 (unsigned long long)Rec.ObjectsRelocatedByMutators,
                 (unsigned long long)Rec.ObjectsRelocatedByGc,
                 (unsigned long long)(Rec.LiveBytesMarked / 1024),
                 (unsigned long long)(Rec.HotBytesMarked / 1024),
                 (unsigned long long)(Rec.UsedAfterBytes / 1024));
}

void GcDriver::accumulateTemperatureTiers(uint64_t Cycle) {
  const GcConfig &Cfg = Heap.config();
  const unsigned Proven = std::min(Page::MaxColdStreak,
                                   std::max(1u, Cfg.ColdTempCycles));
  uint64_t Tiers[Page::TempTiers] = {0, 0, 0, 0};
  Heap.allocator().forEachActivePage([&](Page &P) {
    if (!P.tracksTemperature())
      return;
    // Pages installed during this cycle have no trustworthy livemap yet
    // (same filter the EC selector applies); leave their totals zeroed so
    // the temperature WLB degrades to plain live bytes for them.
    if (P.allocSeq() >= Cycle) {
      P.accumulateTempTierBytes(Proven); // zeroes stale totals
      return;
    }
    P.accumulateTempTierBytes(Proven);
    for (unsigned T = 0; T < Page::TempTiers; ++T)
      Tiers[T] += P.tempTierBytes(T);
  });
  // Tier 2-3 objects were referenced recently enough to count as hot;
  // tier 1 is cooling; tier 0 is the cold candidate mass.
  Met.TempHotBytes->add(Tiers[2] + Tiers[3]);
  Met.TempWarmBytes->add(Tiers[1]);
  Met.TempColdBytes->add(Tiers[0]);
}

void GcDriver::coldReclaimPass(uint64_t Cycle) {
  const GcConfig &Cfg = Heap.config();
  Heap.allocator().forEachActivePage([&](Page &P) {
    // Adoption: a settled page whose whole live population proved cold
    // joins the cold tier. All-cold pages keep WLB == live bytes
    // (§3.1.3: nothing to excavate), so EC never re-selects them and
    // relocation can never route their objects to a cold destination —
    // without adoption their bytes would sit outside the reclaimable
    // accounting forever. The tier totals are from this cycle's
    // accumulate pass, so only pages that predate the cycle (and were
    // not selected: still Active, not pinned) are judged.
    if (P.tracksTemperature() && P.tier() != PageTier::Cold &&
        P.state() == PageState::Active && !P.isPinnedAsTarget() &&
        P.allocSeq() < Cycle && P.liveBytes() > 0 &&
        P.provenColdBytes() == P.liveBytes())
      Heap.allocator().notePageTier(&P, PageTier::Cold);
  });
  // Total cold-tier RSS the OS could drop without losing live data (the
  // pages are live, MADV_COLD only deactivates them — never DONTNEED).
  Met.ColdResidentBytes->record(Heap.allocator().coldPageBytes());
  if (Cfg.ColdReclaim == ColdReclaimMode::Off)
    return;
  Heap.allocator().forEachActivePage([&](Page &P) {
    if (P.tier() != PageTier::Cold || P.isPinnedAsTarget() ||
        P.madviseDone())
      return;
    P.setMadviseDone();
    Met.ColdMadviseCalls->increment();
    Met.ColdMadviseBytes->add(P.size());
    if (Cfg.ColdReclaim == ColdReclaimMode::Madvise) {
#ifdef MADV_COLD
      ::madvise(reinterpret_cast<void *>(P.begin()), P.size(), MADV_COLD);
#endif
    }
  });
}

void GcDriver::runCycle(bool Emergency) {
  using namespace std::chrono_literals;
  const GcConfig &Cfg = Heap.config();
  CycleRecord Rec;

  // The cycle number STW1 will assign below; only the coordinator bumps
  // the counter, so reading it early is race-free. The trace marks the
  // cycle as begun *before* the lazy drain: under LAZYRELOCATE "each GC
  // cycle (except the first) starts with releasing memory" (Fig. 3), and
  // the invariant tests lean on that ordering.
  const uint64_t ThisCycle = Heap.currentCycle() + 1;
  HCSGC_TRACE(Heap.traceSession(), CoordCtx.Trace, true,
              TraceEventKind::CycleBegin, ThisCycle);
  if (Emergency)
    HCSGC_TRACE(Heap.traceSession(), CoordCtx.Trace, true,
                TraceEventKind::EmergencyCycle, ThisCycle,
                Heap.allocator().usedBytes(),
                Heap.allocator().quarantinedBytes());
  HCSGC_INJECT_DELAY(PhaseDelay);

  // Phase 0 (LAZYRELOCATE, Fig. 3): "each GC cycle (except the first)
  // starts with releasing memory" — drain the previous cycle's deferred
  // relocation set. The good color is still R, so the invariants match a
  // normal RE phase; mutators have had the whole inter-cycle window to
  // relocate in access order.
  if (PendingEc) {
    drainRelocationSet(*PendingEc, *PendingRecord);
    recordCycle(*PendingRecord);
    PendingEc.reset();
    PendingRecord.reset();
  }

  // Reset livemaps/hotmaps ahead of STW1. No thread writes marking
  // metadata outside the M/R phase, so this is safe to do concurrently
  // and keeps the pause brief. §3.1.2: "the hotmap is reset at the start
  // of every marking phase". Under TEMPERATURE the reset walk doubles as
  // the aging walk: flagHot only fires while markActive, which is false
  // here, so folding last cycle's hotmap into the 2-bit counters (decay
  // if unreferenced, cold-streak bump at zero) cannot race a bump.
  {
    // Walks the allocator's page registries in place: no snapshot vector
    // is copied and no allocator lock is taken (only the coordinator
    // releases pages, so coordinator-side iteration cannot race page
    // teardown).
    size_t NumPages = 0;
    const bool Age = Cfg.Temperature;
    // SITEPROFILING piggybacks on the same walk: fold last cycle's final
    // livemap/hotmap into the per-site survival window before the reset
    // wipes them, then close the profile window (EWMA aging + route
    // refresh) so mutators allocate under the new verdicts from STW1 on.
    SiteProfileTable *Prof = Heap.siteProfile();
    Heap.allocator().forEachActivePage([&](Page &P) {
      if (Prof && P.tracksSites() && P.liveBytes() > 0)
        P.forEachLiveObject([&](uintptr_t Addr) {
          ObjectView V(Addr);
          Prof->noteSurvival(P.siteOf(Addr),
                             alignUp(V.sizeBytes(), ObjectAlignment),
                             P.isHot(Addr));
        });
      if (Age)
        P.ageTemperature();
      P.clearMarkState();
      ++NumPages;
    });
    if (Age)
      Met.TempAgingWalks->increment();
    if (Prof)
      Prof->endCycle();
    HCSGC_TRACE(Heap.traceSession(), CoordCtx.Trace, true,
                TraceEventKind::HotmapReset, ThisCycle, NumPages);
  }

  // STW1: flip to the next mark color, retire allocation/relocation
  // target pages, scan and heal roots into the mark queue.
  Stopwatch PauseSw;
  stwPause(GcPhase::Stw1, ThisCycle, [&] {
    Rec.Cycle = Heap.bumpCycle();
    LastMarkColor = nextMarkColor(LastMarkColor);
    Heap.setGoodColor(LastMarkColor);
    Heap.setMarkActive(true);
    // resetAllocTargets drops every per-thread bump target, including
    // the medium TLABs that replaced the old shared medium page — there
    // is no longer any global allocation page to reset separately. The
    // one exception is the pretenure TLAB: it keeps its pin so EC skips
    // the slowly-filling cold page instead of churning it.
    Heap.forEachContext([](ThreadContext &C) {
      assert(C.MarkBuffer.empty() && "mark buffer survived across cycles");
      C.resetAllocTargets();
    });
    Hooks.ForEachRoot(
        [&](std::atomic<Oop> *Slot) { markSlot(Heap, Slot, CoordCtx); });
    flushMarkBuffer(Heap, CoordCtx);
  });
  Rec.Stw1Ms = PauseSw.elapsedMs();
  HCSGC_INJECT_DELAY(PhaseDelay);

  // Concurrent Mark/Remap with parallel workers; mutators cooperate via
  // their barrier slow paths and flush their stacks at polls.
  Stopwatch MarkSw;
  HCSGC_TRACE(Heap.traceSession(), CoordCtx.Trace, true,
              TraceEventKind::PhaseBegin, ThisCycle,
              static_cast<uint64_t>(GcPhase::Mark));
  StopMark.store(false, std::memory_order_release);
  startTask(Task::Mark);
  unsigned NumWorkers = static_cast<unsigned>(Workers.size());
  for (;;) {
    while (!(IdleWorkers.load(std::memory_order_acquire) == NumWorkers &&
             Heap.markQueue().empty()))
      std::this_thread::sleep_for(100us);

    // STW2 candidate: flush mutator mark stacks; if marking is truly
    // finished, end it inside the pause.
    bool Done = false;
    PauseSw.restart();
    stwPause(GcPhase::Stw2, ThisCycle, [&] {
      Heap.forEachContext([&](ThreadContext &C) {
        if (!C.IsGcThread)
          flushMarkBuffer(Heap, C);
      });
      if (Heap.markQueue().empty() &&
          IdleWorkers.load(std::memory_order_acquire) == NumWorkers) {
        Heap.setMarkActive(false);
        StopMark.store(true, std::memory_order_release);
        Done = true;
      }
    });
    if (Done)
      break;
  }
  Rec.Stw2Ms = PauseSw.elapsedMs();
  waitTaskDone();
  Rec.MarkMs = MarkSw.elapsedMs();
  HCSGC_TRACE(Heap.traceSession(), CoordCtx.Trace, true,
              TraceEventKind::PhaseEnd, ThisCycle,
              static_cast<uint64_t>(GcPhase::Mark));
  HCSGC_INJECT_DELAY(PhaseDelay);

  // With TEMPERATURE on, fold the final livemaps into per-tier byte
  // totals now: both the AfterMark snapshot below and the EC selector
  // read Page::tempTierBytes, so the accumulation must come first.
  if (Cfg.Temperature)
    accumulateTemperatureTiers(Rec.Cycle);

  // Observatory capture point 1: livemaps/hotmaps are final, nothing has
  // been reclaimed or selected yet.
  Heap.captureSnapshot(SnapshotPoint::AfterMark, Rec.Cycle, nullptr);

  // Marking healed every reachable slot, so forwarding tables from the
  // previous cycle can never be consulted again: retire quarantined pages
  // and reuse their address ranges.
  // One batched pass per cycle: each shard's lock is taken at most once.
  Heap.allocator().releaseQuarantinedBefore(Rec.Cycle);

  // Concurrent EC selection, audited when the observatory is armed.
  EcAudit Audit;
  bool WantAudit = Heap.snapshotter().enabled();
  EcSet Ec = selectEvacuationCandidates(Heap, CoordCtx,
                                        WantAudit ? &Audit : nullptr);
  Rec.SmallPagesInEc = Ec.SmallCount;
  Rec.MediumPagesInEc = Ec.MediumCount;
  Rec.EmptyPagesReclaimed = Ec.EmptyReclaimed;
  Rec.LiveBytesMarked = Ec.LiveBytesTotal;
  Rec.HotBytesMarked = Ec.HotBytesTotal;

  // Observatory capture point 2: selected pages are now RelocSource; the
  // audit rides along. Taken before the auto-tuner moves the effective
  // confidence so the snapshot's WLBs match the audit's.
  Heap.captureSnapshot(SnapshotPoint::AfterEc, Rec.Cycle,
                       WantAudit ? &Audit : nullptr);

  // §4.8 feedback loop (future work in the paper, implemented here as an
  // optional knob): steer COLDCONFIDENCE toward the cold fraction of the
  // live set. A cold-heavy heap means hot objects are buried and worth
  // excavating (confidence up); a hot-dense heap means selection should
  // fall back to plain live bytes (confidence down). Exponential
  // smoothing avoids oscillation.
  if (Cfg.AutoTuneColdConfidence && Rec.LiveBytesMarked > 0) {
    double HotRatio = static_cast<double>(Rec.HotBytesMarked) /
                      static_cast<double>(Rec.LiveBytesMarked);
    double Target = std::min(1.0, std::max(0.0, 1.0 - HotRatio));
    double Cur = Heap.effectiveColdConfidence();
    Heap.setEffectiveColdConfidence(0.6 * Cur + 0.4 * Target);
  }

  // STW3: flip the good color to R (invalidating every pointer) and heal
  // all roots — relocating root-referenced EC objects on the spot, so
  // that "by the end of STW3, all roots pointing into EC are relocated".
  HCSGC_INJECT_DELAY(PhaseDelay);
  PauseSw.restart();
  stwPause(GcPhase::Stw3, ThisCycle, [&] {
    Heap.setGoodColor(PtrColor::R);
    Hooks.ForEachRoot([&](std::atomic<Oop> *Slot) {
      (void)loadBarrier(Heap, Slot, CoordCtx);
    });
  });
  Rec.Stw3Ms = PauseSw.elapsedMs();

  // RE: either now (baseline ZGC) or deferred to the start of the next
  // cycle (LAZYRELOCATE), leaving relocation to mutators meanwhile. An
  // emergency cycle always drains immediately: its caller is about to
  // declare exhaustion and needs every reclaimable byte back now.
  HCSGC_INJECT_DELAY(PhaseDelay);
  if (Cfg.LazyRelocate && !Emergency) {
    PendingEc = std::move(Ec);
    PendingRecord = Rec;
  } else {
    drainRelocationSet(Ec, Rec);
    recordCycle(Rec);
  }

  // Cold pages populated during RE (or by mutators, under LAZYRELOCATE)
  // are stable until some future cycle routes their survivors elsewhere:
  // account their resident bytes as reclaimable RSS and advise the
  // kernel once per page.
  if (Cfg.Temperature && Cfg.ColdPage)
    coldReclaimPass(Rec.Cycle);

  // End-of-cycle probe drain: the coordinator's ring holds the root-scan
  // and EC-selection accesses of this cycle.
  CoordCtx.flushProbes();

  HCSGC_TRACE(Heap.traceSession(), CoordCtx.Trace, true,
              TraceEventKind::CycleEnd, ThisCycle);
}

void GcDriver::coordinatorLoop() {
  for (;;) {
    bool Emergency = false;
    {
      std::unique_lock<std::mutex> L(CycleLock);
      CycleCv.wait(L, [&] { return CycleRequested || ExitRequested; });
      if (!CycleRequested && ExitRequested)
        break;
      CycleRequested = false;
      Emergency = EmergencyRequested;
      EmergencyRequested = false;
      InCycle = true;
    }
    runCycle(Emergency);
    Heap.resetAllocatedSinceCycle();
    {
      std::lock_guard<std::mutex> G(CycleLock);
      ++Completed;
      if (Emergency)
        ++EmergencyCompleted;
      InCycle = false;
      CycleCv.notify_all();
    }
  }

  // Drain any deferred relocation so statistics are complete and all
  // memory accounting is final before the runtime tears down.
  if (PendingEc) {
    drainRelocationSet(*PendingEc, *PendingRecord);
    recordCycle(*PendingRecord);
    PendingEc.reset();
    PendingRecord.reset();
  }
}
