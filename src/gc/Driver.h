//===- gc/Driver.h - GC cycle orchestration --------------------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cycle driver: one coordinator thread running the phase machine of
/// Fig. 1 — STW1 (flip to mark color, scan roots), concurrent Mark/Remap,
/// STW2 (termination), EC selection, STW3 (flip to R, relocate roots),
/// concurrent RE — plus a pool of GC worker threads that execute the
/// parallel marking and relocation tasks. Under LAZYRELOCATE the RE phase
/// of cycle N is deferred to the start of cycle N+1 (Fig. 3), leaving the
/// whole inter-cycle window to mutator-driven relocation.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_GC_DRIVER_H
#define HCSGC_GC_DRIVER_H

#include "gc/EcSelector.h"
#include "gc/GcHeap.h"
#include "gc/Safepoint.h"

#include <condition_variable>
#include <functional>
#include <optional>
#include <thread>
#include <vector>

namespace hcsgc {

/// Callbacks the runtime provides to the driver.
struct RuntimeHooks {
  /// Invokes the callback on every root slot (mutator local roots plus
  /// global roots). Called only inside STW pauses.
  std::function<void(const std::function<void(std::atomic<Oop> *)> &)>
      ForEachRoot;
};

/// Owns the coordinator and worker threads and runs GC cycles.
class GcDriver {
public:
  GcDriver(GcHeap &Heap, SafepointManager &SP, RuntimeHooks Hooks);
  ~GcDriver();

  GcDriver(const GcDriver &) = delete;
  GcDriver &operator=(const GcDriver &) = delete;

  /// Asynchronously requests a cycle (idempotent while one is pending).
  void requestCycle();

  /// Number of fully completed cycles (a LAZYRELOCATE cycle counts as
  /// completed when it has deferred its relocation set).
  uint64_t completedCycles() const;

  /// Blocks the calling mutator (which must wrap itself in a
  /// BlockedScope) until at least \p N cycles have completed.
  void waitForCompletedCycles(uint64_t N);

  /// Blocks until no cycle is running or requested. Used by the harness
  /// to read consistent statistics after a workload finishes.
  void waitIdle();

  /// Convenience: request a cycle and wait for it. The caller must be a
  /// mutator thread; it is marked blocked for the duration.
  void requestCycleAndWait();

  /// Requests and waits for \p N back-to-back cycles. The allocation
  /// stall path uses N=2 under LAZYRELOCATE: cycle k defers its
  /// relocation set, so memory selected for evacuation is not released
  /// before cycle k+1 has drained it.
  void requestCyclesAndWait(unsigned N);

  /// Runs one emergency synchronous cycle: even under LAZYRELOCATE the
  /// cycle drains its own relocation set immediately (after first
  /// draining any deferred set), so it reclaims everything reclaimable
  /// before the caller declares heap exhaustion.
  void requestEmergencyCycleAndWait();

  /// Stops the coordinator and workers. Any deferred relocation set is
  /// drained first so all statistics are final.
  void shutdown();

  /// Aggregated cache counters of all GC threads (coordinator+workers);
  /// meaningful when probes are enabled. Safe to call when the driver is
  /// idle or shut down.
  CacheCounters gcThreadCounters() const;

private:
  enum class Task { None, Mark, Relocate, Exit };

  void coordinatorLoop();
  void workerLoop(unsigned Id);
  void runCycle(bool Emergency);
  void drainRelocationSet(EcSet &Ec, CycleRecord &Rec);

  /// Coordinator-only post-mark pass (TEMPERATURE): folds each tracked
  /// small page's livemap into per-tier byte totals — the inputs both the
  /// snapshot capture and the EC selector read — and publishes the
  /// tier-summed totals to the temp.* counters.
  void accumulateTemperatureTiers(uint64_t Cycle);

  /// End-of-cycle cold-page pass: adopts settled pages whose whole live
  /// population has proven cold into the cold tier (EC never re-selects
  /// all-cold pages, so adoption is their only route into the
  /// reclaimable set), records the reclaimable cold-resident RSS and,
  /// when COLDRECLAIM is active, advises the kernel (or counts, in
  /// Simulate mode) once per cold page.
  void coldReclaimPass(uint64_t Cycle);

  /// Commits a finished cycle record: appends it to GcStats and folds it
  /// into the metrics registry (counters + pause/ratio histograms).
  void recordCycle(const CycleRecord &Rec);

  void startTask(Task T);
  void waitTaskDone();
  void markTask(ThreadContext &Ctx);
  void relocateTask(ThreadContext &Ctx);

  /// Runs \p Fn inside a stop-the-world pause, bracketed by trace pause
  /// events stamped with \p Phase and \p Cycle (passed explicitly because
  /// STW1 bumps the cycle counter inside the pause).
  void stwPause(GcPhase Phase, uint64_t Cycle,
                const std::function<void()> &Fn);

  GcHeap &Heap;
  SafepointManager &SP;
  RuntimeHooks Hooks;

  std::thread Coordinator;
  std::vector<std::thread> Workers;
  std::vector<std::unique_ptr<ThreadContext>> WorkerCtxs;
  std::vector<std::unique_ptr<CacheHierarchy>> WorkerProbes;
  ThreadContext CoordCtx;
  std::unique_ptr<CacheHierarchy> CoordProbe;

  // Request/completion state.
  mutable std::mutex CycleLock;
  std::condition_variable CycleCv;
  bool CycleRequested = false;
  bool EmergencyRequested = false;
  bool ExitRequested = false;
  bool InCycle = false;
  uint64_t Completed = 0;
  uint64_t EmergencyCompleted = 0;

  // Worker task dispatch.
  std::mutex TaskLock;
  std::condition_variable TaskCv;
  std::condition_variable TaskDoneCv;
  Task CurrentTask = Task::None;
  uint64_t TaskEpoch = 0;
  unsigned RunningWorkers = 0;

  // Marking coordination.
  std::atomic<bool> StopMark{false};
  std::atomic<unsigned> IdleWorkers{0};

  // Relocation work list.
  std::vector<Page *> RelocPages;
  std::atomic<size_t> RelocNext{0};
  uint64_t RelocEcCycle = 0;

  // LazyRelocate state: EC deferred to the next cycle, plus the
  // statistics record still awaiting relocation attribution.
  std::optional<EcSet> PendingEc;
  std::optional<CycleRecord> PendingRecord;

  PtrColor LastMarkColor = PtrColor::M1; // so the first cycle uses M0

  // Cached metric handles (registry lookup takes a lock; resolve once in
  // the constructor, update lock-free per cycle).
  struct {
    Counter *Cycles = nullptr;
    Counter *RelocObjMut = nullptr;
    Counter *RelocObjGc = nullptr;
    Counter *RelocBytesMut = nullptr;
    Counter *RelocBytesGc = nullptr;
    Counter *LiveBytes = nullptr;
    Counter *HotBytes = nullptr;
    Counter *EcSmallPages = nullptr;
    Counter *EcMediumPages = nullptr;
    Counter *EmptyReclaimed = nullptr;
    Counter *TempHotBytes = nullptr;
    Counter *TempWarmBytes = nullptr;
    Counter *TempColdBytes = nullptr;
    Counter *TempAgingWalks = nullptr;
    Counter *ColdRelocBytes = nullptr;
    Counter *ColdMadviseCalls = nullptr;
    Counter *ColdMadviseBytes = nullptr;
    Histogram *PauseUs = nullptr;
    Histogram *HotRatioPct = nullptr;
    Histogram *RelocBytesPerCycle = nullptr;
    Histogram *ColdResidentBytes = nullptr;
  } Met;
};

} // namespace hcsgc

#endif // HCSGC_GC_DRIVER_H
