//===- gc/EcSelector.cpp - Evacuation candidate selection --------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gc/EcSelector.h"

#include <algorithm>

using namespace hcsgc;

double hcsgc::weightedLiveBytes(const Page &P, bool Hotness,
                                double ColdConfidence) {
  double Live = static_cast<double>(P.liveBytes());
  if (!Hotness)
    return Live;
  double Hot = static_cast<double>(P.hotBytes());
  double Cold = static_cast<double>(P.coldBytes());
  if (Hot == 0.0)
    return Cold; // == live bytes: no hot objects to excavate (§3.1.3).
  return Hot + Cold * (1.0 - ColdConfidence);
}

double hcsgc::weightedLiveBytes(const Page &P, const GcConfig &Cfg) {
  return weightedLiveBytes(P, Cfg.Hotness, Cfg.ColdConfidence);
}

double hcsgc::reclamationDemand(size_t UsedBytes, size_t QuarantinedBytes,
                                size_t MaxHeapBytes,
                                double TriggerFraction) {
  // Target 90% of the trigger point so the next cycle starts with slack;
  // quarantined bytes are unreclaimed until the end of the next M/R and
  // must be covered by additional selection, not counted as freed.
  double Occupied = static_cast<double>(UsedBytes) +
                    static_cast<double>(QuarantinedBytes);
  double Target =
      TriggerFraction * static_cast<double>(MaxHeapBytes) * 0.9;
  return std::max(0.0, Occupied - Target);
}

namespace {
struct Candidate {
  Page *P;
  double Weight;
};
} // namespace

/// Sorts candidates ascending by weight and selects the maximal prefix
/// whose cumulative weight fits the budget (§2.2's constraint). On top of
/// the locality budget, reclamation demand is honored: like production
/// ZGC, the relocation set keeps growing (garbage-richest pages first)
/// until at least \p RequiredFree bytes would be reclaimed, so allocation
/// cannot outrun a fixed budget into OOM.
static void selectPrefix(std::vector<Candidate> &Cands, double Budget,
                         double RequiredFree, std::vector<Page *> &Out,
                         uint64_t &Count) {
  std::sort(Cands.begin(), Cands.end(),
            [](const Candidate &A, const Candidate &B) {
              if (A.Weight != B.Weight)
                return A.Weight < B.Weight;
              return A.P->begin() < B.P->begin();
            });
  double Sum = 0.0, Freed = 0.0;
  for (const Candidate &C : Cands) {
    bool WithinBudget = Sum + C.Weight <= Budget;
    bool NeedMemory = Freed < RequiredFree;
    if (!WithinBudget && !NeedMemory)
      break;
    Sum += C.Weight;
    Freed += static_cast<double>(C.P->size()) -
             static_cast<double>(C.P->liveBytes());
    Out.push_back(C.P);
    ++Count;
  }
}

EcSet hcsgc::selectEvacuationCandidates(GcHeap &Heap,
                                        ThreadContext &Ctx) {
  const GcConfig &Cfg = Heap.config();
  const HeapGeometry &Geo = Cfg.Geometry;
  EcSet Ec;
  Ec.Cycle = Heap.currentCycle();

  HCSGC_TRACE(Heap.traceSession(), Ctx.Trace, Ctx.IsGcThread,
              TraceEventKind::PhaseBegin, Ec.Cycle,
              static_cast<uint64_t>(GcPhase::EcSelect),
              traceBitsFromDouble(Heap.effectiveColdConfidence()),
              Cfg.Hotness ? 1 : 0);

  std::vector<Candidate> Small, Medium;
  std::vector<Page *> Dead;

  // Iterates the allocator's page registries directly — the same in-place
  // view the driver's hotmap-reset pass used at the start of this cycle,
  // with no snapshot vector copied under a lock. Pages installed during
  // the walk may or may not be visited; either way the allocSeq filter
  // below excludes them, so the selection sees one consistent pre-STW1
  // page population.
  Heap.allocator().forEachActivePage([&](Page &Pg) {
    Page *P = &Pg;
    // Only pages allocated prior to STW1 have trustworthy liveness info
    // (§2.2: "all small pages that are allocated prior to STW1").
    if (P->allocSeq() >= Ec.Cycle)
      return;
    Ec.LiveBytesTotal += P->liveBytes();
    Ec.HotBytesTotal += P->hotBytes();

    if (P->liveBytes() == 0) {
      // Nothing on the page is reachable; reclaim without relocation.
      // This covers large pages too ("we can decide whether that large
      // page should be kept or reclaimed right away", §2.2).
      //
      // Invariant: no in-use bump-allocation target can reach this
      // point. STW1's resetAllocTargets unpinned every pre-cycle target
      // (small TLABs, medium TLABs, relocation targets), and pages
      // adopted afterwards carry allocSeq >= Ec.Cycle and were filtered
      // above. The pin check turns that schedule argument into a runtime
      // assertion, and the defensive skip keeps a violation from
      // corrupting the heap in release builds.
      assert(!P->isPinnedAsTarget() &&
             "EC dead-page reclaim hit an in-use allocation target");
      if (P->isPinnedAsTarget())
        return;
      Dead.push_back(P);
      return;
    }

    switch (P->sizeClass()) {
    case PageSizeClass::Small: {
      // The traced WLB is recomputed inside the macro so the untraced
      // RELOCATEALLSMALLPAGES path keeps skipping the computation.
      HCSGC_TRACE(Heap.traceSession(), Ctx.Trace, Ctx.IsGcThread,
                  TraceEventKind::EcPageConsidered, Ec.Cycle, P->begin(),
                  P->liveBytes(), P->hotBytes(),
                  traceBitsFromDouble(weightedLiveBytes(
                      *P, Cfg.Hotness, Heap.effectiveColdConfidence())));
      if (Cfg.RelocateAllSmallPages) {
        // §3.1.1: crude-but-simple — all small pages, no sorting/budget.
        Small.push_back({P, 0.0});
        break;
      }
      double W = weightedLiveBytes(*P, Cfg.Hotness,
                                   Heap.effectiveColdConfidence());
      double Ratio = W / static_cast<double>(P->size());
      if (Ratio <= Cfg.EvacLiveThreshold)
        Small.push_back({P, W});
      break;
    }
    case PageSizeClass::Medium: {
      // Medium pages keep the original ZGC criteria (§3.4). The pin
      // invariant extends to medium candidates: a live per-thread medium
      // TLAB from this cycle was filtered by allocSeq above, and
      // pre-cycle TLABs were dropped at STW1 — so no candidate can be an
      // in-use bump target.
      assert(!P->isPinnedAsTarget() &&
             "EC medium candidate is an in-use medium TLAB");
      if (P->isPinnedAsTarget())
        break;
      double W = static_cast<double>(P->liveBytes());
      if (W / static_cast<double>(P->size()) <= Cfg.EvacLiveThreshold)
        Medium.push_back({P, W});
      break;
    }
    case PageSizeClass::Large:
      break; // Live large pages are never relocated.
    }
  });

  for (Page *P : Dead) {
    ++Ec.EmptyReclaimed;
    HCSGC_TRACE(Heap.traceSession(), Ctx.Trace, Ctx.IsGcThread,
                TraceEventKind::EcPageReclaimed, Ec.Cycle, P->begin(),
                P->size());
    Heap.allocator().releasePage(P);
  }

  // Reclamation demand: bring usage back under the trigger threshold
  // even if that exceeds the locality budget. Quarantined pages count as
  // occupied — evacuating into quarantine frees nothing until the end of
  // the next M/R, so demand must be met net of them.
  double RequiredFree = reclamationDemand(
      Heap.allocator().usedBytes(), Heap.allocator().quarantinedBytes(),
      Heap.allocator().maxHeapBytes(), Cfg.TriggerFraction);

  if (Cfg.RelocateAllSmallPages) {
    for (const Candidate &C : Small) {
      Ec.Pages.push_back(C.P);
      ++Ec.SmallCount;
    }
  } else {
    double Budget = Cfg.EvacBudgetFraction *
                    static_cast<double>(Geo.SmallPageSize) *
                    Cfg.EvacBudgetPages;
    selectPrefix(Small, Budget, RequiredFree, Ec.Pages, Ec.SmallCount);
  }
  double MediumBudget = Cfg.EvacBudgetFraction *
                        static_cast<double>(Geo.MediumPageSize) *
                        Cfg.EvacBudgetPages;
  selectPrefix(Medium, MediumBudget, 0.0, Ec.Pages, Ec.MediumCount);

  // Install forwarding tables; mutators begin relocating these pages only
  // after STW3 flips the good color to R.
  for (Page *P : Ec.Pages) {
    HCSGC_TRACE(Heap.traceSession(), Ctx.Trace, Ctx.IsGcThread,
                TraceEventKind::EcPageSelected, Ec.Cycle, P->begin(),
                P->liveBytes(), P->hotBytes(),
                traceBitsFromDouble(
                    P->sizeClass() == PageSizeClass::Small
                        ? weightedLiveBytes(*P, Cfg.Hotness,
                                            Heap.effectiveColdConfidence())
                        : static_cast<double>(P->liveBytes())));
    P->beginEvacuation();
  }

  HCSGC_TRACE(Heap.traceSession(), Ctx.Trace, Ctx.IsGcThread,
              TraceEventKind::PhaseEnd, Ec.Cycle,
              static_cast<uint64_t>(GcPhase::EcSelect));
  return Ec;
}
