//===- gc/EcSelector.cpp - Evacuation candidate selection --------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gc/EcSelector.h"

#include <algorithm>
#include <unordered_map>

using namespace hcsgc;

double hcsgc::weightedLiveBytes(const Page &P, bool Hotness,
                                double ColdConfidence) {
  // One shared formula (observe/HeapSnapshot.h) so the selector, the
  // snapshot capture and the offline replay agree bit-for-bit.
  return wlbFormula(P.liveBytes(), P.hotBytes(), Hotness, ColdConfidence);
}

double hcsgc::weightedLiveBytes(const Page &P, const GcConfig &Cfg) {
  return weightedLiveBytes(P, Cfg.Hotness, Cfg.ColdConfidence);
}

double hcsgc::reclamationDemand(size_t UsedBytes, size_t QuarantinedBytes,
                                size_t MaxHeapBytes,
                                double TriggerFraction) {
  // Target 90% of the trigger point so the next cycle starts with slack;
  // quarantined bytes are unreclaimed until the end of the next M/R and
  // must be covered by additional selection, not counted as freed.
  double Occupied = static_cast<double>(UsedBytes) +
                    static_cast<double>(QuarantinedBytes);
  double Target =
      TriggerFraction * static_cast<double>(MaxHeapBytes) * 0.9;
  return std::max(0.0, Occupied - Target);
}

namespace {
struct Candidate {
  Page *P;
  double Weight;
  uint64_t Live; ///< liveBytes() as read during the walk (audit-stable).
};

SnapSizeClass snapClassOf(PageSizeClass C) {
  switch (C) {
  case PageSizeClass::Small:
    return SnapSizeClass::Small;
  case PageSizeClass::Medium:
    return SnapSizeClass::Medium;
  case PageSizeClass::Large:
    return SnapSizeClass::Large;
  }
  return SnapSizeClass::Large;
}
} // namespace

/// Sorts candidates ascending by weight and selects the maximal prefix
/// whose cumulative weight fits the budget (§2.2's constraint). On top of
/// the locality budget, reclamation demand is honored: like production
/// ZGC, the relocation set keeps growing (garbage-richest pages first)
/// until at least \p RequiredFree bytes would be reclaimed, so allocation
/// cannot outrun a fixed budget into OOM.
static void selectPrefix(std::vector<Candidate> &Cands, double Budget,
                         double RequiredFree, std::vector<Page *> &Out,
                         uint64_t &Count) {
  std::sort(Cands.begin(), Cands.end(),
            [](const Candidate &A, const Candidate &B) {
              if (A.Weight != B.Weight)
                return A.Weight < B.Weight;
              return A.P->begin() < B.P->begin();
            });
  double Sum = 0.0, Freed = 0.0;
  for (const Candidate &C : Cands) {
    bool WithinBudget = Sum + C.Weight <= Budget;
    bool NeedMemory = Freed < RequiredFree;
    if (!WithinBudget && !NeedMemory)
      break;
    Sum += C.Weight;
    // C.Live (not a re-read of liveBytes()) so the audited replay, which
    // only has the recorded value, performs identical arithmetic.
    Freed += static_cast<double>(C.P->size()) -
             static_cast<double>(C.Live);
    Out.push_back(C.P);
    ++Count;
  }
}

EcSet hcsgc::selectEvacuationCandidates(GcHeap &Heap, ThreadContext &Ctx,
                                        EcAudit *Audit) {
  const GcConfig &Cfg = Heap.config();
  const HeapGeometry &Geo = Cfg.Geometry;
  // Read the confidence once: the auto-tuner can move it between cycles,
  // and every weight this selection computes (and the audit records) must
  // use the same value so the offline replay is bit-exact.
  const double EffCc = Heap.effectiveColdConfidence();
  EcSet Ec;
  Ec.Cycle = Heap.currentCycle();

  HCSGC_TRACE(Heap.traceSession(), Ctx.Trace, Ctx.IsGcThread,
              TraceEventKind::PhaseBegin, Ec.Cycle,
              static_cast<uint64_t>(GcPhase::EcSelect),
              traceBitsFromDouble(EffCc), Cfg.Hotness ? 1 : 0);

  if (Audit) {
    Audit->Cycle = Ec.Cycle;
    Audit->ColdConfidence = EffCc;
    Audit->EvacLiveThreshold = Cfg.EvacLiveThreshold;
    Audit->Hotness = Cfg.Hotness ? 1 : 0;
    Audit->RelocateAll = Cfg.RelocateAllSmallPages ? 1 : 0;
    Audit->Temperature = Cfg.Temperature ? 1 : 0;
    Audit->Entries.clear();
  }
  // Page begin -> index into Audit->Entries, to flip the verdict of the
  // candidates that make it through selectPrefix to Selected at the end.
  std::unordered_map<uint64_t, size_t> AuditIndex;
  auto note = [&](const Page &P, uint64_t Live, uint64_t Hot, double W,
                  EcVerdict V, const uint64_t *TB = nullptr) {
    if (!Audit)
      return;
    AuditIndex[P.begin()] = Audit->Entries.size();
    EcAuditEntry E;
    E.PageBegin = P.begin();
    E.PageSize = P.size();
    E.LiveBytes = Live;
    E.HotBytes = Hot;
    E.Weight = W;
    if (TB)
      for (unsigned T = 0; T < SnapTempTiers; ++T)
        E.TempBytes[T] = TB[T];
    E.SizeClass = snapClassOf(P.sizeClass());
    E.Pinned = static_cast<uint8_t>(P.isPinnedAsTarget());
    E.Verdict = V;
    Audit->Entries.push_back(E);
  };

  std::vector<Candidate> Small, Medium;
  std::vector<Page *> Dead;

  // Iterates the allocator's page registries directly — the same in-place
  // view the driver's hotmap-reset pass used at the start of this cycle,
  // with no snapshot vector copied under a lock. Pages installed during
  // the walk may or may not be visited; either way the allocSeq filter
  // below excludes them, so the selection sees one consistent pre-STW1
  // page population.
  Heap.allocator().forEachActivePage([&](Page &Pg) {
    Page *P = &Pg;
    // Only pages allocated prior to STW1 have trustworthy liveness info
    // (§2.2: "all small pages that are allocated prior to STW1").
    if (P->allocSeq() >= Ec.Cycle)
      return;
    // Read the mark counters once: every decision (and the audit record)
    // below must be a function of these exact values.
    const uint64_t Live = P->liveBytes();
    const uint64_t Hot = P->hotBytes();
    Ec.LiveBytesTotal += Live;
    Ec.HotBytesTotal += Hot;

    // A pinned pre-STW1 page is an in-use bump-allocation target that
    // survived resetAllocTargets — today that is exactly the persistent
    // pretenure TLAB (SITEPROFILING): cold-routed sites trickle-fill a
    // warm/cold page across cycles, and a half-full cold page's low
    // live ratio would otherwise make it a bargain candidate, churning
    // the very bytes pretenuring placed. It is also excluded from the
    // dead-page fast path: its liveBytes() can read 0 while a mutator
    // is about to bump into it. The audit records the pin, and the
    // offline replay skips pinned entries the same way.
    if (P->isPinnedAsTarget()) {
      note(*P, Live, Hot, 0.0, EcVerdict::PinnedSkipped);
      return;
    }

    if (Live == 0) {
      // Nothing on the page is reachable; reclaim without relocation.
      // This covers large pages too ("we can decide whether that large
      // page should be kept or reclaimed right away", §2.2).
      note(*P, Live, Hot, 0.0, EcVerdict::DeadReclaimed);
      Dead.push_back(P);
      return;
    }

    switch (P->sizeClass()) {
    case PageSizeClass::Small: {
      // Per-tier byte totals were accumulated by the driver's post-mark
      // coordinator pass; read them once so the audit records exactly the
      // selector's inputs (a non-tracking page reads all zeros, which
      // wlbTempFormula maps to plain live bytes — same as the replay).
      uint64_t TB[SnapTempTiers] = {0, 0, 0, 0};
      if (Cfg.Temperature)
        for (unsigned T = 0; T < SnapTempTiers; ++T)
          TB[T] = P->tempTierBytes(T);
      // The traced WLB is recomputed inside the macro so the untraced
      // RELOCATEALLSMALLPAGES path keeps skipping the computation.
      HCSGC_TRACE(Heap.traceSession(), Ctx.Trace, Ctx.IsGcThread,
                  TraceEventKind::EcPageConsidered, Ec.Cycle, P->begin(),
                  Live, Hot,
                  traceBitsFromDouble(
                      Cfg.Temperature
                          ? wlbTempFormula(Live, TB, Cfg.Hotness, EffCc)
                          : wlbFormula(Live, Hot, Cfg.Hotness, EffCc)));
      if (Cfg.RelocateAllSmallPages) {
        // §3.1.1: crude-but-simple — all small pages, no sorting/budget.
        // Candidates start as RejectedBudget and flip to Selected below;
        // under RELOCATEALLSMALLPAGES everything flips.
        note(*P, Live, Hot, 0.0, EcVerdict::RejectedBudget,
             Cfg.Temperature ? TB : nullptr);
        Small.push_back({P, 0.0, Live});
        break;
      }
      double W = Cfg.Temperature
                     ? wlbTempFormula(Live, TB, Cfg.Hotness, EffCc)
                     : wlbFormula(Live, Hot, Cfg.Hotness, EffCc);
      double Ratio = W / static_cast<double>(P->size());
      if (Ratio <= Cfg.EvacLiveThreshold) {
        note(*P, Live, Hot, W, EcVerdict::RejectedBudget,
             Cfg.Temperature ? TB : nullptr);
        Small.push_back({P, W, Live});
      } else {
        note(*P, Live, Hot, W, EcVerdict::RejectedThreshold,
             Cfg.Temperature ? TB : nullptr);
      }
      break;
    }
    case PageSizeClass::Medium: {
      // Medium pages keep the original ZGC criteria (§3.4). No candidate
      // can be an in-use bump target: a live per-thread medium TLAB from
      // this cycle was filtered by allocSeq above, pre-cycle TLABs were
      // dropped at STW1, and the one target that survives the reset (the
      // pretenure TLAB, always a small page) was skipped by the pin
      // check above.
      double W = static_cast<double>(Live);
      if (W / static_cast<double>(P->size()) <= Cfg.EvacLiveThreshold) {
        note(*P, Live, Hot, W, EcVerdict::RejectedBudget);
        Medium.push_back({P, W, Live});
      } else {
        note(*P, Live, Hot, W, EcVerdict::RejectedThreshold);
      }
      break;
    }
    case PageSizeClass::Large:
      note(*P, Live, Hot, static_cast<double>(Live),
           EcVerdict::LargeIgnored);
      break; // Live large pages are never relocated.
    }
  });

  for (Page *P : Dead) {
    ++Ec.EmptyReclaimed;
    HCSGC_TRACE(Heap.traceSession(), Ctx.Trace, Ctx.IsGcThread,
                TraceEventKind::EcPageReclaimed, Ec.Cycle, P->begin(),
                P->size());
    Heap.allocator().releasePage(P);
  }

  // Reclamation demand: bring usage back under the trigger threshold
  // even if that exceeds the locality budget. Quarantined pages count as
  // occupied — evacuating into quarantine frees nothing until the end of
  // the next M/R, so demand must be met net of them.
  double RequiredFree = reclamationDemand(
      Heap.allocator().usedBytes(), Heap.allocator().quarantinedBytes(),
      Heap.allocator().maxHeapBytes(), Cfg.TriggerFraction);

  double SmallBudget = 0.0;
  if (Cfg.RelocateAllSmallPages) {
    for (const Candidate &C : Small) {
      Ec.Pages.push_back(C.P);
      ++Ec.SmallCount;
    }
  } else {
    SmallBudget = Cfg.EvacBudgetFraction *
                  static_cast<double>(Geo.SmallPageSize) *
                  Cfg.EvacBudgetPages;
    selectPrefix(Small, SmallBudget, RequiredFree, Ec.Pages,
                 Ec.SmallCount);
  }
  double MediumBudget = Cfg.EvacBudgetFraction *
                        static_cast<double>(Geo.MediumPageSize) *
                        Cfg.EvacBudgetPages;
  selectPrefix(Medium, MediumBudget, 0.0, Ec.Pages, Ec.MediumCount);

  if (Audit) {
    Audit->BudgetSmall = SmallBudget;
    Audit->BudgetMedium = MediumBudget;
    Audit->RequiredFree = RequiredFree;
  }

  // Install forwarding tables; mutators begin relocating these pages only
  // after STW3 flips the good color to R.
  for (Page *P : Ec.Pages) {
    if (Audit) {
      auto It = AuditIndex.find(P->begin());
      assert(It != AuditIndex.end() &&
             "selected page missing from EC audit");
      if (It != AuditIndex.end())
        Audit->Entries[It->second].Verdict = EcVerdict::Selected;
    }
    HCSGC_TRACE(Heap.traceSession(), Ctx.Trace, Ctx.IsGcThread,
                TraceEventKind::EcPageSelected, Ec.Cycle, P->begin(),
                P->liveBytes(), P->hotBytes(),
                traceBitsFromDouble(
                    P->sizeClass() == PageSizeClass::Small
                        ? weightedLiveBytes(*P, Cfg.Hotness, EffCc)
                        : static_cast<double>(P->liveBytes())));
    P->beginEvacuation();
  }

  HCSGC_TRACE(Heap.traceSession(), Ctx.Trace, Ctx.IsGcThread,
              TraceEventKind::PhaseEnd, Ec.Cycle,
              static_cast<uint64_t>(GcPhase::EcSelect));
  return Ec;
}
