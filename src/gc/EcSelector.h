//===- gc/EcSelector.h - Evacuation candidate selection --------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evacuation candidate (EC) selection. Baseline ZGC (§2.2): small pages
/// allocated before STW1 whose live ratio is below the threshold are
/// sorted by live bytes ascending, and the maximal prefix fitting the
/// relocation budget is selected. HCSGC revisions (§3.1):
///
///  - RELOCATEALLSMALLPAGES: every eligible small page enters EC.
///  - Weighted live bytes (§3.1.3):
///        WLB = cold bytes                            if hot bytes == 0
///        WLB = hot bytes + cold bytes*(1 - coldConf) otherwise
///    substituted for live bytes in the filter, the sort and the budget,
///    so pages full of live-but-cold objects can still be selected and
///    their hot objects excavated.
///
/// Medium pages always use the baseline rule (§3.4 restricts HCSGC to
/// small pages); large pages are never candidates — each holds a single
/// object that is reclaimed directly when dead (§2.2).
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_GC_ECSELECTOR_H
#define HCSGC_GC_ECSELECTOR_H

#include "gc/GcHeap.h"
#include "observe/HeapSnapshot.h"

#include <vector>

namespace hcsgc {

/// Result of EC selection for one cycle.
struct EcSet {
  uint64_t Cycle = 0;
  std::vector<Page *> Pages; ///< Selected small + medium pages.
  uint64_t SmallCount = 0;
  uint64_t MediumCount = 0;
  uint64_t EmptyReclaimed = 0; ///< Dead pages released without relocation.
  uint64_t LiveBytesTotal = 0; ///< Marked live bytes across all pages.
  uint64_t HotBytesTotal = 0;  ///< Marked hot bytes across all pages.
};

/// \returns the weighted live bytes of \p P under \p Cfg (plain live
/// bytes when HOTNESS is off or ColdConfidence is 0, cf. §3.1.3).
double weightedLiveBytes(const Page &P, const GcConfig &Cfg);

/// Core WLB formula with an explicit confidence (used by the §4.8
/// auto-tuner, which varies the confidence at run time).
double weightedLiveBytes(const Page &P, bool Hotness,
                         double ColdConfidence);

/// \returns the bytes EC selection must (eventually) reclaim to bring
/// usage back under the pacing point. Quarantined pages count as still
/// occupied: they have left the logical heap but hold address space
/// until the end of the next Mark/Remap, so a selection that "frees"
/// into quarantine has not yet produced a single allocatable byte —
/// treating it as free lets allocation outrun the collector under
/// LAZYRELOCATE and tight reservations.
double reclamationDemand(size_t UsedBytes, size_t QuarantinedBytes,
                         size_t MaxHeapBytes, double TriggerFraction);

/// Runs EC selection over all eligible pages, installs forwarding tables
/// on the selected ones (transitioning them to RelocSource), and releases
/// dead pages outright. \p Ctx is the calling thread's context (the cycle
/// coordinator in production); selection decisions are traced through it,
/// including the per-page WLB inputs the invariant tests check.
///
/// When \p Audit is non-null the selector additionally records, per
/// considered page, the exact WLB inputs it read and the accept/reject
/// verdict, plus the knob values and budgets in force — enough for
/// observe's replayEcSelection to re-run the decision offline and prove
/// the §3.1.3 formula was honored (heapscope --replay, the snapshot
/// invariant tests). Weights are computed through the same wlbFormula
/// the replay uses, so the comparison is bit-exact.
EcSet selectEvacuationCandidates(GcHeap &Heap, ThreadContext &Ctx,
                                 EcAudit *Audit = nullptr);

} // namespace hcsgc

#endif // HCSGC_GC_ECSELECTOR_H
