//===- gc/GcConfig.h - Collector configuration and tuning knobs *- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// All collector parameters, including the five HCSGC tuning knobs of
/// §4.1 of the paper:
///
///   HOTNESS               - record per-object hotness in the hotmap.
///   COLDPAGE              - GC threads relocate cold objects to a separate
///                           thread-local destination page (needs HOTNESS).
///   COLDCONFIDENCE        - 0..1 weight discounting cold bytes in EC
///                           selection (needs HOTNESS).
///   RELOCATEALLSMALLPAGES - put every small page in EC.
///   LAZYRELOCATE          - defer the GC threads' relocation pass to the
///                           start of the next cycle (Fig. 3).
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_GC_GCCONFIG_H
#define HCSGC_GC_GCCONFIG_H

#include "heap/Geometry.h"
#include "simcache/Hierarchy.h"

#include <cstddef>
#include <string>

namespace hcsgc {

/// What the driver's end-of-cycle cold-reclaim pass does with cold-tier
/// pages (TEMPERATURE + COLDPAGE only; see INTERNALS §13).
enum class ColdReclaimMode : uint8_t {
  /// No reclaim pass; cold-resident bytes are still tracked.
  Off,
  /// Count the bytes an madvise pass would cover, but issue no syscall
  /// (deterministic for tests and platforms without MADV_COLD).
  Simulate,
  /// Issue madvise(MADV_COLD) once per settled cold page. Never
  /// MADV_DONTNEED: cold pages hold live data, only its hotness is low.
  Madvise,
};

/// Full collector + heap + instrumentation configuration.
struct GcConfig {
  // --- HCSGC tuning knobs (Table 2) -------------------------------------
  bool Hotness = false;
  bool ColdPage = false;
  double ColdConfidence = 0.0;
  bool RelocateAllSmallPages = false;
  bool LazyRelocate = false;
  /// §4.8 (future work): auto-tune COLDCONFIDENCE with a per-cycle
  /// feedback loop instead of a fixed value. Uses the marked hot/live
  /// ratio as the feedback signal: a cold-heavy heap raises the
  /// confidence (more excavation), a hot-dense heap lowers it (avoid
  /// pointless churn). Requires HOTNESS.
  bool AutoTuneColdConfidence = false;

  // --- Multi-cycle temperature extension (INTERNALS §13) -----------------
  /// Widen the 1-cycle hotmap bit into a 2-bit saturating per-object
  /// temperature that decays across cycles instead of being zeroed.
  /// EC selection then weights bytes by tier confidence
  /// (WLB = sum w(temp)*bytes) and relocation routes survivors into
  /// hot/warm/cold destination tiers. Requires HOTNESS.
  bool Temperature = false;
  /// Cold streak (consecutive aging walks at temperature 0) a survivor
  /// needs before relocation routes it to the cold tier ("proven cold").
  /// Clamped to 1..3 (the streak counter saturates at 3).
  unsigned ColdTempCycles = 2;
  /// End-of-cycle reclaim action on settled cold-tier pages. Non-Off
  /// requires Temperature && ColdPage.
  ColdReclaimMode ColdReclaim = ColdReclaimMode::Off;

  // --- Allocation-site profiling & pretenuring (INTERNALS §13) -----------
  /// Carry caller-supplied allocation-site IDs through the allocation
  /// path, stamp them into a per-page side table, and accumulate
  /// per-site survival/hotness/relocation-churn profiles across cycles.
  /// Sites whose profile proves persistently cold get their allocations
  /// routed to warm/cold-tier pages via a per-thread secondary TLAB, so
  /// the objects never occupy hot small pages at all. Requires HOTNESS.
  bool SiteProfiling = false;
  /// Cycles a site must be observed before its EWMA is trusted enough to
  /// route allocations away from the hot path; also sets the EWMA half
  /// life (alpha = 2 / (cycles + 1)). Clamped to at least 1.
  unsigned SiteProfileCycles = 3;

  // --- ZGC-inherited parameters ------------------------------------------
  /// Candidate filter: pages whose (weighted) live ratio is at or below
  /// this threshold may enter EC (§2.2: 75% by default).
  double EvacLiveThreshold = 0.75;
  /// Evacuation budget: EC is the maximal sorted prefix whose cumulative
  /// (weighted) live bytes stay within
  /// EvacBudgetFraction * PageSize * EvacBudgetPages (§2.2's constraint,
  /// with a page-count multiplier exposed so scaled-down heaps keep
  /// comparable relocation volume).
  double EvacBudgetFraction = 0.75;
  double EvacBudgetPages = 1.0;
  /// Start a cycle when used bytes exceed this fraction of the max heap.
  double TriggerFraction = 0.70;
  /// Additionally require this fraction of the heap to have been newly
  /// allocated since the previous cycle before triggering again. This is
  /// the allocation-rate pacing that keeps an inter-cycle window open
  /// (during which mutators relocate under LAZYRELOCATE) instead of
  /// running cycles back to back whenever usage sits at the threshold.
  double TriggerHysteresisFraction = 0.05;

  // --- Resources ----------------------------------------------------------
  unsigned GcWorkers = 1;
  HeapGeometry Geometry;
  size_t MaxHeapBytes = size_t(256) << 20;
  /// Address space to reserve; 0 means 3 * MaxHeapBytes (quarantine
  /// headroom, see DESIGN.md).
  size_t ReservedBytes = 0;
  /// General-pool shard count for the page allocator's lock striping;
  /// 0 picks one shard per hardware thread (capped at 8). Always clamped
  /// so each shard spans at least one medium page (see INTERNALS §10).
  unsigned AllocatorShards = 0;
  /// Initial small-page units carved per shard cache refill batch. Each
  /// shard adapts its own batch between 1 and PageCacheBatchMax, driven
  /// by refill misses (grow under churn, shrink as the shard nears full).
  unsigned PageCacheBatch = 8;
  /// Upper bound for the adaptive refill batch; clamped to at least
  /// PageCacheBatch.
  unsigned PageCacheBatchMax = 64;

  // --- Failure semantics ---------------------------------------------------
  /// Small pages of address space set aside exclusively for relocation
  /// targets (plus one medium page), carved on top of ReservedBytes.
  /// When the general reservation is exhausted, allocateRelocTarget
  /// falls back to this pool so evacuation keeps making progress instead
  /// of aborting. 0 disables the reserve.
  size_t RelocReservePages = 4;
  /// GC-assisted stalls a mutator allocation endures before surfacing
  /// HeapExhausted. Each stall waits for one full cycle (two under
  /// LAZYRELOCATE); the final attempt runs an emergency synchronous
  /// cycle that drains the deferred relocation set immediately.
  unsigned AllocStallRetries = 5;

  // --- Simulated-cycle cost model (used only when probes are on) -----------
  /// Fixed instruction cost of a load-barrier slow path (check, page
  /// lookup, CAS self-heal).
  uint64_t BarrierSlowPathCycles = 15;
  /// Instruction cost of marking one object (bitmap CAS, accounting,
  /// stack push).
  uint64_t MarkObjectCycles = 12;
  /// Fixed + per-byte instruction cost of relocating one object (bump
  /// allocation, memcpy, forwarding CAS). Models the copy bandwidth the
  /// cache simulator's prefetch-friendly streams would otherwise hide.
  uint64_t RelocateObjectCycles = 40;
  double RelocatePerByteCycles = 0.5;

  // --- Raw-speed knobs (INTERNALS §14) -------------------------------------
  /// Prefetch distance of the mark-stack drain: while tracing entry i of
  /// the thread-local mark stack, prefetch the object header of entry
  /// i - Distance (the stack drains from the back) and the livemap word
  /// each freshly-discovered target will CAS. 0 disables all mark-path
  /// software prefetching. Mark results are identical at any distance
  /// (gc/MarkPrefetchTest); only wall-clock changes.
  unsigned MarkPrefetchDistance = 4;

  // --- Instrumentation ------------------------------------------------------
  /// When true every thread gets a CacheHierarchy probe and all heap
  /// accesses are fed through it.
  bool EnableProbes = false;
  /// Keep only every 2^shift-th probed access (0 = simulate all).
  /// Deterministic per-thread modulus, applied inside ProbeBatch::record
  /// before the event is stored, so shift 3 removes ~87.5% of simulation
  /// work. Affects ONLY the simulated cache counters: hotness, WLB and
  /// every GC decision are computed from the hotmap/livemap planes,
  /// which do not flow through probes (INTERNALS §14).
  unsigned SimcacheSampleShift = 0;
  CacheConfig Cache;
  /// Print a per-cycle log line (like ZGC's -Xlog:gc).
  bool VerboseGc = false;
  /// Arm the GC event trace at startup (equivalent to calling
  /// Runtime::setTraceEnabled(true) before the first cycle). Tracing can
  /// also be toggled at runtime; this knob exists so harness configs can
  /// request it declaratively.
  bool TraceEnabled = false;
  /// Per-thread trace ring capacity in events. Overflow drops the newest
  /// events and counts them, it never blocks the hot path.
  size_t TraceBufferEvents = size_t(1) << 15;
  /// Arm the heap locality observatory: the driver captures one per-page
  /// snapshot after mark termination and one (with the EC decision
  /// audit) after EC selection, into a bounded in-memory ring. Disabled
  /// capture costs one relaxed load per cycle.
  bool SnapshotLogEnabled = false;
  /// Captures retained by the in-memory ring (2 per cycle when enabled);
  /// older captures are dropped and counted in
  /// snapshot.dropped_records.
  size_t SnapshotRingCaptures = 128;
  /// When non-empty, every capture is additionally streamed to this file
  /// as JSONL (one capture per line; see tools/heapscope).
  std::string SnapshotLogPath;

  /// \returns true if knob dependencies hold (COLDPAGE, COLDCONFIDENCE
  /// and TEMPERATURE require HOTNESS, §4.1; cold reclaim additionally
  /// requires TEMPERATURE + COLDPAGE so "proven cold" routing exists).
  bool knobsValid() const {
    if (!Hotness && (ColdPage || ColdConfidence != 0.0 ||
                     AutoTuneColdConfidence || Temperature ||
                     SiteProfiling))
      return false;
    if (ColdReclaim != ColdReclaimMode::Off && !(Temperature && ColdPage))
      return false;
    return ColdConfidence >= 0.0 && ColdConfidence <= 1.0;
  }
};

} // namespace hcsgc

#endif // HCSGC_GC_GCCONFIG_H
