//===- gc/GcHeap.cpp - Shared collector state --------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gc/GcHeap.h"

#include "inject/FaultInject.h"
#include "support/Compiler.h"

#include <algorithm>

using namespace hcsgc;

/// Sizes the relocation-target reserve: the configured number of small
/// pages plus one medium page, so both target classes can fall back to
/// the reserve at least once per cycle even when the general
/// reservation is fully consumed by quarantined pages.
static size_t relocReserveBytesFor(const GcConfig &C) {
  if (C.RelocReservePages == 0)
    return 0;
  return C.RelocReservePages * C.Geometry.SmallPageSize +
         C.Geometry.MediumPageSize;
}

GcHeap::GcHeap(const GcConfig &C)
    : Cfg(C), Alloc(C.Geometry, C.MaxHeapBytes, C.ReservedBytes,
                    relocReserveBytesFor(C), C.AllocatorShards,
                    C.PageCacheBatch, C.PageCacheBatchMax,
                    C.Hotness && C.Temperature,
                    C.Hotness && C.SiteProfiling),
      Trace(C.TraceBufferEvents) {
  if (!Cfg.knobsValid())
    fatalError("invalid knob combination: COLDPAGE/COLDCONFIDENCE/"
               "TEMPERATURE require HOTNESS, cold reclaim requires "
               "TEMPERATURE+COLDPAGE");
  // The window before the first cycle behaves like a relocation window
  // with an empty EC: the good color starts as R (Fig. 2).
  EffectiveColdConf.store(Cfg.ColdConfidence, std::memory_order_relaxed);
  if (Cfg.TraceEnabled)
    Trace.setEnabled(true);
  Alloc.bindMetrics(Metrics);
  MediumRefills = &Metrics.counter("alloc.tlab.medium_refills");
  StallUs = &Metrics.histogram("alloc.stall_us");
  // Raw-speed instrumentation (INTERNALS §14): created unconditionally so
  // the catalog stays config-independent; they only move when probes are
  // on (batch_*) or the mark path runs with a nonzero prefetch distance.
  BatchFlushes = &Metrics.counter("simcache.batch_flushes");
  BatchEvents = &Metrics.counter("simcache.batch_events");
  BatchSampled = &Metrics.counter("simcache.batch_sampled_out");
  MarkPrefetchIssued = &Metrics.counter("mark.prefetch_issued");
  MarkPrefetchDrains = &Metrics.counter("mark.prefetch_drains");
  // Bind unconditionally so the snapshot.* names always exist in the
  // registry (the metrics catalog is config-independent).
  Snap.bindMetrics(Metrics);
  Snap.configure(Cfg.SnapshotLogEnabled, Cfg.SnapshotRingCaptures,
                 Cfg.SnapshotLogPath);
  // site.* counters are created unconditionally (config-independent
  // catalog, same as snapshot.*); the table only exists — and only then
  // advances them — when the knob is on.
  Counter *SiteTagged = &Metrics.counter("site.tagged_bytes");
  Counter *SiteSurvived = &Metrics.counter("site.survived_bytes");
  Counter *SiteRelocated = &Metrics.counter("site.relocated_bytes");
  Counter *SitePretenured = &Metrics.counter("site.pretenured_bytes");
  Counter *SiteFlips = &Metrics.counter("site.route_flips");
  Counter *SiteCycles = &Metrics.counter("site.profile_cycles");
  if (Cfg.Hotness && Cfg.SiteProfiling) {
    Sites = std::make_unique<SiteProfileTable>(Cfg.SiteProfileCycles);
    Sites->bindMetrics(SiteTagged, SiteSurvived, SiteRelocated,
                       SitePretenured, SiteFlips, SiteCycles);
  }
}

void GcHeap::captureSnapshot(SnapshotPoint Point, uint64_t SnapCycle,
                             const EcAudit *Audit) {
  if (!Snap.enabled())
    return;
  CycleSnapshot S;
  S.Cycle = SnapCycle;
  S.Point = Point;
  S.TimeNs = Trace.nowNs();
  S.ColdConfidence = effectiveColdConfidence();
  S.Hotness = Cfg.Hotness ? 1 : 0;
  S.Temperature = Cfg.Temperature ? 1 : 0;
  // Lock-free registry walk — the same iteration EC selection uses. Pages
  // installed concurrently may be missed; that is fine, a snapshot is a
  // point-in-time sample, not an exhaustive ledger.
  Alloc.forEachActivePage([&](Page &P) {
    PageRecord R;
    R.PageBegin = P.begin();
    R.PageSize = P.size();
    R.UsedBytes = P.used();
    R.LiveBytes = P.liveBytes();
    R.HotBytes = P.hotBytes();
    R.AllocSeq = P.allocSeq();
    R.RelocOutBytesGc = P.relocOutBytesGc();
    R.RelocOutBytesMutator = P.relocOutBytesMutator();
    R.Tier = static_cast<uint8_t>(P.tier());
    if (Cfg.Temperature && P.tracksTemperature()) {
      for (unsigned T = 0; T < Page::TempTiers; ++T)
        R.TempBytes[T] = P.tempTierBytes(T);
      R.Wlb = wlbTempFormula(R.LiveBytes, R.TempBytes, Cfg.Hotness,
                             S.ColdConfidence);
    } else {
      R.Wlb = wlbFormula(R.LiveBytes, R.HotBytes, Cfg.Hotness,
                         S.ColdConfidence);
    }
    switch (P.sizeClass()) {
    case PageSizeClass::Small:
      R.SizeClass = SnapSizeClass::Small;
      break;
    case PageSizeClass::Medium:
      R.SizeClass = SnapSizeClass::Medium;
      break;
    case PageSizeClass::Large:
      R.SizeClass = SnapSizeClass::Large;
      break;
    }
    switch (P.state()) {
    case PageState::Active:
      R.State = SnapPageState::Active;
      break;
    case PageState::RelocSource:
      R.State = SnapPageState::RelocSource;
      break;
    case PageState::Quarantined:
      R.State = SnapPageState::Quarantined;
      break;
    }
    R.Pinned = P.isPinnedAsTarget() ? 1 : 0;
    R.EcSelected = P.state() == PageState::RelocSource ? 1 : 0;
    S.Pages.push_back(R);
  });
  std::sort(S.Pages.begin(), S.Pages.end(),
            [](const PageRecord &A, const PageRecord &B) {
              return A.PageBegin < B.PageBegin;
            });
  if (Sites) {
    for (const SiteStats &St : Sites->snapshot()) {
      SiteRecord R;
      R.SiteIdNum = St.Id;
      R.Name = St.Name;
      R.AllocatedBytes = St.AllocatedBytes;
      R.SurvivedBytes = St.SurvivedBytes;
      R.HotBytes = St.HotBytes;
      R.RelocatedBytes = St.RelocatedBytes;
      R.PretenuredBytes = St.PretenuredBytes;
      R.HotEwma = St.HotEwma;
      R.Route = static_cast<uint8_t>(St.Route);
      S.Sites.push_back(std::move(R));
    }
  }
  if (Audit) {
    S.HasAudit = true;
    S.Audit = *Audit;
  }
  Snap.commit(std::move(S));
}

void GcHeap::registerContext(ThreadContext *Ctx) {
  std::lock_guard<std::mutex> G(ContextLock);
  Ctx->Heap = this;
  // Bind the probe-batching knob and counter mirrors here so every
  // context — mutator, worker, coordinator — gets them from one place.
  Ctx->Batch.SampleShift = Cfg.SimcacheSampleShift;
  Ctx->BatchFlushesCtr = BatchFlushes;
  Ctx->BatchEventsCtr = BatchEvents;
  Ctx->BatchSampledCtr = BatchSampled;
  Contexts.push_back(Ctx);
}

void GcHeap::unregisterContext(ThreadContext *Ctx) {
  std::lock_guard<std::mutex> G(ContextLock);
  Contexts.erase(std::remove(Contexts.begin(), Contexts.end(), Ctx),
                 Contexts.end());
}

void GcHeap::forEachContext(
    const std::function<void(ThreadContext &)> &Fn) {
  std::lock_guard<std::mutex> G(ContextLock);
  for (ThreadContext *Ctx : Contexts)
    Fn(*Ctx);
}

uintptr_t GcHeap::allocateShared(ThreadContext &Ctx, size_t Bytes) {
  PageSizeClass Cls = Cfg.Geometry.sizeClassFor(Bytes);
  assert(Cls != PageSizeClass::Small &&
         "small objects allocate from mutator TLAB pages");

  if (Cls == PageSizeClass::Large) {
    Page *P = Alloc.allocatePage(PageSizeClass::Large, Bytes,
                                 currentCycle());
    if (!P)
      return 0;
    uintptr_t Addr = P->allocate(Bytes);
    assert(Addr && "fresh large page cannot be full");
    return Addr;
  }

  // Medium: refill this thread's medium TLAB. The caller already tried
  // (and failed) to bump into the current MediumAllocPage, so replace it
  // like a small-TLAB refill: unpin the old page, pin the fresh one.
  // Dropped at STW1 by ThreadContext::resetAllocTargets, so it can never
  // linger into EC selection.
  Page *P = Alloc.allocatePage(PageSizeClass::Medium, Bytes,
                               currentCycle());
  if (!P)
    return 0;
  if (Ctx.MediumAllocPage)
    Ctx.MediumAllocPage->unpinAsTarget();
  P->pinAsTarget();
  Ctx.MediumAllocPage = P;
  if (MediumRefills)
    MediumRefills->increment();
  uintptr_t Addr = P->allocate(Bytes);
  assert(Addr && "fresh medium page cannot be full");
  return Addr;
}

Page *GcHeap::allocateRelocTarget(PageSizeClass Cls, size_t ObjectBytes,
                                  PageTier Tier) {
  Page *P = nullptr;
  if (!HCSGC_INJECT_FAIL(RelocTargetAlloc))
    P = Alloc.allocatePage(Cls, ObjectBytes, currentCycle(),
                           /*Force=*/true);
  // The forced path only fails when the whole reservation is consumed
  // (or a fault plan denied it); fall back to the dedicated relocation
  // reserve so evacuation keeps making progress.
  if (!P)
    P = Alloc.allocateReservePage(Cls, ObjectBytes, currentCycle());
  // A concurrent releasePage can return address space between the two
  // attempts, so retry the primary path once before giving up.
  if (!P)
    P = Alloc.allocatePage(Cls, ObjectBytes, currentCycle(),
                           /*Force=*/true);
  if (!P)
    fatalError("address space exhausted while allocating relocation "
               "target (reservation and relocation reserve both empty; "
               "raise ReservedBytes or RelocReservePages)");
  P->pinAsTarget();
  if (Tier != PageTier::None)
    Alloc.notePageTier(P, Tier);
  return P;
}
