//===- gc/GcHeap.h - Shared collector state --------------------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// GcHeap is the shared state every barrier, marker, relocator and the
/// cycle driver operate on: the page allocator, the global good color,
/// the cycle counter, the shared mark queue, and per-cycle accounting.
/// ThreadContext carries the per-thread pieces: the local mark stack, the
/// relocation destination pages (hot page, cold page, medium page) and
/// the optional cache-simulator probe.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_GC_GCHEAP_H
#define HCSGC_GC_GCHEAP_H

#include "gc/ColoredPtr.h"
#include "gc/GcConfig.h"
#include "gc/GcStats.h"
#include "gc/MarkQueue.h"
#include "gc/SiteProfile.h"
#include "heap/PageAllocator.h"
#include "observe/HeapSnapshot.h"
#include "observe/Metrics.h"
#include "observe/TraceBuffer.h"
#include "simcache/Probe.h"
#include "simcache/ProbeBatch.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

namespace hcsgc {

/// Per-thread GC state. One per mutator, one per GC worker, one for the
/// coordinator. Registered with the GcHeap so stop-the-world operations
/// can reset relocation targets and flush mark buffers.
struct ThreadContext {
  class GcHeap *Heap = nullptr;
  MemoryProbe *Probe = nullptr;
  /// Lazily bound per-thread trace ring; owned by the heap's
  /// TraceSession. Stays nullptr until this thread records its first
  /// event with tracing enabled.
  TraceBuffer *Trace = nullptr;
  bool IsGcThread = false;

  /// Thread-local mark stack (see MarkQueue.h).
  MarkChunk MarkBuffer;

  /// Relocation destination pages. §3.3: "each GC thread in HCSGC has two
  /// thread-local pages, for hot and cold objects, respectively."
  /// Mutators only use the hot target (objects they relocate are hot by
  /// definition). TEMPERATURE adds a third, warm, destination so
  /// GC-side relocation can keep proven-cold survivors (cold streak >=
  /// ColdTempCycles) apart from merely not-recently-touched ones
  /// (INTERNALS §13).
  Page *TargetSmallHot = nullptr;
  Page *TargetSmallWarm = nullptr;
  Page *TargetSmallCold = nullptr;
  Page *TargetMedium = nullptr;

  /// Mutator TLAB: the small page this thread bump-allocates new objects
  /// from.
  Page *AllocPage = nullptr;

  /// Mutator medium TLAB: the medium page this thread bump-allocates
  /// medium-sized objects from. Thread-private like AllocPage — medium
  /// allocation used to funnel through one shared page under a global
  /// lock; now only the refill (GcHeap::allocateShared) is a slow path.
  Page *MediumAllocPage = nullptr;

  /// Secondary mutator TLAB for pretenured allocations (SITEPROFILING,
  /// INTERNALS §13): small objects whose allocation site has proven
  /// persistently cold bump-allocate here instead of AllocPage, so they
  /// are born on a warm/cold-tier page and never dilute hot pages.
  Page *PretenureAllocPage = nullptr;

  /// Dropped at STW1 so no page being bump-allocated into can become an
  /// EC candidate. Unpins each page so the EC dead-page fast path can
  /// reclaim it once its objects die. The pretenure TLAB deliberately
  /// survives the reset: cold-routed sites trickle-fill it over several
  /// cycles, and dropping it each cycle would expose a half-full cold
  /// page whose low live ratio makes it a bargain EC candidate — the
  /// selector would relocate the very bytes pretenuring just placed.
  /// EC skips pinned pages instead, so the page stays invisible until
  /// it fills, unpins, and competes as an ordinary (by then all-cold,
  /// near-full) page.
  void resetAllocTargets() {
    for (Page *P : {TargetSmallHot, TargetSmallWarm, TargetSmallCold,
                    TargetMedium, AllocPage, MediumAllocPage})
      if (P)
        P->unpinAsTarget();
    TargetSmallHot = TargetSmallWarm = TargetSmallCold = TargetMedium =
        nullptr;
    AllocPage = nullptr;
    MediumAllocPage = nullptr;
  }

  /// Full release for thread detach: everything resetAllocTargets drops
  /// plus the persistent pretenure TLAB.
  void releaseAllocTargets() {
    resetAllocTargets();
    if (PretenureAllocPage) {
      PretenureAllocPage->unpinAsTarget();
      PretenureAllocPage = nullptr;
    }
  }

  // Batched probe recording (INTERNALS §14): the instrumented fast path
  // is a bounds-checked store into the ring plus an increment; the
  // virtual dispatch into the simulator happens once per full ring or
  // at an explicit flush point. With probes off each call is still a
  // single predictable null test, exactly as before.
  void probeLoad(uintptr_t Addr, uint32_t Bytes) {
    if (Probe && Batch.record(Addr, Bytes, /*IsStore=*/false))
      flushProbes();
  }
  void probeStore(uintptr_t Addr, uint32_t Bytes) {
    if (Probe && Batch.record(Addr, Bytes, /*IsStore=*/true))
      flushProbes();
  }
  void probeCompute(uint64_t Cycles) {
    if (Probe)
      Batch.PendingCompute += Cycles;
  }

  /// Drains the batch into the probe and publishes the batching stats to
  /// the simcache.batch_* counters. Called when the ring fills and at
  /// every quiescent point where counters may be read: safepoint park,
  /// TLAB refill, GC task end, counter aggregation, thread detach.
  void flushProbes() {
    if (!Probe)
      return;
    Batch.flush(*Probe);
    if (BatchFlushesCtr && Batch.Flushes != ReportedFlushes) {
      BatchFlushesCtr->add(Batch.Flushes - ReportedFlushes);
      ReportedFlushes = Batch.Flushes;
    }
    if (BatchEventsCtr && Batch.EventsFlushed != ReportedEvents) {
      BatchEventsCtr->add(Batch.EventsFlushed - ReportedEvents);
      ReportedEvents = Batch.EventsFlushed;
    }
    if (BatchSampledCtr && Batch.SampledOut != ReportedSampled) {
      BatchSampledCtr->add(Batch.SampledOut - ReportedSampled);
      ReportedSampled = Batch.SampledOut;
    }
  }

  /// Per-thread probe event ring (see simcache/ProbeBatch.h).
  ProbeBatch Batch;
  /// simcache.batch_* counter mirrors, bound by GcHeap::registerContext.
  Counter *BatchFlushesCtr = nullptr;
  Counter *BatchEventsCtr = nullptr;
  Counter *BatchSampledCtr = nullptr;
  /// Software prefetches issued on the mark path since the last publish
  /// (drained into mark.prefetch_issued by GcHeap::publishMarkPrefetches).
  uint64_t MarkPrefetchPending = 0;

private:
  uint64_t ReportedFlushes = 0;
  uint64_t ReportedEvents = 0;
  uint64_t ReportedSampled = 0;
};

/// Shared collector state.
class GcHeap {
public:
  explicit GcHeap(const GcConfig &Cfg);

  const GcConfig &config() const { return Cfg; }
  PageAllocator &allocator() { return Alloc; }
  const PageAllocator &allocator() const { return Alloc; }
  PageTable &pageTable() { return Alloc.pageTable(); }
  GcStats &stats() { return Stats; }
  MarkQueue &markQueue() { return Queue; }
  TraceSession &traceSession() { return Trace; }
  const TraceSession &traceSession() const { return Trace; }
  MetricsRegistry &metrics() { return Metrics; }
  HeapSnapshotter &snapshotter() { return Snap; }
  const HeapSnapshotter &snapshotter() const { return Snap; }

  /// Allocation-site profile table, or nullptr unless SITEPROFILING is
  /// on (callers gate every hook on this, so the knob-off cost is one
  /// null check on paths that already took a slow branch).
  SiteProfileTable *siteProfile() { return Sites.get(); }
  const SiteProfileTable *siteProfile() const { return Sites.get(); }

  /// Records a mutator allocation stall (blocked waiting for a GC cycle)
  /// into the alloc.stall_us histogram.
  void recordAllocStall(uint64_t Micros) {
    if (StallUs)
      StallUs->record(Micros);
  }

  /// Drains \p Ctx's pending mark-path prefetch count into
  /// mark.prefetch_issued and counts one drain pass in
  /// mark.prefetch_drains when \p CountDrain. Called at the end of each
  /// drainMarkWork pass and when a mutator flushes its mark buffer.
  void publishMarkPrefetches(ThreadContext &Ctx, bool CountDrain) {
    if (Ctx.MarkPrefetchPending != 0) {
      MarkPrefetchIssued->add(Ctx.MarkPrefetchPending);
      Ctx.MarkPrefetchPending = 0;
    }
    if (CountDrain)
      MarkPrefetchDrains->increment();
  }

  /// Captures one per-page heap snapshot at a cycle boundary (\p Point)
  /// and commits it to the snapshotter's ring / JSONL stream. Walks the
  /// allocator's lock-free active-page registries — no shard lock is
  /// acquired (asserted by SnapshotInvariantTest via the
  /// alloc.shard.lock_acquisitions metric). No-op unless snapshot
  /// logging is armed. \p Audit, when non-null, is the EC decision audit
  /// from this cycle's selection and is attached to the snapshot.
  void captureSnapshot(SnapshotPoint Point, uint64_t SnapCycle,
                       const EcAudit *Audit);

  // --- Colors and phase ----------------------------------------------------

  PtrColor goodColor() const {
    return static_cast<PtrColor>(
        GoodColorBits.load(std::memory_order_acquire));
  }
  void setGoodColor(PtrColor C) {
    GoodColorBits.store(static_cast<uint64_t>(C),
                        std::memory_order_release);
  }
  bool isGood(Oop V) const {
    return (V >> ColorShift) ==
           GoodColorBits.load(std::memory_order_acquire);
  }
  Oop makeGood(uintptr_t Addr) const { return makeOop(Addr, goodColor()); }

  /// True between STW1 and the end of marking; gates mutator mark
  /// cooperation and hotness recording ("hotness is recorded by mutators
  /// and GC threads during the M/R phase", §3.1.2).
  bool markActive() const {
    return MarkActiveFlag.load(std::memory_order_acquire);
  }
  void setMarkActive(bool B) {
    MarkActiveFlag.store(B, std::memory_order_release);
  }

  /// Monotonic cycle number; incremented at STW1. Pages stamped with a
  /// smaller number were allocated before the current mark started and
  /// are therefore EC-eligible.
  uint64_t currentCycle() const {
    return Cycle.load(std::memory_order_acquire);
  }
  uint64_t bumpCycle() {
    return Cycle.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  // --- Thread contexts -------------------------------------------------------

  void registerContext(ThreadContext *Ctx);
  void unregisterContext(ThreadContext *Ctx);

  /// Invokes \p Fn on every registered context. Only safe while the world
  /// is stopped or all other threads are quiescent.
  void forEachContext(const std::function<void(ThreadContext &)> &Fn);

  // --- Allocation helpers ---------------------------------------------------

  /// Slow path for medium and large objects: refills \p Ctx's medium
  /// TLAB (pinning the fresh page) or allocates a dedicated large page.
  /// The caller's bump into MediumAllocPage is the lock-free fast path.
  /// \returns 0 if the heap limit is reached.
  uintptr_t allocateShared(ThreadContext &Ctx, size_t Bytes);

  /// Allocates a fresh relocation target page, bypassing the heap limit
  /// (relocation must always make progress; ZGC reserves headroom for the
  /// same reason). \p Tier stamps the page's destination tier for the
  /// cold-resident (reclaimable RSS) accounting.
  Page *allocateRelocTarget(PageSizeClass Cls, size_t ObjectBytes,
                            PageTier Tier = PageTier::None);

  // --- Per-cycle relocation attribution -------------------------------------

  void countRelocation(bool ByGcThread, size_t Bytes) {
    if (ByGcThread) {
      RelocByGc.fetch_add(1, std::memory_order_relaxed);
      RelocBytesByGc.fetch_add(Bytes, std::memory_order_relaxed);
    } else {
      RelocByMutator.fetch_add(1, std::memory_order_relaxed);
      RelocBytesByMutator.fetch_add(Bytes, std::memory_order_relaxed);
    }
  }

  /// Bytes relocated into cold-tier destination pages (TEMPERATURE +
  /// COLDPAGE); drained per cycle into coldpage.relocated_bytes.
  void countColdRelocation(size_t Bytes) {
    ColdRelocBytes.fetch_add(Bytes, std::memory_order_relaxed);
  }
  uint64_t takeColdRelocationBytes() {
    return ColdRelocBytes.exchange(0, std::memory_order_relaxed);
  }

  /// COLDCONFIDENCE actually used by EC selection this cycle: the
  /// configured constant, or the auto-tuner's current value (§4.8).
  double effectiveColdConfidence() const {
    return EffectiveColdConf.load(std::memory_order_relaxed);
  }
  void setEffectiveColdConfidence(double C) {
    EffectiveColdConf.store(C, std::memory_order_relaxed);
  }

  /// Bytes of new pages allocated since the last completed cycle; used
  /// for trigger hysteresis so back-to-back cycles cannot starve the
  /// inter-cycle mutator relocation window LAZYRELOCATE depends on.
  void noteAllocation(size_t Bytes) {
    AllocatedSinceCycle.fetch_add(Bytes, std::memory_order_relaxed);
  }
  uint64_t allocatedSinceCycle() const {
    return AllocatedSinceCycle.load(std::memory_order_relaxed);
  }
  void resetAllocatedSinceCycle() {
    AllocatedSinceCycle.store(0, std::memory_order_relaxed);
  }

  /// Reads and clears the relocation attribution counters; the total byte
  /// count is the sum of the two per-actor byte counts.
  void takeRelocationCounters(uint64_t &ByMutator, uint64_t &ByGc,
                              uint64_t &BytesMutator,
                              uint64_t &BytesGc) {
    ByMutator = RelocByMutator.exchange(0, std::memory_order_relaxed);
    ByGc = RelocByGc.exchange(0, std::memory_order_relaxed);
    BytesMutator =
        RelocBytesByMutator.exchange(0, std::memory_order_relaxed);
    BytesGc = RelocBytesByGc.exchange(0, std::memory_order_relaxed);
  }

private:
  GcConfig Cfg;
  PageAllocator Alloc;
  GcStats Stats;
  MarkQueue Queue;

  std::atomic<uint64_t> GoodColorBits{
      static_cast<uint64_t>(PtrColor::R)};
  std::atomic<bool> MarkActiveFlag{false};
  std::atomic<uint64_t> Cycle{0};

  std::mutex ContextLock;
  std::vector<ThreadContext *> Contexts;

  /// Mirror of alloc.tlab.medium_refills, cached at construction.
  Counter *MediumRefills = nullptr;
  /// alloc.stall_us histogram, cached at construction.
  Histogram *StallUs = nullptr;
  /// simcache.batch_* counters, cached at construction and handed to
  /// every registering ThreadContext (the catalog is config-independent,
  /// so they exist even with probes off).
  Counter *BatchFlushes = nullptr;
  Counter *BatchEvents = nullptr;
  Counter *BatchSampled = nullptr;
  /// mark.prefetch_* counters, cached at construction.
  Counter *MarkPrefetchIssued = nullptr;
  Counter *MarkPrefetchDrains = nullptr;

  std::atomic<uint64_t> RelocByMutator{0};
  std::atomic<uint64_t> RelocByGc{0};
  std::atomic<uint64_t> RelocBytesByMutator{0};
  std::atomic<uint64_t> RelocBytesByGc{0};
  std::atomic<uint64_t> ColdRelocBytes{0};
  std::atomic<uint64_t> AllocatedSinceCycle{0};
  std::atomic<double> EffectiveColdConf{0.0};

  TraceSession Trace;
  MetricsRegistry Metrics;
  HeapSnapshotter Snap;
  std::unique_ptr<SiteProfileTable> Sites;
};

} // namespace hcsgc

#endif // HCSGC_GC_GCHEAP_H
