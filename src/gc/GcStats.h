//===- gc/GcStats.h - Per-cycle collector statistics -----------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GC statistics §4.2 of the paper reports: number of cycles per run
/// and the number of small pages in EC per cycle (from which the harness
/// computes the "average of median small pages relocated per run"), plus
/// relocation attribution (mutator vs GC threads) used by the tests and
/// the ablation benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_GC_GCSTATS_H
#define HCSGC_GC_GCSTATS_H

#include <cstdint>
#include <mutex>
#include <vector>

namespace hcsgc {

/// Statistics for one completed GC cycle.
struct CycleRecord {
  uint64_t Cycle = 0;
  uint64_t SmallPagesInEc = 0;
  uint64_t MediumPagesInEc = 0;
  uint64_t EmptyPagesReclaimed = 0;
  uint64_t LiveBytesMarked = 0;
  uint64_t HotBytesMarked = 0;
  uint64_t ObjectsRelocatedByMutators = 0;
  uint64_t ObjectsRelocatedByGc = 0;
  uint64_t BytesRelocatedByMutators = 0;
  uint64_t BytesRelocatedByGc = 0;
  uint64_t BytesRelocated = 0;
  uint64_t UsedAfterBytes = 0;
  double Stw1Ms = 0, Stw2Ms = 0, Stw3Ms = 0;
  double MarkMs = 0, RelocMs = 0;
};

/// Thread-safe accumulator of per-cycle records.
class GcStats {
public:
  void addCycle(const CycleRecord &R) {
    std::lock_guard<std::mutex> G(Lock);
    Cycles.push_back(R);
  }

  /// \returns a copy of all completed-cycle records. Prefer forEachCycle
  /// when a pass over the records suffices; snapshot copies the whole
  /// history on every call.
  std::vector<CycleRecord> snapshot() const {
    std::lock_guard<std::mutex> G(Lock);
    return Cycles;
  }

  /// Visits every completed-cycle record in order under the lock,
  /// without copying the history. \p Fn must not call back into this
  /// GcStats.
  template <typename FnT> void forEachCycle(FnT &&Fn) const {
    std::lock_guard<std::mutex> G(Lock);
    for (const CycleRecord &R : Cycles)
      Fn(R);
  }

  uint64_t cycleCount() const {
    std::lock_guard<std::mutex> G(Lock);
    return Cycles.size();
  }

private:
  mutable std::mutex Lock;
  std::vector<CycleRecord> Cycles;
};

} // namespace hcsgc

#endif // HCSGC_GC_GCSTATS_H
