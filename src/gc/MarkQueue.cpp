//===- gc/MarkQueue.cpp - Shared marking work queue -------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gc/MarkQueue.h"

using namespace hcsgc;

void MarkQueue::pushChunk(MarkChunk &&Chunk) {
  if (Chunk.empty())
    return;
  std::lock_guard<std::mutex> G(Lock);
  Chunks.push_back(std::move(Chunk));
}

bool MarkQueue::popChunk(MarkChunk &Out) {
  std::lock_guard<std::mutex> G(Lock);
  if (Chunks.empty())
    return false;
  Out = std::move(Chunks.back());
  Chunks.pop_back();
  return true;
}

bool MarkQueue::empty() const {
  std::lock_guard<std::mutex> G(Lock);
  return Chunks.empty();
}

size_t MarkQueue::pendingObjects() const {
  std::lock_guard<std::mutex> G(Lock);
  size_t N = 0;
  for (const auto &C : Chunks)
    N += C.size();
  return N;
}
