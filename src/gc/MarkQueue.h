//===- gc/MarkQueue.h - Shared marking work queue --------------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared queue of marking work, exchanged in chunks. Per the paper
/// (§2.2, footnote 2): "Both mutators and GC threads have their own
/// thread-local mark stack to reduce synchronisation cost, and GC threads
/// perform work-stealing among themselves ... mutators will flush their
/// thread-local mark stacks regularly for idle GC threads to pick up."
/// Thread-local stacks live in ThreadContext; this queue is the shared
/// exchange point.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_GC_MARKQUEUE_H
#define HCSGC_GC_MARKQUEUE_H

#include <cstdint>
#include <mutex>
#include <vector>

namespace hcsgc {

/// A chunk of object addresses pending tracing.
using MarkChunk = std::vector<uintptr_t>;

/// Mutex-protected chunked queue. Chunk exchange is infrequent (hundreds
/// of objects per lock acquisition), so a mutex is appropriate here.
class MarkQueue {
public:
  /// Number of addresses a thread accumulates locally before flushing.
  static constexpr size_t ChunkSize = 256;

  /// Publishes \p Chunk (moved from).
  void pushChunk(MarkChunk &&Chunk);

  /// Pops one chunk into \p Out.
  /// \returns false if the queue is empty.
  bool popChunk(MarkChunk &Out);

  bool empty() const;

  /// Total addresses currently queued (for logging).
  size_t pendingObjects() const;

private:
  mutable std::mutex Lock;
  std::vector<MarkChunk> Chunks;
};

} // namespace hcsgc

#endif // HCSGC_GC_MARKQUEUE_H
