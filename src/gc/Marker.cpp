//===- gc/Marker.cpp - Concurrent marking with hotness detection ------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gc/Marker.h"

#include "support/Bits.h"
#include "support/Compiler.h"

using namespace hcsgc;

void hcsgc::markAndPush(GcHeap &Heap, uintptr_t Addr, ThreadContext &Ctx) {
  Page *P = Heap.pageTable().lookup(Addr);
  assert(P && "marked address not covered by any page");
  // Pages allocated during the current cycle hold implicitly-live objects
  // whose fields only ever contained good-colored values; neither marking
  // nor tracing is needed (ZGC's "allocating pages are not candidates").
  if (P->allocSeq() >= Heap.currentCycle())
    return;
  // Hint the livemap word into exclusive state ahead of markLive's CAS:
  // the header read below gives the prefetch a window to complete.
  if (Heap.config().MarkPrefetchDistance != 0) {
    P->prefetchMarkState(Addr);
    ++Ctx.MarkPrefetchPending;
  }
  Ctx.probeLoad(Addr, HeaderBytes); // header read for the size
  ObjectView V(Addr);
  if (!P->markLive(Addr, V.sizeBytes()))
    return;
  Ctx.probeCompute(Heap.config().MarkObjectCycles);
  Ctx.MarkBuffer.push_back(Addr);
  if (Ctx.MarkBuffer.size() >= MarkQueue::ChunkSize)
    flushMarkBuffer(Heap, Ctx);
}

void hcsgc::markSlot(GcHeap &Heap, std::atomic<Oop> *Slot,
                     ThreadContext &Ctx) {
  Oop V = Slot->load(std::memory_order_acquire);
  Ctx.probeLoad(reinterpret_cast<uintptr_t>(Slot), 8);
  if (V == NullOop || Heap.isGood(V))
    return; // good targets are already marked (see file header).

  uintptr_t Addr = oopAddr(V);
  Page *P = Heap.pageTable().lookup(Addr);
  assert(P && "stale pointer outside the heap");

  uintptr_t Cur = Addr;
  if (P->isRelocSourceOrQuarantined()) {
    // Remap: during marking every evacuated page is fully forwarded.
    Cur = P->forwarding()->lookup(P->offsetOf(Addr));
    if (HCSGC_UNLIKELY(Cur == 0))
      fatalError("unforwarded stale pointer during mark/remap");
  }
  Page *Target = Cur == Addr ? P : Heap.pageTable().lookup(Cur);

  // §3.1.2: "GC threads on finding pointers with R colour while traversing
  // the object graph in the M/R phase will flag the corresponding objects
  // as hot" — R-colored means a mutator accessed (or created) the target
  // since STW3 of the previous cycle. Only small pages track hotness
  // (§3.4).
  if (Heap.config().Hotness && oopColor(V) == PtrColor::R &&
      Target->sizeClass() == PageSizeClass::Small &&
      Target->allocSeq() < Heap.currentCycle()) {
    ObjectView TV(Cur);
    if (Target->flagHot(Cur, TV.sizeBytes()))
      HCSGC_TRACE(Heap.traceSession(), Ctx.Trace, Ctx.IsGcThread,
                  TraceEventKind::HotFlag, Heap.currentCycle(), Cur,
                  TV.sizeBytes());
  }

  markAndPush(Heap, Cur, Ctx);

  // Self-heal the slot with the good color. A racing mutator store wins
  // harmlessly: stores only ever write good-colored values.
  Oop Good = Heap.makeGood(Cur);
  if (Slot->compare_exchange_strong(V, Good, std::memory_order_acq_rel,
                                    std::memory_order_relaxed))
    Ctx.probeStore(reinterpret_cast<uintptr_t>(Slot), 8);
}

void hcsgc::traceObject(GcHeap &Heap, uintptr_t Addr, ThreadContext &Ctx) {
  Ctx.probeLoad(Addr, HeaderBytes);
  ObjectView V(Addr);
  uint32_t NumRefs = V.numRefs();
  for (uint32_t I = 0; I < NumRefs; ++I)
    markSlot(Heap, oopSlot(V.refSlotAddr(I)), Ctx);
}

void hcsgc::flushMarkBuffer(GcHeap &Heap, ThreadContext &Ctx) {
  // Publish prefetch stats accumulated by barrier-side markAndPush calls
  // (mutators never run drainMarkWork, so this is their drain point).
  Heap.publishMarkPrefetches(Ctx, /*CountDrain=*/false);
  if (Ctx.MarkBuffer.empty())
    return;
  MarkChunk Chunk;
  Chunk.swap(Ctx.MarkBuffer);
  Heap.markQueue().pushChunk(std::move(Chunk));
}

bool hcsgc::drainMarkWork(GcHeap &Heap, ThreadContext &Ctx) {
  // LIFO drain with look-behind software prefetch: entry size()-1 is
  // traced now, entry size()-1-Dist is traced Dist iterations from now —
  // far enough ahead to cover a memory round trip, near enough that
  // the line is still resident when its turn comes. Distance 0 turns
  // every mark-path prefetch off (MarkPrefetchTest holds results equal
  // at any distance).
  const size_t Dist = Heap.config().MarkPrefetchDistance;
  bool DidWork = false;
  for (;;) {
    if (!Ctx.MarkBuffer.empty()) {
      size_t N = Ctx.MarkBuffer.size();
      if (Dist != 0 && N > Dist) {
        prefetchRead(
            reinterpret_cast<const void *>(Ctx.MarkBuffer[N - 1 - Dist]));
        ++Ctx.MarkPrefetchPending;
      }
      uintptr_t Addr = Ctx.MarkBuffer.back();
      Ctx.MarkBuffer.pop_back();
      traceObject(Heap, Addr, Ctx);
      DidWork = true;
      continue;
    }
    if (!Heap.markQueue().popChunk(Ctx.MarkBuffer)) {
      if (DidWork)
        Heap.publishMarkPrefetches(Ctx, /*CountDrain=*/Dist != 0);
      return DidWork;
    }
    DidWork = true;
  }
}
