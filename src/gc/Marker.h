//===- gc/Marker.h - Concurrent marking with hotness detection -*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Mark/Remap phase (§2.2): classical object-graph traversal that
/// additionally remaps stale pointers through the previous cycle's
/// forwarding tables and self-heals every visited slot with the good
/// color. HCSGC extension (§3.1.2): a slot still carrying the R color
/// proves the mutator loaded it during the previous relocation window, so
/// its target is flagged hot in the hotmap.
///
/// Soundness of the load-barrier marking scheme (no write barrier): every
/// reference a mutator can hold was either loaded through a barrier while
/// its slot was stale (the barrier marks the target) or is good-colored,
/// and good-colored values always have marked (or implicitly-live,
/// allocated-during-this-cycle) targets. Markers therefore skip
/// good-colored slots entirely.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_GC_MARKER_H
#define HCSGC_GC_MARKER_H

#include "gc/GcHeap.h"

namespace hcsgc {

/// Marks the object at (current, good) address \p Addr live and pushes it
/// for tracing if it was not already marked. Objects on pages allocated
/// during the current cycle are implicitly live and skipped.
void markAndPush(GcHeap &Heap, uintptr_t Addr, ThreadContext &Ctx);

/// Processes one reference slot during marking: remap through forwarding
/// if stale, detect R-color hotness, mark the target, and self-heal the
/// slot with the good color. Also used on root slots during STW1.
void markSlot(GcHeap &Heap, std::atomic<Oop> *Slot, ThreadContext &Ctx);

/// Traces all reference slots of the object at \p Addr.
void traceObject(GcHeap &Heap, uintptr_t Addr, ThreadContext &Ctx);

/// Publishes the thread-local mark buffer to the shared queue.
void flushMarkBuffer(GcHeap &Heap, ThreadContext &Ctx);

/// Drains local and shared marking work until both are empty.
/// \returns true if any work was performed.
bool drainMarkWork(GcHeap &Heap, ThreadContext &Ctx);

} // namespace hcsgc

#endif // HCSGC_GC_MARKER_H
