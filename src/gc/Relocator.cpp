//===- gc/Relocator.cpp - Concurrent object relocation ----------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gc/Relocator.h"

#include "support/Compiler.h"

#include <algorithm>
#include <cstring>

using namespace hcsgc;

/// Bump-allocates \p Bytes in the thread-local target page referenced by
/// \p Target, acquiring a fresh page when the current one is full.
static uintptr_t allocateInTarget(GcHeap &Heap, Page *&Target,
                                  PageSizeClass Cls, size_t Bytes,
                                  PageTier Tier = PageTier::None) {
  if (Target) {
    if (uintptr_t Addr = Target->allocate(Bytes))
      return Addr;
    Target->unpinAsTarget(); // full: retire it from target duty
  }
  Target = Heap.allocateRelocTarget(Cls, Bytes, Tier); // returned pinned
  uintptr_t Addr = Target->allocate(Bytes);
  assert(Addr && "fresh relocation target cannot be full");
  return Addr;
}

uintptr_t hcsgc::relocateOrForward(GcHeap &Heap, Page *Src,
                                   uintptr_t OldAddr, ThreadContext &Ctx) {
  ForwardingTable *Fwd = Src->forwarding();
  assert(Fwd && "relocating from a page without a forwarding table");
  uint32_t Off = Src->offsetOf(OldAddr);
  if (uintptr_t Existing = Fwd->lookup(Off))
    return Existing;

  assert(Src->state() == PageState::RelocSource &&
         "unforwarded object on a non-relocating page");
  assert(Src->isLive(OldAddr) && "relocating an unmarked object");

  ObjectView V(OldAddr);
  size_t Bytes = V.sizeBytes();
  const GcConfig &Cfg = Heap.config();

  // Destination selection (§3.3). Mutator relocations are hot by
  // definition; GC threads consult the hotmap when COLDPAGE is on. With
  // TEMPERATURE the GC consults the 2-bit counter instead: warm-or-hotter
  // survivors (temp >= 2, or flagged hot this cycle) go to the hot tier,
  // survivors frozen at temp 0 for >= ColdTempCycles consecutive cycles
  // are proven cold and segregate onto dedicated cold pages, everything
  // in between lands on warm pages.
  PageSizeClass Cls = Src->sizeClass();
  Page **TargetSlot;
  PageTier Tier = PageTier::None;
  unsigned Temp = 0, Streak = 0;
  const bool TempMode =
      Cls == PageSizeClass::Small && Cfg.Hotness && Cfg.Temperature;
  if (TempMode) {
    Temp = Src->temperatureOf(OldAddr);
    Streak = Src->coldStreakOf(OldAddr);
  }
  if (Cls == PageSizeClass::Medium) {
    TargetSlot = &Ctx.TargetMedium;
  } else if (TempMode && Cfg.ColdPage) {
    if (!Ctx.IsGcThread || Src->isHot(OldAddr) || Temp >= 2) {
      TargetSlot = &Ctx.TargetSmallHot;
      Tier = PageTier::Hot;
    } else if (Temp == 0 &&
               Streak >= std::min(Page::MaxColdStreak,
                                  std::max(1u, Cfg.ColdTempCycles))) {
      TargetSlot = &Ctx.TargetSmallCold;
      Tier = PageTier::Cold;
    } else {
      TargetSlot = &Ctx.TargetSmallWarm;
      Tier = PageTier::Warm;
    }
  } else {
    bool Hot = true;
    if (Ctx.IsGcThread && Cfg.Hotness && Cfg.ColdPage)
      Hot = Src->isHot(OldAddr);
    TargetSlot = Hot ? &Ctx.TargetSmallHot : &Ctx.TargetSmallCold;
  }

  uintptr_t NewAddr = allocateInTarget(Heap, *TargetSlot, Cls, Bytes, Tier);
  Ctx.probeLoad(OldAddr, static_cast<uint32_t>(Bytes));
  std::memcpy(reinterpret_cast<void *>(NewAddr),
              reinterpret_cast<const void *>(OldAddr), Bytes);
  Ctx.probeStore(NewAddr, static_cast<uint32_t>(Bytes));

  Ctx.probeCompute(Cfg.RelocateObjectCycles +
                   static_cast<uint64_t>(Cfg.RelocatePerByteCycles *
                                         static_cast<double>(Bytes)));
  bool Won = false;
  uintptr_t Final = Fwd->insertOrGet(Off, NewAddr, Won);
  if (!Won) {
    // §2.2: "others will discard their local value". The target page is
    // thread-private, so retracting the bump pointer always succeeds.
    bool Undone = (*TargetSlot)->undoAllocate(NewAddr, Bytes);
    (void)Undone;
    assert(Undone && "loser copy was not the top of its private page");
  } else {
    if (TempMode) {
      // Only the forwarding winner seeds: the destination granule's
      // nibble is still zero (losers retract their copy above), so a
      // plain fetch_or carries the temperature across the move. A hot
      // source also hands its hotmap bit to the copy — the next aging
      // walk must see the object as touched, not decay it for having
      // moved (mutator relocations ARE touches, so they transfer too).
      (*TargetSlot)->seedTemperature(NewAddr, Temp, Streak);
      if (!Ctx.IsGcThread || Src->isHot(OldAddr))
        (*TargetSlot)->transferHot(NewAddr, Bytes);
      if (Tier == PageTier::Cold)
        Heap.countColdRelocation(Bytes);
    }
    // The winner also carries the allocation-site stamp across the move
    // (the profile walk reads the copy's granule next cycle) and charges
    // the site with the relocation churn — the byte stream pretenuring
    // exists to shrink.
    if (Src->tracksSites()) {
      SiteId Site = Src->siteOf(OldAddr);
      (*TargetSlot)->stampSite(NewAddr, Site);
      if (SiteProfileTable *Prof = Heap.siteProfile()) {
        Prof->noteRelocation(Site, Bytes);
        // A relocated object is a survivor the pre-STW1 walk will never
        // see (its destination livemap is empty until the next mark);
        // charge its survival here. Mutator relocations are accesses, so
        // they count as hot, matching the hotmap transfer above.
        Prof->noteRelocatedSurvival(Site, Bytes,
                                    !Ctx.IsGcThread || Src->isHot(OldAddr));
      }
    }
    Heap.countRelocation(Ctx.IsGcThread, Bytes);
    Src->noteRelocatedFrom(Ctx.IsGcThread, Bytes);
    HCSGC_TRACE(Heap.traceSession(), Ctx.Trace, Ctx.IsGcThread,
                TraceEventKind::Relocation, Heap.currentCycle(), OldAddr,
                NewAddr, Bytes);
  }
  return Final;
}

void hcsgc::relocatePage(GcHeap &Heap, Page *Src, uint64_t EcCycle,
                         ThreadContext &Ctx) {
  assert(Src->state() == PageState::RelocSource &&
         "draining a page not selected for evacuation");
  Src->forEachLiveObject([&](uintptr_t Addr) {
    relocateOrForward(Heap, Src, Addr, Ctx);
  });
  Src->setState(PageState::Quarantined);
  Src->setQuarantineCycle(EcCycle);
  Heap.allocator().quarantinePage(Src);
}
