//===- gc/Relocator.h - Concurrent object relocation -----------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Object relocation, raced between mutators and GC threads exactly as
/// §2.2 describes: both copy the object privately, then CAS the new
/// address into the page's forwarding table; the loser retracts its copy.
/// Destination selection implements §3.3's speculative hot-cold
/// segregation: with COLDPAGE enabled, GC threads send cold objects to a
/// separate thread-local cold page. Objects relocated by a mutator are
/// hot by definition (the mutator is accessing them) and always go to the
/// mutator's own target page — in access order, which is what creates the
/// prefetch-friendly layout (§3.2).
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_GC_RELOCATOR_H
#define HCSGC_GC_RELOCATOR_H

#include "gc/GcHeap.h"

namespace hcsgc {

/// Relocates the object at \p OldAddr on evacuation-candidate page
/// \p Src, or returns its already-published new address.
/// Callable from any thread during the relocation window.
uintptr_t relocateOrForward(GcHeap &Heap, Page *Src, uintptr_t OldAddr,
                            ThreadContext &Ctx);

/// GC-side page drain: forwards every live object off \p Src, then
/// transitions the page to Quarantined (tagged with \p EcCycle) and moves
/// it to quarantine accounting. After this returns, all lookups into the
/// page hit the forwarding table.
void relocatePage(GcHeap &Heap, Page *Src, uint64_t EcCycle,
                  ThreadContext &Ctx);

} // namespace hcsgc

#endif // HCSGC_GC_RELOCATOR_H
