//===- gc/Safepoint.cpp - Stop-the-world coordination ----------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gc/Safepoint.h"

#include "inject/FaultInject.h"

#include <cassert>

using namespace hcsgc;

void SafepointManager::registerMutator() {
  std::unique_lock<std::mutex> G(Lock);
  MutatorCv.wait(G, [this] {
    return !ParkRequested.load(std::memory_order_relaxed);
  });
  ++Registered;
}

void SafepointManager::unregisterMutator() {
  std::unique_lock<std::mutex> G(Lock);
  // Cooperate with a pause that may be waiting on us.
  while (ParkRequested.load(std::memory_order_relaxed)) {
    ++Parked;
    CoordCv.notify_all();
    MutatorCv.wait(G, [this] {
      return !ParkRequested.load(std::memory_order_relaxed);
    });
    --Parked;
  }
  assert(Registered > 0 && "unregistering unknown mutator");
  --Registered;
  CoordCv.notify_all();
}

void SafepointManager::park() {
  std::unique_lock<std::mutex> G(Lock);
  if (!ParkRequested.load(std::memory_order_relaxed))
    return;
  ++Parked;
  CoordCv.notify_all();
  MutatorCv.wait(G, [this] {
    return !ParkRequested.load(std::memory_order_relaxed);
  });
  --Parked;
}

void SafepointManager::enterBlocked() {
  std::lock_guard<std::mutex> G(Lock);
  ++Blocked;
  CoordCv.notify_all();
}

void SafepointManager::exitBlocked() {
  std::unique_lock<std::mutex> G(Lock);
  MutatorCv.wait(G, [this] {
    return !ParkRequested.load(std::memory_order_relaxed);
  });
  assert(Blocked > 0 && "exitBlocked without enterBlocked");
  --Blocked;
}

void SafepointManager::beginPause() {
  // Schedule fuzzing: stretch the window between the coordinator deciding
  // to pause and the park request becoming visible, so mutators race the
  // flag from more varied positions.
  HCSGC_INJECT_DELAY(SafepointDelay);
  std::unique_lock<std::mutex> G(Lock);
  assert(!ParkRequested.load(std::memory_order_relaxed) &&
         "nested pause");
  ParkRequested.store(true, std::memory_order_relaxed);
  CoordCv.wait(G, [this] { return Parked + Blocked >= Registered; });
}

void SafepointManager::endPause() {
  // Stretch the pause tail: mutators stay parked while the world is
  // already consistent, widening the window for requests that pile up
  // against a pause in progress.
  HCSGC_INJECT_DELAY(SafepointDelay);
  std::lock_guard<std::mutex> G(Lock);
  ParkRequested.store(false, std::memory_order_relaxed);
  MutatorCv.notify_all();
}

int SafepointManager::registeredMutators() const {
  std::lock_guard<std::mutex> G(Lock);
  return Registered;
}
