//===- gc/Safepoint.h - Stop-the-world coordination ------------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooperative safepoint machinery implementing the paper's three brief
/// stop-the-world pauses per cycle (Fig. 1). Mutators poll a flag in every
/// allocation and barrier; when a pause is requested they park until it
/// ends. Mutators entering blocking operations (waiting for a GC cycle,
/// detaching) declare themselves "blocked" so pauses can proceed without
/// them.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_GC_SAFEPOINT_H
#define HCSGC_GC_SAFEPOINT_H

#include <atomic>
#include <condition_variable>
#include <mutex>

namespace hcsgc {

/// Global safepoint coordination between one GC coordinator and any
/// number of mutators.
class SafepointManager {
public:
  // --- Mutator side --------------------------------------------------------

  /// Registers the calling thread as a mutator. Blocks while a pause is
  /// in progress.
  void registerMutator();

  /// Unregisters the calling thread. Cooperates with an in-flight pause.
  void unregisterMutator();

  /// Cheap check, inlined into allocation and barrier paths.
  bool pollNeeded() const {
    return ParkRequested.load(std::memory_order_relaxed);
  }

  /// Parks the calling mutator until the current pause completes. Call
  /// only when pollNeeded() returned true.
  void park();

  /// Declares the calling mutator blocked (it will not poll). Pauses may
  /// proceed without it; the mutator must not touch the heap while
  /// blocked.
  void enterBlocked();

  /// Ends a blocked section; waits out any pause in progress.
  void exitBlocked();

  // --- Coordinator side ---------------------------------------------------

  /// Requests a pause and waits until every registered mutator is parked
  /// or blocked. Returns with the world stopped.
  void beginPause();

  /// Resumes the world.
  void endPause();

  /// \returns the number of currently registered mutators.
  int registeredMutators() const;

private:
  mutable std::mutex Lock;
  std::condition_variable MutatorCv; ///< Mutators wait for pause end.
  std::condition_variable CoordCv;   ///< Coordinator waits for parks.
  std::atomic<bool> ParkRequested{false};
  int Registered = 0;
  int Parked = 0;
  int Blocked = 0;
};

/// RAII wrapper for enterBlocked/exitBlocked.
class BlockedScope {
public:
  explicit BlockedScope(SafepointManager &SP) : SP(SP) {
    SP.enterBlocked();
  }
  ~BlockedScope() { SP.exitBlocked(); }

private:
  SafepointManager &SP;
};

} // namespace hcsgc

#endif // HCSGC_GC_SAFEPOINT_H
