//===- gc/SiteProfile.cpp - Allocation-site profiles & pretenuring --------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gc/SiteProfile.h"

using namespace hcsgc;

//===----------------------------------------------------------------------===//
// SiteRegistry
//===----------------------------------------------------------------------===//

SiteRegistry &SiteRegistry::instance() {
  static SiteRegistry R;
  return R;
}

SiteRegistry::SiteRegistry() {
  Names.push_back("unknown");
  Index.emplace("unknown", UnknownSiteId);
}

SiteId SiteRegistry::intern(const std::string &Name) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Index.find(Name);
  if (It != Index.end())
    return It->second;
  if (Names.size() >= SiteProfileTable::MaxSites)
    return UnknownSiteId;
  SiteId Id = static_cast<SiteId>(Names.size());
  Names.push_back(Name);
  Index.emplace(Name, Id);
  return Id;
}

std::string SiteRegistry::nameOf(SiteId Id) const {
  std::lock_guard<std::mutex> L(Mu);
  if (Id >= Names.size())
    return "unknown";
  return Names[Id];
}

size_t SiteRegistry::count() const {
  std::lock_guard<std::mutex> L(Mu);
  return Names.size();
}

//===----------------------------------------------------------------------===//
// SiteProfileTable
//===----------------------------------------------------------------------===//

const char *hcsgc::siteRouteName(SiteRoute R) {
  switch (R) {
  case SiteRoute::Hot:
    return "hot";
  case SiteRoute::Warm:
    return "warm";
  case SiteRoute::Cold:
    return "cold";
  }
  return "hot";
}

SiteProfileTable::SiteProfileTable(unsigned Cycles)
    : ProfileCycles(Cycles == 0 ? 1 : Cycles) {}

void SiteProfileTable::bindMetrics(Counter *TaggedBytes,
                                   Counter *SurvivedBytes,
                                   Counter *RelocatedBytes,
                                   Counter *PretenuredBytes,
                                   Counter *RouteFlips,
                                   Counter *ProfileCycleCtr) {
  MetTagged = TaggedBytes;
  MetSurvived = SurvivedBytes;
  MetRelocated = RelocatedBytes;
  MetPretenured = PretenuredBytes;
  MetRouteFlips = RouteFlips;
  MetProfileCycles = ProfileCycleCtr;
}

void SiteProfileTable::noteAllocation(SiteId Site, size_t Bytes,
                                      bool Pretenured) {
  Slot &S = Slots[slotOf(Site)];
  S.AllocatedBytes.fetch_add(Bytes, std::memory_order_relaxed);
  S.WindowAllocatedBytes.fetch_add(Bytes, std::memory_order_relaxed);
  if (Pretenured)
    S.PretenuredBytes.fetch_add(Bytes, std::memory_order_relaxed);
}

void SiteProfileTable::noteRelocation(SiteId Site, size_t Bytes) {
  Slots[slotOf(Site)].RelocatedBytes.fetch_add(Bytes,
                                               std::memory_order_relaxed);
}

void SiteProfileTable::noteRelocatedSurvival(SiteId Site, size_t Bytes,
                                             bool Hot) {
  Slot &S = Slots[slotOf(Site)];
  S.WindowRelocSurvivedBytes.fetch_add(Bytes, std::memory_order_relaxed);
  if (Hot)
    S.WindowRelocHotBytes.fetch_add(Bytes, std::memory_order_relaxed);
}

void SiteProfileTable::noteSurvival(SiteId Site, size_t Bytes, bool Hot) {
  Slot &S = Slots[slotOf(Site)];
  S.WindowSurvivedBytes += Bytes;
  if (Hot)
    S.WindowHotBytes += Bytes;
}

void SiteProfileTable::endCycle() {
  const double Alpha = 2.0 / (static_cast<double>(ProfileCycles) + 1.0);
  uint64_t TotTagged = 0, TotSurvived = 0, TotRelocated = 0,
           TotPretenured = 0;
  uint64_t Flips = 0;
  for (Slot &S : Slots) {
    TotTagged += S.AllocatedBytes.load(std::memory_order_relaxed);
    TotRelocated += S.RelocatedBytes.load(std::memory_order_relaxed);
    TotPretenured += S.PretenuredBytes.load(std::memory_order_relaxed);

    uint64_t WinAlloc =
        S.WindowAllocatedBytes.exchange(0, std::memory_order_relaxed);
    uint64_t WinSurvived =
        S.WindowSurvivedBytes +
        S.WindowRelocSurvivedBytes.exchange(0, std::memory_order_relaxed);
    uint64_t WinHot =
        S.WindowHotBytes +
        S.WindowRelocHotBytes.exchange(0, std::memory_order_relaxed);
    S.WindowSurvivedBytes = 0;
    S.WindowHotBytes = 0;
    S.SurvivedBytes += WinSurvived;
    S.HotBytes += WinHot;
    TotSurvived += S.SurvivedBytes;

    // A cycle counts as evidence only when the site had skin in the
    // game: surviving bytes, or fresh allocations that all died (a
    // fully-dying site is cold evidence too — hot fraction 0).
    if (WinSurvived == 0 && WinAlloc == 0)
      continue;
    double HotFrac =
        WinSurvived == 0
            ? 0.0
            : static_cast<double>(WinHot) / static_cast<double>(WinSurvived);
    S.HotEwma = (1.0 - Alpha) * S.HotEwma + Alpha * HotFrac;
    ++S.ObservedCycles;

    // Routes only move once the EWMA has ProfileCycles of evidence
    // behind it. Misprediction decays naturally: survivors that heat up
    // on a cold-routed page raise HotFrac, the EWMA climbs back over
    // the threshold, and the verdict returns to Hot.
    if (S.ObservedCycles < ProfileCycles)
      continue;
    SiteRoute NewRoute = SiteRoute::Hot;
    if (S.HotEwma < ColdEwmaMax)
      NewRoute = SiteRoute::Cold;
    else if (S.HotEwma < WarmEwmaMax)
      NewRoute = SiteRoute::Warm;
    auto Old = static_cast<SiteRoute>(
        S.Route.load(std::memory_order_relaxed));
    if (Old != NewRoute) {
      ++Flips;
      S.Route.store(static_cast<uint8_t>(NewRoute),
                    std::memory_order_relaxed);
    }
  }
  if (MetProfileCycles)
    MetProfileCycles->increment();
  if (MetRouteFlips && Flips)
    MetRouteFlips->add(Flips);
  // Volume counters mirror cumulative totals via deltas so each hook in
  // the hot path stays a single fetch_add on the table's own slots.
  if (MetTagged && TotTagged > PublishedTagged)
    MetTagged->add(TotTagged - PublishedTagged);
  PublishedTagged = TotTagged;
  if (MetSurvived && TotSurvived > PublishedSurvived)
    MetSurvived->add(TotSurvived - PublishedSurvived);
  PublishedSurvived = TotSurvived;
  if (MetRelocated && TotRelocated > PublishedRelocated)
    MetRelocated->add(TotRelocated - PublishedRelocated);
  PublishedRelocated = TotRelocated;
  if (MetPretenured && TotPretenured > PublishedPretenured)
    MetPretenured->add(TotPretenured - PublishedPretenured);
  PublishedPretenured = TotPretenured;
}

std::vector<SiteStats> SiteProfileTable::snapshot() const {
  std::vector<SiteStats> Out;
  SiteRegistry &Reg = SiteRegistry::instance();
  for (size_t I = 0; I < MaxSites; ++I) {
    const Slot &S = Slots[I];
    uint64_t Alloc = S.AllocatedBytes.load(std::memory_order_relaxed);
    if (Alloc == 0 && S.SurvivedBytes == 0 &&
        S.RelocatedBytes.load(std::memory_order_relaxed) == 0)
      continue;
    SiteStats St;
    St.Id = static_cast<SiteId>(I);
    St.Name = Reg.nameOf(St.Id);
    St.AllocatedBytes = Alloc;
    St.SurvivedBytes = S.SurvivedBytes;
    St.HotBytes = S.HotBytes;
    St.RelocatedBytes = S.RelocatedBytes.load(std::memory_order_relaxed);
    St.PretenuredBytes = S.PretenuredBytes.load(std::memory_order_relaxed);
    St.HotEwma = S.HotEwma;
    St.ObservedCycles = S.ObservedCycles;
    St.Route = static_cast<SiteRoute>(
        S.Route.load(std::memory_order_relaxed));
    Out.push_back(std::move(St));
  }
  return Out;
}
