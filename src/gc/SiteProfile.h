//===- gc/SiteProfile.h - Allocation-site profiles & pretenuring *- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-allocation-site lifetime/hotness profiles (SITEPROFILING knob,
/// INTERNALS §13). NG2C-style pretenuring: call sites tag allocations
/// with an interned SiteId (HCSGC_ALLOC_SITE), the mutator stamps the id
/// into the page's site side table, and the driver's pre-STW1 walk folds
/// each cycle's livemap/hotmap into per-site survival and hotness
/// EWMAs. Sites that prove persistently cold get their allocations
/// routed to warm/cold-tier pages through a per-thread secondary TLAB —
/// the objects never occupy hot small pages at all, composing with the
/// temperature tiers and LazyRelocate (fewer floating-garbage
/// relocations for objects that were never going to be touched).
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_GC_SITEPROFILE_H
#define HCSGC_GC_SITEPROFILE_H

#include "heap/Page.h" // SiteId / UnknownSiteId
#include "observe/Metrics.h"

#include <array>
#include <atomic>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace hcsgc {

/// Process-wide intern table mapping site names to stable SiteIds.
/// Interning is mutex-guarded but happens once per call site (the
/// HCSGC_ALLOC_SITE macro caches the id in a function-local static);
/// the hot allocation path only ever carries the integer. The table is
/// process-global, not per-runtime: ids must stay stable across the
/// many short-lived Runtimes a bench sweep creates, and snapshot rows
/// serialize the resolved name so offline tools never need the table.
class SiteRegistry {
public:
  static SiteRegistry &instance();

  /// Interns \p Name, returning its stable id (allocating a fresh one on
  /// first sight). Falls back to UnknownSiteId once the fixed profile
  /// capacity (SiteProfileTable::MaxSites) is exhausted — allocation
  /// correctness never depends on a site getting a distinct id.
  SiteId intern(const std::string &Name);

  /// Name of \p Id ("unknown" for UnknownSiteId or out-of-range ids).
  std::string nameOf(SiteId Id) const;

  /// Number of interned ids, including the implicit unknown site.
  size_t count() const;

private:
  SiteRegistry();
  mutable std::mutex Mu;
  std::vector<std::string> Names; ///< Index = id; [0] = "unknown".
  std::unordered_map<std::string, SiteId> Index;
};

/// Tags an allocation call site: `M.allocate(R, Cls,
/// HCSGC_ALLOC_SITE("kv.record"))`. The intern happens once per call
/// site (function-local static), so the steady-state cost is one load.
#define HCSGC_ALLOC_SITE(NAME)                                           \
  ([]() -> ::hcsgc::SiteId {                                             \
    static const ::hcsgc::SiteId HcsgcCachedSiteId =                     \
        ::hcsgc::SiteRegistry::instance().intern(NAME);                  \
    return HcsgcCachedSiteId;                                            \
  }())

/// Placement verdict a site's profile has earned. Hot is the default —
/// allocations take the normal TLAB path; Warm/Cold route through the
/// per-thread pretenure TLAB onto pages stamped with the matching tier.
enum class SiteRoute : uint8_t { Hot = 0, Warm = 1, Cold = 2 };

const char *siteRouteName(SiteRoute R);

/// Plain per-site stats snapshot (feeds SiteRecord snapshot rows and
/// tests).
struct SiteStats {
  SiteId Id = UnknownSiteId;
  std::string Name;
  uint64_t AllocatedBytes = 0;  ///< Cumulative tagged allocation volume.
  uint64_t SurvivedBytes = 0;   ///< Cumulative live bytes seen by walks.
  uint64_t HotBytes = 0;        ///< Cumulative hotmap-flagged live bytes.
  uint64_t RelocatedBytes = 0;  ///< Cumulative relocation churn.
  uint64_t PretenuredBytes = 0; ///< Bytes placed via the pretenure TLAB.
  double HotEwma = 1.0;         ///< EWMA of hot/survived byte fraction.
  unsigned ObservedCycles = 0;  ///< Cycles with surviving bytes so far.
  SiteRoute Route = SiteRoute::Hot;
};

/// The per-site profile table. One instance per GcHeap when
/// SiteProfiling is on. Mutator-side hooks (noteAllocation, routeOf,
/// noteRelocation) are lock-free relaxed atomics; the per-cycle
/// accumulation + EWMA aging (noteSurvival, endCycle) run exclusively on
/// the GC coordinator in the pre-STW1 window, piggybacking on the same
/// walk that ages temperature and resets mark state.
class SiteProfileTable {
public:
  /// Fixed site capacity: SiteIds at or above this fall back to the
  /// unknown slot's accounting. 256 distinct tagged call sites is far
  /// beyond any workload in-tree; a fixed array keeps every hook
  /// allocation-free and index-race-free.
  static constexpr size_t MaxSites = 256;

  explicit SiteProfileTable(unsigned ProfileCycles);

  /// Optional: counters mirrored into the metrics registry (site.*).
  /// Safe to skip entirely (tests drive the table bare).
  void bindMetrics(Counter *TaggedBytes, Counter *SurvivedBytes,
                   Counter *RelocatedBytes, Counter *PretenuredBytes,
                   Counter *RouteFlips, Counter *ProfileCycleCtr);

  // --- Mutator-side (lock-free) -----------------------------------------

  /// Records \p Bytes allocated under \p Site. \p Pretenured marks bytes
  /// placed through the secondary TLAB (cold-routed placement).
  void noteAllocation(SiteId Site, size_t Bytes, bool Pretenured);

  /// Current placement verdict for \p Site (one relaxed load).
  SiteRoute routeOf(SiteId Site) const {
    return static_cast<SiteRoute>(
        Slots[slotOf(Site)].Route.load(std::memory_order_relaxed));
  }

  /// Records \p Bytes of relocation churn for \p Site (called by
  /// relocation winners, GC and mutator threads alike).
  void noteRelocation(SiteId Site, size_t Bytes);

  /// Records a relocated survivor into the current cycle's window
  /// (lock-free; GC and mutator winners). Needed because a relocated
  /// object lands on a destination page whose livemap stays empty until
  /// the next marking — the pre-STW1 walk can only see survivors that
  /// stayed put, so without this hook an aggressively-compacting config
  /// would attribute almost no survival at all.
  void noteRelocatedSurvival(SiteId Site, size_t Bytes, bool Hot);

  // --- Coordinator-side (pre-STW1 exclusive window) ---------------------

  /// Accumulates one surviving object into this cycle's window. Called
  /// from the driver's pre-STW1 page walk, before clearMarkState.
  void noteSurvival(SiteId Site, size_t Bytes, bool Hot);

  /// Closes the cycle's window: folds the window's hot/survived bytes
  /// into each site's EWMA, re-derives routes (persistently cold sites
  /// move to Warm/Cold; any re-heating decays them back toward Hot), and
  /// publishes the new verdicts for the mutators' next allocations.
  void endCycle();

  /// Route thresholds on the hot-byte EWMA (exposed for tests).
  static constexpr double ColdEwmaMax = 0.05;
  static constexpr double WarmEwmaMax = 0.25;

  /// Snapshot of every site that has seen any traffic, ordered by id.
  /// Coordinator-window values (EWMA, route) are read relaxed; callers
  /// get the last published cycle's verdicts.
  std::vector<SiteStats> snapshot() const;

  unsigned profileCycles() const { return ProfileCycles; }

private:
  static size_t slotOf(SiteId Site) {
    return Site < MaxSites ? Site : 0;
  }

  struct Slot {
    // Mutator-written, relaxed.
    std::atomic<uint64_t> AllocatedBytes{0};
    std::atomic<uint64_t> WindowAllocatedBytes{0};
    std::atomic<uint64_t> PretenuredBytes{0};
    std::atomic<uint64_t> RelocatedBytes{0};
    // Relocation-winner-written (GC + mutator threads), drained by
    // endCycle into the same window as the coordinator walk's fields.
    std::atomic<uint64_t> WindowRelocSurvivedBytes{0};
    std::atomic<uint64_t> WindowRelocHotBytes{0};
    // Coordinator-only (pre-STW1 window; plain fields).
    uint64_t SurvivedBytes = 0;
    uint64_t HotBytes = 0;
    uint64_t WindowSurvivedBytes = 0;
    uint64_t WindowHotBytes = 0;
    double HotEwma = 1.0; ///< Born hot: never pretenure on no evidence.
    unsigned ObservedCycles = 0;
    // Published verdict (coordinator writes, mutators read).
    std::atomic<uint8_t> Route{static_cast<uint8_t>(SiteRoute::Hot)};
  };

  std::array<Slot, MaxSites> Slots;
  unsigned ProfileCycles;
  // Metric mirrors (null when unbound). Volume counters are advanced by
  // per-cycle deltas in endCycle so the hooks stay single-fetch_add.
  Counter *MetTagged = nullptr;
  Counter *MetSurvived = nullptr;
  Counter *MetRelocated = nullptr;
  Counter *MetPretenured = nullptr;
  Counter *MetRouteFlips = nullptr;
  Counter *MetProfileCycles = nullptr;
  uint64_t PublishedTagged = 0;
  uint64_t PublishedSurvived = 0;
  uint64_t PublishedRelocated = 0;
  uint64_t PublishedPretenured = 0;
};

} // namespace hcsgc

#endif // HCSGC_GC_SITEPROFILE_H
