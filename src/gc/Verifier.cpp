//===- gc/Verifier.cpp - Heap invariant verifier ------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gc/Verifier.h"

#include <cstdio>
#include <deque>
#include <unordered_set>

using namespace hcsgc;

namespace {

/// Verification context: worklist + visited set + error sink.
class Verifier {
public:
  explicit Verifier(GcHeap &Heap) : Heap(Heap) {}

  void addError(const std::string &Msg) {
    if (Res.Errors.size() < 32) // cap the flood
      Res.Errors.push_back(Msg);
  }

  /// Resolves a (possibly stale) reference value to the object's current
  /// address, validating every step. \returns 0 on validation failure.
  uintptr_t resolveAndCheck(Oop V) {
    ++Res.RefsChecked;
    uintptr_t Addr = oopAddr(V);
    PtrColor C = oopColor(V);
    if (C != PtrColor::M0 && C != PtrColor::M1 && C != PtrColor::R) {
      addError(formatError("reference with illegal color bits", V));
      return 0;
    }
    if (!Heap.pageTable().covers(Addr)) {
      addError(formatError("reference outside the heap reservation", V));
      return 0;
    }
    Page *P = Heap.pageTable().lookup(Addr);
    if (!P) {
      addError(formatError("reference into an unmapped page", V));
      return 0;
    }
    if (P->isRelocSourceOrQuarantined()) {
      // Invariant 3: references into evacuated pages must resolve through
      // the page's forwarding table. During an open relocation window a
      // RelocSource page may legally hold not-yet-forwarded objects — the
      // old copy must then still be live on the page.
      ForwardingTable *F = P->forwarding();
      if (!F) {
        addError(formatError("evacuated page without forwarding", V));
        return 0;
      }
      uintptr_t NewAddr = F->lookup(P->offsetOf(Addr));
      if (!NewAddr) {
        if (P->state() == PageState::RelocSource && P->isLive(Addr))
          return checkObject(P, Addr) ? Addr : 0;
        addError(formatError("unforwarded reference into evacuated page",
                             V));
        return 0;
      }
      ++Res.StaleRefsResolved;
      Page *NewPage = Heap.pageTable().lookup(NewAddr);
      if (!NewPage || NewPage->isRelocSourceOrQuarantined()) {
        addError(formatError("forwarding leads to a non-live page", V));
        return 0;
      }
      return checkObject(NewPage, NewAddr) ? NewAddr : 0;
    }
    return checkObject(P, Addr) ? Addr : 0;
  }

  /// Invariant 2: header sanity within the owning page.
  bool checkObject(Page *P, uintptr_t Addr) {
    if (Addr % ObjectAlignment != 0) {
      addError(formatError("misaligned object address", Addr));
      return false;
    }
    if (Addr < P->begin() || Addr >= P->begin() + P->used()) {
      addError(formatError("object outside its page's bump extent",
                           Addr));
      return false;
    }
    ObjectView V(Addr);
    size_t Size = V.sizeBytes();
    if (Size == 0 || Addr + Size > P->begin() + P->used()) {
      addError(formatError("object size runs past the page extent",
                           Addr));
      return false;
    }
    uint32_t NumRefs = V.numRefs();
    if (!V.isRefArray() &&
        HeaderBytes + static_cast<size_t>(NumRefs) * 8 > Size) {
      addError(formatError("inline ref slots exceed object size", Addr));
      return false;
    }
    if (V.isRefArray() && refArraySizeFor(NumRefs) > Size) {
      addError(formatError("ref array length exceeds object size",
                           Addr));
      return false;
    }
    return true;
  }

  void enqueue(uintptr_t Addr) {
    if (Visited.insert(Addr).second)
      Work.push_back(Addr);
  }

  void processSlot(std::atomic<Oop> *Slot) {
    Oop V = Slot->load(std::memory_order_relaxed);
    if (V == NullOop)
      return;
    uintptr_t Addr = resolveAndCheck(V);
    if (Addr)
      enqueue(Addr);
  }

  VerifyResult run(
      const std::function<void(
          const std::function<void(std::atomic<Oop> *)> &)> &ForEachRoot) {
    ForEachRoot([this](std::atomic<Oop> *Slot) { processSlot(Slot); });
    while (!Work.empty()) {
      uintptr_t Addr = Work.front();
      Work.pop_front();
      ++Res.ObjectsVisited;
      ObjectView V(Addr);
      uint32_t N = V.numRefs();
      for (uint32_t I = 0; I < N; ++I)
        processSlot(oopSlot(V.refSlotAddr(I)));
      if (!Res.Errors.empty() && Res.Errors.size() >= 32)
        break;
    }
    return std::move(Res);
  }

private:
  static std::string formatError(const char *What, uint64_t Value) {
    char Buf[128];
    std::snprintf(Buf, sizeof(Buf), "%s (value 0x%llx)", What,
                  (unsigned long long)Value);
    return Buf;
  }

  GcHeap &Heap;
  VerifyResult Res;
  std::deque<uintptr_t> Work;
  std::unordered_set<uintptr_t> Visited;
};

} // namespace

VerifyResult hcsgc::verifyHeap(
    GcHeap &Heap,
    const std::function<void(const std::function<void(std::atomic<Oop> *)>
                                 &)> &ForEachRoot) {
  Verifier V(Heap);
  return V.run(ForEachRoot);
}
