//===- gc/Verifier.h - Heap invariant verifier -----------------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A debugging verifier that walks the reachable object graph and checks
/// the collector's structural invariants:
///
///  1. every reachable reference points into a mapped page;
///  2. object headers are sane (nonzero size, within the page's
///     allocated extent, plausible ref counts);
///  3. stale references into evacuated pages resolve through a
///     forwarding table;
///  4. reference colors are drawn from the legal set for the current
///     window (good color, or the stale colors a window can contain);
///  5. no reachable object lives on a freed/unmapped range.
///
/// Run it from tests while the collector is idle (no concurrent cycle)
/// — the moral equivalent of HotSpot's -XX:+VerifyBeforeGC.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_GC_VERIFIER_H
#define HCSGC_GC_VERIFIER_H

#include "gc/GcHeap.h"

#include <functional>
#include <string>
#include <vector>

namespace hcsgc {

/// Result of one verification pass.
struct VerifyResult {
  uint64_t ObjectsVisited = 0;
  uint64_t RefsChecked = 0;
  uint64_t StaleRefsResolved = 0; ///< Remapped through forwarding.
  std::vector<std::string> Errors;

  bool ok() const { return Errors.empty(); }
};

/// Walks the graph reachable from the given roots and checks invariants.
/// The caller must guarantee quiescence: no GC cycle in flight and no
/// other mutator running.
VerifyResult verifyHeap(
    GcHeap &Heap,
    const std::function<void(const std::function<void(std::atomic<Oop> *)>
                                 &)> &ForEachRoot);

} // namespace hcsgc

#endif // HCSGC_GC_VERIFIER_H
