//===- harness/Config.cpp - Table 2 configurations ----------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "harness/Config.h"

#include "support/Compiler.h"

#include <cstdio>

using namespace hcsgc;

KnobConfig hcsgc::table2Config(int Id) {
  // Table 2, verbatim. Columns: Hotness / ColdPage / ColdConfidence /
  // RelocateAllSmallPages / LazyRelocate.
  static const struct {
    int H, CP;
    double CC;
    int RA, LZ;
  } Rows[19] = {
      {0, 0, 0.0, 0, 0}, // 0: unmodified ZGC (baseline)
      {0, 0, 0.0, 0, 0}, // 1: HCSGC, all knobs off
      {0, 0, 0.0, 0, 1}, // 2
      {0, 0, 0.0, 1, 0}, // 3
      {0, 0, 0.0, 1, 1}, // 4
      {1, 0, 0.0, 0, 0}, // 5: hotness tracked but unused
      {1, 0, 0.5, 0, 0}, // 6
      {1, 0, 1.0, 0, 0}, // 7
      {1, 0, 0.0, 0, 1}, // 8
      {1, 0, 0.5, 0, 1}, // 9
      {1, 0, 1.0, 0, 1}, // 10
      {1, 1, 0.0, 0, 0}, // 11
      {1, 1, 0.5, 0, 0}, // 12
      {1, 1, 1.0, 0, 0}, // 13
      {1, 1, 0.0, 0, 1}, // 14
      {1, 1, 0.5, 0, 1}, // 15
      {1, 1, 1.0, 0, 1}, // 16
      {1, 1, 0.0, 1, 0}, // 17
      {1, 1, 0.0, 1, 1}, // 18
  };
  // Extensions beyond the paper's table: 19 = config 16 with the 2-bit
  // temperature counters on, 20 = 19 with simulated cold-page reclaim.
  if (Id == 19 || Id == 20) {
    KnobConfig K = table2Config(16);
    K.Id = Id;
    K.Temperature = true;
    K.ColdReclaimSim = Id == 20;
    return K;
  }
  // 21/22 = 19/20 plus allocation-site profiling with pretenuring.
  if (Id == 21 || Id == 22) {
    KnobConfig K = table2Config(Id - 2);
    K.Id = Id;
    K.SiteProfile = true;
    return K;
  }
  if (Id < 0 || Id > 18)
    fatalError("Table 2 config id out of range (0-22)");
  KnobConfig K;
  K.Id = Id;
  K.Hotness = Rows[Id].H;
  K.ColdPage = Rows[Id].CP;
  K.ColdConfidence = Rows[Id].CC;
  K.RelocateAllSmallPages = Rows[Id].RA;
  K.LazyRelocate = Rows[Id].LZ;
  return K;
}

std::vector<KnobConfig> hcsgc::allTable2Configs() {
  std::vector<KnobConfig> All;
  for (int I = 0; I <= 18; ++I)
    All.push_back(table2Config(I));
  return All;
}

GcConfig hcsgc::applyKnobs(GcConfig Base, const KnobConfig &Knobs) {
  Base.Hotness = Knobs.Hotness;
  Base.ColdPage = Knobs.ColdPage;
  Base.ColdConfidence = Knobs.ColdConfidence;
  Base.RelocateAllSmallPages = Knobs.RelocateAllSmallPages;
  Base.LazyRelocate = Knobs.LazyRelocate;
  Base.Temperature = Knobs.Temperature;
  Base.ColdReclaim = Knobs.ColdReclaimSim ? ColdReclaimMode::Simulate
                                          : ColdReclaimMode::Off;
  Base.SiteProfiling = Knobs.SiteProfile;
  return Base;
}

std::string hcsgc::describeConfig(const KnobConfig &Knobs) {
  if (Knobs.Id == 0)
    return "ZGC";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "H%d CP%d CC%.1f RA%d LZ%d",
                Knobs.Hotness ? 1 : 0, Knobs.ColdPage ? 1 : 0,
                Knobs.ColdConfidence, Knobs.RelocateAllSmallPages ? 1 : 0,
                Knobs.LazyRelocate ? 1 : 0);
  std::string S = Buf;
  // Extension suffixes — only the new ids carry them, so the paper
  // configs keep their exact Table 2 labels.
  if (Knobs.Temperature)
    S += Knobs.ColdReclaimSim ? " T1 CR1" : " T1";
  if (Knobs.SiteProfile)
    S += " SP1";
  return S;
}
