//===- harness/Config.h - Table 2 configurations ---------------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 19 benchmark configurations of Table 2. Config 0 is unmodified
/// ZGC (the baseline); Config 1 is HCSGC with every knob off (expected
/// to behave identically); Configs 2-18 enumerate the knob combinations.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_HARNESS_CONFIG_H
#define HCSGC_HARNESS_CONFIG_H

#include "gc/GcConfig.h"

#include <string>
#include <vector>

namespace hcsgc {

/// One Table 2 column (Temperature / ColdReclaimSim / SiteProfile are
/// extensions beyond the paper's table — ids 19-22 below).
struct KnobConfig {
  int Id = 0;
  bool Hotness = false;
  bool ColdPage = false;
  double ColdConfidence = 0.0;
  bool RelocateAllSmallPages = false;
  bool LazyRelocate = false;
  bool Temperature = false;
  bool ColdReclaimSim = false;
  bool SiteProfile = false;
};

/// \returns the Table 2 configuration with the given \p Id (0-18), or
/// one of the extensions: 19 is config 16 plus the 2-bit temperature
/// counters, 20 additionally simulates cold-page reclaim; 21 and 22 add
/// allocation-site profiling with pretenuring on top of 19 and 20
/// respectively.
KnobConfig table2Config(int Id);

/// \returns all 19 configurations in order.
std::vector<KnobConfig> allTable2Configs();

/// Applies \p Knobs onto a base collector configuration.
GcConfig applyKnobs(GcConfig Base, const KnobConfig &Knobs);

/// \returns a short label like "H1 CP0 CC0.5 RA0 LZ1" (or "ZGC" for 0).
std::string describeConfig(const KnobConfig &Knobs);

} // namespace hcsgc

#endif // HCSGC_HARNESS_CONFIG_H
