//===- harness/Report.cpp - Paper-style result tables -------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "harness/Report.h"

#include "stats/Bootstrap.h"
#include "stats/Descriptive.h"

#include <algorithm>

using namespace hcsgc;

namespace {

struct ConfigSummary {
  const ConfigResult *CR = nullptr;
  BoxplotSummary Box;
  BootstrapResult Boot;
  double Loads = 0, L1 = 0, Llc = 0;
  double GcCycles = 0, EcPages = 0;
  double AvgPauseMs = 0, MaxPauseMs = 0;
  double PauseP50Ms = 0, PauseP99Ms = 0;
  double StallP50Ms = 0, StallP99Ms = 0;
  double HotRatio = 0;
  double RelocMutMb = 0, RelocGcMb = 0;
  double Wall = 0;
  double Aux1 = 0, Aux2 = 0, Aux3 = 0;
  BootstrapResult Aux1Boot, Aux2Boot, Aux3Boot;
};

std::vector<double> execSample(const ConfigResult &CR) {
  std::vector<double> S;
  for (const RunMeasurement &R : CR.Runs)
    S.push_back(R.ExecSeconds);
  return S;
}

ConfigSummary summarize(const ConfigResult &CR) {
  ConfigSummary S;
  S.CR = &CR;
  std::vector<double> Exec = execSample(CR);
  S.Box = boxplot(Exec);
  S.Boot = bootstrapMean(Exec);
  double N = static_cast<double>(CR.Runs.size());
  std::vector<double> A1, A2, A3;
  for (const RunMeasurement &R : CR.Runs) {
    S.Loads += static_cast<double>(R.Loads) / N;
    S.L1 += static_cast<double>(R.L1Misses) / N;
    S.Llc += static_cast<double>(R.LlcMisses) / N;
    S.GcCycles += static_cast<double>(R.GcCycles) / N;
    S.EcPages += R.MedianSmallPagesInEc / N;
    S.AvgPauseMs += R.AvgPauseMs / N;
    S.MaxPauseMs = std::max(S.MaxPauseMs, R.MaxPauseMs);
    S.PauseP50Ms += R.PauseP50Ms / N;
    S.PauseP99Ms += R.PauseP99Ms / N;
    S.StallP50Ms += R.StallP50Ms / N;
    S.StallP99Ms += R.StallP99Ms / N;
    S.HotRatio += R.HotBytesRatio / N;
    S.RelocMutMb +=
        static_cast<double>(R.RelocBytesMutator) / (1024.0 * 1024.0) / N;
    S.RelocGcMb +=
        static_cast<double>(R.RelocBytesGc) / (1024.0 * 1024.0) / N;
    S.Wall += R.WallSeconds / N;
    A1.push_back(R.Aux1);
    A2.push_back(R.Aux2);
    A3.push_back(R.Aux3);
  }
  S.Aux1 = mean(A1);
  S.Aux2 = mean(A2);
  S.Aux3 = mean(A3);
  S.Aux1Boot = bootstrapMean(A1);
  S.Aux2Boot = bootstrapMean(A2);
  S.Aux3Boot = bootstrapMean(A3);
  return S;
}

double pct(double V, double Base) {
  if (Base == 0)
    return 0;
  return (V - Base) / Base * 100.0;
}

} // namespace

void hcsgc::printReport(const ExperimentResult &Result, std::FILE *Out) {
  const ExperimentSpec &Spec = Result.Spec;
  std::fprintf(Out, "\n================================================"
                    "======================================\n");
  std::fprintf(Out, "%s\n", Spec.Name.c_str());
  std::fprintf(Out,
               "runs/config=%u  core-model=%s  heap=%zuMB  "
               "small-page=%zuKB  gc-workers=%u\n",
               Spec.Runs,
               Spec.Model == CoreModel::Unloaded ? "unloaded"
                                                 : "single-core",
               Spec.BaseConfig.MaxHeapBytes >> 20,
               Spec.BaseConfig.Geometry.SmallPageSize >> 10,
               Spec.BaseConfig.GcWorkers);
  std::fprintf(Out, "==================================================="
                    "===================================\n");

  std::vector<ConfigSummary> Sums;
  for (const ConfigResult &CR : Result.Configs)
    Sums.push_back(summarize(CR));

  const ConfigSummary *Base = nullptr;
  for (const ConfigSummary &S : Sums)
    if (S.CR->Knobs.Id == 0)
      Base = &S;
  if (!Base && !Sums.empty())
    Base = &Sums[0];

  // Execution time (the paper's top three plots, as a table).
  std::fprintf(Out, "\n-- Execution time (simulated seconds; negative "
                    "vs-ZGC%% = speedup) --\n");
  std::fprintf(Out, "%3s %-22s %8s %8s %8s %8s [%8s,%8s] %8s %4s %8s\n",
               "cfg", "knobs", "median", "q1", "q3", "mean", "ci2.5",
               "ci97.5", "vsZGC%", "sig", "wall(s)");
  for (const ConfigSummary &S : Sums) {
    double VsBase = Base ? pct(S.Boot.MeanEstimate,
                               Base->Boot.MeanEstimate)
                         : 0;
    bool Significant =
        Base && S.CR != Base->CR &&
        significantlyDifferent(S.Boot, Base->Boot);
    std::fprintf(Out,
                 "%3d %-22s %8.3f %8.3f %8.3f %8.3f [%8.3f,%8.3f] "
                 "%+7.1f%% %4s %8.2f\n",
                 S.CR->Knobs.Id, describeConfig(S.CR->Knobs).c_str(),
                 S.Box.Median, S.Box.Q1, S.Box.Q3, S.Boot.MeanEstimate,
                 S.Boot.CiLow, S.Boot.CiHigh, VsBase,
                 Significant ? "*" : "", S.Wall);
  }

  // Cache statistics normalized against ZGC (the middle plots).
  std::fprintf(Out, "\n-- Cache statistics (normalized vs Config 0; "
                    "negative = fewer) --\n");
  std::fprintf(Out, "%3s %12s %12s %12s | %14s %12s %12s\n", "cfg",
               "loads%", "L1miss%", "LLCmiss%", "loads", "L1miss",
               "LLCmiss");
  for (const ConfigSummary &S : Sums)
    std::fprintf(Out,
                 "%3d %+11.1f%% %+11.1f%% %+11.1f%% | %14.0f %12.0f "
                 "%12.0f\n",
                 S.CR->Knobs.Id,
                 Base ? pct(S.Loads, Base->Loads) : 0,
                 Base ? pct(S.L1, Base->L1) : 0,
                 Base ? pct(S.Llc, Base->Llc) : 0, S.Loads, S.L1, S.Llc);

  // GC statistics (the right-hand plots).
  std::fprintf(Out, "\n-- GC statistics --\n");
  std::fprintf(Out, "%3s %14s %24s %14s %14s\n", "cfg", "avg GC cycles",
               "avg median EC small pages", "avg pause(ms)",
               "max pause(ms)");
  for (const ConfigSummary &S : Sums)
    std::fprintf(Out, "%3d %14.1f %24.1f %14.3f %14.3f\n",
                 S.CR->Knobs.Id, S.GcCycles, S.EcPages, S.AvgPauseMs,
                 S.MaxPauseMs);

  // Collector observability metrics (fed by the MetricsRegistry and the
  // per-cycle byte attribution the trace layer introduced).
  std::fprintf(Out, "\n-- GC metrics (pause/stall percentiles, hotness, "
                    "relocation attribution) --\n");
  std::fprintf(Out, "%3s %14s %14s %14s %14s %12s %16s %16s\n", "cfg",
               "pause p50(ms)", "pause p99(ms)", "stall p50(ms)",
               "stall p99(ms)", "hot/live", "mut reloc(MB)",
               "gc reloc(MB)");
  for (const ConfigSummary &S : Sums)
    std::fprintf(Out,
                 "%3d %14.3f %14.3f %14.3f %14.3f %12.3f %16.2f %16.2f\n",
                 S.CR->Knobs.Id, S.PauseP50Ms, S.PauseP99Ms, S.StallP50Ms,
                 S.StallP99Ms, S.HotRatio, S.RelocMutMb, S.RelocGcMb);

  // Heap usage over time for Config 0 (rightmost plot).
  if (!Result.BaselineHeapSeries.empty()) {
    std::fprintf(Out, "\n-- Heap usage over time (Config 0, run 0) --\n");
    size_t Step =
        std::max<size_t>(1, Result.BaselineHeapSeries.size() / 24);
    for (size_t I = 0; I < Result.BaselineHeapSeries.size(); I += Step) {
      const HeapSample &HS = Result.BaselineHeapSeries[I];
      int Bars = static_cast<int>(HS.UsedFraction * 50);
      std::fprintf(Out, "  %7.3fs %5.1f%% |", HS.Seconds,
                   HS.UsedFraction * 100);
      for (int B = 0; B < Bars; ++B)
        std::fputc('#', Out);
      std::fputc('\n', Out);
    }
  }

  // Checksum validation: every configuration must compute the same
  // result, or the collector corrupted the workload.
  uint64_t FirstChecksum = 0;
  bool HaveFirst = false, Mismatch = false;
  for (const ConfigResult &CR : Result.Configs)
    for (const RunMeasurement &R : CR.Runs) {
      if (!HaveFirst) {
        FirstChecksum = R.Checksum;
        HaveFirst = true;
      } else if (R.Checksum != FirstChecksum) {
        Mismatch = true;
      }
    }
  std::fprintf(Out, "\nchecksum: %llu %s\n",
               (unsigned long long)FirstChecksum,
               Mismatch ? "!! MISMATCH ACROSS CONFIGS/RUNS !!"
                        : "(identical across all configs and runs)");

  // Machine-readable block.
  std::fprintf(Out, "\n-- CSV --\n");
  std::fprintf(Out, "csv,experiment,config,run,exec_s,wall_s,loads,"
                    "l1_miss,llc_miss,gc_cycles,ec_pages,checksum\n");
  for (const ConfigResult &CR : Result.Configs)
    for (size_t I = 0; I < CR.Runs.size(); ++I) {
      const RunMeasurement &R = CR.Runs[I];
      std::fprintf(Out,
                   "csv,%s,%d,%zu,%.6f,%.6f,%llu,%llu,%llu,%llu,%.1f,"
                   "%llu\n",
                   Spec.Name.c_str(), CR.Knobs.Id, I, R.ExecSeconds,
                   R.WallSeconds, (unsigned long long)R.Loads,
                   (unsigned long long)R.L1Misses,
                   (unsigned long long)R.LlcMisses,
                   (unsigned long long)R.GcCycles,
                   R.MedianSmallPagesInEc,
                   (unsigned long long)R.Checksum);
    }
  std::fprintf(Out, "csv_gcmetrics,experiment,config,run,pause_p50_ms,"
                    "pause_p99_ms,stall_p50_ms,stall_p99_ms,hot_ratio,"
                    "reloc_bytes_mutator,reloc_bytes_gc\n");
  for (const ConfigResult &CR : Result.Configs)
    for (size_t I = 0; I < CR.Runs.size(); ++I) {
      const RunMeasurement &R = CR.Runs[I];
      std::fprintf(Out, "csv_gcmetrics,%s,%d,%zu,%.6f,%.6f,%.6f,%.6f,"
                        "%.6f,%llu,%llu\n",
                   Spec.Name.c_str(), CR.Knobs.Id, I, R.PauseP50Ms,
                   R.PauseP99Ms, R.StallP50Ms, R.StallP99Ms,
                   R.HotBytesRatio,
                   (unsigned long long)R.RelocBytesMutator,
                   (unsigned long long)R.RelocBytesGc);
    }
  std::fflush(Out);
}

void hcsgc::printScoreReport(const ExperimentResult &Result,
                             const char *Aux1Name, const char *Aux2Name,
                             const char *Aux3Name, std::FILE *Out) {
  std::fprintf(Out, "\n-- Scores --\n");
  std::fprintf(Out, "%3s %14s [%12s,%12s] %14s [%12s,%12s]", "cfg",
               Aux1Name, "ci2.5", "ci97.5", Aux2Name, "ci2.5", "ci97.5");
  if (Aux3Name)
    std::fprintf(Out, " %14s [%12s,%12s]", Aux3Name, "ci2.5", "ci97.5");
  std::fputc('\n', Out);
  for (const ConfigResult &CR : Result.Configs) {
    ConfigSummary S = summarize(CR);
    std::fprintf(Out, "%3d %14.1f [%12.1f,%12.1f] %14.3f [%12.3f,%12.3f]",
                 CR.Knobs.Id, S.Aux1, S.Aux1Boot.CiLow, S.Aux1Boot.CiHigh,
                 S.Aux2, S.Aux2Boot.CiLow, S.Aux2Boot.CiHigh);
    if (Aux3Name)
      std::fprintf(Out, " %14.3f [%12.3f,%12.3f]", S.Aux3,
                   S.Aux3Boot.CiLow, S.Aux3Boot.CiHigh);
    std::fputc('\n', Out);
  }
  std::fflush(Out);
}
