//===- harness/Report.h - Paper-style result tables ------------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders an ExperimentResult the way the paper's figures are laid out
/// (§4.2): per-configuration execution-time boxplot statistics, the
/// bootstrap mean with its 95% CI and the normalized difference against
/// Config 0 (negative = speedup), cache statistics normalized against
/// Config 0, GC cycle counts and average-median small pages relocated,
/// plus the baseline heap-usage-over-time series. Machine-readable CSV
/// lines follow the tables.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_HARNESS_REPORT_H
#define HCSGC_HARNESS_REPORT_H

#include "harness/Runner.h"

#include <cstdio>

namespace hcsgc {

/// Prints the full paper-style report for \p Result to \p Out.
void printReport(const ExperimentResult &Result, std::FILE *Out = stdout);

/// Prints one aux-score report (SPECjbb throughput/latency, Fig. 13;
/// KV throughput/p99/p50). \p Aux3Name adds a third column when
/// non-null — workloads reporting throughput plus two latency
/// percentiles need all three Aux slots.
void printScoreReport(const ExperimentResult &Result, const char *Aux1Name,
                      const char *Aux2Name,
                      const char *Aux3Name = nullptr,
                      std::FILE *Out = stdout);

} // namespace hcsgc

#endif // HCSGC_HARNESS_REPORT_H
