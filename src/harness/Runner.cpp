//===- harness/Runner.cpp - Experiment runner ---------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "harness/Runner.h"

#include "stats/Descriptive.h"
#include "support/ArgParse.h"
#include "support/Stopwatch.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>

using namespace hcsgc;

/// Nominal clock frequency converting simulated cycles to seconds.
static constexpr double SimHz = 3.0e9;

GcConfig hcsgc::benchBaseConfig(size_t MaxHeapMb) {
  GcConfig Cfg;
  // Pages scale down with the scaled heaps so the page-count dynamics
  // (how many pages exist, how many are selected into EC) stay
  // comparable to the paper's 2 MiB pages on multi-GiB heaps.
  Cfg.Geometry.SmallPageSize = 256 * 1024;
  Cfg.Geometry.MediumPageSize = 4 * 1024 * 1024;
  Cfg.MaxHeapBytes = MaxHeapMb << 20;
  double HeapPages = static_cast<double>(Cfg.MaxHeapBytes) /
                     static_cast<double>(Cfg.Geometry.SmallPageSize);
  // Keep per-cycle evacuation volume proportional to the heap, as ZGC's
  // production heuristics do; the paper's single-page budget is tuned
  // for 2 MiB pages.
  Cfg.EvacBudgetPages = std::max(2.0, HeapPages / 8.0);
  // A generous inter-cycle allocation window: LAZYRELOCATE's benefit
  // comes from what mutators touch between two cycles (§3.2).
  Cfg.TriggerHysteresisFraction = 0.20;
  Cfg.GcWorkers = 1;
  Cfg.EnableProbes = true;
  return Cfg;
}

ExperimentResult hcsgc::runExperiment(const ExperimentSpec &Spec) {
  ExperimentResult Result;
  Result.Spec = Spec;

  std::vector<int> Ids = Spec.Configs;
  if (Ids.empty())
    for (int I = 0; I <= 18; ++I)
      Ids.push_back(I);

  for (int Id : Ids) {
    ConfigResult CR;
    CR.Knobs = table2Config(Id);
    for (unsigned Run = 0; Run < Spec.Runs; ++Run) {
      GcConfig Cfg = applyKnobs(Spec.BaseConfig, CR.Knobs);
      if (!Spec.SnapshotLogBase.empty()) {
        Cfg.SnapshotLogEnabled = true;
        Cfg.SnapshotLogPath = Spec.SnapshotLogBase + ".cfg" +
                              std::to_string(Id) + ".run" +
                              std::to_string(Run) + ".jsonl";
      }
      Runtime RT(Cfg);
      auto M = RT.attachMutator();
      RunMeasurement Meas;

      // Heap-usage sampler for the baseline's first run (the rightmost
      // plot of each paper figure).
      std::atomic<bool> StopSampler{false};
      std::vector<HeapSample> Series;
      std::thread Sampler;
      bool Sampling = Id == 0 && Run == 0;
      if (Sampling) {
        Sampler = std::thread([&] {
          Stopwatch SW;
          while (!StopSampler.load(std::memory_order_relaxed)) {
            Series.push_back(
                {SW.elapsedMs() / 1000.0,
                 static_cast<double>(RT.usedBytes()) /
                     static_cast<double>(RT.maxHeapBytes())});
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
          }
        });
      }

      Stopwatch Wall;
      Meas.Checksum = Spec.Body(*M, Meas);
      Meas.WallSeconds = Wall.elapsedMs() / 1000.0;
      // Detach before waiting for the driver: an attached mutator that
      // stops polling would deadlock the next STW pause.
      M.reset();
      RT.driver().waitIdle();
      // Shut the driver down before reading statistics: under
      // LAZYRELOCATE the final cycle's record is only published once its
      // deferred relocation set drains (which shutdown forces).
      RT.driver().shutdown();

      if (Sampling) {
        StopSampler.store(true, std::memory_order_relaxed);
        Sampler.join();
        Result.BaselineHeapSeries = std::move(Series);
      }

      CacheCounters Mut = RT.mutatorCounters();
      CacheCounters Gc = RT.gcThreadCounters();
      Meas.Loads = Mut.Loads + Gc.Loads;
      Meas.L1Misses = Mut.L1Misses + Gc.L1Misses;
      Meas.LlcMisses = Mut.LlcMisses + Gc.LlcMisses;
      double Cycles = static_cast<double>(Mut.Cycles);
      if (Spec.Model == CoreModel::SingleCore)
        Cycles += static_cast<double>(Gc.Cycles);
      Meas.ExecSeconds = Cycles / SimHz;

      // Single pass over the cycle records (no snapshot copy).
      std::vector<double> EcCounts;
      double PauseSum = 0;
      size_t Pauses = 0;
      uint64_t LiveBytes = 0, HotBytes = 0;
      RT.gcStats().forEachCycle([&](const CycleRecord &R) {
        EcCounts.push_back(static_cast<double>(R.SmallPagesInEc));
        for (double P : {R.Stw1Ms, R.Stw2Ms, R.Stw3Ms}) {
          PauseSum += P;
          ++Pauses;
          Meas.MaxPauseMs = std::max(Meas.MaxPauseMs, P);
        }
        LiveBytes += R.LiveBytesMarked;
        HotBytes += R.HotBytesMarked;
        Meas.RelocBytesMutator += R.BytesRelocatedByMutators;
        Meas.RelocBytesGc += R.BytesRelocatedByGc;
      });
      Meas.GcCycles = EcCounts.size();
      if (!EcCounts.empty()) {
        Meas.MedianSmallPagesInEc = median(EcCounts);
        Meas.AvgPauseMs = Pauses ? PauseSum / static_cast<double>(Pauses)
                                 : 0;
      }
      if (LiveBytes > 0)
        Meas.HotBytesRatio = static_cast<double>(HotBytes) /
                             static_cast<double>(LiveBytes);
      if (const Histogram *H = RT.metrics().findHistogram("gc.pause_us")) {
        Meas.PauseP50Ms = static_cast<double>(H->percentile(0.5)) / 1000.0;
        Meas.PauseP99Ms =
            static_cast<double>(H->percentile(0.99)) / 1000.0;
      }
      if (const Histogram *H =
              RT.metrics().findHistogram("alloc.stall_us")) {
        if (H->count() > 0) {
          Meas.StallP50Ms =
              static_cast<double>(H->percentile(0.5)) / 1000.0;
          Meas.StallP99Ms =
              static_cast<double>(H->percentile(0.99)) / 1000.0;
        }
      }

      CR.Runs.push_back(Meas);
    }
    Result.Configs.push_back(std::move(CR));
  }
  return Result;
}

void hcsgc::applyCommonFlags(const ArgParse &Args, ExperimentSpec &Spec) {
  if (Args.getBool("list-configs", false)) {
    // Every bench shares this flag, so the config catalog is always one
    // `<bench> --list-configs` away. 0-18 are Table 2; 19-22 are the
    // temperature / site-profiling extensions.
    std::printf("%-4s %s\n", "id", "config");
    for (int Id = 0; Id <= 22; ++Id)
      std::printf("%-4d %s\n", Id,
                  describeConfig(table2Config(Id)).c_str());
    std::exit(0);
  }
  Spec.Runs = static_cast<unsigned>(Args.getInt("runs", Spec.Runs));
  std::string Configs = Args.getString("configs", "");
  if (!Configs.empty()) {
    Spec.Configs.clear();
    std::stringstream SS(Configs);
    std::string Tok;
    while (std::getline(SS, Tok, ','))
      if (!Tok.empty())
        Spec.Configs.push_back(std::atoi(Tok.c_str()));
  }
  int64_t HeapMb = Args.getInt("heap-mb", 0);
  if (HeapMb > 0) {
    GcConfig Fresh = benchBaseConfig(static_cast<size_t>(HeapMb));
    Fresh.GcWorkers = Spec.BaseConfig.GcWorkers;
    Spec.BaseConfig = Fresh;
  }
  Spec.BaseConfig.GcWorkers = static_cast<unsigned>(
      Args.getInt("workers", Spec.BaseConfig.GcWorkers));
  Spec.BaseConfig.TriggerFraction = Args.getDouble(
      "trigger", Spec.BaseConfig.TriggerFraction);
  Spec.BaseConfig.TriggerHysteresisFraction = Args.getDouble(
      "hysteresis", Spec.BaseConfig.TriggerHysteresisFraction);
  if (Args.getBool("verbose-gc", false))
    Spec.BaseConfig.VerboseGc = true;
  if (Args.getBool("trace", false))
    Spec.BaseConfig.TraceEnabled = true;
  Spec.SnapshotLogBase =
      Args.getString("snapshot-log", Spec.SnapshotLogBase);
}
