//===- harness/Runner.h - Experiment runner --------------------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one paper experiment: for each selected Table 2 configuration,
/// performs N runs of a workload in a fresh Runtime with probes enabled,
/// collecting the three aspects §4.2 reports — execution time (simulated
/// primary, wall-clock secondary), cache statistics (loads, L1 misses,
/// LLC misses over mutator + GC threads, like whole-process perf), and
/// GC statistics (cycles per run, median small pages in EC per cycle,
/// heap usage over time for Config 0).
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_HARNESS_RUNNER_H
#define HCSGC_HARNESS_RUNNER_H

#include "harness/Config.h"
#include "runtime/Runtime.h"

#include <functional>
#include <string>
#include <vector>

namespace hcsgc {

/// How modeled execution time combines thread clocks.
enum class CoreModel {
  /// Idle cores absorb GC work: time = mutator cycles (the paper's
  /// unloaded-machine scenario).
  Unloaded,
  /// Everything shares one core (taskset in §4.4's overload experiment):
  /// time = mutator + GC-thread cycles.
  SingleCore,
};

/// One run's measurements.
struct RunMeasurement {
  double ExecSeconds = 0; ///< Simulated (cycles / 3 GHz) per CoreModel.
  double WallSeconds = 0;
  uint64_t Loads = 0;
  uint64_t L1Misses = 0;
  uint64_t LlcMisses = 0;
  uint64_t GcCycles = 0;
  double MedianSmallPagesInEc = 0;
  /// STW pause statistics across the run's cycles (all three pauses).
  double AvgPauseMs = 0, MaxPauseMs = 0;
  /// Percentiles from the collector's gc.pause_us histogram (bucket-
  /// interpolated, clamped to observed min/max).
  double PauseP50Ms = 0, PauseP99Ms = 0;
  /// Percentiles of mutator allocation-stall waits (alloc.stall_us); 0
  /// when the run never stalled.
  double StallP50Ms = 0, StallP99Ms = 0;
  /// Marked hot bytes / marked live bytes over the whole run (0 when
  /// HOTNESS is off or nothing was marked).
  double HotBytesRatio = 0;
  /// Relocated bytes attributed to the acting thread kind.
  uint64_t RelocBytesMutator = 0, RelocBytesGc = 0;
  uint64_t Checksum = 0;
  /// Workload-specific scores (SPECjbb throughput/latency, KV
  /// throughput/p50/p99), rendered by printScoreReport.
  double Aux1 = 0, Aux2 = 0, Aux3 = 0;
};

/// Aggregated per-configuration results.
struct ConfigResult {
  KnobConfig Knobs;
  std::vector<RunMeasurement> Runs;
};

/// Heap-usage sample (seconds since run start, used fraction 0-1).
struct HeapSample {
  double Seconds = 0;
  double UsedFraction = 0;
};

/// A full experiment definition.
struct ExperimentSpec {
  std::string Name;        ///< e.g. "Fig 4: synthetic single-phase".
  unsigned Runs = 5;       ///< Runs per configuration.
  std::vector<int> Configs = {}; ///< Table 2 ids; empty = all 19.
  GcConfig BaseConfig;     ///< Heap geometry, sizes, workers, probes.
  CoreModel Model = CoreModel::Unloaded;
  /// When non-empty, every run streams heap snapshots (the locality
  /// observatory) to "<base>.cfg<K>.run<R>.jsonl" for tools/heapscope.
  /// Set by the --snapshot-log=<base> common flag.
  std::string SnapshotLogBase;
  /// The workload body: runs on an attached mutator, returns a checksum.
  /// Aux scores may be written through the measurement pointer.
  std::function<uint64_t(Mutator &, RunMeasurement &)> Body;
};

/// Results of a whole experiment.
struct ExperimentResult {
  ExperimentSpec Spec;
  std::vector<ConfigResult> Configs;
  std::vector<HeapSample> BaselineHeapSeries; ///< Config 0, first run.
};

/// Executes the experiment.
ExperimentResult runExperiment(const ExperimentSpec &Spec);

/// Standard base config for benches: probes on, scaled pages (256 KiB
/// small pages so scaled-down heaps keep realistic page counts), one GC
/// worker.
GcConfig benchBaseConfig(size_t MaxHeapMb);

/// Parses the common bench flags (--runs, --configs=0,1,2, --heap-mb,
/// --workers, --snapshot-log=<base>) into \p Spec. --list-configs
/// prints the id/label table of every known configuration (0-22) and
/// exits, so any bench doubles as the catalog.
class ArgParse;
void applyCommonFlags(const ArgParse &Args, ExperimentSpec &Spec);

} // namespace hcsgc

#endif // HCSGC_HARNESS_RUNNER_H
