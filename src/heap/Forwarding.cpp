//===- heap/Forwarding.cpp - Per-page forwarding table ---------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "heap/Forwarding.h"

#include "support/Compiler.h"
#include "support/MathExtras.h"

using namespace hcsgc;

ForwardingTable::ForwardingTable(uint32_t ExpectedEntries) {
  // 2x the expected population keeps probe chains short; minimum 16.
  uint64_t Cap = nextPowerOf2(std::max<uint64_t>(ExpectedEntries, 8) * 2);
  Keys = std::vector<std::atomic<uint64_t>>(Cap);
  Values = std::vector<std::atomic<uint64_t>>(Cap);
  for (uint64_t I = 0; I < Cap; ++I) {
    Keys[I].store(0, std::memory_order_relaxed);
    Values[I].store(0, std::memory_order_relaxed);
  }
  Mask = Cap - 1;
}

static uint64_t hashOffset(uint32_t Offset) {
  uint64_t H = Offset;
  H *= 0x9e3779b97f4a7c15ull;
  return H >> 32;
}

uintptr_t ForwardingTable::insertOrGet(uint32_t Offset, uintptr_t NewAddr,
                                       bool &Won) {
  uint64_t Key = static_cast<uint64_t>(Offset) + 1;
  uint64_t Idx = hashOffset(Offset) & Mask;
  for (uint64_t Probes = 0; Probes <= Mask; ++Probes) {
    uint64_t Cur = Keys[Idx].load(std::memory_order_acquire);
    if (Cur == 0) {
      uint64_t Expected = 0;
      if (Keys[Idx].compare_exchange_strong(Expected, Key,
                                            std::memory_order_acq_rel)) {
        Values[Idx].store(NewAddr, std::memory_order_release);
        Count.fetch_add(1, std::memory_order_relaxed);
        Won = true;
        return NewAddr;
      }
      Cur = Expected;
    }
    if (Cur == Key) {
      // Another thread owns this entry; wait for its value to be
      // published (a few instructions at most).
      uint64_t V;
      while ((V = Values[Idx].load(std::memory_order_acquire)) == 0)
        ;
      Won = false;
      return static_cast<uintptr_t>(V);
    }
    Idx = (Idx + 1) & Mask;
  }
  fatalError("forwarding table overflow");
}

uintptr_t ForwardingTable::lookup(uint32_t Offset) const {
  uint64_t Key = static_cast<uint64_t>(Offset) + 1;
  uint64_t Idx = hashOffset(Offset) & Mask;
  for (uint64_t Probes = 0; Probes <= Mask; ++Probes) {
    uint64_t Cur = Keys[Idx].load(std::memory_order_acquire);
    if (Cur == 0)
      return 0;
    if (Cur == Key) {
      uint64_t V;
      while ((V = Values[Idx].load(std::memory_order_acquire)) == 0)
        ;
      return static_cast<uintptr_t>(V);
    }
    Idx = (Idx + 1) & Mask;
  }
  return 0;
}
