//===- heap/Forwarding.h - Per-page forwarding table -----------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-page forwarding table mapping offsets of relocated objects to their
/// new addresses. §2.2 of the paper: "A per-page forwarding table is used
/// to record a map from old addresses to new ... The linearization point
/// is a CAS operation when inserting the corresponding entry into the
/// forwarding table. Whoever succeeds in the CAS will use its local value
/// ... while others will discard their local value."
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_HEAP_FORWARDING_H
#define HCSGC_HEAP_FORWARDING_H

#include <atomic>
#include <cstdint>
#include <vector>

namespace hcsgc {

/// Lock-free open-addressed hash table from page offset to new object
/// address. Sized once (from the marking liveness count) before any
/// insertion; never grows.
class ForwardingTable {
public:
  /// \param ExpectedEntries upper bound on the number of live objects that
  /// will be forwarded through this table.
  explicit ForwardingTable(uint32_t ExpectedEntries);

  /// Attempts to publish \p NewAddr as the relocation target for the
  /// object at \p Offset. The CAS here is the linearization point of
  /// relocation.
  ///
  /// \returns the winning address: \p NewAddr if this call won the race,
  /// or the previously-published address if another thread won.
  /// \param [out] Won set to true iff this call's CAS succeeded.
  uintptr_t insertOrGet(uint32_t Offset, uintptr_t NewAddr, bool &Won);

  /// \returns the published address for \p Offset, or 0 if the object has
  /// not (yet) been forwarded.
  uintptr_t lookup(uint32_t Offset) const;

  /// \returns the number of published entries (approximate while racing).
  uint32_t size() const {
    return Count.load(std::memory_order_relaxed);
  }

  uint32_t capacity() const {
    return static_cast<uint32_t>(Keys.size());
  }

private:
  // Keys store Offset+1 so that 0 means "empty"; values store the new
  // address, published with release ordering after the key CAS.
  std::vector<std::atomic<uint64_t>> Keys;
  std::vector<std::atomic<uint64_t>> Values;
  std::atomic<uint32_t> Count{0};
  uint64_t Mask;
};

} // namespace hcsgc

#endif // HCSGC_HEAP_FORWARDING_H
