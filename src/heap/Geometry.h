//===- heap/Geometry.h - Page size classes (Table 1) -----------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Page geometry per Table 1 of the paper:
///
///   | Page size class | Page size        | Object size    |
///   |-----------------|------------------|----------------|
///   | Small           | 2 MiB            | [0, 256] KiB   |
///   | Medium          | 32 MiB           | (256 KiB, 4 MiB] |
///   | Large           | N x 2 (> 4) MiB  | > 4 MiB        |
///
/// Sizes are configurable (benchmarks scale pages down together with their
/// scaled-down heaps); the small:medium ratio and the object-size limits
/// (1/8 of the page size) are preserved from ZGC.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_HEAP_GEOMETRY_H
#define HCSGC_HEAP_GEOMETRY_H

#include "support/MathExtras.h"

#include <cstddef>

namespace hcsgc {

/// The three ZGC page size classes.
enum class PageSizeClass { Small, Medium, Large };

/// Configurable page geometry. Defaults match Table 1.
struct HeapGeometry {
  size_t SmallPageSize = 2 * 1024 * 1024;
  size_t MediumPageSize = 32 * 1024 * 1024;

  /// Largest object allocated on a small page (Table 1: 256 KiB for 2 MiB
  /// pages, i.e. 1/8 of the page).
  size_t smallObjectMax() const { return SmallPageSize / 8; }

  /// Largest object allocated on a medium page (Table 1: 4 MiB for 32 MiB
  /// pages).
  size_t mediumObjectMax() const { return MediumPageSize / 8; }

  /// \returns the size class serving an allocation of \p Bytes.
  PageSizeClass sizeClassFor(size_t Bytes) const {
    if (Bytes <= smallObjectMax())
      return PageSizeClass::Small;
    if (Bytes <= mediumObjectMax())
      return PageSizeClass::Medium;
    return PageSizeClass::Large;
  }

  /// \returns the page size for \p Cls; large pages round the object size
  /// up to a multiple of the small page size ("N x 2 MiB" in Table 1).
  size_t pageSizeFor(PageSizeClass Cls, size_t ObjectBytes) const {
    switch (Cls) {
    case PageSizeClass::Small:
      return SmallPageSize;
    case PageSizeClass::Medium:
      return MediumPageSize;
    case PageSizeClass::Large:
      return alignUp(ObjectBytes, SmallPageSize);
    }
    return SmallPageSize;
  }

  bool valid() const {
    return isPowerOf2(SmallPageSize) && isPowerOf2(MediumPageSize) &&
           MediumPageSize > SmallPageSize && SmallPageSize >= 4096;
  }
};

} // namespace hcsgc

#endif // HCSGC_HEAP_GEOMETRY_H
