//===- heap/ObjectModel.cpp - Object headers and layout --------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "heap/ObjectModel.h"

using namespace hcsgc;

void hcsgc::initializeObject(uintptr_t Addr, uint32_t SizeWords, ClassId Cls,
                             uint8_t NumRefs, uint8_t Flags,
                             uint32_t ArrayLength) {
  *reinterpret_cast<uint64_t *>(Addr) =
      makeHeader(SizeWords, Cls, NumRefs, Flags);
  if (Flags & OF_RefArray)
    *reinterpret_cast<uint64_t *>(Addr + HeaderBytes) = ArrayLength;
}
