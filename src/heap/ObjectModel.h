//===- heap/ObjectModel.h - Object headers and layout ----------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The managed object model. Every object starts with one 64-bit header
/// word encoding its size, class id, inline reference count and flags.
/// Reference slots are laid out immediately after the header (before any
/// payload) so the collector can trace objects without class metadata.
///
/// Layout of a regular object:          Layout of a reference array:
///   [ header          : 8 bytes ]        [ header          : 8 bytes ]
///   [ ref slot 0..N-1 : 8 each  ]        [ length          : 8 bytes ]
///   [ payload         : rest    ]        [ ref slot 0..L-1 : 8 each  ]
///
/// The paper's synthetic benchmark uses "32-byte objects (including VM
/// metadata)"; here that is one header word plus three payload/ref words.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_HEAP_OBJECTMODEL_H
#define HCSGC_HEAP_OBJECTMODEL_H

#include <cassert>
#include <cstddef>
#include <cstdint>

namespace hcsgc {

/// A reference as stored in a heap slot or root: an address plus color
/// metadata bits (see gc/ColoredPtr.h). 0 is the null reference.
using Oop = uint64_t;

constexpr Oop NullOop = 0;

/// Heap addresses and object sizes are 8-byte aligned; 8 bytes is also the
/// granule of the livemap/hotmap bitmaps, as in ZGC.
constexpr size_t ObjectAlignment = 8;
constexpr size_t HeaderBytes = 8;

/// Class ids are opaque to the collector; the runtime's ClassRegistry maps
/// them to user types.
using ClassId = uint16_t;

/// Object header flag bits.
enum ObjectFlags : uint8_t {
  OF_None = 0,
  /// The object is a reference array: its first payload word is the
  /// element count and all elements are reference slots.
  OF_RefArray = 1 << 0,
};

/// Packs an object header word.
///
/// \param SizeWords total object size in 8-byte words, header included.
/// \param Cls class id from the runtime's registry.
/// \param NumRefs number of inline reference slots (ignored for ref
///        arrays, whose slot count is their length word).
inline uint64_t makeHeader(uint32_t SizeWords, ClassId Cls, uint8_t NumRefs,
                           uint8_t Flags) {
  return static_cast<uint64_t>(SizeWords) |
         (static_cast<uint64_t>(Cls) << 32) |
         (static_cast<uint64_t>(NumRefs) << 48) |
         (static_cast<uint64_t>(Flags) << 56);
}

/// A non-owning view of an object at a known-valid address. All accessors
/// are direct memory reads; callers are responsible for holding a safe
/// (good-colored) address.
class ObjectView {
public:
  explicit ObjectView(uintptr_t Addr) : Addr(Addr) {
    assert(Addr % ObjectAlignment == 0 && "misaligned object address");
  }

  uintptr_t address() const { return Addr; }

  uint64_t header() const {
    return *reinterpret_cast<const uint64_t *>(Addr);
  }

  uint32_t sizeWords() const {
    return static_cast<uint32_t>(header());
  }
  size_t sizeBytes() const {
    return static_cast<size_t>(sizeWords()) * 8;
  }
  ClassId classId() const {
    return static_cast<ClassId>(header() >> 32);
  }
  uint8_t flags() const { return static_cast<uint8_t>(header() >> 56); }
  bool isRefArray() const { return flags() & OF_RefArray; }

  /// \returns the number of reference slots (array length for ref arrays).
  uint32_t numRefs() const {
    if (isRefArray())
      return static_cast<uint32_t>(
          *reinterpret_cast<const uint64_t *>(Addr + HeaderBytes));
    return static_cast<uint8_t>(header() >> 48);
  }

  /// \returns the address of reference slot \p Idx.
  uintptr_t refSlotAddr(uint32_t Idx) const {
    assert(Idx < numRefs() && "ref slot index out of range");
    size_t Base = isRefArray() ? HeaderBytes + 8 : HeaderBytes;
    return Addr + Base + static_cast<size_t>(Idx) * 8;
  }

  /// \returns a pointer to reference slot \p Idx, usable with atomics.
  Oop *refSlot(uint32_t Idx) const {
    return reinterpret_cast<Oop *>(refSlotAddr(Idx));
  }

  /// \returns the address of the first payload byte (after header and
  /// inline ref slots; for ref arrays there is no payload).
  uintptr_t payloadAddr() const {
    assert(!isRefArray() && "ref arrays have no payload");
    return Addr + HeaderBytes + static_cast<size_t>(numRefs()) * 8;
  }

  /// \returns payload size in bytes.
  size_t payloadBytes() const {
    return sizeBytes() - (payloadAddr() - Addr);
  }

private:
  uintptr_t Addr;
};

/// \returns the total size in bytes of a regular object with \p NumRefs
/// reference slots and \p PayloadBytes of payload, including the header
/// and alignment padding.
inline size_t objectSizeFor(uint32_t NumRefs, size_t PayloadBytes) {
  size_t Raw = HeaderBytes + static_cast<size_t>(NumRefs) * 8 + PayloadBytes;
  return (Raw + ObjectAlignment - 1) & ~(ObjectAlignment - 1);
}

/// \returns the total size in bytes of a reference array of \p Length
/// elements.
inline size_t refArraySizeFor(uint32_t Length) {
  return HeaderBytes + 8 + static_cast<size_t>(Length) * 8;
}

/// Writes the header and (for ref arrays) length word of a new object at
/// \p Addr; reference slots must already be zero (allocators hand out
/// zeroed memory).
void initializeObject(uintptr_t Addr, uint32_t SizeWords, ClassId Cls,
                      uint8_t NumRefs, uint8_t Flags, uint32_t ArrayLength);

} // namespace hcsgc

#endif // HCSGC_HEAP_OBJECTMODEL_H
