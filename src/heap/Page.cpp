//===- heap/Page.cpp - Heap pages with livemap and hotmap ------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "heap/Page.h"

#include "support/MathExtras.h"

using namespace hcsgc;

Page::Page(uintptr_t Begin, size_t Size, PageSizeClass Cls, uint64_t Seq)
    : BeginAddr(Begin), PageBytes(Size), Cls(Cls), AllocSeq(Seq),
      Top(Begin), LiveMap(Size / ObjectAlignment),
      HotMap(Size / ObjectAlignment) {
  assert(Begin % ObjectAlignment == 0 && "misaligned page");
}

uintptr_t Page::allocate(size_t Bytes) {
  Bytes = alignUp(Bytes, ObjectAlignment);
  uintptr_t Cur = Top.load(std::memory_order_relaxed);
  for (;;) {
    if (Cur + Bytes > end())
      return 0;
    if (Top.compare_exchange_weak(Cur, Cur + Bytes,
                                  std::memory_order_relaxed))
      return Cur;
  }
}

bool Page::undoAllocate(uintptr_t Addr, size_t Bytes) {
  Bytes = alignUp(Bytes, ObjectAlignment);
  uintptr_t Expected = Addr + Bytes;
  return Top.compare_exchange_strong(Expected, Addr,
                                     std::memory_order_relaxed);
}

void Page::clearMarkState() {
  LiveMap.clearAll();
  HotMap.clearAll();
  LiveBytesCtr.store(0, std::memory_order_relaxed);
  HotBytesCtr.store(0, std::memory_order_relaxed);
  LiveObjectsCtr.store(0, std::memory_order_relaxed);
}

bool Page::markLive(uintptr_t Addr, size_t Bytes) {
  if (!LiveMap.parSet(granuleOf(Addr)))
    return false;
  LiveBytesCtr.fetch_add(alignUp(Bytes, ObjectAlignment),
                         std::memory_order_relaxed);
  LiveObjectsCtr.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool Page::flagHot(uintptr_t Addr, size_t Bytes) {
  if (!HotMap.parSet(granuleOf(Addr)))
    return false;
  HotBytesCtr.fetch_add(alignUp(Bytes, ObjectAlignment),
                        std::memory_order_relaxed);
  return true;
}

void Page::forEachLiveObject(
    const std::function<void(uintptr_t)> &Fn) const {
  size_t Limit = used() / ObjectAlignment;
  for (size_t Idx = LiveMap.findNext(0);
       Idx != BitMap::npos && Idx < Limit; Idx = LiveMap.findNext(Idx + 1))
    Fn(BeginAddr + Idx * ObjectAlignment);
}

void Page::beginEvacuation() {
  assert(state() == PageState::Active && "page already evacuating");
  Fwd = std::make_unique<ForwardingTable>(liveObjects());
  RelocOutGcCtr.store(0, std::memory_order_relaxed);
  RelocOutMutCtr.store(0, std::memory_order_relaxed);
  setState(PageState::RelocSource);
}
