//===- heap/Page.cpp - Heap pages with livemap and hotmap ------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "heap/Page.h"

#include "support/MathExtras.h"

using namespace hcsgc;

Page::Page(uintptr_t Begin, size_t Size, PageSizeClass Cls, uint64_t Seq,
           bool TrackTemp, bool TrackSites)
    : BeginAddr(Begin), PageBytes(Size), Cls(Cls), AllocSeq(Seq),
      Top(Begin), LiveMap(Size / ObjectAlignment),
      HotMap(Size / ObjectAlignment) {
  assert(Begin % ObjectAlignment == 0 && "misaligned page");
  size_t Granules = Size / ObjectAlignment;
  if (TrackTemp) {
    TempWords = std::vector<std::atomic<uint64_t>>(
        (Granules + GranulesPerTempWord - 1) / GranulesPerTempWord);
    for (std::atomic<uint64_t> &W : TempWords)
      W.store(0, std::memory_order_relaxed);
  }
  if (TrackSites) {
    SiteTable = std::vector<std::atomic<SiteId>>(Granules);
    for (std::atomic<SiteId> &S : SiteTable)
      S.store(UnknownSiteId, std::memory_order_relaxed);
  }
}

uintptr_t Page::allocate(size_t Bytes) {
  Bytes = alignUp(Bytes, ObjectAlignment);
  uintptr_t Cur = Top.load(std::memory_order_relaxed);
  for (;;) {
    if (Cur + Bytes > end())
      return 0;
    if (Top.compare_exchange_weak(Cur, Cur + Bytes,
                                  std::memory_order_relaxed))
      return Cur;
  }
}

bool Page::undoAllocate(uintptr_t Addr, size_t Bytes) {
  Bytes = alignUp(Bytes, ObjectAlignment);
  uintptr_t Expected = Addr + Bytes;
  return Top.compare_exchange_strong(Expected, Addr,
                                     std::memory_order_relaxed);
}

void Page::clearMarkState() {
  LiveMap.clearAll();
  HotMap.clearAll();
  LiveBytesCtr.store(0, std::memory_order_relaxed);
  HotBytesCtr.store(0, std::memory_order_relaxed);
  LiveObjectsCtr.store(0, std::memory_order_relaxed);
}

bool Page::markLive(uintptr_t Addr, size_t Bytes) {
  if (!LiveMap.parSet(granuleOf(Addr)))
    return false;
  LiveBytesCtr.fetch_add(alignUp(Bytes, ObjectAlignment),
                         std::memory_order_relaxed);
  LiveObjectsCtr.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool Page::flagHot(uintptr_t Addr, size_t Bytes) {
  if (!HotMap.parSet(granuleOf(Addr)))
    return false;
  HotBytesCtr.fetch_add(alignUp(Bytes, ObjectAlignment),
                        std::memory_order_relaxed);
  if (!TempWords.empty())
    bumpTemperature(Addr);
  return true;
}

void Page::transferHot(uintptr_t Addr, size_t Bytes) {
  if (!HotMap.parSet(granuleOf(Addr)))
    return;
  HotBytesCtr.fetch_add(alignUp(Bytes, ObjectAlignment),
                        std::memory_order_relaxed);
}

unsigned Page::temperatureOf(uintptr_t Addr) const {
  if (TempWords.empty())
    return 0;
  return static_cast<unsigned>(tempNibble(granuleOf(Addr)) & 3);
}

unsigned Page::coldStreakOf(uintptr_t Addr) const {
  if (TempWords.empty())
    return 0;
  return static_cast<unsigned>((tempNibble(granuleOf(Addr)) >> 2) & 3);
}

void Page::bumpTemperature(uintptr_t Addr) {
  size_t G = granuleOf(Addr);
  std::atomic<uint64_t> &W = TempWords[G / GranulesPerTempWord];
  unsigned Shift = (G % GranulesPerTempWord) * TempNibbleBits;
  uint64_t Cur = W.load(std::memory_order_relaxed);
  for (;;) {
    uint64_t Temp = (Cur >> Shift) & 3;
    uint64_t NewTemp = Temp < MaxTemperature ? Temp + 1 : Temp;
    // New value also clears the streak bits: a touch interrupts any
    // cold streak.
    uint64_t Next =
        (Cur & ~(uint64_t(0xF) << Shift)) | (NewTemp << Shift);
    if (Next == Cur)
      return;
    if (W.compare_exchange_weak(Cur, Next, std::memory_order_relaxed))
      return;
  }
}

void Page::seedTemperature(uintptr_t Addr, unsigned Temp, unsigned Streak) {
  if (TempWords.empty())
    return;
  size_t G = granuleOf(Addr);
  std::atomic<uint64_t> &W = TempWords[G / GranulesPerTempWord];
  unsigned Shift = (G % GranulesPerTempWord) * TempNibbleBits;
  uint64_t Nibble =
      (uint64_t(Temp & 3) | (uint64_t(Streak & 3) << 2)) << Shift;
  // The destination granule's nibble is still zero (fresh target page,
  // and only the forwarding winner gets here), so OR suffices and stays
  // atomic against writers of neighbouring granules.
  W.fetch_or(Nibble, std::memory_order_relaxed);
}

void Page::ageTemperature() {
  if (TempWords.empty())
    return;
  // Exclusive walk (pre-STW1: mark is inactive, no RelocSource pages
  // exist), but nibble words stay atomic for TSan cleanliness. A granule
  // ages when it was live in the LAST cycle OR already carries a nonzero
  // nibble: relocated-in copies are seeded after marking ended, so they
  // are not yet in this page's livemap — gating on the livemap alone
  // would freeze survivors that move every cycle at their seeded
  // temperature forever, and none would ever prove cold. Dead leftovers
  // (nonzero nibble, never marked again) just decay toward a saturated
  // cold streak; their granules are never reallocated (bump-only pages),
  // so the stale nibbles are unobservable.
  // SWAR rewrite (INTERNALS §14): one pass over each 64-bit nibble word
  // ages all 16 granules at once via swarAgeTempNibbles, whose per-nibble
  // semantics equal the old scalar loop bit-for-bit (scalarAgeTempNibble
  // in support/Bits.h is that loop, kept as the tested specification).
  // The decay-to-zero-starts-streak-at-1 rule and its rationale live in
  // the kernel's doc comment. Livemap/hotmap bits are pulled 16 at a
  // time from the backing words; bits past Limit are masked off, and
  // nibbles past Limit are zero by construction (granules are only ever
  // bumped/seeded below the bump pointer), so untouched lanes stay 0.
  size_t Limit = used() / ObjectAlignment;
  for (size_t WI = 0; WI * GranulesPerTempWord < Limit; ++WI) {
    std::atomic<uint64_t> &W = TempWords[WI];
    uint64_t Cur = W.load(std::memory_order_relaxed);
    size_t Base = WI * GranulesPerTempWord;
    unsigned Shift = static_cast<unsigned>(Base & 63);
    uint16_t Live16 = static_cast<uint16_t>(
        (LiveMap.word(Base >> 6) >> Shift) & 0xFFFF);
    uint16_t Hot16 = static_cast<uint16_t>(
        (HotMap.word(Base >> 6) >> Shift) & 0xFFFF);
    if (size_t Remain = Limit - Base; Remain < GranulesPerTempWord) {
      uint16_t Mask = static_cast<uint16_t>((1u << Remain) - 1);
      Live16 &= Mask;
      Hot16 &= Mask;
    }
    if (Cur == 0 && Live16 == 0)
      continue; // nothing to age, nothing live here
    uint64_t Next = swarAgeTempNibbles(Cur, Live16, Hot16);
    if (Next != Cur)
      W.store(Next, std::memory_order_relaxed);
  }
}

void Page::accumulateTempTierBytes(unsigned ProvenStreak) {
  for (uint64_t &B : TempTierBytes)
    B = 0;
  ProvenColdBytes = 0;
  if (TempWords.empty())
    return;
  forEachLiveObject([this, ProvenStreak](uintptr_t Addr) {
    ObjectView V(Addr);
    uint64_t Bytes = alignUp(V.sizeBytes(), ObjectAlignment);
    unsigned Temp = temperatureOf(Addr);
    TempTierBytes[Temp] += Bytes;
    if (Temp == 0 && coldStreakOf(Addr) >= ProvenStreak)
      ProvenColdBytes += Bytes;
  });
}

void Page::forEachLiveObject(
    const std::function<void(uintptr_t)> &Fn) const {
  // Word-at-a-time walk: load each 64-granule livemap word once and
  // extract set bits with ctz + clear-lowest, instead of re-walking the
  // map per bit (findNext restarted from scratch on every object). The
  // pre-STW1 survival walk, tier accumulation and EC-feeding passes all
  // funnel through here (INTERNALS §14).
  size_t Limit = used() / ObjectAlignment;
  size_t NumWords = (Limit + 63) / 64;
  for (size_t WI = 0; WI < NumWords; ++WI) {
    uint64_t W = LiveMap.word(WI);
    if (WI == NumWords - 1 && (Limit & 63) != 0)
      W &= (uint64_t(1) << (Limit & 63)) - 1; // drop bits past the bump
    while (W != 0) {
      size_t Idx = (WI << 6) + ctz64(W);
      Fn(BeginAddr + Idx * ObjectAlignment);
      W &= W - 1;
    }
  }
}

void Page::beginEvacuation() {
  assert(state() == PageState::Active && "page already evacuating");
  Fwd = std::make_unique<ForwardingTable>(liveObjects());
  RelocOutGcCtr.store(0, std::memory_order_relaxed);
  RelocOutMutCtr.store(0, std::memory_order_relaxed);
  setState(PageState::RelocSource);
}
