//===- heap/Page.h - Heap pages with livemap and hotmap --------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A heap page: bump-pointer allocated, carrying the per-page metadata the
/// collector needs — the ZGC livemap (live bits + live bytes/objects) and
/// the HCSGC hotmap (§3.1.2: "Per-object hotness metadata is recorded in a
/// bitmap called hotmap, adapted from the livemap"), the allocation
/// sequence number used to exclude pages allocated after mark start from
/// EC selection, and the forwarding table while the page is being
/// evacuated.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_HEAP_PAGE_H
#define HCSGC_HEAP_PAGE_H

#include "heap/Forwarding.h"
#include "heap/Geometry.h"
#include "heap/ObjectModel.h"
#include "support/BitMap.h"

#include <atomic>
#include <functional>
#include <memory>

namespace hcsgc {

/// Lifecycle states of a page.
enum class PageState : uint32_t {
  /// Normal page holding objects.
  Active,
  /// Selected into the evacuation candidate set; objects are being (or
  /// waiting to be) relocated out, forwarding table installed.
  RelocSource,
  /// Fully evacuated. Metadata and forwarding stay alive until all stale
  /// pointers into the page have been remapped (end of the next M/R);
  /// the address range is not reused before then (see DESIGN.md on the
  /// absence of ZGC's multi-mapping).
  Quarantined,
};

/// One heap page of any size class.
class Page {
public:
  Page(uintptr_t Begin, size_t Size, PageSizeClass Cls, uint64_t AllocSeq);

  uintptr_t begin() const { return BeginAddr; }
  uintptr_t end() const { return BeginAddr + PageBytes; }
  size_t size() const { return PageBytes; }
  PageSizeClass sizeClass() const { return Cls; }
  uint64_t allocSeq() const { return AllocSeq; }
  bool contains(uintptr_t Addr) const {
    return Addr >= BeginAddr && Addr < end();
  }

  // --- Allocation -------------------------------------------------------

  /// Bump-allocates \p Bytes (8-byte aligned).
  /// \returns the object address, or 0 if the page is full. Thread-safe
  /// (medium pages are shared between mutators).
  uintptr_t allocate(size_t Bytes);

  /// Undoes the most recent allocation if \p Addr + \p Bytes is still the
  /// bump pointer. Used by relocation losers to retract their private
  /// copy. Only valid when the caller is the page's sole allocator.
  bool undoAllocate(uintptr_t Addr, size_t Bytes);

  /// \returns bytes allocated so far.
  size_t used() const {
    return Top.load(std::memory_order_relaxed) - BeginAddr;
  }
  size_t remaining() const { return PageBytes - used(); }

  // --- State ------------------------------------------------------------

  PageState state() const {
    return static_cast<PageState>(State.load(std::memory_order_acquire));
  }
  void setState(PageState S) {
    State.store(static_cast<uint32_t>(S), std::memory_order_release);
  }

  /// \returns true if objects on this page are subject to relocation and
  /// stale pointers into it must go through the forwarding table.
  bool isRelocSourceOrQuarantined() const {
    return state() != PageState::Active;
  }

  // --- Marking metadata ---------------------------------------------------

  /// Resets livemap, hotmap and the byte/object counters. Called at the
  /// beginning of each mark phase ("hotmap is reset at the beginning of
  /// each M/R phase; this renders all objects cold effectively", §3.1.2).
  void clearMarkState();

  /// Atomically marks the object at \p Addr (of \p Bytes) live.
  /// \returns true if this call transitioned the object to live.
  bool markLive(uintptr_t Addr, size_t Bytes);

  /// Atomically flags the object at \p Addr (of \p Bytes) hot.
  /// \returns true if this call transitioned the object to hot.
  bool flagHot(uintptr_t Addr, size_t Bytes);

  bool isLive(uintptr_t Addr) const {
    return LiveMap.test(granuleOf(Addr));
  }
  bool isHot(uintptr_t Addr) const { return HotMap.test(granuleOf(Addr)); }

  size_t liveBytes() const {
    return LiveBytesCtr.load(std::memory_order_relaxed);
  }
  size_t hotBytes() const {
    return HotBytesCtr.load(std::memory_order_relaxed);
  }
  uint32_t liveObjects() const {
    return LiveObjectsCtr.load(std::memory_order_relaxed);
  }
  size_t coldBytes() const {
    size_t L = liveBytes(), H = hotBytes();
    return L > H ? L - H : 0;
  }
  double liveRatio() const {
    return static_cast<double>(liveBytes()) /
           static_cast<double>(PageBytes);
  }

  /// Invokes \p Fn for every live object start address, in address order.
  void forEachLiveObject(const std::function<void(uintptr_t)> &Fn) const;

  // --- Relocation -------------------------------------------------------

  /// Installs a forwarding table sized for this page's live population and
  /// transitions the page to RelocSource. Called during EC selection.
  void beginEvacuation();

  ForwardingTable *forwarding() const { return Fwd.get(); }

  /// Drops the forwarding table (page retirement).
  void retireForwarding() { Fwd.reset(); }

  /// Attributes \p Bytes relocated OUT of this page to the acting thread
  /// kind. Called by the relocation winner; reset when the page enters a
  /// relocation set. The heap snapshots read these to show whether a
  /// RelocSource page was drained by GC threads, excavated by mutators,
  /// or is still fully deferred (LAZYRELOCATE window).
  void noteRelocatedFrom(bool ByGcThread, size_t Bytes) {
    (ByGcThread ? RelocOutGcCtr : RelocOutMutCtr)
        .fetch_add(Bytes, std::memory_order_relaxed);
  }
  uint64_t relocOutBytesGc() const {
    return RelocOutGcCtr.load(std::memory_order_relaxed);
  }
  uint64_t relocOutBytesMutator() const {
    return RelocOutMutCtr.load(std::memory_order_relaxed);
  }

  /// Cycle in which this page was quarantined (set by the driver).
  uint64_t quarantineCycle() const { return QuarantineCycle; }
  void setQuarantineCycle(uint64_t C) { QuarantineCycle = C; }

  // --- Allocation-target pinning ----------------------------------------

  /// Marks the page as an in-use bump-allocation target (mutator small or
  /// medium TLAB, or relocation target). A pinned page must never be
  /// reclaimed through the EC dead-page fast path: its liveBytes() can
  /// read 0 while an allocator is about to bump into it. STW1's
  /// resetAllocTargets unpins every page, so by EC
  /// selection only pages with allocSeq >= the current cycle (which the
  /// selector already excludes) can be pinned — the flag turns that
  /// schedule argument into a checkable invariant.
  void pinAsTarget() {
    PinnedAsTarget.store(true, std::memory_order_release);
  }
  void unpinAsTarget() {
    PinnedAsTarget.store(false, std::memory_order_release);
  }
  bool isPinnedAsTarget() const {
    return PinnedAsTarget.load(std::memory_order_acquire);
  }

  uint32_t offsetOf(uintptr_t Addr) const {
    assert(contains(Addr) && "address not on this page");
    return static_cast<uint32_t>(Addr - BeginAddr);
  }

  // --- Allocator linkage (owned by PageAllocator) -----------------------

  /// Index of the slot this page occupies in its shard's active-page
  /// registry; set on install (lock-free), cleared on quarantine/release
  /// under the owning shard's lock. Only the PageAllocator touches it.
  static constexpr uint32_t NoRegistryIndex = UINT32_MAX;
  uint32_t registryIndex() const { return RegistryIndex; }
  void setRegistryIndex(uint32_t I) { RegistryIndex = I; }

  /// Next page in the owning shard's intrusive active-page list. Pushed
  /// lock-free on install (Treiber-style head CAS on the shard), unlinked
  /// only under the shard lock; atomic so the lock-free pushers and the
  /// locked unlinkers stay race-free (ordering is carried by the shard's
  /// list-head CAS, so relaxed accesses suffice).
  Page *nextOwned() const {
    return NextOwned.load(std::memory_order_relaxed);
  }
  void setNextOwned(Page *P) {
    NextOwned.store(P, std::memory_order_relaxed);
  }

private:
  size_t granuleOf(uintptr_t Addr) const {
    assert(contains(Addr) && "address not on this page");
    return (Addr - BeginAddr) / ObjectAlignment;
  }

  uintptr_t BeginAddr;
  size_t PageBytes;
  PageSizeClass Cls;
  uint64_t AllocSeq;
  std::atomic<uintptr_t> Top;
  std::atomic<uint32_t> State{static_cast<uint32_t>(PageState::Active)};

  BitMap LiveMap;
  BitMap HotMap;
  std::atomic<size_t> LiveBytesCtr{0};
  std::atomic<size_t> HotBytesCtr{0};
  std::atomic<uint32_t> LiveObjectsCtr{0};

  std::unique_ptr<ForwardingTable> Fwd;
  std::atomic<uint64_t> RelocOutGcCtr{0};
  std::atomic<uint64_t> RelocOutMutCtr{0};
  uint64_t QuarantineCycle = 0;
  std::atomic<bool> PinnedAsTarget{false};
  uint32_t RegistryIndex = NoRegistryIndex;
  std::atomic<Page *> NextOwned{nullptr};
};

} // namespace hcsgc

#endif // HCSGC_HEAP_PAGE_H
