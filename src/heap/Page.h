//===- heap/Page.h - Heap pages with livemap and hotmap --------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A heap page: bump-pointer allocated, carrying the per-page metadata the
/// collector needs — the ZGC livemap (live bits + live bytes/objects) and
/// the HCSGC hotmap (§3.1.2: "Per-object hotness metadata is recorded in a
/// bitmap called hotmap, adapted from the livemap"), the allocation
/// sequence number used to exclude pages allocated after mark start from
/// EC selection, and the forwarding table while the page is being
/// evacuated.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_HEAP_PAGE_H
#define HCSGC_HEAP_PAGE_H

#include "heap/Forwarding.h"
#include "heap/Geometry.h"
#include "heap/ObjectModel.h"
#include "support/BitMap.h"
#include "support/Bits.h"

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

namespace hcsgc {

/// Allocation-site identifier carried through the allocation path when
/// SiteProfiling is on (INTERNALS §13). 0 is the reserved "unknown"
/// site: untagged call sites and untracked pages both read as 0, so the
/// default-argument plumbing costs nothing. IDs are interned by
/// SiteRegistry (src/gc/SiteProfile.h); the heap layer only stores and
/// moves the raw value.
using SiteId = uint16_t;
constexpr SiteId UnknownSiteId = 0;

/// Destination tier a relocation-target page was allocated for
/// (TEMPERATURE mode splits ColdPage's §3.3 hot/cold destination pair
/// into hot/warm/cold). Pages that never served as a relocation target
/// stay None. The cold tier is the reclaimable-RSS population: its bytes
/// are what `madvise(MADV_COLD)` offers back to the OS.
enum class PageTier : uint8_t {
  None = 0,
  Hot,
  Warm,
  Cold,
};

/// Lifecycle states of a page.
enum class PageState : uint32_t {
  /// Normal page holding objects.
  Active,
  /// Selected into the evacuation candidate set; objects are being (or
  /// waiting to be) relocated out, forwarding table installed.
  RelocSource,
  /// Fully evacuated. Metadata and forwarding stay alive until all stale
  /// pointers into the page have been remapped (end of the next M/R);
  /// the address range is not reused before then (see DESIGN.md on the
  /// absence of ZGC's multi-mapping).
  Quarantined,
};

/// One heap page of any size class.
class Page {
public:
  /// \p TrackTemp arms the per-object temperature plane (TEMPERATURE
  /// knob): a 4-bit nibble per granule beside the hotmap — 2-bit
  /// saturating temperature plus a 2-bit cold-streak counter.
  /// \p TrackSites arms the allocation-site side table (SITEPROFILING
  /// knob): one SiteId per granule, stamped at the object-start granule
  /// by the allocator and carried across relocation by the winner.
  Page(uintptr_t Begin, size_t Size, PageSizeClass Cls, uint64_t AllocSeq,
       bool TrackTemp = false, bool TrackSites = false);

  uintptr_t begin() const { return BeginAddr; }
  uintptr_t end() const { return BeginAddr + PageBytes; }
  size_t size() const { return PageBytes; }
  PageSizeClass sizeClass() const { return Cls; }
  uint64_t allocSeq() const { return AllocSeq; }
  bool contains(uintptr_t Addr) const {
    return Addr >= BeginAddr && Addr < end();
  }

  // --- Allocation -------------------------------------------------------

  /// Bump-allocates \p Bytes (8-byte aligned).
  /// \returns the object address, or 0 if the page is full. Thread-safe
  /// (medium pages are shared between mutators).
  uintptr_t allocate(size_t Bytes);

  /// Undoes the most recent allocation if \p Addr + \p Bytes is still the
  /// bump pointer. Used by relocation losers to retract their private
  /// copy. Only valid when the caller is the page's sole allocator.
  bool undoAllocate(uintptr_t Addr, size_t Bytes);

  /// \returns bytes allocated so far.
  size_t used() const {
    return Top.load(std::memory_order_relaxed) - BeginAddr;
  }
  size_t remaining() const { return PageBytes - used(); }

  // --- State ------------------------------------------------------------

  PageState state() const {
    return static_cast<PageState>(State.load(std::memory_order_acquire));
  }
  void setState(PageState S) {
    State.store(static_cast<uint32_t>(S), std::memory_order_release);
  }

  /// \returns true if objects on this page are subject to relocation and
  /// stale pointers into it must go through the forwarding table.
  bool isRelocSourceOrQuarantined() const {
    return state() != PageState::Active;
  }

  // --- Marking metadata ---------------------------------------------------

  /// Resets livemap, hotmap and the byte/object counters. Called at the
  /// beginning of each mark phase ("hotmap is reset at the beginning of
  /// each M/R phase; this renders all objects cold effectively", §3.1.2).
  void clearMarkState();

  /// Atomically marks the object at \p Addr (of \p Bytes) live.
  /// \returns true if this call transitioned the object to live.
  bool markLive(uintptr_t Addr, size_t Bytes);

  /// Atomically flags the object at \p Addr (of \p Bytes) hot.
  /// \returns true if this call transitioned the object to hot.
  bool flagHot(uintptr_t Addr, size_t Bytes);

  /// Sets the hotmap bit for a relocated-in copy whose SOURCE was hot
  /// this cycle, without bumping the temperature (the seed already
  /// carries the bumped value). Keeps the aging cadence intact across a
  /// move: the next aging walk treats the copy as touched instead of
  /// decaying it. TEMPERATURE mode only.
  void transferHot(uintptr_t Addr, size_t Bytes);

  bool isLive(uintptr_t Addr) const {
    return LiveMap.test(granuleOf(Addr));
  }
  bool isHot(uintptr_t Addr) const { return HotMap.test(granuleOf(Addr)); }

  /// Hints the livemap word covering \p Addr into cache (write intent)
  /// ahead of the markLive CAS. Issued by the marker while it still has
  /// the object-header read in flight, so the two misses overlap
  /// (INTERNALS §14).
  void prefetchMarkState(uintptr_t Addr) const {
    prefetchWrite(LiveMap.wordAddr(granuleOf(Addr)));
  }

  size_t liveBytes() const {
    return LiveBytesCtr.load(std::memory_order_relaxed);
  }
  size_t hotBytes() const {
    return HotBytesCtr.load(std::memory_order_relaxed);
  }
  uint32_t liveObjects() const {
    return LiveObjectsCtr.load(std::memory_order_relaxed);
  }
  size_t coldBytes() const {
    size_t L = liveBytes(), H = hotBytes();
    return L > H ? L - H : 0;
  }
  double liveRatio() const {
    return static_cast<double>(liveBytes()) /
           static_cast<double>(PageBytes);
  }

  /// Invokes \p Fn for every live object start address, in address order.
  void forEachLiveObject(const std::function<void(uintptr_t)> &Fn) const;

  // --- Temperature (TEMPERATURE knob, INTERNALS §13) --------------------

  /// Saturation bound of the 2-bit per-object temperature counter.
  static constexpr unsigned MaxTemperature = 3;
  /// Number of temperature tiers (0..MaxTemperature).
  static constexpr unsigned TempTiers = MaxTemperature + 1;
  /// Saturation bound of the 2-bit cold-streak counter.
  static constexpr unsigned MaxColdStreak = 3;

  /// \returns true when this page carries the temperature plane.
  bool tracksTemperature() const { return !TempWords.empty(); }

  /// Current temperature of the object at \p Addr (0 when untracked).
  unsigned temperatureOf(uintptr_t Addr) const;

  /// Consecutive aging walks the object at \p Addr has spent at
  /// temperature 0 without being touched (saturating; 0 when untracked).
  unsigned coldStreakOf(uintptr_t Addr) const;

  /// Transfers a (temperature, streak) pair onto the object at \p Addr.
  /// Used by the relocation winner to seed the destination copy from the
  /// source object; must only be called after winning the forwarding CAS
  /// (losers undoAllocate their granules, which must stay zeroed).
  void seedTemperature(uintptr_t Addr, unsigned Temp, unsigned Streak);

  /// Ages the temperature plane by one cycle using the previous cycle's
  /// livemap/hotmap: touched objects keep their (already bumped)
  /// temperature, warm objects decay one step (a decay that reaches
  /// temperature 0 starts the cold streak at 1 — the decaying cycle was
  /// itself untouched, and the nibble must stay nonzero to remain
  /// visible under churn), temperature-0 objects accrue cold streak.
  /// Granules with a nonzero nibble age even when absent from the
  /// livemap — relocated-in copies are seeded after marking ended, and
  /// they must keep decaying on schedule. Runs in the driver's pre-STW1
  /// reset walk, BEFORE clearMarkState (it needs the maps intact).
  void ageTemperature();

  /// Coordinator-only: recomputes the per-tier live-byte totals from the
  /// (terminated) livemap. Valid between mark termination and the next
  /// clearMarkState; sum over tiers equals liveBytes(). \p ProvenStreak
  /// is the cold streak at which a temperature-0 object counts as proven
  /// cold (feeds provenColdBytes()).
  void accumulateTempTierBytes(unsigned ProvenStreak = MaxColdStreak);

  /// Per-tier live bytes from the last accumulateTempTierBytes() pass.
  uint64_t tempTierBytes(unsigned Tier) const {
    assert(Tier < TempTiers);
    return TempTierBytes[Tier];
  }

  /// Live bytes whose objects sat at temperature 0 with a cold streak of
  /// at least the ProvenStreak passed to the last accumulate pass. When
  /// this equals liveBytes() the whole page has proven cold and the
  /// driver's reclaim pass adopts it into the cold tier (all-cold pages
  /// keep WLB == live bytes, so EC never re-selects them to route their
  /// objects to cold destinations — adoption is how they join the
  /// reclaimable-RSS population).
  uint64_t provenColdBytes() const { return ProvenColdBytes; }

  /// Destination tier this page was allocated for (relocation targets
  /// only; None otherwise). Stamped by the allocator's notePageTier.
  PageTier tier() const {
    return static_cast<PageTier>(TierTag.load(std::memory_order_relaxed));
  }
  void setTier(PageTier T) {
    TierTag.store(static_cast<uint8_t>(T), std::memory_order_relaxed);
  }

  /// One-shot madvise bookkeeping for the cold-reclaim pass: true once
  /// the driver has advised (or simulated advising) this page.
  bool madviseDone() const {
    return MadviseDone.load(std::memory_order_relaxed);
  }
  void setMadviseDone() {
    MadviseDone.store(true, std::memory_order_relaxed);
  }

  // --- Allocation sites (SITEPROFILING knob, INTERNALS §13) -------------

  /// \returns true when this page carries the allocation-site side table.
  bool tracksSites() const { return !SiteTable.empty(); }

  /// Stamps \p Site at the object-start granule of \p Addr. Called by
  /// the allocating mutator right after the bump (the granule belongs
  /// exclusively to the allocator until the object is published) and by
  /// the relocation winner seeding the destination copy — both exclusive
  /// writers; the store stays atomic only so the concurrent profile
  /// walk's reads are TSan-clean. No-op on untracked pages.
  void stampSite(uintptr_t Addr, SiteId Site) {
    if (!SiteTable.empty())
      SiteTable[granuleOf(Addr)].store(Site, std::memory_order_relaxed);
  }

  /// Allocation site of the object at \p Addr (UnknownSiteId when the
  /// page is untracked or the object was never tagged).
  SiteId siteOf(uintptr_t Addr) const {
    if (SiteTable.empty())
      return UnknownSiteId;
    return SiteTable[granuleOf(Addr)].load(std::memory_order_relaxed);
  }

  // --- Relocation -------------------------------------------------------

  /// Installs a forwarding table sized for this page's live population and
  /// transitions the page to RelocSource. Called during EC selection.
  void beginEvacuation();

  ForwardingTable *forwarding() const { return Fwd.get(); }

  /// Drops the forwarding table (page retirement).
  void retireForwarding() { Fwd.reset(); }

  /// Attributes \p Bytes relocated OUT of this page to the acting thread
  /// kind. Called by the relocation winner; reset when the page enters a
  /// relocation set. The heap snapshots read these to show whether a
  /// RelocSource page was drained by GC threads, excavated by mutators,
  /// or is still fully deferred (LAZYRELOCATE window).
  void noteRelocatedFrom(bool ByGcThread, size_t Bytes) {
    (ByGcThread ? RelocOutGcCtr : RelocOutMutCtr)
        .fetch_add(Bytes, std::memory_order_relaxed);
  }
  uint64_t relocOutBytesGc() const {
    return RelocOutGcCtr.load(std::memory_order_relaxed);
  }
  uint64_t relocOutBytesMutator() const {
    return RelocOutMutCtr.load(std::memory_order_relaxed);
  }

  /// Cycle in which this page was quarantined (set by the driver).
  uint64_t quarantineCycle() const { return QuarantineCycle; }
  void setQuarantineCycle(uint64_t C) { QuarantineCycle = C; }

  // --- Allocation-target pinning ----------------------------------------

  /// Marks the page as an in-use bump-allocation target (mutator small or
  /// medium TLAB, relocation target, or the persistent pretenure TLAB).
  /// A pinned page must never be reclaimed through the EC dead-page fast
  /// path (its liveBytes() can read 0 while an allocator is about to bump
  /// into it) nor become a relocation source. STW1's resetAllocTargets
  /// unpins everything except the pretenure TLAB, which fills across
  /// cycles; the EC selector therefore skips pinned pages outright and
  /// records the pin in its audit.
  void pinAsTarget() {
    PinnedAsTarget.store(true, std::memory_order_release);
  }
  void unpinAsTarget() {
    PinnedAsTarget.store(false, std::memory_order_release);
  }
  bool isPinnedAsTarget() const {
    return PinnedAsTarget.load(std::memory_order_acquire);
  }

  uint32_t offsetOf(uintptr_t Addr) const {
    assert(contains(Addr) && "address not on this page");
    return static_cast<uint32_t>(Addr - BeginAddr);
  }

  // --- Allocator linkage (owned by PageAllocator) -----------------------

  /// Index of the slot this page occupies in its shard's active-page
  /// registry; set on install (lock-free), cleared on quarantine/release
  /// under the owning shard's lock. Only the PageAllocator touches it.
  static constexpr uint32_t NoRegistryIndex = UINT32_MAX;
  uint32_t registryIndex() const { return RegistryIndex; }
  void setRegistryIndex(uint32_t I) { RegistryIndex = I; }

  /// Next page in the owning shard's intrusive active-page list. Pushed
  /// lock-free on install (Treiber-style head CAS on the shard), unlinked
  /// only under the shard lock; atomic so the lock-free pushers and the
  /// locked unlinkers stay race-free (ordering is carried by the shard's
  /// list-head CAS, so relaxed accesses suffice).
  Page *nextOwned() const {
    return NextOwned.load(std::memory_order_relaxed);
  }
  void setNextOwned(Page *P) {
    NextOwned.store(P, std::memory_order_relaxed);
  }

private:
  size_t granuleOf(uintptr_t Addr) const {
    assert(contains(Addr) && "address not on this page");
    return (Addr - BeginAddr) / ObjectAlignment;
  }

  /// Temperature nibbles are packed 16 per 64-bit word: bits [1:0] hold
  /// the saturating temperature, bits [3:2] the cold streak.
  static constexpr size_t GranulesPerTempWord = 16;
  static constexpr unsigned TempNibbleBits = 4;

  uint64_t tempNibble(size_t Granule) const {
    const std::atomic<uint64_t> &W = TempWords[Granule / GranulesPerTempWord];
    unsigned Shift =
        (Granule % GranulesPerTempWord) * TempNibbleBits;
    return (W.load(std::memory_order_relaxed) >> Shift) & 0xF;
  }

  /// Saturating temperature bump for the object at \p Addr; resets its
  /// cold streak. Called under flagHot's once-per-cycle gate, but CAS'd
  /// because 16 granules share a nibble word.
  void bumpTemperature(uintptr_t Addr);

  uintptr_t BeginAddr;
  size_t PageBytes;
  PageSizeClass Cls;
  uint64_t AllocSeq;
  std::atomic<uintptr_t> Top;
  std::atomic<uint32_t> State{static_cast<uint32_t>(PageState::Active)};

  BitMap LiveMap;
  BitMap HotMap;
  std::atomic<size_t> LiveBytesCtr{0};
  std::atomic<size_t> HotBytesCtr{0};
  std::atomic<uint32_t> LiveObjectsCtr{0};

  /// Packed temperature plane (empty unless TrackTemp). All accesses go
  /// through atomics so racing flagHot callers on neighbouring granules
  /// stay TSan-clean.
  std::vector<std::atomic<uint64_t>> TempWords;
  /// Coordinator-written per-tier live-byte totals (plain: written only
  /// between mark termination and EC selection, read by snapshots/EC in
  /// the same single-threaded window).
  uint64_t TempTierBytes[TempTiers] = {0, 0, 0, 0};
  uint64_t ProvenColdBytes = 0;
  /// Per-granule allocation-site IDs (empty unless TrackSites). Stamped
  /// only at object-start granules; NOT cleared by clearMarkState — a
  /// site tag, like the temperature nibble, is allocation metadata that
  /// outlives the mark cycle (pages are bump-only, granules are never
  /// reallocated in place).
  std::vector<std::atomic<SiteId>> SiteTable;
  std::atomic<uint8_t> TierTag{static_cast<uint8_t>(PageTier::None)};
  std::atomic<bool> MadviseDone{false};

  std::unique_ptr<ForwardingTable> Fwd;
  std::atomic<uint64_t> RelocOutGcCtr{0};
  std::atomic<uint64_t> RelocOutMutCtr{0};
  uint64_t QuarantineCycle = 0;
  std::atomic<bool> PinnedAsTarget{false};
  uint32_t RegistryIndex = NoRegistryIndex;
  std::atomic<Page *> NextOwned{nullptr};
};

} // namespace hcsgc

#endif // HCSGC_HEAP_PAGE_H
