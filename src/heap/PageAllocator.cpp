//===- heap/PageAllocator.cpp - Sharded heap reservation and page pool ------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Locking discipline: every path holds at most one shard lock at a time,
// except takeRunAcrossShards, which locks all general shards in ascending
// index order — together that makes the lock graph acyclic. releasePage
// removes ownership under the begin-unit shard's lock, then returns the
// unit range shard by shard without nesting.
//
//===----------------------------------------------------------------------===//

#include "heap/PageAllocator.h"

#include "inject/FaultInject.h"
#include "observe/Metrics.h"
#include "support/Compiler.h"

#include <algorithm>
#include <cstring>
#include <thread>

#include <sys/mman.h>

using namespace hcsgc;

namespace {
/// Process-wide thread ordinal source for round-robin home-shard
/// assignment; a thread keeps its ordinal for life, so its home shard is
/// stable for a given shard count.
std::atomic<unsigned> ThreadOrdinalSource{0};

unsigned threadOrdinal() {
  thread_local unsigned Ordinal =
      ThreadOrdinalSource.fetch_add(1, std::memory_order_relaxed);
  return Ordinal;
}
} // namespace

PageAllocator::PageAllocator(const HeapGeometry &Geo, size_t MaxHeapBytes,
                             size_t ReservedBytes, size_t RelocReserveBytes,
                             unsigned RequestedShards, unsigned CacheBatch)
    : Geo(Geo), MaxHeap(alignUp(MaxHeapBytes, Geo.SmallPageSize)),
      Reserved(ReservedBytes ? alignUp(ReservedBytes, Geo.SmallPageSize)
                             : 3 * MaxHeap),
      RelocReserve(alignUp(RelocReserveBytes, Geo.SmallPageSize)),
      CacheBatch(std::max(1u, CacheBatch)) {
  if (!Geo.valid())
    fatalError("invalid heap geometry");
  if (Reserved < MaxHeap)
    fatalError("reservation smaller than max heap");

  // The relocation reserve rides on top of the configured reservation so
  // tightening ReservedBytes squeezes the general pool, never the
  // collector's progress guarantee.
  size_t TotalBytes = Reserved + RelocReserve;
  void *Mem = mmap(nullptr, TotalBytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (Mem == MAP_FAILED)
    fatalError("failed to reserve heap address space");
  Base = reinterpret_cast<uintptr_t>(Mem);
  Table = std::make_unique<PageTable>(Base, TotalBytes, Geo.SmallPageSize);
  GeneralUnits = Reserved / Geo.SmallPageSize;

  // Clamp the shard count so every shard spans at least one medium page:
  // partitioning below that granularity would route most medium requests
  // through the cross-shard fallback, defeating the striping. Tiny pools
  // (unit tests with a handful of units) collapse to a single shard and
  // behave exactly like the unsharded allocator.
  size_t MediumUnits = Geo.MediumPageSize / Geo.SmallPageSize;
  size_t MaxShards =
      std::max<size_t>(1, GeneralUnits / std::max<size_t>(MediumUnits, 1));
  unsigned Requested = RequestedShards;
  if (Requested == 0) {
    unsigned HW = std::thread::hardware_concurrency();
    Requested = std::min(HW ? HW : 4u, 8u);
  }
  NumGeneralShards = static_cast<unsigned>(
      std::min<size_t>(std::max(1u, Requested), MaxShards));

  size_t PerShard = GeneralUnits / NumGeneralShards;
  Shards.reserve(NumGeneralShards + 1);
  for (unsigned I = 0; I < NumGeneralShards; ++I) {
    auto S = std::make_unique<Shard>();
    S->BeginUnit = static_cast<size_t>(I) * PerShard;
    S->EndUnit = I + 1 == NumGeneralShards ? GeneralUnits
                                           : S->BeginUnit + PerShard;
    if (S->EndUnit > S->BeginUnit)
      S->Runs[S->BeginUnit] = S->EndUnit - S->BeginUnit;
    Shards.push_back(std::move(S));
  }
  // The relocation reserve is one extra shard past the general pool.
  auto R = std::make_unique<Shard>();
  R->BeginUnit = GeneralUnits;
  R->EndUnit = GeneralUnits + RelocReserve / Geo.SmallPageSize;
  if (R->EndUnit > R->BeginUnit)
    R->Runs[R->BeginUnit] = R->EndUnit - R->BeginUnit;
  Shards.push_back(std::move(R));
}

PageAllocator::~PageAllocator() {
  // Drop the pages (and with them forwarding tables etc.) before the
  // mapping goes away.
  Shards.clear();
  munmap(reinterpret_cast<void *>(Base), Reserved + RelocReserve);
}

PageAllocator::Shard &PageAllocator::shardForUnit(size_t Unit) {
  if (Unit >= GeneralUnits)
    return reserveShard();
  size_t PerShard = GeneralUnits / NumGeneralShards;
  size_t Index = std::min<size_t>(Unit / PerShard, NumGeneralShards - 1);
  return *Shards[Index];
}

unsigned PageAllocator::homeShard() const {
  return threadOrdinal() % NumGeneralShards;
}

void PageAllocator::note(std::atomic<uint64_t> &Stat, Counter *Ctr) {
  Stat.fetch_add(1, std::memory_order_relaxed);
  if (Ctr)
    Ctr->increment();
}

void PageAllocator::bindMetrics(MetricsRegistry &MR) {
  CtrShardLocks = &MR.counter("alloc.shard.lock_acquisitions");
  CtrFallbacks = &MR.counter("alloc.shard.fallback_scans");
  CtrCrossShard = &MR.counter("alloc.shard.cross_shard_takes");
  CtrCacheHits = &MR.counter("alloc.cache.page_hits");
  CtrCacheMisses = &MR.counter("alloc.cache.page_misses");
}

PageAllocator::AllocStats PageAllocator::allocStats() const {
  AllocStats S;
  S.ShardLockAcquisitions = StShardLocks.load(std::memory_order_relaxed);
  S.FallbackScans = StFallbacks.load(std::memory_order_relaxed);
  S.CrossShardTakes = StCrossShard.load(std::memory_order_relaxed);
  S.CacheHits = StCacheHits.load(std::memory_order_relaxed);
  S.CacheMisses = StCacheMisses.load(std::memory_order_relaxed);
  return S;
}

size_t PageAllocator::takeRunLocked(Shard &S, size_t Units) {
  for (auto It = S.Runs.begin(); It != S.Runs.end(); ++It) {
    if (It->second < Units)
      continue;
    size_t Offset = It->first;
    size_t Len = It->second;
    S.Runs.erase(It);
    if (Len > Units)
      S.Runs[Offset + Units] = Len - Units;
    return Offset;
  }
  return SIZE_MAX;
}

void PageAllocator::addRunToMap(std::map<size_t, size_t> &Runs,
                                size_t Offset, size_t Units) {
  auto Next = Runs.lower_bound(Offset);
  // Coalesce with the following run.
  if (Next != Runs.end() && Next->first == Offset + Units) {
    Units += Next->second;
    Next = Runs.erase(Next);
  }
  // Coalesce with the preceding run.
  if (Next != Runs.begin()) {
    auto Prev = std::prev(Next);
    if (Prev->first + Prev->second == Offset) {
      Prev->second += Units;
      return;
    }
  }
  Runs[Offset] = Units;
}

void PageAllocator::removeRangeFromMap(std::map<size_t, size_t> &Runs,
                                       size_t Offset, size_t Units) {
  auto It = Runs.upper_bound(Offset);
  assert(It != Runs.begin() && "range not free");
  --It;
  size_t RunOff = It->first;
  size_t RunLen = It->second;
  assert(RunOff <= Offset && RunOff + RunLen >= Offset + Units &&
         "range straddles allocated units");
  Runs.erase(It);
  if (RunOff < Offset)
    Runs[RunOff] = Offset - RunOff;
  if (RunOff + RunLen > Offset + Units)
    Runs[Offset + Units] = RunOff + RunLen - (Offset + Units);
}

void PageAllocator::refillCacheLocked(Shard &S) {
  size_t Want = CacheBatch;
  while (Want > 0 && !S.Runs.empty()) {
    auto It = S.Runs.begin();
    size_t Offset = It->first;
    size_t Len = It->second;
    size_t Take = std::min(Want, Len);
    S.Runs.erase(It);
    if (Len > Take)
      S.Runs[Offset + Take] = Len - Take;
    // Push in reverse so back() pops lowest-offset first (address-ordered
    // reuse like the unsharded first-fit allocator).
    for (size_t I = Take; I > 0; --I)
      S.CachedUnits.push_back(Offset + I - 1);
    Want -= Take;
  }
}

void PageAllocator::flushCacheLocked(Shard &S) {
  for (size_t Unit : S.CachedUnits)
    addRunToMap(S.Runs, Unit, 1);
  S.CachedUnits.clear();
}

Page *PageAllocator::installPageLocked(Shard &S, size_t Offset,
                                       size_t PageBytes, PageSizeClass Cls,
                                       uint64_t AllocSeq) {
  uintptr_t Begin = Base + Offset * Geo.SmallPageSize;
  // Fresh pages must be zeroed: reference slots of new objects are null
  // by construction.
  std::memset(reinterpret_cast<void *>(Begin), 0, PageBytes);

  auto Owned = std::make_unique<Page>(Begin, PageBytes, Cls, AllocSeq);
  Page *P = Owned.get();
  P->setRegistrySlot(S.Registry.insert(P));
  S.Active.push_back(std::move(Owned));
  Table->install(P, unitsFor(PageBytes));
  return P;
}

Page *PageAllocator::allocateSmallPage(size_t PageBytes,
                                       uint64_t AllocSeq) {
  unsigned Home = homeShard();
  for (unsigned I = 0; I < NumGeneralShards; ++I) {
    if (I == 1)
      note(StFallbacks, CtrFallbacks);
    Shard &S = *Shards[(Home + I) % NumGeneralShards];
    std::lock_guard<std::mutex> G(S.Lock);
    note(StShardLocks, CtrShardLocks);
    if (S.CachedUnits.empty()) {
      refillCacheLocked(S);
      if (S.CachedUnits.empty())
        continue; // this shard is out of units; fall back
      note(StCacheMisses, CtrCacheMisses);
    } else {
      note(StCacheHits, CtrCacheHits);
    }
    size_t Offset = S.CachedUnits.back();
    S.CachedUnits.pop_back();
    return installPageLocked(S, Offset, PageBytes, PageSizeClass::Small,
                             AllocSeq);
  }
  return nullptr;
}

Page *PageAllocator::allocateMultiUnit(size_t Units, size_t PageBytes,
                                       PageSizeClass Cls,
                                       uint64_t AllocSeq) {
  unsigned Home = homeShard();
  for (unsigned I = 0; I < NumGeneralShards; ++I) {
    if (I == 1)
      note(StFallbacks, CtrFallbacks);
    Shard &S = *Shards[(Home + I) % NumGeneralShards];
    std::lock_guard<std::mutex> G(S.Lock);
    note(StShardLocks, CtrShardLocks);
    // Flush the small-page cache first: cached units punch holes in the
    // run map, and carving a multi-unit run around a hole would
    // fragment the shard for good. Multi-unit requests are rare (medium
    // TLAB refills, large objects), so the flush cost is negligible.
    flushCacheLocked(S);
    size_t Offset = takeRunLocked(S, Units);
    if (Offset != SIZE_MAX)
      return installPageLocked(S, Offset, PageBytes, Cls, AllocSeq);
  }
  return takeRunAcrossShards(Units, PageBytes, Cls, AllocSeq);
}

Page *PageAllocator::takeRunAcrossShards(size_t Units, size_t PageBytes,
                                         PageSizeClass Cls,
                                         uint64_t AllocSeq) {
  if (NumGeneralShards < 2)
    return nullptr; // single shard: the per-shard pass was exhaustive

  // Lock every general shard in ascending index order (the only place
  // two shard locks nest, so the order makes deadlock impossible), flush
  // the caches, and search the merged free view. Partitions tile the
  // unit space contiguously, so runs abutting across a boundary form one
  // allocatable window: a request fails here only if it would also have
  // failed under the old single free-run map.
  std::vector<std::unique_lock<std::mutex>> Locks;
  Locks.reserve(NumGeneralShards);
  for (unsigned I = 0; I < NumGeneralShards; ++I) {
    Locks.emplace_back(Shards[I]->Lock);
    note(StShardLocks, CtrShardLocks);
    flushCacheLocked(*Shards[I]);
  }

  // First-fit over the merged, address-ordered run sequence.
  size_t WindowOff = SIZE_MAX, WindowLen = 0, FoundOff = SIZE_MAX;
  for (unsigned I = 0; I < NumGeneralShards && FoundOff == SIZE_MAX; ++I) {
    for (const auto &[Offset, Len] : Shards[I]->Runs) {
      if (WindowOff != SIZE_MAX && WindowOff + WindowLen == Offset) {
        WindowLen += Len;
      } else {
        WindowOff = Offset;
        WindowLen = Len;
      }
      if (WindowLen >= Units) {
        FoundOff = WindowOff;
        break;
      }
    }
  }
  if (FoundOff == SIZE_MAX)
    return nullptr;

  size_t End = FoundOff + Units;
  for (unsigned I = 0; I < NumGeneralShards; ++I) {
    Shard &S = *Shards[I];
    size_t B = std::max(FoundOff, S.BeginUnit);
    size_t E = std::min(End, S.EndUnit);
    if (B < E)
      removeRangeFromMap(S.Runs, B, E - B);
  }
  note(StCrossShard, CtrCrossShard);
  // The page is owned by the shard holding its first unit.
  return installPageLocked(shardForUnit(FoundOff), FoundOff, PageBytes,
                           Cls, AllocSeq);
}

Page *PageAllocator::allocatePage(PageSizeClass Cls, size_t ObjectBytes,
                                  uint64_t AllocSeq, bool Force) {
  size_t PageBytes = Geo.pageSizeFor(Cls, ObjectBytes);
  size_t Units = unitsFor(PageBytes);

  // Reserve the logical heap budget first (CAS loop instead of the old
  // check-under-global-lock); undone on any failure below.
  if (Force) {
    Used.fetch_add(PageBytes, std::memory_order_relaxed);
  } else {
    size_t Cur = Used.load(std::memory_order_relaxed);
    do {
      if (Cur + PageBytes > MaxHeap)
        return nullptr;
    } while (!Used.compare_exchange_weak(Cur, Cur + PageBytes,
                                         std::memory_order_relaxed));
  }

  Page *P = nullptr;
  if (HCSGC_INJECT_FAIL(PageAlloc)) {
    // synthetic address-space exhaustion
  } else if (Units == 1) {
    P = allocateSmallPage(PageBytes, AllocSeq);
  } else {
    P = allocateMultiUnit(Units, PageBytes, Cls, AllocSeq);
  }
  if (!P)
    Used.fetch_sub(PageBytes, std::memory_order_relaxed);
  return P;
}

Page *PageAllocator::allocateReservePage(PageSizeClass Cls,
                                         size_t ObjectBytes,
                                         uint64_t AllocSeq) {
  size_t PageBytes = Geo.pageSizeFor(Cls, ObjectBytes);
  size_t Units = unitsFor(PageBytes);

  Shard &R = reserveShard();
  std::lock_guard<std::mutex> G(R.Lock);
  note(StShardLocks, CtrShardLocks);
  size_t Offset = takeRunLocked(R, Units);
  if (Offset == SIZE_MAX)
    return nullptr;
  ReservePagesUsed.fetch_add(1, std::memory_order_relaxed);
  Used.fetch_add(PageBytes, std::memory_order_relaxed);
  return installPageLocked(R, Offset, PageBytes, Cls, AllocSeq);
}

size_t PageAllocator::relocReserveFreeBytes() const {
  const Shard &R = reserveShard();
  std::lock_guard<std::mutex> G(R.Lock);
  size_t Units = 0;
  for (const auto &[Offset, Len] : R.Runs)
    Units += Len;
  return Units * Geo.SmallPageSize;
}

void PageAllocator::quarantinePage(Page *P) {
  assert(P->state() == PageState::Quarantined &&
         "page must be marked quarantined first");
  size_t Offset = (P->begin() - Base) / Geo.SmallPageSize;
  Shard &S = shardForUnit(Offset);
  std::lock_guard<std::mutex> G(S.Lock);
  auto It = std::find_if(
      S.Active.begin(), S.Active.end(),
      [P](const std::unique_ptr<Page> &Q) { return Q.get() == P; });
  assert(It != S.Active.end() && "quarantining unknown page");
  S.Registry.erase(P->registrySlot());
  P->setRegistrySlot(nullptr);
  S.Quarantined.push_back(std::move(*It));
  S.Active.erase(It);
  Used.fetch_sub(P->size(), std::memory_order_relaxed);
  Quarantined.fetch_add(P->size(), std::memory_order_relaxed);
}

void PageAllocator::releasePage(Page *P) {
  size_t Units = unitsFor(P->size());
  size_t Offset = (P->begin() - Base) / Geo.SmallPageSize;
  {
    Shard &S = shardForUnit(Offset);
    std::lock_guard<std::mutex> G(S.Lock);
    Table->remove(P->begin(), Units);

    auto ReleaseFrom = [&](std::vector<std::unique_ptr<Page>> &Pool,
                           std::atomic<size_t> &Ctr, bool Registered) {
      auto It = std::find_if(
          Pool.begin(), Pool.end(),
          [P](const std::unique_ptr<Page> &Q) { return Q.get() == P; });
      if (It == Pool.end())
        return false;
      if (Registered) {
        S.Registry.erase(P->registrySlot());
        P->setRegistrySlot(nullptr);
      }
      Ctr.fetch_sub(P->size(), std::memory_order_relaxed);
      Pool.erase(It);
      return true;
    };
    if (!ReleaseFrom(S.Quarantined, Quarantined, /*Registered=*/false) &&
        !ReleaseFrom(S.Active, Used, /*Registered=*/true))
      fatalError("releasing unknown page");
  }
  giveRun(Offset, Units);
}

void PageAllocator::giveRun(size_t Offset, size_t Units) {
  // Reserve-region pages go back to the reserve shard: the relocation
  // headroom replenishes itself as quarantined targets retire. A
  // cross-shard run is returned piecewise, one shard lock at a time.
  size_t End = Offset + Units;
  while (Offset < End) {
    Shard &S = shardForUnit(Offset);
    size_t PortionEnd = std::min(End, S.EndUnit);
    std::lock_guard<std::mutex> G(S.Lock);
    // A freed small page goes back onto its shard's cache (bounded):
    // the most recently freed unit is the next one handed out, which
    // keeps the old allocator's immediate address reuse for alloc/free
    // pairs and re-serves cache-warm memory. Multi-unit runs and
    // reserve pages always rejoin the run map, so their coalescing is
    // never deferred (a full cache spills to the run map too, and
    // multi-unit requests flush the cache before declaring a shard
    // empty).
    if (Units == 1 && Offset < GeneralUnits &&
        S.CachedUnits.size() < static_cast<size_t>(CacheBatch) * 4)
      S.CachedUnits.push_back(Offset);
    else
      addRunToMap(S.Runs, Offset, PortionEnd - Offset);
    Offset = PortionEnd;
  }
}

std::vector<Page *> PageAllocator::activePagesSnapshot() const {
  std::vector<Page *> Snapshot;
  forEachActivePage([&](Page &P) { Snapshot.push_back(&P); });
  return Snapshot;
}

std::vector<Page *> PageAllocator::quarantinedPagesSnapshot() const {
  std::vector<Page *> Snapshot;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> G(S->Lock);
    for (const auto &P : S->Quarantined)
      Snapshot.push_back(P.get());
  }
  return Snapshot;
}
