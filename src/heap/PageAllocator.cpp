//===- heap/PageAllocator.cpp - Heap reservation and page pool --------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "heap/PageAllocator.h"

#include "inject/FaultInject.h"
#include "support/Compiler.h"

#include <algorithm>
#include <cstring>

#include <sys/mman.h>

using namespace hcsgc;

PageAllocator::PageAllocator(const HeapGeometry &Geo, size_t MaxHeapBytes,
                             size_t ReservedBytes,
                             size_t RelocReserveBytes)
    : Geo(Geo), MaxHeap(alignUp(MaxHeapBytes, Geo.SmallPageSize)),
      Reserved(ReservedBytes ? alignUp(ReservedBytes, Geo.SmallPageSize)
                             : 3 * MaxHeap),
      RelocReserve(alignUp(RelocReserveBytes, Geo.SmallPageSize)) {
  if (!Geo.valid())
    fatalError("invalid heap geometry");
  if (Reserved < MaxHeap)
    fatalError("reservation smaller than max heap");

  // The relocation reserve rides on top of the configured reservation so
  // tightening ReservedBytes squeezes the general pool, never the
  // collector's progress guarantee.
  size_t TotalBytes = Reserved + RelocReserve;
  void *Mem = mmap(nullptr, TotalBytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (Mem == MAP_FAILED)
    fatalError("failed to reserve heap address space");
  Base = reinterpret_cast<uintptr_t>(Mem);
  Table = std::make_unique<PageTable>(Base, TotalBytes, Geo.SmallPageSize);
  GeneralUnits = Reserved / Geo.SmallPageSize;
  FreeRuns[0] = GeneralUnits;
  if (RelocReserve > 0)
    ReserveRuns[GeneralUnits] = RelocReserve / Geo.SmallPageSize;
}

PageAllocator::~PageAllocator() {
  munmap(reinterpret_cast<void *>(Base), Reserved + RelocReserve);
}

size_t PageAllocator::takeRun(std::map<size_t, size_t> &Runs,
                              size_t Units) {
  for (auto It = Runs.begin(); It != Runs.end(); ++It) {
    if (It->second < Units)
      continue;
    size_t Offset = It->first;
    size_t Len = It->second;
    Runs.erase(It);
    if (Len > Units)
      Runs[Offset + Units] = Len - Units;
    return Offset;
  }
  return SIZE_MAX;
}

void PageAllocator::giveRun(size_t Offset, size_t Units) {
  // Reserve-region pages go back to the reserve: the relocation
  // headroom replenishes itself as quarantined targets retire.
  std::map<size_t, size_t> &Runs =
      Offset >= GeneralUnits ? ReserveRuns : FreeRuns;
  auto Next = Runs.lower_bound(Offset);
  // Coalesce with the following run.
  if (Next != Runs.end() && Next->first == Offset + Units) {
    Units += Next->second;
    Next = Runs.erase(Next);
  }
  // Coalesce with the preceding run.
  if (Next != Runs.begin()) {
    auto Prev = std::prev(Next);
    if (Prev->first + Prev->second == Offset) {
      Prev->second += Units;
      return;
    }
  }
  Runs[Offset] = Units;
}

Page *PageAllocator::installPage(size_t Offset, size_t PageBytes,
                                 PageSizeClass Cls, uint64_t AllocSeq) {
  uintptr_t Begin = Base + Offset * Geo.SmallPageSize;
  // Fresh pages must be zeroed: reference slots of new objects are null
  // by construction.
  std::memset(reinterpret_cast<void *>(Begin), 0, PageBytes);

  auto Owned = std::make_unique<Page>(Begin, PageBytes, Cls, AllocSeq);
  Page *P = Owned.get();
  ActivePages.push_back(std::move(Owned));
  Table->install(P, unitsFor(PageBytes));
  Used.fetch_add(PageBytes, std::memory_order_relaxed);
  return P;
}

Page *PageAllocator::allocatePage(PageSizeClass Cls, size_t ObjectBytes,
                                  uint64_t AllocSeq, bool Force) {
  size_t PageBytes = Geo.pageSizeFor(Cls, ObjectBytes);
  size_t Units = unitsFor(PageBytes);

  std::lock_guard<std::mutex> G(Lock);
  if (!Force &&
      Used.load(std::memory_order_relaxed) + PageBytes > MaxHeap)
    return nullptr;
  if (HCSGC_INJECT_FAIL(PageAlloc))
    return nullptr; // synthetic address-space exhaustion
  size_t Offset = takeRun(FreeRuns, Units);
  if (Offset == SIZE_MAX)
    return nullptr;
  return installPage(Offset, PageBytes, Cls, AllocSeq);
}

Page *PageAllocator::allocateReservePage(PageSizeClass Cls,
                                         size_t ObjectBytes,
                                         uint64_t AllocSeq) {
  size_t PageBytes = Geo.pageSizeFor(Cls, ObjectBytes);
  size_t Units = unitsFor(PageBytes);

  std::lock_guard<std::mutex> G(Lock);
  size_t Offset = takeRun(ReserveRuns, Units);
  if (Offset == SIZE_MAX)
    return nullptr;
  ReservePagesUsed.fetch_add(1, std::memory_order_relaxed);
  return installPage(Offset, PageBytes, Cls, AllocSeq);
}

size_t PageAllocator::relocReserveFreeBytes() const {
  std::lock_guard<std::mutex> G(Lock);
  size_t Units = 0;
  for (const auto &[Offset, Len] : ReserveRuns)
    Units += Len;
  return Units * Geo.SmallPageSize;
}

void PageAllocator::quarantinePage(Page *P) {
  assert(P->state() == PageState::Quarantined &&
         "page must be marked quarantined first");
  std::lock_guard<std::mutex> G(Lock);
  auto It = std::find_if(
      ActivePages.begin(), ActivePages.end(),
      [P](const std::unique_ptr<Page> &Q) { return Q.get() == P; });
  assert(It != ActivePages.end() && "quarantining unknown page");
  QuarantinedPages.push_back(std::move(*It));
  ActivePages.erase(It);
  Used.fetch_sub(P->size(), std::memory_order_relaxed);
  Quarantined.fetch_add(P->size(), std::memory_order_relaxed);
}

void PageAllocator::releasePage(Page *P) {
  std::lock_guard<std::mutex> G(Lock);
  size_t Units = unitsFor(P->size());
  size_t Offset = (P->begin() - Base) / Geo.SmallPageSize;
  Table->remove(P->begin(), Units);

  auto ReleaseFrom = [&](std::vector<std::unique_ptr<Page>> &Pool,
                         std::atomic<size_t> &Ctr) {
    auto It = std::find_if(
        Pool.begin(), Pool.end(),
        [P](const std::unique_ptr<Page> &Q) { return Q.get() == P; });
    if (It == Pool.end())
      return false;
    Ctr.fetch_sub(P->size(), std::memory_order_relaxed);
    Pool.erase(It);
    return true;
  };
  if (!ReleaseFrom(QuarantinedPages, Quarantined) &&
      !ReleaseFrom(ActivePages, Used))
    fatalError("releasing unknown page");
  giveRun(Offset, Units);
}

std::vector<Page *> PageAllocator::activePagesSnapshot() const {
  std::lock_guard<std::mutex> G(Lock);
  std::vector<Page *> Snapshot;
  Snapshot.reserve(ActivePages.size());
  for (const auto &P : ActivePages)
    Snapshot.push_back(P.get());
  return Snapshot;
}

std::vector<Page *> PageAllocator::quarantinedPagesSnapshot() const {
  std::lock_guard<std::mutex> G(Lock);
  std::vector<Page *> Snapshot;
  Snapshot.reserve(QuarantinedPages.size());
  for (const auto &P : QuarantinedPages)
    Snapshot.push_back(P.get());
  return Snapshot;
}
