//===- heap/PageAllocator.cpp - Sharded heap reservation and page pool ------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Locking discipline: every path holds at most one shard lock at a time,
// except takeRunAcrossShards, which locks all general shards in ascending
// index order — together that makes the lock graph acyclic. releasePage
// removes ownership under the begin-unit shard's lock, then returns the
// unit range shard by shard without nesting. releaseQuarantinedBefore
// sweeps the shards in ascending order, locking each at most once and
// carrying cross-shard portions forward.
//
// The small-page refill path holds NO lock when the shard's cached-unit
// stack is non-empty: pop, page-object construction, registry insert,
// owned-list push and page-table install are all lock-free (the Treiber
// pop's acquire pairs with the freeing push's release, which is the
// memory handoff for the recycled unit — INTERNALS §11).
//
//===----------------------------------------------------------------------===//

#include "heap/PageAllocator.h"

#include "inject/FaultInject.h"
#include "observe/Metrics.h"
#include "support/Compiler.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <thread>

#include <sys/mman.h>

using namespace hcsgc;

namespace {
/// Process-wide thread ordinal source for round-robin home-shard
/// assignment; a thread keeps its ordinal for life, so its home shard is
/// stable for a given shard count.
std::atomic<unsigned> ThreadOrdinalSource{0};

unsigned threadOrdinal() {
  thread_local unsigned Ordinal =
      ThreadOrdinalSource.fetch_add(1, std::memory_order_relaxed);
  return Ordinal;
}
} // namespace

PageAllocator::PageAllocator(const HeapGeometry &Geo, size_t MaxHeapBytes,
                             size_t ReservedBytes, size_t RelocReserveBytes,
                             unsigned RequestedShards, unsigned CacheBatch,
                             unsigned CacheBatchMax, bool TrackTemperature,
                             bool TrackAllocSites)
    : Geo(Geo), MaxHeap(alignUp(MaxHeapBytes, Geo.SmallPageSize)),
      Reserved(ReservedBytes ? alignUp(ReservedBytes, Geo.SmallPageSize)
                             : 3 * MaxHeap),
      RelocReserve(alignUp(RelocReserveBytes, Geo.SmallPageSize)),
      CacheBatch(std::max(1u, CacheBatch)),
      CacheBatchMax(std::min(
          256u, std::max(std::max(1u, CacheBatch), CacheBatchMax))),
      TrackTemp(TrackTemperature), TrackSites(TrackAllocSites) {
  if (!Geo.valid())
    fatalError("invalid heap geometry");
  if (Reserved < MaxHeap)
    fatalError("reservation smaller than max heap");

  // The relocation reserve rides on top of the configured reservation so
  // tightening ReservedBytes squeezes the general pool, never the
  // collector's progress guarantee.
  size_t TotalBytes = Reserved + RelocReserve;
  void *Mem = mmap(nullptr, TotalBytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (Mem == MAP_FAILED)
    fatalError("failed to reserve heap address space");
  Base = reinterpret_cast<uintptr_t>(Mem);
  Table = std::make_unique<PageTable>(Base, TotalBytes, Geo.SmallPageSize);
  GeneralUnits = Reserved / Geo.SmallPageSize;

  // One Treiber next-link per general-pool unit (a unit sits on at most
  // one shard cache at a time, so side storage can be shared).
  UnitLinks = std::vector<std::atomic<uint32_t>>(GeneralUnits);
  for (auto &L : UnitLinks)
    L.store(CountedIndexStack::Nil, std::memory_order_relaxed);

  // Clamp the shard count so every shard spans at least one medium page:
  // partitioning below that granularity would route most medium requests
  // through the cross-shard fallback, defeating the striping. Tiny pools
  // (unit tests with a handful of units) collapse to a single shard and
  // behave exactly like the unsharded allocator.
  size_t MediumUnits = Geo.MediumPageSize / Geo.SmallPageSize;
  size_t MaxShards =
      std::max<size_t>(1, GeneralUnits / std::max<size_t>(MediumUnits, 1));
  unsigned Requested = RequestedShards;
  if (Requested == 0) {
    unsigned HW = std::thread::hardware_concurrency();
    Requested = std::min(HW ? HW : 4u, 8u);
  }
  NumGeneralShards = static_cast<unsigned>(
      std::min<size_t>(std::max(1u, Requested), MaxShards));

  size_t PerShard = GeneralUnits / NumGeneralShards;
  Shards.reserve(NumGeneralShards + 1);
  for (unsigned I = 0; I < NumGeneralShards; ++I) {
    auto S = std::make_unique<Shard>();
    S->BeginUnit = static_cast<size_t>(I) * PerShard;
    S->EndUnit = I + 1 == NumGeneralShards ? GeneralUnits
                                           : S->BeginUnit + PerShard;
    if (S->EndUnit > S->BeginUnit)
      S->Runs[S->BeginUnit] = S->EndUnit - S->BeginUnit;
    S->CacheTarget.store(this->CacheBatch, std::memory_order_relaxed);
    Shards.push_back(std::move(S));
  }
  // The relocation reserve is one extra shard past the general pool.
  auto R = std::make_unique<Shard>();
  R->BeginUnit = GeneralUnits;
  R->EndUnit = GeneralUnits + RelocReserve / Geo.SmallPageSize;
  if (R->EndUnit > R->BeginUnit)
    R->Runs[R->BeginUnit] = R->EndUnit - R->BeginUnit;
  R->CacheTarget.store(this->CacheBatch, std::memory_order_relaxed);
  Shards.push_back(std::move(R));
}

PageAllocator::~PageAllocator() {
  // Drop the pages (and with them forwarding tables etc.) before the
  // mapping goes away.
  Shards.clear();
  munmap(reinterpret_cast<void *>(Base), Reserved + RelocReserve);
}

size_t PageAllocator::shardIndexForUnit(size_t Unit) const {
  if (Unit >= GeneralUnits)
    return NumGeneralShards;
  size_t PerShard = GeneralUnits / NumGeneralShards;
  return std::min<size_t>(Unit / PerShard, NumGeneralShards - 1);
}

unsigned PageAllocator::homeShard() const {
  return threadOrdinal() % NumGeneralShards;
}

void PageAllocator::note(std::atomic<uint64_t> &Stat, Counter *Ctr) {
  Stat.fetch_add(1, std::memory_order_relaxed);
  if (Ctr)
    Ctr->increment();
}

void PageAllocator::bindMetrics(MetricsRegistry &MR) {
  CtrShardLocks = &MR.counter("alloc.shard.lock_acquisitions");
  CtrFallbacks = &MR.counter("alloc.shard.fallback_scans");
  CtrCrossShard = &MR.counter("alloc.shard.cross_shard_takes");
  CtrCacheHits = &MR.counter("alloc.cache.page_hits");
  CtrCacheMisses = &MR.counter("alloc.cache.page_misses");
  CtrBatchGrows = &MR.counter("alloc.cache.batch_grows");
  CtrBatchShrinks = &MR.counter("alloc.cache.batch_shrinks");
  CtrQuarBatches = &MR.counter("alloc.quarantine.batch_passes");
  CtrQuarLocks = &MR.counter("alloc.quarantine.release_locks");
  CtrQuarPages = &MR.counter("alloc.quarantine.pages_released");
  CtrColdPages = &MR.counter("coldpage.pages_allocated");
}

void PageAllocator::notePageTier(Page *P, PageTier T) {
  PageTier Old = P->tier();
  if (Old == T)
    return;
  P->setTier(T);
  if (Old == PageTier::Cold)
    ColdBytes.fetch_sub(P->size(), std::memory_order_relaxed);
  if (T == PageTier::Cold) {
    ColdBytes.fetch_add(P->size(), std::memory_order_relaxed);
    note(StColdPages, CtrColdPages);
  }
}

PageAllocator::AllocStats PageAllocator::allocStats() const {
  AllocStats S;
  S.ShardLockAcquisitions = StShardLocks.load(std::memory_order_relaxed);
  S.FallbackScans = StFallbacks.load(std::memory_order_relaxed);
  S.CrossShardTakes = StCrossShard.load(std::memory_order_relaxed);
  S.CacheHits = StCacheHits.load(std::memory_order_relaxed);
  S.CacheMisses = StCacheMisses.load(std::memory_order_relaxed);
  S.CacheBatchGrows = StBatchGrows.load(std::memory_order_relaxed);
  S.CacheBatchShrinks = StBatchShrinks.load(std::memory_order_relaxed);
  S.QuarantineBatchPasses = StQuarBatches.load(std::memory_order_relaxed);
  S.QuarantineReleaseLocks = StQuarLocks.load(std::memory_order_relaxed);
  S.QuarantinePagesReleased = StQuarPages.load(std::memory_order_relaxed);
  return S;
}

size_t PageAllocator::takeRunLocked(Shard &S, size_t Units) {
  for (auto It = S.Runs.begin(); It != S.Runs.end(); ++It) {
    if (It->second < Units)
      continue;
    size_t Offset = It->first;
    size_t Len = It->second;
    S.Runs.erase(It);
    if (Len > Units)
      S.Runs[Offset + Units] = Len - Units;
    return Offset;
  }
  return SIZE_MAX;
}

void PageAllocator::addRunToMap(std::map<size_t, size_t> &Runs,
                                size_t Offset, size_t Units) {
  auto Next = Runs.lower_bound(Offset);
  // Coalesce with the following run.
  if (Next != Runs.end() && Next->first == Offset + Units) {
    Units += Next->second;
    Next = Runs.erase(Next);
  }
  // Coalesce with the preceding run.
  if (Next != Runs.begin()) {
    auto Prev = std::prev(Next);
    if (Prev->first + Prev->second == Offset) {
      Prev->second += Units;
      return;
    }
  }
  Runs[Offset] = Units;
}

void PageAllocator::removeRangeFromMap(std::map<size_t, size_t> &Runs,
                                       size_t Offset, size_t Units) {
  auto It = Runs.upper_bound(Offset);
  assert(It != Runs.begin() && "range not free");
  --It;
  size_t RunOff = It->first;
  size_t RunLen = It->second;
  assert(RunOff <= Offset && RunOff + RunLen >= Offset + Units &&
         "range straddles allocated units");
  Runs.erase(It);
  if (RunOff < Offset)
    Runs[RunOff] = Offset - RunOff;
  if (RunOff + RunLen > Offset + Units)
    Runs[Offset + Units] = RunOff + RunLen - (Offset + Units);
}

size_t PageAllocator::refillCacheLocked(Shard &S) {
  uint32_t Target = S.CacheTarget.load(std::memory_order_relaxed);
  size_t Want = Target;
  size_t Carved[/*CacheBatchMax bound*/ 256];
  size_t NumCarved = 0;
  while (Want > 0 && !S.Runs.empty() && NumCarved < 256) {
    auto It = S.Runs.begin();
    size_t Offset = It->first;
    size_t Len = It->second;
    size_t Take = std::min({Want, Len, size_t(256) - NumCarved});
    S.Runs.erase(It);
    if (Len > Take)
      S.Runs[Offset + Take] = Len - Take;
    for (size_t I = 0; I < Take; ++I)
      Carved[NumCarved++] = Offset + I;
    Want -= Take;
  }
  if (NumCarved == 0)
    return SIZE_MAX;

  // The first (lowest) carved unit is returned for immediate use; the
  // rest go onto the lock-free cache pushed in reverse so the lowest
  // offset pops first (address-ordered reuse like the unsharded
  // first-fit allocator).
  UnitLinkFn Links = unitLinks();
  for (size_t I = NumCarved; I > 1; --I)
    S.Cache.push(static_cast<uint32_t>(Carved[I - 1]), Links);

  // Adapt the next refill's batch to what this one saw. A miss with
  // plenty of free space is churn evidence: the previous batch drained
  // before a free replenished the cache, so carve bigger next time. A
  // shard whose run map is nearly dry should carve smaller batches so
  // cached units do not monopolize the remaining space (they would be
  // flushed back for multi-unit requests, but holes still cost carve
  // work and defer coalescing).
  size_t FreeUnits = 0;
  for (const auto &[Off, Len] : S.Runs)
    FreeUnits += Len;
  size_t Span = S.EndUnit - S.BeginUnit;
  if (FreeUnits < Span / 8) {
    if (Target > 1) {
      S.CacheTarget.store(std::max(Target / 2, 1u),
                          std::memory_order_relaxed);
      note(StBatchShrinks, CtrBatchShrinks);
    }
  } else if (Target < CacheBatchMax) {
    S.CacheTarget.store(std::min(Target * 2, CacheBatchMax),
                        std::memory_order_relaxed);
    note(StBatchGrows, CtrBatchGrows);
  }
  return Carved[0];
}

void PageAllocator::flushCacheLocked(Shard &S) {
  // Detach the whole chain in one CAS; stragglers popping concurrently
  // either got their unit before the detach (it is theirs, and it is not
  // in the run map) or find the stack empty. The detached chain is
  // private, so walking the side links needs no further ordering.
  uint32_t Idx = S.Cache.popAll();
  uint32_t Drained = 0;
  UnitLinkFn Links = unitLinks();
  while (Idx != CountedIndexStack::Nil) {
    addRunToMap(S.Runs, Idx, 1);
    Idx = Links(Idx).load(std::memory_order_relaxed);
    ++Drained;
  }
  if (Drained)
    S.Cache.noteDrained(Drained);
}

void PageAllocator::ownedPushPage(Shard &S, Page *P) {
  Page *Head = S.OwnedHead.load(std::memory_order_relaxed);
  do {
    P->setNextOwned(Head);
  } while (!S.OwnedHead.compare_exchange_weak(Head, P,
                                              std::memory_order_release,
                                              std::memory_order_relaxed));
}

bool PageAllocator::ownedRemovePageLocked(Shard &S, Page *P) {
  // The shard lock serializes removers; only lock-free pushers race the
  // head. Interior next-links are stable once a page is published, so
  // the only retry point is a head CAS losing against a fresh push.
  for (;;) {
    Page *Head = S.OwnedHead.load(std::memory_order_acquire);
    if (Head == P) {
      if (S.OwnedHead.compare_exchange_strong(Head, P->nextOwned(),
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire))
        return true;
      continue; // a push moved the head; re-examine
    }
    Page *Prev = Head;
    while (Prev && Prev->nextOwned() != P)
      Prev = Prev->nextOwned();
    if (!Prev)
      return false;
    // P is interior: its predecessor's link is only written by removers
    // (serialized by the shard lock), so a plain store suffices.
    Prev->setNextOwned(P->nextOwned());
    return true;
  }
}

Page *PageAllocator::installPage(Shard &S, size_t Offset, size_t PageBytes,
                                 PageSizeClass Cls, uint64_t AllocSeq) {
  uintptr_t Begin = Base + Offset * Geo.SmallPageSize;
  // Fresh pages must be zeroed: reference slots of new objects are null
  // by construction. For a recycled cached unit this runs strictly after
  // the Treiber handoff edge, so no earlier owner's stores can be
  // reordered past it.
  std::memset(reinterpret_cast<void *>(Begin), 0, PageBytes);

  Page *P = new Page(Begin, PageBytes, Cls, AllocSeq,
                     TrackTemp && Cls == PageSizeClass::Small,
                     TrackSites && Cls == PageSizeClass::Small);
  P->setRegistryIndex(S.Registry.insert(P));
  ownedPushPage(S, P);
  Table->install(P, unitsFor(PageBytes));
  return P;
}

Page *PageAllocator::allocateSmallPage(size_t PageBytes,
                                       uint64_t AllocSeq) {
  unsigned Home = homeShard();
  UnitLinkFn Links = unitLinks();
  for (unsigned I = 0; I < NumGeneralShards; ++I) {
    if (I == 1)
      note(StFallbacks, CtrFallbacks);
    Shard &S = *Shards[(Home + I) % NumGeneralShards];

    // Fast refill: pop a cached unit — zero locks end to end.
    uint32_t Unit = S.Cache.pop(Links);
    if (Unit != CountedIndexStack::Nil) {
      note(StCacheHits, CtrCacheHits);
      return installPage(S, Unit, PageBytes, PageSizeClass::Small,
                         AllocSeq);
    }

    // Cache miss: take the shard lock and carve a fresh batch from the
    // run map (the only lock on the small-page path).
    std::lock_guard<std::mutex> G(S.Lock);
    note(StShardLocks, CtrShardLocks);
    size_t Offset = refillCacheLocked(S);
    if (Offset == SIZE_MAX) {
      // The run map is dry, but a unit freed concurrently may have been
      // pushed onto the cache between our pop and the lock.
      Unit = S.Cache.pop(Links);
      if (Unit == CountedIndexStack::Nil)
        continue; // this shard is out of units; fall back
      Offset = Unit;
    }
    note(StCacheMisses, CtrCacheMisses);
    return installPage(S, Offset, PageBytes, PageSizeClass::Small,
                       AllocSeq);
  }
  return nullptr;
}

Page *PageAllocator::allocateMultiUnit(size_t Units, size_t PageBytes,
                                       PageSizeClass Cls,
                                       uint64_t AllocSeq) {
  unsigned Home = homeShard();
  for (unsigned I = 0; I < NumGeneralShards; ++I) {
    if (I == 1)
      note(StFallbacks, CtrFallbacks);
    Shard &S = *Shards[(Home + I) % NumGeneralShards];
    std::lock_guard<std::mutex> G(S.Lock);
    note(StShardLocks, CtrShardLocks);
    // Flush the small-page cache first: cached units punch holes in the
    // run map, and carving a multi-unit run around a hole would
    // fragment the shard for good. Multi-unit requests are rare (medium
    // TLAB refills, large objects), so the flush cost is negligible.
    flushCacheLocked(S);
    size_t Offset = takeRunLocked(S, Units);
    if (Offset != SIZE_MAX)
      return installPage(S, Offset, PageBytes, Cls, AllocSeq);
  }
  return takeRunAcrossShards(Units, PageBytes, Cls, AllocSeq);
}

Page *PageAllocator::takeRunAcrossShards(size_t Units, size_t PageBytes,
                                         PageSizeClass Cls,
                                         uint64_t AllocSeq) {
  if (NumGeneralShards < 2)
    return nullptr; // single shard: the per-shard pass was exhaustive

  // Lock every general shard in ascending index order (the only place
  // two shard locks nest, so the order makes deadlock impossible), flush
  // the caches, and search the merged free view. Partitions tile the
  // unit space contiguously, so runs abutting across a boundary form one
  // allocatable window: a request fails here only if it would also have
  // failed under the old single free-run map.
  std::vector<std::unique_lock<std::mutex>> Locks;
  Locks.reserve(NumGeneralShards);
  for (unsigned I = 0; I < NumGeneralShards; ++I) {
    Locks.emplace_back(Shards[I]->Lock);
    note(StShardLocks, CtrShardLocks);
    flushCacheLocked(*Shards[I]);
  }

  // First-fit over the merged, address-ordered run sequence.
  size_t WindowOff = SIZE_MAX, WindowLen = 0, FoundOff = SIZE_MAX;
  for (unsigned I = 0; I < NumGeneralShards && FoundOff == SIZE_MAX; ++I) {
    for (const auto &[Offset, Len] : Shards[I]->Runs) {
      if (WindowOff != SIZE_MAX && WindowOff + WindowLen == Offset) {
        WindowLen += Len;
      } else {
        WindowOff = Offset;
        WindowLen = Len;
      }
      if (WindowLen >= Units) {
        FoundOff = WindowOff;
        break;
      }
    }
  }
  if (FoundOff == SIZE_MAX)
    return nullptr;

  size_t End = FoundOff + Units;
  for (unsigned I = 0; I < NumGeneralShards; ++I) {
    Shard &S = *Shards[I];
    size_t B = std::max(FoundOff, S.BeginUnit);
    size_t E = std::min(End, S.EndUnit);
    if (B < E)
      removeRangeFromMap(S.Runs, B, E - B);
  }
  note(StCrossShard, CtrCrossShard);
  // The page is owned by the shard holding its first unit.
  return installPage(shardForUnit(FoundOff), FoundOff, PageBytes, Cls,
                     AllocSeq);
}

Page *PageAllocator::allocatePage(PageSizeClass Cls, size_t ObjectBytes,
                                  uint64_t AllocSeq, bool Force) {
  size_t PageBytes = Geo.pageSizeFor(Cls, ObjectBytes);
  size_t Units = unitsFor(PageBytes);

  // Reserve the logical heap budget first (CAS loop instead of the old
  // check-under-global-lock); undone on any failure below.
  if (Force) {
    Used.fetch_add(PageBytes, std::memory_order_relaxed);
  } else {
    size_t Cur = Used.load(std::memory_order_relaxed);
    do {
      if (Cur + PageBytes > MaxHeap)
        return nullptr;
    } while (!Used.compare_exchange_weak(Cur, Cur + PageBytes,
                                         std::memory_order_relaxed));
  }

  Page *P = nullptr;
  if (HCSGC_INJECT_FAIL(PageAlloc)) {
    // synthetic address-space exhaustion
  } else if (Units == 1) {
    P = allocateSmallPage(PageBytes, AllocSeq);
  } else {
    P = allocateMultiUnit(Units, PageBytes, Cls, AllocSeq);
  }
  if (!P)
    Used.fetch_sub(PageBytes, std::memory_order_relaxed);
  return P;
}

Page *PageAllocator::allocateReservePage(PageSizeClass Cls,
                                         size_t ObjectBytes,
                                         uint64_t AllocSeq) {
  size_t PageBytes = Geo.pageSizeFor(Cls, ObjectBytes);
  size_t Units = unitsFor(PageBytes);

  Shard &R = reserveShard();
  std::lock_guard<std::mutex> G(R.Lock);
  note(StShardLocks, CtrShardLocks);
  size_t Offset = takeRunLocked(R, Units);
  if (Offset == SIZE_MAX)
    return nullptr;
  ReservePagesUsed.fetch_add(1, std::memory_order_relaxed);
  Used.fetch_add(PageBytes, std::memory_order_relaxed);
  return installPage(R, Offset, PageBytes, Cls, AllocSeq);
}

size_t PageAllocator::relocReserveFreeBytes() const {
  const Shard &R = reserveShard();
  std::lock_guard<std::mutex> G(R.Lock);
  size_t Units = 0;
  for (const auto &[Offset, Len] : R.Runs)
    Units += Len;
  return Units * Geo.SmallPageSize;
}

void PageAllocator::quarantinePage(Page *P) {
  assert(P->state() == PageState::Quarantined &&
         "page must be marked quarantined first");
  size_t Offset = (P->begin() - Base) / Geo.SmallPageSize;
  Shard &S = shardForUnit(Offset);
  std::lock_guard<std::mutex> G(S.Lock);
  if (!ownedRemovePageLocked(S, P))
    fatalError("quarantining unknown page");
  S.Registry.erase(P->registryIndex());
  P->setRegistryIndex(Page::NoRegistryIndex);
  S.Quarantined.push_back(P);
  S.QuarCount.fetch_add(1, std::memory_order_relaxed);
  Used.fetch_sub(P->size(), std::memory_order_relaxed);
  Quarantined.fetch_add(P->size(), std::memory_order_relaxed);
  if (P->tier() == PageTier::Cold) {
    // An evacuated cold page no longer holds resident cold data.
    P->setTier(PageTier::None);
    ColdBytes.fetch_sub(P->size(), std::memory_order_relaxed);
  }
}

void PageAllocator::releasePage(Page *P) {
  size_t Units = unitsFor(P->size());
  size_t Offset = (P->begin() - Base) / Geo.SmallPageSize;
  {
    Shard &S = shardForUnit(Offset);
    std::lock_guard<std::mutex> G(S.Lock);
    Table->remove(P->begin(), Units);

    auto It = std::find(S.Quarantined.begin(), S.Quarantined.end(), P);
    if (It != S.Quarantined.end()) {
      S.Quarantined.erase(It);
      S.QuarCount.fetch_sub(1, std::memory_order_relaxed);
      Quarantined.fetch_sub(P->size(), std::memory_order_relaxed);
    } else if (ownedRemovePageLocked(S, P)) {
      S.Registry.erase(P->registryIndex());
      P->setRegistryIndex(Page::NoRegistryIndex);
      Used.fetch_sub(P->size(), std::memory_order_relaxed);
      if (P->tier() == PageTier::Cold)
        ColdBytes.fetch_sub(P->size(), std::memory_order_relaxed);
    } else {
      fatalError("releasing unknown page");
    }
    delete P;
  }
  giveRun(Offset, Units);
}

uint64_t PageAllocator::releaseQuarantinedBefore(uint64_t Cycle) {
  note(StQuarBatches, CtrQuarBatches);
  uint64_t Released = 0;
  // Portions of released pages that extend past the owning shard's end
  // (medium/large pages spanning partition boundaries). A page is owned
  // by the shard holding its first unit, so portions only ever belong to
  // *later* shards and can be spliced when the ascending sweep gets
  // there — no second lock acquisition on any shard.
  std::vector<std::pair<size_t, size_t>> Carried; // (offset, units)

  for (size_t SI = 0; SI < Shards.size(); ++SI) {
    Shard &S = *Shards[SI];
    bool HasCarried = false;
    for (const auto &[Off, Len] : Carried)
      HasCarried |= Len > 0 && Off < S.EndUnit;
    if (S.QuarCount.load(std::memory_order_relaxed) == 0 && !HasCarried)
      continue; // idle shard: skip without locking

    std::lock_guard<std::mutex> G(S.Lock);
    note(StQuarLocks, CtrQuarLocks);

    // Splice the portions carried forward into this shard's run map.
    for (auto &[Off, Len] : Carried) {
      if (Len == 0 || Off >= S.EndUnit)
        continue;
      size_t E = std::min(Off + Len, S.EndUnit);
      addRunToMap(S.Runs, Off, E - Off);
      Len -= E - Off;
      Off = E;
    }

    // Retire this shard's expired quarantined pages in one pass.
    for (size_t I = 0; I < S.Quarantined.size();) {
      Page *P = S.Quarantined[I];
      if (P->quarantineCycle() >= Cycle) {
        ++I;
        continue;
      }
      size_t Units = unitsFor(P->size());
      size_t Offset = (P->begin() - Base) / Geo.SmallPageSize;
      Table->remove(P->begin(), Units);
      Quarantined.fetch_sub(P->size(), std::memory_order_relaxed);
      size_t InShardEnd = std::min(Offset + Units, S.EndUnit);
      addRunToMap(S.Runs, Offset, InShardEnd - Offset);
      if (Offset + Units > InShardEnd)
        Carried.push_back({InShardEnd, Offset + Units - InShardEnd});
      delete P;
      S.Quarantined[I] = S.Quarantined.back();
      S.Quarantined.pop_back();
      S.QuarCount.fetch_sub(1, std::memory_order_relaxed);
      ++Released;
    }
  }
  assert(std::all_of(Carried.begin(), Carried.end(),
                     [](const auto &C) { return C.second == 0; }) &&
         "quarantined units past the reserve shard");
  StQuarPages.fetch_add(Released, std::memory_order_relaxed);
  if (CtrQuarPages)
    CtrQuarPages->add(Released);
  return Released;
}

void PageAllocator::giveRun(size_t Offset, size_t Units) {
  // A freed small page from the general pool goes straight onto its
  // shard's lock-free cache (bounded by the adaptive batch): the most
  // recently freed unit is the next one handed out, which keeps the old
  // allocator's immediate address reuse for alloc/free pairs and
  // re-serves cache-warm memory — and the freeing thread takes no lock.
  // Multi-unit runs and reserve pages always rejoin the run map, so
  // their coalescing is never deferred (a full cache spills to the run
  // map too, and multi-unit requests flush the cache before declaring a
  // shard empty).
  if (Units == 1 && Offset < GeneralUnits) {
    Shard &S = shardForUnit(Offset);
    size_t Bound =
        static_cast<size_t>(S.CacheTarget.load(std::memory_order_relaxed)) *
        4;
    if (S.Cache.sizeApprox() < Bound) {
      S.Cache.push(static_cast<uint32_t>(Offset), unitLinks());
      return;
    }
  }
  // Cross-shard runs are returned piecewise, one shard lock at a time.
  size_t End = Offset + Units;
  while (Offset < End) {
    Shard &S = shardForUnit(Offset);
    size_t PortionEnd = std::min(End, S.EndUnit);
    std::lock_guard<std::mutex> G(S.Lock);
    addRunToMap(S.Runs, Offset, PortionEnd - Offset);
    Offset = PortionEnd;
  }
}

std::vector<Page *> PageAllocator::activePagesSnapshot() const {
  std::vector<Page *> Snapshot;
  forEachActivePage([&](Page &P) { Snapshot.push_back(&P); });
  return Snapshot;
}

std::vector<Page *> PageAllocator::quarantinedPagesSnapshot() const {
  std::vector<Page *> Snapshot;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> G(S->Lock);
    for (Page *P : S->Quarantined)
      Snapshot.push_back(P);
  }
  return Snapshot;
}
