//===- heap/PageAllocator.h - Heap reservation and page pool ---*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns the heap's virtual-memory reservation and hands out pages of the
/// three size classes. §2.1 of the paper: "Memory reclamation happens on
/// the granularity of a page and as part of relocation."
///
/// Logical heap accounting: `usedBytes` counts active pages and is bounded
/// by the configured max heap (the GC trigger and OOM limit). Quarantined
/// pages — fully evacuated but awaiting pointer remapping — are accounted
/// separately and live in extra reserved address space, standing in for
/// ZGC's multi-mapped views (see DESIGN.md §2).
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_HEAP_PAGEALLOCATOR_H
#define HCSGC_HEAP_PAGEALLOCATOR_H

#include "heap/Geometry.h"
#include "heap/Page.h"
#include "heap/PageTable.h"

#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace hcsgc {

/// Reserves one contiguous region and manages page allocation within it.
class PageAllocator {
public:
  /// \param Geo page geometry (sizes must be powers of two).
  /// \param MaxHeapBytes logical heap limit (multiple of small page size).
  /// \param ReservedBytes address space to reserve; defaults to
  ///        3 * MaxHeapBytes to absorb quarantined pages.
  /// \param RelocReserveBytes additional address space (on top of
  ///        ReservedBytes) set aside exclusively for relocation targets;
  ///        served by allocateReservePage when the general pool is
  ///        exhausted, so relocation keeps making progress. Released
  ///        reserve pages return to the reserve, not the general pool.
  PageAllocator(const HeapGeometry &Geo, size_t MaxHeapBytes,
                size_t ReservedBytes = 0, size_t RelocReserveBytes = 0);
  ~PageAllocator();

  PageAllocator(const PageAllocator &) = delete;
  PageAllocator &operator=(const PageAllocator &) = delete;

  /// Allocates a page of class \p Cls (for large pages, sized to hold
  /// \p ObjectBytes).
  /// \returns nullptr if the allocation would exceed the max heap or the
  /// reservation is exhausted.
  /// \param Force bypass the max-heap check (relocation targets must make
  ///        progress; the reservation headroom absorbs them).
  Page *allocatePage(PageSizeClass Cls, size_t ObjectBytes,
                     uint64_t AllocSeq, bool Force = false);

  /// Allocates a page from the dedicated relocation reserve, bypassing
  /// both the max-heap check and the general free pool. \returns nullptr
  /// only when the reserve itself is exhausted. Not subject to the
  /// PageAlloc fault point: the reserve is the progress guarantee fault
  /// plans exercise.
  Page *allocateReservePage(PageSizeClass Cls, size_t ObjectBytes,
                            uint64_t AllocSeq);

  /// Moves \p P from active to quarantined accounting. The page's state
  /// must already be Quarantined; its address range stays mapped.
  void quarantinePage(Page *P);

  /// Destroys \p P and returns its address range to the free pool.
  void releasePage(Page *P);

  /// \returns bytes in active pages (the paper's "heap usage").
  size_t usedBytes() const {
    return Used.load(std::memory_order_relaxed);
  }
  /// \returns bytes held by quarantined (evacuated, not yet retired)
  /// pages.
  size_t quarantinedBytes() const {
    return Quarantined.load(std::memory_order_relaxed);
  }
  size_t maxHeapBytes() const { return MaxHeap; }

  /// \returns bytes currently free in the relocation reserve.
  size_t relocReserveFreeBytes() const;
  /// \returns pages handed out by allocateReservePage so far.
  uint64_t relocReservePagesUsed() const {
    return ReservePagesUsed.load(std::memory_order_relaxed);
  }

  const HeapGeometry &geometry() const { return Geo; }
  PageTable &pageTable() { return *Table; }
  const PageTable &pageTable() const { return *Table; }

  /// \returns a snapshot of all active (non-quarantined) pages.
  std::vector<Page *> activePagesSnapshot() const;

  /// \returns a snapshot of all quarantined pages.
  std::vector<Page *> quarantinedPagesSnapshot() const;

private:
  HeapGeometry Geo;
  size_t MaxHeap;
  size_t Reserved;
  size_t RelocReserve;
  uintptr_t Base = 0;
  std::unique_ptr<PageTable> Table;

  mutable std::mutex Lock;
  /// Free runs: unit offset -> run length in units. Coalesced on free.
  /// The general pool covers units [0, GeneralUnits); the relocation
  /// reserve covers [GeneralUnits, GeneralUnits + reserve units) and has
  /// its own run map so the two pools never bleed into each other.
  std::map<size_t, size_t> FreeRuns;
  std::map<size_t, size_t> ReserveRuns;
  size_t GeneralUnits = 0;
  std::vector<std::unique_ptr<Page>> ActivePages;   // owning
  std::vector<std::unique_ptr<Page>> QuarantinedPages; // owning

  std::atomic<size_t> Used{0};
  std::atomic<size_t> Quarantined{0};
  std::atomic<uint64_t> ReservePagesUsed{0};

  size_t unitsFor(size_t Bytes) const {
    return divideCeil(Bytes, Geo.SmallPageSize);
  }
  /// Carves \p Units consecutive units out of \p Runs.
  /// \returns the unit offset or SIZE_MAX on failure. Lock held.
  size_t takeRun(std::map<size_t, size_t> &Runs, size_t Units);
  /// Returns \p Units at \p Offset to its owning pool, coalescing. Lock
  /// held.
  void giveRun(size_t Offset, size_t Units);
  /// Builds, installs and accounts a page at \p Offset. Lock held.
  Page *installPage(size_t Offset, size_t PageBytes, PageSizeClass Cls,
                    uint64_t AllocSeq);
};

} // namespace hcsgc

#endif // HCSGC_HEAP_PAGEALLOCATOR_H
