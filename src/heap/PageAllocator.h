//===- heap/PageAllocator.h - Sharded heap reservation and page pool -*- C++
//-*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns the heap's virtual-memory reservation and hands out pages of the
/// three size classes. §2.1 of the paper: "Memory reclamation happens on
/// the granularity of a page and as part of relocation."
///
/// Free-space management is sharded: the general pool's unit space
/// [0, GeneralUnits) is tiled into N contiguous lock-striped partitions,
/// each with its own mutex, free-run map, a *lock-free* Treiber stack of
/// cached free units for small pages (refilled in adaptively sized
/// batches), an intrusive owned-page list, and an iterable active-page
/// registry. A small-page refill that hits the cache takes **zero** shard
/// locks — the pop, the registry insert, the page-table install and the
/// owned-list push are all lock-free; only a cache miss takes the shard
/// lock, to carve a fresh batch from the run map. Threads are spread
/// round-robin over home shards. Multi-unit requests fall back to a
/// deterministic lock-all pass that merges runs across partition
/// boundaries, so a request fails only when it would also have failed
/// under a single free-run map — exhaustion (and with it the PR-2
/// stall/reserve semantics) is unchanged by sharding or by the lock-free
/// refill (INTERNALS §10–11).
///
/// Logical heap accounting: `usedBytes` counts active pages and is bounded
/// by the configured max heap (the GC trigger and OOM limit); the bound is
/// enforced by a CAS reservation loop, not a lock. Quarantined pages —
/// fully evacuated but awaiting pointer remapping — are accounted
/// separately and live in extra reserved address space, standing in for
/// ZGC's multi-mapped views (see DESIGN.md §2); they are retired in one
/// batched pass per GC cycle (releaseQuarantinedBefore) that takes each
/// shard's lock at most once. The relocation reserve is modeled as one
/// extra shard covering [GeneralUnits, TotalUnits), so reserve pages never
/// bleed into the general pool and vice versa.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_HEAP_PAGEALLOCATOR_H
#define HCSGC_HEAP_PAGEALLOCATOR_H

#include "heap/Geometry.h"
#include "heap/Page.h"
#include "heap/PageRegistry.h"
#include "heap/PageTable.h"
#include "heap/TreiberStack.h"

#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace hcsgc {

class Counter;
class MetricsRegistry;

/// Reserves one contiguous region and manages page allocation within it.
class PageAllocator {
public:
  /// \param Geo page geometry (sizes must be powers of two).
  /// \param MaxHeapBytes logical heap limit (multiple of small page size).
  /// \param ReservedBytes address space to reserve; defaults to
  ///        3 * MaxHeapBytes to absorb quarantined pages.
  /// \param RelocReserveBytes additional address space (on top of
  ///        ReservedBytes) set aside exclusively for relocation targets;
  ///        served by allocateReservePage when the general pool is
  ///        exhausted, so relocation keeps making progress. Released
  ///        reserve pages return to the reserve, not the general pool.
  /// \param Shards requested general-pool shard count; 0 picks one per
  ///        hardware thread (capped at 8). Clamped so every shard spans
  ///        at least one medium page — tiny pools collapse to one shard.
  /// \param CacheBatch initial (and minimum reset point for) small-page
  ///        units carved from a shard's run map per cache refill; the
  ///        per-shard batch adapts between 1 and \p CacheBatchMax driven
  ///        by refill misses (grow under churn, shrink near full).
  /// \param CacheBatchMax upper bound for the adaptive refill batch;
  ///        clamped to at least \p CacheBatch.
  /// \param TrackTemperature arm the per-object temperature plane on
  ///        every small page (TEMPERATURE knob; see Page).
  /// \param TrackAllocSites arm the allocation-site side table on every
  ///        small page (SITEPROFILING knob; see Page).
  PageAllocator(const HeapGeometry &Geo, size_t MaxHeapBytes,
                size_t ReservedBytes = 0, size_t RelocReserveBytes = 0,
                unsigned Shards = 0, unsigned CacheBatch = 8,
                unsigned CacheBatchMax = 64, bool TrackTemperature = false,
                bool TrackAllocSites = false);
  ~PageAllocator();

  PageAllocator(const PageAllocator &) = delete;
  PageAllocator &operator=(const PageAllocator &) = delete;

  /// Allocates a page of class \p Cls (for large pages, sized to hold
  /// \p ObjectBytes).
  /// \returns nullptr if the allocation would exceed the max heap or the
  /// reservation is exhausted.
  /// \param Force bypass the max-heap check (relocation targets must make
  ///        progress; the reservation headroom absorbs them).
  Page *allocatePage(PageSizeClass Cls, size_t ObjectBytes,
                     uint64_t AllocSeq, bool Force = false);

  /// Allocates a page from the dedicated relocation reserve, bypassing
  /// both the max-heap check and the general free pool. \returns nullptr
  /// only when the reserve itself is exhausted. Not subject to the
  /// PageAlloc fault point: the reserve is the progress guarantee fault
  /// plans exercise.
  Page *allocateReservePage(PageSizeClass Cls, size_t ObjectBytes,
                            uint64_t AllocSeq);

  /// Moves \p P from active to quarantined accounting. The page's state
  /// must already be Quarantined; its address range stays mapped.
  void quarantinePage(Page *P);

  /// Destroys \p P and returns its address range to the free pool.
  void releasePage(Page *P);

  /// Retires every quarantined page whose quarantineCycle() is strictly
  /// below \p Cycle, in one batched pass that takes each shard's lock at
  /// most once per call (cross-shard portions are deferred forward into
  /// the ascending sweep). Called by the GC coordinator once per cycle;
  /// safe concurrent with allocation and quarantinePage.
  /// \returns the number of pages released.
  uint64_t releaseQuarantinedBefore(uint64_t Cycle);

  /// \returns bytes in active pages (the paper's "heap usage").
  size_t usedBytes() const {
    return Used.load(std::memory_order_relaxed);
  }
  /// \returns bytes held by quarantined (evacuated, not yet retired)
  /// pages.
  size_t quarantinedBytes() const {
    return Quarantined.load(std::memory_order_relaxed);
  }
  size_t maxHeapBytes() const { return MaxHeap; }

  /// Stamps \p P with destination tier \p T and keeps the cold-resident
  /// accounting consistent (cold-tier bytes are the reclaimable-RSS
  /// population reported by coldPageBytes()).
  void notePageTier(Page *P, PageTier T);

  /// \returns bytes in active cold-tier pages — an upper bound on the
  /// RSS madvise(MADV_COLD) can offer back to the OS.
  size_t coldPageBytes() const {
    return ColdBytes.load(std::memory_order_relaxed);
  }

  /// \returns bytes currently free in the relocation reserve.
  size_t relocReserveFreeBytes() const;
  /// \returns pages handed out by allocateReservePage so far.
  uint64_t relocReservePagesUsed() const {
    return ReservePagesUsed.load(std::memory_order_relaxed);
  }

  const HeapGeometry &geometry() const { return Geo; }
  PageTable &pageTable() { return *Table; }
  const PageTable &pageTable() const { return *Table; }

  /// Number of general-pool shards after clamping.
  unsigned shardCount() const { return NumGeneralShards; }

  /// Invokes \p Fn on every active page (general pool and relocation
  /// reserve) without copying a snapshot vector and without taking any
  /// shard lock: iterates the per-shard registries' atomic slots. Pages
  /// installed concurrently may or may not be visited (per-cycle callers
  /// filter by allocSeq); a visited page is destroyed only by
  /// releasePage/releaseQuarantinedBefore, which in this collector only
  /// the GC coordinator calls, so coordinator-side iteration never races
  /// page teardown.
  template <typename Fn> void forEachActivePage(Fn &&F) const {
    for (const auto &S : Shards)
      S->Registry.forEach(F);
  }

  /// \returns a snapshot of all active (non-quarantined) pages.
  std::vector<Page *> activePagesSnapshot() const;

  /// \returns a snapshot of all quarantined pages.
  std::vector<Page *> quarantinedPagesSnapshot() const;

  // --- Observability ----------------------------------------------------

  /// Point-in-time view of the allocator's internal counters.
  struct AllocStats {
    /// Mutex acquisitions on page-allocation paths (refill-miss carve,
    /// multi-unit, fallback, cross-shard, reserve). Excludes
    /// quarantine/release (see QuarantineReleaseLocks).
    uint64_t ShardLockAcquisitions;
    /// Small-page allocations that had to look beyond their home shard.
    uint64_t FallbackScans;
    /// Multi-unit allocations satisfied by the lock-all merged-run pass.
    uint64_t CrossShardTakes;
    /// Small-page refills served entirely lock-free from a shard's
    /// cached-unit stack.
    uint64_t CacheHits;
    /// Small-page refills that took the shard lock (to carve a fresh
    /// batch, or to catch a unit freed concurrently). On the small-page
    /// path, ShardLockAcquisitions == CacheMisses + exhausted-shard
    /// probes; with free units available, locks == misses exactly.
    uint64_t CacheMisses;
    /// Adaptive refill-batch doublings (churn evidence).
    uint64_t CacheBatchGrows;
    /// Adaptive refill-batch reductions (shard nearing full).
    uint64_t CacheBatchShrinks;
    /// Batched quarantine-release passes (one per GC cycle).
    uint64_t QuarantineBatchPasses;
    /// Shard-lock acquisitions made by those passes; bounded by
    /// passes * (shardCount() + 1).
    uint64_t QuarantineReleaseLocks;
    /// Pages retired by batched passes.
    uint64_t QuarantinePagesReleased;
  };
  AllocStats allocStats() const;

  /// Mirrors the internal counters into \p MR under the "alloc.shard.*",
  /// "alloc.cache.*" and "alloc.quarantine.*" names so harness reports
  /// pick them up. Call before the allocator is shared between threads.
  void bindMetrics(MetricsRegistry &MR);

private:
  /// One lock-striped partition of the unit space. Shards tile
  /// [0, GeneralUnits) contiguously; the last entry of Shards is the
  /// relocation reserve covering [GeneralUnits, TotalUnits).
  struct alignas(64) Shard {
    size_t BeginUnit = 0;
    size_t EndUnit = 0; // exclusive
    mutable std::mutex Lock;
    /// Free runs: unit offset -> run length in units. Coalesced on free.
    /// Guarded by Lock.
    std::map<size_t, size_t> Runs;
    /// Single free units pre-carved for small-page refills. Lock-free
    /// (TreiberStack.h); within a carved batch the lowest offset pops
    /// first (pushed in reverse) for address-ordered reuse.
    CountedIndexStack Cache;
    /// Adaptive refill batch size in [1, CacheBatchMax]; written only
    /// under Lock (refill), read lock-free by the free path's bound.
    std::atomic<uint32_t> CacheTarget{8};
    /// Intrusive list of pages owned by this shard: pushed lock-free on
    /// install (head CAS), unlinked only under Lock.
    std::atomic<Page *> OwnedHead{nullptr};
    /// Quarantined pages awaiting retirement. Guarded by Lock.
    std::vector<Page *> Quarantined;
    /// Lock-free peek so the batched release can skip idle shards.
    std::atomic<uint32_t> QuarCount{0};
    PageRegistry Registry;

    ~Shard() {
      for (Page *P = OwnedHead.load(std::memory_order_relaxed); P;) {
        Page *Next = P->nextOwned();
        delete P;
        P = Next;
      }
      for (Page *P : Quarantined)
        delete P;
    }
  };

  /// Maps a unit index to its next-link for the per-shard cache stacks
  /// (side storage — see TreiberStack.h on why links never live in page
  /// memory).
  struct UnitLinkFn {
    std::atomic<uint32_t> *Links;
    std::atomic<uint32_t> &operator()(uint32_t I) const { return Links[I]; }
  };
  UnitLinkFn unitLinks() { return {UnitLinks.data()}; }

  HeapGeometry Geo;
  size_t MaxHeap;
  size_t Reserved;
  size_t RelocReserve;
  uintptr_t Base = 0;
  std::unique_ptr<PageTable> Table;

  size_t GeneralUnits = 0;
  unsigned NumGeneralShards = 1;
  unsigned CacheBatch = 8;
  unsigned CacheBatchMax = 64;
  bool TrackTemp = false;
  bool TrackSites = false;
  std::vector<std::unique_ptr<Shard>> Shards; // general shards + reserve
  /// One next-link per general-pool unit, shared by all shard caches (a
  /// unit is on at most one stack at a time).
  std::vector<std::atomic<uint32_t>> UnitLinks;

  std::atomic<size_t> Used{0};
  std::atomic<size_t> Quarantined{0};
  std::atomic<uint64_t> ReservePagesUsed{0};
  /// Bytes in active cold-tier pages; adjusted by notePageTier and the
  /// quarantine/release paths (the tier tag is cleared when a cold page
  /// leaves the active set so it is never subtracted twice).
  std::atomic<size_t> ColdBytes{0};

  // Internal stats (source of truth) with optional registry mirrors.
  std::atomic<uint64_t> StShardLocks{0};
  std::atomic<uint64_t> StFallbacks{0};
  std::atomic<uint64_t> StCrossShard{0};
  std::atomic<uint64_t> StCacheHits{0};
  std::atomic<uint64_t> StCacheMisses{0};
  std::atomic<uint64_t> StBatchGrows{0};
  std::atomic<uint64_t> StBatchShrinks{0};
  std::atomic<uint64_t> StQuarBatches{0};
  std::atomic<uint64_t> StQuarLocks{0};
  std::atomic<uint64_t> StQuarPages{0};
  std::atomic<uint64_t> StColdPages{0};
  Counter *CtrShardLocks = nullptr;
  Counter *CtrFallbacks = nullptr;
  Counter *CtrCrossShard = nullptr;
  Counter *CtrCacheHits = nullptr;
  Counter *CtrCacheMisses = nullptr;
  Counter *CtrBatchGrows = nullptr;
  Counter *CtrBatchShrinks = nullptr;
  Counter *CtrQuarBatches = nullptr;
  Counter *CtrQuarLocks = nullptr;
  Counter *CtrQuarPages = nullptr;
  Counter *CtrColdPages = nullptr;

  size_t unitsFor(size_t Bytes) const {
    return divideCeil(Bytes, Geo.SmallPageSize);
  }
  Shard &reserveShard() { return *Shards[NumGeneralShards]; }
  const Shard &reserveShard() const { return *Shards[NumGeneralShards]; }
  Shard &shardForUnit(size_t Unit) { return *Shards[shardIndexForUnit(Unit)]; }
  size_t shardIndexForUnit(size_t Unit) const;
  /// This thread's preferred shard (stable round-robin assignment).
  unsigned homeShard() const;

  void note(std::atomic<uint64_t> &Stat, Counter *Ctr);

  // All helpers suffixed "Locked" require the shard's lock.
  Page *allocateSmallPage(size_t PageBytes, uint64_t AllocSeq);
  Page *allocateMultiUnit(size_t Units, size_t PageBytes, PageSizeClass Cls,
                          uint64_t AllocSeq);
  Page *takeRunAcrossShards(size_t Units, size_t PageBytes,
                            PageSizeClass Cls, uint64_t AllocSeq);
  /// Carves an adaptively sized batch of single units from the run map:
  /// the first carved unit is returned for immediate use, the rest are
  /// pushed onto the shard's lock-free cache. \returns SIZE_MAX if the
  /// run map is empty.
  size_t refillCacheLocked(Shard &S);
  void flushCacheLocked(Shard &S);
  size_t takeRunLocked(Shard &S, size_t Units);
  /// Removes [Offset, Offset+Units) from \p Runs; the range must lie
  /// inside a single run.
  static void removeRangeFromMap(std::map<size_t, size_t> &Runs,
                                 size_t Offset, size_t Units);
  /// Adds a run to \p Runs, coalescing with neighbors.
  static void addRunToMap(std::map<size_t, size_t> &Runs, size_t Offset,
                          size_t Units);
  /// Returns \p Units at \p Offset to the owning shard(s). Single
  /// general-pool units go onto the owning shard's lock-free cache
  /// (bounded); runs take each owning shard's lock in turn (never
  /// nested).
  void giveRun(size_t Offset, size_t Units);
  /// Builds, installs and registers a page at \p Offset — entirely
  /// lock-free (callers may or may not hold the shard's lock).
  Page *installPage(Shard &S, size_t Offset, size_t PageBytes,
                    PageSizeClass Cls, uint64_t AllocSeq);
  /// Lock-free push onto the shard's intrusive owned-page list.
  static void ownedPushPage(Shard &S, Page *P);
  /// Unlinks \p P from the owned list; requires the shard's lock (the
  /// lock serializes removers, so only lock-free pushers race the head).
  static bool ownedRemovePageLocked(Shard &S, Page *P);
};

} // namespace hcsgc

#endif // HCSGC_HEAP_PAGEALLOCATOR_H
