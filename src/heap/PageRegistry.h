//===- heap/PageRegistry.h - Iterable active-page registry -----*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A chunked slot array of active pages that supports lock-free iteration
/// concurrent with insertion and removal. Each PageAllocator shard owns
/// one registry; the per-cycle passes (hotmap reset, EC selection) walk
/// the registries directly instead of copying a snapshot vector under the
/// allocator lock.
///
/// Concurrency contract:
///  - insert/erase require external synchronization (the owning shard's
///    lock) — they mutate the free-slot list and the tail cursor.
///  - forEach is wait-free for the reader and may run concurrently with
///    insert/erase from other threads. Slots are atomic: an iterator sees
///    each registered page at most once per pass; pages inserted during
///    the pass may or may not be seen (callers filter by allocSeq), and
///    pages erased during the pass may still be visited (erase does not
///    destroy the Page — destruction is the caller's schedule to prove).
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_HEAP_PAGEREGISTRY_H
#define HCSGC_HEAP_PAGEREGISTRY_H

#include <array>
#include <atomic>
#include <cstddef>
#include <vector>

namespace hcsgc {

class Page;

/// Iterable set of Page pointers with stable, recyclable slots.
class PageRegistry {
public:
  using Slot = std::atomic<Page *>;

  PageRegistry() : Tail(&Head) {}
  ~PageRegistry() {
    Chunk *C = Head.Next.load(std::memory_order_relaxed);
    while (C) {
      Chunk *N = C->Next.load(std::memory_order_relaxed);
      delete C;
      C = N;
    }
  }

  PageRegistry(const PageRegistry &) = delete;
  PageRegistry &operator=(const PageRegistry &) = delete;

  /// Publishes \p P in a free slot. Caller holds the owning shard lock.
  /// \returns the slot handle for the matching erase().
  Slot *insert(Page *P) {
    Slot *S;
    if (!FreeSlots.empty()) {
      S = FreeSlots.back();
      FreeSlots.pop_back();
    } else {
      if (TailUsed == ChunkSlots) {
        Chunk *C = new Chunk();
        Tail->Next.store(C, std::memory_order_release);
        Tail = C;
        TailUsed = 0;
      }
      S = &Tail->Slots[TailUsed++];
    }
    S->store(P, std::memory_order_release);
    Count.fetch_add(1, std::memory_order_relaxed);
    return S;
  }

  /// Unpublishes the page in \p S and recycles the slot. Caller holds the
  /// owning shard lock.
  void erase(Slot *S) {
    S->store(nullptr, std::memory_order_release);
    FreeSlots.push_back(S);
    Count.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Invokes \p Fn on every registered page. Lock-free; safe concurrent
  /// with insert/erase (see the file comment for the visibility contract).
  template <typename Fn> void forEach(Fn &&F) const {
    for (const Chunk *C = &Head; C;
         C = C->Next.load(std::memory_order_acquire))
      for (const Slot &S : C->Slots)
        if (Page *P = S.load(std::memory_order_acquire))
          F(*P);
  }

  /// Registered page count (relaxed; exact only while quiescent).
  size_t sizeApprox() const {
    return Count.load(std::memory_order_relaxed);
  }

private:
  static constexpr size_t ChunkSlots = 256;

  struct Chunk {
    std::array<Slot, ChunkSlots> Slots;
    std::atomic<Chunk *> Next{nullptr};
    Chunk() {
      for (Slot &S : Slots)
        S.store(nullptr, std::memory_order_relaxed);
    }
  };

  Chunk Head;
  Chunk *Tail;
  size_t TailUsed = 0;
  std::vector<Slot *> FreeSlots;
  std::atomic<size_t> Count{0};
};

} // namespace hcsgc

#endif // HCSGC_HEAP_PAGEREGISTRY_H
