//===- heap/PageRegistry.h - Iterable active-page registry -----*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A chunked slot array of active pages that supports lock-free iteration
/// AND lock-free insertion, concurrent with removal. Each PageAllocator
/// shard owns one registry; the per-cycle passes (hotmap reset, EC
/// selection) walk the registries directly instead of copying a snapshot
/// vector under the allocator lock, and the small-page refill path
/// publishes a fresh page without touching the shard lock.
///
/// Structure: a fixed directory of atomic chunk pointers, chunks created
/// on demand with a CAS (the loser deletes its copy). Fresh slots come
/// from a monotonic fetch_add tail cursor; recycled slots from a counted
/// Treiber stack (see TreiberStack.h) whose next-links live in the chunks
/// beside the slots, so free-slot push/pop is lock-free too.
///
/// Concurrency contract:
///  - insert is lock-free and may race other inserts, erases and readers.
///  - erase may race inserts/readers; concurrent erases of *different*
///    indices are safe (in the allocator, erase runs under the owning
///    shard's lock, which also guarantees each index is erased once).
///  - forEach is wait-free for the reader and may run concurrently with
///    insert/erase. Slots are atomic: an iterator sees each registered
///    page at most once per pass; pages inserted during the pass may or
///    may not be seen (callers filter by allocSeq), and pages erased
///    during the pass may still be visited (erase does not destroy the
///    Page — destruction is the caller's schedule to prove).
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_HEAP_PAGEREGISTRY_H
#define HCSGC_HEAP_PAGEREGISTRY_H

#include "heap/TreiberStack.h"
#include "support/Compiler.h"

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace hcsgc {

class Page;

/// Iterable set of Page pointers with stable, recyclable, index-addressed
/// slots. insert/forEach are lock-free.
class PageRegistry {
public:
  static constexpr uint32_t InvalidIndex = CountedIndexStack::Nil;

  PageRegistry() {
    for (auto &C : Chunks)
      C.store(nullptr, std::memory_order_relaxed);
  }
  ~PageRegistry() {
    for (auto &C : Chunks)
      delete C.load(std::memory_order_relaxed);
  }

  PageRegistry(const PageRegistry &) = delete;
  PageRegistry &operator=(const PageRegistry &) = delete;

  /// Publishes \p P in a free slot without any lock. \returns the slot
  /// index for the matching erase().
  uint32_t insert(Page *P) {
    uint32_t Idx = FreeSlots.pop([this](uint32_t I) -> std::atomic<uint32_t> & {
      return linkAt(I);
    });
    if (Idx == InvalidIndex) {
      Idx = FreshTail.fetch_add(1, std::memory_order_relaxed);
      if (Idx >= MaxChunks * ChunkSlots)
        fatalError("page registry exhausted");
    }
    chunkFor(Idx).Slots[Idx % ChunkSlots].store(P, std::memory_order_release);
    Count.fetch_add(1, std::memory_order_relaxed);
    return Idx;
  }

  /// Unpublishes the page at \p Idx and recycles the slot. Safe
  /// concurrent with inserts and readers; the caller guarantees each
  /// index is erased at most once per insert (the allocator holds the
  /// owning shard's lock here).
  void erase(uint32_t Idx) {
    chunkFor(Idx).Slots[Idx % ChunkSlots].store(nullptr,
                                                std::memory_order_release);
    Count.fetch_sub(1, std::memory_order_relaxed);
    FreeSlots.push(Idx, [this](uint32_t I) -> std::atomic<uint32_t> & {
      return linkAt(I);
    });
  }

  /// Invokes \p Fn on every registered page. Lock-free; safe concurrent
  /// with insert/erase (see the file comment for the visibility contract).
  /// A chunk whose directory entry is still null mid-creation is skipped —
  /// its slots cannot hold published pages yet.
  template <typename Fn> void forEach(Fn &&F) const {
    size_t Limit = FreshTail.load(std::memory_order_acquire);
    for (size_t CI = 0; CI * ChunkSlots < Limit && CI < MaxChunks; ++CI) {
      const Chunk *C = Chunks[CI].load(std::memory_order_acquire);
      if (!C)
        continue;
      for (const auto &S : C->Slots)
        if (Page *P = S.load(std::memory_order_acquire))
          F(*P);
    }
  }

  /// Registered page count (relaxed; exact only while quiescent).
  size_t sizeApprox() const {
    return Count.load(std::memory_order_relaxed);
  }

private:
  static constexpr size_t ChunkSlots = 256;
  /// 1024 chunks x 256 slots = 256K pages per shard registry; at the
  /// 64 KiB minimum page size that is 16 GiB of small pages per shard —
  /// far past the address-space reservation.
  static constexpr size_t MaxChunks = 1024;

  struct Chunk {
    std::array<std::atomic<Page *>, ChunkSlots> Slots;
    std::array<std::atomic<uint32_t>, ChunkSlots> NextFree;
    Chunk() {
      for (auto &S : Slots)
        S.store(nullptr, std::memory_order_relaxed);
      for (auto &L : NextFree)
        L.store(CountedIndexStack::Nil, std::memory_order_relaxed);
    }
  };

  /// Returns the chunk covering \p Idx, creating it on first use. The
  /// creation CAS makes racing inserters agree on one chunk; the release
  /// order publishes the constructor's stores to forEach's acquire load.
  Chunk &chunkFor(uint32_t Idx) {
    std::atomic<Chunk *> &Dir = Chunks[Idx / ChunkSlots];
    Chunk *C = Dir.load(std::memory_order_acquire);
    if (HCSGC_UNLIKELY(!C)) {
      Chunk *Fresh = new Chunk();
      if (Dir.compare_exchange_strong(C, Fresh, std::memory_order_acq_rel,
                                      std::memory_order_acquire))
        return *Fresh;
      delete Fresh; // another inserter won the race
    }
    return *C;
  }

  /// Free-stack link for \p Idx; the chunk exists (the index was handed
  /// out before it could be erased).
  std::atomic<uint32_t> &linkAt(uint32_t Idx) {
    return Chunks[Idx / ChunkSlots]
        .load(std::memory_order_acquire)
        ->NextFree[Idx % ChunkSlots];
  }

  std::array<std::atomic<Chunk *>, MaxChunks> Chunks;
  std::atomic<uint32_t> FreshTail{0};
  CountedIndexStack FreeSlots;
  std::atomic<size_t> Count{0};
};

} // namespace hcsgc

#endif // HCSGC_HEAP_PAGEREGISTRY_H
