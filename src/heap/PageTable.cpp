//===- heap/PageTable.cpp - Address-to-page lookup --------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "heap/PageTable.h"

#include "heap/Page.h"

using namespace hcsgc;

PageTable::PageTable(uintptr_t Base, size_t ReservedBytes, size_t UnitBytes)
    : Base(Base), Reserved(ReservedBytes),
      UnitShift(log2Floor(UnitBytes)) {
  assert(isPowerOf2(UnitBytes) && "unit size must be a power of two");
  size_t NumSlots = divideCeil(ReservedBytes, UnitBytes);
  Slots = std::vector<std::atomic<Page *>>(NumSlots);
  for (auto &S : Slots)
    S.store(nullptr, std::memory_order_relaxed);
}

void PageTable::install(Page *P, size_t Units) {
  size_t First = (P->begin() - Base) >> UnitShift;
  for (size_t I = 0; I < Units; ++I)
    Slots[First + I].store(P, std::memory_order_release);
}

void PageTable::remove(uintptr_t Begin, size_t Units) {
  size_t First = (Begin - Base) >> UnitShift;
  for (size_t I = 0; I < Units; ++I)
    Slots[First + I].store(nullptr, std::memory_order_release);
}
