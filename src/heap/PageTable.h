//===- heap/PageTable.h - Address-to-page lookup ---------------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps heap addresses to their owning Page. The heap is one contiguous
/// reservation carved into small-page-sized units, so lookup is a single
/// shift and indexed load — cheap enough to sit on the load-barrier slow
/// path. Multi-unit (medium/large) pages occupy several consecutive slots.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_HEAP_PAGETABLE_H
#define HCSGC_HEAP_PAGETABLE_H

#include "support/MathExtras.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

namespace hcsgc {

class Page;

/// Flat page table over the heap reservation.
class PageTable {
public:
  /// \param Base start of the heap reservation.
  /// \param ReservedBytes size of the reservation.
  /// \param UnitBytes small page size (power of two).
  PageTable(uintptr_t Base, size_t ReservedBytes, size_t UnitBytes);

  /// \returns the page owning \p Addr, or nullptr for unmapped units.
  Page *lookup(uintptr_t Addr) const {
    assert(Addr >= Base && Addr < Base + Reserved &&
           "address outside heap reservation");
    return Slots[(Addr - Base) >> UnitShift].load(
        std::memory_order_acquire);
  }

  /// Installs \p P in the \p Units consecutive slots starting at its
  /// begin address.
  void install(Page *P, size_t Units);

  /// Clears the \p Units slots covering \p Begin.
  void remove(uintptr_t Begin, size_t Units);

  bool covers(uintptr_t Addr) const {
    return Addr >= Base && Addr < Base + Reserved;
  }

private:
  uintptr_t Base;
  size_t Reserved;
  unsigned UnitShift;
  std::vector<std::atomic<Page *>> Slots;
};

} // namespace hcsgc

#endif // HCSGC_HEAP_PAGETABLE_H
