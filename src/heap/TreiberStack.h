//===- heap/TreiberStack.h - Counted-head lock-free index stack -*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lock-free Treiber stack over 32-bit indices with a counted (versioned)
/// head, used for the allocator's per-shard cached-free-unit lists and the
/// PageRegistry's free-slot recycling. The stack itself stores no nodes:
/// next-links live in caller-owned side storage (one std::atomic<uint32_t>
/// per index), passed in as an accessor. Keeping the links out of the
/// managed memory matters for the free-unit use: a stale popper must never
/// dereference page memory that a winner has already handed to a mutator —
/// with side links it only ever touches always-atomic link words, and its
/// CAS then fails on the version counter.
///
/// ABA / memory-ordering argument (INTERNALS.md §11 walks through this):
///
///  - Head packs (version:32, index:32) into one 64-bit word. Every
///    successful push/pop/popAll CAS bumps the version, so a head value
///    can never recur even if the same index returns to the top between a
///    rival's load and its CAS — the classic Treiber ABA (pop A, rival
///    pops A and B and re-pushes A; naive CAS succeeds and installs B's
///    stale link) is ruled out by construction. The version is 32 bits:
///    wraparound needs 2^32 successful operations inside one rival's
///    load-to-CAS window, which cannot happen with bounded thread counts.
///
///  - push stores the link (relaxed) before a release CAS on Head; pop and
///    popAll load Head with acquire. Every intermediate head transition is
///    itself a read-modify-write, so each pusher's release heads a release
///    sequence that later RMWs extend; an acquire load of any descendant
///    head value therefore synchronizes with *every* push below it, making
///    all link stores — and everything the pushing thread wrote into the
///    managed memory before pushing — visible to the popper. That pair is
///    the handoff edge for recycled page units: the popper may memset and
///    reuse the unit without further synchronization.
///
///  - Link loads in pop can be relaxed: the link was written either by the
///    push observed via the acquire above, or by this thread. The CAS
///    failure ordering is relaxed (the retry re-reads everything).
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_HEAP_TREIBERSTACK_H
#define HCSGC_HEAP_TREIBERSTACK_H

#include <atomic>
#include <cstdint>

namespace hcsgc {

/// Lock-free LIFO of uint32_t indices with external link storage.
/// The LinkFn passed to each operation maps an index to its
/// std::atomic<uint32_t> next-link; all calls on one stack must use the
/// same underlying storage.
class CountedIndexStack {
public:
  /// Sentinel for "no index" (empty stack / end of chain).
  static constexpr uint32_t Nil = UINT32_MAX;

  CountedIndexStack() = default;
  CountedIndexStack(const CountedIndexStack &) = delete;
  CountedIndexStack &operator=(const CountedIndexStack &) = delete;

  /// Pushes \p Idx. The caller must own \p Idx exclusively (it is not on
  /// the stack) and have finished all writes to the memory it denotes.
  template <typename LinkFn> void push(uint32_t Idx, LinkFn &&LinkAt) {
    uint64_t Cur = Head.load(std::memory_order_relaxed);
    for (;;) {
      LinkAt(Idx).store(indexOf(Cur), std::memory_order_relaxed);
      uint64_t Next = pack(versionOf(Cur) + 1, Idx);
      if (Head.compare_exchange_weak(Cur, Next, std::memory_order_release,
                                     std::memory_order_relaxed))
        break;
    }
    Size.fetch_add(1, std::memory_order_relaxed);
  }

  /// Pops the most recently pushed index. \returns Nil if empty. On
  /// success the caller owns the index exclusively.
  template <typename LinkFn> uint32_t pop(LinkFn &&LinkAt) {
    uint64_t Cur = Head.load(std::memory_order_acquire);
    for (;;) {
      uint32_t Idx = indexOf(Cur);
      if (Idx == Nil)
        return Nil;
      uint32_t Link = LinkAt(Idx).load(std::memory_order_relaxed);
      uint64_t Next = pack(versionOf(Cur) + 1, Link);
      if (Head.compare_exchange_weak(Cur, Next, std::memory_order_acquire,
                                     std::memory_order_acquire)) {
        Size.fetch_sub(1, std::memory_order_relaxed);
        return Idx;
      }
    }
  }

  /// Detaches the whole chain in one CAS and returns its head index (Nil
  /// if empty). The caller walks the now-private chain via the links and
  /// must call noteDrained with the walked count to keep sizeApprox sane.
  uint32_t popAll() {
    uint64_t Cur = Head.load(std::memory_order_acquire);
    for (;;) {
      uint32_t Idx = indexOf(Cur);
      if (Idx == Nil)
        return Nil;
      uint64_t Next = pack(versionOf(Cur) + 1, Nil);
      if (Head.compare_exchange_weak(Cur, Next, std::memory_order_acquire,
                                     std::memory_order_acquire))
        return Idx;
    }
  }

  /// Subtracts \p N popped-via-popAll indices from the size counter.
  void noteDrained(uint32_t N) {
    Size.fetch_sub(N, std::memory_order_relaxed);
  }

  /// Approximate element count: exact while quiescent, may transiently
  /// run ahead/behind under concurrency (push bumps it after the CAS,
  /// popAll's drain is deferred to the walk). Policy use only.
  size_t sizeApprox() const {
    int64_t N = Size.load(std::memory_order_relaxed);
    return N > 0 ? static_cast<size_t>(N) : 0;
  }

  bool emptyApprox() const {
    return indexOf(Head.load(std::memory_order_relaxed)) == Nil;
  }

private:
  static constexpr uint64_t pack(uint32_t Version, uint32_t Idx) {
    return (static_cast<uint64_t>(Version) << 32) | Idx;
  }
  static constexpr uint32_t indexOf(uint64_t H) {
    return static_cast<uint32_t>(H);
  }
  static constexpr uint32_t versionOf(uint64_t H) {
    return static_cast<uint32_t>(H >> 32);
  }

  std::atomic<uint64_t> Head{pack(0, Nil)};
  /// Signed so a popAll drain racing a push cannot wrap.
  std::atomic<int64_t> Size{0};
};

} // namespace hcsgc

#endif // HCSGC_HEAP_TREIBERSTACK_H
