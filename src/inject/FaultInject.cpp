//===- inject/FaultInject.cpp - Deterministic fault-point registry ----------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "inject/FaultInject.h"

#include <chrono>
#include <thread>

using namespace hcsgc;

FaultRegistry &FaultRegistry::instance() {
  static FaultRegistry R;
  return R;
}

void FaultRegistry::arm(const FaultPlan &NewPlan) {
  // Disarm first so no site reads a half-installed plan; arm/disarm are
  // harness operations, sites only ever observe armed-with-stable-plan.
  Armed.store(false, std::memory_order_release);
  Plan = NewPlan;
  for (SiteState &S : Sites) {
    S.Hits.store(0, std::memory_order_relaxed);
    S.Fires.store(0, std::memory_order_relaxed);
  }
  Armed.store(true, std::memory_order_release);
}

/// SplitMix64 finalizer over (seed, site, ordinal): the decision stream
/// of every site is decorrelated from every other site's and from the
/// workload RNGs seeded off the same torture seed.
static uint64_t decisionBits(uint64_t Seed, unsigned Site,
                             uint64_t Ordinal) {
  uint64_t Z = Seed ^ (0x9E3779B97F4A7C15ull * (Site + 1)) ^
               (0xBF58476D1CE4E5B9ull * (Ordinal + 1));
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

bool FaultRegistry::decide(FailPoint P, uint64_t Ordinal,
                           uint32_t &DelayUs) const {
  const FaultSpec &Spec = Plan.spec(P);
  DelayUs = 0;
  if (Ordinal < Spec.SkipFirst || Spec.Probability <= 0.0)
    return false;
  uint64_t Bits = decisionBits(Plan.seed(), static_cast<unsigned>(P),
                               Ordinal);
  // Top 53 bits -> uniform double in [0,1).
  double U = static_cast<double>(Bits >> 11) * 0x1.0p-53;
  if (U >= Spec.Probability)
    return false;
  if (Spec.MaxDelayUs > 0)
    DelayUs = 1 + static_cast<uint32_t>(Bits % Spec.MaxDelayUs);
  return true;
}

bool FaultRegistry::shouldFail(FailPoint P) {
  SiteState &S = Sites[static_cast<unsigned>(P)];
  uint64_t Ordinal = S.Hits.fetch_add(1, std::memory_order_relaxed);
  uint32_t DelayUs;
  if (!decide(P, Ordinal, DelayUs))
    return false;
  // MaxFires caps total fires; the counter may transiently overshoot
  // under contention but only values below the cap grant a fire.
  if (S.Fires.fetch_add(1, std::memory_order_relaxed) >=
      Plan.spec(P).MaxFires) {
    S.Fires.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

uint32_t FaultRegistry::delayUs(FailPoint P) {
  SiteState &S = Sites[static_cast<unsigned>(P)];
  uint64_t Ordinal = S.Hits.fetch_add(1, std::memory_order_relaxed);
  uint32_t DelayUs;
  if (!decide(P, Ordinal, DelayUs) || DelayUs == 0)
    return 0;
  if (S.Fires.fetch_add(1, std::memory_order_relaxed) >=
      Plan.spec(P).MaxFires) {
    S.Fires.fetch_sub(1, std::memory_order_relaxed);
    return 0;
  }
  return DelayUs;
}

void hcsgc::faultSleep(uint32_t Us) {
  if (Us > 0)
    std::this_thread::sleep_for(std::chrono::microseconds(Us));
}
