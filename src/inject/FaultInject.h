//===- inject/FaultInject.h - Deterministic fault-point registry *- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seeded fault injection for the heap/GC stack. Each
/// named FailPoint is a site compiled into a slow path (page allocation,
/// TLAB refill, relocation-target allocation, phase boundaries); a
/// FaultPlan armed on the global FaultRegistry decides, per site and per
/// hit ordinal, whether the site reports failure (or, for delay points,
/// how long it sleeps). Decisions are a pure function of
/// (plan seed, fail point, hit ordinal), so a torture run with a fixed
/// seed injects the same faults at the same allocation counts regardless
/// of thread interleaving — the schedule varies, the adversity does not.
///
/// Mirrors the HCSGC_TRACE cost model: a disarmed registry costs one
/// relaxed atomic load and a predicted-not-taken branch per site, and
/// -DHCSGC_FAULT_DISABLED compiles every site out entirely.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_INJECT_FAULTINJECT_H
#define HCSGC_INJECT_FAULTINJECT_H

#include "support/Compiler.h"

#include <array>
#include <atomic>
#include <cstdint>

namespace hcsgc {

/// Named injection sites. Keep traceFailPointName in sync.
enum class FailPoint : unsigned {
  /// PageAllocator::allocatePage, immediately before takeRun: synthetic
  /// address-space exhaustion. Denies mutator TLAB pages, shared
  /// medium/large pages, and the *primary* relocation-target path (the
  /// relocation reserve is deliberately not covered — it is the
  /// mechanism under test).
  PageAlloc,
  /// GcHeap::allocateRelocTarget: deny the forced primary allocation so
  /// the reserved relocation-target pool must satisfy the request.
  RelocTargetAlloc,
  /// Mutator TLAB refill in allocRaw: the refill reports failure without
  /// consuming address space, driving the stall/backoff path.
  TlabRefill,
  /// GcDriver phase boundaries: bounded randomized sleep for schedule
  /// fuzzing (uses FaultSpec::MaxDelayUs).
  PhaseDelay,
  /// SafepointManager::beginPause/endPause: bounded randomized sleep
  /// stretching the pause protocol windows.
  SafepointDelay,
  NumPoints
};

inline constexpr unsigned NumFailPoints =
    static_cast<unsigned>(FailPoint::NumPoints);

/// Stable names for reports and torture logs.
inline const char *failPointName(FailPoint P) {
  switch (P) {
  case FailPoint::PageAlloc:
    return "page_alloc";
  case FailPoint::RelocTargetAlloc:
    return "reloc_target_alloc";
  case FailPoint::TlabRefill:
    return "tlab_refill";
  case FailPoint::PhaseDelay:
    return "phase_delay";
  case FailPoint::SafepointDelay:
    return "safepoint_delay";
  case FailPoint::NumPoints:
    break;
  }
  return "unknown";
}

/// Per-site behavior of a plan. All-zero means the site never fires.
struct FaultSpec {
  /// Chance in [0,1] that an eligible hit fires (1.0 = every hit).
  double Probability = 0.0;
  /// Hits to let through before the site becomes eligible.
  uint64_t SkipFirst = 0;
  /// Cap on total fires (UINT64_MAX = unlimited).
  uint64_t MaxFires = UINT64_MAX;
  /// Delay points: a fire sleeps a deterministic duration in
  /// [1, MaxDelayUs] microseconds. Ignored by failure points.
  uint32_t MaxDelayUs = 0;
};

/// A seeded set of per-site specs. Cheap value type; arm it on the
/// registry (preferably via ScopedFaultPlan).
class FaultPlan {
public:
  explicit FaultPlan(uint64_t Seed = 0) : Seed(Seed) {}

  FaultPlan &set(FailPoint P, FaultSpec S) {
    Specs[static_cast<unsigned>(P)] = S;
    return *this;
  }
  const FaultSpec &spec(FailPoint P) const {
    return Specs[static_cast<unsigned>(P)];
  }
  uint64_t seed() const { return Seed; }

private:
  uint64_t Seed;
  std::array<FaultSpec, NumFailPoints> Specs{};
};

/// Process-global fault state queried by the HCSGC_INJECT_* macros.
/// Arm/disarm are test-harness operations (not thread-safe against each
/// other); shouldFail/delayUs are lock-free and safe from any thread.
class FaultRegistry {
public:
  static FaultRegistry &instance();

  /// Cheap gate read on every instrumented site.
  bool armed() const { return Armed.load(std::memory_order_relaxed); }

  /// Installs \p Plan and zeroes all hit/fire counters. Call only while
  /// no instrumented site can be running (e.g. before attaching
  /// mutators, or between runtimes).
  void arm(const FaultPlan &Plan);

  /// Deactivates injection; counters are preserved for inspection.
  void disarm() { Armed.store(false, std::memory_order_release); }

  /// Decides deterministically whether the current hit of \p P fires.
  /// Always accounts the hit.
  bool shouldFail(FailPoint P);

  /// Delay-point variant: \returns the sleep in microseconds for this
  /// hit (0 = no delay).
  uint32_t delayUs(FailPoint P);

  // --- Introspection (tests, torture reports) ---------------------------

  uint64_t hits(FailPoint P) const {
    return Sites[static_cast<unsigned>(P)].Hits.load(
        std::memory_order_relaxed);
  }
  uint64_t fires(FailPoint P) const {
    return Sites[static_cast<unsigned>(P)].Fires.load(
        std::memory_order_relaxed);
  }

private:
  FaultRegistry() = default;

  struct SiteState {
    std::atomic<uint64_t> Hits{0};
    std::atomic<uint64_t> Fires{0};
  };

  /// \returns the fire decision for hit ordinal \p Ordinal of \p P and,
  /// via \p DelayUs, the deterministic delay for delay points.
  bool decide(FailPoint P, uint64_t Ordinal, uint32_t &DelayUs) const;

  std::atomic<bool> Armed{false};
  FaultPlan Plan{0};
  std::array<SiteState, NumFailPoints> Sites;
};

/// Sleeps \p Us microseconds (no-op for 0). Out of line so the macro
/// below does not pull <thread> into every instrumented translation
/// unit.
void faultSleep(uint32_t Us);

/// RAII arm/disarm, so a failing test cannot leak an armed plan into the
/// rest of the suite.
class ScopedFaultPlan {
public:
  explicit ScopedFaultPlan(const FaultPlan &Plan) {
    FaultRegistry::instance().arm(Plan);
  }
  ~ScopedFaultPlan() { FaultRegistry::instance().disarm(); }

  ScopedFaultPlan(const ScopedFaultPlan &) = delete;
  ScopedFaultPlan &operator=(const ScopedFaultPlan &) = delete;
};

} // namespace hcsgc

/// Failure-site guard: true when the armed plan injects a failure at
/// \p Point for this hit. Disarmed cost: one relaxed load + branch.
/// Compile out entirely with -DHCSGC_FAULT_DISABLED.
#ifndef HCSGC_FAULT_DISABLED
#define HCSGC_INJECT_FAIL(Point)                                           \
  (HCSGC_UNLIKELY(::hcsgc::FaultRegistry::instance().armed()) &&           \
   ::hcsgc::FaultRegistry::instance().shouldFail(                          \
       ::hcsgc::FailPoint::Point))
#define HCSGC_INJECT_DELAY(Point)                                          \
  do {                                                                     \
    if (HCSGC_UNLIKELY(::hcsgc::FaultRegistry::instance().armed()))        \
      ::hcsgc::faultSleep(::hcsgc::FaultRegistry::instance().delayUs(      \
          ::hcsgc::FailPoint::Point));                                     \
  } while (0)
#else
#define HCSGC_INJECT_FAIL(Point) false
#define HCSGC_INJECT_DELAY(Point)                                          \
  do {                                                                     \
  } while (0)
#endif

#endif // HCSGC_INJECT_FAULTINJECT_H
