//===- observe/HeapSnapshot.cpp - Per-cycle page snapshots --------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "observe/HeapSnapshot.h"

#include "observe/SnapshotLog.h"

#include <algorithm>

using namespace hcsgc;

const char *hcsgc::ecVerdictName(EcVerdict V) {
  switch (V) {
  case EcVerdict::Selected:
    return "selected";
  case EcVerdict::RejectedThreshold:
    return "rejected_threshold";
  case EcVerdict::RejectedBudget:
    return "rejected_budget";
  case EcVerdict::DeadReclaimed:
    return "dead_reclaimed";
  case EcVerdict::PinnedSkipped:
    return "pinned_skipped";
  case EcVerdict::LargeIgnored:
    return "large_ignored";
  }
  return "unknown";
}

double hcsgc::wlbFormula(uint64_t LiveBytes, uint64_t HotBytes,
                         bool Hotness, double ColdConfidence) {
  double Live = static_cast<double>(LiveBytes);
  if (!Hotness)
    return Live;
  double Hot = static_cast<double>(HotBytes);
  double Cold =
      static_cast<double>(LiveBytes > HotBytes ? LiveBytes - HotBytes : 0);
  if (Hot == 0.0)
    return Cold; // == live bytes: no hot objects to excavate (§3.1.3).
  return Hot + Cold * (1.0 - ColdConfidence);
}

double hcsgc::wlbTempFormula(uint64_t LiveBytes,
                             const uint64_t (&TempBytes)[SnapTempTiers],
                             bool Hotness, double ColdConfidence) {
  if (!Hotness)
    return static_cast<double>(LiveBytes);
  uint64_t Heated = TempBytes[1] + TempBytes[2] + TempBytes[3];
  if (Heated == 0)
    return static_cast<double>(LiveBytes); // nothing to excavate toward
  // w(t) = 1 - coldConf * ((3 - t) / 3): full confidence discounts tier 0
  // entirely, tier 3 is never discounted, the middle tiers interpolate.
  // The (3 - t) / 3 factor is parenthesized so tiers 0 and 3 use the
  // EXACT constants 1.0 and 0.0 (cc * 1.0 == cc and cc * 0.0 == 0.0 for
  // every confidence value); with x + 0.0 == x and commutative IEEE
  // addition, the binary {0,3} case is then bit-identical to
  // wlbFormula's Hot + Cold * (1 - coldConf).
  double W = 0.0;
  for (unsigned T = 0; T < SnapTempTiers; ++T)
    W += static_cast<double>(TempBytes[T]) *
         (1.0 - ColdConfidence * (static_cast<double>(3 - T) / 3.0));
  return W;
}

namespace {
struct ReplayCand {
  uint64_t Begin;
  uint64_t Size;
  uint64_t Live;
  double Weight;
};
} // namespace

/// Mirror of EcSelector's selectPrefix: ascending (weight, begin) sort,
/// then the maximal prefix within the budget, extended while the freed
/// bytes stay short of the reclamation demand. The arithmetic runs in
/// the same order over the same doubles, so the result is bit-identical
/// to the live selector's.
static void replayPrefix(std::vector<ReplayCand> &Cands, double Budget,
                         double RequiredFree,
                         std::vector<uint64_t> &Out) {
  std::sort(Cands.begin(), Cands.end(),
            [](const ReplayCand &A, const ReplayCand &B) {
              if (A.Weight != B.Weight)
                return A.Weight < B.Weight;
              return A.Begin < B.Begin;
            });
  double Sum = 0.0, Freed = 0.0;
  for (const ReplayCand &C : Cands) {
    bool WithinBudget = Sum + C.Weight <= Budget;
    bool NeedMemory = Freed < RequiredFree;
    if (!WithinBudget && !NeedMemory)
      break;
    Sum += C.Weight;
    Freed += static_cast<double>(C.Size) - static_cast<double>(C.Live);
    Out.push_back(C.Begin);
  }
}

std::vector<uint64_t> hcsgc::replayEcSelection(const EcAudit &A) {
  std::vector<ReplayCand> Small, Medium;
  std::vector<uint64_t> Out;
  for (const EcAuditEntry &E : A.Entries) {
    // Dead pages are reclaimed without relocation; pinned pages are
    // defensively skipped — neither reaches the candidate lists.
    if (E.LiveBytes == 0 || E.Pinned)
      continue;
    switch (E.SizeClass) {
    case SnapSizeClass::Small: {
      if (A.RelocateAll) {
        Small.push_back({E.PageBegin, E.PageSize, E.LiveBytes, 0.0});
        break;
      }
      double W = A.Temperature
                     ? wlbTempFormula(E.LiveBytes, E.TempBytes,
                                      A.Hotness != 0, A.ColdConfidence)
                     : wlbFormula(E.LiveBytes, E.HotBytes, A.Hotness != 0,
                                  A.ColdConfidence);
      if (W / static_cast<double>(E.PageSize) <= A.EvacLiveThreshold)
        Small.push_back({E.PageBegin, E.PageSize, E.LiveBytes, W});
      break;
    }
    case SnapSizeClass::Medium: {
      double W = static_cast<double>(E.LiveBytes);
      if (W / static_cast<double>(E.PageSize) <= A.EvacLiveThreshold)
        Medium.push_back({E.PageBegin, E.PageSize, E.LiveBytes, W});
      break;
    }
    case SnapSizeClass::Large:
      break; // Live large pages are never relocated.
    }
  }
  if (A.RelocateAll) {
    // §3.1.1: every eligible small page, no sorting or budget.
    for (const ReplayCand &C : Small)
      Out.push_back(C.Begin);
  } else {
    replayPrefix(Small, A.BudgetSmall, A.RequiredFree, Out);
  }
  replayPrefix(Medium, A.BudgetMedium, 0.0, Out);
  std::sort(Out.begin(), Out.end());
  return Out;
}

std::vector<uint64_t> hcsgc::auditSelectedPages(const EcAudit &A) {
  std::vector<uint64_t> Out;
  for (const EcAuditEntry &E : A.Entries)
    if (E.Verdict == EcVerdict::Selected)
      Out.push_back(E.PageBegin);
  std::sort(Out.begin(), Out.end());
  return Out;
}

// --- SnapshotRing ----------------------------------------------------------

uint64_t SnapshotRing::push(CycleSnapshot &&S) {
  uint64_t Dropped = 0;
  Ring.push_back(std::move(S));
  while (Ring.size() > Capacity) {
    Dropped += Ring.front().Pages.size();
    Ring.pop_front();
  }
  return Dropped;
}

// --- HeapSnapshotter -------------------------------------------------------

HeapSnapshotter::~HeapSnapshotter() {
  if (Stream)
    std::fclose(Stream);
}

void HeapSnapshotter::configure(bool Enabled, size_t RingCapacity,
                                const std::string &JsonlPath) {
  std::lock_guard<std::mutex> G(Lock);
  Ring.setCapacity(RingCapacity);
  if (Stream) {
    std::fclose(Stream);
    Stream = nullptr;
  }
  if (!JsonlPath.empty())
    Stream = std::fopen(JsonlPath.c_str(), "w");
  EnabledFlag.store(Enabled, std::memory_order_relaxed);
}

void HeapSnapshotter::bindMetrics(MetricsRegistry &MR) {
  Captures = &MR.counter("snapshot.captures");
  PagesRecorded = &MR.counter("snapshot.pages_recorded");
  DroppedRecords = &MR.counter("snapshot.dropped_records");
}

void HeapSnapshotter::commit(CycleSnapshot &&S) {
  size_t NumPages = S.Pages.size();
  uint64_t Dropped;
  {
    std::lock_guard<std::mutex> G(Lock);
    if (Stream)
      writeSnapshotJsonl(S, Stream);
    Dropped = Ring.push(std::move(S));
  }
  if (Captures)
    Captures->increment();
  if (PagesRecorded)
    PagesRecorded->add(NumPages);
  if (DroppedRecords && Dropped)
    DroppedRecords->add(Dropped);
}

std::vector<CycleSnapshot> HeapSnapshotter::history() const {
  std::lock_guard<std::mutex> G(Lock);
  return Ring.history();
}

bool HeapSnapshotter::dumpTo(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  for (const CycleSnapshot &S : history())
    writeSnapshotJsonl(S, F);
  std::fclose(F);
  return true;
}
