//===- observe/HeapSnapshot.h - Per-cycle page snapshots -------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heap locality observatory's data model: at each cycle boundary the
/// driver captures one compact record per active page (live/hot bytes,
/// WLB, state, pin, relocation attribution) plus — after EC selection —
/// the selector's full decision audit: every candidate page's WLB inputs
/// and the accept/reject verdict. Snapshots land in a bounded in-memory
/// ring and, optionally, stream to a JSONL file (SnapshotLog.h).
///
/// Everything here is plain data, deliberately free of heap types: the
/// observe layer sits below hcsgc_heap in the link order (heap links
/// observe for bindMetrics), so the capture routine that walks real Page
/// objects lives in the gc layer (GcHeap::captureSnapshot) and only the
/// POD results flow down here. That also makes the EC replay below a
/// pure function a CLI (tools/heapscope) can run offline from a log.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_OBSERVE_HEAPSNAPSHOT_H
#define HCSGC_OBSERVE_HEAPSNAPSHOT_H

#include "observe/Metrics.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace hcsgc {

/// Where in the cycle a snapshot was taken.
enum class SnapshotPoint : uint8_t {
  /// Right after mark termination: livemaps/hotmaps are final for this
  /// cycle, EC selection has not run yet.
  AfterMark = 0,
  /// Right after EC selection: selected pages are RelocSource, the
  /// decision audit rides along.
  AfterEc = 1,
};

inline const char *snapshotPointName(SnapshotPoint P) {
  return P == SnapshotPoint::AfterMark ? "after_mark" : "after_ec";
}

/// Page size class as recorded in snapshots (mirrors PageSizeClass
/// without including heap headers).
enum class SnapSizeClass : uint8_t { Small = 0, Medium = 1, Large = 2 };

inline const char *snapSizeClassName(SnapSizeClass C) {
  switch (C) {
  case SnapSizeClass::Small:
    return "small";
  case SnapSizeClass::Medium:
    return "medium";
  case SnapSizeClass::Large:
    return "large";
  }
  return "unknown";
}

/// Page lifecycle state as recorded in snapshots (mirrors PageState).
enum class SnapPageState : uint8_t {
  Active = 0,
  RelocSource = 1,
  Quarantined = 2,
};

inline const char *snapPageStateName(SnapPageState S) {
  switch (S) {
  case SnapPageState::Active:
    return "active";
  case SnapPageState::RelocSource:
    return "reloc_source";
  case SnapPageState::Quarantined:
    return "quarantined";
  }
  return "unknown";
}

/// The selector's verdict on one considered page.
enum class EcVerdict : uint8_t {
  /// Entered the evacuation candidate set.
  Selected = 0,
  /// (Weighted) live ratio above EvacLiveThreshold.
  RejectedThreshold = 1,
  /// Passed the filter but fell outside the sorted budget prefix.
  RejectedBudget = 2,
  /// Fully dead; reclaimed without relocation.
  DeadReclaimed = 3,
  /// Skipped because it is a pinned in-use allocation target (defensive
  /// release-build path; asserts fire in debug builds).
  PinnedSkipped = 4,
  /// Live large page; never a relocation candidate.
  LargeIgnored = 5,
};

const char *ecVerdictName(EcVerdict V);

/// §3.1.3's weighted-live-bytes formula, as one pure function shared by
/// the selector, the snapshot capture, the replay below and the tests:
///
///   WLB = live bytes                       if HOTNESS is off
///   WLB = cold bytes (== live bytes)       if hot bytes == 0
///   WLB = hot + cold * (1 - coldConf)      otherwise
double wlbFormula(uint64_t LiveBytes, uint64_t HotBytes, bool Hotness,
                  double ColdConfidence);

/// Number of temperature tiers in snapshot records (mirrors
/// Page::TempTiers without including heap headers).
constexpr unsigned SnapTempTiers = 4;

/// TEMPERATURE's confidence-weighted generalization of wlbFormula:
///
///   WLB = live bytes                        if HOTNESS is off
///   WLB = live bytes                        if no byte is above tier 0
///   WLB = sum_t bytes[t] * (1 - coldConf * (3 - t) / 3)   otherwise
///
/// With only tiers {0, 3} populated (1-bit temperature) this reduces
/// BIT-EXACTLY to wlbFormula(live, bytes[3], ...): the tier-3 weight is
/// exactly 1.0, the tier-0 weight exactly (1 - coldConf), the empty
/// middle tiers add exact zeros, and IEEE addition is commutative.
double wlbTempFormula(uint64_t LiveBytes,
                      const uint64_t (&TempBytes)[SnapTempTiers],
                      bool Hotness, double ColdConfidence);

/// Destination tier of a relocation-target page as recorded in
/// snapshots (mirrors PageTier).
enum class SnapPageTier : uint8_t { None = 0, Hot = 1, Warm = 2, Cold = 3 };

inline const char *snapPageTierName(SnapPageTier T) {
  switch (T) {
  case SnapPageTier::None:
    return "none";
  case SnapPageTier::Hot:
    return "hot";
  case SnapPageTier::Warm:
    return "warm";
  case SnapPageTier::Cold:
    return "cold";
  }
  return "unknown";
}

/// One considered page in the EC decision audit: the exact inputs the
/// selector saw and what it decided.
struct EcAuditEntry {
  uint64_t PageBegin = 0;
  uint64_t PageSize = 0;
  uint64_t LiveBytes = 0;
  uint64_t HotBytes = 0;
  /// The weight selection actually used: WLB for small pages, plain live
  /// bytes for medium, 0.0 under RELOCATEALLSMALLPAGES.
  double Weight = 0.0;
  /// Per-tier live bytes the selector read when TEMPERATURE was on (all
  /// zero otherwise); the replay recomputes Weight from these.
  uint64_t TempBytes[SnapTempTiers] = {0, 0, 0, 0};
  SnapSizeClass SizeClass = SnapSizeClass::Small;
  uint8_t Pinned = 0;
  EcVerdict Verdict = EcVerdict::RejectedThreshold;
};

/// One cycle's complete EC decision record: the knob values in force plus
/// every considered page. Enough to re-run the selection offline.
struct EcAudit {
  uint64_t Cycle = 0;
  double ColdConfidence = 0.0; ///< Effective value (auto-tuner aware).
  double EvacLiveThreshold = 0.0;
  double BudgetSmall = 0.0;  ///< 0 under RELOCATEALLSMALLPAGES.
  double BudgetMedium = 0.0;
  double RequiredFree = 0.0; ///< Reclamation demand (small pass only).
  uint8_t Hotness = 0;
  uint8_t RelocateAll = 0;
  /// TEMPERATURE was on: small-page weights came from wlbTempFormula
  /// over the per-entry TempBytes tiers.
  uint8_t Temperature = 0;
  std::vector<EcAuditEntry> Entries;
};

/// Re-runs EC selection from the audit's raw inputs alone — same filter,
/// same (weight, address) sort, same budget/required-free prefix walk as
/// gc/EcSelector.cpp, double-for-double. \returns the selected page
/// begins, sorted ascending. Comparing against auditSelectedPages proves
/// the live selector honored the recorded formula.
std::vector<uint64_t> replayEcSelection(const EcAudit &A);

/// \returns the page begins the audit says were selected, sorted.
std::vector<uint64_t> auditSelectedPages(const EcAudit &A);

/// One active page at capture time.
struct PageRecord {
  uint64_t PageBegin = 0;
  uint64_t PageSize = 0;
  uint64_t UsedBytes = 0;
  uint64_t LiveBytes = 0;
  uint64_t HotBytes = 0;
  uint64_t AllocSeq = 0;
  /// Bytes relocated OUT of this page since it entered the relocation
  /// set, split by acting thread kind. Both zero on a RelocSource page
  /// mean its evacuation is still fully deferred (LAZYRELOCATE window).
  uint64_t RelocOutBytesGc = 0;
  uint64_t RelocOutBytesMutator = 0;
  /// WLB under the effective COLDCONFIDENCE at capture.
  double Wlb = 0.0;
  /// Per-temperature-tier live bytes (TEMPERATURE only, else zeros).
  uint64_t TempBytes[SnapTempTiers] = {0, 0, 0, 0};
  SnapSizeClass SizeClass = SnapSizeClass::Small;
  SnapPageState State = SnapPageState::Active;
  uint8_t Pinned = 0;
  /// Currently a member of a relocation set (state == RelocSource).
  uint8_t EcSelected = 0;
  /// Destination tier (SnapPageTier) if the page served as a relocation
  /// target; None otherwise.
  uint8_t Tier = 0;
};

/// One allocation site's cumulative profile at capture time
/// (SITEPROFILING only). Plain data mirroring gc/SiteProfile.h's
/// SiteStats; Route is the SiteRoute value (0 hot, 1 warm, 2 cold).
struct SiteRecord {
  uint64_t SiteIdNum = 0;
  std::string Name;
  uint64_t AllocatedBytes = 0;
  uint64_t SurvivedBytes = 0;
  uint64_t HotBytes = 0;
  uint64_t RelocatedBytes = 0;
  uint64_t PretenuredBytes = 0;
  double HotEwma = 0.0;
  uint8_t Route = 0;
};

inline const char *snapSiteRouteName(uint8_t Route) {
  switch (Route) {
  case 1:
    return "warm";
  case 2:
    return "cold";
  default:
    return "hot";
  }
}

/// One capture: all active pages at one point of one cycle.
struct CycleSnapshot {
  uint64_t Cycle = 0;
  SnapshotPoint Point = SnapshotPoint::AfterMark;
  uint64_t TimeNs = 0; ///< Trace-session clock at capture.
  double ColdConfidence = 0.0;
  uint8_t Hotness = 0;
  uint8_t Temperature = 0; ///< TEMPERATURE knob in force at capture.
  std::vector<PageRecord> Pages; ///< Sorted by PageBegin.
  /// Per-site profile rows (SITEPROFILING only, else empty). Absent from
  /// pre-site-schema logs — parsers treat a missing array as empty, so
  /// the EC replay (which reads only Pages + Audit) is unaffected.
  std::vector<SiteRecord> Sites;
  bool HasAudit = false; ///< True only at AfterEc with auditing on.
  EcAudit Audit;
};

/// Bounded FIFO of snapshots: pushing past the capacity drops the oldest
/// capture and counts its page records as dropped.
class SnapshotRing {
public:
  explicit SnapshotRing(size_t CapacityCaptures = 128)
      : Capacity(CapacityCaptures ? CapacityCaptures : 1) {}

  void setCapacity(size_t CapacityCaptures) {
    Capacity = CapacityCaptures ? CapacityCaptures : 1;
  }

  /// \returns the number of page records dropped to make room.
  uint64_t push(CycleSnapshot &&S);

  std::vector<CycleSnapshot> history() const {
    return {Ring.begin(), Ring.end()};
  }
  size_t size() const { return Ring.size(); }
  size_t capacity() const { return Capacity; }

private:
  size_t Capacity;
  std::deque<CycleSnapshot> Ring;
};

/// Owns the ring and the optional JSONL stream; the GcHeap holds one and
/// the driver commits through it at the two capture points. The enabled
/// gate is one relaxed load, so a disabled observatory costs nothing on
/// the cycle path. Commit/history synchronize on the snapshotter's own
/// mutex only — capture itself never touches an allocator shard lock
/// (asserted via alloc.shard.lock_acquisitions in the invariant tests).
class HeapSnapshotter {
public:
  HeapSnapshotter() = default;
  ~HeapSnapshotter();

  HeapSnapshotter(const HeapSnapshotter &) = delete;
  HeapSnapshotter &operator=(const HeapSnapshotter &) = delete;

  /// Applies the GcConfig::SnapshotLog* knobs: arms the ring and, when
  /// \p JsonlPath is non-empty, opens the streaming JSONL file.
  void configure(bool Enabled, size_t RingCapacity,
                 const std::string &JsonlPath);

  bool enabled() const {
    return EnabledFlag.load(std::memory_order_relaxed);
  }
  void setEnabled(bool On) {
    EnabledFlag.store(On, std::memory_order_relaxed);
  }

  /// Registers the snapshot.* counters. Called once by the GcHeap ctor
  /// (always, so the metric names exist even when capture is off).
  void bindMetrics(MetricsRegistry &MR);

  /// Appends one capture to the ring (dropping the oldest past capacity)
  /// and streams it to the JSONL file when one is open.
  void commit(CycleSnapshot &&S);

  /// Copy of the retained captures, oldest first.
  std::vector<CycleSnapshot> history() const;

  /// Writes every retained capture as JSONL to \p Path (independent of
  /// the streaming file). \returns false if the file cannot be opened.
  bool dumpTo(const std::string &Path) const;

private:
  std::atomic<bool> EnabledFlag{false};
  mutable std::mutex Lock;
  SnapshotRing Ring;
  std::FILE *Stream = nullptr;
  Counter *Captures = nullptr;
  Counter *PagesRecorded = nullptr;
  Counter *DroppedRecords = nullptr;
};

} // namespace hcsgc

#endif // HCSGC_OBSERVE_HEAPSNAPSHOT_H
