//===- observe/Json.cpp - Minimal JSON value + parser -------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "observe/Json.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

using namespace hcsgc;

const JsonValue &JsonValue::operator[](const std::string &Key) const {
  static const JsonValue Null;
  if (Ty != Type::Object)
    return Null;
  auto It = Obj.find(Key);
  return It == Obj.end() ? Null : It->second;
}

JsonValue JsonValue::makeBool(bool B) {
  JsonValue V;
  V.Ty = Type::Bool;
  V.Bool = B;
  return V;
}
JsonValue JsonValue::makeNumber(double D) {
  JsonValue V;
  V.Ty = Type::Number;
  V.Num = D;
  return V;
}
JsonValue JsonValue::makeString(std::string S) {
  JsonValue V;
  V.Ty = Type::String;
  V.Str = std::move(S);
  return V;
}
JsonValue JsonValue::makeArray(std::vector<JsonValue> A) {
  JsonValue V;
  V.Ty = Type::Array;
  V.Arr = std::move(A);
  return V;
}
JsonValue JsonValue::makeObject(std::map<std::string, JsonValue> O) {
  JsonValue V;
  V.Ty = Type::Object;
  V.Obj = std::move(O);
  return V;
}

namespace {

class Parser {
public:
  Parser(const std::string &Text, std::string &Error)
      : Text(Text), Error(Error) {}

  bool parse(JsonValue &Out) {
    skipWs();
    if (!parseValue(Out))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters after document");
    return true;
  }

private:
  bool fail(const char *Msg) {
    Error = std::string(Msg) + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Word) {
    size_t Len = std::strlen(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return fail("invalid literal");
    Pos += Len;
    return true;
  }

  bool parseValue(JsonValue &Out) {
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject(Out);
    case '[':
      return parseArray(Out);
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = JsonValue::makeString(std::move(S));
      return true;
    }
    case 't':
      if (!literal("true"))
        return false;
      Out = JsonValue::makeBool(true);
      return true;
    case 'f':
      if (!literal("false"))
        return false;
      Out = JsonValue::makeBool(false);
      return true;
    case 'n':
      if (!literal("null"))
        return false;
      Out = JsonValue();
      return true;
    default:
      return parseNumber(Out);
    }
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("invalid value");
    char *End = nullptr;
    std::string Tok = Text.substr(Start, Pos - Start);
    double D = std::strtod(Tok.c_str(), &End);
    if (!End || *End != '\0')
      return fail("malformed number");
    Out = JsonValue::makeNumber(D);
    return true;
  }

  bool parseString(std::string &Out) {
    if (Text[Pos] != '"')
      return fail("expected string");
    ++Pos;
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C == '\\') {
        ++Pos;
        if (Pos >= Text.size())
          return fail("unterminated escape");
        char E = Text[Pos++];
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u': {
          if (Pos + 4 > Text.size())
            return fail("truncated \\u escape");
          unsigned V = 0;
          for (int I = 0; I < 4; ++I) {
            char H = Text[Pos++];
            V <<= 4;
            if (H >= '0' && H <= '9')
              V |= static_cast<unsigned>(H - '0');
            else if (H >= 'a' && H <= 'f')
              V |= static_cast<unsigned>(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              V |= static_cast<unsigned>(H - 'A' + 10);
            else
              return fail("invalid \\u escape");
          }
          // Encode the code point as UTF-8 (surrogate pairs are not
          // produced by our exporter; treat them as-is).
          if (V < 0x80) {
            Out += static_cast<char>(V);
          } else if (V < 0x800) {
            Out += static_cast<char>(0xC0 | (V >> 6));
            Out += static_cast<char>(0x80 | (V & 0x3F));
          } else {
            Out += static_cast<char>(0xE0 | (V >> 12));
            Out += static_cast<char>(0x80 | ((V >> 6) & 0x3F));
            Out += static_cast<char>(0x80 | (V & 0x3F));
          }
          break;
        }
        default:
          return fail("unknown escape");
        }
        continue;
      }
      Out += C;
      ++Pos;
    }
    return fail("unterminated string");
  }

  bool parseArray(JsonValue &Out) {
    ++Pos; // '['
    std::vector<JsonValue> Elems;
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      Out = JsonValue::makeArray(std::move(Elems));
      return true;
    }
    for (;;) {
      skipWs();
      JsonValue V;
      if (!parseValue(V))
        return false;
      Elems.push_back(std::move(V));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated array");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        Out = JsonValue::makeArray(std::move(Elems));
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parseObject(JsonValue &Out) {
    ++Pos; // '{'
    std::map<std::string, JsonValue> Members;
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      Out = JsonValue::makeObject(std::move(Members));
      return true;
    }
    for (;;) {
      skipWs();
      std::string Key;
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key");
      if (!parseString(Key))
        return false;
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != ':')
        return fail("expected ':'");
      ++Pos;
      skipWs();
      JsonValue V;
      if (!parseValue(V))
        return false;
      Members[Key] = std::move(V);
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated object");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        Out = JsonValue::makeObject(std::move(Members));
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  const std::string &Text;
  std::string &Error;
  size_t Pos = 0;
};

} // namespace

bool hcsgc::parseJson(const std::string &Text, JsonValue &Out,
                      std::string &Error) {
  Parser P(Text, Error);
  return P.parse(Out);
}
