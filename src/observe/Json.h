//===- observe/Json.h - Minimal JSON value + parser ------------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately small JSON document model and recursive-descent parser,
/// sufficient for reading back the Chrome trace_event files the exporter
/// writes (tools/gctrace, the round-trip test). No external dependency;
/// numbers are stored as doubles (every value the exporter emits fits a
/// double exactly — addresses are written as hex strings).
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_OBSERVE_JSON_H
#define HCSGC_OBSERVE_JSON_H

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace hcsgc {

/// One JSON value (tree-owning).
class JsonValue {
public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  JsonValue() : Ty(Type::Null) {}

  Type type() const { return Ty; }
  bool isNull() const { return Ty == Type::Null; }
  bool isBool() const { return Ty == Type::Bool; }
  bool isNumber() const { return Ty == Type::Number; }
  bool isString() const { return Ty == Type::String; }
  bool isArray() const { return Ty == Type::Array; }
  bool isObject() const { return Ty == Type::Object; }

  bool boolean() const { return Bool; }
  double number() const { return Num; }
  const std::string &string() const { return Str; }
  const std::vector<JsonValue> &array() const { return Arr; }
  const std::map<std::string, JsonValue> &object() const { return Obj; }

  /// Object member access; \returns a shared null value when absent or
  /// when this is not an object.
  const JsonValue &operator[](const std::string &Key) const;

  /// Convenience accessors with defaults.
  double numberOr(double Default) const {
    return isNumber() ? Num : Default;
  }
  std::string stringOr(const std::string &Default) const {
    return isString() ? Str : Default;
  }

  static JsonValue makeBool(bool B);
  static JsonValue makeNumber(double D);
  static JsonValue makeString(std::string S);
  static JsonValue makeArray(std::vector<JsonValue> A);
  static JsonValue makeObject(std::map<std::string, JsonValue> O);

private:
  Type Ty;
  bool Bool = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::map<std::string, JsonValue> Obj;
};

/// Parses \p Text. On failure returns false and fills \p Error with a
/// message including the byte offset.
bool parseJson(const std::string &Text, JsonValue &Out,
               std::string &Error);

} // namespace hcsgc

#endif // HCSGC_OBSERVE_JSON_H
