//===- observe/Metrics.cpp - Counters and histograms --------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "observe/Metrics.h"

#include <algorithm>
#include <cmath>

using namespace hcsgc;

static size_t bucketOf(uint64_t Sample) {
  return Sample == 0 ? 0 : 64 - static_cast<size_t>(__builtin_clzll(Sample));
}

void Histogram::record(uint64_t Sample) {
  size_t B = bucketOf(Sample);
  if (B >= NumBuckets)
    B = NumBuckets - 1;
  Buckets[B].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Sample, std::memory_order_relaxed);
  uint64_t Cur = Min.load(std::memory_order_relaxed);
  while (Sample < Cur &&
         !Min.compare_exchange_weak(Cur, Sample,
                                    std::memory_order_relaxed))
    ;
  Cur = Max.load(std::memory_order_relaxed);
  while (Sample > Cur &&
         !Max.compare_exchange_weak(Cur, Sample,
                                    std::memory_order_relaxed))
    ;
}

uint64_t Histogram::min() const {
  uint64_t M = Min.load(std::memory_order_relaxed);
  return M == UINT64_MAX ? 0 : M;
}

double Histogram::mean() const {
  uint64_t N = count();
  return N ? static_cast<double>(sum()) / static_cast<double>(N) : 0.0;
}

uint64_t Histogram::percentile(double P) const {
  uint64_t N = count();
  if (N == 0)
    return 0;
  P = std::min(1.0, std::max(0.0, P));
  uint64_t Rank = static_cast<uint64_t>(
      std::ceil(P * static_cast<double>(N)));
  if (Rank == 0)
    Rank = 1;
  uint64_t Seen = 0;
  for (size_t B = 0; B < NumBuckets; ++B) {
    uint64_t InBucket = Buckets[B].load(std::memory_order_relaxed);
    if (Seen + InBucket >= Rank) {
      // Interpolate within [2^(B-1), 2^B) by the rank's position among
      // this bucket's samples (assumed uniform), rather than returning a
      // fixed midpoint: tail percentiles of skewed distributions land
      // much closer to the truth. Bucket 0 holds only the value 0.
      if (B == 0)
        return std::max(min(), uint64_t(0));
      uint64_t Lo = uint64_t(1) << (B - 1);
      uint64_t Hi = B >= 64 ? UINT64_MAX : (uint64_t(1) << B) - 1;
      double Frac = static_cast<double>(Rank - Seen) /
                    static_cast<double>(InBucket);
      uint64_t V = Lo + static_cast<uint64_t>(
                            Frac * static_cast<double>(Hi - Lo));
      return std::min(max(), std::max(min(), V));
    }
    Seen += InBucket;
  }
  return max();
}

void Histogram::merge(const Histogram &Other) {
  uint64_t N = Other.Count.load(std::memory_order_relaxed);
  if (N == 0)
    return;
  for (size_t B = 0; B < NumBuckets; ++B) {
    uint64_t InBucket = Other.Buckets[B].load(std::memory_order_relaxed);
    if (InBucket)
      Buckets[B].fetch_add(InBucket, std::memory_order_relaxed);
  }
  Count.fetch_add(N, std::memory_order_relaxed);
  Sum.fetch_add(Other.Sum.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  uint64_t OMin = Other.Min.load(std::memory_order_relaxed);
  uint64_t Cur = Min.load(std::memory_order_relaxed);
  while (OMin < Cur &&
         !Min.compare_exchange_weak(Cur, OMin, std::memory_order_relaxed))
    ;
  uint64_t OMax = Other.Max.load(std::memory_order_relaxed);
  Cur = Max.load(std::memory_order_relaxed);
  while (OMax > Cur &&
         !Max.compare_exchange_weak(Cur, OMax, std::memory_order_relaxed))
    ;
}

std::vector<uint64_t> Histogram::buckets() const {
  std::vector<uint64_t> Out(NumBuckets);
  for (size_t B = 0; B < NumBuckets; ++B)
    Out[B] = Buckets[B].load(std::memory_order_relaxed);
  return Out;
}

Counter &MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> G(Lock);
  auto &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Histogram &MetricsRegistry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> G(Lock);
  auto &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>();
  return *Slot;
}

std::vector<std::pair<std::string, uint64_t>>
MetricsRegistry::counterSnapshot() const {
  std::lock_guard<std::mutex> G(Lock);
  std::vector<std::pair<std::string, uint64_t>> Out;
  Out.reserve(Counters.size());
  for (const auto &[Name, C] : Counters)
    Out.emplace_back(Name, C->value());
  return Out;
}

std::vector<std::string> MetricsRegistry::histogramNames() const {
  std::lock_guard<std::mutex> G(Lock);
  std::vector<std::string> Out;
  Out.reserve(Histograms.size());
  for (const auto &[Name, H] : Histograms)
    Out.push_back(Name);
  return Out;
}

uint64_t MetricsRegistry::counterValue(const std::string &Name) const {
  std::lock_guard<std::mutex> G(Lock);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second->value();
}

const Histogram *
MetricsRegistry::findHistogram(const std::string &Name) const {
  std::lock_guard<std::mutex> G(Lock);
  auto It = Histograms.find(Name);
  return It == Histograms.end() ? nullptr : It->second.get();
}
