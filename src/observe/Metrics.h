//===- observe/Metrics.h - Counters and histograms -------------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aggregated (as opposed to event-level) observability: named atomic
/// counters and log2-bucketed histograms in a MetricsRegistry. The GC
/// driver publishes per-cycle facts here (pause times, mark/relocate
/// durations, EC composition, relocation attribution, hot/live bytes);
/// the harness reads them after a run to fill the report's metrics table.
/// Metric objects are created on first lookup and never move, so callers
/// cache references and update them lock-free.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_OBSERVE_METRICS_H
#define HCSGC_OBSERVE_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hcsgc {

/// Monotonic atomic counter.
class Counter {
public:
  void add(uint64_t N) { Value.fetch_add(N, std::memory_order_relaxed); }
  void increment() { add(1); }
  uint64_t value() const {
    return Value.load(std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> Value{0};
};

/// Lock-free histogram over uint64 samples with power-of-two buckets:
/// bucket i counts samples whose bit width is i (value 0 lands in bucket
/// 0). Tracks exact count/sum/min/max alongside, so means are exact and
/// only percentiles are bucket-resolution approximations.
class Histogram {
public:
  static constexpr size_t NumBuckets = 64;

  void record(uint64_t Sample);

  uint64_t count() const {
    return Count.load(std::memory_order_relaxed);
  }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  uint64_t min() const;
  uint64_t max() const { return Max.load(std::memory_order_relaxed); }
  double mean() const;

  /// \returns an estimate of the \p P percentile (0 < P <= 1): linear
  /// interpolation within the bucket holding that rank (by the rank's
  /// position among the bucket's samples), clamped to the observed
  /// min/max. 0 when empty.
  uint64_t percentile(double P) const;

  /// Copies the bucket counts (index = bit width of the sample).
  std::vector<uint64_t> buckets() const;

  /// Folds \p Other's samples into this histogram, as if every sample
  /// recorded there had been recorded here: buckets and count/sum add,
  /// min/max fold. The intended pattern is contention-free per-thread
  /// recording into local Histogram instances merged once at the end of
  /// a run. \p Other must be quiescent; this histogram may be observed
  /// concurrently.
  void merge(const Histogram &Other);

private:
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Min{UINT64_MAX};
  std::atomic<uint64_t> Max{0};
};

/// Name -> metric map. Lookup takes a mutex (do it once and cache the
/// reference); updates through the returned references are lock-free.
class MetricsRegistry {
public:
  Counter &counter(const std::string &Name);
  Histogram &histogram(const std::string &Name);

  /// Point-in-time snapshot of every counter, sorted by name.
  std::vector<std::pair<std::string, uint64_t>> counterSnapshot() const;

  /// Names of all histograms, sorted.
  std::vector<std::string> histogramNames() const;

  /// \returns the counter's current value, or 0 if it does not exist
  /// (reader-side convenience; does not create the metric).
  uint64_t counterValue(const std::string &Name) const;

  /// \returns the histogram, or nullptr if it does not exist.
  const Histogram *findHistogram(const std::string &Name) const;

private:
  mutable std::mutex Lock;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

} // namespace hcsgc

#endif // HCSGC_OBSERVE_METRICS_H
