//===- observe/SnapshotLog.cpp - Snapshot JSONL reader/writer -----------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "observe/SnapshotLog.h"

#include "observe/Json.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdlib>
#include <cstring>

using namespace hcsgc;

namespace {

void appendf(std::string &Out, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[128];
  va_list Ap;
  va_start(Ap, Fmt);
  int N = std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  if (N > 0)
    Out.append(Buf, static_cast<size_t>(N));
}

void appendHex(std::string &Out, uint64_t V) {
  appendf(Out, "\"0x%" PRIx64 "\"", V);
}

/// %.17g guarantees strtod reads back the identical double.
void appendDouble(std::string &Out, double D) {
  appendf(Out, "%.17g", D);
}

void appendPage(std::string &Out, const PageRecord &R) {
  Out += "{\"begin\":";
  appendHex(Out, R.PageBegin);
  appendf(Out, ",\"size\":%" PRIu64 ",\"used\":%" PRIu64
               ",\"live\":%" PRIu64 ",\"hot\":%" PRIu64
               ",\"alloc_seq\":%" PRIu64 ",\"reloc_gc\":%" PRIu64
               ",\"reloc_mut\":%" PRIu64,
          R.PageSize, R.UsedBytes, R.LiveBytes, R.HotBytes, R.AllocSeq,
          R.RelocOutBytesGc, R.RelocOutBytesMutator);
  Out += ",\"wlb\":";
  appendDouble(Out, R.Wlb);
  appendf(Out, ",\"t0\":%" PRIu64 ",\"t1\":%" PRIu64 ",\"t2\":%" PRIu64
               ",\"t3\":%" PRIu64,
          R.TempBytes[0], R.TempBytes[1], R.TempBytes[2], R.TempBytes[3]);
  appendf(Out, ",\"class\":\"%s\",\"state\":\"%s\",\"pinned\":%s,"
               "\"ec\":%s,\"tier\":\"%s\"}",
          snapSizeClassName(R.SizeClass), snapPageStateName(R.State),
          R.Pinned ? "true" : "false", R.EcSelected ? "true" : "false",
          snapPageTierName(static_cast<SnapPageTier>(R.Tier)));
}

/// Site names are code-chosen identifiers, but escape defensively so a
/// quote or backslash in a name can never corrupt the JSONL stream.
void appendJsonString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        appendf(Out, "\\u%04x", C);
      else
        Out += C;
    }
  }
  Out += '"';
}

void appendSite(std::string &Out, const SiteRecord &R) {
  appendf(Out, "{\"id\":%" PRIu64 ",\"name\":", R.SiteIdNum);
  appendJsonString(Out, R.Name);
  appendf(Out, ",\"alloc\":%" PRIu64 ",\"survived\":%" PRIu64
               ",\"hot\":%" PRIu64 ",\"reloc\":%" PRIu64
               ",\"pretenured\":%" PRIu64,
          R.AllocatedBytes, R.SurvivedBytes, R.HotBytes, R.RelocatedBytes,
          R.PretenuredBytes);
  Out += ",\"ewma\":";
  appendDouble(Out, R.HotEwma);
  appendf(Out, ",\"route\":\"%s\"}", snapSiteRouteName(R.Route));
}

void appendAuditEntry(std::string &Out, const EcAuditEntry &E) {
  Out += "{\"begin\":";
  appendHex(Out, E.PageBegin);
  appendf(Out, ",\"size\":%" PRIu64 ",\"live\":%" PRIu64
               ",\"hot\":%" PRIu64,
          E.PageSize, E.LiveBytes, E.HotBytes);
  Out += ",\"weight\":";
  appendDouble(Out, E.Weight);
  appendf(Out, ",\"t0\":%" PRIu64 ",\"t1\":%" PRIu64 ",\"t2\":%" PRIu64
               ",\"t3\":%" PRIu64,
          E.TempBytes[0], E.TempBytes[1], E.TempBytes[2], E.TempBytes[3]);
  appendf(Out, ",\"class\":\"%s\",\"pinned\":%s,\"verdict\":\"%s\"}",
          snapSizeClassName(E.SizeClass), E.Pinned ? "true" : "false",
          ecVerdictName(E.Verdict));
}

bool parseHexField(const JsonValue &V, uint64_t &Out) {
  if (!V.isString())
    return false;
  Out = std::strtoull(V.string().c_str(), nullptr, 16);
  return true;
}

uint64_t asU64(const JsonValue &V) {
  return static_cast<uint64_t>(V.numberOr(0));
}

bool classFromName(const std::string &S, SnapSizeClass &Out) {
  if (S == "small")
    Out = SnapSizeClass::Small;
  else if (S == "medium")
    Out = SnapSizeClass::Medium;
  else if (S == "large")
    Out = SnapSizeClass::Large;
  else
    return false;
  return true;
}

bool stateFromName(const std::string &S, SnapPageState &Out) {
  if (S == "active")
    Out = SnapPageState::Active;
  else if (S == "reloc_source")
    Out = SnapPageState::RelocSource;
  else if (S == "quarantined")
    Out = SnapPageState::Quarantined;
  else
    return false;
  return true;
}

/// Lenient: pre-temperature logs have no "tier" field (stringOr("")),
/// which reads as None.
bool tierFromName(const std::string &S, uint8_t &Out) {
  if (S.empty() || S == "none")
    Out = static_cast<uint8_t>(SnapPageTier::None);
  else if (S == "hot")
    Out = static_cast<uint8_t>(SnapPageTier::Hot);
  else if (S == "warm")
    Out = static_cast<uint8_t>(SnapPageTier::Warm);
  else if (S == "cold")
    Out = static_cast<uint8_t>(SnapPageTier::Cold);
  else
    return false;
  return true;
}

bool verdictFromName(const std::string &S, EcVerdict &Out) {
  for (unsigned V = 0;
       V <= static_cast<unsigned>(EcVerdict::LargeIgnored); ++V)
    if (S == ecVerdictName(static_cast<EcVerdict>(V))) {
      Out = static_cast<EcVerdict>(V);
      return true;
    }
  return false;
}

bool parsePage(const JsonValue &J, PageRecord &R, std::string &Error) {
  if (!J.isObject())
    return (Error = "page record is not an object"), false;
  if (!parseHexField(J["begin"], R.PageBegin))
    return (Error = "page record missing hex begin"), false;
  R.PageSize = asU64(J["size"]);
  R.UsedBytes = asU64(J["used"]);
  R.LiveBytes = asU64(J["live"]);
  R.HotBytes = asU64(J["hot"]);
  R.AllocSeq = asU64(J["alloc_seq"]);
  R.RelocOutBytesGc = asU64(J["reloc_gc"]);
  R.RelocOutBytesMutator = asU64(J["reloc_mut"]);
  R.Wlb = J["wlb"].numberOr(0);
  // Temperature fields are absent in pre-temperature logs; numberOr(0)
  // keeps those parsing as all-tier-0.
  R.TempBytes[0] = asU64(J["t0"]);
  R.TempBytes[1] = asU64(J["t1"]);
  R.TempBytes[2] = asU64(J["t2"]);
  R.TempBytes[3] = asU64(J["t3"]);
  if (!classFromName(J["class"].stringOr(""), R.SizeClass))
    return (Error = "bad page size class"), false;
  if (!stateFromName(J["state"].stringOr(""), R.State))
    return (Error = "bad page state"), false;
  R.Pinned = J["pinned"].isBool() && J["pinned"].boolean();
  R.EcSelected = J["ec"].isBool() && J["ec"].boolean();
  if (!tierFromName(J["tier"].stringOr(""), R.Tier))
    return (Error = "bad page tier"), false;
  return true;
}

/// Lenient like the tier field: unknown route strings read as hot.
uint8_t routeFromName(const std::string &S) {
  if (S == "warm")
    return 1;
  if (S == "cold")
    return 2;
  return 0;
}

bool parseSite(const JsonValue &J, SiteRecord &R, std::string &Error) {
  if (!J.isObject())
    return (Error = "site record is not an object"), false;
  R.SiteIdNum = asU64(J["id"]);
  R.Name = J["name"].stringOr("unknown");
  R.AllocatedBytes = asU64(J["alloc"]);
  R.SurvivedBytes = asU64(J["survived"]);
  R.HotBytes = asU64(J["hot"]);
  R.RelocatedBytes = asU64(J["reloc"]);
  R.PretenuredBytes = asU64(J["pretenured"]);
  R.HotEwma = J["ewma"].numberOr(0);
  R.Route = routeFromName(J["route"].stringOr(""));
  return true;
}

bool parseAuditEntry(const JsonValue &J, EcAuditEntry &E,
                     std::string &Error) {
  if (!J.isObject())
    return (Error = "audit entry is not an object"), false;
  if (!parseHexField(J["begin"], E.PageBegin))
    return (Error = "audit entry missing hex begin"), false;
  E.PageSize = asU64(J["size"]);
  E.LiveBytes = asU64(J["live"]);
  E.HotBytes = asU64(J["hot"]);
  E.Weight = J["weight"].numberOr(0);
  E.TempBytes[0] = asU64(J["t0"]);
  E.TempBytes[1] = asU64(J["t1"]);
  E.TempBytes[2] = asU64(J["t2"]);
  E.TempBytes[3] = asU64(J["t3"]);
  if (!classFromName(J["class"].stringOr(""), E.SizeClass))
    return (Error = "bad audit size class"), false;
  E.Pinned = J["pinned"].isBool() && J["pinned"].boolean();
  if (!verdictFromName(J["verdict"].stringOr(""), E.Verdict))
    return (Error = "bad audit verdict"), false;
  return true;
}

} // namespace

std::string hcsgc::snapshotToJson(const CycleSnapshot &S) {
  std::string Out;
  Out.reserve(128 + S.Pages.size() * 160 +
              (S.HasAudit ? S.Audit.Entries.size() * 140 : 0));
  appendf(Out, "{\"cycle\":%" PRIu64 ",\"point\":\"%s\",\"time_ns\":%" PRIu64,
          S.Cycle, snapshotPointName(S.Point), S.TimeNs);
  Out += ",\"cold_confidence\":";
  appendDouble(Out, S.ColdConfidence);
  appendf(Out, ",\"hotness\":%s,\"temperature\":%s",
          S.Hotness ? "true" : "false", S.Temperature ? "true" : "false");
  Out += ",\"pages\":[";
  for (size_t I = 0; I < S.Pages.size(); ++I) {
    if (I)
      Out += ',';
    appendPage(Out, S.Pages[I]);
  }
  Out += ']';
  // Only SITEPROFILING captures carry site rows; omitting the empty
  // array keeps non-site configs' log bytes identical to older builds.
  if (!S.Sites.empty()) {
    Out += ",\"sites\":[";
    for (size_t I = 0; I < S.Sites.size(); ++I) {
      if (I)
        Out += ',';
      appendSite(Out, S.Sites[I]);
    }
    Out += ']';
  }
  if (S.HasAudit) {
    const EcAudit &A = S.Audit;
    appendf(Out, ",\"audit\":{\"cycle\":%" PRIu64, A.Cycle);
    Out += ",\"cold_confidence\":";
    appendDouble(Out, A.ColdConfidence);
    Out += ",\"evac_live_threshold\":";
    appendDouble(Out, A.EvacLiveThreshold);
    Out += ",\"budget_small\":";
    appendDouble(Out, A.BudgetSmall);
    Out += ",\"budget_medium\":";
    appendDouble(Out, A.BudgetMedium);
    Out += ",\"required_free\":";
    appendDouble(Out, A.RequiredFree);
    appendf(Out,
            ",\"hotness\":%s,\"relocate_all\":%s,\"temperature\":%s,"
            "\"entries\":[",
            A.Hotness ? "true" : "false",
            A.RelocateAll ? "true" : "false",
            A.Temperature ? "true" : "false");
    for (size_t I = 0; I < A.Entries.size(); ++I) {
      if (I)
        Out += ',';
      appendAuditEntry(Out, A.Entries[I]);
    }
    Out += "]}";
  }
  Out += '}';
  return Out;
}

void hcsgc::writeSnapshotJsonl(const CycleSnapshot &S, std::FILE *F) {
  std::string Line = snapshotToJson(S);
  std::fwrite(Line.data(), 1, Line.size(), F);
  std::fputc('\n', F);
}

bool hcsgc::parseSnapshotLine(const std::string &Line, CycleSnapshot &Out,
                              std::string &Error) {
  JsonValue J;
  if (!parseJson(Line, J, Error))
    return false;
  if (!J.isObject())
    return (Error = "snapshot line is not an object"), false;
  Out = CycleSnapshot();
  Out.Cycle = asU64(J["cycle"]);
  std::string Point = J["point"].stringOr("");
  if (Point == "after_mark")
    Out.Point = SnapshotPoint::AfterMark;
  else if (Point == "after_ec")
    Out.Point = SnapshotPoint::AfterEc;
  else
    return (Error = "bad snapshot point"), false;
  Out.TimeNs = asU64(J["time_ns"]);
  Out.ColdConfidence = J["cold_confidence"].numberOr(0);
  Out.Hotness = J["hotness"].isBool() && J["hotness"].boolean();
  Out.Temperature =
      J["temperature"].isBool() && J["temperature"].boolean();
  const JsonValue &Pages = J["pages"];
  if (!Pages.isArray())
    return (Error = "snapshot line has no pages array"), false;
  Out.Pages.reserve(Pages.array().size());
  for (const JsonValue &P : Pages.array()) {
    PageRecord R;
    if (!parsePage(P, R, Error))
      return false;
    Out.Pages.push_back(R);
  }
  // Pre-site-schema logs have no "sites" array: absent reads as empty.
  const JsonValue &Sites = J["sites"];
  if (Sites.isArray()) {
    Out.Sites.reserve(Sites.array().size());
    for (const JsonValue &SV : Sites.array()) {
      SiteRecord R;
      if (!parseSite(SV, R, Error))
        return false;
      Out.Sites.push_back(std::move(R));
    }
  }
  const JsonValue &Audit = J["audit"];
  if (Audit.isObject()) {
    Out.HasAudit = true;
    EcAudit &A = Out.Audit;
    A.Cycle = asU64(Audit["cycle"]);
    A.ColdConfidence = Audit["cold_confidence"].numberOr(0);
    A.EvacLiveThreshold = Audit["evac_live_threshold"].numberOr(0);
    A.BudgetSmall = Audit["budget_small"].numberOr(0);
    A.BudgetMedium = Audit["budget_medium"].numberOr(0);
    A.RequiredFree = Audit["required_free"].numberOr(0);
    A.Hotness = Audit["hotness"].isBool() && Audit["hotness"].boolean();
    A.RelocateAll =
        Audit["relocate_all"].isBool() && Audit["relocate_all"].boolean();
    A.Temperature =
        Audit["temperature"].isBool() && Audit["temperature"].boolean();
    const JsonValue &Entries = Audit["entries"];
    if (!Entries.isArray())
      return (Error = "audit has no entries array"), false;
    A.Entries.reserve(Entries.array().size());
    for (const JsonValue &E : Entries.array()) {
      EcAuditEntry Ent;
      if (!parseAuditEntry(E, Ent, Error))
        return false;
      A.Entries.push_back(Ent);
    }
  }
  return true;
}

bool hcsgc::readSnapshotLog(const std::string &Text,
                            std::vector<CycleSnapshot> &Out,
                            std::string &Error) {
  size_t Pos = 0, LineNo = 0;
  while (Pos < Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    if (Nl == std::string::npos)
      Nl = Text.size();
    ++LineNo;
    std::string Line = Text.substr(Pos, Nl - Pos);
    Pos = Nl + 1;
    if (Line.find_first_not_of(" \t\r") == std::string::npos)
      continue;
    CycleSnapshot S;
    if (!parseSnapshotLine(Line, S, Error)) {
      Error = "line " + std::to_string(LineNo) + ": " + Error;
      return false;
    }
    Out.push_back(std::move(S));
  }
  return true;
}

bool hcsgc::parseCycleRange(const char *Spec, uint64_t &Lo,
                            uint64_t &Hi) {
  if (!Spec || !*Spec)
    return false;
  char *End = nullptr;
  uint64_t A = std::strtoull(Spec, &End, 10);
  if (End == Spec)
    return false;
  uint64_t B = A;
  if (End[0] == '.' && End[1] == '.') {
    const char *HiStr = End + 2;
    B = std::strtoull(HiStr, &End, 10);
    if (End == HiStr)
      return false;
  }
  // Anything after the consumed number(s) — "3..7junk", "5x" — is a
  // malformed spec, not a filter.
  if (*End != '\0')
    return false;
  if (B < A)
    return false;
  Lo = A;
  Hi = B;
  return true;
}
