//===- observe/SnapshotLog.h - Snapshot JSONL reader/writer ----*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serialization for the heap locality observatory: one JSON object per
/// capture per line (JSONL), so a streaming writer never needs to hold
/// more than one capture and a reader can filter by line. Conventions
/// shared with the trace exporter: addresses are hex strings (they do
/// not fit a double exactly), doubles are printed with %.17g so WLB
/// weights and budgets round-trip bit-exactly through strtod — the
/// heapscope --replay check and the snapshot invariant tests compare
/// them with operator==.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_OBSERVE_SNAPSHOTLOG_H
#define HCSGC_OBSERVE_SNAPSHOTLOG_H

#include "observe/HeapSnapshot.h"

#include <cstdio>
#include <string>
#include <vector>

namespace hcsgc {

/// \returns \p S as one JSON object (single line, no trailing newline).
std::string snapshotToJson(const CycleSnapshot &S);

/// Writes \p S to \p F as one JSONL line.
void writeSnapshotJsonl(const CycleSnapshot &S, std::FILE *F);

/// Parses one JSONL line. On failure returns false and fills \p Error.
bool parseSnapshotLine(const std::string &Line, CycleSnapshot &Out,
                       std::string &Error);

/// Parses a whole snapshot log (empty lines are skipped). On failure
/// returns false and fills \p Error with the offending line number.
bool readSnapshotLog(const std::string &Text,
                     std::vector<CycleSnapshot> &Out, std::string &Error);

/// Parses a cycle-filter specification: either "N" (meaning N..N) or
/// "A..B" (inclusive). Rejects empty input, trailing garbage on either
/// number, and B < A. Shared by heapscope's --cycles flag and the tests
/// covering it. \returns false (leaving \p Lo / \p Hi untouched) on any
/// malformed input.
bool parseCycleRange(const char *Spec, uint64_t &Lo, uint64_t &Hi);

} // namespace hcsgc

#endif // HCSGC_OBSERVE_SNAPSHOTLOG_H
