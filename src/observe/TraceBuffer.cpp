//===- observe/TraceBuffer.cpp - Lock-free per-thread event buffers ----------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "observe/TraceBuffer.h"

#include <algorithm>

using namespace hcsgc;

TraceBuffer::TraceBuffer(size_t Capacity, uint16_t Tid, bool GcThread)
    : Ring(Capacity ? Capacity : 1), Tid(Tid), GcThread(GcThread) {}

bool TraceBuffer::tryPush(TraceEvent E) {
  uint64_t T = Tail.load(std::memory_order_relaxed);
  uint64_t H = Head.load(std::memory_order_acquire);
  if (T - H >= Ring.size()) {
    Dropped.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Ring[T % Ring.size()] = E;
  // Publish the entry: the consumer's acquire on Tail makes the write
  // above visible before it reads the slot.
  Tail.store(T + 1, std::memory_order_release);
  return true;
}

size_t TraceBuffer::drainTo(std::vector<TraceEvent> &Out) {
  uint64_t H = Head.load(std::memory_order_relaxed);
  uint64_t T = Tail.load(std::memory_order_acquire);
  size_t N = static_cast<size_t>(T - H);
  Out.reserve(Out.size() + N);
  for (uint64_t P = H; P != T; ++P)
    Out.push_back(Ring[P % Ring.size()]);
  // Free the slots only after the copies are done, so a concurrent
  // producer cannot overwrite entries we are still reading.
  Head.store(T, std::memory_order_release);
  return N;
}

size_t TraceBuffer::size() const {
  uint64_t H = Head.load(std::memory_order_acquire);
  uint64_t T = Tail.load(std::memory_order_acquire);
  return static_cast<size_t>(T - H);
}

TraceSession::TraceSession(size_t BufferCapacity)
    : BufferCapacity(BufferCapacity ? BufferCapacity : 1),
      Epoch(std::chrono::steady_clock::now()) {}

uint64_t TraceSession::nowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
}

TraceBuffer &TraceSession::registerBuffer(bool GcThread) {
  std::lock_guard<std::mutex> G(BuffersLock);
  uint16_t Tid = static_cast<uint16_t>(Buffers.size());
  Buffers.push_back(
      std::make_unique<TraceBuffer>(BufferCapacity, Tid, GcThread));
  return *Buffers.back();
}

void TraceSession::record(TraceBuffer *&Slot, bool GcThread,
                          TraceEventKind Kind, uint64_t Cycle, uint64_t A,
                          uint64_t B, uint64_t C, uint64_t D) {
  if (HCSGC_UNLIKELY(!Slot))
    Slot = &registerBuffer(GcThread);
  TraceEvent E;
  E.TimeNs = nowNs();
  E.Cycle = Cycle;
  E.A = A;
  E.B = B;
  E.C = C;
  E.D = D;
  E.Kind = Kind;
  E.GcThread = GcThread ? 1 : 0;
  E.Tid = Slot->tid();
  Slot->tryPush(E);
}

CollectedTrace TraceSession::collect() {
  CollectedTrace T;
  {
    std::lock_guard<std::mutex> G(BuffersLock);
    for (const auto &B : Buffers) {
      TraceThreadInfo Info;
      Info.Tid = B->tid();
      Info.GcThread = B->isGcThread();
      Info.Events = B->drainTo(T.Events);
      Info.Dropped = B->dropped();
      T.DroppedTotal += Info.Dropped;
      T.Threads.push_back(Info);
    }
  }
  std::stable_sort(T.Events.begin(), T.Events.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     return A.TimeNs < B.TimeNs;
                   });
  return T;
}

size_t TraceSession::threadCount() const {
  std::lock_guard<std::mutex> G(BuffersLock);
  return Buffers.size();
}
