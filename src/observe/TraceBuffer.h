//===- observe/TraceBuffer.h - Lock-free per-thread event buffers *- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tracing substrate: each thread owns a single-producer TraceBuffer
/// (a bounded SPSC ring) it appends typed events to without locks; a
/// TraceSession owns all buffers, hands them out to threads on first use,
/// and merges them into one time-ordered stream when the trace is
/// collected. Emission is guarded by the HCSGC_TRACE macro below, whose
/// disabled cost is one relaxed atomic load and a predicted-not-taken
/// branch on slow paths only (and which compiles away entirely under
/// -DHCSGC_TRACE_DISABLED).
///
/// Buffer semantics the tests rely on:
///  - per-buffer FIFO: events drain in emission order;
///  - overflow drops the *new* event (never corrupts retained ones) and
///    counts it in dropped().
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_OBSERVE_TRACEBUFFER_H
#define HCSGC_OBSERVE_TRACEBUFFER_H

#include "observe/TraceEvent.h"
#include "support/Compiler.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

namespace hcsgc {

/// Bounded single-producer single-consumer ring of TraceEvents. The
/// owning thread is the only producer; the collecting thread is the only
/// consumer (enforced by TraceSession, which drains either from the
/// owner itself or while the system is quiescent).
class TraceBuffer {
public:
  explicit TraceBuffer(size_t Capacity, uint16_t Tid, bool GcThread);

  /// Appends \p E (producer side). \returns false and bumps dropped()
  /// if the ring is full.
  bool tryPush(TraceEvent E);

  /// Moves all currently-visible events into \p Out in FIFO order
  /// (consumer side). \returns the number of events moved.
  size_t drainTo(std::vector<TraceEvent> &Out);

  /// Events discarded because the ring was full.
  uint64_t dropped() const {
    return Dropped.load(std::memory_order_relaxed);
  }

  /// Events currently buffered (approximate under concurrency).
  size_t size() const;

  size_t capacity() const { return Ring.size(); }
  uint16_t tid() const { return Tid; }
  bool isGcThread() const { return GcThread; }

private:
  std::vector<TraceEvent> Ring;
  // Monotonic positions; index = pos % capacity. Producer advances Tail,
  // consumer advances Head.
  std::atomic<uint64_t> Head{0};
  std::atomic<uint64_t> Tail{0};
  std::atomic<uint64_t> Dropped{0};
  uint16_t Tid;
  bool GcThread;
};

/// Per-thread descriptor in a collected trace.
struct TraceThreadInfo {
  uint16_t Tid = 0;
  bool GcThread = false;
  uint64_t Events = 0;
  uint64_t Dropped = 0;
};

/// A drained, merged, time-sorted trace.
struct CollectedTrace {
  std::vector<TraceEvent> Events;
  std::vector<TraceThreadInfo> Threads;
  uint64_t DroppedTotal = 0;
};

/// Owns every thread's TraceBuffer and the global enable flag. One per
/// GcHeap. Threads cache their buffer pointer (in ThreadContext::Trace)
/// so the steady-state record path is: enabled check, timestamp, ring
/// push — no locks, no allocation.
class TraceSession {
public:
  explicit TraceSession(size_t BufferCapacity = DefaultCapacity);

  /// Cheap emission gate, read on every instrumented slow path.
  bool enabled() const {
    return Enabled.load(std::memory_order_relaxed);
  }

  /// Flips tracing on/off at runtime. Events emitted while disabled are
  /// simply not recorded; buffers retain whatever was recorded before.
  void setEnabled(bool On) {
    Enabled.store(On, std::memory_order_release);
  }

  /// Records one event through the caller's cached buffer slot,
  /// registering a fresh buffer on first use. \p Slot must be the
  /// calling thread's own pointer (e.g. ThreadContext::Trace).
  void record(TraceBuffer *&Slot, bool GcThread, TraceEventKind Kind,
              uint64_t Cycle, uint64_t A = 0, uint64_t B = 0,
              uint64_t C = 0, uint64_t D = 0);

  /// Drains every buffer and returns the merged stream sorted by
  /// timestamp. Call while emitting threads are quiescent (driver idle);
  /// collecting consumes the buffered events.
  CollectedTrace collect();

  /// Nanoseconds since the session epoch (event timestamp base).
  uint64_t nowNs() const;

  /// Number of registered per-thread buffers.
  size_t threadCount() const;

  static constexpr size_t DefaultCapacity = 1 << 15;

private:
  TraceBuffer &registerBuffer(bool GcThread);

  std::atomic<bool> Enabled{false};
  size_t BufferCapacity;
  std::chrono::steady_clock::time_point Epoch;

  mutable std::mutex BuffersLock;
  std::vector<std::unique_ptr<TraceBuffer>> Buffers;
};

} // namespace hcsgc

/// Emission guard. SessionExpr is evaluated once; the event arguments are
/// evaluated only when tracing is enabled, so instrumented sites pay one
/// relaxed load + branch when it is off. Define HCSGC_TRACE_DISABLED to
/// compile all instrumentation out.
#ifndef HCSGC_TRACE_DISABLED
#define HCSGC_TRACE(SessionExpr, Slot, GcThread, ...)                      \
  do {                                                                     \
    ::hcsgc::TraceSession &HcsgcTraceS_ = (SessionExpr);                   \
    if (HCSGC_UNLIKELY(HcsgcTraceS_.enabled()))                            \
      HcsgcTraceS_.record((Slot), (GcThread), __VA_ARGS__);                \
  } while (0)
#else
#define HCSGC_TRACE(SessionExpr, Slot, GcThread, ...)                      \
  do {                                                                     \
  } while (0)
#endif

#endif // HCSGC_OBSERVE_TRACEBUFFER_H
