//===- observe/TraceEvent.h - Typed GC trace events ------------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event taxonomy of the tracing layer. One fixed-size POD record per
/// event keeps the per-thread buffers allocation-free and cheap to fill;
/// the meaning of the A..D payload words depends on the kind (documented
/// on each enumerator). Every event carries the GC cycle number current
/// at emission time and the emitting thread's session id + GC/mutator
/// attribution, which is what lets the trace-driven invariant tests check
/// the paper's protocol (who relocated what, and when).
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_OBSERVE_TRACEEVENT_H
#define HCSGC_OBSERVE_TRACEEVENT_H

#include <cstdint>
#include <cstring>

namespace hcsgc {

/// Phases of one GC cycle, used as the payload of Phase*/Pause* events.
enum class GcPhase : uint8_t {
  Stw1,     ///< Pause 1: color flip + root scan.
  Mark,     ///< Concurrent mark/remap.
  Stw2,     ///< Pause 2: mark termination.
  EcSelect, ///< Concurrent evacuation-candidate selection.
  Stw3,     ///< Pause 3: flip to R + root healing.
  Relocate, ///< Relocation-set drain (eager, or deferred under lazy).
};

/// Typed GC events. Payload word meaning per kind:
enum class TraceEventKind : uint8_t {
  /// A new cycle's runCycle invocation starts. Under LAZYRELOCATE this
  /// precedes the deferred drain of the previous cycle's EC (Fig. 3:
  /// "each GC cycle starts with releasing memory"). Cycle = the cycle
  /// about to run.
  CycleBegin,
  /// runCycle finished (its own EC may still be pending under lazy).
  CycleEnd,
  /// A = GcPhase. Brackets the concurrent phases.
  PhaseBegin,
  PhaseEnd,
  /// A = GcPhase (Stw1/Stw2/Stw3). Brackets a stop-the-world pause,
  /// emitted by the coordinator around beginPause/endPause.
  PauseBegin,
  PauseEnd,
  /// Livemaps + hotmaps cleared ahead of STW1 ("hotmap is reset at the
  /// beginning of each M/R phase", §3.1.2). A = pages cleared. Cycle =
  /// the upcoming cycle.
  HotmapReset,
  /// A small page was evaluated under the WLB rule during EC selection.
  /// A = page begin address, B = live bytes, C = hot bytes,
  /// D = bit-cast WLB (double). The effective COLDCONFIDENCE rides on
  /// the enclosing PhaseBegin(EcSelect) event (its A, bit-cast double).
  EcPageConsidered,
  /// A page entered the evacuation candidate set. A = page begin,
  /// B = live bytes, C = hot bytes, D = bit-cast selection weight.
  EcPageSelected,
  /// A fully-dead page was reclaimed without relocation. A = page begin,
  /// B = page size.
  EcPageReclaimed,
  /// An object transitioned cold -> hot in the hotmap. A = object
  /// address, B = object bytes. GcThread tells which §3.1.2 source fired
  /// (marker R-color scan vs mutator barrier slow path).
  HotFlag,
  /// An object was relocated (forwarding CAS won). A = old address,
  /// B = new address, C = bytes. GcThread is the actor attribution the
  /// LAZYRELOCATE invariant test keys on.
  Relocation,
  /// A mutator allocation failed its fast path and is stalling for a GC
  /// cycle. A = requested bytes, B = stall attempt (0-based), C = cycles
  /// this stall waits for (2 under LAZYRELOCATE).
  AllocStall,
  /// An emergency synchronous cycle began (allocation stall ran out of
  /// ordinary retries). Drains deferred + own EC immediately even under
  /// LAZYRELOCATE. A = used bytes, B = quarantined bytes at entry.
  EmergencyCycle,
};

/// One fixed-size trace record.
struct TraceEvent {
  uint64_t TimeNs = 0; ///< steady_clock ns since session start.
  uint64_t Cycle = 0;  ///< GcHeap::currentCycle() at emission.
  uint64_t A = 0, B = 0, C = 0, D = 0;
  TraceEventKind Kind = TraceEventKind::CycleBegin;
  uint8_t GcThread = 0; ///< 1 if emitted by a GC thread.
  uint16_t Tid = 0;     ///< Session-assigned thread id.
};

/// Stable string names (used by the exporter and the CLI).
inline const char *traceEventKindName(TraceEventKind K) {
  switch (K) {
  case TraceEventKind::CycleBegin:
    return "cycle_begin";
  case TraceEventKind::CycleEnd:
    return "cycle_end";
  case TraceEventKind::PhaseBegin:
    return "phase_begin";
  case TraceEventKind::PhaseEnd:
    return "phase_end";
  case TraceEventKind::PauseBegin:
    return "pause_begin";
  case TraceEventKind::PauseEnd:
    return "pause_end";
  case TraceEventKind::HotmapReset:
    return "hotmap_reset";
  case TraceEventKind::EcPageConsidered:
    return "ec_page_considered";
  case TraceEventKind::EcPageSelected:
    return "ec_page_selected";
  case TraceEventKind::EcPageReclaimed:
    return "ec_page_reclaimed";
  case TraceEventKind::HotFlag:
    return "hot_flag";
  case TraceEventKind::Relocation:
    return "relocation";
  case TraceEventKind::AllocStall:
    return "alloc_stall";
  case TraceEventKind::EmergencyCycle:
    return "emergency_cycle";
  }
  return "unknown";
}

inline const char *gcPhaseName(GcPhase P) {
  switch (P) {
  case GcPhase::Stw1:
    return "STW1";
  case GcPhase::Mark:
    return "mark";
  case GcPhase::Stw2:
    return "STW2";
  case GcPhase::EcSelect:
    return "ec_select";
  case GcPhase::Stw3:
    return "STW3";
  case GcPhase::Relocate:
    return "relocate";
  }
  return "unknown";
}

/// Bit-cast helpers for double payloads (WLB weights, confidences).
inline uint64_t traceBitsFromDouble(double D) {
  uint64_t U;
  std::memcpy(&U, &D, sizeof(U));
  return U;
}
inline double traceDoubleFromBits(uint64_t U) {
  double D;
  std::memcpy(&D, &U, sizeof(D));
  return D;
}

} // namespace hcsgc

#endif // HCSGC_OBSERVE_TRACEEVENT_H
