//===- observe/TraceJson.cpp - Chrome trace_event JSON I/O --------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "observe/TraceJson.h"

#include "observe/Json.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstring>

using namespace hcsgc;

namespace {

void appendF(std::string &Out, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendF(std::string &Out, const char *Fmt, ...) {
  char Buf[256];
  va_list Ap;
  va_start(Ap, Fmt);
  int N = std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  if (N > 0)
    Out.append(Buf, static_cast<size_t>(std::min<int>(
                        N, static_cast<int>(sizeof(Buf) - 1))));
}

void appendHex(std::string &Out, const char *Key, uint64_t V) {
  appendF(Out, "\"%s\":\"0x%" PRIx64 "\"", Key, V);
}

/// Chrome "B"/"E" pair name for a duration-style event, or nullptr for
/// instants.
const char *durationName(const TraceEvent &E) {
  switch (E.Kind) {
  case TraceEventKind::CycleBegin:
  case TraceEventKind::CycleEnd:
    return "cycle";
  case TraceEventKind::PhaseBegin:
  case TraceEventKind::PhaseEnd:
  case TraceEventKind::PauseBegin:
  case TraceEventKind::PauseEnd:
    return gcPhaseName(static_cast<GcPhase>(E.A));
  default:
    return nullptr;
  }
}

bool isBeginKind(TraceEventKind K) {
  return K == TraceEventKind::CycleBegin ||
         K == TraceEventKind::PhaseBegin ||
         K == TraceEventKind::PauseBegin;
}

void appendEvent(std::string &Out, const TraceEvent &E) {
  const char *Name = durationName(E);
  const char *Ph = Name ? (isBeginKind(E.Kind) ? "B" : "E") : "i";
  if (!Name)
    Name = traceEventKindName(E.Kind);
  appendF(Out, "{\"name\":\"%s\",\"cat\":\"gc\",\"ph\":\"%s\",", Name,
          Ph);
  appendF(Out, "\"ts\":%.3f,\"pid\":1,\"tid\":%u,",
          static_cast<double>(E.TimeNs) / 1000.0,
          static_cast<unsigned>(E.Tid));
  if (*Ph == 'i')
    Out += "\"s\":\"t\",";
  appendF(Out, "\"args\":{\"cycle\":%" PRIu64 ",\"gc_thread\":%s",
          E.Cycle, E.GcThread ? "true" : "false");
  switch (E.Kind) {
  case TraceEventKind::CycleBegin:
  case TraceEventKind::CycleEnd:
  case TraceEventKind::PhaseEnd:
  case TraceEventKind::PauseBegin:
  case TraceEventKind::PauseEnd:
    break;
  case TraceEventKind::PhaseBegin:
    if (static_cast<GcPhase>(E.A) == GcPhase::EcSelect) {
      appendF(Out, ",\"confidence\":%.17g,\"hotness\":%s",
              traceDoubleFromBits(E.B), E.C ? "true" : "false");
    }
    break;
  case TraceEventKind::HotmapReset:
    appendF(Out, ",\"pages\":%" PRIu64, E.A);
    break;
  case TraceEventKind::EcPageConsidered:
  case TraceEventKind::EcPageSelected:
    Out += ',';
    appendHex(Out, "page", E.A);
    appendF(Out, ",\"live_bytes\":%" PRIu64 ",\"hot_bytes\":%" PRIu64
                 ",\"wlb\":%.17g",
            E.B, E.C, traceDoubleFromBits(E.D));
    break;
  case TraceEventKind::EcPageReclaimed:
    Out += ',';
    appendHex(Out, "page", E.A);
    appendF(Out, ",\"page_bytes\":%" PRIu64, E.B);
    break;
  case TraceEventKind::HotFlag:
    Out += ',';
    appendHex(Out, "addr", E.A);
    appendF(Out, ",\"bytes\":%" PRIu64, E.B);
    break;
  case TraceEventKind::Relocation:
    Out += ',';
    appendHex(Out, "from", E.A);
    Out += ',';
    appendHex(Out, "to", E.B);
    appendF(Out, ",\"bytes\":%" PRIu64, E.C);
    break;
  case TraceEventKind::AllocStall:
    appendF(Out,
            ",\"bytes\":%" PRIu64 ",\"attempt\":%" PRIu64
            ",\"cycles\":%" PRIu64,
            E.A, E.B, E.C);
    break;
  case TraceEventKind::EmergencyCycle:
    appendF(Out, ",\"used_bytes\":%" PRIu64 ",\"quarantined_bytes\":%" PRIu64,
            E.A, E.B);
    break;
  }
  Out += "}}";
}

uint64_t hexArg(const JsonValue &Args, const char *Key) {
  const JsonValue &V = Args[Key];
  if (V.isString())
    return std::strtoull(V.string().c_str(), nullptr, 16);
  if (V.isNumber())
    return static_cast<uint64_t>(V.number());
  return 0;
}

uint64_t numArg(const JsonValue &Args, const char *Key) {
  return static_cast<uint64_t>(Args[Key].numberOr(0));
}

bool phaseFromName(const std::string &Name, GcPhase &Out) {
  for (GcPhase P : {GcPhase::Stw1, GcPhase::Mark, GcPhase::Stw2,
                    GcPhase::EcSelect, GcPhase::Stw3, GcPhase::Relocate})
    if (Name == gcPhaseName(P)) {
      Out = P;
      return true;
    }
  return false;
}

bool instantFromName(const std::string &Name, TraceEventKind &Out) {
  for (TraceEventKind K :
       {TraceEventKind::HotmapReset, TraceEventKind::EcPageConsidered,
        TraceEventKind::EcPageSelected, TraceEventKind::EcPageReclaimed,
        TraceEventKind::HotFlag, TraceEventKind::Relocation,
        TraceEventKind::AllocStall, TraceEventKind::EmergencyCycle})
    if (Name == traceEventKindName(K)) {
      Out = K;
      return true;
    }
  return false;
}

} // namespace

std::string hcsgc::chromeTraceToString(const CollectedTrace &T) {
  std::string Out;
  Out.reserve(T.Events.size() * 160 + 1024);
  Out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":\"hcsgc\","
         "\"dropped_events\":";
  appendF(Out, "%" PRIu64, T.DroppedTotal);
  Out += "},\"traceEvents\":[";
  bool First = true;
  for (const TraceThreadInfo &Info : T.Threads) {
    if (!First)
      Out += ',';
    First = false;
    appendF(Out,
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
            "\"tid\":%u,\"args\":{\"name\":\"%s-%u\"}}",
            static_cast<unsigned>(Info.Tid),
            Info.GcThread ? "gc" : "mutator",
            static_cast<unsigned>(Info.Tid));
  }
  for (const TraceEvent &E : T.Events) {
    if (!First)
      Out += ',';
    First = false;
    appendEvent(Out, E);
  }
  Out += "]}";
  return Out;
}

void hcsgc::writeChromeTrace(const CollectedTrace &T, std::FILE *Out) {
  std::string S = chromeTraceToString(T);
  std::fwrite(S.data(), 1, S.size(), Out);
  std::fputc('\n', Out);
}

bool hcsgc::readChromeTrace(const std::string &Text, CollectedTrace &Out,
                            std::string &Error) {
  JsonValue Doc;
  if (!parseJson(Text, Doc, Error))
    return false;
  if (!Doc.isObject() || !Doc["traceEvents"].isArray()) {
    Error = "not a trace_event document (missing traceEvents array)";
    return false;
  }
  Out = CollectedTrace();
  Out.DroppedTotal =
      static_cast<uint64_t>(Doc["otherData"]["dropped_events"].numberOr(0));

  std::map<uint16_t, TraceThreadInfo> Threads;
  for (const JsonValue &EV : Doc["traceEvents"].array()) {
    if (!EV.isObject())
      continue;
    std::string Ph = EV["ph"].stringOr("");
    std::string Name = EV["name"].stringOr("");
    uint16_t Tid = static_cast<uint16_t>(EV["tid"].numberOr(0));
    if (Ph == "M") {
      if (Name == "thread_name") {
        TraceThreadInfo &Info = Threads[Tid];
        Info.Tid = Tid;
        Info.GcThread =
            EV["args"]["name"].stringOr("").rfind("gc", 0) == 0;
      }
      continue;
    }
    const JsonValue &Args = EV["args"];
    TraceEvent E;
    E.TimeNs = static_cast<uint64_t>(EV["ts"].numberOr(0) * 1000.0 + 0.5);
    E.Tid = Tid;
    E.Cycle = numArg(Args, "cycle");
    E.GcThread = Args["gc_thread"].isBool() && Args["gc_thread"].boolean()
                     ? 1
                     : 0;
    GcPhase Phase;
    TraceEventKind Instant;
    if (Name == "cycle" && (Ph == "B" || Ph == "E")) {
      E.Kind = Ph == "B" ? TraceEventKind::CycleBegin
                         : TraceEventKind::CycleEnd;
    } else if (phaseFromName(Name, Phase) && (Ph == "B" || Ph == "E")) {
      bool Pause = Phase == GcPhase::Stw1 || Phase == GcPhase::Stw2 ||
                   Phase == GcPhase::Stw3;
      E.Kind = Ph == "B" ? (Pause ? TraceEventKind::PauseBegin
                                  : TraceEventKind::PhaseBegin)
                         : (Pause ? TraceEventKind::PauseEnd
                                  : TraceEventKind::PhaseEnd);
      E.A = static_cast<uint64_t>(Phase);
      if (E.Kind == TraceEventKind::PhaseBegin &&
          Phase == GcPhase::EcSelect) {
        E.B = traceBitsFromDouble(Args["confidence"].numberOr(0));
        E.C = Args["hotness"].isBool() && Args["hotness"].boolean() ? 1
                                                                    : 0;
      }
    } else if (Ph == "i" && instantFromName(Name, Instant)) {
      E.Kind = Instant;
      switch (Instant) {
      case TraceEventKind::HotmapReset:
        E.A = numArg(Args, "pages");
        break;
      case TraceEventKind::EcPageConsidered:
      case TraceEventKind::EcPageSelected:
        E.A = hexArg(Args, "page");
        E.B = numArg(Args, "live_bytes");
        E.C = numArg(Args, "hot_bytes");
        E.D = traceBitsFromDouble(Args["wlb"].numberOr(0));
        break;
      case TraceEventKind::EcPageReclaimed:
        E.A = hexArg(Args, "page");
        E.B = numArg(Args, "page_bytes");
        break;
      case TraceEventKind::HotFlag:
        E.A = hexArg(Args, "addr");
        E.B = numArg(Args, "bytes");
        break;
      case TraceEventKind::Relocation:
        E.A = hexArg(Args, "from");
        E.B = hexArg(Args, "to");
        E.C = numArg(Args, "bytes");
        break;
      case TraceEventKind::AllocStall:
        E.A = numArg(Args, "bytes");
        E.B = numArg(Args, "attempt");
        E.C = numArg(Args, "cycles");
        break;
      case TraceEventKind::EmergencyCycle:
        E.A = numArg(Args, "used_bytes");
        E.B = numArg(Args, "quarantined_bytes");
        break;
      default:
        break;
      }
    } else {
      continue; // foreign event; tolerate and skip
    }
    Out.Events.push_back(E);
    TraceThreadInfo &Info = Threads[Tid];
    Info.Tid = Tid;
    Info.GcThread = Info.GcThread || E.GcThread;
    ++Info.Events;
  }
  for (auto &[Tid, Info] : Threads)
    Out.Threads.push_back(Info);
  std::stable_sort(Out.Events.begin(), Out.Events.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     return A.TimeNs < B.TimeNs;
                   });
  return true;
}
