//===- observe/TraceJson.h - Chrome trace_event JSON I/O -------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes a collected trace to the Chrome trace_event JSON format
/// (the `{"traceEvents":[...]}` object form, loadable in chrome://tracing
/// and Perfetto) and reads such a file back into TraceEvents. Phases and
/// pauses become duration ("B"/"E") events; per-object facts (hot flags,
/// relocations, EC decisions) become thread-scoped instant ("i") events
/// with their payload in args. Addresses are emitted as hex strings so
/// they survive the double-typed JSON number space exactly; WLB weights
/// and confidences are emitted as JSON doubles.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_OBSERVE_TRACEJSON_H
#define HCSGC_OBSERVE_TRACEJSON_H

#include "observe/TraceBuffer.h"

#include <cstdio>
#include <string>

namespace hcsgc {

/// Renders \p T as a Chrome trace_event JSON document.
std::string chromeTraceToString(const CollectedTrace &T);

/// Writes chromeTraceToString(T) to \p Out.
void writeChromeTrace(const CollectedTrace &T, std::FILE *Out);

/// Parses a Chrome trace_event document produced by the writer above
/// back into events (sorted by timestamp) and thread info. Unknown
/// events are skipped. \returns false and sets \p Error on malformed
/// input.
bool readChromeTrace(const std::string &Text, CollectedTrace &Out,
                     std::string &Error);

} // namespace hcsgc

#endif // HCSGC_OBSERVE_TRACEJSON_H
