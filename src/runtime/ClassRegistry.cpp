//===- runtime/ClassRegistry.cpp - User type registry --------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ClassRegistry.h"

#include "support/Compiler.h"

using namespace hcsgc;

ClassId ClassRegistry::registerClass(std::string Name, uint8_t NumRefs,
                                     uint32_t PayloadBytes) {
  std::lock_guard<std::mutex> G(Lock);
  if (Classes.size() >= 0xffff)
    fatalError("class registry full");
  ClassInfo Info;
  Info.Name = std::move(Name);
  Info.NumRefs = NumRefs;
  Info.PayloadBytes = PayloadBytes;
  Info.SizeBytes =
      static_cast<uint32_t>(objectSizeFor(NumRefs, PayloadBytes));
  Classes.push_back(std::move(Info));
  return static_cast<ClassId>(Classes.size() - 1);
}

const ClassInfo &ClassRegistry::info(ClassId Id) const {
  std::lock_guard<std::mutex> G(Lock);
  if (Id >= Classes.size())
    fatalError("unknown class id");
  return Classes[Id];
}

size_t ClassRegistry::size() const {
  std::lock_guard<std::mutex> G(Lock);
  return Classes.size();
}
