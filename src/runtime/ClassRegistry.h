//===- runtime/ClassRegistry.h - User type registry ------------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registry mapping class ids to object shapes. The collector itself only
/// needs the header (references-first layout); the registry exists so
/// user code can allocate by class id and introspect objects.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_RUNTIME_CLASSREGISTRY_H
#define HCSGC_RUNTIME_CLASSREGISTRY_H

#include "heap/ObjectModel.h"

#include <deque>
#include <mutex>
#include <string>

namespace hcsgc {

/// Shape of a registered class.
struct ClassInfo {
  std::string Name;
  uint8_t NumRefs = 0;
  uint32_t PayloadBytes = 0;
  /// Total object size (header + refs + payload, aligned).
  uint32_t SizeBytes = 0;
};

/// Thread-safe class registry.
class ClassRegistry {
public:
  /// Registers a class with \p NumRefs reference slots followed by
  /// \p PayloadBytes of raw payload.
  ClassId registerClass(std::string Name, uint8_t NumRefs,
                        uint32_t PayloadBytes);

  /// \returns the shape of \p Id. Aborts on unknown ids.
  const ClassInfo &info(ClassId Id) const;

  size_t size() const;

  /// Class id used for reference arrays.
  static constexpr ClassId RefArrayClass = 0;

private:
  mutable std::mutex Lock;
  // deque: references returned by info() stay valid across registration.
  std::deque<ClassInfo> Classes{
      {"hcsgc.RefArray", 0, 0, 0}}; // slot 0 reserved for ref arrays
};

} // namespace hcsgc

#endif // HCSGC_RUNTIME_CLASSREGISTRY_H
