//===- runtime/HeapError.h - Typed allocation failures ---------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typed allocation-failure reporting. Heap exhaustion is a recoverable
/// condition: the mutator's allocation slow path stalls through bounded
/// GC-assisted backoff (including one emergency synchronous cycle) and,
/// if the heap is still full, surfaces HeapExhausted to the caller — it
/// never aborts the process. Callers pick their idiom: the try* API
/// returns AllocStatus, the classic allocate* API throws
/// HeapExhaustedError.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_RUNTIME_HEAPERROR_H
#define HCSGC_RUNTIME_HEAPERROR_H

#include <cstdint>
#include <cstdio>
#include <new>

namespace hcsgc {

/// Result of a try* allocation.
enum class AllocStatus {
  Ok,
  /// The heap stayed full through every stall retry and the emergency
  /// cycle. The runtime is intact; dropping references and collecting
  /// makes allocation succeed again.
  HeapExhausted,
};

/// Thrown by the non-try allocation API on heap exhaustion. Derives from
/// std::bad_alloc so existing OOM handling composes; carries enough
/// context to log a useful diagnosis.
class HeapExhaustedError : public std::bad_alloc {
public:
  HeapExhaustedError(size_t RequestedBytes, unsigned StallAttempts,
                     uint64_t CyclesWaited)
      : Requested(RequestedBytes), Attempts(StallAttempts),
        Cycles(CyclesWaited) {
    std::snprintf(Buf, sizeof(Buf),
                  "heap exhausted: %zu-byte allocation failed after %u "
                  "GC stalls (%llu cycles)",
                  Requested, Attempts, (unsigned long long)Cycles);
  }

  const char *what() const noexcept override { return Buf; }

  size_t requestedBytes() const { return Requested; }
  unsigned stallAttempts() const { return Attempts; }
  uint64_t cyclesWaited() const { return Cycles; }

private:
  size_t Requested;
  unsigned Attempts;
  uint64_t Cycles;
  char Buf[112];
};

} // namespace hcsgc

#endif // HCSGC_RUNTIME_HEAPERROR_H
