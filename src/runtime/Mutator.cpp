//===- runtime/Mutator.cpp - Mutator thread API --------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Mutator.h"

#include "gc/Marker.h"
#include "inject/FaultInject.h"
#include "runtime/Runtime.h"
#include "support/Compiler.h"
#include "support/MathExtras.h"
#include "support/Stopwatch.h"

#include <algorithm>

using namespace hcsgc;

// --- Root ------------------------------------------------------------------

Root::Root(Mutator &M) : Owner(M), Prev(M.RootHead) { M.RootHead = this; }

Root::~Root() {
  assert(Owner.RootHead == this &&
         "roots must be destroyed in LIFO order");
  Owner.RootHead = Prev;
}

// --- Mutator lifecycle ----------------------------------------------------

Mutator::Mutator(Runtime &RT) : RT(RT), Heap(RT.heap()) {
  const GcConfig &Cfg = Heap.config();
  if (Cfg.EnableProbes) {
    Probe = std::make_unique<CacheHierarchy>(Cfg.Cache);
    Ctx.Probe = Probe.get();
  }
  TlabRefills = &Heap.metrics().counter("alloc.tlab.refills");
  PretenureRefills =
      &Heap.metrics().counter("alloc.tlab.pretenure_refills");
  RT.SP.registerMutator(); // blocks while a pause is in flight
  Heap.registerContext(&Ctx);
  {
    std::lock_guard<std::mutex> G(RT.MutatorLock);
    RT.Mutators.push_back(this);
  }
}

Mutator::~Mutator() {
  assert(RootHead == nullptr && "detaching a mutator with live roots");
  // Release the TLAB and relocation targets from target duty: no pause
  // can run while this registered mutator is outside a poll, so the
  // unpin cannot race STW1's resetAllocTargets. Detach also surrenders
  // the persistent pretenure TLAB that STW1 leaves in place.
  Ctx.releaseAllocTargets();
  // Publish any marking work this thread still buffers, and drain the
  // probe-event batch so the counters merged below are complete.
  flushMarkBuffer(Heap, Ctx);
  Ctx.flushProbes();
  RT.SP.unregisterMutator();
  Heap.unregisterContext(&Ctx);
  {
    std::lock_guard<std::mutex> G(RT.MutatorLock);
    RT.Mutators.erase(
        std::remove(RT.Mutators.begin(), RT.Mutators.end(), this),
        RT.Mutators.end());
  }
  if (Probe) {
    std::lock_guard<std::mutex> G(RT.CounterLock);
    RT.DetachedMutatorCounters += Probe->counters();
  }
}

void Mutator::poll() {
  if (HCSGC_UNLIKELY(RT.SP.pollNeeded())) {
    // Parking is a flush point for both deferred planes: buffered mark
    // work must be published for STW termination, and the probe-event
    // batch must drain so any mid-pause counter aggregation is exact.
    flushMarkBuffer(Heap, Ctx);
    Ctx.flushProbes();
    RT.SP.park();
  }
}

void Mutator::requestGcAndWait() {
  flushMarkBuffer(Heap, Ctx);
  Ctx.flushProbes();
  BlockedScope B(RT.SP);
  RT.Driver->requestCycleAndWait();
}

// --- Resolution and allocation -----------------------------------------------

uintptr_t Mutator::resolve(const Root &R) {
  return oopAddr(loadBarrier(Heap, &R.Slot, Ctx));
}

uintptr_t Mutator::resolveNonNull(const Root &R) {
  uintptr_t Addr = resolve(R);
  if (HCSGC_UNLIKELY(Addr == 0))
    fatalError("null reference dereferenced");
  return Addr;
}

void Mutator::maybeTriggerGc() {
  const PageAllocator &Alloc = Heap.allocator();
  const GcConfig &Cfg = Heap.config();
  double Max = static_cast<double>(Alloc.maxHeapBytes());
  if (Alloc.usedBytes() >=
          static_cast<size_t>(Cfg.TriggerFraction * Max) &&
      Heap.allocatedSinceCycle() >=
          static_cast<uint64_t>(Cfg.TriggerHysteresisFraction * Max))
    RT.Driver->requestCycle();
}

uintptr_t Mutator::allocFast(size_t Bytes) {
  const HeapGeometry &Geo = Heap.config().Geometry;
  if (Bytes <= Geo.smallObjectMax())
    return Ctx.AllocPage ? Ctx.AllocPage->allocate(Bytes) : 0;
  if (Bytes <= Geo.mediumObjectMax())
    return Ctx.MediumAllocPage ? Ctx.MediumAllocPage->allocate(Bytes) : 0;
  return 0; // large objects have no TLAB
}

uintptr_t Mutator::allocMid(size_t Bytes) {
  const HeapGeometry &Geo = Heap.config().Geometry;
  if (Bytes <= Geo.smallObjectMax()) {
    // Small-TLAB refill: one page from the sharded allocator (zero shard
    // locks on the common path — the cached-unit pop, registry insert and
    // page-table install are all lock-free; only a cache miss locks), swap
    // it in as the new pinned bump target.
    Page *P = nullptr;
    if (!HCSGC_INJECT_FAIL(TlabRefill))
      P = Heap.allocator().allocatePage(PageSizeClass::Small, Bytes,
                                        Heap.currentCycle());
    if (!P)
      return 0;
    if (Ctx.AllocPage)
      Ctx.AllocPage->unpinAsTarget();
    P->pinAsTarget();
    Ctx.AllocPage = P;
    if (TlabRefills)
      TlabRefills->increment();
    // TLAB refill is the batching protocol's slow-path flush point: the
    // refill already left the fast path, so drain the probe ring here
    // rather than on the allocation fast path.
    Ctx.flushProbes();
    uintptr_t Addr = P->allocate(Bytes);
    Heap.noteAllocation(P->size());
    maybeTriggerGc();
    return Addr;
  }
  // Medium (TLAB refill in GcHeap) and large objects.
  return Heap.allocateShared(Ctx, Bytes);
}

uintptr_t Mutator::allocPretenure(size_t Bytes, SiteRoute Route) {
  if (Ctx.PretenureAllocPage) {
    uintptr_t Addr = Ctx.PretenureAllocPage->allocate(Bytes);
    if (Addr)
      return Addr;
  }
  // Refill like a small-TLAB refill (budgeted allocatePage, not the
  // relocation reserve — pretenuring must never eat evacuation
  // headroom). The fresh page is stamped with the site's destination
  // tier so the cold-resident accounting and reclaim pass see it.
  Page *P = nullptr;
  if (!HCSGC_INJECT_FAIL(TlabRefill))
    P = Heap.allocator().allocatePage(PageSizeClass::Small, Bytes,
                                      Heap.currentCycle());
  if (!P)
    return 0;
  if (Ctx.PretenureAllocPage)
    Ctx.PretenureAllocPage->unpinAsTarget();
  P->pinAsTarget();
  Heap.allocator().notePageTier(
      P, Route == SiteRoute::Cold ? PageTier::Cold : PageTier::Warm);
  Ctx.PretenureAllocPage = P;
  if (PretenureRefills)
    PretenureRefills->increment();
  uintptr_t Addr = P->allocate(Bytes);
  Heap.noteAllocation(P->size());
  maybeTriggerGc();
  return Addr;
}

uintptr_t Mutator::allocRaw(size_t Bytes, StallInfo &SI, SiteId Site) {
  poll();
  const GcConfig &Cfg = Heap.config();
  const HeapGeometry &Geo = Cfg.Geometry;
  const bool Shared = Bytes > Geo.smallObjectMax();
  // Site hooks only engage for tagged small allocations with the profile
  // table armed; everything else keeps the pre-site code path exactly.
  SiteProfileTable *Prof =
      Site != UnknownSiteId && !Shared ? Heap.siteProfile() : nullptr;
  // Each ordinary stall waits for one full cycle — two under
  // LAZYRELOCATE, where cycle k defers its relocation set and only
  // cycle k+1's drain actually releases the evacuated memory.
  const unsigned CyclesPerStall = Cfg.LazyRelocate ? 2 : 1;
  const unsigned Retries = std::max(1u, Cfg.AllocStallRetries);

  for (unsigned Attempt = 0; Attempt <= Retries; ++Attempt) {
    // Tier 0 (pretenure): sites with a cold/warm verdict bump into the
    // secondary TLAB; a denied refill falls through to the normal tiers.
    // Tier 1 (fast): TLAB bump, no locks. Tier 2 (mid): refill from the
    // sharded allocator. Tier 3 (slow, below): GC-assisted stall.
    uintptr_t Addr = 0;
    bool Pretenured = false;
    if (Prof) {
      SiteRoute Route = Prof->routeOf(Site);
      if (Route != SiteRoute::Hot) {
        Addr = allocPretenure(Bytes, Route);
        Pretenured = Addr != 0;
      }
    }
    if (!Addr)
      Addr = allocFast(Bytes);
    if (!Addr) {
      Addr = allocMid(Bytes);
      if (Addr && Shared) {
        // Small refills account the whole page inside allocMid; shared
        // classes pace the trigger per object, as before the tiering.
        Heap.noteAllocation(Bytes);
        maybeTriggerGc();
      }
    } else if (Shared) {
      Heap.noteAllocation(Bytes);
      maybeTriggerGc();
    }
    if (Addr) {
      if (Prof) {
        if (Page *P = Heap.pageTable().lookup(Addr))
          P->stampSite(Addr, Site);
        Prof->noteAllocation(Site, alignUp(Bytes, ObjectAlignment),
                             Pretenured);
      }
      return Addr;
    }
    if (Attempt == Retries)
      break; // retries exhausted; surface HeapExhausted to the caller

    // Allocation stall: GC-assisted backoff. The last retry runs an
    // emergency synchronous cycle that drains the deferred relocation
    // set immediately, so exhaustion is only declared once everything
    // reclaimable has actually been reclaimed.
    bool Emergency = Attempt + 1 == Retries;
    unsigned WaitCycles = Emergency ? 1 : CyclesPerStall;
    HCSGC_TRACE(Heap.traceSession(), Ctx.Trace, Ctx.IsGcThread,
                TraceEventKind::AllocStall, Heap.currentCycle(), Bytes,
                Attempt, WaitCycles);
    flushMarkBuffer(Heap, Ctx);
    Ctx.flushProbes();
    {
      Stopwatch StallSw;
      BlockedScope B(RT.SP);
      if (Emergency)
        RT.Driver->requestEmergencyCycleAndWait();
      else
        RT.Driver->requestCyclesAndWait(CyclesPerStall);
      Heap.recordAllocStall(StallSw.elapsedNs() / 1000);
    }
    ++SI.Attempts;
    SI.CyclesWaited += WaitCycles;
    poll();
  }
  return 0;
}

// --- Allocation -----------------------------------------------------------

void Mutator::allocate(Root &Out, ClassId Cls, SiteId Site) {
  const ClassInfo &Info = RT.Classes.info(Cls);
  allocateSized(Out, Cls, Info.NumRefs, Info.PayloadBytes, Site);
}

AllocStatus Mutator::tryAllocate(Root &Out, ClassId Cls, SiteId Site) {
  const ClassInfo &Info = RT.Classes.info(Cls);
  return tryAllocateSized(Out, Cls, Info.NumRefs, Info.PayloadBytes,
                          Site);
}

AllocStatus Mutator::tryAllocateSized(Root &Out, ClassId Cls,
                                      uint8_t NumRefs,
                                      size_t PayloadBytes, SiteId Site) {
  size_t Bytes = objectSizeFor(NumRefs, PayloadBytes);
  StallInfo SI;
  uintptr_t Addr = allocRaw(Bytes, SI, Site);
  if (!Addr) {
    Out.Slot.store(NullOop, std::memory_order_release);
    return AllocStatus::HeapExhausted;
  }
  initializeObject(Addr, static_cast<uint32_t>(Bytes / 8), Cls, NumRefs,
                   OF_None, 0);
  Ctx.probeStore(Addr, HeaderBytes);
  Out.Slot.store(Heap.makeGood(Addr), std::memory_order_release);
  return AllocStatus::Ok;
}

void Mutator::allocateSized(Root &Out, ClassId Cls, uint8_t NumRefs,
                            size_t PayloadBytes, SiteId Site) {
  size_t Bytes = objectSizeFor(NumRefs, PayloadBytes);
  StallInfo SI;
  uintptr_t Addr = allocRaw(Bytes, SI, Site);
  if (HCSGC_UNLIKELY(!Addr))
    throw HeapExhaustedError(Bytes, SI.Attempts, SI.CyclesWaited);
  initializeObject(Addr, static_cast<uint32_t>(Bytes / 8), Cls, NumRefs,
                   OF_None, 0);
  Ctx.probeStore(Addr, HeaderBytes);
  Out.Slot.store(Heap.makeGood(Addr), std::memory_order_release);
}

AllocStatus Mutator::tryAllocateRefArray(Root &Out, uint32_t Length,
                                         SiteId Site) {
  size_t Bytes = refArraySizeFor(Length);
  StallInfo SI;
  uintptr_t Addr = allocRaw(Bytes, SI, Site);
  if (!Addr) {
    Out.Slot.store(NullOop, std::memory_order_release);
    return AllocStatus::HeapExhausted;
  }
  initializeObject(Addr, static_cast<uint32_t>(Bytes / 8),
                   ClassRegistry::RefArrayClass, 0, OF_RefArray, Length);
  Ctx.probeStore(Addr, HeaderBytes + 8);
  Out.Slot.store(Heap.makeGood(Addr), std::memory_order_release);
  return AllocStatus::Ok;
}

void Mutator::allocateRefArray(Root &Out, uint32_t Length, SiteId Site) {
  size_t Bytes = refArraySizeFor(Length);
  StallInfo SI;
  uintptr_t Addr = allocRaw(Bytes, SI, Site);
  if (HCSGC_UNLIKELY(!Addr))
    throw HeapExhaustedError(Bytes, SI.Attempts, SI.CyclesWaited);
  initializeObject(Addr, static_cast<uint32_t>(Bytes / 8),
                   ClassRegistry::RefArrayClass, 0, OF_RefArray, Length);
  Ctx.probeStore(Addr, HeaderBytes + 8);
  Out.Slot.store(Heap.makeGood(Addr), std::memory_order_release);
}

// --- Reference fields --------------------------------------------------------

void Mutator::loadRef(const Root &Obj, uint32_t Idx, Root &Out) {
  poll();
  uintptr_t Addr = resolveNonNull(Obj);
  Ctx.probeLoad(Addr, HeaderBytes);
  ObjectView V(Addr);
  std::atomic<Oop> *Slot = oopSlot(V.refSlotAddr(Idx));
  Ctx.probeLoad(V.refSlotAddr(Idx), 8);
  Oop Val = loadBarrier(Heap, Slot, Ctx);
  Out.Slot.store(Val, std::memory_order_release);
}

void Mutator::storeRef(const Root &Obj, uint32_t Idx, const Root &Val) {
  poll();
  // Resolve the value first: both resolutions happen under the same good
  // color (no poll in between), so the stored oop stays good.
  Oop Good = loadBarrier(Heap, &Val.Slot, Ctx);
  uintptr_t Addr = resolveNonNull(Obj);
  Ctx.probeLoad(Addr, HeaderBytes);
  ObjectView V(Addr);
  storeBarrier(oopSlot(V.refSlotAddr(Idx)), Good);
  Ctx.probeStore(V.refSlotAddr(Idx), 8);
}

void Mutator::storeNullRef(const Root &Obj, uint32_t Idx) {
  poll();
  uintptr_t Addr = resolveNonNull(Obj);
  Ctx.probeLoad(Addr, HeaderBytes);
  ObjectView V(Addr);
  storeBarrier(oopSlot(V.refSlotAddr(Idx)), NullOop);
  Ctx.probeStore(V.refSlotAddr(Idx), 8);
}

void Mutator::copyRoot(const Root &From, Root &To) {
  poll();
  Oop V = loadBarrier(Heap, &From.Slot, Ctx);
  To.Slot.store(V, std::memory_order_release);
}

void Mutator::clearRoot(Root &R) {
  R.Slot.store(NullOop, std::memory_order_release);
}

bool Mutator::refEquals(const Root &A, const Root &B) {
  poll();
  return resolve(A) == resolve(B);
}

// --- Payload ------------------------------------------------------------------

int64_t Mutator::loadWord(const Root &Obj, uint32_t WordIdx) {
  poll();
  uintptr_t Addr = resolveNonNull(Obj);
  Ctx.probeLoad(Addr, HeaderBytes);
  ObjectView V(Addr);
  uintptr_t P = V.payloadAddr() + static_cast<size_t>(WordIdx) * 8;
  assert(P + 8 <= Addr + V.sizeBytes() && "payload index out of range");
  Ctx.probeLoad(P, 8);
  return *reinterpret_cast<const int64_t *>(P);
}

void Mutator::storeWord(const Root &Obj, uint32_t WordIdx, int64_t Value) {
  poll();
  uintptr_t Addr = resolveNonNull(Obj);
  Ctx.probeLoad(Addr, HeaderBytes);
  ObjectView V(Addr);
  uintptr_t P = V.payloadAddr() + static_cast<size_t>(WordIdx) * 8;
  assert(P + 8 <= Addr + V.sizeBytes() && "payload index out of range");
  *reinterpret_cast<int64_t *>(P) = Value;
  Ctx.probeStore(P, 8);
}

// --- Arrays ---------------------------------------------------------------------

uint32_t Mutator::arrayLength(const Root &Arr) {
  poll();
  uintptr_t Addr = resolveNonNull(Arr);
  Ctx.probeLoad(Addr, HeaderBytes + 8);
  ObjectView V(Addr);
  assert(V.isRefArray() && "arrayLength on non-array");
  return V.numRefs();
}

void Mutator::loadElem(const Root &Arr, uint32_t Idx, Root &Out) {
  loadRef(Arr, Idx, Out);
}

void Mutator::storeElem(const Root &Arr, uint32_t Idx, const Root &Val) {
  storeRef(Arr, Idx, Val);
}

void Mutator::storeElemNull(const Root &Arr, uint32_t Idx) {
  storeNullRef(Arr, Idx);
}

// --- Global roots ------------------------------------------------------------------

void Mutator::loadGlobal(const GlobalRoot &G, Root &Out) {
  poll();
  Oop V = loadBarrier(Heap, &G.Slot, Ctx);
  Out.Slot.store(V, std::memory_order_release);
}

void Mutator::storeGlobal(GlobalRoot &G, const Root &Val) {
  poll();
  Oop Good = loadBarrier(Heap, &Val.Slot, Ctx);
  G.Slot.store(Good, std::memory_order_release);
}

// --- Introspection -----------------------------------------------------------------

ClassId Mutator::classOf(const Root &Obj) {
  poll();
  uintptr_t Addr = resolveNonNull(Obj);
  Ctx.probeLoad(Addr, HeaderBytes);
  return ObjectView(Addr).classId();
}

uint32_t Mutator::numRefs(const Root &Obj) {
  poll();
  uintptr_t Addr = resolveNonNull(Obj);
  Ctx.probeLoad(Addr, HeaderBytes);
  return ObjectView(Addr).numRefs();
}
