//===- runtime/Mutator.h - Mutator thread API ------------------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mutator-facing API. A Mutator is bound to one application thread
/// and provides allocation and field access; every reference access runs
/// the load barrier, a safepoint poll and (when enabled) the cache-
/// simulator probe — the managed-language contract HCSGC relies on.
///
/// References held across operations must live in Root handles (they are
/// the collector's root set and are healed at STW pauses, exactly like
/// thread stacks in ZGC). Roots are scoped objects with LIFO lifetime on
/// their owning mutator.
///
/// Example:
/// \code
///   hcsgc::Runtime RT(Config);
///   auto M = RT.attachMutator();
///   hcsgc::Root Node(*M);
///   M->allocate(Node, NodeClass);
///   M->storeWord(Node, 0, 42);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_RUNTIME_MUTATOR_H
#define HCSGC_RUNTIME_MUTATOR_H

#include "gc/Barrier.h"
#include "gc/GcHeap.h"
#include "runtime/ClassRegistry.h"
#include "runtime/HeapError.h"
#include "simcache/Hierarchy.h"

#include <memory>

namespace hcsgc {

class Mutator;
class Runtime;

/// A GC root holding one reference. Scoped to a mutator with LIFO
/// lifetime (assert-enforced). Copyable only through Mutator::copyRoot.
class Root {
public:
  explicit Root(Mutator &M);
  ~Root();

  Root(const Root &) = delete;
  Root &operator=(const Root &) = delete;

  /// \returns true if this root holds no reference. (Null-ness can only
  /// be changed by the owning thread, so no barrier is required.)
  bool isNull() const {
    return Slot.load(std::memory_order_relaxed) == NullOop;
  }

  /// Raw (possibly stale-colored) oop value, for tests and debugging
  /// tools only; never dereference it.
  Oop rawOop() const { return Slot.load(std::memory_order_relaxed); }

private:
  friend class Mutator;
  friend class Runtime;
  Mutator &Owner;
  Root *Prev;
  // mutable: the load barrier self-heals slots of logically-const roots.
  mutable std::atomic<Oop> Slot{NullOop};
};

/// A heap reference owned by the runtime rather than a mutator scope;
/// lives until destroyed via Runtime::destroyGlobalRoot.
class GlobalRoot {
public:
  /// Overwrites the slot with an arbitrary raw value, bypassing every
  /// barrier. Exists so tests can plant corrupted references for the
  /// heap verifier to find; never use it in real code.
  void poisonForTests(Oop V) {
    Slot.store(V, std::memory_order_relaxed);
  }

private:
  friend class Mutator;
  friend class Runtime;
  mutable std::atomic<Oop> Slot{NullOop};
};

/// Per-thread mutator handle. Create via Runtime::attachMutator; use only
/// from the creating thread.
class Mutator {
public:
  ~Mutator();

  Mutator(const Mutator &) = delete;
  Mutator &operator=(const Mutator &) = delete;

  // --- Allocation --------------------------------------------------------
  //
  // Heap exhaustion is recoverable: the slow path stalls through
  // GcConfig::AllocStallRetries GC-assisted retries (each waiting one
  // full cycle, or two under LAZYRELOCATE, the last one an emergency
  // synchronous cycle), and only then reports failure — the allocate*
  // family by throwing HeapExhaustedError, the tryAllocate* family by
  // returning AllocStatus::HeapExhausted with \p Out left null. The
  // process is never aborted.

  // Every allocation entry point takes an optional allocation-site id
  // (tag call sites with HCSGC_ALLOC_SITE("name"); the default leaves
  // the allocation anonymous, so existing callers compile unchanged).
  // With SITEPROFILING on, tagged small allocations are stamped into
  // the page's site side table, accounted in the site profile, and —
  // once the site's profile proves it persistently cold — routed to a
  // warm/cold-tier page through the per-thread pretenure TLAB
  // (INTERNALS §13). Without the knob a tag costs nothing beyond the
  // defaulted argument.

  /// Allocates an instance of \p Cls into \p Out (ref slots null, payload
  /// zero). \throws HeapExhaustedError when the heap stays full.
  void allocate(Root &Out, ClassId Cls, SiteId Site = UnknownSiteId);

  /// Allocates a reference array of \p Length null elements into \p Out.
  /// \throws HeapExhaustedError when the heap stays full.
  void allocateRefArray(Root &Out, uint32_t Length,
                        SiteId Site = UnknownSiteId);

  /// Allocates a variable-sized object: \p NumRefs reference slots plus
  /// \p PayloadBytes of raw payload, tagged with \p Cls.
  /// \throws HeapExhaustedError when the heap stays full.
  void allocateSized(Root &Out, ClassId Cls, uint8_t NumRefs,
                     size_t PayloadBytes, SiteId Site = UnknownSiteId);

  /// Non-throwing variants: \returns AllocStatus::HeapExhausted (leaving
  /// \p Out null) instead of throwing.
  AllocStatus tryAllocate(Root &Out, ClassId Cls,
                          SiteId Site = UnknownSiteId);
  AllocStatus tryAllocateRefArray(Root &Out, uint32_t Length,
                                  SiteId Site = UnknownSiteId);
  AllocStatus tryAllocateSized(Root &Out, ClassId Cls, uint8_t NumRefs,
                               size_t PayloadBytes,
                               SiteId Site = UnknownSiteId);

  // --- Reference fields ----------------------------------------------------

  /// Loads reference slot \p Idx of \p Obj into \p Out.
  void loadRef(const Root &Obj, uint32_t Idx, Root &Out);

  /// Stores \p Val into reference slot \p Idx of \p Obj.
  void storeRef(const Root &Obj, uint32_t Idx, const Root &Val);

  /// Stores null into reference slot \p Idx of \p Obj.
  void storeNullRef(const Root &Obj, uint32_t Idx);

  /// Copies one root into another (no heap access).
  void copyRoot(const Root &From, Root &To);

  /// Clears \p R to null.
  void clearRoot(Root &R);

  /// \returns true if \p A and \p B refer to the same object (or are both
  /// null).
  bool refEquals(const Root &A, const Root &B);

  // --- Payload (8-byte words, indexed after the ref slots) -----------------

  int64_t loadWord(const Root &Obj, uint32_t WordIdx);
  void storeWord(const Root &Obj, uint32_t WordIdx, int64_t Value);

  // --- Arrays ---------------------------------------------------------------

  uint32_t arrayLength(const Root &Arr);
  void loadElem(const Root &Arr, uint32_t Idx, Root &Out);
  void storeElem(const Root &Arr, uint32_t Idx, const Root &Val);
  void storeElemNull(const Root &Arr, uint32_t Idx);

  // --- Global roots -----------------------------------------------------------

  void loadGlobal(const GlobalRoot &G, Root &Out);
  void storeGlobal(GlobalRoot &G, const Root &Val);

  // --- Introspection -----------------------------------------------------------

  ClassId classOf(const Root &Obj);
  uint32_t numRefs(const Root &Obj);

  // --- GC interaction -----------------------------------------------------------

  /// Safepoint poll; called implicitly by every operation above.
  void poll();

  /// Requests a GC cycle and blocks (as a safepoint-blocked mutator)
  /// until it completes.
  void requestGcAndWait();

  /// Adds \p N simulated compute cycles to this thread's time model.
  void simulateWork(uint64_t N) { Ctx.probeCompute(N); }

  /// This thread's cache counters (zero if probes are disabled). Drains
  /// the probe-event batch first so the numbers include every recorded
  /// access; call from this thread, or only while it is quiescent.
  CacheCounters counters() const {
    if (!Probe)
      return CacheCounters();
    const_cast<Mutator *>(this)->Ctx.flushProbes();
    return Probe->counters();
  }

  Runtime &runtime() { return RT; }

private:
  friend class Runtime;
  friend class Root;

  explicit Mutator(Runtime &RT);

  /// Barrier on a root slot; \returns the current raw address (0 = null).
  uintptr_t resolve(const Root &R);
  uintptr_t resolveNonNull(const Root &R);

  /// Stall diagnostics of the most recent allocRaw slow path, reported
  /// through HeapExhaustedError on failure.
  struct StallInfo {
    unsigned Attempts = 0;
    uint64_t CyclesWaited = 0;
  };

  /// Allocates zeroed object memory through three explicit tiers — fast
  /// (TLAB bump, no locks), mid (page refill, one shard lock), slow
  /// (GC-assisted stall/backoff) — see INTERNALS §10. \p Site routes
  /// cold-profiled small allocations through the pretenure TLAB and is
  /// stamped into the destination page's site table. \returns 0 once
  /// every stall retry (including the final emergency cycle) failed;
  /// never aborts.
  uintptr_t allocRaw(size_t Bytes, StallInfo &SI, SiteId Site);
  /// Pretenure tier: bump into (or refill) the secondary cold/warm TLAB
  /// for a site routed off the hot path. Best-effort — \returns 0 when
  /// the refill is denied, and the caller falls back to the normal path.
  uintptr_t allocPretenure(size_t Bytes, SiteRoute Route);
  /// Fast tier: bump into this thread's small or medium TLAB. Touches no
  /// lock and no shared allocator state. \returns 0 when the TLAB is
  /// missing/full or the size class has no TLAB (large).
  uintptr_t allocFast(size_t Bytes);
  /// Mid tier: refill the TLAB from the sharded page allocator (one
  /// shard lock in the common case) or take the shared large/medium slow
  /// path. \returns 0 on heap exhaustion; the caller then stalls.
  uintptr_t allocMid(size_t Bytes);
  void maybeTriggerGc();

  Runtime &RT;
  GcHeap &Heap;
  ThreadContext Ctx;
  std::unique_ptr<CacheHierarchy> Probe;
  Root *RootHead = nullptr;
  /// Mirror of alloc.tlab.refills, cached at attach time (registry
  /// lookup takes a lock; updates do not).
  Counter *TlabRefills = nullptr;
  /// Mirror of alloc.tlab.pretenure_refills (SITEPROFILING).
  Counter *PretenureRefills = nullptr;
};

} // namespace hcsgc

#endif // HCSGC_RUNTIME_MUTATOR_H
