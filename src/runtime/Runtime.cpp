//===- runtime/Runtime.cpp - The HCSGC runtime ----------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

#include "observe/TraceJson.h"

#include <algorithm>
#include <cstdio>

using namespace hcsgc;

Runtime::Runtime(const GcConfig &Cfg) : Heap(Cfg) {
  RuntimeHooks Hooks;
  Hooks.ForEachRoot =
      [this](const std::function<void(std::atomic<Oop> *)> &Fn) {
        forEachRoot(Fn);
      };
  Driver = std::make_unique<GcDriver>(Heap, SP, std::move(Hooks));
}

Runtime::~Runtime() {
  Driver->shutdown();
  assert(Mutators.empty() && "mutators must detach before the runtime "
                             "is destroyed");
}

std::unique_ptr<Mutator> Runtime::attachMutator() {
  return std::unique_ptr<Mutator>(new Mutator(*this));
}

GlobalRoot *Runtime::createGlobalRoot() {
  std::lock_guard<std::mutex> G(GlobalRootLock);
  GlobalRoots.push_back(std::make_unique<GlobalRoot>());
  return GlobalRoots.back().get();
}

void Runtime::destroyGlobalRoot(GlobalRoot *Root) {
  std::lock_guard<std::mutex> G(GlobalRootLock);
  GlobalRoots.erase(
      std::remove_if(GlobalRoots.begin(), GlobalRoots.end(),
                     [Root](const std::unique_ptr<GlobalRoot> &P) {
                       return P.get() == Root;
                     }),
      GlobalRoots.end());
}

void Runtime::forEachRoot(
    const std::function<void(std::atomic<Oop> *)> &Fn) {
  // Called inside STW pauses only: mutators are parked, so their Root
  // chains are stable.
  {
    std::lock_guard<std::mutex> G(MutatorLock);
    for (Mutator *M : Mutators)
      for (Root *R = M->RootHead; R; R = R->Prev)
        Fn(&R->Slot);
  }
  {
    std::lock_guard<std::mutex> G(GlobalRootLock);
    for (const auto &GR : GlobalRoots)
      Fn(&GR->Slot);
  }
}

bool Runtime::dumpTrace(const std::string &Path) {
  CollectedTrace T = collectTrace();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  writeChromeTrace(T, F);
  std::fclose(F);
  return true;
}

CacheCounters Runtime::mutatorCounters() const {
  CacheCounters Sum;
  {
    std::lock_guard<std::mutex> G(CounterLock);
    Sum += DetachedMutatorCounters;
  }
  {
    std::lock_guard<std::mutex> G(MutatorLock);
    for (const Mutator *M : Mutators)
      Sum += M->counters();
  }
  return Sum;
}
