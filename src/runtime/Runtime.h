//===- runtime/Runtime.h - The HCSGC runtime -------------------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Top-level runtime object: owns the heap, the safepoint manager, the GC
/// driver (coordinator + workers) and the class registry, and tracks
/// attached mutators (whose Root chains form the root set).
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_RUNTIME_RUNTIME_H
#define HCSGC_RUNTIME_RUNTIME_H

#include "gc/Driver.h"
#include "gc/Verifier.h"
#include "gc/GcHeap.h"
#include "gc/Safepoint.h"
#include "runtime/ClassRegistry.h"
#include "runtime/Mutator.h"

#include <memory>
#include <mutex>
#include <vector>

namespace hcsgc {

/// One managed heap plus its collector threads.
class Runtime {
public:
  explicit Runtime(const GcConfig &Cfg);
  ~Runtime();

  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;

  /// Registers a class shape; typically done once at startup.
  ClassId registerClass(std::string Name, uint8_t NumRefs,
                        uint32_t PayloadBytes) {
    return Classes.registerClass(std::move(Name), NumRefs, PayloadBytes);
  }

  /// Attaches the calling thread as a mutator. Use the returned object
  /// only from this thread; destroy it (from the same thread) to detach.
  std::unique_ptr<Mutator> attachMutator();

  /// Creates/destroys a runtime-lifetime root.
  GlobalRoot *createGlobalRoot();
  void destroyGlobalRoot(GlobalRoot *G);

  /// Asynchronously requests a GC cycle.
  void requestGc() { Driver->requestCycle(); }

  /// Requests a cycle and waits for completion. Only call from threads
  /// that are NOT attached mutators (mutators use
  /// Mutator::requestGcAndWait, which cooperates with safepoints).
  void collectFromExternalThread() { Driver->requestCycleAndWait(); }

  // --- Introspection -------------------------------------------------------

  size_t usedBytes() const { return Heap.allocator().usedBytes(); }
  size_t quarantinedBytes() const {
    return Heap.allocator().quarantinedBytes();
  }
  size_t maxHeapBytes() const { return Heap.allocator().maxHeapBytes(); }
  GcStats &gcStats() { return Heap.stats(); }
  const GcConfig &config() const { return Heap.config(); }
  MetricsRegistry &metrics() { return Heap.metrics(); }

  // --- Tracing -------------------------------------------------------------

  /// Toggles GC event tracing at runtime (also armed at startup by
  /// GcConfig::TraceEnabled). Cheap to leave off: disabled sites pay one
  /// relaxed load on slow paths only.
  void setTraceEnabled(bool On) { Heap.traceSession().setEnabled(On); }
  bool traceEnabled() const { return Heap.traceSession().enabled(); }

  /// Drains all per-thread trace buffers into one time-sorted stream.
  /// Call while the driver is idle and mutators are quiescent; collection
  /// consumes the buffered events.
  CollectedTrace collectTrace() {
    Driver->waitIdle();
    return Heap.traceSession().collect();
  }

  /// collectTrace() rendered as Chrome trace_event JSON, written to
  /// \p Path. \returns false if the file cannot be opened.
  bool dumpTrace(const std::string &Path);

  // --- Heap snapshots (the locality observatory) ---------------------------

  /// True when per-cycle page snapshots are being captured (armed at
  /// startup by GcConfig::SnapshotLogEnabled).
  bool snapshotsEnabled() const {
    return Heap.snapshotter().enabled();
  }

  /// Copy of the retained snapshot ring, oldest capture first. Waits for
  /// the driver to go idle so no capture races the copy.
  std::vector<CycleSnapshot> collectSnapshots() {
    Driver->waitIdle();
    return Heap.snapshotter().history();
  }

  /// Writes the retained snapshots as JSONL to \p Path (tools/heapscope
  /// reads this format). \returns false if the file cannot be opened.
  bool dumpSnapshots(const std::string &Path) {
    Driver->waitIdle();
    return Heap.snapshotter().dumpTo(Path);
  }

  /// Aggregated cache counters of all mutators (live + detached). Call
  /// while the workload is quiescent for exact numbers.
  CacheCounters mutatorCounters() const;

  /// Walks the reachable heap checking collector invariants (see
  /// gc/Verifier.h). Call from the only running mutator thread while no
  /// cycle is in flight (it waits for the driver to go idle first).
  VerifyResult verifyHeap() {
    Driver->waitIdle();
    return hcsgc::verifyHeap(
        Heap, [this](const std::function<void(std::atomic<Oop> *)> &Fn) {
          forEachRoot(Fn);
        });
  }

  /// Aggregated cache counters of the GC threads.
  CacheCounters gcThreadCounters() const {
    return Driver->gcThreadCounters();
  }

  // Internal access for the collector implementation and tests.
  GcHeap &heap() { return Heap; }
  SafepointManager &safepoints() { return SP; }
  GcDriver &driver() { return *Driver; }
  ClassRegistry &classes() { return Classes; }

private:
  friend class Mutator;

  void forEachRoot(const std::function<void(std::atomic<Oop> *)> &Fn);

  GcHeap Heap;
  SafepointManager SP;
  ClassRegistry Classes;
  std::unique_ptr<GcDriver> Driver;

  mutable std::mutex MutatorLock;
  std::vector<Mutator *> Mutators;
  mutable std::mutex CounterLock;
  CacheCounters DetachedMutatorCounters;

  std::mutex GlobalRootLock;
  std::vector<std::unique_ptr<GlobalRoot>> GlobalRoots;
};

} // namespace hcsgc

#endif // HCSGC_RUNTIME_RUNTIME_H
