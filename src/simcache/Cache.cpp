//===- simcache/Cache.cpp - Set-associative cache model --------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "simcache/Cache.h"

#include "support/MathExtras.h"

#include <cassert>

using namespace hcsgc;

SetAssocCache::SetAssocCache(uint32_t NumSets, uint32_t Ways)
    : Sets(NumSets), Assoc(Ways) {
  assert(isPowerOf2(NumSets) && "set count must be a power of two");
  assert(Ways >= 1 && "associativity must be at least 1");
  Entries.resize(static_cast<size_t>(Sets) * Assoc);
}

void SetAssocCache::touch(Entry *Set, uint32_t Way) {
  // True LRU via per-entry counters: demote everything more recent than
  // the touched way, then make it the most recent. Assoc is small (<=16),
  // so the linear walk is fine.
  uint32_t Old = Set[Way].Lru;
  for (uint32_t W = 0; W < Assoc; ++W)
    if (Set[W].Valid && Set[W].Lru > Old)
      --Set[W].Lru;
  Set[Way].Lru = Assoc - 1;
}

bool SetAssocCache::access(uint64_t Line) {
  Entry *Set = setFor(Line);
  uint64_t Tag = Line / Sets;
  uint32_t Victim = 0;
  uint32_t VictimLru = ~uint32_t(0);
  for (uint32_t W = 0; W < Assoc; ++W) {
    if (Set[W].Valid && Set[W].Tag == Tag) {
      touch(Set, W);
      return true;
    }
    if (!Set[W].Valid) {
      Victim = W;
      VictimLru = 0;
    } else if (Set[W].Lru < VictimLru) {
      Victim = W;
      VictimLru = Set[W].Lru;
    }
  }
  Set[Victim].Valid = true;
  Set[Victim].Tag = Tag;
  Set[Victim].Lru = 0;
  touch(Set, Victim);
  return false;
}

void SetAssocCache::fill(uint64_t Line) {
  // Same as access but the caller does not treat the result as a demand
  // hit/miss; we simply ensure residency.
  (void)access(Line);
}

bool SetAssocCache::contains(uint64_t Line) const {
  const Entry *Set = setFor(Line);
  uint64_t Tag = Line / Sets;
  for (uint32_t W = 0; W < Assoc; ++W)
    if (Set[W].Valid && Set[W].Tag == Tag)
      return true;
  return false;
}

void SetAssocCache::clear() {
  for (Entry &E : Entries)
    E = Entry();
}
