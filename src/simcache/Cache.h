//===- simcache/Cache.h - Set-associative cache model ----------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A single level of set-associative cache with true-LRU replacement,
/// operating on line addresses. Used as the building block of the
/// three-level hierarchy in Hierarchy.h.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_SIMCACHE_CACHE_H
#define HCSGC_SIMCACHE_CACHE_H

#include <cstdint>
#include <vector>

namespace hcsgc {

/// One cache level. Addresses passed in are *line* numbers (byte address
/// divided by the line size); the cache itself is line-size agnostic.
class SetAssocCache {
public:
  /// \param NumSets number of sets (power of two).
  /// \param Ways associativity.
  SetAssocCache(uint32_t NumSets, uint32_t Ways);

  /// Looks up \p Line and updates LRU state. On a miss the line is
  /// filled (victim evicted).
  /// \returns true on hit.
  bool access(uint64_t Line);

  /// Fills \p Line without it counting as a demand access (prefetch).
  /// The line is inserted at most-recently-used position; a line already
  /// present is just promoted.
  void fill(uint64_t Line);

  /// \returns true if \p Line is currently resident (no LRU update).
  bool contains(uint64_t Line) const;

  /// Drops all contents.
  void clear();

  uint32_t numSets() const { return Sets; }
  uint32_t ways() const { return Assoc; }

private:
  struct Entry {
    uint64_t Tag = ~uint64_t(0);
    uint32_t Lru = 0; ///< Higher = more recently used.
    bool Valid = false;
  };

  Entry *setFor(uint64_t Line) {
    return &Entries[(Line & (Sets - 1)) * Assoc];
  }
  const Entry *setFor(uint64_t Line) const {
    return &Entries[(Line & (Sets - 1)) * Assoc];
  }
  void touch(Entry *Set, uint32_t Way);

  uint32_t Sets;
  uint32_t Assoc;
  std::vector<Entry> Entries;
};

} // namespace hcsgc

#endif // HCSGC_SIMCACHE_CACHE_H
