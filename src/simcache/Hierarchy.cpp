//===- simcache/Hierarchy.cpp - Three-level cache hierarchy ----------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "simcache/Hierarchy.h"

#include "support/MathExtras.h"

using namespace hcsgc;

MemoryProbe::~MemoryProbe() = default;

void MemoryProbe::onBatch(const ProbeEvent *Events, size_t N) {
  // Generic fallback: per-event dispatch, for probe implementations that
  // predate batching (tests, tracing shims). Hierarchies override this.
  for (size_t I = 0; I < N; ++I) {
    if (Events[I].IsStore)
      onStore(Events[I].Addr, Events[I].Bytes);
    else
      onLoad(Events[I].Addr, Events[I].Bytes);
  }
}

static uint32_t setsFor(uint32_t SizeBytes, uint32_t Ways, uint32_t Line) {
  uint32_t Sets = SizeBytes / (Ways * Line);
  return Sets ? Sets : 1;
}

CacheHierarchy::CacheHierarchy(const CacheConfig &C)
    : Cfg(C), L1(setsFor(C.L1Size, C.L1Ways, C.LineSize), C.L1Ways),
      L2(setsFor(C.L2Size, C.L2Ways, C.LineSize), C.L2Ways),
      L3(setsFor(C.L3Size, C.L3Ways, C.LineSize), C.L3Ways),
      Pf(C.StreamTableSize, C.PrefetchDegree) {
  PfTargets.reserve(C.PrefetchDegree);
}

void CacheHierarchy::flush() {
  L1.clear();
  L2.clear();
  L3.clear();
  Pf.reset();
}

void CacheHierarchy::prefetchFill(uint64_t Line) {
  // Prefetches fill L1 and L2 "for free": the model assumes enough memory
  // parallelism to overlap prefetch latency with execution, which is what
  // makes access-order layouts a win in the paper.
  L1.fill(Line);
  L2.fill(Line);
  L3.fill(Line);
  ++Counters.PrefetchesIssued;
}

void CacheHierarchy::demandAccess(uint64_t Line) {
  if (L1.access(Line)) {
    Counters.Cycles += Cfg.L1Lat;
  } else {
    ++Counters.L1Misses;
    if (L2.access(Line)) {
      Counters.Cycles += Cfg.L2Lat;
    } else {
      ++Counters.L2Misses;
      if (L3.access(Line)) {
        Counters.Cycles += Cfg.L3Lat;
      } else {
        ++Counters.LlcMisses;
        Counters.Cycles += Cfg.MemLat;
      }
    }
  }

  if (Cfg.PrefetchEnabled) {
    PfTargets.clear();
    Pf.observe(Line, PfTargets);
    for (uint64_t T : PfTargets)
      if (!L1.contains(T))
        prefetchFill(T);
  }
}

void CacheHierarchy::accessLines(uintptr_t Addr, uint32_t Bytes,
                                 bool IsStore) {
  if (IsStore)
    ++Counters.Stores;
  else
    ++Counters.Loads;
  uint64_t First = Addr / Cfg.LineSize;
  uint64_t Last = (Addr + (Bytes ? Bytes - 1 : 0)) / Cfg.LineSize;
  for (uint64_t Line = First; Line <= Last; ++Line)
    demandAccess(Line);
}

void CacheHierarchy::onLoad(uintptr_t Addr, uint32_t Bytes) {
  accessLines(Addr, Bytes, /*IsStore=*/false);
}

void CacheHierarchy::onStore(uintptr_t Addr, uint32_t Bytes) {
  accessLines(Addr, Bytes, /*IsStore=*/true);
}

void CacheHierarchy::onBatch(const ProbeEvent *Events, size_t N) {
  for (size_t I = 0; I < N; ++I)
    accessLines(Events[I].Addr, Events[I].Bytes, Events[I].IsStore != 0);
}
