//===- simcache/Hierarchy.h - Three-level cache hierarchy ------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A three-level (L1d/L2/LLC) cache hierarchy with a stream prefetcher and
/// a simple cycle model. One instance per thread (no locking); the harness
/// aggregates counters across threads, mirroring how the paper's `perf`
/// counters cover the whole process. Default geometry matches the paper's
/// Intel i7-4600U evaluation machine: 32 KiB L1, 256 KiB L2, 4 MiB L3,
/// 64-byte lines.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_SIMCACHE_HIERARCHY_H
#define HCSGC_SIMCACHE_HIERARCHY_H

#include "simcache/Cache.h"
#include "simcache/Prefetcher.h"
#include "simcache/Probe.h"

#include <cstdint>
#include <vector>

namespace hcsgc {

/// Geometry and latency parameters for the simulated hierarchy.
struct CacheConfig {
  uint32_t LineSize = 64;
  uint32_t L1Size = 32 * 1024, L1Ways = 8;
  uint32_t L2Size = 256 * 1024, L2Ways = 8;
  uint32_t L3Size = 4 * 1024 * 1024, L3Ways = 16;
  /// Access latencies in cycles (L1 hit, L2 hit, LLC hit, memory). The
  /// ~10x L1-to-LLC ratio the paper reasons with in §4.4 holds.
  uint32_t L1Lat = 4, L2Lat = 12, L3Lat = 40, MemLat = 200;
  uint32_t PrefetchDegree = 4;
  uint32_t StreamTableSize = 16;
  bool PrefetchEnabled = true;
};

/// Aggregatable event counters. Field names follow the perf events the
/// paper collects (§4.2): L1-dcache-loads, L1-dcache-load-misses,
/// LLC-load-misses.
struct CacheCounters {
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t L1Misses = 0;
  uint64_t L2Misses = 0;
  uint64_t LlcMisses = 0;
  uint64_t PrefetchesIssued = 0;
  uint64_t Cycles = 0; ///< Simulated cycles, memory + modeled compute.

  CacheCounters &operator+=(const CacheCounters &O) {
    Loads += O.Loads;
    Stores += O.Stores;
    L1Misses += O.L1Misses;
    L2Misses += O.L2Misses;
    LlcMisses += O.LlcMisses;
    PrefetchesIssued += O.PrefetchesIssued;
    Cycles += O.Cycles;
    return *this;
  }
};

/// Per-thread cache hierarchy implementing the MemoryProbe interface.
class CacheHierarchy : public MemoryProbe {
public:
  explicit CacheHierarchy(const CacheConfig &Cfg = CacheConfig());

  void onLoad(uintptr_t Addr, uint32_t Bytes) override;
  void onStore(uintptr_t Addr, uint32_t Bytes) override;
  void onCompute(uint64_t N) override { Counters.Cycles += N; }
  /// Batched replay: one virtual dispatch per ProbeBatch flush, then a
  /// direct (non-virtual) simulation loop. Event order is preserved, so
  /// counters match the per-access path exactly.
  void onBatch(const ProbeEvent *Events, size_t N) override;

  /// \returns the accumulated counters.
  const CacheCounters &counters() const { return Counters; }

  /// Resets counters (cache contents are kept).
  void resetCounters() { Counters = CacheCounters(); }

  /// Drops cache contents and stream state.
  void flush();

  const CacheConfig &config() const { return Cfg; }

private:
  void accessLines(uintptr_t Addr, uint32_t Bytes, bool IsStore);
  void demandAccess(uint64_t Line);
  void prefetchFill(uint64_t Line);

  CacheConfig Cfg;
  SetAssocCache L1, L2, L3;
  StreamPrefetcher Pf;
  CacheCounters Counters;
  std::vector<uint64_t> PfTargets; // scratch, avoids per-access allocation
};

} // namespace hcsgc

#endif // HCSGC_SIMCACHE_HIERARCHY_H
