//===- simcache/Prefetcher.cpp - Stream prefetcher --------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "simcache/Prefetcher.h"

using namespace hcsgc;

StreamPrefetcher::StreamPrefetcher(uint32_t TableSize, uint32_t Degree)
    : Table(TableSize), Degree(Degree) {}

void StreamPrefetcher::reset() {
  for (Stream &S : Table)
    S = Stream();
  Tick = 0;
}

void StreamPrefetcher::observe(uint64_t Line, std::vector<uint64_t> &Targets) {
  ++Tick;

  // Try to extend an existing stream: a hit is an access within +/-2 lines
  // of where the stream expects to be heading.
  Stream *Victim = nullptr;
  uint32_t VictimAge = 0;
  for (Stream &S : Table) {
    if (!S.Valid) {
      Victim = &S;
      VictimAge = ~uint32_t(0);
      continue;
    }
    int64_t Delta = static_cast<int64_t>(Line) -
                    static_cast<int64_t>(S.LastLine);
    if (Delta != 0 && Delta >= -2 && Delta <= 2 &&
        (S.Stride == 0 || (Delta > 0) == (S.Stride > 0))) {
      // Stream continues (we tolerate small jitter from the two-objects-
      // per-line layout the paper's 32-byte objects produce).
      S.Stride = Delta > 0 ? 1 : -1;
      if (S.Confidence < 8)
        ++S.Confidence;
      S.LastLine = Line;
      S.Age = Tick;
      if (S.Confidence >= 2) {
        for (uint32_t I = 1; I <= Degree; ++I)
          Targets.push_back(static_cast<uint64_t>(
              static_cast<int64_t>(Line) + S.Stride * static_cast<int64_t>(I)));
      }
      return;
    }
    uint32_t Age = Tick - S.Age;
    if (!Victim || Age > VictimAge) {
      Victim = &S;
      VictimAge = Age;
    }
  }

  // No stream matched: start training a new one in the LRU slot.
  Victim->Valid = true;
  Victim->LastLine = Line;
  Victim->Stride = 0;
  Victim->Confidence = 0;
  Victim->Age = Tick;
}
