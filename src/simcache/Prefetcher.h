//===- simcache/Prefetcher.h - Stream prefetcher ---------------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hardware-style stream prefetcher. HCSGC's whole point is producing
/// layouts that are "prefetching friendly" (§1, §3): when mutators relocate
/// objects in access order, subsequent passes walk memory near-sequentially
/// and a stream prefetcher hides the remaining misses. This model detects
/// ascending/descending unit-stride line streams and prefetches ahead.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_SIMCACHE_PREFETCHER_H
#define HCSGC_SIMCACHE_PREFETCHER_H

#include <cstdint>
#include <vector>

namespace hcsgc {

/// Detects line-granularity streams and suggests prefetch targets.
class StreamPrefetcher {
public:
  /// \param TableSize number of concurrently tracked streams.
  /// \param Degree how many lines ahead to prefetch once a stream locks.
  StreamPrefetcher(uint32_t TableSize = 16, uint32_t Degree = 4);

  /// Observes a demand access to \p Line.
  /// \param [out] Targets filled with the lines to prefetch (may be empty).
  void observe(uint64_t Line, std::vector<uint64_t> &Targets);

  /// Forgets all tracked streams.
  void reset();

private:
  struct Stream {
    uint64_t LastLine = 0;
    int64_t Stride = 0;   ///< +1 / -1 once locked; 0 while training.
    uint32_t Confidence = 0;
    uint32_t Age = 0;
    bool Valid = false;
  };

  std::vector<Stream> Table;
  uint32_t Degree;
  uint32_t Tick = 0;
};

} // namespace hcsgc

#endif // HCSGC_SIMCACHE_PREFETCHER_H
