//===- simcache/Probe.h - Memory access probe interface --------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The probe interface through which the runtime reports every managed-heap
/// access (mutator field loads/stores, object copies during relocation, GC
/// marking traversal). The paper measured these effects with `perf`
/// hardware counters; we substitute a deterministic software cache
/// simulator that consumes this stream (see DESIGN.md §2).
///
/// The runtime no longer dispatches one virtual call per access: events
/// are recorded into a per-thread ProbeBatch ring (see ProbeBatch.h) and
/// replayed through onBatch at flush points, amortizing the dispatch to
/// one call per 256 accesses (INTERNALS §14).
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_SIMCACHE_PROBE_H
#define HCSGC_SIMCACHE_PROBE_H

#include <cstddef>
#include <cstdint>

namespace hcsgc {

/// One recorded heap access, queued in a per-thread ProbeBatch ring and
/// replayed in FIFO order at flush time. 16 bytes so a 256-entry ring
/// spans one small page's worth of L1 (4 KiB).
struct ProbeEvent {
  uintptr_t Addr;
  uint32_t Bytes;
  uint32_t IsStore; // 0 = load, 1 = store
};

/// Receives one event per managed-heap memory access.
class MemoryProbe {
public:
  virtual ~MemoryProbe();

  /// Called for every heap read of \p Bytes bytes at \p Addr.
  virtual void onLoad(uintptr_t Addr, uint32_t Bytes) = 0;

  /// Called for every heap write of \p Bytes bytes at \p Addr.
  virtual void onStore(uintptr_t Addr, uint32_t Bytes) = 0;

  /// Adds \p N cycles of modeled non-memory work (instruction execution)
  /// to this thread's simulated clock.
  virtual void onCompute(uint64_t N) = 0;

  /// Replays \p N recorded accesses in FIFO order. The default forwards
  /// each event through onLoad/onStore, so existing probe implementations
  /// observe the exact per-access stream they always did; CacheHierarchy
  /// overrides it with a tight loop that skips the per-event virtual
  /// dispatch entirely.
  virtual void onBatch(const ProbeEvent *Events, size_t N);
};

} // namespace hcsgc

#endif // HCSGC_SIMCACHE_PROBE_H
