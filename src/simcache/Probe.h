//===- simcache/Probe.h - Memory access probe interface --------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The probe interface through which the runtime reports every managed-heap
/// access (mutator field loads/stores, object copies during relocation, GC
/// marking traversal). The paper measured these effects with `perf`
/// hardware counters; we substitute a deterministic software cache
/// simulator that consumes this stream (see DESIGN.md §2).
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_SIMCACHE_PROBE_H
#define HCSGC_SIMCACHE_PROBE_H

#include <cstdint>

namespace hcsgc {

/// Receives one event per managed-heap memory access.
class MemoryProbe {
public:
  virtual ~MemoryProbe();

  /// Called for every heap read of \p Bytes bytes at \p Addr.
  virtual void onLoad(uintptr_t Addr, uint32_t Bytes) = 0;

  /// Called for every heap write of \p Bytes bytes at \p Addr.
  virtual void onStore(uintptr_t Addr, uint32_t Bytes) = 0;

  /// Adds \p N cycles of modeled non-memory work (instruction execution)
  /// to this thread's simulated clock.
  virtual void onCompute(uint64_t N) = 0;
};

} // namespace hcsgc

#endif // HCSGC_SIMCACHE_PROBE_H
