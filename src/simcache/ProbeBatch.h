//===- simcache/ProbeBatch.h - Batched probe event ring --------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-thread ring of recorded heap accesses that turns the instrumented
/// barrier fast path into a store + increment. The old path paid a virtual
/// dispatch into the cache simulator on EVERY probed access; now the access
/// is appended here and the simulator sees one onBatch call per full ring
/// (or per flush point: TLAB refill, safepoint park, counter read, thread
/// detach — see INTERNALS §14 for the flush protocol).
///
/// Determinism: events replay in FIFO order, so at SampleShift == 0 the
/// simulated cache state and every counter are bit-identical to the
/// per-access path — modeled compute cycles are an order-independent sum
/// and are drained separately through onCompute. SampleShift > 0 keeps
/// only every 2^shift-th event (deterministic modulus on a per-thread
/// tick, not randomness), trading simulation fidelity for speed; it can
/// never skew WLB or any GC decision because the hotmap/livemap planes do
/// not flow through probes at all.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_SIMCACHE_PROBEBATCH_H
#define HCSGC_SIMCACHE_PROBEBATCH_H

#include "simcache/Probe.h"

#include <cstddef>
#include <cstdint>

namespace hcsgc {

/// Fixed-capacity event ring plus the compute-cycle accumulator. Owned by
/// ThreadContext (single-threaded access; flushes happen on the owning
/// thread or while it is provably quiescent).
struct ProbeBatch {
  /// Ring capacity. 256 events of 16 bytes = 4 KiB: large enough to
  /// amortize the virtual dispatch to < 0.5% of accesses, small enough
  /// to stay L1-resident next to the mutator's working set.
  static constexpr uint32_t Capacity = 256;

  ProbeEvent Events[Capacity];
  uint32_t Count = 0;
  /// Keep every 2^SampleShift-th event (0 = keep all). Bound from
  /// GcConfig::SimcacheSampleShift at context registration.
  uint32_t SampleShift = 0;
  uint64_t SampleTick = 0;
  /// Modeled compute cycles accumulated since the last flush. A plain
  /// sum — order against memory events does not affect any counter — so
  /// it needs no ring slots and never forces a flush by itself.
  uint64_t PendingCompute = 0;

  // Lifetime totals, drained into simcache.batch_* metrics by the
  // owning ThreadContext (ProbeBatch itself stays observe-free).
  uint64_t Flushes = 0;
  uint64_t EventsFlushed = 0;
  uint64_t SampledOut = 0;

  bool empty() const { return Count == 0 && PendingCompute == 0; }

  /// Appends one access. \returns true when the ring just filled and the
  /// caller must flush before recording more.
  bool record(uintptr_t Addr, uint32_t Bytes, bool IsStore) {
    if (SampleShift != 0 &&
        (SampleTick++ & ((uint64_t(1) << SampleShift) - 1)) != 0) {
      ++SampledOut;
      return false;
    }
    Events[Count] = {Addr, Bytes, IsStore ? 1u : 0u};
    return ++Count == Capacity;
  }

  /// Drains the pending compute sum and replays the recorded events into
  /// \p P in FIFO order, then empties the ring.
  void flush(MemoryProbe &P) {
    if (PendingCompute != 0) {
      P.onCompute(PendingCompute);
      PendingCompute = 0;
    }
    if (Count != 0) {
      P.onBatch(Events, Count);
      EventsFlushed += Count;
      ++Flushes;
      Count = 0;
    }
  }
};

} // namespace hcsgc

#endif // HCSGC_SIMCACHE_PROBEBATCH_H
