//===- stats/Bootstrap.cpp - Bootstrap confidence intervals ---------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "stats/Bootstrap.h"

#include "stats/Descriptive.h"
#include "support/Random.h"

#include <algorithm>

using namespace hcsgc;

BootstrapResult hcsgc::bootstrapMean(const std::vector<double> &Sample,
                                     unsigned Resamples, uint64_t Seed) {
  BootstrapResult R;
  if (Sample.empty())
    return R;
  if (Sample.size() == 1) {
    R.MeanEstimate = R.CiLow = R.CiHigh = Sample[0];
    return R;
  }

  SplitMix64 Rng(Seed);
  size_t N = Sample.size();
  std::vector<double> Means;
  Means.reserve(Resamples);
  for (unsigned I = 0; I < Resamples; ++I) {
    double Sum = 0.0;
    for (size_t J = 0; J < N; ++J)
      Sum += Sample[Rng.nextBelow(N)];
    Means.push_back(Sum / static_cast<double>(N));
  }
  std::sort(Means.begin(), Means.end());
  R.MeanEstimate = mean(Means);
  R.CiLow = quantile(Means, 0.025);
  R.CiHigh = quantile(Means, 0.975);
  return R;
}

bool hcsgc::significantlyDifferent(const BootstrapResult &A,
                                   const BootstrapResult &B) {
  return A.CiHigh < B.CiLow || B.CiHigh < A.CiLow;
}
