//===- stats/Bootstrap.h - Bootstrap confidence intervals ------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bootstrap mean estimation exactly as §4.2 of the paper describes:
/// resample with replacement to the original sample size, compute the
/// mean of each of (default) 10,000 bootstrap samples, report the mean
/// of bootstrap means as the estimate and the 2.5/97.5 percentiles of
/// the bootstrap means as the 95% confidence interval.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_STATS_BOOTSTRAP_H
#define HCSGC_STATS_BOOTSTRAP_H

#include <cstdint>
#include <vector>

namespace hcsgc {

/// Result of a bootstrap mean estimation.
struct BootstrapResult {
  double MeanEstimate = 0; ///< Mean of the bootstrap means.
  double CiLow = 0;        ///< 2.5th percentile of bootstrap means.
  double CiHigh = 0;       ///< 97.5th percentile of bootstrap means.
};

/// Runs the paper's bootstrap procedure over \p Sample.
///
/// \param Resamples the number of bootstrap samples (paper uses 10,000).
/// \param Seed PRNG seed so report output is reproducible.
BootstrapResult bootstrapMean(const std::vector<double> &Sample,
                              unsigned Resamples = 10000,
                              uint64_t Seed = 0x5eed);

/// \returns true if the two confidence intervals do not overlap, i.e.
/// the paper's criterion for a significant difference at 95% confidence.
bool significantlyDifferent(const BootstrapResult &A,
                            const BootstrapResult &B);

} // namespace hcsgc

#endif // HCSGC_STATS_BOOTSTRAP_H
