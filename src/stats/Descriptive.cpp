//===- stats/Descriptive.cpp - Boxplot statistics --------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "stats/Descriptive.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace hcsgc;

double hcsgc::mean(const std::vector<double> &Sample) {
  if (Sample.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Sample)
    Sum += V;
  return Sum / static_cast<double>(Sample.size());
}

double hcsgc::quantile(std::vector<double> Sample, double Q) {
  assert(Q >= 0.0 && Q <= 1.0 && "quantile out of range");
  if (Sample.empty())
    return 0.0;
  std::sort(Sample.begin(), Sample.end());
  if (Sample.size() == 1)
    return Sample[0];
  double Pos = Q * static_cast<double>(Sample.size() - 1);
  size_t Lo = static_cast<size_t>(std::floor(Pos));
  size_t Hi = static_cast<size_t>(std::ceil(Pos));
  double Frac = Pos - static_cast<double>(Lo);
  return Sample[Lo] + (Sample[Hi] - Sample[Lo]) * Frac;
}

double hcsgc::median(const std::vector<double> &Sample) {
  return quantile(Sample, 0.5);
}

BoxplotSummary hcsgc::boxplot(const std::vector<double> &Sample) {
  BoxplotSummary S;
  S.N = Sample.size();
  if (Sample.empty())
    return S;

  std::vector<double> Sorted = Sample;
  std::sort(Sorted.begin(), Sorted.end());

  S.Q1 = quantile(Sorted, 0.25);
  S.Median = quantile(Sorted, 0.5);
  S.Q3 = quantile(Sorted, 0.75);
  S.Mean = mean(Sorted);

  double Iqr = S.Q3 - S.Q1;
  double MildLo = S.Q1 - 1.5 * Iqr, MildHi = S.Q3 + 1.5 * Iqr;
  double ExtLo = S.Q1 - 3.0 * Iqr, ExtHi = S.Q3 + 3.0 * Iqr;

  S.Min = S.Q1;
  S.Max = S.Q3;
  bool SawInlier = false;
  for (double V : Sorted) {
    if (V < MildLo || V > MildHi) {
      if (V < ExtLo || V > ExtHi)
        ++S.ExtremeOutliers;
      else
        ++S.MildOutliers;
      continue;
    }
    if (!SawInlier) {
      S.Min = V;
      SawInlier = true;
    }
    S.Max = V;
  }
  return S;
}
