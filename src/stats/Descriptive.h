//===- stats/Descriptive.h - Boxplot statistics ----------------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Descriptive statistics matching §4.2 of the paper: quartiles, the
/// inter-quartile range, whiskers, and mild/extreme outliers per McGill,
/// Tukey and Larsen's boxplot conventions ([19] in the paper).
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_STATS_DESCRIPTIVE_H
#define HCSGC_STATS_DESCRIPTIVE_H

#include <cstddef>
#include <vector>

namespace hcsgc {

/// Five-number summary plus outlier classification for one sample.
struct BoxplotSummary {
  double Min = 0;        ///< Smallest non-outlier (lower whisker).
  double Q1 = 0;         ///< First quartile.
  double Median = 0;     ///< Second quartile.
  double Q3 = 0;         ///< Third quartile.
  double Max = 0;        ///< Largest non-outlier (upper whisker).
  double Mean = 0;       ///< Arithmetic mean of the full sample.
  size_t MildOutliers = 0;    ///< Points beyond 1.5*IQR but within 3*IQR.
  size_t ExtremeOutliers = 0; ///< Points beyond 3*IQR.
  size_t N = 0;          ///< Sample size.
};

/// \returns the arithmetic mean of \p Sample (0 for an empty sample).
double mean(const std::vector<double> &Sample);

/// \returns the \p Q quantile (0 <= Q <= 1) of \p Sample using linear
/// interpolation between order statistics. \p Sample need not be sorted.
double quantile(std::vector<double> Sample, double Q);

/// \returns the median of \p Sample.
double median(const std::vector<double> &Sample);

/// Computes the boxplot summary described in §4.2 of the paper:
/// IQR = Q3 - Q1; points outside [Q1 - 1.5*IQR, Q3 + 1.5*IQR] are
/// outliers, further split into mild and extreme at the 3*IQR fences;
/// whiskers are the furthest non-outlier points.
BoxplotSummary boxplot(const std::vector<double> &Sample);

} // namespace hcsgc

#endif // HCSGC_STATS_DESCRIPTIVE_H
