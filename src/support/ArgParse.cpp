//===- support/ArgParse.cpp - Tiny CLI flag parser ------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ArgParse.h"

#include <cstdlib>

using namespace hcsgc;

ArgParse::ArgParse(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--", 0) != 0)
      continue;
    Arg = Arg.substr(2);
    size_t Eq = Arg.find('=');
    if (Eq == std::string::npos)
      Values[Arg] = "1";
    else
      Values[Arg.substr(0, Eq)] = Arg.substr(Eq + 1);
  }
}

const std::string *ArgParse::lookup(const std::string &Key) const {
  auto It = Values.find(Key);
  if (It != Values.end())
    return &It->second;
  auto EnvIt = EnvCache.find(Key);
  if (EnvIt != EnvCache.end())
    return EnvIt->second.empty() ? nullptr : &EnvIt->second;
  std::string EnvName = "HCSGC_";
  for (char C : Key)
    EnvName += C == '-' ? '_' : static_cast<char>(std::toupper(C));
  const char *Env = std::getenv(EnvName.c_str());
  auto &Slot = EnvCache[Key];
  Slot = Env ? Env : "";
  return Slot.empty() ? nullptr : &Slot;
}

std::string ArgParse::getString(const std::string &Key,
                                const std::string &Default) const {
  const std::string *V = lookup(Key);
  return V ? *V : Default;
}

int64_t ArgParse::getInt(const std::string &Key, int64_t Default) const {
  const std::string *V = lookup(Key);
  return V ? std::strtoll(V->c_str(), nullptr, 0) : Default;
}

double ArgParse::getDouble(const std::string &Key, double Default) const {
  const std::string *V = lookup(Key);
  return V ? std::strtod(V->c_str(), nullptr) : Default;
}

bool ArgParse::getBool(const std::string &Key, bool Default) const {
  const std::string *V = lookup(Key);
  if (!V)
    return Default;
  return *V != "0" && *V != "false" && *V != "off";
}
