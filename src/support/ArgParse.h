//===- support/ArgParse.h - Tiny CLI flag parser ---------------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal `--key=value` command-line parser for the benchmark and
/// example binaries. Values also fall back to environment variables named
/// HCSGC_<KEY> (uppercased, dashes become underscores) so the whole bench
/// directory can be scaled with one exported variable.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_SUPPORT_ARGPARSE_H
#define HCSGC_SUPPORT_ARGPARSE_H

#include <cstdint>
#include <map>
#include <string>

namespace hcsgc {

/// Parses `--key=value` and bare `--flag` arguments.
class ArgParse {
public:
  ArgParse(int Argc, char **Argv);

  /// \returns the string value for \p Key from the command line, then the
  /// HCSGC_<KEY> environment variable, then \p Default.
  std::string getString(const std::string &Key,
                        const std::string &Default) const;

  /// Integer variant of getString.
  int64_t getInt(const std::string &Key, int64_t Default) const;

  /// Floating-point variant of getString.
  double getDouble(const std::string &Key, double Default) const;

  /// \returns true if `--key` was passed (with or without a value) or the
  /// environment variable is set to a nonzero/true value.
  bool getBool(const std::string &Key, bool Default) const;

private:
  const std::string *lookup(const std::string &Key) const;

  std::map<std::string, std::string> Values;
  mutable std::map<std::string, std::string> EnvCache;
};

} // namespace hcsgc

#endif // HCSGC_SUPPORT_ARGPARSE_H
