//===- support/BitMap.cpp - Concurrent bitmap ----------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/BitMap.h"

#include "support/Bits.h"

#include <cstring>

using namespace hcsgc;

void BitMap::resize(size_t NewNumBits) {
  size_t NumWords = (NewNumBits + 63) / 64;
  // std::atomic<uint64_t> is not copyable, so rebuild the vector.
  Words = std::vector<std::atomic<uint64_t>>(NumWords);
  for (auto &W : Words)
    W.store(0, std::memory_order_relaxed);
  NumBits = NewNumBits;
}

void BitMap::clearAll() {
  for (auto &W : Words)
    W.store(0, std::memory_order_relaxed);
}

size_t BitMap::count() const {
  size_t N = 0;
  for (const auto &W : Words)
    N += popcount64(W.load(std::memory_order_relaxed));
  return N;
}

size_t BitMap::findNext(size_t From) const {
  if (From >= NumBits)
    return npos;
  size_t WordIdx = From >> 6;
  uint64_t W = Words[WordIdx].load(std::memory_order_relaxed);
  W &= ~uint64_t(0) << (From & 63);
  for (;;) {
    if (W != 0) {
      size_t Idx = (WordIdx << 6) + ctz64(W);
      return Idx < NumBits ? Idx : npos;
    }
    if (++WordIdx >= Words.size())
      return npos;
    W = Words[WordIdx].load(std::memory_order_relaxed);
  }
}
