//===- support/BitMap.h - Concurrent bitmap --------------------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size bitmap with atomic set operations. Pages use two of these:
/// the livemap (ZGC) and the hotmap (HCSGC, adapted from the livemap per
/// §3.1.2 of the paper). Both are written concurrently by mutators and GC
/// workers during marking, hence the atomic parallel-set operation.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_SUPPORT_BITMAP_H
#define HCSGC_SUPPORT_BITMAP_H

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hcsgc {

/// Fixed-capacity bitmap. Non-atomic reads/writes are available for phases
/// where exclusive access is guaranteed; parSet is safe under concurrency.
class BitMap {
public:
  BitMap() = default;

  /// Creates a bitmap able to hold \p NumBits bits, all clear.
  explicit BitMap(size_t NumBits) { resize(NumBits); }

  /// Resizes to \p NumBits bits. All bits become clear.
  void resize(size_t NumBits);

  /// \returns the number of bits this map can hold.
  size_t size() const { return NumBits; }

  /// \returns true if bit \p Idx is set (relaxed atomic read).
  bool test(size_t Idx) const {
    assert(Idx < NumBits && "bit index out of range");
    return (Words[Idx >> 6].load(std::memory_order_relaxed) >>
            (Idx & 63)) & 1;
  }

  /// Atomically sets bit \p Idx.
  /// \returns true if this call transitioned the bit from clear to set.
  bool parSet(size_t Idx) {
    assert(Idx < NumBits && "bit index out of range");
    uint64_t Mask = uint64_t(1) << (Idx & 63);
    uint64_t Old = Words[Idx >> 6].fetch_or(Mask, std::memory_order_relaxed);
    return (Old & Mask) == 0;
  }

  /// Non-atomically sets bit \p Idx (requires exclusive access).
  void set(size_t Idx) {
    assert(Idx < NumBits && "bit index out of range");
    uint64_t W = Words[Idx >> 6].load(std::memory_order_relaxed);
    Words[Idx >> 6].store(W | (uint64_t(1) << (Idx & 63)),
                          std::memory_order_relaxed);
  }

  /// Clears every bit (requires exclusive access).
  void clearAll();

  // --- Word-level access (support/Bits.h kernels, INTERNALS §14) --------

  /// \returns backing word \p WordIdx (relaxed read). Word-at-a-time
  /// readers (live-object walks, SWAR nibble aging) combine this with
  /// ctz64/popcount64 instead of testing bit by bit.
  uint64_t word(size_t WordIdx) const {
    assert(WordIdx < Words.size() && "word index out of range");
    return Words[WordIdx].load(std::memory_order_relaxed);
  }

  /// \returns the number of 64-bit backing words.
  size_t numWords() const { return Words.size(); }

  /// \returns the address of the word holding bit \p BitIdx — the
  /// software-prefetch target ahead of a parSet on that bit.
  const void *wordAddr(size_t BitIdx) const {
    assert(BitIdx < NumBits && "bit index out of range");
    return &Words[BitIdx >> 6];
  }

  /// \returns the number of set bits.
  size_t count() const;

  /// \returns the index of the first set bit at or after \p From, or
  /// npos if there is none. Requires no concurrent writers for a stable
  /// answer, but is safe to call concurrently.
  size_t findNext(size_t From) const;

  /// Sentinel returned by findNext when no bit is found.
  static constexpr size_t npos = ~size_t(0);

private:
  std::vector<std::atomic<uint64_t>> Words;
  size_t NumBits = 0;
};

} // namespace hcsgc

#endif // HCSGC_SUPPORT_BITMAP_H
