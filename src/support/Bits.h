//===- support/Bits.h - Word-level bit kernels -----------------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Word-at-a-time bit kernels behind the hot metadata walks: popcount and
/// ctz (builtin when available, portable SWAR fallback otherwise), software
/// prefetch hints, and the SWAR nibble-aging kernel that ages 16 packed
/// temperature nibbles per 64-bit word in one pass (INTERNALS §14). Every
/// kernel here has a scalar reference implementation in this header that
/// support/BitsTest checks bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_SUPPORT_BITS_H
#define HCSGC_SUPPORT_BITS_H

#include <cstddef>
#include <cstdint>

namespace hcsgc {

/// Number of set bits in \p W.
inline unsigned popcount64(uint64_t W) {
#if defined(__GNUC__) || defined(__clang__)
  return static_cast<unsigned>(__builtin_popcountll(W));
#else
  // Classic SWAR reduction: pairwise sums, then nibble sums, then one
  // multiply to horizontally add the eight byte counts.
  W -= (W >> 1) & 0x5555555555555555ull;
  W = (W & 0x3333333333333333ull) + ((W >> 2) & 0x3333333333333333ull);
  W = (W + (W >> 4)) & 0x0f0f0f0f0f0f0f0full;
  return static_cast<unsigned>((W * 0x0101010101010101ull) >> 56);
#endif
}

/// Index of the lowest set bit of \p W. Precondition: W != 0.
inline unsigned ctz64(uint64_t W) {
#if defined(__GNUC__) || defined(__clang__)
  return static_cast<unsigned>(__builtin_ctzll(W));
#else
  // Isolate the lowest set bit, then count the bits below it.
  return popcount64((W & (0 - W)) - 1);
#endif
}

/// Hints the cache line holding \p Addr into cache for a read.
inline void prefetchRead(const void *Addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(Addr, /*rw=*/0, /*locality=*/3);
#else
  (void)Addr;
#endif
}

/// Hints the cache line holding \p Addr into cache for a write (the
/// markLive CAS wants the livemap word in exclusive state).
inline void prefetchWrite(const void *Addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(Addr, /*rw=*/1, /*locality=*/3);
#else
  (void)Addr;
#endif
}

/// Spreads the 16 bits of \p Bits to every fourth bit position: bit i of
/// the input lands at bit 4*i of the result. This aligns one livemap or
/// hotmap bit with the low bit of each 4-bit temperature nibble, turning
/// per-granule map tests into lane masks for swarAgeTempNibbles.
inline uint64_t spreadBitsToNibbles(uint16_t Bits) {
  uint64_t X = Bits;
  X = (X | (X << 24)) & 0x000000ff000000ffull;
  X = (X | (X << 12)) & 0x000f000f000f000full;
  X = (X | (X << 6)) & 0x0303030303030303ull;
  X = (X | (X << 3)) & 0x1111111111111111ull;
  return X;
}

/// Scalar reference for one temperature nibble (bits [1:0] = 2-bit
/// saturating temperature, bits [3:2] = 2-bit cold streak), exactly the
/// per-granule aging rule Page::ageTemperature applied before the SWAR
/// rewrite — kept as the specification the SWAR kernel is tested against:
///   - untouched granule with a zero nibble and no live bit: unchanged;
///   - hot (touched this cycle): temperature kept (flagHot already
///     bumped it), streak cleared;
///   - temperature > 0: decay one step; reaching 0 starts the streak
///     at 1 (the decaying cycle was itself untouched);
///   - temperature 0 (live or mid-streak): streak += 1, saturating at 3.
inline uint64_t scalarAgeTempNibble(uint64_t Nibble, bool Live, bool Hot) {
  uint64_t Temp = Nibble & 3;
  uint64_t Streak = (Nibble >> 2) & 3;
  if (!Temp && !Streak && !Live)
    return Nibble;
  if (Hot) {
    Streak = 0;
  } else if (Temp > 0) {
    --Temp;
    Streak = Temp == 0 ? 1 : 0;
  } else if (Streak < 3) {
    ++Streak;
  }
  return Temp | (Streak << 2);
}

/// Ages 16 packed temperature nibbles in one pass. \p W holds the nibble
/// word (16 granules, 4 bits each), \p Live16 / \p Hot16 the matching
/// livemap / hotmap bits (bit i describes the granule in nibble i; the
/// caller masks bits past the page's allocation limit). Branch-free SWAR:
/// equals scalarAgeTempNibble applied to each nibble for EVERY input —
/// including states the runtime never produces — so BitsTest can verify
/// it over unconstrained random words.
inline uint64_t swarAgeTempNibbles(uint64_t W, uint16_t Live16,
                                   uint16_t Hot16) {
  constexpr uint64_t Lanes = 0x1111111111111111ull; // bit 0 of each nibble
  constexpr uint64_t TMask = 0x3333333333333333ull; // bits [1:0] of each

  uint64_t Tb = W & TMask;        // temperature fields, in place
  uint64_t Sb = (W >> 2) & TMask; // streak fields, moved to bits [1:0]
  uint64_t Tnz = (Tb | (Tb >> 1)) & Lanes;  // temperature != 0
  uint64_t Snz = (Sb | (Sb >> 1)) & Lanes;  // streak != 0
  uint64_t Ssat = (Sb & (Sb >> 1)) & Lanes; // streak == 3 (saturated)
  uint64_t H = spreadBitsToNibbles(Hot16);
  uint64_t V = spreadBitsToNibbles(Live16);

  // Per-lane branch masks, mutually exclusive by construction. A lane is
  // "active" when anything lives or ages there; inactive zero lanes must
  // stay zero (the scalar skip). Hot lanes outside the active set reduce
  // to a no-op either way (temperature kept, streak already 0).
  uint64_t Active = Tnz | Snz | V;
  uint64_t MDecay = ~H & Tnz;                       // temperature -= 1
  uint64_t MStreak = ~H & ~Tnz & Active & ~Ssat;    // streak += 1

  // Lane-local subtract: every MDecay lane has temperature >= 1 and the
  // borrow cannot cross the zeroed bits [3:2] between fields.
  uint64_t TNew = Tb - MDecay;
  uint64_t TnzNew = (TNew | (TNew >> 1)) & Lanes;
  uint64_t DecayedToZero = MDecay & ~TnzNew; // these lanes start streak=1

  // Streak: keep it only where neither hot nor decaying (both clear it),
  // add the increments (no carry: incremented lanes hold <= 2), then OR
  // in the streak=1 seeds of freshly-decayed-to-zero lanes.
  uint64_t Keep = ~(H | MDecay) & Lanes;
  uint64_t SNew = ((Sb & (Keep | (Keep << 1))) + MStreak) | DecayedToZero;

  return TNew | ((SNew & TMask) << 2);
}

} // namespace hcsgc

#endif // HCSGC_SUPPORT_BITS_H
