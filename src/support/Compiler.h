//===- support/Compiler.h - Compiler hints and small helpers ---*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Branch-prediction hints and an unreachable marker, in the spirit of
/// LLVM's Support/Compiler.h.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_SUPPORT_COMPILER_H
#define HCSGC_SUPPORT_COMPILER_H

#include <cstdio>
#include <cstdlib>

#if defined(__GNUC__) || defined(__clang__)
#define HCSGC_LIKELY(X) __builtin_expect(!!(X), 1)
#define HCSGC_UNLIKELY(X) __builtin_expect(!!(X), 0)
#else
#define HCSGC_LIKELY(X) (X)
#define HCSGC_UNLIKELY(X) (X)
#endif

namespace hcsgc {

/// Aborts the process with \p Msg. Used for invariant violations that must
/// be diagnosed even in release builds (e.g. heap corruption).
[[noreturn]] inline void fatalError(const char *Msg) {
  std::fprintf(stderr, "hcsgc fatal error: %s\n", Msg);
  std::abort();
}

/// Marks a point in the code that must never be reached.
[[noreturn]] inline void unreachable(const char *Msg) {
  std::fprintf(stderr, "hcsgc unreachable reached: %s\n", Msg);
  std::abort();
}

} // namespace hcsgc

#endif // HCSGC_SUPPORT_COMPILER_H
