//===- support/MathExtras.h - Alignment and bit twiddling ------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Alignment helpers and power-of-two arithmetic used throughout the heap
/// and cache-simulator code.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_SUPPORT_MATHEXTRAS_H
#define HCSGC_SUPPORT_MATHEXTRAS_H

#include <cassert>
#include <cstddef>
#include <cstdint>

namespace hcsgc {

/// \returns true if \p V is a power of two (zero is not).
constexpr bool isPowerOf2(uint64_t V) { return V != 0 && (V & (V - 1)) == 0; }

/// \returns \p V rounded up to the next multiple of \p Align.
/// \p Align must be a power of two.
constexpr uint64_t alignUp(uint64_t V, uint64_t Align) {
  assert(isPowerOf2(Align) && "alignment must be a power of two");
  return (V + Align - 1) & ~(Align - 1);
}

/// \returns \p V rounded down to the previous multiple of \p Align.
/// \p Align must be a power of two.
constexpr uint64_t alignDown(uint64_t V, uint64_t Align) {
  assert(isPowerOf2(Align) && "alignment must be a power of two");
  return V & ~(Align - 1);
}

/// \returns floor(log2(V)). \p V must be nonzero.
constexpr unsigned log2Floor(uint64_t V) {
  assert(V != 0 && "log2 of zero");
  return 63u - static_cast<unsigned>(__builtin_clzll(V));
}

/// \returns ceil(log2(V)). \p V must be nonzero.
constexpr unsigned log2Ceil(uint64_t V) {
  return V <= 1 ? 0 : log2Floor(V - 1) + 1;
}

/// \returns the smallest power of two >= \p V (V must be nonzero and
/// representable).
constexpr uint64_t nextPowerOf2(uint64_t V) {
  return uint64_t(1) << log2Ceil(V);
}

/// Integer division rounding up.
constexpr uint64_t divideCeil(uint64_t Num, uint64_t Den) {
  return (Num + Den - 1) / Den;
}

} // namespace hcsgc

#endif // HCSGC_SUPPORT_MATHEXTRAS_H
