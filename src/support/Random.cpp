//===- support/Random.cpp - Deterministic PRNGs --------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include <algorithm>
#include <cmath>

using namespace hcsgc;

ZipfSampler::ZipfSampler(size_t N, double Theta) {
  assert(N > 0 && "Zipf over empty domain");
  Cdf.resize(N);
  double Sum = 0.0;
  for (size_t I = 0; I < N; ++I) {
    Sum += 1.0 / std::pow(static_cast<double>(I + 1), Theta);
    Cdf[I] = Sum;
  }
  for (double &C : Cdf)
    C /= Sum;
  Norm = Sum;
}

size_t ZipfSampler::sample(SplitMix64 &Rng) const {
  double U = Rng.nextDouble();
  auto It = std::lower_bound(Cdf.begin(), Cdf.end(), U);
  if (It == Cdf.end())
    return Cdf.size() - 1;
  return static_cast<size_t>(It - Cdf.begin());
}
