//===- support/Random.h - Deterministic PRNGs ------------------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random number generators for workloads and the
/// bootstrap statistics. The paper's synthetic benchmark reseeds a PRNG
/// with a fixed seed per phase so the access sequence repeats exactly;
/// SplitMix64 gives us the same reproducibility without std::mt19937's
/// weight.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_SUPPORT_RANDOM_H
#define HCSGC_SUPPORT_RANDOM_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hcsgc {

/// SplitMix64: tiny, fast, statistically solid for our purposes, and
/// trivially seedable (every seed gives a full-period sequence).
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed = 0) : State(Seed) {}

  /// Reseeds the generator, restarting its sequence.
  void seed(uint64_t Seed) { State = Seed; }

  /// \returns the next 64 pseudo-random bits.
  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ull);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// \returns a uniform integer in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "empty range");
    // Lemire's multiply-shift rejection-free variant (slightly biased for
    // huge bounds, irrelevant at our sizes).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// \returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

private:
  uint64_t State;
};

/// Fisher-Yates shuffle of \p V using \p Rng.
template <typename T> void shuffle(std::vector<T> &V, SplitMix64 &Rng) {
  for (size_t I = V.size(); I > 1; --I) {
    size_t J = static_cast<size_t>(Rng.nextBelow(I));
    std::swap(V[I - 1], V[J]);
  }
}

/// Samples from a (truncated) Zipf distribution over [0, N) with skew
/// \p Theta using precomputed cumulative weights. Used by the web-graph
/// generator to obtain power-law degree sequences.
class ZipfSampler {
public:
  ZipfSampler(size_t N, double Theta);

  /// \returns an index in [0, N) with Zipf-distributed probability.
  size_t sample(SplitMix64 &Rng) const;

  /// \returns the harmonic normalization sum H(N, Theta) the CDF was
  /// built from. Exposed so callers needing per-rank probabilities
  /// (1/rank^Theta / normalizer) don't recompute the O(N) pow loop.
  double normalizer() const { return Norm; }

private:
  std::vector<double> Cdf;
  double Norm = 0.0;
};

} // namespace hcsgc

#endif // HCSGC_SUPPORT_RANDOM_H
