//===- support/Stopwatch.h - Wall-clock timing -----------------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Steady-clock stopwatch used for the secondary (wall-clock) timing
/// metric and for GC pause-time statistics.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_SUPPORT_STOPWATCH_H
#define HCSGC_SUPPORT_STOPWATCH_H

#include <chrono>
#include <cstdint>

namespace hcsgc {

/// Measures elapsed wall-clock time from construction or last restart.
class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  /// Restarts the measurement from now.
  void restart() { Start = Clock::now(); }

  /// \returns elapsed nanoseconds since construction/restart.
  uint64_t elapsedNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             Start)
            .count());
  }

  /// \returns elapsed milliseconds as a double.
  double elapsedMs() const {
    return static_cast<double>(elapsedNs()) * 1e-6;
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace hcsgc

#endif // HCSGC_SUPPORT_STOPWATCH_H
