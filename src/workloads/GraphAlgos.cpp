//===- workloads/GraphAlgos.cpp - CC and MC over managed graphs --------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/GraphAlgos.h"

#include <algorithm>

using namespace hcsgc;

// --- Connected components / biconnectivity (Hopcroft-Tarjan) -------------

CcResult hcsgc::connectedComponents(Mutator &M, ManagedGraph &G,
                                    int64_t Epoch) {
  CcResult Res;
  size_t N = G.size();
  if (N == 0)
    return Res;

  // Managed DFS stack of node references.
  Root Stack(M);
  M.allocateRefArray(Stack, static_cast<uint32_t>(N));

  // Per-edge/per-vertex output records: JGraphT's BiconnectivityInspector
  // materializes edge sets per biconnected block the same way. They die
  // with the pass, producing the allocation churn (and hence periodic GC
  // cycles) the paper observes.
  ClassId RecordCls =
      M.runtime().registerClass("graph.BlockRecord", 0, 24);
  Root Record(M);

  Root V(M), W(M), E(M), Adj(M);
  int64_t DiscCounter = 1;

  for (uint32_t S = 0; S < N; ++S) {
    G.node(S, V);
    if (M.loadWord(V, NW_Epoch) == Epoch)
      continue;
    ++Res.Components;
    int64_t RootChildren = 0;
    bool RootIsArticulation = false;

    M.storeWord(V, NW_Epoch, Epoch);
    M.storeWord(V, NW_Disc, DiscCounter);
    M.storeWord(V, NW_Low, DiscCounter);
    ++DiscCounter;
    M.storeWord(V, NW_Parent, -1);
    M.storeWord(V, NW_Cursor, 0);
    M.storeElem(Stack, 0, V);
    size_t Top = 1;

    while (Top > 0) {
      M.loadElem(Stack, static_cast<uint32_t>(Top - 1), V);
      M.loadRef(V, NR_Adj, Adj);
      int64_t Cursor = M.loadWord(V, NW_Cursor);
      uint32_t Deg = M.arrayLength(Adj);

      if (Cursor < Deg) {
        M.storeWord(V, NW_Cursor, Cursor + 1);
        // Pointer-chase through the shared edge object, as JGraphT does.
        int64_t VId = M.loadWord(V, NW_Id);
        M.loadElem(Adj, static_cast<uint32_t>(Cursor), E);
        G.farEndpoint(E, VId, W);
        ++Res.EdgesVisited;
        if (M.loadWord(W, NW_Epoch) != Epoch) {
          // Tree edge: descend.
          M.storeWord(W, NW_Epoch, Epoch);
          M.storeWord(W, NW_Disc, DiscCounter);
          M.storeWord(W, NW_Low, DiscCounter);
          ++DiscCounter;
          M.storeWord(W, NW_Parent, VId);
          M.storeWord(W, NW_Cursor, 0);
          M.storeElem(Stack, static_cast<uint32_t>(Top), W);
          ++Top;
        } else if (M.loadWord(W, NW_Id) != M.loadWord(V, NW_Parent)) {
          // Back edge.
          int64_t Low = M.loadWord(V, NW_Low);
          int64_t WDisc = M.loadWord(W, NW_Disc);
          if (WDisc < Low)
            M.storeWord(V, NW_Low, WDisc);
        }
        // Edge record for the block being assembled (transient); batched
        // so the churn rate matches the paper's "not much garbage" CC
        // profile while still producing periodic cycles.
        if ((Res.EdgesVisited & 7) == 0) {
          M.allocate(Record, RecordCls);
          M.storeWord(Record, 0, Cursor);
        }
        continue;
      }

      // Retreat: fold low-link into the parent, detect articulation.
      --Top;
      M.storeElemNull(Stack, static_cast<uint32_t>(Top));
      Res.LowSum += static_cast<uint64_t>(M.loadWord(V, NW_Low));
      M.allocate(Record, RecordCls);
      M.storeWord(Record, 0, M.loadWord(V, NW_Low));
      M.storeWord(Record, 1, M.loadWord(V, NW_Disc));
      int64_t ParentId = M.loadWord(V, NW_Parent);
      if (ParentId < 0)
        continue;
      G.node(static_cast<uint32_t>(ParentId), W);
      int64_t VLow = M.loadWord(V, NW_Low);
      int64_t PLow = M.loadWord(W, NW_Low);
      if (VLow < PLow)
        M.storeWord(W, NW_Low, VLow);
      int64_t PDisc = M.loadWord(W, NW_Disc);
      bool ParentIsDfsRoot = M.loadWord(W, NW_Parent) < 0;
      if (ParentIsDfsRoot) {
        ++RootChildren;
        if (RootChildren >= 2)
          RootIsArticulation = true;
      } else if (VLow >= PDisc &&
                 M.loadWord(W, NW_ArtFlag) != Epoch) {
        // Non-root articulation point; the flag word ensures each node
        // is counted once even when several children certify it.
        M.storeWord(W, NW_ArtFlag, Epoch);
        ++Res.ArticulationPoints;
      }
    }
    if (RootIsArticulation)
      ++Res.ArticulationPoints;
  }
  return Res;
}

// --- Bron-Kerbosch maximal cliques (with pivoting) ------------------------

namespace {

/// Recursion state shared across the Bron-Kerbosch recursion.
struct BkState {
  Mutator &M;
  ManagedGraph &G;
  BkResult Res;
  uint64_t MaxSteps;
};

} // namespace

/// Adjacency membership test: binary search over \p Node's adjacency
/// array (sorted by far-endpoint id), chasing each probed edge object to
/// read the far endpoint's id — the pointer walk JGraphT's containsEdge
/// performs through its adjacency maps.
static bool adjacentTo(Mutator &M, ManagedGraph &G, const Root &Adj,
                       uint32_t Deg, int64_t NearId, int64_t FarId,
                       Root &EdgeTmp, Root &NodeTmp) {
  uint32_t Lo = 0, Hi = Deg;
  while (Lo < Hi) {
    uint32_t Mid = Lo + (Hi - Lo) / 2;
    M.loadElem(Adj, Mid, EdgeTmp);
    G.farEndpoint(EdgeTmp, NearId, NodeTmp);
    int64_t V = M.loadWord(NodeTmp, NW_Id);
    if (V == FarId)
      return true;
    if (V < FarId)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return false;
}

static void bkRecurse(BkState &St, Root &Parr, uint32_t PSize, Root &Xarr,
                      uint32_t XSize, uint32_t RSize) {
  Mutator &M = St.M;
  if (St.Res.Truncated || ++St.Res.Steps > St.MaxSteps) {
    St.Res.Truncated = true;
    return;
  }
  if (PSize == 0 && XSize == 0) {
    ++St.Res.Cliques;
    St.Res.MaxSize = std::max<uint64_t>(St.Res.MaxSize, RSize);
    return;
  }
  if (PSize == 0)
    return;

  // Pivot: the highest-degree vertex of P (a cheap, valid pivot choice).
  Root Pivot(M), Tmp(M), Adj(M);
  uint32_t BestDeg = 0;
  for (uint32_t I = 0; I < PSize; ++I) {
    M.loadElem(Parr, I, Tmp);
    M.loadRef(Tmp, NR_Adj, Adj);
    uint32_t D = M.arrayLength(Adj);
    if (I == 0 || D > BestDeg) {
      BestDeg = D;
      M.copyRoot(Tmp, Pivot);
    }
  }
  Root PivotAdj(M), EdgeTmp(M), NodeTmp(M);
  M.loadRef(Pivot, NR_Adj, PivotAdj);
  int64_t PivotId = M.loadWord(Pivot, NW_Id);

  // Candidates: P \ N(pivot).
  Root V(M), VAdj(M), P2(M), X2(M), W(M);
  uint32_t I = 0;
  uint32_t CurP = PSize, CurX = XSize;
  while (I < CurP) {
    M.loadElem(Parr, I, V);
    int64_t VId = M.loadWord(V, NW_Id);
    if (adjacentTo(M, St.G, PivotAdj, BestDeg, PivotId, VId, EdgeTmp,
                   NodeTmp)) {
      ++I;
      continue;
    }
    // Recurse on v: P' = P ∩ N(v), X' = X ∩ N(v). Fresh arrays per step
    // are the workload's allocation churn.
    M.loadRef(V, NR_Adj, VAdj);
    uint32_t VDeg = M.arrayLength(VAdj);
    M.allocateRefArray(P2, CurP);
    uint32_t P2Size = 0;
    for (uint32_t K = 0; K < CurP; ++K) {
      M.loadElem(Parr, K, W);
      if (adjacentTo(M, St.G, VAdj, VDeg, VId, M.loadWord(W, NW_Id),
                     EdgeTmp, NodeTmp))
        M.storeElem(P2, P2Size++, W);
    }
    // X' can grow by up to P2Size entries inside the child call (vertex
    // moves from P' to X'), so size it for the worst case.
    M.allocateRefArray(X2, CurX + CurP + 1);
    uint32_t X2Size = 0;
    for (uint32_t K = 0; K < CurX; ++K) {
      M.loadElem(Xarr, K, W);
      if (adjacentTo(M, St.G, VAdj, VDeg, VId, M.loadWord(W, NW_Id),
                     EdgeTmp, NodeTmp))
        M.storeElem(X2, X2Size++, W);
    }
    bkRecurse(St, P2, P2Size, X2, X2Size, RSize + 1);
    if (St.Res.Truncated)
      return;

    // Move v from P to X: P[i] <- P[last]; X[curX++] <- v. The X array
    // was sized PSize+XSize by the caller, so there is room.
    M.loadElem(Parr, CurP - 1, W);
    M.storeElem(Parr, I, W);
    M.storeElemNull(Parr, CurP - 1);
    --CurP;
    M.storeElem(Xarr, CurX++, V);
  }
}

BkResult hcsgc::bronKerbosch(Mutator &M, ManagedGraph &G,
                             uint64_t MaxSteps) {
  BkState St{M, G, BkResult(), MaxSteps};
  size_t N = G.size();

  Root V(M), Adj(M), W(M), Parr(M), Xarr(M);
  for (uint32_t S = 0; S < N && !St.Res.Truncated; ++S) {
    // Vertex-order outer decomposition: P = later neighbors, X = earlier
    // neighbors; enumerates every maximal clique exactly once.
    G.node(S, V);
    M.loadRef(V, NR_Adj, Adj);
    uint32_t Deg = M.arrayLength(Adj);
    M.allocateRefArray(Parr, Deg + 1);
    M.allocateRefArray(Xarr, Deg + 1);
    uint32_t PSize = 0, XSize = 0;
    Root Eg(M);
    for (uint32_t K = 0; K < Deg; ++K) {
      M.loadElem(Adj, K, Eg);
      G.farEndpoint(Eg, S, W);
      if (M.loadWord(W, NW_Id) > S)
        M.storeElem(Parr, PSize++, W);
      else
        M.storeElem(Xarr, XSize++, W);
    }
    if (PSize == 0 && XSize == 0) {
      // Isolated vertex: itself a maximal clique.
      ++St.Res.Cliques;
      St.Res.MaxSize = std::max<uint64_t>(St.Res.MaxSize, 1);
      continue;
    }
    bkRecurse(St, Parr, PSize, Xarr, XSize, 1);
  }
  return St.Res;
}
