//===- workloads/GraphAlgos.h - CC and MC over managed graphs --*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two JGraphT workloads of §4.5, implemented directly over the
/// managed heap:
///
///  - CC: connected components + the Hopcroft-Tarjan biconnectivity
///    (articulation point / low-link) algorithm [12], standing in for
///    JGraphT's BiconnectivityInspector.
///  - MC: Bron-Kerbosch maximal clique enumeration with pivoting [21],
///    standing in for JGraphT's BronKerboschCliqueFinder. Clique-set
///    construction allocates per recursion step, reproducing the steady
///    garbage the paper observes ("some allocation is done by the
///    Bron-Kerbosch algorithm, which triggers GC often").
///
/// All traversal state lives on the managed heap (node payload words and
/// managed stacks/arrays), so the algorithms exercise exactly the
/// pointer-chasing behaviour whose locality HCSGC improves.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_WORKLOADS_GRAPHALGOS_H
#define HCSGC_WORKLOADS_GRAPHALGOS_H

#include "workloads/ManagedGraph.h"

namespace hcsgc {

/// Result of a CC/biconnectivity pass.
struct CcResult {
  uint64_t Components = 0;
  uint64_t ArticulationPoints = 0;
  uint64_t LowSum = 0; ///< Checksum over low-link values.
  uint64_t EdgesVisited = 0;
};

/// Runs Hopcroft-Tarjan DFS over the whole graph, computing connected
/// components and articulation points.
/// \param Epoch distinguishes this pass's visit marks from earlier
///        passes (must increase between passes over the same graph).
CcResult connectedComponents(Mutator &M, ManagedGraph &G, int64_t Epoch);

/// Result of a Bron-Kerbosch enumeration.
struct BkResult {
  uint64_t Cliques = 0;
  uint64_t MaxSize = 0;
  uint64_t Steps = 0;
  bool Truncated = false;
};

/// Enumerates maximal cliques (vertex-order outer loop + pivoting).
/// Requires the graph to be built with neighbor-id arrays.
/// \param MaxSteps recursion budget; enumeration stops (Truncated=true)
///        when exceeded so dense graphs stay bounded.
BkResult bronKerbosch(Mutator &M, ManagedGraph &G, uint64_t MaxSteps);

} // namespace hcsgc

#endif // HCSGC_WORKLOADS_GRAPHALGOS_H
