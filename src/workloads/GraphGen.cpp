//===- workloads/GraphGen.cpp - Synthetic web-graph generator ----------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/GraphGen.h"

#include "support/Random.h"

#include <algorithm>
#include <cassert>

using namespace hcsgc;

CsrGraph hcsgc::generateWebGraph(const GraphSpec &Spec) {
  assert(Spec.Nodes >= 2 && "graph too small");
  SplitMix64 Rng(Spec.Seed);

  // Edge endpoints so far; sampling from this vector implements
  // preferential attachment (probability proportional to degree).
  std::vector<uint32_t> Endpoints;
  Endpoints.reserve(Spec.Edges * 2);
  std::vector<std::pair<uint32_t, uint32_t>> EdgeList;
  EdgeList.reserve(Spec.Edges);

  auto PickEndpoint = [&](uint32_t Avoid) -> uint32_t {
    for (int Tries = 0; Tries < 16; ++Tries) {
      uint32_t V;
      if (!Endpoints.empty() && Rng.nextDouble() < Spec.PrefAttach)
        V = Endpoints[Rng.nextBelow(Endpoints.size())];
      else
        V = static_cast<uint32_t>(Rng.nextBelow(Spec.Nodes));
      if (V != Avoid)
        return V;
    }
    return (Avoid + 1) % static_cast<uint32_t>(Spec.Nodes);
  };

  // A sprinkle of "community" edges: connect near-by ids, emulating the
  // host-locality structure of web graphs.
  for (size_t E = 0; E < Spec.Edges; ++E) {
    uint32_t U, V;
    if (Rng.nextDouble() < 0.3) {
      U = static_cast<uint32_t>(Rng.nextBelow(Spec.Nodes));
      uint64_t Window = 16 + Rng.nextBelow(48);
      V = static_cast<uint32_t>((U + 1 + Rng.nextBelow(Window)) %
                                Spec.Nodes);
      if (U == V)
        V = (V + 1) % static_cast<uint32_t>(Spec.Nodes);
    } else {
      U = static_cast<uint32_t>(Rng.nextBelow(Spec.Nodes));
      V = PickEndpoint(U);
    }
    EdgeList.push_back({std::min(U, V), std::max(U, V)});
    Endpoints.push_back(U);
    Endpoints.push_back(V);
  }

  // Deduplicate.
  std::sort(EdgeList.begin(), EdgeList.end());
  EdgeList.erase(std::unique(EdgeList.begin(), EdgeList.end()),
                 EdgeList.end());

  // Build CSR with both directions.
  CsrGraph G;
  G.N = Spec.Nodes;
  std::vector<uint32_t> Deg(Spec.Nodes, 0);
  for (const auto &[U, V] : EdgeList) {
    ++Deg[U];
    ++Deg[V];
  }
  G.Offsets.resize(Spec.Nodes + 1, 0);
  for (size_t I = 0; I < Spec.Nodes; ++I)
    G.Offsets[I + 1] = G.Offsets[I] + Deg[I];
  G.Adj.resize(G.Offsets.back());
  std::vector<uint32_t> Fill(G.Offsets.begin(), G.Offsets.end() - 1);
  for (const auto &[U, V] : EdgeList) {
    G.Adj[Fill[U]++] = V;
    G.Adj[Fill[V]++] = U;
  }
  // Sorted adjacency enables binary-search membership tests (used by the
  // Bron-Kerbosch workload).
  for (size_t I = 0; I < Spec.Nodes; ++I)
    std::sort(G.Adj.begin() + G.Offsets[I], G.Adj.begin() + G.Offsets[I + 1]);
  return G;
}

GraphSpec hcsgc::ukCcSpec() {
  return GraphSpec{28128, 900002, 11, 0.6};
}

GraphSpec hcsgc::ukMcSpec() { return GraphSpec{5099, 239294, 42, 0.5}; }

GraphSpec hcsgc::enwikiCcSpec() {
  return GraphSpec{28126, 80002, 7, 0.65};
}

GraphSpec hcsgc::enwikiMcSpec() {
  return GraphSpec{43354, 170660, 9, 0.65};
}

GraphSpec hcsgc::scaleSpec(GraphSpec Spec, double Factor) {
  if (Factor <= 0 || Factor == 1.0)
    return Spec;
  Spec.Nodes = std::max<size_t>(16, static_cast<size_t>(
                                        static_cast<double>(Spec.Nodes) *
                                        Factor));
  Spec.Edges = std::max<size_t>(32, static_cast<size_t>(
                                        static_cast<double>(Spec.Edges) *
                                        Factor));
  return Spec;
}
