//===- workloads/GraphGen.h - Synthetic web-graph generator ----*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic stand-in for the LAW datasets (uk-2007-05@100000 and
/// enwiki-2018) used in §4.5 / Table 3, which are not redistributable.
/// The generator produces undirected graphs with the properties the
/// HCSGC evaluation depends on: a power-law-ish degree distribution
/// (preferential attachment) mixed with local community edges, at the
/// node/edge counts of Table 3. The bench layer additionally shuffles
/// node allocation order so traversal order differs from allocation
/// order — the situation HCSGC is designed to repair.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_WORKLOADS_GRAPHGEN_H
#define HCSGC_WORKLOADS_GRAPHGEN_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hcsgc {

/// Generation parameters.
struct GraphSpec {
  size_t Nodes = 1000;
  size_t Edges = 10000; ///< Undirected edge count (deduplicated target).
  uint64_t Seed = 1;
  /// Probability that an edge endpoint is chosen preferentially (by
  /// picking an endpoint of an existing edge) rather than uniformly;
  /// higher values give heavier-tailed degrees.
  double PrefAttach = 0.6;
};

/// Compressed-sparse-row undirected graph (each edge appears in both
/// adjacency lists; Offsets has N+1 entries).
struct CsrGraph {
  size_t N = 0;
  std::vector<uint32_t> Offsets;
  std::vector<uint32_t> Adj;

  size_t degree(size_t V) const { return Offsets[V + 1] - Offsets[V]; }
  size_t edgeCount() const { return Adj.size() / 2; }
};

/// Generates an undirected simple graph per \p Spec. The realized edge
/// count may fall slightly short of Spec.Edges after deduplication.
CsrGraph generateWebGraph(const GraphSpec &Spec);

/// Table 3 presets (the subgraph scales actually used per benchmark).
GraphSpec ukCcSpec();     ///< uk (CC): 28,128 nodes, 900,002 edges.
GraphSpec ukMcSpec();     ///< uk (MC): 5,099 nodes, 239,294 edges.
GraphSpec enwikiCcSpec(); ///< enwiki (CC): 28,126 nodes, 80,002 edges.
GraphSpec enwikiMcSpec(); ///< enwiki (MC): 43,354 nodes, 170,660 edges.

/// Scales a spec's node/edge counts by \p Factor (for quick bench runs).
GraphSpec scaleSpec(GraphSpec Spec, double Factor);

} // namespace hcsgc

#endif // HCSGC_WORKLOADS_GRAPHGEN_H
