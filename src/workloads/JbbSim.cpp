//===- workloads/JbbSim.cpp - SPECjbb2015-like workload ----------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/JbbSim.h"

#include "support/Random.h"
#include "support/Stopwatch.h"

#include <algorithm>

using namespace hcsgc;

JbbSimResult hcsgc::runJbbSim(Mutator &M, const JbbSimParams &P) {
  Runtime &RT = M.runtime();
  ClassId WarehouseCls = RT.registerClass("jbb.Warehouse", 1, 32);
  ClassId ItemCls = RT.registerClass("jbb.Item", 1, 24);
  ClassId TxnObjCls = RT.registerClass("jbb.TxnObj", 1, 24);

  JbbSimResult Res;
  SplitMix64 Rng(P.Seed);

  Root Warehouses(M), Ring(M), Wh(M), Obj(M), Prev(M), Tmp(M);

  // Long-lived core: warehouses with small item inventories.
  M.allocateRefArray(Warehouses, P.Warehouses);
  for (unsigned I = 0; I < P.Warehouses; ++I) {
    M.allocate(Wh, WarehouseCls);
    M.storeWord(Wh, 0, I);
    Root Items(M);
    M.allocateRefArray(Items, 64);
    for (unsigned K = 0; K < 64; ++K) {
      M.allocate(Tmp, ItemCls);
      M.storeWord(Tmp, 0, K);
      M.storeElem(Items, K, Tmp);
    }
    M.storeRef(Wh, 0, Items);
    M.storeElem(Warehouses, I, Wh);
  }

  // Survivor ring: the ~1% of transaction objects that live on; storing
  // a new survivor evicts (frees) an old one, keeping occupancy stable.
  M.allocateRefArray(Ring, P.RingSize);
  uint32_t RingPos = 0;

  // Per-transaction latencies of the final (highest-rate) level, in
  // simulated cycles when probes are on, else wall nanoseconds.
  std::vector<double> LastLevelLatencies;
  Stopwatch Wall;
  auto Clock = [&]() -> double {
    uint64_t C = M.counters().Cycles;
    return C ? static_cast<double>(C)
             : static_cast<double>(Wall.elapsedNs());
  };

  double TotalTxns = 0, TotalTime = 0;
  for (unsigned Level = 1; Level <= P.RampLevels; ++Level) {
    unsigned Txns = P.TxnsPerLevelBase * Level;
    bool Last = Level == P.RampLevels;
    if (Last)
      LastLevelLatencies.reserve(Txns);
    double LevelStart = Clock();

    for (unsigned T = 0; T < Txns; ++T) {
      double T0 = Last ? Clock() : 0;
      uint32_t W = static_cast<uint32_t>(Rng.nextBelow(P.Warehouses));
      M.loadElem(Warehouses, W, Wh);
      Root Items(M);
      M.loadRef(Wh, 0, Items);

      // Allocate the transaction's object chain, touching inventory.
      M.clearRoot(Prev);
      for (unsigned K = 0; K < P.ObjectsPerTxn; ++K) {
        M.allocate(Obj, TxnObjCls);
        if (!Prev.isNull())
          M.storeRef(Obj, 0, Prev);
        M.storeWord(Obj, 0, static_cast<int64_t>(T + K));
        uint32_t ItemIdx = static_cast<uint32_t>(Rng.nextBelow(64));
        M.loadElem(Items, ItemIdx, Tmp);
        M.storeWord(Obj, 1, M.loadWord(Tmp, 0));
        M.storeWord(Tmp, 1, M.loadWord(Tmp, 1) + 1);
        M.copyRoot(Obj, Prev);
      }
      Res.Checksum += static_cast<uint64_t>(M.loadWord(Prev, 0));

      // Retain ~RetainPct% of transactions' heads in the ring.
      if (Rng.nextBelow(100) < P.RetainPct) {
        M.storeElem(Ring, RingPos, Prev);
        RingPos = (RingPos + 1) % P.RingSize;
      }
      M.storeWord(Wh, 1, M.loadWord(Wh, 1) + 1);
      M.simulateWork(P.ComputeCyclesPerTxn);
      ++Res.TxnsProcessed;
      if (Last)
        LastLevelLatencies.push_back(Clock() - T0);
    }

    double LevelTime = Clock() - LevelStart;
    TotalTxns += Txns;
    TotalTime += LevelTime;
    if (Last && LevelTime > 0) {
      // Throughput: transactions per simulated second at the highest
      // injection level (3 GHz nominal clock).
      Res.ThroughputScore =
          static_cast<double>(Txns) / (LevelTime / 3.0e9);
    }
  }

  if (!LastLevelLatencies.empty()) {
    std::sort(LastLevelLatencies.begin(), LastLevelLatencies.end());
    double P99 = LastLevelLatencies[static_cast<size_t>(
        0.99 * static_cast<double>(LastLevelLatencies.size() - 1))];
    if (P99 > 0)
      Res.LatencyScore = 1e6 / P99;
  }
  return Res;
}
