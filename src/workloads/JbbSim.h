//===- workloads/JbbSim.h - SPECjbb2015-like workload ----------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stand-in for SPECjbb2015 composite (§4.7): transaction batches with a
/// ramping injection rate, reporting a throughput score and a latency
/// score. Only ~1% of allocated objects survive a GC cycle (the paper
/// measures "~1%, indicating that most objects do not survive a GC
/// cycle"), which is why HCSGC cannot help here — the expected result is
/// overlapping confidence intervals.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_WORKLOADS_JBBSIM_H
#define HCSGC_WORKLOADS_JBBSIM_H

#include "runtime/Runtime.h"

#include <vector>

namespace hcsgc {

/// Parameters of the jbb-like simulation.
struct JbbSimParams {
  unsigned Warehouses = 16;
  unsigned RampLevels = 8;        ///< Injection-rate steps.
  unsigned TxnsPerLevelBase = 2000; ///< Transactions at level 1 (scales up).
  unsigned ObjectsPerTxn = 24;
  /// Fraction (percent) of per-transaction objects retained in the
  /// long-lived ring (the ~1% survival the paper reports).
  unsigned RetainPct = 1;
  unsigned RingSize = 20000;
  uint64_t Seed = 0x1bb;
  uint64_t ComputeCyclesPerTxn = 200;
};

/// SPECjbb-style scores.
struct JbbSimResult {
  double ThroughputScore = 0; ///< Txns per simulated second (max level).
  double LatencyScore = 0;    ///< 1e6 / p99 latency in cycles.
  uint64_t TxnsProcessed = 0;
  uint64_t Checksum = 0;
};

/// Runs the ramping transaction simulation.
JbbSimResult runJbbSim(Mutator &M, const JbbSimParams &P);

} // namespace hcsgc

#endif // HCSGC_WORKLOADS_JBBSIM_H
