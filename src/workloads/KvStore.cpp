//===- workloads/KvStore.cpp - Managed key-value store -------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/KvStore.h"

#include "gc/SiteProfile.h"

#include <cassert>
#include <stdexcept>

using namespace hcsgc;

namespace {

/// SplitMix64 finalizer: the store's only hash/derivation primitive.
uint64_t mix64(uint64_t Z) {
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

uint64_t hashKey(uint64_t Key) {
  return mix64(Key + 0x9E3779B97F4A7C15ull);
}

uint32_t ceilPow2(uint64_t V) {
  uint32_t P = 1;
  while (P < V)
    P <<= 1;
  return P;
}

} // namespace

uint64_t KvStore::expectedWord(uint64_t Key, uint64_t Version,
                               unsigned I) {
  return mix64(Key ^ (Version << 32) ^
               (uint64_t(I) * 0xD1B54A32D192ED03ull));
}

uint64_t KvStore::recordChecksum(uint64_t Key, uint64_t Version) {
  return mix64(Key * 0xFF51AFD7ED558CCDull ^ Version);
}

KvStore::KvStore(Mutator &M, const KvStoreParams &Params)
    : RT(M.runtime()), P(Params) {
  NumShards = ceilPow2(P.Shards ? P.Shards : 1);
  // 2x capacity keeps probe chains short; tombstone purges handle the
  // rest. Floor of 16 slots keeps degenerate configs probing-correct.
  uint64_t PerShard = (P.Capacity + NumShards - 1) / NumShards;
  Slots = ceilPow2(PerShard * 2 < 16 ? 16 : PerShard * 2);
  RecordCls = RT.registerClass("kv.Record", 0,
                               (PW_Value + P.ValueWords) * 8);
  TombstoneCls = RT.registerClass("kv.Tombstone", 0, 8);
  RebuildCtr = &RT.metrics().counter("kv.index.rebuilds");

  Tombstone = RT.createGlobalRoot();
  {
    Root T(M);
    // The sentinel and the shard tables live for the whole store and are
    // only probed (never mutated): both are textbook cold sites once the
    // working set outgrows them.
    M.allocate(T, TombstoneCls, HCSGC_ALLOC_SITE("kv.tombstone"));
    M.storeGlobal(*Tombstone, T);
  }
  ShardsV.reserve(NumShards);
  for (unsigned S = 0; S < NumShards; ++S) {
    auto Sh = std::make_unique<Shard>();
    Sh->Table = RT.createGlobalRoot();
    Root Arr(M);
    M.allocateRefArray(Arr, Slots, HCSGC_ALLOC_SITE("kv.shard_table"));
    M.storeGlobal(*Sh->Table, Arr);
    ShardsV.push_back(std::move(Sh));
  }
}

KvStore::~KvStore() {
  for (auto &Sh : ShardsV)
    if (Sh->Table)
      RT.destroyGlobalRoot(Sh->Table);
  if (Tombstone)
    RT.destroyGlobalRoot(Tombstone);
}

uint64_t KvStore::rebuilds() const { return RebuildCtr->value(); }

void KvStore::makeRecord(Mutator &M, Root &Out, uint64_t Key,
                         uint64_t Version, SiteId Site) {
  M.allocate(Out, RecordCls, Site);
  M.storeWord(Out, PW_Key, static_cast<int64_t>(Key));
  M.storeWord(Out, PW_Version, static_cast<int64_t>(Version));
  M.storeWord(Out, PW_Checksum,
              static_cast<int64_t>(recordChecksum(Key, Version)));
  for (unsigned W = 0; W < P.ValueWords; ++W)
    M.storeWord(Out, PW_Value + W,
                static_cast<int64_t>(expectedWord(Key, Version, W)));
  // Publication happens via the caller's storeElem/storeGlobal: the
  // release reference barrier orders the payload writes above before the
  // slot becomes visible to lock-free readers.
}

KvReadStatus KvStore::get(Mutator &M, uint64_t Key,
                          uint64_t *VersionOut) {
  uint64_t H = hashKey(Key);
  Shard &S = shardFor(H);
  Root Table(M), Rec(M), Tomb(M);
  M.loadGlobal(*S.Table, Table);
  M.loadGlobal(*Tombstone, Tomb);
  uint32_t Mask = Slots - 1;
  for (uint32_t I = 0, Idx = static_cast<uint32_t>(H) & Mask; I < Slots;
       ++I, Idx = (Idx + 1) & Mask) {
    M.loadElem(Table, Idx, Rec);
    if (Rec.isNull())
      return KvReadStatus::Miss;
    if (M.refEquals(Rec, Tomb))
      continue;
    if (static_cast<uint64_t>(M.loadWord(Rec, PW_Key)) != Key)
      continue;
    // Found: the Root pins this record even if a concurrent writer
    // replaces or tombstones the slot, and records are immutable after
    // publication, so validation must pass on an uncorrupted heap.
    uint64_t V = static_cast<uint64_t>(M.loadWord(Rec, PW_Version));
    if (static_cast<uint64_t>(M.loadWord(Rec, PW_Checksum)) !=
        recordChecksum(Key, V))
      return KvReadStatus::Corrupt;
    for (unsigned W = 0; W < P.ValueWords; ++W)
      if (static_cast<uint64_t>(M.loadWord(Rec, PW_Value + W)) !=
          expectedWord(Key, V, W))
        return KvReadStatus::Corrupt;
    if (VersionOut)
      *VersionOut = V;
    return KvReadStatus::Hit;
  }
  return KvReadStatus::Miss;
}

uint64_t KvStore::put(Mutator &M, uint64_t Key) {
  uint64_t H = hashKey(Key);
  Shard &S = shardFor(H);
  ShardGuard G(M, S);
  Root Table(M), Rec(M), Tomb(M), NewRec(M);
  M.loadGlobal(*S.Table, Table);
  M.loadGlobal(*Tombstone, Tomb);
  uint32_t Mask = Slots - 1;
  uint32_t FoundIdx = Slots, FreeIdx = Slots;
  uint64_t OldVersion = 0;
  bool FreeIsTombstone = false;
  for (uint32_t I = 0, Idx = static_cast<uint32_t>(H) & Mask; I < Slots;
       ++I, Idx = (Idx + 1) & Mask) {
    M.loadElem(Table, Idx, Rec);
    if (Rec.isNull()) {
      if (FreeIdx == Slots)
        FreeIdx = Idx;
      break;
    }
    if (M.refEquals(Rec, Tomb)) {
      if (FreeIdx == Slots) {
        FreeIdx = Idx;
        FreeIsTombstone = true;
      }
      continue;
    }
    if (static_cast<uint64_t>(M.loadWord(Rec, PW_Key)) == Key) {
      FoundIdx = Idx;
      OldVersion = static_cast<uint64_t>(M.loadWord(Rec, PW_Version));
      break;
    }
  }

  if (FoundIdx != Slots) {
    uint64_t V = OldVersion + 1;
    // may throw; table untouched
    makeRecord(M, NewRec, Key, V, HCSGC_ALLOC_SITE("kv.record_update"));
    M.storeElem(Table, FoundIdx, NewRec);
    return V;
  }
  if (FreeIdx == Slots)
    throw std::runtime_error("KvStore: shard full (size the capacity)");
  // may throw; table untouched
  makeRecord(M, NewRec, Key, 1, HCSGC_ALLOC_SITE("kv.record_insert"));
  M.storeElem(Table, FreeIdx, NewRec);
  ++S.Live;
  if (FreeIsTombstone)
    --S.Tombstones;
  LiveCount.fetch_add(1, std::memory_order_relaxed);
  return 1;
}

bool KvStore::remove(Mutator &M, uint64_t Key) {
  uint64_t H = hashKey(Key);
  Shard &S = shardFor(H);
  ShardGuard G(M, S);
  Root Table(M), Rec(M), Tomb(M);
  M.loadGlobal(*S.Table, Table);
  M.loadGlobal(*Tombstone, Tomb);
  uint32_t Mask = Slots - 1;
  for (uint32_t I = 0, Idx = static_cast<uint32_t>(H) & Mask; I < Slots;
       ++I, Idx = (Idx + 1) & Mask) {
    M.loadElem(Table, Idx, Rec);
    if (Rec.isNull())
      return false;
    if (M.refEquals(Rec, Tomb))
      continue;
    if (static_cast<uint64_t>(M.loadWord(Rec, PW_Key)) != Key)
      continue;
    M.storeElem(Table, Idx, Tomb);
    --S.Live;
    ++S.Tombstones;
    LiveCount.fetch_sub(1, std::memory_order_relaxed);
    if (S.Tombstones > Slots / 4)
      purgeTombstones(M, S);
    return true;
  }
  return false;
}

void KvStore::purgeTombstones(Mutator &M, Shard &S) {
  // Rebuild into a fresh managed array: live records keep their hash
  // order, tombstones vanish, and the old table becomes garbage — the
  // index itself generates relocation work, which is the point.
  Root OldTable(M), NewTable(M), Rec(M), Tomb(M);
  M.loadGlobal(*S.Table, OldTable);
  M.loadGlobal(*Tombstone, Tomb);
  try {
    M.allocateRefArray(NewTable, Slots,
                       HCSGC_ALLOC_SITE("kv.rebuild_table"));
  } catch (const HeapExhaustedError &) {
    return; // Best-effort: keep tombstones, retry on a later remove.
  }
  uint32_t Mask = Slots - 1;
  for (uint32_t Idx = 0; Idx < Slots; ++Idx) {
    M.loadElem(OldTable, Idx, Rec);
    if (Rec.isNull() || M.refEquals(Rec, Tomb))
      continue;
    uint64_t Key = static_cast<uint64_t>(M.loadWord(Rec, PW_Key));
    uint64_t H = hashKey(Key);
    Root Probe(M);
    for (uint32_t J = 0, NewIdx = static_cast<uint32_t>(H) & Mask;
         J < Slots; ++J, NewIdx = (NewIdx + 1) & Mask) {
      M.loadElem(NewTable, NewIdx, Probe);
      if (Probe.isNull()) {
        M.storeElem(NewTable, NewIdx, Rec);
        break;
      }
    }
  }
  // Readers mid-probe keep the old array pinned via their root; every
  // record they can reach there is still live in the new table.
  M.storeGlobal(*S.Table, NewTable);
  S.Tombstones = 0;
  RebuildCtr->increment();
}

KvScanResult KvStore::scanAll(Mutator &M) {
  KvScanResult R;
  Root Table(M), Rec(M), Tomb(M);
  M.loadGlobal(*Tombstone, Tomb);
  for (auto &Sh : ShardsV) {
    M.loadGlobal(*Sh->Table, Table);
    for (uint32_t Idx = 0; Idx < Slots; ++Idx) {
      M.loadElem(Table, Idx, Rec);
      if (Rec.isNull() || M.refEquals(Rec, Tomb))
        continue;
      uint64_t Key = static_cast<uint64_t>(M.loadWord(Rec, PW_Key));
      uint64_t V = static_cast<uint64_t>(M.loadWord(Rec, PW_Version));
      bool Ok = static_cast<uint64_t>(M.loadWord(Rec, PW_Checksum)) ==
                recordChecksum(Key, V);
      for (unsigned W = 0; Ok && W < P.ValueWords; ++W)
        Ok = static_cast<uint64_t>(M.loadWord(Rec, PW_Value + W)) ==
             expectedWord(Key, V, W);
      if (!Ok)
        ++R.Corrupt;
      ++R.Live;
      // Commutative fold: slot positions depend on interleaving, the
      // (key, version) multiset does not.
      R.Checksum += mix64(Key * 0x2545F4914F6CDD1Dull ^ V);
    }
  }
  return R;
}
