//===- workloads/KvStore.h - Managed key-value store -----------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sharded, open-addressing key-value store built entirely out of
/// managed objects: records are payload-only heap objects carrying a
/// self-validating (key, version, checksum) header, and each shard's
/// slot table is a managed reference array — the index itself
/// participates in marking, hotness sampling and relocation, so a hot
/// working set buried among millions of cold records is exactly the
/// "million users" regime the paper's ColdConfidence weighting targets.
///
/// Concurrency model (designed to stay correct under concurrent GC,
/// relocation and TSan):
///
///  - Records are immutable after publication. An update allocates a
///    fresh record (version + 1) and publishes it with the release-store
///    reference barrier; readers acquire-load the slot and then read the
///    payload, so every observed record is internally consistent.
///  - Readers are lock-free: they probe the slot array with plain
///    barriered loads and never take the shard mutex.
///  - Writers serialize per shard on a std::mutex. A contended waiter
///    first declares itself safepoint-blocked so a stop-the-world pause
///    never waits on a mutator that is parked on a lock.
///  - Deletion writes a shared tombstone sentinel into the slot; probe
///    chains skip it. When tombstones accumulate past a quarter of the
///    shard, the shard table is rebuilt into a freshly allocated array
///    (extra relocation traffic for the GC, by design).
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_WORKLOADS_KVSTORE_H
#define HCSGC_WORKLOADS_KVSTORE_H

#include "observe/Metrics.h"
#include "runtime/Runtime.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

namespace hcsgc {

/// Outcome of KvStore::get.
enum class KvReadStatus {
  Hit,    ///< Key present, payload checksum-consistent.
  Miss,   ///< Key absent.
  Corrupt ///< Key present but the record failed self-validation.
};

/// Sizing of a KvStore.
struct KvStoreParams {
  size_t Capacity = 1 << 16; ///< Max live records (tables sized 2x).
  unsigned Shards = 8;       ///< Rounded up to a power of two.
  unsigned ValueWords = 8;   ///< Derived payload words per record.
};

/// Aggregate of KvStore::scanAll.
struct KvScanResult {
  uint64_t Live = 0;     ///< Records visited.
  uint64_t Corrupt = 0;  ///< Records failing self-validation (want 0).
  uint64_t Checksum = 0; ///< Commutative fold of (key, version) pairs.
};

/// The managed hash index. One instance per runtime; any attached
/// mutator may call into it (pass the calling thread's Mutator).
class KvStore {
public:
  /// Registers classes and allocates the shard tables and the tombstone
  /// sentinel using \p M. \throws HeapExhaustedError if the heap cannot
  /// hold the empty index.
  KvStore(Mutator &M, const KvStoreParams &P);
  ~KvStore();

  KvStore(const KvStore &) = delete;
  KvStore &operator=(const KvStore &) = delete;

  /// Lock-free read with full payload validation.
  /// \returns Hit/Miss/Corrupt; on Hit stores the version through
  /// \p VersionOut when non-null.
  KvReadStatus get(Mutator &M, uint64_t Key,
                   uint64_t *VersionOut = nullptr);

  /// Inserts \p Key (version 1) or replaces its record with a fresh one
  /// at version + 1. \returns the published version.
  /// \throws HeapExhaustedError (table state unchanged) on allocation
  /// failure.
  uint64_t put(Mutator &M, uint64_t Key);

  /// Deletes \p Key by tombstoning its slot.
  /// \returns false if the key was absent.
  bool remove(Mutator &M, uint64_t Key);

  /// Walks every live record, validating payloads and folding (key,
  /// version) into an order-independent checksum. Call from a single
  /// thread with no writers racing (readers are harmless).
  KvScanResult scanAll(Mutator &M);

  /// Approximate live-record count (exact when quiescent).
  uint64_t size() const {
    return LiveCount.load(std::memory_order_relaxed);
  }

  unsigned shards() const { return NumShards; }
  uint32_t slotsPerShard() const { return Slots; }
  uint64_t rebuilds() const;

  /// Value word \p I of the record (\p Key, \p Version): pure function,
  /// so any reader can recompute and compare.
  static uint64_t expectedWord(uint64_t Key, uint64_t Version, unsigned I);
  /// The header checksum binding \p Key to \p Version.
  static uint64_t recordChecksum(uint64_t Key, uint64_t Version);

private:
  // Record payload layout (words).
  static constexpr uint32_t PW_Key = 0;
  static constexpr uint32_t PW_Version = 1;
  static constexpr uint32_t PW_Checksum = 2;
  static constexpr uint32_t PW_Value = 3;

  struct Shard {
    GlobalRoot *Table = nullptr; ///< Managed ref array of Slots slots.
    std::mutex Mu;               ///< Writer serialization.
    uint32_t Live = 0;           ///< Under Mu.
    uint32_t Tombstones = 0;     ///< Under Mu.
  };

  /// Writer-side shard lock: an uncontended acquisition costs one
  /// try_lock; a contended waiter parks as safepoint-blocked so GC
  /// pauses proceed without it.
  class ShardGuard {
  public:
    ShardGuard(Mutator &M, Shard &S) : Mu(S.Mu) {
      if (!Mu.try_lock()) {
        BlockedScope B(M.runtime().safepoints());
        Mu.lock();
      }
    }
    ~ShardGuard() { Mu.unlock(); }

  private:
    std::mutex &Mu;
  };

  Shard &shardFor(uint64_t Hash) {
    return *ShardsV[(Hash >> 32) & (NumShards - 1)];
  }

  /// Allocates and fills an immutable record; the slot tables are not
  /// touched, so a HeapExhaustedError here leaves the store unchanged.
  /// \p Site is the caller's allocation site — inserts and updates have
  /// very different lifetimes (updates die on the next overwrite), so
  /// the tag rides through instead of being taken here.
  void makeRecord(Mutator &M, Root &Out, uint64_t Key, uint64_t Version,
                  SiteId Site);

  /// Rebuilds \p S's table without tombstones. Caller holds the shard
  /// lock. Best-effort: allocation failure leaves the old table intact.
  void purgeTombstones(Mutator &M, Shard &S);

  Runtime &RT;
  KvStoreParams P;
  unsigned NumShards;   ///< Power of two.
  uint32_t Slots;       ///< Per-shard table length, power of two.
  ClassId RecordCls;
  ClassId TombstoneCls;
  GlobalRoot *Tombstone = nullptr;
  std::vector<std::unique_ptr<Shard>> ShardsV;
  std::atomic<uint64_t> LiveCount{0};
  Counter *RebuildCtr = nullptr; ///< kv.index.rebuilds.
};

} // namespace hcsgc

#endif // HCSGC_WORKLOADS_KVSTORE_H
