//===- workloads/KvWorkload.cpp - YCSB-style KV workload -----------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/KvWorkload.h"

#include "support/Compiler.h"
#include "support/Stopwatch.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <thread>

using namespace hcsgc;

namespace {

uint64_t mix64(uint64_t Z) {
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

} // namespace

KvKeySpace::KvKeySpace(const Params &Params) : P(Params) {
  assert(P.Keys > 0 && "empty keyspace");
  // Perm stores 32-bit keys; a larger keyspace would silently truncate
  // during the iota fill below. Fail loudly instead.
  if (P.Keys > UINT32_MAX)
    fatalError("KV keyspace exceeds 2^32 keys (Perm is uint32_t)");
  double HotF = std::min(1.0, std::max(0.0, P.HotKeyFraction));
  HotN = static_cast<size_t>(
      std::max<double>(1.0, std::round(HotF * double(P.Keys))));
  HotN = std::min(HotN, P.Keys);
  if (P.D == Dist::Zipf) {
    Z = std::make_unique<ZipfSampler>(P.Keys, P.Theta);
    // The sampler's CDF build already computed the harmonic sum; reuse it
    // instead of a second O(Keys) pow loop.
    ZipfNorm = Z->normalizer();
  }
  // Scatter permutation: hot ranks land on keys spread across the whole
  // load order, so hot records are buried among cold ones on the heap.
  Perm.resize(P.Keys);
  std::iota(Perm.begin(), Perm.end(), 0u);
  SplitMix64 Rng(mix64(P.Seed ^ 0x5CA77E12ull));
  shuffle(Perm, Rng);
}

uint64_t KvKeySpace::pickRank(SplitMix64 &Rng) const {
  switch (P.D) {
  case Dist::Zipf:
    return Z->sample(Rng);
  case Dist::Hotspot:
    if (HotN >= P.Keys || Rng.nextDouble() < P.HotOpFraction)
      return Rng.nextBelow(HotN);
    return HotN + Rng.nextBelow(P.Keys - HotN);
  case Dist::Uniform:
    return Rng.nextBelow(P.Keys);
  }
  return 0;
}

double KvKeySpace::pmf(uint64_t Rank) const {
  assert(Rank < P.Keys);
  switch (P.D) {
  case Dist::Zipf:
    return (1.0 / std::pow(double(Rank + 1), P.Theta)) / ZipfNorm;
  case Dist::Hotspot: {
    if (HotN >= P.Keys)
      return 1.0 / double(P.Keys);
    if (Rank < HotN)
      return P.HotOpFraction / double(HotN);
    return (1.0 - P.HotOpFraction) / double(P.Keys - HotN);
  }
  case Dist::Uniform:
    return 1.0 / double(P.Keys);
  }
  return 0;
}

namespace {

/// One worker's tally; merged single-threaded after the join.
struct WorkerOut {
  uint64_t Ops = 0;
  uint64_t Reads = 0, Updates = 0, Inserts = 0, Removes = 0;
  uint64_t Misses = 0, Failures = 0, Exhausted = 0;
  Histogram Lat; ///< Per-thread: recorded uncontended, merged at end.
};

/// The mixed phase of one worker. Every decision depends only on
/// (Seed, W, op ordinal): the key chooser stream, the op dice, and the
/// worker-owned churn segment cursor.
void kvWorker(Mutator &M, KvStore &Store, const KvKeySpace &Keys,
              const KvWorkloadParams &P, unsigned W, uint64_t Ops,
              uint64_t ChurnLo, uint64_t ChurnHi, WorkerOut &Out) {
  SplitMix64 Rng(mix64(P.Seed ^ (0xB16B00B5ull + W)));
  std::vector<bool> ChurnPresent(ChurnHi - ChurnLo, false);
  uint64_t ChurnCursor = 0;
  Stopwatch SW;
  for (uint64_t Op = 0; Op < Ops; ++Op) {
    uint64_t Dice = Rng.nextBelow(100);
    uint64_t T0 = SW.elapsedNs();
    try {
      if (Dice < P.ReadPct) {
        uint64_t Key = Keys.pick(Rng);
        KvReadStatus St = Store.get(M, Key);
        ++Out.Reads;
        if (St == KvReadStatus::Miss) {
          ++Out.Misses; // Base keys are never removed: a miss is a bug.
          ++Out.Failures;
        } else if (St == KvReadStatus::Corrupt) {
          ++Out.Failures;
        }
      } else if (Dice < P.ReadPct + P.UpdatePct || ChurnLo == ChurnHi) {
        uint64_t Key = Keys.pick(Rng);
        Store.put(M, Key);
        ++Out.Updates;
      } else {
        // Churn: round-robin toggle over this worker's own segment.
        uint64_t Key = ChurnLo + ChurnCursor;
        bool Present = ChurnPresent[ChurnCursor];
        ChurnCursor = (ChurnCursor + 1) % (ChurnHi - ChurnLo);
        if (Present) {
          if (!Store.remove(M, Key))
            ++Out.Failures; // We inserted it; it must be there.
          ChurnPresent[Key - ChurnLo] = false;
          ++Out.Removes;
        } else {
          Store.put(M, Key);
          ChurnPresent[Key - ChurnLo] = true;
          ++Out.Inserts;
        }
      }
    } catch (const HeapExhaustedError &) {
      // Recoverable by contract; the op simply did not happen. (Churn
      // presence is only flipped after success, so the tally stays
      // consistent.)
      ++Out.Exhausted;
    }
    Out.Lat.record(SW.elapsedNs() - T0);
    M.simulateWork(P.ComputeCyclesPerOp);
    ++Out.Ops;
  }
}

} // namespace

KvWorkloadResult hcsgc::runKvWorkload(Mutator &M,
                                      const KvWorkloadParams &P) {
  Runtime &RT = M.runtime();
  MetricsRegistry &MR = RT.metrics();
  // Create the whole kv.* family up front so the metrics catalog sees
  // it even on degenerate configs.
  Counter &ReadCtr = MR.counter("kv.ops.read");
  Counter &UpdateCtr = MR.counter("kv.ops.update");
  Counter &InsertCtr = MR.counter("kv.ops.insert");
  Counter &RemoveCtr = MR.counter("kv.ops.remove");
  Counter &MissCtr = MR.counter("kv.read.misses");
  Counter &FailCtr = MR.counter("kv.consistency.failures");
  Histogram &LatHist = MR.histogram("kv.op_latency_ns");

  KvStoreParams SP;
  SP.Capacity = P.Records + P.ChurnKeys;
  SP.Shards = P.Shards;
  SP.ValueWords = P.ValueWords;
  KvStore Store(M, SP);

  KvKeySpace::Params KP;
  KP.Keys = P.Records;
  KP.D = P.D;
  KP.Theta = P.Theta;
  KP.HotKeyFraction = P.HotKeyFraction;
  KP.HotOpFraction = P.HotOpFraction;
  KP.Seed = P.Seed;
  KvKeySpace Keys(KP);

  // Load phase: base keys in key order. The scatter permutation makes
  // rank order (access skew) unrelated to this allocation order.
  for (uint64_t K = 0; K < P.Records; ++K)
    Store.put(M, K);

  unsigned T = std::max(1u, P.Threads);
  std::vector<WorkerOut> Outs(T);
  auto OpsOf = [&](unsigned W) {
    return P.Ops / T + (W < P.Ops % T ? 1 : 0);
  };
  auto ChurnLoOf = [&](unsigned W) {
    return P.Records + W * P.ChurnKeys / T;
  };
  auto ChurnHiOf = [&](unsigned W) {
    return P.Records + (W + 1) * P.ChurnKeys / T;
  };

  Stopwatch Mix;
  {
    std::vector<std::thread> Threads;
    for (unsigned W = 1; W < T; ++W)
      Threads.emplace_back([&, W] {
        auto WM = RT.attachMutator();
        kvWorker(*WM, Store, Keys, P, W, OpsOf(W), ChurnLoOf(W),
                 ChurnHiOf(W), Outs[W]);
      });
    kvWorker(M, Store, Keys, P, 0, OpsOf(0), ChurnLoOf(0), ChurnHiOf(0),
             Outs[0]);
    // Joining must not stall a GC pause: wait as a blocked mutator.
    BlockedScope B(RT.safepoints());
    for (std::thread &Th : Threads)
      Th.join();
  }
  double MixSec = double(Mix.elapsedNs()) / 1e9;

  KvWorkloadResult Res;
  Histogram AllLat;
  for (const WorkerOut &O : Outs) {
    Res.OpsDone += O.Ops;
    Res.Reads += O.Reads;
    Res.Updates += O.Updates;
    Res.Inserts += O.Inserts;
    Res.Removes += O.Removes;
    Res.ReadMisses += O.Misses;
    Res.ConsistencyFailures += O.Failures;
    Res.HeapExhausted += O.Exhausted;
    AllLat.merge(O.Lat);
  }
  ReadCtr.add(Res.Reads);
  UpdateCtr.add(Res.Updates);
  InsertCtr.add(Res.Inserts);
  RemoveCtr.add(Res.Removes);
  MissCtr.add(Res.ReadMisses);
  FailCtr.add(Res.ConsistencyFailures);
  LatHist.merge(AllLat);

  // Quiescent validation sweep: every surviving record must still
  // self-validate, and its (key, version) multiset is the same on every
  // schedule and every GC configuration.
  KvScanResult Scan = Store.scanAll(M);
  Res.ConsistencyFailures += Scan.Corrupt;
  FailCtr.add(Scan.Corrupt);
  Res.LiveRecords = Scan.Live;
  Res.MixSeconds = MixSec;
  Res.ThroughputKops =
      MixSec > 0 ? double(Res.OpsDone) / MixSec / 1e3 : 0;
  Res.OpP50Ns = double(AllLat.percentile(0.5));
  Res.OpP99Ns = double(AllLat.percentile(0.99));

  uint64_t C = 0x4B56C0DEull;
  C = mix64(C ^ Scan.Checksum);
  C = mix64(C ^ Scan.Live);
  C = mix64(C ^ Res.OpsDone);
  C = mix64(C ^ Res.Reads);
  C = mix64(C ^ Res.Updates);
  C = mix64(C ^ Res.Inserts);
  C = mix64(C ^ Res.Removes);
  C = mix64(C ^ (Res.ConsistencyFailures * 0xBADC0DEull));
  C = mix64(C ^ Res.HeapExhausted);
  Res.Checksum = C;
  return Res;
}
