//===- workloads/KvWorkload.h - YCSB-style KV workload ---------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// YCSB-style driver over the managed KvStore: a deterministic keyspace
/// with Zipf(θ), hotspot (defaults: 20% of keys take 80% of ops) or
/// uniform key choosers, worker threads running a configurable
/// read/update mix plus an insert/delete churn knob, and per-thread op
/// latency histograms merged into the runtime's MetricsRegistry at the
/// end of the run.
///
/// Determinism contract: every op a worker performs is a pure function
/// of (workload seed, worker index, op ordinal). Reads never fold
/// observed versions into the checksum (those depend on interleaving);
/// instead the run ends with a single-threaded full-store scan whose
/// (key, version) multiset IS schedule-invariant — each base key's final
/// version is 1 + the number of updates that targeted it, and churn keys
/// are owned by exactly one worker — so the reported checksum is
/// identical across GC configurations, which the harness report
/// enforces.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_WORKLOADS_KVWORKLOAD_H
#define HCSGC_WORKLOADS_KVWORKLOAD_H

#include "support/Random.h"
#include "workloads/KvStore.h"

#include <memory>

namespace hcsgc {

/// Deterministic key chooser over [0, Keys): ranks are drawn from the
/// configured distribution, then mapped through a seeded shuffle so the
/// hot ranks scatter across the keyspace (hot records end up buried
/// among cold ones in allocation order — the regime ColdConfidence
/// weighting is built for).
class KvKeySpace {
public:
  enum class Dist { Uniform, Zipf, Hotspot };

  struct Params {
    size_t Keys = 100 * 1000;
    Dist D = Dist::Zipf;
    double Theta = 0.99;         ///< Zipf skew.
    double HotKeyFraction = 0.2; ///< Hotspot: share of keys that are hot.
    double HotOpFraction = 0.8;  ///< Hotspot: share of ops on hot keys.
    uint64_t Seed = 0x5EED;      ///< Shuffle seed (not the op stream).
  };

  explicit KvKeySpace(const Params &P);

  size_t size() const { return P.Keys; }
  size_t hotCount() const { return HotN; }

  /// Draws a rank in [0, Keys) from the distribution.
  uint64_t pickRank(SplitMix64 &Rng) const;

  /// Draws a key (rank mapped through the scatter permutation).
  uint64_t pick(SplitMix64 &Rng) const { return Perm[pickRank(Rng)]; }

  /// Key of \p Rank under the scatter permutation.
  uint64_t keyOfRank(uint64_t Rank) const { return Perm[Rank]; }

  /// Analytic probability of \p Rank — the chi-square reference.
  double pmf(uint64_t Rank) const;

  /// True when \p Rank belongs to the hot set (hotspot mode: the first
  /// HotN ranks; Zipf: the head of the distribution).
  bool hotRank(uint64_t Rank) const { return Rank < HotN; }

private:
  Params P;
  size_t HotN;
  double ZipfNorm = 0; ///< Generalized harmonic number H_{N,theta}.
  std::unique_ptr<ZipfSampler> Z;
  std::vector<uint32_t> Perm; ///< rank -> key.
};

/// Full workload configuration. Defaults give the YCSB-B-like 95/5 mix.
struct KvWorkloadParams {
  size_t Records = 100 * 1000; ///< Base keys, loaded up front, never removed.
  size_t ChurnKeys = 12 * 1000; ///< Extra keyspace toggled by churn ops.
  uint64_t Ops = 500 * 1000;   ///< Total mixed ops across all workers.
  unsigned Threads = 4;        ///< Worker count (thread 0 = caller).
  KvKeySpace::Dist D = KvKeySpace::Dist::Zipf;
  double Theta = 0.99;
  double HotKeyFraction = 0.2;
  double HotOpFraction = 0.8;
  unsigned ReadPct = 95;
  unsigned UpdatePct = 5; ///< Remainder of 100 = churn toggles.
  unsigned ValueWords = 8;
  unsigned Shards = 16;
  uint64_t Seed = 0x5EED;
  uint64_t ComputeCyclesPerOp = 64; ///< Simulated think time.
};

/// Aggregated outcome of one run.
struct KvWorkloadResult {
  uint64_t Checksum = 0; ///< Schedule-invariant (see file comment).
  uint64_t OpsDone = 0;
  uint64_t Reads = 0, Updates = 0, Inserts = 0, Removes = 0;
  uint64_t ReadMisses = 0;  ///< Base-key misses; any nonzero is a bug.
  uint64_t ConsistencyFailures = 0; ///< Corrupt reads + scan corruption.
  uint64_t HeapExhausted = 0; ///< Ops abandoned to HeapExhaustedError.
  uint64_t LiveRecords = 0;   ///< Final store size.
  double MixSeconds = 0;      ///< Wall time of the mixed phase.
  double ThroughputKops = 0;  ///< OpsDone / MixSeconds / 1e3.
  double OpP50Ns = 0, OpP99Ns = 0; ///< Merged op-latency percentiles.
};

/// Loads the base records, runs the mixed phase on \p P.Threads workers
/// (the calling mutator is worker 0; the rest attach their own), then
/// scans and validates the final store. Registers kv.* metrics in the
/// runtime's MetricsRegistry.
KvWorkloadResult runKvWorkload(Mutator &M, const KvWorkloadParams &P);

} // namespace hcsgc

#endif // HCSGC_WORKLOADS_KVWORKLOAD_H
