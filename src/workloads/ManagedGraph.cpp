//===- workloads/ManagedGraph.cpp - Graph as managed objects -----------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/ManagedGraph.h"

#include "support/Random.h"

#include <algorithm>
#include <numeric>

using namespace hcsgc;

ManagedGraph::ManagedGraph(Mutator &M, const CsrGraph &G,
                           uint64_t ShuffleSeed, bool WithNeighborIds)
    : M(M), N(G.N), Nodes(M) {
  Runtime &RT = M.runtime();
  NodeCls = RT.registerClass("graph.Node", 2, NW_Count * 8);
  EdgeCls = RT.registerClass("graph.Edge", 2, 8); // 32-byte edge object
  ClassId IdsCls = RT.registerClass("graph.NeighborIds", 0, 0);
  ClassId EdgeTempCls = RT.registerClass("graph.EdgeTemp", 1, 16);

  // Undirected edge list (u < v) with ids, plus per-node incident lists,
  // derived from the CSR in plain memory.
  std::vector<std::pair<uint32_t, uint32_t>> EdgeList;
  std::vector<std::vector<uint32_t>> Incident(N);
  for (uint32_t U = 0; U < N; ++U)
    for (uint32_t K = G.Offsets[U]; K < G.Offsets[U + 1]; ++K) {
      uint32_t V = G.Adj[K];
      if (U < V) {
        uint32_t Id = static_cast<uint32_t>(EdgeList.size());
        EdgeList.push_back({U, V});
        Incident[U].push_back(Id);
        Incident[V].push_back(Id);
      }
    }
  NumEdges = EdgeList.size();

  // Adjacency lists sorted by far-endpoint id: traversals and the
  // Bron-Kerbosch membership test (binary search through the edge
  // objects, like JGraphT's containsEdge walking its adjacency maps)
  // rely on this order.
  for (uint32_t U = 0; U < N; ++U)
    std::sort(Incident[U].begin(), Incident[U].end(),
              [&](uint32_t A, uint32_t B) {
                auto Far = [&](uint32_t E) {
                  return EdgeList[E].first == U ? EdgeList[E].second
                                                : EdgeList[E].first;
                };
                return Far(A) < Far(B);
              });

  M.allocateRefArray(Nodes, static_cast<uint32_t>(N));

  // Vertex objects in shuffled order: neighbors end up scattered across
  // pages, destroying the allocation-order locality a bump allocator
  // would otherwise provide.
  std::vector<uint32_t> Order(N);
  std::iota(Order.begin(), Order.end(), 0);
  SplitMix64 Rng(ShuffleSeed);
  if (ShuffleSeed)
    shuffle(Order, Rng);

  Root Tmp(M), Nbr(M), AdjArr(M), IdsObj(M);
  for (uint32_t Id : Order) {
    M.allocate(Tmp, NodeCls);
    M.storeWord(Tmp, NW_Id, Id);
    M.storeElem(Nodes, Id, Tmp);
  }

  // Shared edge objects, in shuffled edge order, kept reachable through a
  // temporary managed table while adjacency lists are assembled.
  Root EdgeTable(M), EdgeObj(M), SrcN(M), DstN(M);
  M.allocateRefArray(EdgeTable, static_cast<uint32_t>(NumEdges));
  std::vector<uint32_t> EdgeOrder(NumEdges);
  std::iota(EdgeOrder.begin(), EdgeOrder.end(), 0);
  if (ShuffleSeed)
    shuffle(EdgeOrder, Rng);
  for (uint32_t EId : EdgeOrder) {
    auto [U, V] = EdgeList[EId];
    M.loadElem(Nodes, U, SrcN);
    M.loadElem(Nodes, V, DstN);
    M.allocate(EdgeObj, EdgeCls);
    M.storeRef(EdgeObj, ER_Src, SrcN);
    M.storeRef(EdgeObj, ER_Dst, DstN);
    M.storeWord(EdgeObj, EW_SrcId, U);
    M.storeElem(EdgeTable, EId, EdgeObj);
  }

  // Adjacency arrays, also in (re-)shuffled node order. Like the
  // JGraphT/LAW loaders, building allocates transient objects (per-edge
  // temp records, growable-list scratch arrays) that die immediately —
  // this loader churn drives the paper's early GC cycles.
  Root Scratch(M), EdgeTmp(M);
  if (ShuffleSeed)
    shuffle(Order, Rng);
  for (uint32_t Id : Order) {
    const std::vector<uint32_t> &Inc = Incident[Id];
    uint32_t Deg = static_cast<uint32_t>(Inc.size());
    M.loadElem(Nodes, Id, Tmp);
    // Growable-list emulation: fill a scratch array, then trim-copy into
    // the final adjacency array (the scratch becomes garbage).
    M.allocateRefArray(Scratch, Deg);
    for (uint32_t K = 0; K < Deg; ++K) {
      M.loadElem(EdgeTable, Inc[K], EdgeObj);
      M.allocate(EdgeTmp, EdgeTempCls); // per-edge transient record
      M.storeRef(EdgeTmp, 0, EdgeObj);
      M.storeElem(Scratch, K, EdgeObj);
    }
    M.allocateRefArray(AdjArr, Deg);
    for (uint32_t K = 0; K < Deg; ++K) {
      M.loadElem(Scratch, K, EdgeObj);
      M.storeElem(AdjArr, K, EdgeObj);
    }
    M.storeRef(Tmp, NR_Adj, AdjArr);
    if (WithNeighborIds) {
      // Sorted ids as a raw payload object; Bron-Kerbosch uses binary
      // search over it for O(log deg) membership tests.
      uint32_t CsrDeg = static_cast<uint32_t>(G.degree(Id));
      uint32_t Off = G.Offsets[Id];
      M.allocateSized(IdsObj, IdsCls, 0,
                      static_cast<size_t>(CsrDeg) * 8);
      for (uint32_t K = 0; K < CsrDeg; ++K)
        M.storeWord(IdsObj, K, G.Adj[Off + K]);
      M.storeRef(Tmp, NR_NbrIds, IdsObj);
    }
  }
}
