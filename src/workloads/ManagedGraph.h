//===- workloads/ManagedGraph.h - Graph as managed objects -----*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A graph materialized on the managed heap the way JGraphT materializes
/// one (§4.5): every vertex is an object, every undirected edge is a
/// *shared edge object* referenced from both endpoints' adjacency lists,
/// and traversals chase vertex -> adjacency array -> edge object ->
/// vertex pointers for every visited edge. Vertex and edge objects are
/// allocated in *shuffled* order, so traversal order and allocation
/// order disagree — the locality gap HCSGC's mutator-order relocation
/// repairs. Building allocates transient loader objects (growable-list
/// scratch arrays, per-edge temp records) like the JGraphT/LAW loaders
/// do, which is what drives the paper's early GC cycles.
///
/// Node object layout:
///   ref 0   : adjacency (ref array of Edge objects)
///   ref 1   : sorted neighbor-id array (payload object; Bron-Kerbosch
///             membership tests) — null unless requested
///   word 0  : vertex id,  word 1: visit epoch,  word 2: DFS discovery,
///   word 3  : low-link,   word 4: parent id,    word 5: child cursor,
///   word 6  : articulation flag
///
/// Edge object layout (32 bytes, like the paper's element objects):
///   ref 0   : source node,  ref 1: target node
///   word 0  : source id (to pick the far endpoint with one load)
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_WORKLOADS_MANAGEDGRAPH_H
#define HCSGC_WORKLOADS_MANAGEDGRAPH_H

#include "runtime/Runtime.h"
#include "workloads/GraphGen.h"

namespace hcsgc {

/// Payload word indices of a managed graph node.
enum NodeWord : uint32_t {
  NW_Id = 0,
  NW_Epoch = 1,
  NW_Disc = 2,
  NW_Low = 3,
  NW_Parent = 4,
  NW_Cursor = 5,
  NW_ArtFlag = 6,
  NW_Count = 7,
};

/// Reference slot indices of a managed graph node.
enum NodeRef : uint32_t {
  NR_Adj = 0,
  NR_NbrIds = 1,
};

/// Reference slot indices of a managed edge object.
enum EdgeRef : uint32_t {
  ER_Src = 0,
  ER_Dst = 1,
};

/// Payload word indices of a managed edge object.
enum EdgeWord : uint32_t {
  EW_SrcId = 0,
};

/// A graph materialized on a Runtime's heap. Holds the node table as a
/// Root of the constructing mutator; LIFO root discipline applies.
class ManagedGraph {
public:
  /// Builds the managed representation of \p G.
  /// \param ShuffleSeed permutes allocation order of node and edge
  ///        objects (0 = allocate in id order, keeping locality intact).
  /// \param WithNeighborIds also materialize per-node sorted neighbor-id
  ///        payload arrays (needed by Bron-Kerbosch).
  ManagedGraph(Mutator &M, const CsrGraph &G, uint64_t ShuffleSeed,
               bool WithNeighborIds);

  size_t size() const { return N; }
  size_t edgeObjects() const { return NumEdges; }

  /// Loads node \p Id into \p Out.
  void node(uint32_t Id, Root &Out) { M.loadElem(Nodes, Id, Out); }

  /// Given an Edge root and the id of the near endpoint, loads the far
  /// endpoint into \p Out.
  void farEndpoint(const Root &Edge, int64_t NearId, Root &Out) {
    int64_t SrcId = M.loadWord(Edge, EW_SrcId);
    M.loadRef(Edge, SrcId == NearId ? ER_Dst : ER_Src, Out);
  }

  /// The node-table array (ref array of size()).
  Root &nodeTable() { return Nodes; }

  ClassId nodeClass() const { return NodeCls; }
  ClassId edgeClass() const { return EdgeCls; }

private:
  Mutator &M;
  ClassId NodeCls = 0;
  ClassId EdgeCls = 0;
  size_t N;
  size_t NumEdges = 0;
  Root Nodes;
};

} // namespace hcsgc

#endif // HCSGC_WORKLOADS_MANAGEDGRAPH_H
