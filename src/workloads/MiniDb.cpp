//===- workloads/MiniDb.cpp - h2-like in-memory database ----------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/MiniDb.h"

#include "support/Compiler.h"
#include "support/Random.h"

#include <numeric>
#include <vector>

using namespace hcsgc;

MiniDb::MiniDb(Mutator &M) : M(M), RootNode(M) {
  Runtime &RT = M.runtime();
  // Payload: count + leaf flag + MaxKeys keys.
  NodeCls = RT.registerClass("minidb.Node", 2, (2 + MaxKeys) * 8);
  RowCls = RT.registerClass("minidb.Row", 0, 16); // key, value
  newNode(RootNode, /*Leaf=*/true);
}

void MiniDb::newNode(Root &Out, bool Leaf) {
  Root Arr(M);
  M.allocate(Out, NodeCls);
  M.storeWord(Out, PW_Count, 0);
  M.storeWord(Out, PW_Leaf, Leaf);
  if (Leaf) {
    M.allocateRefArray(Arr, MaxKeys);
    M.storeRef(Out, RS_Rows, Arr);
  } else {
    M.allocateRefArray(Arr, MaxKeys + 1);
    M.storeRef(Out, RS_Children, Arr);
  }
}

void MiniDb::newRow(Root &Out, int64_t Key, int64_t Value) {
  M.allocate(Out, RowCls);
  M.storeWord(Out, 0, Key);
  M.storeWord(Out, 1, Value);
}

uint32_t MiniDb::lowerBound(Root &Node, int64_t Key) {
  uint32_t N = static_cast<uint32_t>(M.loadWord(Node, PW_Count));
  uint32_t I = 0;
  while (I < N && M.loadWord(Node, PW_Keys + I) < Key)
    ++I;
  return I;
}

void MiniDb::splitChild(Root &Parent, uint32_t ChildIdx) {
  Root PChildren(M), Child(M), Sibling(M), Tmp(M), CArr(M), SArr(M);
  M.loadRef(Parent, RS_Children, PChildren);
  M.loadElem(PChildren, ChildIdx, Child);

  bool Leaf = M.loadWord(Child, PW_Leaf) != 0;
  newNode(Sibling, Leaf);
  constexpr uint32_t Mid = MaxKeys / 2; // median index (7 for 15 keys)

  // Move the upper half of keys (and rows/children) into the sibling.
  uint32_t SibKeys = MaxKeys - Mid - 1;
  for (uint32_t I = 0; I < SibKeys; ++I)
    M.storeWord(Sibling, PW_Keys + I,
                M.loadWord(Child, PW_Keys + Mid + 1 + I));
  if (Leaf) {
    M.loadRef(Child, RS_Rows, CArr);
    M.loadRef(Sibling, RS_Rows, SArr);
    for (uint32_t I = 0; I < SibKeys; ++I) {
      M.loadElem(CArr, Mid + 1 + I, Tmp);
      M.storeElem(SArr, I, Tmp);
      M.storeElemNull(CArr, Mid + 1 + I);
    }
  } else {
    M.loadRef(Child, RS_Children, CArr);
    M.loadRef(Sibling, RS_Children, SArr);
    for (uint32_t I = 0; I <= SibKeys; ++I) {
      M.loadElem(CArr, Mid + 1 + I, Tmp);
      M.storeElem(SArr, I, Tmp);
      M.storeElemNull(CArr, Mid + 1 + I);
    }
  }
  M.storeWord(Sibling, PW_Count, SibKeys);

  int64_t MedianKey;
  if (Leaf) {
    // Leaf split: the median row stays in the left leaf; the separator
    // key is the first key of the sibling (B+-tree style).
    M.storeWord(Child, PW_Count, Mid + 1);
    MedianKey = M.loadWord(Sibling, PW_Keys + 0);
  } else {
    M.storeWord(Child, PW_Count, Mid);
    MedianKey = M.loadWord(Child, PW_Keys + Mid);
  }

  // Insert sibling into the parent at ChildIdx+1.
  uint32_t PCount = static_cast<uint32_t>(M.loadWord(Parent, PW_Count));
  assert(PCount < MaxKeys && "splitting into a full parent");
  for (uint32_t I = PCount; I > ChildIdx; --I) {
    M.storeWord(Parent, PW_Keys + I, M.loadWord(Parent, PW_Keys + I - 1));
    M.loadElem(PChildren, I, Tmp);
    M.storeElem(PChildren, I + 1, Tmp);
  }
  M.storeWord(Parent, PW_Keys + ChildIdx, MedianKey);
  M.storeElem(PChildren, ChildIdx + 1, Sibling);
  M.storeWord(Parent, PW_Count, PCount + 1);
}

void MiniDb::insert(int64_t Key, int64_t Value) {
  Root Node(M), Child(M), Children(M), Rows(M), Row(M), Tmp(M);

  // Preemptive root split keeps the descent single-pass.
  if (M.loadWord(RootNode, PW_Count) == MaxKeys) {
    Root OldRoot(M);
    M.copyRoot(RootNode, OldRoot);
    newNode(RootNode, /*Leaf=*/false);
    M.loadRef(RootNode, RS_Children, Children);
    M.storeElem(Children, 0, OldRoot);
    splitChild(RootNode, 0);
  }

  M.copyRoot(RootNode, Node);
  for (;;) {
    if (M.loadWord(Node, PW_Leaf)) {
      uint32_t I = lowerBound(Node, Key);
      uint32_t N = static_cast<uint32_t>(M.loadWord(Node, PW_Count));
      M.loadRef(Node, RS_Rows, Rows);
      if (I < N && M.loadWord(Node, PW_Keys + I) == Key) {
        // Replace the row version; the old one becomes garbage.
        newRow(Row, Key, Value);
        M.storeElem(Rows, I, Row);
        return;
      }
      for (uint32_t J = N; J > I; --J) {
        M.storeWord(Node, PW_Keys + J, M.loadWord(Node, PW_Keys + J - 1));
        M.loadElem(Rows, J - 1, Tmp);
        M.storeElem(Rows, J, Tmp);
      }
      newRow(Row, Key, Value);
      M.storeWord(Node, PW_Keys + I, Key);
      M.storeElem(Rows, I, Row);
      M.storeWord(Node, PW_Count, N + 1);
      ++Count;
      return;
    }

    uint32_t I = lowerBound(Node, Key);
    // Descend right of an equal separator (B+-tree separators duplicate
    // leaf keys).
    uint32_t N = static_cast<uint32_t>(M.loadWord(Node, PW_Count));
    if (I < N && M.loadWord(Node, PW_Keys + I) == Key)
      ++I;
    M.loadRef(Node, RS_Children, Children);
    M.loadElem(Children, I, Child);
    if (M.loadWord(Child, PW_Count) == MaxKeys) {
      splitChild(Node, I);
      // Re-evaluate which side the key belongs to.
      if (M.loadWord(Node, PW_Keys + I) <= Key)
        ++I;
      M.loadRef(Node, RS_Children, Children);
      M.loadElem(Children, I, Child);
    }
    M.copyRoot(Child, Node);
  }
}

bool MiniDb::lookup(int64_t Key, int64_t &ValueOut) {
  Root Node(M), Children(M), Rows(M), Row(M);
  M.copyRoot(RootNode, Node);
  for (;;) {
    uint32_t I = lowerBound(Node, Key);
    uint32_t N = static_cast<uint32_t>(M.loadWord(Node, PW_Count));
    if (M.loadWord(Node, PW_Leaf)) {
      if (I < N && M.loadWord(Node, PW_Keys + I) == Key) {
        M.loadRef(Node, RS_Rows, Rows);
        M.loadElem(Rows, I, Row);
        ValueOut = M.loadWord(Row, 1);
        return true;
      }
      return false;
    }
    if (I < N && M.loadWord(Node, PW_Keys + I) == Key)
      ++I;
    M.loadRef(Node, RS_Children, Children);
    M.loadElem(Children, I, Node);
  }
}

bool MiniDb::ceiling(int64_t FromKey, int64_t &KeyOut, int64_t &ValueOut) {
  Root Node(M), Children(M), Rows(M), Row(M);
  // At most two descents: if the leaf reached by FromKey's range has no
  // key >= FromKey, the successor is the smallest separator >= FromKey
  // seen on the way down — and B+-tree separators always duplicate an
  // existing leaf key, so the second descent cannot miss.
  for (int Attempt = 0; Attempt < 2; ++Attempt) {
    M.copyRoot(RootNode, Node);
    bool HaveNext = false;
    int64_t NextSep = 0;
    for (;;) {
      uint32_t I = lowerBound(Node, FromKey);
      uint32_t N = static_cast<uint32_t>(M.loadWord(Node, PW_Count));
      if (M.loadWord(Node, PW_Leaf)) {
        if (I < N) {
          KeyOut = M.loadWord(Node, PW_Keys + I);
          M.loadRef(Node, RS_Rows, Rows);
          M.loadElem(Rows, I, Row);
          ValueOut = M.loadWord(Row, 1);
          return true;
        }
        break; // miss in this subtree
      }
      if (I < N) {
        int64_t Sep = M.loadWord(Node, PW_Keys + I);
        if (!HaveNext || Sep < NextSep) {
          HaveNext = true;
          NextSep = Sep;
        }
        if (Sep == FromKey)
          ++I; // equal separator: the key lives in the right subtree
      }
      M.loadRef(Node, RS_Children, Children);
      M.loadElem(Children, I, Node);
    }
    if (!HaveNext)
      return false; // no key >= FromKey anywhere
    FromKey = NextSep;
  }
  fatalError("B+-tree ceiling retry missed a duplicated separator");
}

uint64_t MiniDb::scan(int64_t FromKey, unsigned MaxRows) {
  uint64_t Sum = 0;
  int64_t Key = FromKey;
  for (unsigned I = 0; I < MaxRows; ++I) {
    int64_t K, V;
    if (!ceiling(Key, K, V))
      break;
    Sum += static_cast<uint64_t>(V);
    Key = K + 1;
  }
  return Sum;
}

unsigned MiniDb::height() {
  Root Node(M), Children(M);
  M.copyRoot(RootNode, Node);
  unsigned H = 1;
  while (!M.loadWord(Node, PW_Leaf)) {
    M.loadRef(Node, RS_Children, Children);
    M.loadElem(Children, 0, Node);
    ++H;
  }
  return H;
}

MiniDbResult hcsgc::runMiniDb(Mutator &M, const MiniDbParams &P) {
  MiniDbResult Res;
  MiniDb Db(M);
  SplitMix64 Rng(P.Seed);
  // Per-query result materialization, as a JDBC layer would do: these
  // short-lived records are what keeps the collector busy in h2.
  ClassId ResultCls =
      M.runtime().registerClass("minidb.ResultRecord", 0, 48);
  Root ResultRec(M);

  // Load phase: keys inserted in shuffled order.
  std::vector<int64_t> Keys(P.Rows);
  std::iota(Keys.begin(), Keys.end(), 0);
  shuffle(Keys, Rng);
  for (int64_t K : Keys)
    Db.insert(K * 10, K * 7 + 1);

  // Query mix.
  for (unsigned Op = 0; Op < P.Ops; ++Op) {
    uint64_t Dice = Rng.nextBelow(100);
    int64_t K = static_cast<int64_t>(Rng.nextBelow(P.Rows)) * 10;
    if (Dice < P.PointPct) {
      int64_t V;
      if (Db.lookup(K, V)) {
        Res.QueryChecksum += static_cast<uint64_t>(V);
        M.allocate(ResultRec, ResultCls);
        M.storeWord(ResultRec, 0, V);
      }
    } else if (Dice < P.PointPct + P.ScanPct) {
      Res.QueryChecksum += Db.scan(K, P.ScanLen);
      // One result record per handful of scanned rows.
      for (unsigned R = 0; R < P.ScanLen / 8 + 1; ++R)
        M.allocate(ResultRec, ResultCls);
    } else {
      Db.insert(K, static_cast<int64_t>(Op)); // row-version churn
    }
    M.simulateWork(P.ComputeCyclesPerOp);
    ++Res.OpsDone;
  }
  Res.RowCount = Db.size();
  return Res;
}
