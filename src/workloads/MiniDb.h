//===- workloads/MiniDb.h - h2-like in-memory database ---------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stand-in for DaCapo's h2 (§4.6): an in-memory database whose B-tree
/// index nodes are long-lived and hot, while row versions churn (updates
/// replace row objects, MVCC-style). This is the regime where the paper
/// observes 5-9% HCSGC improvements: a stable set of long-lived objects
/// accessed in an order unrelated to their allocation order.
///
/// The B-tree itself is a complete managed-heap data structure: node key
/// arrays are payload words, child/row pointers are managed reference
/// arrays, and every access runs through the load barrier.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_WORKLOADS_MINIDB_H
#define HCSGC_WORKLOADS_MINIDB_H

#include "runtime/Runtime.h"

namespace hcsgc {

/// A single-table database with an int64 primary key, backed by a
/// managed B-tree. One instance per mutator; roots are scoped LIFO.
class MiniDb {
public:
  /// Maximum keys per node (must be odd, >= 3).
  static constexpr uint32_t MaxKeys = 15;

  explicit MiniDb(Mutator &M);

  /// Inserts or replaces the row for \p Key with payload \p Value. A
  /// replaced row object becomes garbage (version churn).
  void insert(int64_t Key, int64_t Value);

  /// Point query.
  /// \returns true and sets \p ValueOut if \p Key exists.
  bool lookup(int64_t Key, int64_t &ValueOut);

  /// Scans up to \p MaxRows rows with keys >= \p FromKey.
  /// \returns the sum of their values.
  uint64_t scan(int64_t FromKey, unsigned MaxRows);

  /// Number of rows stored.
  uint64_t size() const { return Count; }

  /// Tree height (root = 1); exposed for tests.
  unsigned height();

private:
  // Node payload: word0 = key count, word1 = isLeaf, word2.. = keys.
  // ref0 = children array (internal), ref1 = rows array (leaf).
  static constexpr uint32_t PW_Count = 0;
  static constexpr uint32_t PW_Leaf = 1;
  static constexpr uint32_t PW_Keys = 2;
  static constexpr uint32_t RS_Children = 0;
  static constexpr uint32_t RS_Rows = 1;

  void newNode(Root &Out, bool Leaf);
  void newRow(Root &Out, int64_t Key, int64_t Value);
  /// Splits full child \p ChildIdx of \p Parent (which must have room).
  void splitChild(Root &Parent, uint32_t ChildIdx);
  /// \returns index of first key >= Key in \p Node (linear scan).
  uint32_t lowerBound(Root &Node, int64_t Key);
  /// Finds the row with the smallest key >= \p FromKey.
  /// \returns false if none. Sets \p KeyOut / \p ValueOut.
  bool ceiling(int64_t FromKey, int64_t &KeyOut, int64_t &ValueOut);

  Mutator &M;
  ClassId NodeCls, RowCls;
  Root RootNode;
  uint64_t Count = 0;
};

/// Benchmark parameters for the h2-like query mix.
struct MiniDbParams {
  unsigned Rows = 40 * 1000;
  unsigned Ops = 50 * 1000;
  unsigned PointPct = 70;
  unsigned ScanPct = 20; ///< Remainder are updates (churn).
  unsigned ScanLen = 40;
  uint64_t Seed = 0xdb;
  uint64_t ComputeCyclesPerOp = 80;
};

/// Result of the benchmark run.
struct MiniDbResult {
  uint64_t QueryChecksum = 0;
  uint64_t OpsDone = 0;
  uint64_t RowCount = 0;
};

/// Loads \p P.Rows rows (shuffled key order) then runs the query mix.
MiniDbResult runMiniDb(Mutator &M, const MiniDbParams &P);

} // namespace hcsgc

#endif // HCSGC_WORKLOADS_MINIDB_H
