//===- workloads/Synthetic.cpp - The paper's synthetic benchmark -------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Synthetic.h"

#include "support/Random.h"

using namespace hcsgc;

// One element: 8-byte header + 24 bytes payload = the paper's "32-byte
// object (including VM metadata)".
static ClassId elementClass(Runtime &RT) {
  return RT.registerClass("synthetic.Element", 0, 24);
}

SyntheticResult hcsgc::runSynthetic(Mutator &M, const SyntheticParams &P) {
  Runtime &RT = M.runtime();
  ClassId Elem = elementClass(RT);
  ClassId GarbageCls = RT.registerClass(
      "synthetic.Garbage", 0,
      static_cast<uint32_t>(P.GarbagePayloadBytes));
  SyntheticResult Res;

  Root Arr(M), Cold(M), Tmp(M), Garbage(M);

  // Populate the array; each slot points to a fresh 32-byte object whose
  // payload is its index.
  M.allocateRefArray(Arr, static_cast<uint32_t>(P.ArraySize));
  for (size_t I = 0; I < P.ArraySize; ++I) {
    M.allocate(Tmp, Elem);
    M.storeWord(Tmp, 0, static_cast<int64_t>(I));
    M.storeElem(Arr, static_cast<uint32_t>(I), Tmp);
  }

  // Fig. 6 variant: a large cold array created up front, never accessed
  // again ("hot-cold ratio is 1:10").
  if (P.ColdArraySize) {
    M.allocateRefArray(Cold, static_cast<uint32_t>(P.ColdArraySize));
    for (size_t I = 0; I < P.ColdArraySize; ++I) {
      M.allocate(Tmp, Elem);
      M.storeWord(Tmp, 0, static_cast<int64_t>(I));
      M.storeElem(Cold, static_cast<uint32_t>(I), Tmp);
    }
  }

  SplitMix64 Rng(0);
  uint64_t Ops = 0;
  for (unsigned Phase = 0; Phase < P.Phases; ++Phase) {
    for (unsigned Outer = 0; Outer < P.OuterIters; ++Outer) {
      // "use same seed each loop" — within a phase the access sequence
      // repeats exactly; each phase has its own seed (Fig. 5).
      Rng.seed(Phase);
      for (size_t J = 0; J < P.InnerIters; ++J) {
        uint32_t Idx =
            static_cast<uint32_t>(Rng.nextBelow(P.ArraySize));
        M.loadElem(Arr, Idx, Tmp);
        Res.Checksum += static_cast<uint64_t>(M.loadWord(Tmp, 0));
        M.simulateWork(P.ComputeCyclesPerOp);
        ++Ops;
        if (P.GarbageEvery && Ops % P.GarbageEvery == 0) {
          M.allocate(Garbage, GarbageCls);
          M.storeWord(Garbage, 0, static_cast<int64_t>(Ops));
        }
      }
    }
  }
  Res.Ops = Ops;
  return Res;
}

uint64_t hcsgc::expectedSyntheticChecksum(const SyntheticParams &P) {
  SplitMix64 Rng(0);
  uint64_t Sum = 0;
  for (unsigned Phase = 0; Phase < P.Phases; ++Phase)
    for (unsigned Outer = 0; Outer < P.OuterIters; ++Outer) {
      Rng.seed(Phase);
      for (size_t J = 0; J < P.InnerIters; ++J)
        Sum += Rng.nextBelow(P.ArraySize);
    }
  return Sum;
}
