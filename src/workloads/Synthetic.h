//===- workloads/Synthetic.h - The paper's synthetic benchmark -*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synthetic micro-benchmark of §4.4: an array of N elements, each
/// pointing to a 32-byte object (header included). The inner loop accesses
/// elements in a random-but-repeating order (same PRNG seed each outer
/// iteration); every 10th operation allocates garbage so GC cycles
/// trigger. Variants: multiple phases with distinct seeds (Fig. 5) and a
/// 10x never-accessed cold array (Fig. 6).
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_WORKLOADS_SYNTHETIC_H
#define HCSGC_WORKLOADS_SYNTHETIC_H

#include "runtime/Runtime.h"

#include <cstdint>

namespace hcsgc {

/// Parameters of the synthetic benchmark. Defaults are a scaled-down
/// version of the paper's setup (2e6 elements, 800k inner, 200 outer);
/// the bench binaries expose flags to restore paper scale.
struct SyntheticParams {
  size_t ArraySize = 200 * 1000;
  size_t InnerIters = 80 * 1000;
  unsigned OuterIters = 20;
  unsigned Phases = 1;        ///< Fig. 5 uses 3.
  size_t ColdArraySize = 0;   ///< Fig. 6 uses 10 * ArraySize.
  unsigned GarbageEvery = 10; ///< "if (ops % 10 == 0) allocate garbage".
  /// Size of each garbage object (the paper leaves this unspecified;
  /// larger garbage raises the GC-cycle rate for a given heap).
  size_t GarbagePayloadBytes = 248;
  /// Modeled non-memory work per element access (instruction execution,
  /// loop overhead); calibrates the memory-boundedness of the benchmark.
  uint64_t ComputeCyclesPerOp = 40;
};

/// Result of one synthetic run.
struct SyntheticResult {
  uint64_t Checksum = 0; ///< Sum of all payloads read (validates moves).
  uint64_t Ops = 0;
};

/// Runs the benchmark on an already-attached mutator.
SyntheticResult runSynthetic(Mutator &M, const SyntheticParams &P);

/// \returns the checksum runSynthetic must produce for \p P (model
/// computed without a heap, used by tests).
uint64_t expectedSyntheticChecksum(const SyntheticParams &P);

} // namespace hcsgc

#endif // HCSGC_WORKLOADS_SYNTHETIC_H
