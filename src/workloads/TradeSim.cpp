//===- workloads/TradeSim.cpp - tradebeans-like workload ---------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/TradeSim.h"

#include "support/Random.h"

using namespace hcsgc;

// Account: ref0 = holdings array (one slot per instrument, Position
// objects allocated lazily), word0 = balance, word1 = trade count.
// Order (short-lived): ref0 = account, ref1 = instrument, words: price,
// quantity, side.

TradeSimResult hcsgc::runTradeSim(Mutator &M, const TradeSimParams &P) {
  Runtime &RT = M.runtime();
  ClassId AccountCls = RT.registerClass("trade.Account", 1, 16);
  ClassId InstrumentCls = RT.registerClass("trade.Instrument", 0, 16);
  ClassId PositionCls = RT.registerClass("trade.Position", 0, 16);
  ClassId OrderCls = RT.registerClass("trade.Order", 2, 24);

  TradeSimResult Res;
  SplitMix64 Rng(P.Seed);

  Root Accounts(M), Instruments(M), Acc(M), Inst(M), Order(M), Pos(M),
      Holdings(M), Tmp(M);

  // Long-lived core.
  M.allocateRefArray(Accounts, P.Accounts);
  for (unsigned I = 0; I < P.Accounts; ++I) {
    M.allocate(Acc, AccountCls);
    M.storeWord(Acc, 0, 10000); // balance
    M.allocateRefArray(Holdings, P.Instruments);
    M.storeRef(Acc, 0, Holdings);
    M.storeElem(Accounts, I, Acc);
  }
  M.allocateRefArray(Instruments, P.Instruments);
  for (unsigned I = 0; I < P.Instruments; ++I) {
    M.allocate(Inst, InstrumentCls);
    M.storeWord(Inst, 0, 100 + static_cast<int64_t>(I)); // price
    M.storeElem(Instruments, I, Inst);
  }

  // Transactions: a burst of short-lived Order objects, a touch of the
  // hot account/instrument core, and occasional Position creation.
  for (unsigned T = 0; T < P.Transactions; ++T) {
    // Zipf-ish skew: a few accounts are hot.
    uint64_t A = Rng.nextBelow(P.Accounts);
    if (Rng.nextBelow(4) != 0)
      A = Rng.nextBelow(1 + P.Accounts / 16);
    uint64_t I = Rng.nextBelow(P.Instruments);

    M.loadElem(Accounts, static_cast<uint32_t>(A), Acc);
    M.loadElem(Instruments, static_cast<uint32_t>(I), Inst);

    for (unsigned K = 0; K < P.OrdersPerTxn; ++K) {
      M.allocate(Order, OrderCls); // dies at loop end
      M.storeRef(Order, 0, Acc);
      M.storeRef(Order, 1, Inst);
      M.storeWord(Order, 0, M.loadWord(Inst, 0));
      M.storeWord(Order, 1, static_cast<int64_t>(Rng.nextBelow(100)));
      M.storeWord(Order, 2, static_cast<int64_t>(K & 1));
    }

    // Execute: update balance and (sometimes) the position object.
    int64_t Price = M.loadWord(Inst, 0);
    int64_t Qty = 1 + static_cast<int64_t>(Rng.nextBelow(8));
    M.storeWord(Acc, 0, M.loadWord(Acc, 0) + (T & 1 ? Qty : -Qty));
    M.storeWord(Acc, 1, M.loadWord(Acc, 1) + 1);
    M.storeWord(Inst, 0, Price + (Price < 50 ? 1 : (T % 7 == 0 ? -1 : 0)));

    M.loadRef(Acc, 0, Holdings);
    M.loadElem(Holdings, static_cast<uint32_t>(I), Pos);
    if (Pos.isNull()) {
      M.allocate(Pos, PositionCls);
      M.storeElem(Holdings, static_cast<uint32_t>(I), Pos);
    }
    M.storeWord(Pos, 0, M.loadWord(Pos, 0) + Qty);
    ++Res.TradesExecuted;
    M.simulateWork(P.ComputeCyclesPerTxn);
  }

  // Checksum all balances (validates integrity across relocation).
  for (unsigned I = 0; I < P.Accounts; ++I) {
    M.loadElem(Accounts, I, Acc);
    Res.BalanceChecksum +=
        static_cast<uint64_t>(M.loadWord(Acc, 0) + M.loadWord(Acc, 1));
  }
  return Res;
}
