//===- workloads/TradeSim.h - tradebeans-like workload ---------*- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stand-in for DaCapo's tradebeans (§4.6): a trading/session workload
/// dominated by very short-lived objects (orders, quotes, session
/// records) over a modest long-lived core (accounts, instruments). The
/// paper's finding — "HCSGC does not improve performance much, which we
/// attribute to the fact that so many objects are very short lived" — is
/// exactly what this shape produces: locality for objects that die before
/// surviving a single GC cycle can only come from allocation order, not
/// relocation.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_WORKLOADS_TRADESIM_H
#define HCSGC_WORKLOADS_TRADESIM_H

#include "runtime/Runtime.h"

namespace hcsgc {

/// Parameters of the trading simulation.
struct TradeSimParams {
  unsigned Accounts = 2000;
  unsigned Instruments = 200;
  unsigned Transactions = 60 * 1000;
  /// Short-lived objects allocated per transaction.
  unsigned OrdersPerTxn = 6;
  uint64_t Seed = 0xbea75;
  uint64_t ComputeCyclesPerTxn = 120;
};

/// Result (checksummed balances validate object integrity across GC).
struct TradeSimResult {
  uint64_t BalanceChecksum = 0;
  uint64_t TradesExecuted = 0;
};

/// Runs the trading simulation on an attached mutator.
TradeSimResult runTradeSim(Mutator &M, const TradeSimParams &P);

} // namespace hcsgc

#endif // HCSGC_WORKLOADS_TRADESIM_H
