//===- tests/TestSeeds.h - One root seed for all stochastic tests *- C++ -*-===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every stochastic test derives its RNG seed from the single constant
/// below, so the whole suite's randomness is reproducible and auditable
/// from one place. Tests call testSeed(Salt) with a test-unique salt
/// (decorrelated streams), or testSeed(Salt + Param) for parameterized
/// cases. To shake the suite against a different universe of random
/// inputs, change RootSeed here — nothing else.
///
//===----------------------------------------------------------------------===//

#ifndef HCSGC_TESTS_TESTSEEDS_H
#define HCSGC_TESTS_TESTSEEDS_H

#include <cstdint>

namespace hcsgc::test {

/// The root of all test randomness. Arbitrary but fixed; documented in
/// docs/INTERNALS.md ("Deterministic test seeds").
inline constexpr uint64_t RootSeed = 0xC0FFEE5EEDull;

/// Derives a decorrelated per-test seed from RootSeed and a test-unique
/// \p Salt (SplitMix64 finalizer, so nearby salts give unrelated seeds).
inline constexpr uint64_t testSeed(uint64_t Salt) {
  uint64_t Z = RootSeed + 0x9E3779B97F4A7C15ull * (Salt + 1);
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

} // namespace hcsgc::test

#endif // HCSGC_TESTS_TESTSEEDS_H
