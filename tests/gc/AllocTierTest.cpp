//===- tests/gc/AllocTierTest.cpp - fast/mid/slow allocation tiers -------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end contract of the tiered allocation stack (INTERNALS §10),
/// checked through the allocator metrics:
///
///  - a small TLAB refill takes ZERO shard locks on the common path (the
///    ISSUE's headline acceptance criterion): the cached-unit pop,
///    registry insert and page-table install are all lock-free, so
///    alloc.shard.lock_acquisitions == alloc.cache.page_misses (the rare
///    batch carve), far below alloc.tlab.refills, with zero fallback
///    scans;
///  - medium allocation bumps the per-thread medium TLAB without
///    touching any allocator lock between refills;
///  - STW1's resetAllocTargets drops the medium TLAB like the small
///    one, so the first post-cycle medium allocation refills;
///  - medium-object exhaustion still surfaces as the typed
///    AllocStatus::HeapExhausted, not an abort.
///
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

#include "TestSeeds.h"
#include <gtest/gtest.h>

using namespace hcsgc;

namespace {

// Roomy heap + TriggerFraction 1.0: no cycle ever starts on its own, so
// every page allocation below is attributable to the mutator's tiers and
// the metric equalities are exact.
GcConfig quietConfig() {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 512 * 1024;
  Cfg.MaxHeapBytes = 16u << 20;
  Cfg.TriggerFraction = 1.0;
  Cfg.AllocatorShards = 4;
  return Cfg;
}

uint64_t metric(Runtime &RT, const char *Name) {
  return RT.metrics().counterValue(Name);
}

} // namespace

TEST(AllocTierTest, SmallRefillTakesZeroShardLocks) {
  GcConfig Cfg = quietConfig();
  // A batch covering every refill below: after the single carve, each
  // refill pops the cache with no lock anywhere on the path.
  Cfg.PageCacheBatch = 64;
  Runtime RT(Cfg);
  // ~2 KiB objects: well under smallObjectMax (8 KiB), ~32 per 64 KiB
  // TLAB, so 200 allocations force several refills.
  ClassId Cls = RT.registerClass("tier.Small", 0, 2048 - 64);
  auto M = RT.attachMutator();
  {
    Root Tmp(*M);
    for (unsigned I = 0; I < 200; ++I)
      M->allocate(Tmp, Cls);
  }

  uint64_t Refills = metric(RT, "alloc.tlab.refills");
  EXPECT_GE(Refills, 6u);
  // The contention contract: refills are lock-free. The only shard-lock
  // acquisition in the whole run is the single cache-miss batch carve —
  // every subsequent refill is a lock-free cache pop.
  EXPECT_EQ(metric(RT, "alloc.cache.page_misses"), 1u);
  EXPECT_EQ(metric(RT, "alloc.shard.lock_acquisitions"),
            metric(RT, "alloc.cache.page_misses"));
  EXPECT_EQ(metric(RT, "alloc.cache.page_hits"), Refills - 1);
  EXPECT_EQ(metric(RT, "alloc.shard.fallback_scans"), 0u);
  EXPECT_EQ(metric(RT, "alloc.shard.cross_shard_takes"), 0u);
  M.reset();
}

TEST(AllocTierTest, MediumTlabBumpsWithoutLocks) {
  GcConfig Cfg = quietConfig();
  Runtime RT(Cfg);
  // 16 KiB payload: above smallObjectMax (8 KiB), below mediumObjectMax
  // (64 KiB) — a medium-class object. A 512 KiB medium TLAB holds many.
  ClassId Cls = RT.registerClass("tier.Medium", 0, 16 * 1024);
  auto M = RT.attachMutator();
  {
    Root Tmp(*M);
    M->allocate(Tmp, Cls);
    EXPECT_EQ(metric(RT, "alloc.tlab.medium_refills"), 1u);

    // Subsequent medium allocations bump the per-thread TLAB: no new
    // refill and — the point of the refactor — no allocator lock at all.
    uint64_t LocksAfterRefill = metric(RT, "alloc.shard.lock_acquisitions");
    for (unsigned I = 0; I < 8; ++I)
      M->allocate(Tmp, Cls);
    EXPECT_EQ(metric(RT, "alloc.tlab.medium_refills"), 1u);
    EXPECT_EQ(metric(RT, "alloc.shard.lock_acquisitions"), LocksAfterRefill);
  }
  M.reset();
}

TEST(AllocTierTest, MediumTlabIsDroppedAtStw1) {
  GcConfig Cfg = quietConfig();
  Runtime RT(Cfg);
  ClassId Cls = RT.registerClass("tier.Medium", 0, 16 * 1024);
  auto M = RT.attachMutator();
  {
    Root Keep(*M);
    M->allocate(Keep, Cls);
    ASSERT_EQ(metric(RT, "alloc.tlab.medium_refills"), 1u);

    // STW1 resets every allocation target, medium TLAB included (its pin
    // is released so the page becomes an ordinary EC candidate).
    M->requestGcAndWait();
    Root Tmp(*M);
    M->allocate(Tmp, Cls);
    EXPECT_EQ(metric(RT, "alloc.tlab.medium_refills"), 2u);

    VerifyResult V = RT.verifyHeap();
    EXPECT_TRUE(V.ok()) << (V.Errors.empty() ? "" : V.Errors.front());
  }
  M.reset();
}

TEST(AllocTierTest, MediumExhaustionStaysTyped) {
  GcConfig Cfg = quietConfig();
  Cfg.MaxHeapBytes = 2u << 20; // 4 medium pages
  Runtime RT(Cfg);
  ClassId Cls = RT.registerClass("tier.Medium", 0, 60 * 1024);
  auto M = RT.attachMutator();
  {
    const uint32_t Slots = 256;
    Root Arr(*M);
    M->allocateRefArray(Arr, Slots);
    Root Tmp(*M);
    uint32_t Next = 0;
    AllocStatus St = AllocStatus::Ok;
    while (Next < Slots) {
      St = M->tryAllocate(Tmp, Cls);
      if (St != AllocStatus::Ok)
        break;
      M->storeElem(Arr, Next++, Tmp);
    }
    ASSERT_EQ(St, AllocStatus::HeapExhausted);
    EXPECT_TRUE(Tmp.isNull());

    // Dropping the array frees the heap; medium allocation recovers.
    M->clearRoot(Tmp);
    M->clearRoot(Arr);
    M->requestGcAndWait();
    EXPECT_EQ(M->tryAllocate(Tmp, Cls), AllocStatus::Ok);
  }
  M.reset();
}
