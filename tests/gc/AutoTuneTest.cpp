//===- tests/gc/AutoTuneTest.cpp -----------------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Tests the §4.8 future-work feature implemented as an optional knob: a
// feedback loop that auto-tunes COLDCONFIDENCE from the observed
// hot/live ratio.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

#include <gtest/gtest.h>

using namespace hcsgc;

namespace {

GcConfig tuneConfig() {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 1024 * 1024;
  Cfg.MaxHeapBytes = 32u << 20;
  Cfg.Hotness = true;
  Cfg.AutoTuneColdConfidence = true;
  Cfg.ColdConfidence = 0.5; // starting point
  return Cfg;
}

} // namespace

TEST(AutoTuneTest, RequiresHotness) {
  GcConfig Cfg;
  Cfg.AutoTuneColdConfidence = true;
  EXPECT_FALSE(Cfg.knobsValid());
  Cfg.Hotness = true;
  EXPECT_TRUE(Cfg.knobsValid());
}

TEST(AutoTuneTest, ColdHeavyHeapRaisesConfidence) {
  Runtime RT(tuneConfig());
  ClassId Cls = RT.registerClass("a.Obj", 0, 24);
  auto M = RT.attachMutator();
  {
    Root Arr(*M), Tmp(*M);
    const uint32_t N = 20000;
    M->allocateRefArray(Arr, N);
    for (uint32_t I = 0; I < N; ++I) {
      M->allocate(Tmp, Cls);
      M->storeElem(Arr, I, Tmp);
    }
    M->requestGcAndWait(); // first cycle: build accesses look hot
    // From now on touch almost nothing: the live set is cold-heavy and
    // the tuner should push confidence toward 1.
    for (int Round = 0; Round < 4; ++Round) {
      M->loadElem(Arr, 0, Tmp); // one token access
      M->requestGcAndWait();
    }
    EXPECT_GT(RT.heap().effectiveColdConfidence(), 0.8);
  }
  M.reset();
}

TEST(AutoTuneTest, HotDenseHeapLowersConfidence) {
  Runtime RT(tuneConfig());
  ClassId Cls = RT.registerClass("a.Hot", 0, 24);
  auto M = RT.attachMutator();
  {
    Root Arr(*M), Tmp(*M);
    const uint32_t N = 8000;
    M->allocateRefArray(Arr, N);
    for (uint32_t I = 0; I < N; ++I) {
      M->allocate(Tmp, Cls);
      M->storeElem(Arr, I, Tmp);
    }
    // Touch everything between every pair of cycles: hot ratio ~1.
    for (int Round = 0; Round < 4; ++Round) {
      for (uint32_t I = 0; I < N; ++I)
        M->loadElem(Arr, I, Tmp);
      M->requestGcAndWait();
    }
    EXPECT_LT(RT.heap().effectiveColdConfidence(), 0.3);
  }
  M.reset();
}

TEST(AutoTuneTest, DisabledKeepsConfiguredValue) {
  GcConfig Cfg = tuneConfig();
  Cfg.AutoTuneColdConfidence = false;
  Runtime RT(Cfg);
  ClassId Cls = RT.registerClass("a.Fix", 0, 24);
  auto M = RT.attachMutator();
  {
    Root Tmp(*M);
    for (int I = 0; I < 5000; ++I)
      M->allocate(Tmp, Cls);
    M->requestGcAndWait();
    M->requestGcAndWait();
    EXPECT_DOUBLE_EQ(RT.heap().effectiveColdConfidence(), 0.5);
  }
  M.reset();
}

TEST(AutoTuneTest, StaysInRange) {
  Runtime RT(tuneConfig());
  ClassId Cls = RT.registerClass("a.R", 0, 24);
  auto M = RT.attachMutator();
  {
    Root Tmp(*M);
    for (int Round = 0; Round < 6; ++Round) {
      for (int I = 0; I < 4000; ++I)
        M->allocate(Tmp, Cls);
      M->requestGcAndWait();
      double C = RT.heap().effectiveColdConfidence();
      EXPECT_GE(C, 0.0);
      EXPECT_LE(C, 1.0);
    }
  }
  M.reset();
}
