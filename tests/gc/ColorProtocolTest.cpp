//===- tests/gc/ColorProtocolTest.cpp ------------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Spec-level tests of the colored-pointer protocol (Fig. 2): which color
// is good in which window, root healing at the pauses, and self-healing
// on loads. Observed through Root::rawOop (test-only introspection).
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

#include <gtest/gtest.h>

using namespace hcsgc;

namespace {

GcConfig cpConfig() {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 1024 * 1024;
  Cfg.MaxHeapBytes = 16u << 20;
  return Cfg;
}

} // namespace

TEST(ColorProtocolTest, AllocationsAreGoodColored) {
  Runtime RT(cpConfig());
  ClassId Cls = RT.registerClass("p.A", 0, 8);
  auto M = RT.attachMutator();
  {
    Root A(*M);
    // Before the first cycle the good color is R (the initial window
    // behaves like a relocation window with an empty EC).
    M->allocate(A, Cls);
    EXPECT_EQ(oopColor(A.rawOop()), PtrColor::R);
    EXPECT_TRUE(RT.heap().isGood(A.rawOop()));

    // Between cycles the good color is R again (STW3 flipped to R and
    // the cycle completed).
    M->requestGcAndWait();
    M->allocate(A, Cls);
    EXPECT_EQ(oopColor(A.rawOop()), PtrColor::R);
    EXPECT_TRUE(RT.heap().isGood(A.rawOop()));
  }
  M.reset();
}

TEST(ColorProtocolTest, RootsHealedAtPauses) {
  Runtime RT(cpConfig());
  ClassId Cls = RT.registerClass("p.R", 0, 8);
  auto M = RT.attachMutator();
  {
    Root A(*M);
    M->allocate(A, Cls);
    Oop Before = A.rawOop();
    M->requestGcAndWait();
    // STW1 healed the root to the mark color, STW3 re-healed it to R:
    // after the cycle the root is good again without any load by us.
    Oop After = A.rawOop();
    EXPECT_TRUE(RT.heap().isGood(After));
    EXPECT_EQ(oopColor(After), PtrColor::R);
    // The value may have changed (relocation/recoloring) but never to
    // null.
    EXPECT_NE(After, NullOop);
    (void)Before;
  }
  M.reset();
}

TEST(ColorProtocolTest, HeapSlotsSelfHealOnLoad) {
  Runtime RT(cpConfig());
  ClassId Cls = RT.registerClass("p.S", 1, 8);
  auto M = RT.attachMutator();
  {
    Root A(*M), B(*M), Out(*M);
    M->allocate(A, Cls);
    M->allocate(B, Cls);
    M->storeRef(A, 0, B); // slot holds an R-colored value
    // A full cycle flips colors twice; the stored slot's color is now
    // stale, and the next load must return a good-colored value (the
    // self-healing contract).
    M->requestGcAndWait();
    M->loadRef(A, 0, Out);
    EXPECT_TRUE(RT.heap().isGood(Out.rawOop()));
    EXPECT_TRUE(M->refEquals(Out, B));
  }
  M.reset();
}

TEST(ColorProtocolTest, GoodColorAgreesWithHeapState) {
  Runtime RT(cpConfig());
  auto M = RT.attachMutator();
  ClassId Cls = RT.registerClass("p.G", 0, 8);
  {
    Root A(*M);
    for (int Cycle = 0; Cycle < 4; ++Cycle) {
      M->allocate(A, Cls);
      // Whatever the window, a fresh allocation always carries the
      // global good color ("The new operator always returns a pointer
      // with good colour", §2).
      EXPECT_TRUE(RT.heap().isGood(A.rawOop())) << "cycle " << Cycle;
      M->requestGcAndWait();
    }
  }
  M.reset();
}

TEST(ColorProtocolTest, NullSurvivesCyclesAsNull) {
  Runtime RT(cpConfig());
  ClassId Cls = RT.registerClass("p.N", 2, 8);
  auto M = RT.attachMutator();
  {
    Root A(*M), Out(*M);
    M->allocate(A, Cls);
    M->requestGcAndWait();
    M->requestGcAndWait();
    M->loadRef(A, 0, Out);
    EXPECT_TRUE(Out.isNull());
    EXPECT_EQ(Out.rawOop(), NullOop); // null never acquires color bits
  }
  M.reset();
}
