//===- tests/gc/ColoredPtrTest.cpp ---------------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gc/ColoredPtr.h"

#include <gtest/gtest.h>

using namespace hcsgc;

TEST(ColoredPtrTest, EncodeDecodeRoundTrip) {
  uintptr_t Addr = 0x7f1234567890ull & OopAddrMask;
  for (PtrColor C : {PtrColor::M0, PtrColor::M1, PtrColor::R}) {
    Oop V = makeOop(Addr, C);
    EXPECT_EQ(oopAddr(V), Addr);
    EXPECT_EQ(oopColor(V), C);
  }
}

TEST(ColoredPtrTest, NullHasNoColor) {
  EXPECT_EQ(oopAddr(NullOop), 0u);
  EXPECT_EQ(oopColor(NullOop), PtrColor::None);
}

TEST(ColoredPtrTest, ColorsAreDistinctBits) {
  uintptr_t Addr = 0x1000;
  Oop M0 = makeOop(Addr, PtrColor::M0);
  Oop M1 = makeOop(Addr, PtrColor::M1);
  Oop R = makeOop(Addr, PtrColor::R);
  EXPECT_NE(M0, M1);
  EXPECT_NE(M0, R);
  EXPECT_NE(M1, R);
  // Same address under all colors.
  EXPECT_EQ(oopAddr(M0), oopAddr(M1));
  EXPECT_EQ(oopAddr(M1), oopAddr(R));
}

TEST(ColoredPtrTest, MarkColorsAlternate) {
  // Fig. 2: M0 and M1 alternate between cycles.
  EXPECT_EQ(nextMarkColor(PtrColor::M0), PtrColor::M1);
  EXPECT_EQ(nextMarkColor(PtrColor::M1), PtrColor::M0);
  PtrColor C = PtrColor::M1;
  for (int I = 0; I < 10; ++I) {
    PtrColor Next = nextMarkColor(C);
    EXPECT_NE(Next, C);
    EXPECT_NE(Next, PtrColor::R);
    C = Next;
  }
}

TEST(ColoredPtrTest, AddressMaskCoversUserSpace) {
  // 60 address bits are far more than any user-space address needs.
  EXPECT_GE(OopAddrMask, (uintptr_t(1) << 48) - 1);
  EXPECT_EQ(OopAddrMask & OopColorMask, 0u);
}

TEST(ColoredPtrTest, OopSlotIsLockFree) {
  Oop Storage = 0;
  std::atomic<Oop> *Slot =
      oopSlot(reinterpret_cast<uintptr_t>(&Storage));
  Slot->store(makeOop(0x2000, PtrColor::R));
  EXPECT_EQ(oopAddr(Slot->load()), 0x2000u);
  EXPECT_EQ(Storage, makeOop(0x2000, PtrColor::R));
}
