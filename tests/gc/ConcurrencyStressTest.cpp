//===- tests/gc/ConcurrencyStressTest.cpp --------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Multiple mutators hammering allocation, loads and stores while GC
// cycles run back to back — the barrier/relocation/marking race matrix.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"
#include "support/Random.h"

#include "TestSeeds.h"

#include <gtest/gtest.h>

#include <thread>

using namespace hcsgc;

namespace {

GcConfig stressConfig(bool Lazy, bool Hotness) {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 1024 * 1024;
  Cfg.MaxHeapBytes = 8u << 20;
  Cfg.TriggerFraction = 0.4;
  Cfg.GcWorkers = 2;
  Cfg.LazyRelocate = Lazy;
  Cfg.Hotness = Hotness;
  Cfg.ColdPage = Hotness;
  Cfg.ColdConfidence = Hotness ? 1.0 : 0.0;
  Cfg.RelocateAllSmallPages = true;
  Cfg.TriggerHysteresisFraction = 0.01;
  return Cfg;
}

void stressBody(Runtime &RT, ClassId Node, uint64_t Seed,
                std::atomic<bool> &Failed) {
  auto M = RT.attachMutator();
  SplitMix64 Rng(test::testSeed(Seed));
  {
    const uint32_t N = 2000;
    ClassId GarbageCls =
        RT.registerClass("x.Garbage" + std::to_string(Seed), 0, 56);
    Root Table(*M), Tmp(*M), Other(*M), Garbage(*M);
    M->allocateRefArray(Table, N);
    for (uint32_t I = 0; I < N; ++I) {
      M->allocate(Tmp, Node);
      M->storeWord(Tmp, 0, static_cast<int64_t>(Seed * 1000 + I));
      M->storeElem(Table, I, Tmp);
    }
    for (int Op = 0; Op < 60000; ++Op) {
      M->allocate(Garbage, GarbageCls); // churn keeps cycles coming
      uint32_t I = static_cast<uint32_t>(Rng.nextBelow(N));
      switch (Rng.nextBelow(5)) {
      case 0: { // replace with fresh object
        M->allocate(Tmp, Node);
        M->storeWord(Tmp, 0, static_cast<int64_t>(Seed * 1000 + I));
        M->storeElem(Table, I, Tmp);
        break;
      }
      case 1: { // link two elements
        M->loadElem(Table, I, Tmp);
        M->loadElem(Table, static_cast<uint32_t>(Rng.nextBelow(N)),
                    Other);
        M->storeRef(Tmp, 0, Other);
        break;
      }
      default: { // read and validate
        M->loadElem(Table, I, Tmp);
        int64_t V = M->loadWord(Tmp, 0);
        if (V != static_cast<int64_t>(Seed * 1000 + I)) {
          Failed.store(true);
          return;
        }
        M->loadRef(Tmp, 0, Other);
        if (!Other.isNull())
          (void)M->loadWord(Other, 0);
        break;
      }
      }
    }
  }
  M.reset();
}

class ConcurrencyStressTest
    : public ::testing::TestWithParam<std::pair<bool, bool>> {};

} // namespace

TEST_P(ConcurrencyStressTest, MutatorsRaceCollector) {
  auto [Lazy, Hotness] = GetParam();
  Runtime RT(stressConfig(Lazy, Hotness));
  ClassId Node = RT.registerClass("x.Node", 1, 16);
  std::atomic<bool> Failed{false};

  std::vector<std::thread> Threads;
  for (uint64_t T = 0; T < 3; ++T)
    Threads.emplace_back(
        [&RT, Node, T, &Failed] { stressBody(RT, Node, T + 1, Failed); });
  for (auto &T : Threads)
    T.join();
  EXPECT_FALSE(Failed.load()) << "a mutator observed corrupted data";
  RT.driver().shutdown(); // publish any deferred (lazy) cycle record
  EXPECT_GE(RT.gcStats().cycleCount(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ConcurrencyStressTest,
    ::testing::Values(std::make_pair(false, false),
                      std::make_pair(true, false),
                      std::make_pair(false, true),
                      std::make_pair(true, true)),
    [](const ::testing::TestParamInfo<std::pair<bool, bool>> &Info) {
      return std::string(Info.param.first ? "Lazy" : "Eager") +
             (Info.param.second ? "Hot" : "Plain");
    });

namespace {

// Satellite regression for the dead-page fast path: EC selection
// reclaims pages with liveBytes() == 0 outright, and a page some mutator
// is still bump-allocating into is exactly such a page when it was
// handed out after marking finished. The allocation targets are pinned
// (Page::isPinnedAsTarget) and must be skipped; before the pin existed
// this workload's TLABs could be reclaimed (and recycled) under a
// running mutator. Garbage-heavy on purpose: almost every page is fully
// dead at selection, so the fast path runs constantly.
void deadPageChurnBody(Runtime &RT, ClassId Obj, uint64_t Seed,
                       std::atomic<bool> &Failed) {
  auto M = RT.attachMutator();
  SplitMix64 Rng(test::testSeed(Seed));
  {
    const uint32_t Window = 16; // tiny live set; the rest dies instantly
    Root Keep(*M), Tmp(*M);
    M->allocateRefArray(Keep, Window);
    for (int Op = 0; Op < 60000 && !Failed.load(); ++Op) {
      M->allocate(Tmp, Obj);
      int64_t Tag = static_cast<int64_t>((Seed << 32) ^ Op);
      M->storeWord(Tmp, 0, Tag);
      M->storeWord(Tmp, 1, ~Tag);
      if (Rng.nextBelow(8) == 0) {
        // Occasionally keep one and validate another: catches a TLAB
        // that was reclaimed and recycled under this thread.
        M->storeElem(Keep, static_cast<uint32_t>(Rng.nextBelow(Window)),
                     Tmp);
        M->loadElem(Keep, static_cast<uint32_t>(Rng.nextBelow(Window)),
                    Tmp);
        if (!Tmp.isNull() &&
            M->loadWord(Tmp, 1) != ~M->loadWord(Tmp, 0)) {
          Failed.store(true);
          return;
        }
      }
    }
  }
  M.reset();
}

} // namespace

TEST(ConcurrencyStressDeadPageTest, AllocTargetsSurviveDeadPageReclaim) {
  GcConfig Cfg = stressConfig(/*Lazy=*/false, /*Hotness=*/false);
  Cfg.TriggerFraction = 0.2; // cycles as often as possible
  Cfg.TriggerHysteresisFraction = 0.005;
  Runtime RT(Cfg);
  ClassId Obj = RT.registerClass("x.DeadChurn", 0, 48);
  std::atomic<bool> Failed{false};

  std::vector<std::thread> Threads;
  for (uint64_t T = 0; T < 4; ++T)
    Threads.emplace_back([&RT, Obj, T, &Failed] {
      deadPageChurnBody(RT, Obj, T + 0x0DEADull, Failed);
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_FALSE(Failed.load())
      << "an allocation target was reclaimed under a running mutator";

  // No mutator attached here: verifyHeap waits for the driver to go
  // idle, which would deadlock against a pending cycle otherwise.
  VerifyResult V = RT.verifyHeap();
  EXPECT_TRUE(V.ok()) << (V.Errors.empty() ? "" : V.Errors.front());
}
