//===- tests/gc/ConfigSweepTest.cpp --------------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Property-style sweep: under EVERY Table 2 configuration, a randomized
// object graph survives repeated collections with identical contents and
// garbage is reclaimed. This is the collector's core correctness
// invariant, parameterized exactly over the paper's config matrix.
//
//===----------------------------------------------------------------------===//

#include "harness/Config.h"
#include "runtime/Runtime.h"
#include "support/Random.h"

#include "TestSeeds.h"

#include <gtest/gtest.h>

using namespace hcsgc;

namespace {

class ConfigSweepTest : public ::testing::TestWithParam<int> {};

GcConfig sweepConfig(int Id) {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 1024 * 1024;
  Cfg.MaxHeapBytes = 24u << 20;
  Cfg.GcWorkers = 2;
  Cfg.EvacBudgetPages = 8;
  return applyKnobs(Cfg, table2Config(Id));
}

} // namespace

TEST_P(ConfigSweepTest, RandomGraphSurvivesCollection) {
  Runtime RT(sweepConfig(GetParam()));
  ClassId Node = RT.registerClass("s.Node", 2, 16);
  auto M = RT.attachMutator();
  SplitMix64 Rng(test::testSeed(50 + static_cast<uint64_t>(GetParam())));
  {
    const uint32_t N = 4000;
    Root Table(*M), Tmp(*M), Other(*M);
    M->allocateRefArray(Table, N);
    for (uint32_t I = 0; I < N; ++I) {
      M->allocate(Tmp, Node);
      M->storeWord(Tmp, 0, static_cast<int64_t>(I) * 17 + 3);
      M->storeElem(Table, I, Tmp);
    }
    for (uint32_t I = 0; I < N; ++I) {
      M->loadElem(Table, I, Tmp);
      for (uint32_t S = 0; S < 2; ++S) {
        M->loadElem(Table, static_cast<uint32_t>(Rng.nextBelow(N)),
                    Other);
        M->storeRef(Tmp, S, Other);
      }
    }
    auto Checksum = [&] {
      uint64_t Sum = 0;
      for (uint32_t I = 0; I < N; ++I) {
        M->loadElem(Table, I, Tmp);
        Sum = Sum * 31 + static_cast<uint64_t>(M->loadWord(Tmp, 0));
        for (uint32_t S = 0; S < 2; ++S) {
          M->loadRef(Tmp, S, Other);
          Sum ^= static_cast<uint64_t>(M->loadWord(Other, 0)) << S;
        }
      }
      return Sum;
    };
    uint64_t Expected = Checksum();
    for (int Round = 0; Round < 3; ++Round) {
      // Churn: garbage plus mutation of a slice of the graph between
      // cycles (stores of barriered loads, never raw values).
      for (int I = 0; I < 3000; ++I)
        M->allocate(Other, Node);
      M->requestGcAndWait();
      ASSERT_EQ(Checksum(), Expected)
          << "config " << GetParam() << " round " << Round;
    }
  }
  M.reset();
  RT.driver().shutdown(); // publish any deferred (lazy) cycle record
  EXPECT_GE(RT.gcStats().cycleCount(), 3u);
}

TEST_P(ConfigSweepTest, HeapShrinksAfterDrop) {
  Runtime RT(sweepConfig(GetParam()));
  ClassId Cls = RT.registerClass("s.Blob", 0, 504);
  auto M = RT.attachMutator();
  {
    Root Arr(*M), Tmp(*M);
    const uint32_t N = 8000; // ~4 MB retained
    M->allocateRefArray(Arr, N);
    for (uint32_t I = 0; I < N; ++I) {
      M->allocate(Tmp, Cls);
      M->storeElem(Arr, I, Tmp);
    }
    M->requestGcAndWait();
    size_t UsedFull = RT.usedBytes();
    // Drop everything and collect twice (lazy configs need the second
    // cycle to drain the deferred set).
    M->clearRoot(Tmp);
    M->clearRoot(Arr);
    M->requestGcAndWait();
    M->requestGcAndWait();
    M->requestGcAndWait();
    EXPECT_LT(RT.usedBytes(), UsedFull / 2)
        << "config " << GetParam() << " failed to reclaim";
  }
  M.reset();
}

INSTANTIATE_TEST_SUITE_P(AllTable2Configs, ConfigSweepTest,
                         ::testing::Range(0, 19),
                         [](const ::testing::TestParamInfo<int> &Info) {
                           return "Config" +
                                  std::to_string(Info.param);
                         });
