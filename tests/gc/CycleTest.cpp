//===- tests/gc/CycleTest.cpp --------------------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"
#include "support/Random.h"

#include "TestSeeds.h"

#include <gtest/gtest.h>

using namespace hcsgc;

namespace {

GcConfig testConfig() {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 1024 * 1024;
  Cfg.MaxHeapBytes = 32u << 20;
  Cfg.GcWorkers = 2;
  return Cfg;
}

} // namespace

TEST(CycleTest, LinkedListSurvivesManyCycles) {
  Runtime RT(testConfig());
  ClassId Node = RT.registerClass("c.Node", 1, 8);
  auto M = RT.attachMutator();
  {
    Root Head(*M), Cur(*M), Tmp(*M);
    const int N = 10000;
    M->allocate(Head, Node);
    M->storeWord(Head, 0, 0);
    M->copyRoot(Head, Cur);
    for (int I = 1; I < N; ++I) {
      M->allocate(Tmp, Node);
      M->storeWord(Tmp, 0, I);
      M->storeRef(Cur, 0, Tmp);
      M->copyRoot(Tmp, Cur);
    }
    for (int Round = 0; Round < 5; ++Round) {
      M->requestGcAndWait();
      M->copyRoot(Head, Cur);
      for (int I = 0; I < N; ++I) {
        ASSERT_EQ(M->loadWord(Cur, 0), I) << "round " << Round;
        if (I + 1 < N) {
          M->loadRef(Cur, 0, Tmp);
          M->copyRoot(Tmp, Cur);
        }
      }
    }
  }
  M.reset();
  EXPECT_GE(RT.gcStats().cycleCount(), 5u);
}

TEST(CycleTest, GarbageIsReclaimed) {
  Runtime RT(testConfig());
  ClassId Cls = RT.registerClass("c.Garbage", 0, 248);
  auto M = RT.attachMutator();
  {
    Root G(*M);
    // Allocate ~16 MB of garbage into a 32 MB heap; without reclamation
    // this would OOM across iterations.
    for (int Round = 0; Round < 16; ++Round) {
      for (int I = 0; I < 4096; ++I)
        M->allocate(G, Cls);
      M->requestGcAndWait();
    }
    M->clearRoot(G);
    M->requestGcAndWait();
    M->requestGcAndWait();
    // Everything dead: usage should be a small number of pages (TLABs,
    // relocation targets).
    EXPECT_LT(RT.usedBytes(), RT.maxHeapBytes() / 4);
  }
  M.reset();
}

TEST(CycleTest, UnreachableSubgraphDies) {
  Runtime RT(testConfig());
  ClassId Node = RT.registerClass("c.N", 2, 8);
  auto M = RT.attachMutator();
  {
    Root A(*M), B(*M), Tmp(*M);
    M->allocate(A, Node);
    // Build a bushy subgraph under B, then cut it loose.
    M->allocate(B, Node);
    for (int I = 0; I < 1000; ++I) {
      M->allocate(Tmp, Node);
      M->storeRef(Tmp, 0, B);
      M->storeRef(B, 1, Tmp);
    }
    M->storeRef(A, 0, B);
    size_t UsedWithGraph;
    M->requestGcAndWait();
    UsedWithGraph = RT.usedBytes();
    M->storeNullRef(A, 0);
    M->clearRoot(B);
    M->clearRoot(Tmp);
    M->requestGcAndWait();
    M->requestGcAndWait();
    EXPECT_LE(RT.usedBytes(), UsedWithGraph);
  }
  M.reset();
}

TEST(CycleTest, RandomGraphIntegrity) {
  // Build a random object graph, checksum it, run cycles with garbage
  // churn, verify the checksum is unchanged.
  Runtime RT(testConfig());
  ClassId Node = RT.registerClass("c.R", 3, 16);
  auto M = RT.attachMutator();
  SplitMix64 Rng(test::testSeed(60));
  {
    const uint32_t N = 3000;
    Root Table(*M), Tmp(*M), Other(*M);
    M->allocateRefArray(Table, N);
    for (uint32_t I = 0; I < N; ++I) {
      M->allocate(Tmp, Node);
      M->storeWord(Tmp, 0, static_cast<int64_t>(I) * 31);
      M->storeElem(Table, I, Tmp);
    }
    for (uint32_t I = 0; I < N; ++I) {
      M->loadElem(Table, I, Tmp);
      for (uint32_t S = 0; S < 3; ++S) {
        M->loadElem(Table, static_cast<uint32_t>(Rng.nextBelow(N)),
                    Other);
        M->storeRef(Tmp, S, Other);
      }
    }
    auto Checksum = [&] {
      uint64_t Sum = 0;
      for (uint32_t I = 0; I < N; ++I) {
        M->loadElem(Table, I, Tmp);
        Sum += static_cast<uint64_t>(M->loadWord(Tmp, 0));
        for (uint32_t S = 0; S < 3; ++S) {
          M->loadRef(Tmp, S, Other);
          Sum ^= static_cast<uint64_t>(M->loadWord(Other, 0)) << S;
        }
      }
      return Sum;
    };
    uint64_t Before = Checksum();
    for (int Round = 0; Round < 4; ++Round) {
      for (int I = 0; I < 5000; ++I)
        M->allocate(Other, Node); // garbage
      M->requestGcAndWait();
      ASSERT_EQ(Checksum(), Before) << "round " << Round;
    }
  }
  M.reset();
}

TEST(CycleTest, AllocationStallRecovers) {
  // A heap sized so the workload must stall for GC, but never OOMs.
  GcConfig Cfg = testConfig();
  Cfg.MaxHeapBytes = 2u << 20; // 32 small pages
  Runtime RT(Cfg);
  ClassId Cls = RT.registerClass("c.S", 0, 120);
  auto M = RT.attachMutator();
  {
    Root Keep(*M), G(*M);
    M->allocate(Keep, Cls);
    for (int I = 0; I < 100000; ++I)
      M->allocate(G, Cls);
    M->storeWord(Keep, 0, 1);
    EXPECT_EQ(M->loadWord(Keep, 0), 1);
  }
  M.reset();
  EXPECT_GE(RT.gcStats().cycleCount(), 2u);
}

TEST(CycleTest, CycleRecordsArePopulated) {
  GcConfig Cfg = testConfig();
  Runtime RT(Cfg);
  ClassId Cls = RT.registerClass("c.P", 1, 120);
  auto M = RT.attachMutator();
  {
    Root Head(*M), Tmp(*M);
    M->allocate(Head, Cls);
    Root Cur(*M);
    M->copyRoot(Head, Cur);
    for (int I = 0; I < 20000; ++I) {
      M->allocate(Tmp, Cls);
      M->storeRef(Cur, 0, Tmp);
      M->copyRoot(Tmp, Cur);
    }
    M->requestGcAndWait();
    M->requestGcAndWait();
  }
  M.reset();
  auto Records = RT.gcStats().snapshot();
  ASSERT_GE(Records.size(), 2u);
  EXPECT_EQ(Records[0].Cycle, 1u);
  EXPECT_GT(Records[0].LiveBytesMarked, 20000u * 128);
  EXPECT_GT(Records[1].UsedAfterBytes, 0u);
}
