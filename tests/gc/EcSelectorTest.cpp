//===- tests/gc/EcSelectorTest.cpp ---------------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gc/EcSelector.h"

#include <gtest/gtest.h>

using namespace hcsgc;

namespace {

/// Builds a standalone page with given live/hot byte composition.
class PageFixture {
public:
  PageFixture()
      : Buf(new uint8_t[Size + 8]),
        Begin((reinterpret_cast<uintptr_t>(Buf.get()) + 7) & ~uintptr_t(7)),
        P(Begin, Size, PageSizeClass::Small, 0) {}

  /// Allocates and marks \p LiveObjects objects of 64 bytes, flagging the
  /// first \p HotObjects of them hot.
  void populate(unsigned LiveObjects, unsigned HotObjects) {
    for (unsigned I = 0; I < LiveObjects; ++I) {
      uintptr_t A = P.allocate(64);
      ASSERT_NE(A, 0u);
      P.markLive(A, 64);
      if (I < HotObjects)
        P.flagHot(A, 64);
    }
  }

  static constexpr size_t Size = 64 * 1024;
  std::unique_ptr<uint8_t[]> Buf;
  uintptr_t Begin;
  Page P;
};

GcConfig hotnessConfig(double ColdConf) {
  GcConfig Cfg;
  Cfg.Hotness = true;
  Cfg.ColdConfidence = ColdConf;
  return Cfg;
}

} // namespace

TEST(EcSelectorTest, WlbEqualsLiveWithoutHotness) {
  PageFixture F;
  F.populate(100, 50);
  GcConfig Cfg; // Hotness off
  EXPECT_DOUBLE_EQ(weightedLiveBytes(F.P, Cfg), 100.0 * 64);
}

TEST(EcSelectorTest, WlbAllColdEqualsColdBytes) {
  // §3.1.3: "If a page contains only cold objects, we simply use cold
  // bytes (which is equal to live bytes)".
  PageFixture F;
  F.populate(100, 0);
  EXPECT_DOUBLE_EQ(weightedLiveBytes(F.P, hotnessConfig(1.0)),
                   100.0 * 64);
  EXPECT_DOUBLE_EQ(weightedLiveBytes(F.P, hotnessConfig(0.0)),
                   100.0 * 64);
}

TEST(EcSelectorTest, WlbFormula) {
  // WLB = hot + cold * (1 - conf) when hot bytes > 0.
  PageFixture F;
  F.populate(100, 25); // hot = 1600, cold = 4800
  EXPECT_DOUBLE_EQ(weightedLiveBytes(F.P, hotnessConfig(0.0)),
                   1600.0 + 4800.0);
  EXPECT_DOUBLE_EQ(weightedLiveBytes(F.P, hotnessConfig(0.5)),
                   1600.0 + 2400.0);
  EXPECT_DOUBLE_EQ(weightedLiveBytes(F.P, hotnessConfig(1.0)), 1600.0);
}

TEST(EcSelectorTest, WlbMonotonicInColdConfidence) {
  // Property: higher cold confidence never increases a page's weight,
  // so EC can only grow (the paper: "a larger value of COLDCONFIDENCE
  // means a larger EC set").
  PageFixture F;
  F.populate(200, 60);
  double Prev = weightedLiveBytes(F.P, hotnessConfig(0.0));
  for (double C = 0.1; C <= 1.0; C += 0.1) {
    double W = weightedLiveBytes(F.P, hotnessConfig(C));
    EXPECT_LE(W, Prev + 1e-9);
    Prev = W;
  }
}

TEST(EcSelectorTest, ColdConfidenceZeroMatchesZgc) {
  // §3.1.3: "If zero, weighted live bytes simply degrades to ZGC's
  // original live bytes."
  PageFixture F;
  F.populate(123, 45);
  EXPECT_DOUBLE_EQ(weightedLiveBytes(F.P, hotnessConfig(0.0)),
                   static_cast<double>(F.P.liveBytes()));
}

TEST(EcSelectorTest, DenseHotPageExcavatedOnlyByConfidence) {
  // A page 90% live but only 20% hot: ZGC's 75% threshold rejects it;
  // with cold confidence 1.0 its weight is only the hot 20%, which
  // passes the threshold — the "excavation" scenario of §3.1.3.
  PageFixture F;
  unsigned Objects = static_cast<unsigned>(
      PageFixture::Size / 64 * 9 / 10);
  F.populate(Objects, Objects / 5 + 1);
  GcConfig Plain = hotnessConfig(0.0);
  GcConfig Confident = hotnessConfig(1.0);
  double Threshold = 0.75 * PageFixture::Size;
  EXPECT_GT(weightedLiveBytes(F.P, Plain), Threshold);
  EXPECT_LT(weightedLiveBytes(F.P, Confident), Threshold);
}

TEST(EcSelectorTest, ReclamationDemandZeroWhenUnderTarget) {
  // Usage comfortably under the pacing target: nothing to reclaim.
  const size_t Max = 100 << 20;
  EXPECT_DOUBLE_EQ(reclamationDemand(10 << 20, 0, Max, 0.70), 0.0);
  // Exactly at the target (0.70 * Max * 0.9 = 63 MB): still zero.
  size_t Target = static_cast<size_t>(0.70 * Max * 0.9);
  EXPECT_DOUBLE_EQ(reclamationDemand(Target, 0, Max, 0.70), 0.0);
}

TEST(EcSelectorTest, ReclamationDemandGrowsPastTarget) {
  const size_t Max = 100 << 20;
  double AtTarget = 0.70 * Max * 0.9;
  double D = reclamationDemand(80 << 20, 0, Max, 0.70);
  EXPECT_DOUBLE_EQ(D, (80 << 20) - AtTarget);
}

TEST(EcSelectorTest, ReclamationDemandCountsQuarantinedAsOccupied) {
  // The satellite regression: quarantined pages have left the logical
  // heap but return no address space until the end of the next
  // Mark/Remap, so they must add to demand — a selection that "freed"
  // into quarantine has produced nothing allocatable yet.
  const size_t Max = 100 << 20;
  double Without = reclamationDemand(70 << 20, 0, Max, 0.70);
  double With = reclamationDemand(70 << 20, 20 << 20, Max, 0.70);
  EXPECT_DOUBLE_EQ(With - Without, static_cast<double>(20 << 20));
  // Quarantine alone can push an under-target heap into positive demand.
  EXPECT_DOUBLE_EQ(reclamationDemand(0, Max, Max, 0.70),
                   Max - 0.70 * Max * 0.9);
}
