//===- tests/gc/FaultInjectionTest.cpp - OOM-path hardening tests --------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests of the hardened OOM paths, driven by deterministic
/// fault plans derived from TestSeeds.h:
///
///  - genuine heap exhaustion surfaces as typed HeapExhaustedError /
///    AllocStatus::HeapExhausted (never an abort) and is recoverable;
///  - TLAB-refill faults drive the stall/backoff path and allocation
///    still succeeds once the faults stop;
///  - relocation-target faults push evacuation onto the reserved
///    relocation pool without corrupting the heap;
///  - exhaustion stays typed under LAZYRELOCATE, where stalls must wait
///    two cycles (deferred drain) and the final emergency cycle drains
///    the deferred set immediately;
///  - a tight address-space reservation with churn does not exhaust
///    prematurely now that EC demand accounts for quarantined-but-
///    unreleased pages.
///
//===----------------------------------------------------------------------===//

#include "inject/FaultInject.h"
#include "runtime/Runtime.h"

#include "TestSeeds.h"
#include <gtest/gtest.h>

using namespace hcsgc;

namespace {

GcConfig tinyConfig() {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 512 * 1024;
  Cfg.MaxHeapBytes = 4u << 20;
  Cfg.TraceEnabled = true;
  return Cfg;
}

/// Fills \p Arr with live objects until the heap throws, then \returns
/// the caught error's stall count (the heap is left full).
unsigned fillUntilExhausted(Mutator &M, Root &Arr, uint32_t Slots,
                            ClassId Cls) {
  Root Tmp(M);
  uint32_t Next = 0;
  for (;;) {
    try {
      M.allocate(Tmp, Cls);
    } catch (const HeapExhaustedError &E) {
      EXPECT_GT(E.requestedBytes(), 0u);
      EXPECT_GE(E.stallAttempts(), 1u);
      EXPECT_GE(E.cyclesWaited(), E.stallAttempts());
      return E.stallAttempts();
    }
    if (Next >= Slots) {
      ADD_FAILURE() << "heap never exhausted; test geometry broken";
      return 0;
    }
    M.storeElem(Arr, Next++, Tmp);
  }
}

} // namespace

TEST(FaultInjectionTest, ExhaustionIsTypedAndRecoverable) {
  GcConfig Cfg = tinyConfig();
  Runtime RT(Cfg);
  ClassId Cls = RT.registerClass("fi.Blob", 0, 4096);
  auto M = RT.attachMutator();
  {
    const uint32_t Slots = 4096;
    Root Arr(*M);
    M->allocateRefArray(Arr, Slots);

    unsigned Attempts = fillUntilExhausted(*M, Arr, Slots, Cls);
    // The slow path burned every configured stall (the last one an
    // emergency cycle) before giving up.
    EXPECT_EQ(Attempts, Cfg.AllocStallRetries);

    // The try* API reports the same condition without throwing and
    // leaves the destination null.
    Root Probe(*M);
    EXPECT_EQ(M->tryAllocate(Probe, Cls), AllocStatus::HeapExhausted);
    EXPECT_TRUE(Probe.isNull());

    // Exhaustion is recoverable: drop half the references and the same
    // allocation succeeds again.
    for (uint32_t I = 0; I < Slots; I += 2)
      M->storeElemNull(Arr, I);
    EXPECT_EQ(M->tryAllocate(Probe, Cls), AllocStatus::Ok);
    EXPECT_FALSE(Probe.isNull());
  }
  // Detach before collecting the trace / verifying: both wait for the
  // driver to go idle, which deadlocks against a pending cycle if this
  // thread is still a registered (non-parked) mutator.
  M.reset();

  // The stalls and the final emergency cycle were traced.
  bool SawEmergency = false, SawStall = false;
  for (const TraceEvent &E : RT.collectTrace().Events) {
    SawEmergency |= E.Kind == TraceEventKind::EmergencyCycle;
    SawStall |= E.Kind == TraceEventKind::AllocStall;
  }
  EXPECT_TRUE(SawStall);
  EXPECT_TRUE(SawEmergency);

  VerifyResult V = RT.verifyHeap();
  EXPECT_TRUE(V.ok()) << (V.Errors.empty() ? "" : V.Errors.front());
}

TEST(FaultInjectionTest, TlabRefillFaultsStallThenRecover) {
  Runtime RT(tinyConfig());
  // ~2 KB objects: a 64 KB TLAB holds ~30, so the loop below crosses
  // many refills even though the live window stays small.
  ClassId Cls = RT.registerClass("fi.Small", 0, 2048);
  auto M = RT.attachMutator();
  {
    const uint32_t Window = 64, Total = 256;
    Root Arr(*M), Tmp(*M);
    M->allocateRefArray(Arr, Window);

    // Every TLAB refill fails until the fire cap; allocation must ride
    // the stall path and succeed once the faults stop — well within the
    // AllocStallRetries budget.
    FaultPlan Plan(test::testSeed(0xFB01));
    FaultSpec S;
    S.Probability = 1.0;
    S.MaxFires = 2;
    Plan.set(FailPoint::TlabRefill, S);
    ScopedFaultPlan Armed(Plan);

    for (uint32_t I = 0; I < Total; ++I) {
      M->allocate(Tmp, Cls);
      M->storeWord(Tmp, 0, I);
      M->storeElem(Arr, I % Window, Tmp);
    }
    FaultRegistry &FR = FaultRegistry::instance();
    EXPECT_EQ(FR.fires(FailPoint::TlabRefill), 2u);
    EXPECT_GE(FR.hits(FailPoint::TlabRefill), 3u);

    // Each slot's last writer was iteration Total - Window + J.
    for (uint32_t J = 0; J < Window; ++J) {
      M->loadElem(Arr, J, Tmp);
      ASSERT_FALSE(Tmp.isNull());
      EXPECT_EQ(M->loadWord(Tmp, 0), Total - Window + J);
    }
  }
  M.reset();
}

TEST(FaultInjectionTest, RelocTargetFaultsFallBackToReserve) {
  GcConfig Cfg = tinyConfig();
  Cfg.MaxHeapBytes = 16u << 20;
  Cfg.RelocateAllSmallPages = true; // every small page is an EC candidate
  Runtime RT(Cfg);
  ClassId Cls = RT.registerClass("fi.Node", 0, 120);
  auto M = RT.attachMutator();
  {
    Root Arr(*M), Tmp(*M), G(*M);
    const uint32_t N = 500;
    M->allocateRefArray(Arr, N);
    // Sparse survivors across many pages: relocation has real work.
    for (uint32_t I = 0; I < N * 40; ++I) {
      M->allocate(G, Cls);
      if (I % 40 == 0) {
        M->allocate(Tmp, Cls);
        M->storeWord(Tmp, 0, I);
        M->storeElem(Arr, I / 40, Tmp);
      }
    }
    M->clearRoot(G);
    M->clearRoot(Tmp);

    uint64_t ReserveBefore = RT.heap().allocator().relocReservePagesUsed();
    {
      // Deny every primary relocation-target allocation for a few fires:
      // the reserved pool must carry evacuation.
      FaultPlan Plan(test::testSeed(0xFB02));
      FaultSpec S;
      S.Probability = 1.0;
      S.MaxFires = 3;
      Plan.set(FailPoint::RelocTargetAlloc, S);
      ScopedFaultPlan Armed(Plan);
      M->requestGcAndWait();
      EXPECT_GE(FaultRegistry::instance().fires(FailPoint::RelocTargetAlloc),
                1u);
    }
    EXPECT_GT(RT.heap().allocator().relocReservePagesUsed(), ReserveBefore)
        << "faulted relocation never touched the reserve pool";

    // Survivors moved through reserve pages with intact payloads.
    for (uint32_t I = 0; I < N; ++I) {
      M->loadElem(Arr, I, Tmp);
      ASSERT_FALSE(Tmp.isNull());
      EXPECT_EQ(M->loadWord(Tmp, 0), int64_t(I) * 40);
    }
  }
  M.reset(); // detach before verifyHeap (it waits for driver idle)
  VerifyResult V = RT.verifyHeap();
  EXPECT_TRUE(V.ok()) << (V.Errors.empty() ? "" : V.Errors.front());
}

TEST(FaultInjectionTest, ExhaustionStaysTypedUnderLazyRelocate) {
  GcConfig Cfg = tinyConfig();
  Cfg.LazyRelocate = true;
  Cfg.RelocateAllSmallPages = true;
  Runtime RT(Cfg);
  ClassId Cls = RT.registerClass("fi.LazyBlob", 0, 4096);
  auto M = RT.attachMutator();
  {
    const uint32_t Slots = 4096;
    Root Arr(*M);
    M->allocateRefArray(Arr, Slots);
    unsigned Attempts = fillUntilExhausted(*M, Arr, Slots, Cls);
    EXPECT_EQ(Attempts, Cfg.AllocStallRetries);

    // Recovery: drop references, allocate again.
    for (uint32_t I = 0; I < Slots; ++I)
      M->storeElemNull(Arr, I);
    Root Probe(*M);
    EXPECT_EQ(M->tryAllocate(Probe, Cls), AllocStatus::Ok);
  }
  M.reset(); // detach before collectTrace/verifyHeap (driver-idle waits)

  // Satellite proof: ordinary stalls under LAZYRELOCATE wait TWO cycles
  // (cycle k only selects; k+1's drain releases memory); the final
  // emergency stall waits one synchronous cycle that drains the
  // deferred set itself.
  bool SawTwoCycleStall = false, SawEmergency = false;
  for (const TraceEvent &E : RT.collectTrace().Events) {
    if (E.Kind == TraceEventKind::AllocStall && E.C == 2)
      SawTwoCycleStall = true;
    SawEmergency |= E.Kind == TraceEventKind::EmergencyCycle;
  }
  EXPECT_TRUE(SawTwoCycleStall)
      << "LAZYRELOCATE stalls must wait out the deferred drain";
  EXPECT_TRUE(SawEmergency);

  VerifyResult V = RT.verifyHeap();
  EXPECT_TRUE(V.ok()) << (V.Errors.empty() ? "" : V.Errors.front());
}

TEST(FaultInjectionTest, TightReservationChurnDoesNotExhaust) {
  // Satellite regression: with a tight address-space reservation,
  // quarantined-but-unreleased pages used to be double-counted as
  // reclaimable, so EC selection under-evacuated and churn workloads hit
  // spurious exhaustion. Demand is now net of quarantined bytes.
  GcConfig Cfg = tinyConfig();
  Cfg.MaxHeapBytes = 8u << 20;
  Cfg.ReservedBytes = 2 * Cfg.MaxHeapBytes; // tight: default is 3x
  Cfg.RelocateAllSmallPages = true;
  Runtime RT(Cfg);
  ClassId Cls = RT.registerClass("fi.Churn", 0, 200);
  auto M = RT.attachMutator();
  {
    Root Arr(*M), Tmp(*M);
    const uint32_t Live = 256; // ~56 KB live, far below MaxHeap
    M->allocateRefArray(Arr, Live);
    for (uint32_t Round = 0; Round < 30; ++Round) {
      for (uint32_t I = 0; I < 2000; ++I) {
        // Overwrite a slot: the old object becomes garbage that must be
        // evacuated-and-released fast enough under the tight reservation.
        M->allocate(Tmp, Cls);
        M->storeWord(Tmp, 0, Round);
        M->storeElem(Arr, I % Live, Tmp);
      }
    }
  }
  M.reset(); // detach before verifyHeap (it waits for driver idle)
  VerifyResult V = RT.verifyHeap();
  EXPECT_TRUE(V.ok()) << (V.Errors.empty() ? "" : V.Errors.front());
}
