//===- tests/gc/HotnessTest.cpp ------------------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Tests §3.1.2: hotness capture via load-barrier slow paths and R-colored
// pointers, hotmap reset per cycle, and hot-byte accounting feeding EC
// selection.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

#include <gtest/gtest.h>

using namespace hcsgc;

namespace {

GcConfig hotConfig() {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 1024 * 1024;
  Cfg.MaxHeapBytes = 32u << 20;
  Cfg.Hotness = true;
  return Cfg;
}

} // namespace

TEST(HotnessTest, AccessedObjectsBecomeHot) {
  Runtime RT(hotConfig());
  ClassId Cls = RT.registerClass("h.Obj", 0, 24);
  auto M = RT.attachMutator();
  {
    Root Arr(*M), Tmp(*M);
    const uint32_t N = 5000;
    M->allocateRefArray(Arr, N);
    for (uint32_t I = 0; I < N; ++I) {
      M->allocate(Tmp, Cls);
      M->storeElem(Arr, I, Tmp);
    }
    // Cycle 1 leaves R-colored slots from the build (everything looks
    // hot); cycle 2 starts from a clean window.
    M->requestGcAndWait();
    M->requestGcAndWait();
    // Touch only the first half, then run a cycle to account hotness.
    for (uint32_t I = 0; I < N / 2; ++I)
      M->loadElem(Arr, I, Tmp);
    M->requestGcAndWait();
  }
  M.reset();
  auto Records = RT.gcStats().snapshot();
  ASSERT_GE(Records.size(), 3u);
  const CycleRecord &Last = Records.back();
  // Roughly half the elements (32 bytes each) should be hot: the touched
  // half, not the untouched half. Allow slack for arrays/roots.
  uint64_t ElementBytes = 5000ull * 32;
  EXPECT_GT(Last.HotBytesMarked, ElementBytes / 4);
  EXPECT_LT(Last.HotBytesMarked, ElementBytes);
  EXPECT_GT(Last.LiveBytesMarked, Last.HotBytesMarked);
}

TEST(HotnessTest, HotnessResetsEachCycle) {
  // "hotmap is reset at the beginning of each M/R phase; this renders
  // all objects cold effectively" (§3.1.2).
  Runtime RT(hotConfig());
  ClassId Cls = RT.registerClass("h.R", 0, 24);
  auto M = RT.attachMutator();
  {
    Root Arr(*M), Tmp(*M);
    const uint32_t N = 5000;
    M->allocateRefArray(Arr, N);
    for (uint32_t I = 0; I < N; ++I) {
      M->allocate(Tmp, Cls);
      M->storeElem(Arr, I, Tmp);
    }
    M->requestGcAndWait();
    M->requestGcAndWait();
    // Two cycles with NO accesses in between: almost nothing stays hot.
    M->requestGcAndWait();
  }
  M.reset();
  auto Records = RT.gcStats().snapshot();
  ASSERT_GE(Records.size(), 3u);
  // Cycle 1 sees the build accesses as hot; the last cycle (no mutator
  // accesses in its window) must see almost nothing hot.
  EXPECT_GT(Records[0].HotBytesMarked, 5000u * 16);
  EXPECT_LT(Records.back().HotBytesMarked,
            Records[0].HotBytesMarked / 4);
}

TEST(HotnessTest, HotnessOffRecordsNothing) {
  GcConfig Cfg = hotConfig();
  Cfg.Hotness = false;
  Runtime RT(Cfg);
  ClassId Cls = RT.registerClass("h.Off", 0, 24);
  auto M = RT.attachMutator();
  {
    Root Arr(*M), Tmp(*M);
    M->allocateRefArray(Arr, 1000);
    for (uint32_t I = 0; I < 1000; ++I) {
      M->allocate(Tmp, Cls);
      M->storeElem(Arr, I, Tmp);
    }
    M->requestGcAndWait();
    for (uint32_t I = 0; I < 1000; ++I)
      M->loadElem(Arr, I, Tmp);
    M->requestGcAndWait();
  }
  M.reset();
  RT.gcStats().forEachCycle(
      [](const CycleRecord &R) { EXPECT_EQ(R.HotBytesMarked, 0u); });
}

TEST(HotnessTest, KnobValidation) {
  GcConfig Cfg;
  Cfg.ColdPage = true; // requires Hotness
  EXPECT_FALSE(Cfg.knobsValid());
  Cfg.ColdPage = false;
  Cfg.ColdConfidence = 0.5; // requires Hotness
  EXPECT_FALSE(Cfg.knobsValid());
  Cfg.Hotness = true;
  EXPECT_TRUE(Cfg.knobsValid());
  Cfg.ColdConfidence = 1.5; // out of range
  EXPECT_FALSE(Cfg.knobsValid());
}

TEST(HotnessTest, PageHotBytesNeverExceedLive) {
  Runtime RT(hotConfig());
  ClassId Cls = RT.registerClass("h.L", 1, 16);
  auto M = RT.attachMutator();
  {
    Root Head(*M), Cur(*M), Tmp(*M);
    M->allocate(Head, Cls);
    M->copyRoot(Head, Cur);
    for (int I = 0; I < 8000; ++I) {
      M->allocate(Tmp, Cls);
      M->storeRef(Cur, 0, Tmp);
      M->copyRoot(Tmp, Cur);
    }
    for (int Round = 0; Round < 3; ++Round) {
      // Walk half the list, then collect.
      M->copyRoot(Head, Cur);
      for (int I = 0; I < 4000; ++I) {
        M->loadRef(Cur, 0, Tmp);
        M->copyRoot(Tmp, Cur);
      }
      M->requestGcAndWait();
    }
  }
  M.reset();
  RT.gcStats().forEachCycle([](const CycleRecord &R) {
    EXPECT_LE(R.HotBytesMarked, R.LiveBytesMarked);
  });
}
