//===- tests/gc/KvGcStressTest.cpp ---------------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// The KV workload as a GC stress vehicle (this suite runs under TSan in
// CI):
//
//  - a seeded fault-injection matrix in the gc_torture style: tiny
//    geometries, denied TLAB refills / page allocations / relocation
//    targets, stretched phase and safepoint boundaries — the concurrent
//    read/update/churn mix must finish with zero consistency violations
//    and an intact heap;
//  - the snapshot/EC-audit invariants under the KV access pattern: the
//    offline §3.1.3 replay reproduces the collector's accept set
//    byte-for-byte, and once ColdConfidence weighting has relocation
//    compacting the Zipf working set, the hot-byte fraction of the pages
//    holding hot bytes trends upward across cycles.
//
//===----------------------------------------------------------------------===//

#include "inject/FaultInject.h"
#include "workloads/KvWorkload.h"

#include "TestSeeds.h"
#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

using namespace hcsgc;
using hcsgc::test::testSeed;

namespace {

/// Seed-bit-driven config in the gc_torture style, but with enough
/// headroom over the KV live set (~0.5 MiB at these params) that the
/// load phase cannot legitimately exhaust: every HeapExhausted the
/// workload reports then comes from injected faults and must have been
/// absorbed without losing a committed record.
GcConfig kvTortureConfig(uint64_t Bits) {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 512 * 1024;
  Cfg.MaxHeapBytes = (size_t(16) + 4 * (Bits % 3)) << 20; // 16/20/24 MiB
  if (Bits & 1)
    Cfg.ReservedBytes = 2 * Cfg.MaxHeapBytes; // tight reservation
  Cfg.Hotness = (Bits >> 1) & 1;
  Cfg.ColdPage = Cfg.Hotness && ((Bits >> 2) & 1);
  Cfg.ColdConfidence = Cfg.Hotness ? 0.5 : 0.0;
  Cfg.RelocateAllSmallPages = (Bits >> 3) & 1;
  Cfg.LazyRelocate = (Bits >> 4) & 1;
  Cfg.GcWorkers = 1 + ((Bits >> 5) & 1);
  Cfg.TriggerFraction = 0.6;
  Cfg.RelocReservePages = 4;
  return Cfg;
}

/// gc_torture's probabilities with shorter delay bounds (unit-test
/// budget; the delays only stretch windows, they don't change coverage).
FaultPlan kvFaultPlan(uint64_t Seed) {
  FaultPlan Plan(Seed);
  Plan.set(FailPoint::TlabRefill, {0.05, 0, UINT64_MAX, 0});
  Plan.set(FailPoint::PageAlloc, {0.003, 0, UINT64_MAX, 0});
  Plan.set(FailPoint::RelocTargetAlloc, {0.02, 0, UINT64_MAX, 0});
  Plan.set(FailPoint::PhaseDelay, {0.25, 0, UINT64_MAX, 200});
  Plan.set(FailPoint::SafepointDelay, {0.25, 0, UINT64_MAX, 100});
  return Plan;
}

} // namespace

TEST(KvGcStressTest, FaultInjectionSeedMatrix) {
  for (uint64_t I = 0; I < 4; ++I) {
    uint64_t Seed = testSeed(0x4B60 + I);
    SCOPED_TRACE("kv torture seed " + std::to_string(I));
    GcConfig Cfg = kvTortureConfig(Seed);
    Runtime RT(Cfg);
    auto M = RT.attachMutator();

    KvWorkloadParams P;
    P.Records = 2500;
    P.ChurnKeys = 500;
    P.Ops = 16000;
    P.Threads = 3;
    P.Shards = 4;
    P.ValueWords = 4;
    P.ReadPct = 70; // heavier write mix than the bench: more GC traffic
    P.UpdatePct = 15;
    P.ComputeCyclesPerOp = 0;
    P.Seed = Seed;

    KvWorkloadResult R;
    {
      ScopedFaultPlan Armed(kvFaultPlan(Seed));
      R = runKvWorkload(*M, P);
    } // disarm before verification

    EXPECT_EQ(R.OpsDone, P.Ops);
    EXPECT_EQ(R.ConsistencyFailures, 0u)
        << "corrupt record observed under fault injection";
    EXPECT_EQ(R.ReadMisses, 0u) << "committed base record lost";
    EXPECT_GE(R.LiveRecords, P.Records);

    M.reset(); // detach before verifyHeap (it waits for driver idle)
    VerifyResult V = RT.verifyHeap();
    EXPECT_TRUE(V.ok()) << (V.Errors.empty() ? "" : V.Errors.front());
  }
}

TEST(KvGcStressTest, ChecksumStableUnderFaultInjection) {
  // The schedule-invariance contract must survive injected faults too:
  // denied refills and stretched phases change every interleaving, but
  // not the final (key, version) multiset.
  KvWorkloadParams P;
  P.Records = 1500;
  P.ChurnKeys = 300;
  P.Ops = 10000;
  P.Threads = 3;
  P.Shards = 4;
  P.ValueWords = 4;
  P.ComputeCyclesPerOp = 0;
  P.Seed = testSeed(0x4B70);

  uint64_t First = 0;
  for (int Round = 0; Round < 2; ++Round) {
    Runtime RT(kvTortureConfig(testSeed(0x4B71 + Round)));
    auto M = RT.attachMutator();
    ScopedFaultPlan Armed(kvFaultPlan(testSeed(0x4B75 + Round)));
    KvWorkloadResult R = runKvWorkload(*M, P);
    EXPECT_EQ(R.ConsistencyFailures, 0u);
    EXPECT_EQ(R.ReadMisses, 0u);
    if (Round == 0)
      First = R.Checksum;
    else
      EXPECT_EQ(R.Checksum, First)
          << "fault schedule leaked into the checksum";
    M.reset();
  }
}

namespace {

/// One round of YCSB-ish traffic against \p Store: Zipf reads flag the
/// working set hot (accounted at the next cycle via R-colored slots),
/// updates create the garbage that gives EC selection real choices.
void kvRound(Mutator &M, KvStore &Store, const KvKeySpace &Keys,
             SplitMix64 &Rng, uint64_t Ops) {
  for (uint64_t Op = 0; Op < Ops; ++Op) {
    uint64_t K = Keys.pick(Rng);
    if (Rng.nextBelow(100) < 90)
      ASSERT_EQ(Store.get(M, K), KvReadStatus::Hit) << "key " << K;
    else
      Store.put(M, K);
  }
}

} // namespace

TEST(KvGcStressTest, SnapshotAuditReplaysAndHotSetCompacts) {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 1024 * 1024;
  Cfg.MaxHeapBytes = 32u << 20;
  Cfg.Hotness = true;
  Cfg.ColdPage = true;      // GC threads split cold survivors out (§3.1.2)
  Cfg.ColdConfidence = 1.0; // full §3.1.3 cold-byte discount
  // The stock budget (~1 page of weighted live per cycle) would compact
  // a 25-page store too slowly to observe; give EC room to accept the
  // mixed pages whose cold bytes the confidence discount exposes.
  Cfg.EvacBudgetPages = 16.0;
  Cfg.SnapshotLogEnabled = true;
  Runtime RT(Cfg);
  auto M = RT.attachMutator();
  {
    KvStoreParams SP;
    SP.Capacity = 24 * 1024;
    SP.Shards = 4;
    SP.ValueWords = 4;
    KvStore Store(*M, SP);
    const uint64_t N = 20000;
    for (uint64_t K = 0; K < N; ++K)
      Store.put(*M, K);

    KvKeySpace::Params KP;
    KP.Keys = N;
    KP.D = KvKeySpace::Dist::Zipf;
    KP.Theta = 0.99;
    KP.Seed = testSeed(0x4B80);
    KvKeySpace Keys(KP);
    SplitMix64 Rng(testSeed(0x4B81));

    // Touch-then-collect rounds: accesses leave R-colored slots, the
    // next cycle's marker scans them into the hotmap, and COLDPAGE
    // relocation separates the survivors it drains into hot and cold
    // destination pages.
    for (int Round = 0; Round < 10; ++Round) {
      kvRound(*M, Store, Keys, Rng, 15000);
      M->requestGcAndWait();
    }
    KvScanResult Scan = Store.scanAll(*M);
    EXPECT_EQ(Scan.Corrupt, 0u);
    EXPECT_EQ(Scan.Live, N);
  }
  M.reset();

  std::vector<CycleSnapshot> Log = RT.collectSnapshots();
  ASSERT_GE(Log.size(), 8u) << "too few snapshots captured";

  // (a) The EC decision audit replays byte-exactly offline — the
  // in-process equivalent of `heapscope --replay` exiting 0.
  size_t Audited = 0, SelectedTotal = 0;
  for (const CycleSnapshot &S : Log) {
    if (S.Point != SnapshotPoint::AfterEc)
      continue;
    ASSERT_TRUE(S.HasAudit) << "AfterEc capture without audit";
    ++Audited;
    std::vector<uint64_t> Recorded = auditSelectedPages(S.Audit);
    EXPECT_EQ(replayEcSelection(S.Audit), Recorded)
        << "cycle " << S.Cycle << ": offline replay diverged";
    SelectedTotal += Recorded.size();
  }
  EXPECT_GE(Audited, 4u);
  EXPECT_GT(SelectedTotal, 0u)
      << "EC never selected a page; the KV config has no relocation";

  // (b) Hot-set compaction: the hot-byte-weighted purity
  // sum(Hot_p * Hot_p/Live_p) / sum(Hot_p) asks "when I look at a hot
  // byte, how hot is the rest of its page?". A scattered working set
  // scores the global hot/live ratio (~0.26 here); COLDPAGE relocation
  // packing hot survivors together drives it toward 1. (A plain
  // sum(Hot)/sum(Live) over hot pages would NOT work: with >=1 hot byte
  // on every page it degenerates to the layout-invariant global ratio.)
  // Cycle 1 is an artifact (every slot is still R-colored from the
  // build phase, so everything looks hot) and cycle 2's window starts
  // clean but its layout predates any hotness-guided relocation — the
  // trend is cycle 2 onward.
  std::vector<std::pair<uint64_t, double>> Trend;
  for (const CycleSnapshot &S : Log) {
    if (S.Point != SnapshotPoint::AfterMark || !S.Hotness || S.Cycle < 2)
      continue;
    double HotSum = 0, Weighted = 0;
    for (const PageRecord &P : S.Pages) {
      if (P.HotBytes == 0 || P.LiveBytes == 0)
        continue;
      double Hot = static_cast<double>(P.HotBytes);
      Weighted += Hot * (Hot / static_cast<double>(P.LiveBytes));
      HotSum += Hot;
    }
    if (HotSum == 0)
      continue;
    Trend.emplace_back(S.Cycle, Weighted / HotSum);
  }
  // Relocation actually ran (the trend below would be vacuous without
  // it): with this budget EC accepts most mixed pages every cycle.
  EXPECT_GT(RT.metrics().counterValue("gc.reloc.bytes_gc"), 0u);

  ASSERT_GE(Trend.size(), 4u) << "need several hot cycles for a trend";
  for (const auto &[Cycle, Frac] : Trend)
    std::printf("[kv-hot-trend] cycle %llu: weighted hot purity %.3f\n",
                (unsigned long long)Cycle, Frac);
  // Compare the settled tail (mean of the last two cycles) against the
  // pre-compaction start. Observed locally: 0.35 -> ~0.42 against a
  // scattered baseline of ~0.26; require a rise well above noise.
  double Early = Trend.front().second;
  double Late = (Trend[Trend.size() - 1].second +
                 Trend[Trend.size() - 2].second) /
                2.0;
  EXPECT_GT(Late, Early + 0.02)
      << "hot working set never compacted: weighted purity stayed flat";
}

namespace {

/// One KV run for the temperature-vs-binary comparison below. Identical
/// store, key distribution, traffic, and seeds for both modes — the only
/// degree of freedom is whether relocation is guided by the 1-bit hotmap
/// or the 2-bit temperature plane.
struct KvPurityRun {
  double EarlyPurity = 0;
  double LatePurity = 0;
  uint64_t ColdPagesAllocated = 0;
  uint64_t ColdRelocatedBytes = 0;
  uint64_t MadviseBytes = 0;
  uint64_t ColdResidentMax = 0;
  std::vector<CycleSnapshot> Log;
};

KvPurityRun runKvPurityWorkload(bool Temperature) {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 1024 * 1024;
  Cfg.MaxHeapBytes = 32u << 20;
  Cfg.Hotness = true;
  Cfg.ColdPage = true;
  Cfg.ColdConfidence = 1.0;
  Cfg.EvacBudgetPages = 16.0;
  Cfg.SnapshotLogEnabled = true;
  if (Temperature) {
    Cfg.Temperature = true;
    Cfg.ColdTempCycles = 2;
    Cfg.ColdReclaim = ColdReclaimMode::Simulate;
  }
  Runtime RT(Cfg);
  auto M = RT.attachMutator();
  {
    KvStoreParams SP;
    SP.Capacity = 24 * 1024;
    SP.Shards = 4;
    SP.ValueWords = 4;
    KvStore Store(*M, SP);
    const uint64_t N = 20000;
    for (uint64_t K = 0; K < N; ++K)
      Store.put(*M, K);

    KvKeySpace::Params KP;
    KP.Keys = N;
    KP.D = KvKeySpace::Dist::Zipf;
    KP.Theta = 0.99;
    KP.Seed = testSeed(0x4B90);
    KvKeySpace Keys(KP);
    SplitMix64 Rng(testSeed(0x4B91));
    for (int Round = 0; Round < 12; ++Round) {
      kvRound(*M, Store, Keys, Rng, 15000);
      M->requestGcAndWait();
    }
    KvScanResult Scan = Store.scanAll(*M);
    EXPECT_EQ(Scan.Corrupt, 0u);
    EXPECT_EQ(Scan.Live, N);
  }
  M.reset();

  KvPurityRun R;
  MetricsRegistry &MR = RT.metrics();
  R.ColdPagesAllocated = MR.counterValue("coldpage.pages_allocated");
  R.ColdRelocatedBytes = MR.counterValue("coldpage.relocated_bytes");
  R.MadviseBytes = MR.counterValue("coldpage.madvise_bytes");
  if (const Histogram *H = MR.findHistogram("coldpage.resident_bytes"))
    if (H->count() > 0)
      R.ColdResidentMax = static_cast<uint64_t>(H->max());
  R.Log = RT.collectSnapshots();

  // Same hot-byte-weighted purity as SnapshotAuditReplaysAndHotSetCompacts
  // (see the rationale there); both modes are scored on the SAME 1-bit
  // hotmap, so the comparison isolates the placement policy.
  std::vector<double> Trend;
  for (const CycleSnapshot &S : R.Log) {
    if (S.Point != SnapshotPoint::AfterMark || !S.Hotness || S.Cycle < 2)
      continue;
    double HotSum = 0, Weighted = 0;
    for (const PageRecord &P : S.Pages) {
      if (P.HotBytes == 0 || P.LiveBytes == 0)
        continue;
      double Hot = static_cast<double>(P.HotBytes);
      Weighted += Hot * (Hot / static_cast<double>(P.LiveBytes));
      HotSum += Hot;
    }
    if (HotSum > 0)
      Trend.push_back(Weighted / HotSum);
  }
  EXPECT_GE(Trend.size(), 4u);
  if (Trend.size() >= 4) {
    R.EarlyPurity = Trend.front();
    R.LatePurity = (Trend[Trend.size() - 1] + Trend[Trend.size() - 2]) / 2.0;
  }
  return R;
}

} // namespace

TEST(KvGcStressTest, TemperatureBeatsBinaryHotnessOnHotPagePurity) {
  // The paper's 1-bit hotmap forgets everything each cycle: an object in
  // the Zipf body that missed this cycle's sample is "cold" and gets
  // evicted from the hot pages it shares with the head, only to be
  // touched and moved back next cycle. The 2-bit temperature keeps such
  // warm objects (temp 1..2) off both the hot and the cold tier, so the
  // hot pages converge to the actual head of the distribution — measured
  // here as hot-byte-weighted purity on the identical workload.
  KvPurityRun Binary = runKvPurityWorkload(/*Temperature=*/false);
  KvPurityRun Temp = runKvPurityWorkload(/*Temperature=*/true);
  std::printf("[kv-purity] binary: early %.3f late %.3f | temp: early %.3f "
              "late %.3f\n",
              Binary.EarlyPurity, Binary.LatePurity, Temp.EarlyPurity,
              Temp.LatePurity);
  EXPECT_GT(Temp.LatePurity, Binary.LatePurity)
      << "temperature-guided placement should beat the 1-bit baseline";

  // Binary mode must not touch the temperature-only machinery...
  EXPECT_EQ(Binary.ColdPagesAllocated, 0u);
  EXPECT_EQ(Binary.MadviseBytes, 0u);
  // ...while the temperature run proves survivors cold, segregates them,
  // and reports their pages as reclaimable RSS (Simulate counts the
  // bytes MADV_COLD would cover without the syscall).
  EXPECT_GE(Temp.ColdPagesAllocated, 1u);
  EXPECT_GE(Temp.ColdResidentMax, 64u * 1024u)
      << "cold-resident RSS never covered a full page";
  EXPECT_GE(Temp.MadviseBytes, 64u * 1024u);

  // Cold pages stay cold under churn: in every settled temperature
  // snapshot, pages adopted into or filled under the cold tier hold a
  // live population that is overwhelmingly tier-0 — hot traffic against
  // the Zipf head never lands on them. (Tolerate a sliver of re-heated
  // bytes: the drifting sample can clip a cold page's neighbour keys.)
  size_t ColdPageSightings = 0;
  for (const CycleSnapshot &S : Temp.Log) {
    if (S.Point != SnapshotPoint::AfterMark || !S.Temperature)
      continue;
    for (const PageRecord &P : S.Pages) {
      if (P.Tier != static_cast<uint8_t>(SnapPageTier::Cold) ||
          P.LiveBytes == 0)
        continue;
      ++ColdPageSightings;
      uint64_t Warmish = P.TempBytes[2] + P.TempBytes[3];
      EXPECT_LE(Warmish * 10, P.LiveBytes)
          << "cycle " << S.Cycle << " page 0x" << std::hex << P.PageBegin
          << std::dec << ": cold page re-heated";
    }
  }
  EXPECT_GE(ColdPageSightings, 2u)
      << "cold tier never visible in the snapshot log";
}

namespace {

/// One KV run for the pretenuring comparison below: the PR 7 temperature
/// config (19-style), optionally plus SITEPROFILING. Identical store,
/// key distribution, traffic and seeds in both modes — the only degree
/// of freedom is whether cold allocation sites are routed through the
/// pretenure TLAB at birth or sorted out by relocation afterwards.
struct KvPretenureRun {
  double LatePurity = 0;
  uint64_t RelocatedBytes = 0;  ///< gc.reloc.bytes_{gc,mutator} total.
  uint64_t PretenuredBytes = 0; ///< site.pretenured_bytes.
};

KvPretenureRun runKvPretenureWorkload(bool SiteProfile) {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 1024 * 1024;
  Cfg.MaxHeapBytes = 48u << 20;
  Cfg.Hotness = true;
  Cfg.ColdPage = true;
  Cfg.ColdConfidence = 1.0;
  Cfg.EvacBudgetPages = 16.0;
  Cfg.SnapshotLogEnabled = true;
  Cfg.Temperature = true;
  Cfg.ColdTempCycles = 2;
  if (SiteProfile) {
    Cfg.SiteProfiling = true;
    Cfg.SiteProfileCycles = 2;
  }
  Runtime RT(Cfg);
  auto M = RT.attachMutator();
  {
    KvStoreParams SP;
    SP.Capacity = 96 * 1024; // base records + the growing archive
    SP.Shards = 4;
    SP.ValueWords = 4;
    KvStore Store(*M, SP);
    const uint64_t N = 20000;
    for (uint64_t K = 0; K < N; ++K)
      Store.put(*M, K);

    KvKeySpace::Params KP;
    KP.Keys = N;
    KP.D = KvKeySpace::Dist::Zipf;
    KP.Theta = 0.99;
    KP.Seed = testSeed(0x4BA0);
    KvKeySpace Keys(KP);
    SplitMix64 Rng(testSeed(0x4BA1));
    // Zipf traffic with archive inserts woven into the op stream: fresh
    // keys that are written once and never read again, one per 16 hot
    // ops. The interleave matters — a clustered burst would already be
    // spatially separated by sequential TLAB bump, leaving pretenuring
    // nothing to win. Fine-grained mixing is the adversarial case: every
    // nursery page is born hot/cold salted, and only a site route can
    // keep the archive bytes off the Zipf head's pages.
    uint64_t Archive = uint64_t(1) << 40;
    uint64_t Archived = 0;
    for (int Round = 0; Round < 16; ++Round) {
      for (uint64_t Op = 0; Op < 15000; ++Op) {
        uint64_t K = Keys.pick(Rng);
        if (Rng.nextBelow(100) < 90)
          EXPECT_EQ(Store.get(*M, K), KvReadStatus::Hit) << "key " << K;
        else
          Store.put(*M, K);
        if (Op % 4 == 0)
          Store.put(*M, Archive + Archived++);
      }
      M->requestGcAndWait();
    }
    KvScanResult Scan = Store.scanAll(*M);
    EXPECT_EQ(Scan.Corrupt, 0u);
    EXPECT_EQ(Scan.Live, N + Archived);
    // The profile must have actually learned the archive stream: the
    // insert site carries every never-updated base record plus all
    // archives, so its hot fraction settles well under the warm
    // threshold and the route leaves Hot.
    if (SiteProfileTable *Prof = RT.heap().siteProfile())
      for (const SiteStats &St : Prof->snapshot())
        if (St.Name == "kv.record_insert")
          EXPECT_NE(St.Route, SiteRoute::Hot)
              << "insert site never earned a non-hot route (ewma "
              << St.HotEwma << ")";
  }
  M.reset();

  KvPretenureRun R;
  MetricsRegistry &MR = RT.metrics();
  R.RelocatedBytes = MR.counterValue("gc.reloc.bytes_gc") +
                     MR.counterValue("gc.reloc.bytes_mutator");
  R.PretenuredBytes = MR.counterValue("site.pretenured_bytes");

  // Hot-byte-weighted page purity, with "hot" read from the temperature
  // plane (tier >= 2: bytes touched across multiple aging windows)
  // rather than the 1-bit hotmap. The hotmap cannot tell the archive
  // stream from the working set here — a put's probe chain touches the
  // record it just wrote plus its bucket neighbours, so every archive
  // byte looks hot for exactly one cycle after birth, wherever it was
  // placed. Multi-cycle temperature is immune to that birth-touch noise
  // and measures the thing pretenuring is supposed to buy: the
  // persistently-hot working set not sharing pages with cold bytes.
  std::vector<double> Trend;
  for (const CycleSnapshot &S : RT.collectSnapshots()) {
    if (S.Point != SnapshotPoint::AfterMark || !S.Hotness || S.Cycle < 2)
      continue;
    double HotSum = 0, Weighted = 0;
    for (const PageRecord &P : S.Pages) {
      uint64_t HotB = P.TempBytes[2] + P.TempBytes[3];
      if (HotB == 0 || P.LiveBytes == 0)
        continue;
      double Hot = static_cast<double>(HotB);
      Weighted += Hot * (Hot / static_cast<double>(P.LiveBytes));
      HotSum += Hot;
    }
    if (HotSum > 0)
      Trend.push_back(Weighted / HotSum);
  }
  // Steady-state purity: the mean over the back half of the trend. The
  // site route only flips once ProfileCycles of evidence are in, so the
  // early cycles are identical by construction; a wide late window keeps
  // the comparison out of single-cycle EC-timing noise.
  EXPECT_GE(Trend.size(), 8u);
  if (Trend.size() >= 8) {
    double Sum = 0;
    for (size_t I = Trend.size() / 2; I < Trend.size(); ++I)
      Sum += Trend[I];
    R.LatePurity = Sum / static_cast<double>(Trend.size() - Trend.size() / 2);
  }
  return R;
}

} // namespace

TEST(KvGcStressTest, PretenuringBeatsTemperatureBaselineOnColdInserts) {
  // PR 7's temperature plane can only fix a bad placement after the
  // fact: archive records are born on hot nursery pages, proven cold
  // over ColdTempCycles, then paid for again as relocation bandwidth.
  // Site profiling cuts the loop at birth — kv.record_insert earns a
  // non-hot route and the archive burst never lands among the Zipf head
  // — so the same traffic must score higher hot-page purity with less
  // total relocation.
  KvPretenureRun Base = runKvPretenureWorkload(/*SiteProfile=*/false);
  KvPretenureRun Pre = runKvPretenureWorkload(/*SiteProfile=*/true);
  std::printf("[kv-pretenure] base: purity %.3f reloc %.1f MB | "
              "site: purity %.3f reloc %.1f MB pretenured %.1f KB\n",
              Base.LatePurity,
              static_cast<double>(Base.RelocatedBytes) / (1024.0 * 1024.0),
              Pre.LatePurity,
              static_cast<double>(Pre.RelocatedBytes) / (1024.0 * 1024.0),
              static_cast<double>(Pre.PretenuredBytes) / 1024.0);

  // The knob actually engaged (and only where enabled).
  EXPECT_EQ(Base.PretenuredBytes, 0u);
  EXPECT_GT(Pre.PretenuredBytes, 0u)
      << "no allocation ever took the pretenure TLAB";

  // Acceptance: better placement at birth shows up as strictly higher
  // hot-byte-weighted purity, above the 0.420 the temperature baseline
  // settles at on this workload, and as less relocation traffic.
  EXPECT_GT(Pre.LatePurity, 0.420);
  EXPECT_GT(Pre.LatePurity, Base.LatePurity)
      << "pretenured run should beat the temperature-only baseline";
  EXPECT_LT(Pre.RelocatedBytes, Base.RelocatedBytes)
      << "pretenuring should reduce total relocated bytes";
}
