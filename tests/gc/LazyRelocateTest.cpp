//===- tests/gc/LazyRelocateTest.cpp -------------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Tests §3.2 / Fig. 3: under LAZYRELOCATE the RE phase moves to the start
// of the next cycle; floating garbage is retained one cycle longer; the
// mutator gets the whole inter-cycle window to relocate.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

#include <gtest/gtest.h>

using namespace hcsgc;

namespace {

GcConfig lazyConfig() {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 1024 * 1024;
  Cfg.MaxHeapBytes = 32u << 20;
  Cfg.LazyRelocate = true;
  Cfg.RelocateAllSmallPages = true;
  return Cfg;
}

} // namespace

TEST(LazyRelocateTest, MemoryReleaseDeferredToNextCycle) {
  Runtime RT(lazyConfig());
  ClassId Cls = RT.registerClass("l.G", 0, 120);
  auto M = RT.attachMutator();
  {
    // Interleave keepers with garbage so every page stays partially
    // live: fully-dead pages are reclaimed outright at EC selection
    // (like ZGC), and only pages that need *relocation* demonstrate the
    // Fig. 3 deferral.
    Root Keepers(*M), Tmp(*M), G(*M);
    M->allocateRefArray(Keepers, 512);
    for (int I = 0; I < 20000; ++I) {
      M->allocate(G, Cls); // garbage
      if (I % 40 == 0) {
        M->allocate(Tmp, Cls);
        M->storeElem(Keepers, static_cast<uint32_t>(I / 40), Tmp);
      }
    }
    M->clearRoot(G);
    M->clearRoot(Tmp);
    size_t UsedBefore = RT.usedBytes();
    M->requestGcAndWait();
    // Cycle 1 deferred its relocation set: the garbage-holding pages are
    // selected but not yet evacuated, so little memory returned...
    size_t AfterFirst = RT.usedBytes();
    M->requestGcAndWait();
    // ...until the next cycle starts by draining them (Fig. 3: "each GC
    // cycle starts with releasing memory").
    size_t AfterSecond = RT.usedBytes();
    EXPECT_GT(AfterFirst, UsedBefore / 2); // floating garbage retained
    EXPECT_GT(AfterFirst, AfterSecond);
    EXPECT_LT(AfterSecond, UsedBefore / 2);
  }
  M.reset();
}

TEST(LazyRelocateTest, MutatorsDominateRelocationInTheWindow) {
  Runtime RT(lazyConfig());
  ClassId Cls = RT.registerClass("l.Obj", 0, 24);
  auto M = RT.attachMutator();
  {
    Root Arr(*M), Tmp(*M);
    const uint32_t N = 4000;
    M->allocateRefArray(Arr, N);
    for (uint32_t I = 0; I < N; ++I) {
      M->allocate(Tmp, Cls);
      M->storeWord(Tmp, 0, I);
      M->storeElem(Arr, I, Tmp);
    }
    M->requestGcAndWait(); // defers RE; window open
    // Touch everything: the mutator performs all these relocations.
    for (uint32_t I = 0; I < N; ++I) {
      M->loadElem(Arr, I, Tmp);
      ASSERT_EQ(M->loadWord(Tmp, 0), I);
    }
    M->requestGcAndWait(); // drain publishes the record
  }
  M.reset();
  auto Records = RT.gcStats().snapshot();
  ASSERT_FALSE(Records.empty());
  const CycleRecord &First = Records[0];
  EXPECT_GT(First.ObjectsRelocatedByMutators, 3000u)
      << "mutator did not get the relocation window";
  // Arrays and stragglers may still fall to the GC drain, but the
  // mutator must have relocated the overwhelming majority.
  EXPECT_GT(First.ObjectsRelocatedByMutators,
            First.ObjectsRelocatedByGc);
}

TEST(LazyRelocateTest, EagerModeGcThreadsDominate) {
  // Control: without LAZYRELOCATE, GC threads race ahead while the
  // mutator blocks in requestGcAndWait, so they relocate nearly all.
  GcConfig Cfg = lazyConfig();
  Cfg.LazyRelocate = false;
  Runtime RT(Cfg);
  ClassId Cls = RT.registerClass("l.E", 0, 24);
  auto M = RT.attachMutator();
  {
    Root Arr(*M), Tmp(*M);
    const uint32_t N = 4000;
    M->allocateRefArray(Arr, N);
    for (uint32_t I = 0; I < N; ++I) {
      M->allocate(Tmp, Cls);
      M->storeElem(Arr, I, Tmp);
    }
    M->requestGcAndWait();
    for (uint32_t I = 0; I < N; ++I)
      M->loadElem(Arr, I, Tmp);
  }
  M.reset();
  auto Records = RT.gcStats().snapshot();
  ASSERT_FALSE(Records.empty());
  EXPECT_GT(Records[0].ObjectsRelocatedByGc,
            Records[0].ObjectsRelocatedByMutators);
}

TEST(LazyRelocateTest, ShutdownDrainsPendingSet) {
  // A runtime destroyed with a deferred relocation set must drain it
  // (statistics complete, no leaks, no crashes).
  Runtime RT(lazyConfig());
  ClassId Cls = RT.registerClass("l.S", 0, 24);
  {
    auto M = RT.attachMutator();
    {
      // Scoped: the Roots must unlink from M before M is destroyed.
      Root Arr(*M), Tmp(*M);
      M->allocateRefArray(Arr, 1000);
      for (uint32_t I = 0; I < 1000; ++I) {
        M->allocate(Tmp, Cls);
        M->storeElem(Arr, I, Tmp);
      }
      M->requestGcAndWait(); // pending EC left behind
    }
    M.reset();
  }
  RT.driver().shutdown();
  EXPECT_GE(RT.gcStats().cycleCount(), 1u);
}

TEST(LazyRelocateTest, DataIntactAcrossManyLazyCycles) {
  Runtime RT(lazyConfig());
  ClassId Cls = RT.registerClass("l.D", 1, 16);
  auto M = RT.attachMutator();
  {
    Root Head(*M), Cur(*M), Tmp(*M);
    const int N = 5000;
    M->allocate(Head, Cls);
    M->storeWord(Head, 0, 0);
    M->copyRoot(Head, Cur);
    for (int I = 1; I < N; ++I) {
      M->allocate(Tmp, Cls);
      M->storeWord(Tmp, 0, I);
      M->storeRef(Cur, 0, Tmp);
      M->copyRoot(Tmp, Cur);
    }
    for (int Round = 0; Round < 6; ++Round) {
      M->requestGcAndWait();
      M->copyRoot(Head, Cur);
      for (int I = 0; I < N; ++I) {
        ASSERT_EQ(M->loadWord(Cur, 0), I);
        if (I + 1 < N) {
          M->loadRef(Cur, 0, Tmp);
          M->copyRoot(Tmp, Cur);
        }
      }
    }
  }
  M.reset();
}
