//===- tests/gc/MarkPrefetchTest.cpp --------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// GcConfig::MarkPrefetchDistance is a pure speed hint: prefetches touch
// no architectural state, so mark results — which objects survive, how
// many bytes are marked live/hot — must be bit-identical at every
// distance. This runs the same seeded graph workload at distance 0
// (prefetching compiled out of the drain), the default 4, and a
// far-ahead 16, and diffs the outcomes. Runs under TSan in CI via the
// gc_tests target, so the prefetch bookkeeping (per-context pending
// counts drained through GcHeap::publishMarkPrefetches) is also raced
// against parallel mark workers here.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"
#include "support/Random.h"

#include "TestSeeds.h"

#include <gtest/gtest.h>

#include <vector>

using namespace hcsgc;

namespace {

GcConfig testConfig(unsigned PrefetchDistance) {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 1024 * 1024;
  Cfg.MaxHeapBytes = 32u << 20;
  Cfg.GcWorkers = 2;
  Cfg.MarkPrefetchDistance = PrefetchDistance;
  return Cfg;
}

/// Everything marking decides, gathered after a fixed cycle schedule.
struct MarkOutcome {
  uint64_t Checksum = 0;
  uint64_t MarkedLiveBytes = 0;
  uint64_t PrefetchIssued = 0;
  uint64_t PrefetchDrains = 0;
  uint64_t Cycles = 0;
};

/// Builds a seeded random graph (array spine + cross links + payload),
/// churns garbage, runs three full cycles, and checksums the survivors
/// by traversal. Single mutator, so the reachable set per cycle is a
/// pure function of the seed — any divergence across prefetch distances
/// is a marking bug.
MarkOutcome runWorkload(unsigned PrefetchDistance) {
  Runtime RT(testConfig(PrefetchDistance));
  ClassId Node = RT.registerClass("pf.Node", 2, 16);
  auto M = RT.attachMutator();
  SplitMix64 Rng(test::testSeed(0xFE7C));
  MarkOutcome Out;
  {
    const uint32_t N = 2000;
    Root Spine(*M), Tmp(*M), Other(*M);
    M->allocateRefArray(Spine, N);
    for (uint32_t I = 0; I < N; ++I) {
      M->allocate(Tmp, Node);
      M->storeWord(Tmp, 0, static_cast<int64_t>(Rng.next()));
      M->storeWord(Tmp, 1, I);
      M->storeElem(Spine, I, Tmp);
    }
    // Cross links, so the mark frontier fans out instead of staying a
    // flat array scan.
    for (uint32_t I = 0; I < 4 * N; ++I) {
      M->loadElem(Spine, static_cast<uint32_t>(Rng.next() % N), Tmp);
      M->loadElem(Spine, static_cast<uint32_t>(Rng.next() % N), Other);
      M->storeRef(Tmp, Rng.next() & 1, Other);
    }
    for (int Round = 0; Round < 3; ++Round) {
      // Garbage churn keeps the cycles relocating, not just marking.
      for (int I = 0; I < 2000; ++I)
        M->allocate(Tmp, Node);
      M->requestGcAndWait();
    }
    // Checksum the survivors through the spine (order-deterministic).
    for (uint32_t I = 0; I < N; ++I) {
      M->loadElem(Spine, I, Tmp);
      Out.Checksum ^= static_cast<uint64_t>(M->loadWord(Tmp, 0)) *
                      (2 * uint64_t(I) + 1);
      for (unsigned R = 0; R < 2; ++R) {
        M->loadRef(Tmp, R, Other);
        if (!Other.isNull())
          Out.Checksum += static_cast<uint64_t>(M->loadWord(Other, 1))
                          << R;
      }
    }
  }
  M.reset();
  Out.MarkedLiveBytes = RT.metrics().counterValue("gc.marked.live_bytes");
  Out.PrefetchIssued = RT.metrics().counterValue("mark.prefetch_issued");
  Out.PrefetchDrains = RT.metrics().counterValue("mark.prefetch_drains");
  Out.Cycles = RT.metrics().counterValue("gc.cycles");
  return Out;
}

} // namespace

TEST(MarkPrefetchTest, MarkResultsIdenticalAcrossDistances) {
  MarkOutcome D0 = runWorkload(0);
  MarkOutcome D4 = runWorkload(4);
  MarkOutcome D16 = runWorkload(16);

  ASSERT_EQ(D0.Cycles, D4.Cycles);
  ASSERT_EQ(D0.Cycles, D16.Cycles);

  // Architectural results: identical regardless of distance.
  EXPECT_EQ(D0.Checksum, D4.Checksum);
  EXPECT_EQ(D0.Checksum, D16.Checksum);
  EXPECT_EQ(D0.MarkedLiveBytes, D4.MarkedLiveBytes);
  EXPECT_EQ(D0.MarkedLiveBytes, D16.MarkedLiveBytes);

  // Bookkeeping: distance 0 compiles the hint out entirely; nonzero
  // distances must actually issue and drain.
  EXPECT_EQ(D0.PrefetchIssued, 0u);
  EXPECT_EQ(D0.PrefetchDrains, 0u);
  EXPECT_GT(D4.PrefetchIssued, 0u);
  EXPECT_GT(D4.PrefetchDrains, 0u);
  EXPECT_GT(D16.PrefetchIssued, 0u);
}

TEST(MarkPrefetchTest, SurvivorsIntactUnderFarPrefetch) {
  // Linked list marked with a distance far beyond the buffer's typical
  // depth: the look-behind guard (N > Dist) must keep every index in
  // bounds and every node alive.
  Runtime RT(testConfig(16));
  ClassId Node = RT.registerClass("pf.L", 1, 8);
  auto M = RT.attachMutator();
  {
    Root Head(*M), Cur(*M), Tmp(*M);
    const int N = 5000;
    M->allocate(Head, Node);
    M->storeWord(Head, 0, 0);
    M->copyRoot(Head, Cur);
    for (int I = 1; I < N; ++I) {
      M->allocate(Tmp, Node);
      M->storeWord(Tmp, 0, I);
      M->storeRef(Cur, 0, Tmp);
      M->copyRoot(Tmp, Cur);
    }
    for (int Round = 0; Round < 3; ++Round) {
      M->requestGcAndWait();
      M->copyRoot(Head, Cur);
      for (int I = 0; I < N; ++I) {
        ASSERT_EQ(M->loadWord(Cur, 0), I) << "round " << Round;
        if (I + 1 < N) {
          M->loadRef(Cur, 0, Tmp);
          M->copyRoot(Tmp, Cur);
        }
      }
    }
  }
  M.reset();
  EXPECT_GT(RT.metrics().counterValue("mark.prefetch_issued"), 0u);
}
