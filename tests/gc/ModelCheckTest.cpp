//===- tests/gc/ModelCheckTest.cpp ---------------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Model-based random testing: a shadow model (plain C++ objects) mirrors
// every mutation performed on the managed heap. After bursts of random
// operations — interleaved with GC cycles and heap verification — the
// managed graph must agree with the model exactly. This is the strongest
// correctness net for a moving collector: any lost update, stale copy,
// mis-forwarded pointer or premature free shows up as a divergence.
//
//===----------------------------------------------------------------------===//

#include "gc/Verifier.h"
#include "runtime/Runtime.h"
#include "support/Random.h"

#include "TestSeeds.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

using namespace hcsgc;

namespace {

/// Shadow of one managed object: payload word + two ref slots (indices
/// into the shadow table, -1 = null).
struct ShadowObj {
  int64_t Payload = 0;
  int Ref[2] = {-1, -1};
};

struct ModelParams {
  int ConfigLikeId; // knob selector
  uint64_t Seed;
};

class ModelCheckTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

GcConfig modelConfig(int Mode) {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 1024 * 1024;
  Cfg.MaxHeapBytes = 16u << 20;
  Cfg.TriggerFraction = 0.5;
  Cfg.TriggerHysteresisFraction = 0.02;
  switch (Mode) {
  case 0:
    break; // baseline
  case 1:
    Cfg.LazyRelocate = true;
    Cfg.RelocateAllSmallPages = true;
    break;
  case 2:
    Cfg.Hotness = true;
    Cfg.ColdPage = true;
    Cfg.ColdConfidence = 1.0;
    break;
  case 3:
    Cfg.Hotness = true;
    Cfg.ColdPage = true;
    Cfg.AutoTuneColdConfidence = true;
    Cfg.LazyRelocate = true;
    break;
  }
  return Cfg;
}

} // namespace

TEST_P(ModelCheckTest, ManagedHeapAgreesWithShadowModel) {
  auto [Mode, Seed] = GetParam();
  Runtime RT(modelConfig(Mode));
  ClassId Cls = RT.registerClass("mc.Obj", 2, 8);
  auto M = RT.attachMutator();
  SplitMix64 Rng(test::testSeed(Seed));
  {
    constexpr uint32_t Slots = 1500;
    // The managed table of live objects and its shadow.
    Root Table(*M), Tmp(*M), Other(*M);
    M->allocateRefArray(Table, Slots);
    std::vector<std::unique_ptr<ShadowObj>> Shadow(Slots);

    auto NewObject = [&](uint32_t At) {
      int64_t P = static_cast<int64_t>(Rng.next());
      M->allocate(Tmp, Cls);
      M->storeWord(Tmp, 0, P);
      M->storeElem(Table, At, Tmp);
      Shadow[At] = std::make_unique<ShadowObj>();
      Shadow[At]->Payload = P;
    };

    for (uint32_t I = 0; I < Slots; ++I)
      NewObject(I);

    auto CheckAll = [&] {
      for (uint32_t I = 0; I < Slots; ++I) {
        if (!Shadow[I]) {
          M->loadElem(Table, I, Tmp);
          ASSERT_TRUE(Tmp.isNull()) << "slot " << I;
          continue;
        }
        M->loadElem(Table, I, Tmp);
        ASSERT_FALSE(Tmp.isNull()) << "slot " << I;
        ASSERT_EQ(M->loadWord(Tmp, 0), Shadow[I]->Payload)
            << "slot " << I;
        for (int S = 0; S < 2; ++S) {
          M->loadRef(Tmp, static_cast<uint32_t>(S), Other);
          int Want = Shadow[I]->Ref[S];
          if (Want < 0) {
            ASSERT_TRUE(Other.isNull()) << "slot " << I << " ref " << S;
          } else {
            ASSERT_FALSE(Other.isNull()) << "slot " << I << " ref " << S;
            ASSERT_EQ(M->loadWord(Other, 0),
                      Shadow[static_cast<uint32_t>(Want)]->Payload)
                << "slot " << I << " ref " << S;
          }
        }
      }
    };

    for (int Burst = 0; Burst < 8; ++Burst) {
      for (int Op = 0; Op < 4000; ++Op) {
        uint32_t I = static_cast<uint32_t>(Rng.nextBelow(Slots));
        switch (Rng.nextBelow(6)) {
        case 0: // replace object (old one may become garbage)
          NewObject(I);
          // Any shadow refs to the replaced object must be cleared in
          // both worlds — emulate by rewiring refs that pointed at I.
          for (uint32_t J = 0; J < Slots; ++J)
            if (Shadow[J])
              for (int S = 0; S < 2; ++S)
                if (Shadow[J]->Ref[S] == static_cast<int>(I))
                  Shadow[J]->Ref[S] = -2; // dangling-but-alive marker
          break;
        case 1: { // drop object entirely
          M->storeElemNull(Table, I);
          Shadow[I].reset();
          for (uint32_t J = 0; J < Slots; ++J)
            if (Shadow[J])
              for (int S = 0; S < 2; ++S)
                if (Shadow[J]->Ref[S] == static_cast<int>(I))
                  Shadow[J]->Ref[S] = -2;
          break;
        }
        case 2:
        case 3: { // link
          uint32_t T = static_cast<uint32_t>(Rng.nextBelow(Slots));
          if (!Shadow[I] || !Shadow[T])
            break;
          uint32_t S = static_cast<uint32_t>(Rng.nextBelow(2));
          M->loadElem(Table, I, Tmp);
          M->loadElem(Table, T, Other);
          M->storeRef(Tmp, S, Other);
          Shadow[I]->Ref[S] = static_cast<int>(T);
          break;
        }
        case 4: { // unlink
          if (!Shadow[I])
            break;
          uint32_t S = static_cast<uint32_t>(Rng.nextBelow(2));
          M->loadElem(Table, I, Tmp);
          M->storeNullRef(Tmp, S);
          Shadow[I]->Ref[S] = -1;
          break;
        }
        default: { // mutate payload
          if (!Shadow[I])
            break;
          int64_t P = static_cast<int64_t>(Rng.next());
          M->loadElem(Table, I, Tmp);
          M->storeWord(Tmp, 0, P);
          Shadow[I]->Payload = P;
          break;
        }
        }
      }
      M->requestGcAndWait();
      // The "-2" dangling markers mean "points at an object no longer in
      // the table but still referenced"; payload comparisons for those
      // are skipped by rebuilding them as real checks only when >= 0, so
      // clear them to null in both worlds before checking.
      for (uint32_t J = 0; J < Slots; ++J)
        if (Shadow[J])
          for (int S = 0; S < 2; ++S)
            if (Shadow[J]->Ref[S] == -2) {
              M->loadElem(Table, J, Tmp);
              M->storeNullRef(Tmp, static_cast<uint32_t>(S));
              Shadow[J]->Ref[S] = -1;
            }
      CheckAll();
      VerifyResult VR = RT.verifyHeap();
      ASSERT_TRUE(VR.ok()) << VR.Errors[0];
    }
  }
  M.reset();
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, ModelCheckTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(42u, 1234u)),
    [](const ::testing::TestParamInfo<std::tuple<int, uint64_t>> &Info) {
      return "Mode" + std::to_string(std::get<0>(Info.param)) + "Seed" +
             std::to_string(std::get<1>(Info.param));
    });
