//===- tests/gc/PageAllocatorStressTest.cpp ------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concurrency stress for the sharded PageAllocator (this suite runs
/// under TSan in CI): parallel allocate/quarantine/release across shards
/// asserting no address-range overlap, exact usedBytes/quarantinedBytes
/// accounting, and free-run coalescing that restores full medium-page
/// capacity after fragmented churn. Also proves the sharded slow path
/// still reaches the relocation reserve under injected exhaustion.
///
//===----------------------------------------------------------------------===//

#include "heap/PageAllocator.h"
#include "inject/FaultInject.h"

#include "TestSeeds.h"
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

using namespace hcsgc;

namespace {

// 64 KiB small / 512 KiB medium => a medium page spans 8 units.
HeapGeometry stressGeo() {
  HeapGeometry G;
  G.SmallPageSize = 64 * 1024;
  G.MediumPageSize = 512 * 1024;
  return G;
}

// Stamps a page's first and last word with a per-(thread, op) token so a
// later check detects any overlapping hand-out of address ranges.
void stamp(Page *P, uint64_t Token) {
  *reinterpret_cast<uint64_t *>(P->begin()) = Token;
  *reinterpret_cast<uint64_t *>(P->end() - sizeof(uint64_t)) = Token;
}

bool stampIntact(Page *P, uint64_t Token) {
  return *reinterpret_cast<uint64_t *>(P->begin()) == Token &&
         *reinterpret_cast<uint64_t *>(P->end() - sizeof(uint64_t)) == Token;
}

} // namespace

TEST(PageAllocatorStressTest, ParallelAllocQuarantineReleaseAccounting) {
  constexpr size_t MaxHeap = 32 << 20;
  PageAllocator A(stressGeo(), MaxHeap, /*ReservedBytes=*/3 * MaxHeap, 0,
                  /*Shards=*/4);
  ASSERT_EQ(A.shardCount(), 4u);

  constexpr unsigned NumThreads = 8;
  constexpr unsigned OpsPerThread = 400;
  std::atomic<unsigned> Corruptions{0};

  auto Worker = [&](unsigned Tid) {
    std::mt19937_64 Rng(test::testSeed(0x5A5A) + Tid);
    std::vector<std::pair<Page *, uint64_t>> Held;
    for (unsigned Op = 0; Op < OpsPerThread; ++Op) {
      bool WantAlloc = Held.size() < 4 || (Rng() & 1);
      if (WantAlloc) {
        bool Medium = (Rng() % 8) == 0;
        Page *P = Medium ? A.allocatePage(PageSizeClass::Medium, 1024, Op)
                         : A.allocatePage(PageSizeClass::Small, 64, Op);
        if (!P)
          continue; // transient heap-full under contention is fine
        // Fresh pages must arrive zeroed — a nonzero word means the
        // range was handed out while someone else still owned it.
        if (*reinterpret_cast<uint64_t *>(P->begin()) != 0)
          Corruptions.fetch_add(1);
        uint64_t Token = (uint64_t(Tid) << 32) | Op;
        stamp(P, Token);
        Held.push_back({P, Token});
      } else {
        size_t Idx = Rng() % Held.size();
        auto [P, Token] = Held[Idx];
        Held.erase(Held.begin() + Idx);
        if (!stampIntact(P, Token))
          Corruptions.fetch_add(1);
        if (Rng() & 1) {
          // Quarantine first (evacuated page awaiting remap), then
          // retire — exercising both accounting transitions.
          P->setState(PageState::Quarantined);
          A.quarantinePage(P);
          if (!stampIntact(P, Token))
            Corruptions.fetch_add(1);
          A.releasePage(P);
        } else {
          A.releasePage(P);
        }
      }
    }
    for (auto [P, Token] : Held) {
      if (!stampIntact(P, Token))
        Corruptions.fetch_add(1);
      A.releasePage(P);
    }
  };

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back(Worker, T);
  for (auto &T : Threads)
    T.join();

  EXPECT_EQ(Corruptions.load(), 0u) << "overlapping page ranges handed out";
  EXPECT_EQ(A.usedBytes(), 0u);
  EXPECT_EQ(A.quarantinedBytes(), 0u);
  EXPECT_TRUE(A.activePagesSnapshot().empty());
  EXPECT_TRUE(A.quarantinedPagesSnapshot().empty());
}

TEST(PageAllocatorStressTest, CoalescingRestoresFullMediumCapacity) {
  constexpr size_t MaxHeap = 32 << 20;
  PageAllocator A(stressGeo(), MaxHeap, /*ReservedBytes=*/MaxHeap, 0,
                  /*Shards=*/4);

  // Fragment the pool with parallel small-page churn, then free
  // everything. Shard caches and run maps must coalesce back so that the
  // entire heap is allocatable as medium pages afterwards.
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < 4; ++T)
    Threads.emplace_back([&, T] {
      std::mt19937_64 Rng(test::testSeed(0xC0A1) + T);
      std::vector<Page *> Held;
      for (unsigned Op = 0; Op < 300; ++Op) {
        if (Held.empty() || (Rng() % 3)) {
          if (Page *P = A.allocatePage(PageSizeClass::Small, 64, Op))
            Held.push_back(P);
        } else {
          size_t Idx = Rng() % Held.size();
          A.releasePage(Held[Idx]);
          Held.erase(Held.begin() + Idx);
        }
      }
      for (Page *P : Held)
        A.releasePage(P);
    });
  for (auto &T : Threads)
    T.join();
  ASSERT_EQ(A.usedBytes(), 0u);

  // Exactly MaxHeap / MediumPageSize medium pages must fit; anything
  // less means a free run failed to coalesce across a cache or shard.
  constexpr size_t Capacity = MaxHeap / (512 * 1024);
  std::vector<Page *> Mediums;
  for (size_t I = 0; I < Capacity; ++I) {
    Page *P = A.allocatePage(PageSizeClass::Medium, 1024, I);
    ASSERT_NE(P, nullptr) << "medium page " << I << " of " << Capacity
                          << " unallocatable: free runs not coalesced";
    Mediums.push_back(P);
  }
  EXPECT_EQ(A.allocatePage(PageSizeClass::Medium, 1024, Capacity), nullptr);
  for (Page *P : Mediums)
    A.releasePage(P);
  EXPECT_EQ(A.usedBytes(), 0u);
}

TEST(PageAllocatorStressTest, ShardedExhaustionStillReachesRelocReserve) {
  constexpr size_t MaxHeap = 4 << 20;
  constexpr size_t ReserveBytes = 4 * 64 * 1024 + 512 * 1024;
  PageAllocator A(stressGeo(), MaxHeap, /*ReservedBytes=*/MaxHeap,
                  /*RelocReserveBytes=*/ReserveBytes, /*Shards=*/2);

  // Simulated exhaustion: the PageAlloc fault point makes every general
  // allocation fail (even forced relocation-target requests)...
  FaultPlan Plan(test::testSeed(0xFEED));
  FaultSpec Always;
  Always.Probability = 1.0;
  Plan.set(FailPoint::PageAlloc, Always);
  {
    ScopedFaultPlan Armed(Plan);
    EXPECT_EQ(A.allocatePage(PageSizeClass::Small, 64, 0), nullptr);
    EXPECT_EQ(
        A.allocatePage(PageSizeClass::Small, 64, 0, /*Force=*/true),
        nullptr);

    // ...but the relocation reserve is exempt from the fault point: the
    // sharded slow path must still reach it so relocation can finish.
    Page *RS = A.allocateReservePage(PageSizeClass::Small, 64, 0);
    ASSERT_NE(RS, nullptr);
    EXPECT_EQ(A.relocReservePagesUsed(), 1u);
    Page *RM = A.allocateReservePage(PageSizeClass::Medium, 1024, 0);
    ASSERT_NE(RM, nullptr);
    EXPECT_EQ(A.relocReservePagesUsed(), 2u);
    A.releasePage(RS);
    A.releasePage(RM);
  }

  // Disarmed, the general pool works again.
  EXPECT_NE(A.allocatePage(PageSizeClass::Small, 64, 0), nullptr);
}
