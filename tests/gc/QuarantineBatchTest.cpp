//===- tests/gc/QuarantineBatchTest.cpp - batched quarantine release -----===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Metrics-backed proof of the ISSUE acceptance criterion: retiring a
/// cycle's quarantined pages acquires each owning shard's lock at most
/// once per shard per cycle. Drives real GC cycles with relocation
/// forced on every small page (so every cycle quarantines the whole
/// evacuated set) and checks the alloc.quarantine.* counters the batched
/// release pass emits: release_locks <= batch_passes * (shards + 1),
/// with many more pages released than locks taken once the page count
/// per cycle exceeds the shard count.
///
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

#include "TestSeeds.h"
#include <gtest/gtest.h>

using namespace hcsgc;

namespace {

uint64_t metric(Runtime &RT, const char *Name) {
  return RT.metrics().counterValue(Name);
}

} // namespace

TEST(QuarantineBatchTest, ReleaseTakesAtMostOneLockPerShardPerCycle) {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 512 * 1024;
  Cfg.MaxHeapBytes = 16u << 20;
  Cfg.TriggerFraction = 1.0; // only explicit cycles
  Cfg.AllocatorShards = 4;
  // Evacuate every small page each cycle: maximal quarantine traffic.
  Cfg.RelocateAllSmallPages = true;
  Cfg.EvacBudgetFraction = 1.0;
  Cfg.EvacBudgetPages = 1.0;
  Runtime RT(Cfg);

  ClassId Cls = RT.registerClass("quar.Obj", 1, 2048 - 64);
  auto M = RT.attachMutator();
  {
    // A retained object graph spanning many small pages, so each cycle
    // evacuates (and therefore quarantines) a multi-page EC.
    const uint32_t Slots = 128;
    Root Arr(*M);
    M->allocateRefArray(Arr, Slots);
    Root Tmp(*M);
    for (uint32_t I = 0; I < Slots; ++I) {
      M->allocate(Tmp, Cls);
      M->storeElem(Arr, I, Tmp);
    }

    // Cycle 1 evacuates and quarantines; cycles 2 and 3 retire the
    // previous cycle's quarantined pages through the batched pass.
    for (int C = 0; C < 3; ++C)
      M->requestGcAndWait();

    uint64_t Passes = metric(RT, "alloc.quarantine.batch_passes");
    uint64_t Locks = metric(RT, "alloc.quarantine.release_locks");
    uint64_t Pages = metric(RT, "alloc.quarantine.pages_released");
    unsigned Shards = RT.heap().allocator().shardCount();

    ASSERT_GE(Passes, 3u) << "one batched pass per cycle";
    ASSERT_GE(Pages, Slots * 2048 / (64 * 1024))
        << "relocating the retained graph must quarantine-and-retire "
           "multiple small pages";
    // The criterion: at most one lock per shard (incl. the reserve) per
    // pass — independent of how many pages each shard retires.
    EXPECT_LE(Locks, Passes * (Shards + 1));
    // And the batching is real: strictly fewer locks than pages, which
    // the old per-page releasePage loop could never achieve once a
    // shard retires two or more pages in one cycle.
    EXPECT_LT(Locks, Pages);

    VerifyResult V = RT.verifyHeap();
    EXPECT_TRUE(V.ok()) << (V.Errors.empty() ? "" : V.Errors.front());
  }
  M.reset();
}
