//===- tests/gc/RelocationTest.cpp ---------------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

using namespace hcsgc;

namespace {

GcConfig relocConfig() {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 1024 * 1024;
  Cfg.MaxHeapBytes = 32u << 20;
  Cfg.RelocateAllSmallPages = true; // force relocation of everything
  return Cfg;
}

} // namespace

TEST(RelocationTest, ObjectsActuallyMove) {
  Runtime RT(relocConfig());
  ClassId Cls = RT.registerClass("r.Obj", 0, 24);
  auto M = RT.attachMutator();
  {
    Root Arr(*M), Tmp(*M);
    const uint32_t N = 2000;
    M->allocateRefArray(Arr, N);
    for (uint32_t I = 0; I < N; ++I) {
      M->allocate(Tmp, Cls);
      M->storeWord(Tmp, 0, I);
      M->storeElem(Arr, I, Tmp);
    }
    M->requestGcAndWait();
    // With RELOCATEALLSMALLPAGES every small page was in EC; verify data
    // integrity and that relocation happened.
    for (uint32_t I = 0; I < N; ++I) {
      M->loadElem(Arr, I, Tmp);
      ASSERT_EQ(M->loadWord(Tmp, 0), I);
    }
  }
  M.reset();
  auto Records = RT.gcStats().snapshot();
  ASSERT_FALSE(Records.empty());
  EXPECT_GT(Records[0].ObjectsRelocatedByMutators +
                Records[0].ObjectsRelocatedByGc,
            1000u);
  EXPECT_GT(Records[0].SmallPagesInEc, 0u);
}

TEST(RelocationTest, ColdPageSegregatesHotAndCold) {
  // §3.3: with COLDPAGE, GC threads route hot and cold objects to
  // different destination pages. We touch only even-indexed objects and
  // verify hot and cold survivors end up on (mostly) disjoint pages.
  GcConfig Cfg = relocConfig();
  Cfg.RelocateAllSmallPages = false;
  Cfg.Hotness = true;
  Cfg.ColdPage = true;
  Cfg.ColdConfidence = 1.0;
  Cfg.EvacBudgetPages = 64; // evacuate everything eligible
  Runtime RT(Cfg);
  ClassId Cls = RT.registerClass("r.HC", 0, 24);
  auto M = RT.attachMutator();
  {
    Root Arr(*M), Tmp(*M);
    const uint32_t N = 6000;
    M->allocateRefArray(Arr, N);
    for (uint32_t I = 0; I < N; ++I) {
      M->allocate(Tmp, Cls);
      M->storeWord(Tmp, 0, I);
      M->storeElem(Arr, I, Tmp);
    }
    // Settle colors, then create the hot/cold split and collect. The GC
    // threads do the relocation while we wait (blocked), so COLDPAGE
    // segregation is what determines destinations.
    M->requestGcAndWait();
    M->requestGcAndWait();
    for (uint32_t I = 0; I < N; I += 2)
      M->loadElem(Arr, I, Tmp);
    M->requestGcAndWait(); // hotness accounted; EC selected via WLB
    M->requestGcAndWait(); // relocation with hot/cold targets happened

    // Partition pages by which kind of object they now host.
    PageTable &PT = RT.heap().pageTable();
    std::map<const Page *, std::pair<int, int>> Census; // hot, cold
    for (uint32_t I = 0; I < N; ++I) {
      M->loadElem(Arr, I, Tmp);
      // Resolve the current address via a payload access trick: classOf
      // touches the object; we need its page, so use the slot value.
      // (Test-only introspection.)
      Oop V = Tmp.rawOop();
      const Page *P = PT.lookup(oopAddr(V));
      if (I % 2 == 0)
        ++Census[P].first;
      else
        ++Census[P].second;
    }
    // Count pages hosting a meaningful mix of both kinds.
    int Mixed = 0, Total = 0;
    for (const auto &[P, HC] : Census) {
      ++Total;
      if (HC.first > 100 && HC.second > 100)
        ++Mixed;
    }
    // Perfect segregation is not guaranteed (mutator relocations during
    // our verification loads, partial EC), but the majority of pages
    // must be strongly single-kind.
    EXPECT_GT(Total, 2);
    EXPECT_LT(Mixed * 2, Total)
        << "hot/cold segregation ineffective: " << Mixed << "/" << Total;
  }
  M.reset();
}

TEST(RelocationTest, MutatorRelocatesInAccessOrder) {
  // §3.2: under LAZYRELOCATE the mutator alone relocates the objects it
  // touches, laying them out in exactly its access order.
  GcConfig Cfg = relocConfig();
  Cfg.LazyRelocate = true;
  Runtime RT(Cfg);
  ClassId Cls = RT.registerClass("r.Ord", 0, 24);
  auto M = RT.attachMutator();
  {
    Root Arr(*M), Tmp(*M);
    const uint32_t N = 3000;
    M->allocateRefArray(Arr, N);
    for (uint32_t I = 0; I < N; ++I) {
      M->allocate(Tmp, Cls);
      M->storeWord(Tmp, 0, I);
      M->storeElem(Arr, I, Tmp);
    }
    M->requestGcAndWait(); // EC selected (all pages), RE deferred

    // Touch objects in a strided pseudo-random order; under lazy
    // relocation each first touch copies the object to the mutator's
    // target page in that order.
    std::vector<uint32_t> AccessOrder;
    uint32_t Idx = 7;
    for (uint32_t I = 0; I < 500; ++I) {
      AccessOrder.push_back(Idx);
      Idx = (Idx * 31 + 17) % N;
    }
    std::vector<uintptr_t> Addrs;
    for (uint32_t A : AccessOrder) {
      M->loadElem(Arr, A, Tmp);
      (void)M->loadWord(Tmp, 0);
      Addrs.push_back(oopAddr(Tmp.rawOop()));
    }
    // Count adjacent pairs that are consecutive in memory (first touches
    // dominate; repeats and page switches break a few).
    size_t Consecutive = 0;
    for (size_t I = 1; I < Addrs.size(); ++I)
      if (Addrs[I] == Addrs[I - 1] + 32)
        ++Consecutive;
    EXPECT_GT(Consecutive, Addrs.size() / 2)
        << "mutator relocation did not produce access-order layout";
  }
  M.reset();
  RT.driver().shutdown(); // drain the deferred set, publishing the record
  auto Records = RT.gcStats().snapshot();
  // The mutator must be credited with the relocations it performed.
  bool MutatorRelocated = false;
  for (const CycleRecord &R : Records)
    if (R.ObjectsRelocatedByMutators > 300)
      MutatorRelocated = true;
  EXPECT_TRUE(MutatorRelocated);
}

TEST(RelocationTest, MediumObjectsRelocate) {
  GcConfig Cfg = relocConfig();
  Cfg.RelocateAllSmallPages = false;
  Cfg.EvacBudgetPages = 8;
  Runtime RT(Cfg);
  const HeapGeometry &Geo = Cfg.Geometry;
  ClassId MCls = RT.registerClass(
      "r.Med", 1,
      static_cast<uint32_t>(Geo.smallObjectMax() + 512));
  auto M = RT.attachMutator();
  {
    // Two medium objects + garbage between them so their page qualifies.
    Root A(*M), B(*M), G(*M);
    M->allocate(A, MCls);
    M->storeWord(A, 0, 11);
    for (int I = 0; I < 5; ++I)
      M->allocate(G, MCls);
    M->allocate(B, MCls);
    M->storeWord(B, 0, 22);
    M->storeRef(A, 0, B);
    M->clearRoot(G);
    M->requestGcAndWait();
    M->requestGcAndWait();
    EXPECT_EQ(M->loadWord(A, 0), 11);
    Root Out(*M);
    M->loadRef(A, 0, Out);
    EXPECT_EQ(M->loadWord(Out, 0), 22);
  }
  M.reset();
}
