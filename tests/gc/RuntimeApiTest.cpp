//===- tests/gc/RuntimeApiTest.cpp ---------------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

#include <gtest/gtest.h>

using namespace hcsgc;

namespace {

GcConfig testConfig() {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 1024 * 1024;
  Cfg.MaxHeapBytes = 32u << 20;
  Cfg.GcWorkers = 1;
  return Cfg;
}

} // namespace

TEST(RuntimeApiTest, AllocateAndAccessPayload) {
  Runtime RT(testConfig());
  ClassId Cls = RT.registerClass("t.Obj", 1, 24);
  auto M = RT.attachMutator();
  {
    Root R(*M);
    M->allocate(R, Cls);
    EXPECT_FALSE(R.isNull());
    EXPECT_EQ(M->classOf(R), Cls);
    EXPECT_EQ(M->numRefs(R), 1u);
    EXPECT_EQ(M->loadWord(R, 0), 0); // zero-initialized
    M->storeWord(R, 0, -77);
    M->storeWord(R, 2, 123456789);
    EXPECT_EQ(M->loadWord(R, 0), -77);
    EXPECT_EQ(M->loadWord(R, 2), 123456789);
  }
  M.reset();
}

TEST(RuntimeApiTest, RefFieldsAndNull) {
  Runtime RT(testConfig());
  ClassId Cls = RT.registerClass("t.Pair", 2, 0);
  auto M = RT.attachMutator();
  {
    Root A(*M), B(*M), Out(*M);
    M->allocate(A, Cls);
    M->allocate(B, Cls);
    M->loadRef(A, 0, Out);
    EXPECT_TRUE(Out.isNull());
    M->storeRef(A, 0, B);
    M->loadRef(A, 0, Out);
    EXPECT_FALSE(Out.isNull());
    EXPECT_TRUE(M->refEquals(Out, B));
    EXPECT_FALSE(M->refEquals(Out, A));
    M->storeNullRef(A, 0);
    M->loadRef(A, 0, Out);
    EXPECT_TRUE(Out.isNull());
  }
  M.reset();
}

TEST(RuntimeApiTest, SelfReference) {
  Runtime RT(testConfig());
  ClassId Cls = RT.registerClass("t.Selfish", 1, 8);
  auto M = RT.attachMutator();
  {
    Root A(*M), Out(*M);
    M->allocate(A, Cls);
    M->storeRef(A, 0, A);
    M->requestGcAndWait();
    M->loadRef(A, 0, Out);
    EXPECT_TRUE(M->refEquals(A, Out));
  }
  M.reset();
}

TEST(RuntimeApiTest, RefArrays) {
  Runtime RT(testConfig());
  ClassId Cls = RT.registerClass("t.Elem", 0, 8);
  auto M = RT.attachMutator();
  {
    Root Arr(*M), E(*M), Out(*M);
    M->allocateRefArray(Arr, 100);
    EXPECT_EQ(M->arrayLength(Arr), 100u);
    for (uint32_t I = 0; I < 100; ++I) {
      M->loadElem(Arr, I, Out);
      EXPECT_TRUE(Out.isNull());
    }
    M->allocate(E, Cls);
    M->storeWord(E, 0, 5);
    M->storeElem(Arr, 42, E);
    M->loadElem(Arr, 42, Out);
    EXPECT_EQ(M->loadWord(Out, 0), 5);
    M->storeElemNull(Arr, 42);
    M->loadElem(Arr, 42, Out);
    EXPECT_TRUE(Out.isNull());
  }
  M.reset();
}

TEST(RuntimeApiTest, ZeroLengthArray) {
  Runtime RT(testConfig());
  auto M = RT.attachMutator();
  {
    Root Arr(*M);
    M->allocateRefArray(Arr, 0);
    EXPECT_EQ(M->arrayLength(Arr), 0u);
    M->requestGcAndWait();
    EXPECT_EQ(M->arrayLength(Arr), 0u);
  }
  M.reset();
}

TEST(RuntimeApiTest, MediumAndLargeObjects) {
  Runtime RT(testConfig());
  auto M = RT.attachMutator();
  const HeapGeometry &Geo = RT.config().Geometry;
  {
    Root Medium(*M), Large(*M);
    // Medium: bigger than smallObjectMax (8K), smaller than medium max.
    size_t MediumPayload = Geo.smallObjectMax() + 1024;
    ClassId MCls = RT.registerClass("t.Medium", 0,
                                    static_cast<uint32_t>(MediumPayload));
    M->allocate(Medium, MCls);
    M->storeWord(Medium, 100, 42);
    // Large: bigger than mediumObjectMax (128K).
    size_t LargePayload = Geo.mediumObjectMax() + 4096;
    M->allocateSized(Large, MCls, 0, LargePayload);
    M->storeWord(Large, 20000, 7);
    M->requestGcAndWait();
    M->requestGcAndWait();
    EXPECT_EQ(M->loadWord(Medium, 100), 42);
    EXPECT_EQ(M->loadWord(Large, 20000), 7);
  }
  M.reset();
}

TEST(RuntimeApiTest, GlobalRoots) {
  Runtime RT(testConfig());
  ClassId Cls = RT.registerClass("t.G", 0, 8);
  GlobalRoot *G = RT.createGlobalRoot();
  auto M = RT.attachMutator();
  {
    Root A(*M), Out(*M);
    M->allocate(A, Cls);
    M->storeWord(A, 0, 99);
    M->storeGlobal(*G, A);
  }
  // The object survives with no mutator-local roots.
  M->requestGcAndWait();
  {
    Root Out(*M);
    M->loadGlobal(*G, Out);
    EXPECT_EQ(M->loadWord(Out, 0), 99);
  }
  M.reset();
  RT.destroyGlobalRoot(G);
}

TEST(RuntimeApiTest, CopyAndClearRoot) {
  Runtime RT(testConfig());
  ClassId Cls = RT.registerClass("t.C", 0, 8);
  auto M = RT.attachMutator();
  {
    Root A(*M), B(*M);
    M->allocate(A, Cls);
    M->copyRoot(A, B);
    EXPECT_TRUE(M->refEquals(A, B));
    M->clearRoot(B);
    EXPECT_TRUE(B.isNull());
    EXPECT_FALSE(A.isNull());
  }
  M.reset();
}

TEST(RuntimeApiTest, MultipleMutators) {
  Runtime RT(testConfig());
  ClassId Cls = RT.registerClass("t.M", 0, 8);
  auto M1 = RT.attachMutator();
  std::thread Other([&] {
    auto M2 = RT.attachMutator();
    {
      // Scoped: the Root must unlink from M2 before M2 is destroyed.
      Root R(*M2);
      for (int I = 0; I < 1000; ++I)
        M2->allocate(R, Cls);
    }
    M2.reset();
  });
  {
    Root R(*M1);
    for (int I = 0; I < 1000; ++I)
      M1->allocate(R, Cls);
  }
  Other.join();
  M1.reset();
}

TEST(RuntimeApiTest, CountersZeroWithoutProbes) {
  Runtime RT(testConfig());
  auto M = RT.attachMutator();
  {
    Root R(*M);
    M->allocateRefArray(R, 10);
  }
  EXPECT_EQ(M->counters().Loads, 0u);
  M.reset();
  EXPECT_EQ(RT.mutatorCounters().Loads, 0u);
}

TEST(RuntimeApiTest, CountersTrackWithProbes) {
  GcConfig Cfg = testConfig();
  Cfg.EnableProbes = true;
  Runtime RT(Cfg);
  ClassId Cls = RT.registerClass("t.P", 1, 8);
  auto M = RT.attachMutator();
  {
    Root A(*M), B(*M);
    M->allocate(A, Cls);
    M->allocate(B, Cls);
    M->storeRef(A, 0, B);
    for (int I = 0; I < 100; ++I)
      M->loadRef(A, 0, B);
  }
  EXPECT_GT(M->counters().Loads, 100u);
  EXPECT_GT(M->counters().Stores, 0u);
  M.reset();
  EXPECT_GT(RT.mutatorCounters().Loads, 100u);
}
