//===- tests/gc/SafepointTest.cpp ----------------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gc/Safepoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace hcsgc;

TEST(SafepointTest, PauseWithNoMutatorsIsImmediate) {
  SafepointManager SP;
  SP.beginPause();
  SP.endPause();
}

TEST(SafepointTest, MutatorParksAndResumes) {
  SafepointManager SP;
  std::atomic<int> Counter{0};
  std::atomic<bool> Stop{false};

  std::thread Mut([&] {
    SP.registerMutator();
    while (!Stop.load()) {
      if (SP.pollNeeded())
        SP.park();
      Counter.fetch_add(1);
    }
    SP.unregisterMutator();
  });

  // Let the mutator run, then stop the world and verify it stalls.
  while (Counter.load() < 1000)
    std::this_thread::yield();
  SP.beginPause();
  int At = Counter.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_LE(Counter.load(), At + 1); // parked (one increment may race)
  SP.endPause();
  int After = Counter.load();
  while (Counter.load() < After + 1000)
    std::this_thread::yield(); // resumed and making progress
  Stop.store(true);
  Mut.join();
}

TEST(SafepointTest, BlockedMutatorDoesNotBlockPause) {
  SafepointManager SP;
  std::atomic<bool> Proceed{false};
  std::thread Mut([&] {
    SP.registerMutator();
    {
      BlockedScope B(SP);
      while (!Proceed.load())
        std::this_thread::yield();
    }
    SP.unregisterMutator();
  });

  // Pause must complete although the mutator never polls while blocked.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  SP.beginPause();
  SP.endPause();
  Proceed.store(true);
  Mut.join();
}

TEST(SafepointTest, ExitBlockedWaitsOutPause) {
  SafepointManager SP;
  std::atomic<bool> Proceed{false};
  std::atomic<bool> Exited{false};
  std::thread Mut([&] {
    SP.registerMutator();
    SP.enterBlocked();
    while (!Proceed.load())
      std::this_thread::yield();
    SP.exitBlocked(); // must wait for endPause
    Exited.store(true);
    SP.unregisterMutator();
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  SP.beginPause();
  Proceed.store(true);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(Exited.load()); // still held by the pause
  SP.endPause();
  Mut.join();
  EXPECT_TRUE(Exited.load());
}

TEST(SafepointTest, ManyMutatorsAllPark) {
  SafepointManager SP;
  constexpr int N = 4;
  std::atomic<bool> Stop{false};
  std::atomic<long> Work{0};
  std::vector<std::thread> Muts;
  for (int I = 0; I < N; ++I)
    Muts.emplace_back([&] {
      SP.registerMutator();
      while (!Stop.load()) {
        if (SP.pollNeeded())
          SP.park();
        Work.fetch_add(1);
      }
      SP.unregisterMutator();
    });

  for (int Round = 0; Round < 10; ++Round) {
    SP.beginPause();
    long At = Work.load();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_LE(Work.load(), At + N);
    SP.endPause();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Stop.store(true);
  for (auto &T : Muts)
    T.join();
  EXPECT_EQ(SP.registeredMutators(), 0);
}

TEST(SafepointTest, RegistrationDuringPauseWaits) {
  SafepointManager SP;
  SP.beginPause();
  std::atomic<bool> Registered{false};
  std::thread Late([&] {
    SP.registerMutator();
    Registered.store(true);
    SP.unregisterMutator();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(Registered.load());
  SP.endPause();
  Late.join();
  EXPECT_TRUE(Registered.load());
}
