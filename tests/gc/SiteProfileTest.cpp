//===- tests/gc/SiteProfileTest.cpp --------------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// The allocation-site profiling extension (INTERNALS §13): the registry
// and HCSGC_ALLOC_SITE intern stable ids; the bare SiteProfileTable ages
// its hot-byte EWMA into warm/cold routes and decays mispredictions
// back; a full runtime routes a persistently cold site through the
// pretenure TLAB; equal seeds produce identical profiles.
//
//===----------------------------------------------------------------------===//

#include "gc/SiteProfile.h"
#include "runtime/Runtime.h"
#include "support/Random.h"

#include "TestSeeds.h"
#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace hcsgc;
using hcsgc::test::testSeed;

namespace {

SiteId macroSite() { return HCSGC_ALLOC_SITE("sp.test.macro"); }

} // namespace

TEST(SiteProfileTest, RegistryInternsStableIds) {
  SiteRegistry &R = SiteRegistry::instance();
  SiteId A = R.intern("sp.test.a");
  SiteId B = R.intern("sp.test.b");
  EXPECT_NE(A, UnknownSiteId);
  EXPECT_NE(B, UnknownSiteId);
  EXPECT_NE(A, B);
  EXPECT_EQ(R.intern("sp.test.a"), A);
  EXPECT_EQ(R.nameOf(A), "sp.test.a");
  EXPECT_EQ(R.nameOf(B), "sp.test.b");
  EXPECT_EQ(R.nameOf(UnknownSiteId), "unknown");
  // Out-of-range ids resolve to the unknown name, never crash.
  EXPECT_EQ(R.nameOf(static_cast<SiteId>(0xFFFF)), "unknown");
  EXPECT_GE(R.count(), 3u);
}

TEST(SiteProfileTest, AllocSiteMacroCachesOneId) {
  SiteId First = macroSite();
  EXPECT_NE(First, UnknownSiteId);
  EXPECT_EQ(macroSite(), First);
  EXPECT_EQ(SiteRegistry::instance().nameOf(First), "sp.test.macro");
  // A second textual occurrence of the same name shares the id.
  EXPECT_EQ(HCSGC_ALLOC_SITE("sp.test.macro"), First);
}

TEST(SiteProfileTest, EwmaAgesColdSiteThroughWarmToCold) {
  // ProfileCycles=2 -> alpha=2/3; a site surviving with zero hot bytes
  // decays 1.0 -> 1/3 -> 1/9 -> 1/27, but routes only move once the
  // site has ProfileCycles of evidence.
  SiteProfileTable T(2);
  const SiteId S = 7;
  T.noteAllocation(S, 1000, /*Pretenured=*/false);
  EXPECT_EQ(T.routeOf(S), SiteRoute::Hot);

  T.noteSurvival(S, 1000, /*Hot=*/false);
  T.endCycle();
  EXPECT_EQ(T.routeOf(S), SiteRoute::Hot) << "one cycle is not evidence";

  T.noteSurvival(S, 1000, false);
  T.endCycle();
  EXPECT_EQ(T.routeOf(S), SiteRoute::Warm) << "ewma 1/9 is warm";

  T.noteSurvival(S, 1000, false);
  T.endCycle();
  EXPECT_EQ(T.routeOf(S), SiteRoute::Cold) << "ewma 1/27 < ColdEwmaMax";

  std::vector<SiteStats> Snap = T.snapshot();
  ASSERT_EQ(Snap.size(), 1u);
  EXPECT_EQ(Snap[0].Id, S);
  EXPECT_EQ(Snap[0].AllocatedBytes, 1000u);
  EXPECT_EQ(Snap[0].SurvivedBytes, 3000u);
  EXPECT_EQ(Snap[0].ObservedCycles, 3u);
  EXPECT_LT(Snap[0].HotEwma, SiteProfileTable::ColdEwmaMax);
}

TEST(SiteProfileTest, HotSiteKeepsHotRoute) {
  SiteProfileTable T(2);
  const SiteId S = 3;
  for (int C = 0; C < 6; ++C) {
    T.noteAllocation(S, 512, false);
    T.noteSurvival(S, 512, /*Hot=*/true);
    T.endCycle();
    EXPECT_EQ(T.routeOf(S), SiteRoute::Hot) << "cycle " << C;
  }
}

TEST(SiteProfileTest, FullyDyingSiteCountsAsColdEvidence) {
  // A site whose objects all die before the walk never shows up in the
  // livemap; the allocation window alone must still drive it cold —
  // short-lived garbage has no business on hot pages either.
  SiteProfileTable T(2);
  const SiteId S = 9;
  for (int C = 0; C < 3; ++C) {
    T.noteAllocation(S, 4096, false);
    T.endCycle();
  }
  EXPECT_EQ(T.routeOf(S), SiteRoute::Cold);
}

TEST(SiteProfileTest, MispredictionDecaysBackToHot) {
  SiteProfileTable T(2);
  const SiteId S = 5;
  for (int C = 0; C < 4; ++C) {
    T.noteAllocation(S, 1000, false);
    T.noteSurvival(S, 1000, false);
    T.endCycle();
  }
  ASSERT_EQ(T.routeOf(S), SiteRoute::Cold);
  // The phase changes: survivors start getting touched. One fully hot
  // cycle lifts the EWMA by 2/3 — straight back above WarmEwmaMax.
  T.noteSurvival(S, 1000, /*Hot=*/true);
  T.endCycle();
  EXPECT_EQ(T.routeOf(S), SiteRoute::Hot)
      << "re-heated site must leave the pretenure route";
}

TEST(SiteProfileTest, IdleCyclesLeaveProfilesUntouched) {
  // Cycles where a site neither allocates nor survives are not evidence:
  // the EWMA and route must be exactly where the last active cycle left
  // them (a paused workload must not drift toward any verdict).
  SiteProfileTable T(4);
  const SiteId S = 11;
  T.noteAllocation(S, 100, false);
  T.noteSurvival(S, 100, true);
  T.endCycle();
  std::vector<SiteStats> Before = T.snapshot();
  for (int C = 0; C < 5; ++C)
    T.endCycle();
  std::vector<SiteStats> After = T.snapshot();
  ASSERT_EQ(Before.size(), 1u);
  ASSERT_EQ(After.size(), 1u);
  EXPECT_DOUBLE_EQ(After[0].HotEwma, Before[0].HotEwma);
  EXPECT_EQ(After[0].ObservedCycles, Before[0].ObservedCycles);
  EXPECT_EQ(After[0].Route, Before[0].Route);
}

TEST(SiteProfileTest, OutOfRangeSitesShareTheUnknownSlot) {
  SiteProfileTable T(2);
  const SiteId Overflow =
      static_cast<SiteId>(SiteProfileTable::MaxSites + 17);
  T.noteAllocation(Overflow, 256, false);
  T.noteAllocation(UnknownSiteId, 256, false);
  std::vector<SiteStats> Snap = T.snapshot();
  ASSERT_EQ(Snap.size(), 1u);
  EXPECT_EQ(Snap[0].Id, UnknownSiteId);
  EXPECT_EQ(Snap[0].AllocatedBytes, 512u);
}

namespace {

/// Per-site (alloc, survived, route) triple for the determinism check.
struct SiteDigest {
  std::string Name;
  uint64_t AllocatedBytes;
  uint64_t SurvivedBytes;
  SiteRoute Route;
  bool operator==(const SiteDigest &O) const {
    return Name == O.Name && AllocatedBytes == O.AllocatedBytes &&
           SurvivedBytes == O.SurvivedBytes && Route == O.Route;
  }
};

/// Single-threaded seeded workload with explicit GC points: two "keep"
/// generations that survive (one touched, one not) plus immediate
/// garbage, all tagged. Everything that feeds the profile — allocation
/// order, cycle boundaries, hotness sampling — is deterministic.
std::vector<SiteDigest> runSeededSiteWorkload() {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 512 * 1024;
  Cfg.MaxHeapBytes = 16u << 20;
  Cfg.Hotness = true;
  Cfg.SiteProfiling = true;
  Cfg.SiteProfileCycles = 2;
  Cfg.TriggerFraction = 1.0; // only the explicit requestGcAndWait cycles
  Runtime RT(Cfg);
  ClassId Obj = RT.registerClass("sp.det.Obj", 0, 128);
  auto M = RT.attachMutator();
  std::vector<SiteDigest> Out;
  {
    SplitMix64 Rng(testSeed(0x517E));
    Root Hot(*M), Cold(*M), Tmp(*M);
    M->allocateRefArray(Hot, 128, HCSGC_ALLOC_SITE("sp.det.table"));
    M->allocateRefArray(Cold, 128, HCSGC_ALLOC_SITE("sp.det.table"));
    for (int Round = 0; Round < 5; ++Round) {
      for (int I = 0; I < 400; ++I) {
        uint64_t Dice = Rng.nextBelow(3);
        if (Dice == 0) {
          M->allocate(Tmp, Obj, HCSGC_ALLOC_SITE("sp.det.touched"));
          M->storeElem(Hot, static_cast<uint32_t>(Rng.nextBelow(128)),
                       Tmp);
        } else if (Dice == 1) {
          M->allocate(Tmp, Obj, HCSGC_ALLOC_SITE("sp.det.archived"));
          M->storeElem(Cold, static_cast<uint32_t>(Rng.nextBelow(128)),
                       Tmp);
        } else {
          M->allocate(Tmp, Obj, HCSGC_ALLOC_SITE("sp.det.scratch"));
        }
      }
      // Touch the hot generation so its site keeps hot evidence; the
      // archived generation survives untouched.
      for (uint32_t I = 0; I < 128; ++I)
        M->loadElem(Hot, I, Tmp);
      M->requestGcAndWait();
    }
    SiteProfileTable *Prof = RT.heap().siteProfile();
    EXPECT_NE(Prof, nullptr);
    for (const SiteStats &St : Prof->snapshot())
      if (St.Name.rfind("sp.det.", 0) == 0)
        Out.push_back(
            {St.Name, St.AllocatedBytes, St.SurvivedBytes, St.Route});
  }
  M.reset();
  return Out;
}

} // namespace

TEST(SiteProfileTest, EqualSeedsProduceIdenticalProfiles) {
  std::vector<SiteDigest> A = runSeededSiteWorkload();
  std::vector<SiteDigest> B = runSeededSiteWorkload();
  ASSERT_GE(A.size(), 3u);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_TRUE(A[I] == B[I])
        << A[I].Name << ": alloc " << A[I].AllocatedBytes << "/"
        << B[I].AllocatedBytes << " survived " << A[I].SurvivedBytes
        << "/" << B[I].SurvivedBytes;
  }
}

TEST(SiteProfileTest, ColdSiteRoutesThroughPretenureTlab) {
  // End to end: a tagged site whose objects survive untouched must earn
  // a non-hot route, after which its allocations flow through the
  // secondary TLAB and the site.* mirrors see pretenured bytes.
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 512 * 1024;
  Cfg.MaxHeapBytes = 16u << 20;
  Cfg.Hotness = true;
  Cfg.SiteProfiling = true;
  Cfg.SiteProfileCycles = 2;
  Cfg.TriggerFraction = 1.0;
  Runtime RT(Cfg);
  ClassId Obj = RT.registerClass("sp.cold.Obj", 0, 256);
  auto M = RT.attachMutator();
  SiteId Cold = HCSGC_ALLOC_SITE("sp.cold.archive");
  {
    Root Arr(*M), Tmp(*M);
    M->allocateRefArray(Arr, 512);
    // Eight rounds: every round's newborn cohort is genuinely hot for
    // its first cycle (the mutator touched it at birth, and relocation
    // attribution sees that), so the site's hot fraction converges on
    // newborns/pool and needs a few cycles to sink below the warm
    // threshold.
    uint32_t Next = 0;
    for (int Round = 0; Round < 8; ++Round) {
      for (int I = 0; I < 64; ++I) {
        M->allocate(Tmp, Obj, Cold);
        M->storeElem(Arr, Next++ % 512, Tmp);
      }
      M->requestGcAndWait();
    }
    SiteProfileTable *Prof = RT.heap().siteProfile();
    ASSERT_NE(Prof, nullptr);
    EXPECT_NE(Prof->routeOf(Cold), SiteRoute::Hot)
        << "untouched survivors never demoted the site";

    // Allocations after the verdict take the pretenure path.
    for (int I = 0; I < 64; ++I) {
      M->allocate(Tmp, Obj, Cold);
      M->storeElem(Arr, Next++ % 512, Tmp);
    }
    uint64_t Pretenured = 0;
    for (const SiteStats &St : Prof->snapshot())
      if (St.Id == Cold)
        Pretenured = St.PretenuredBytes;
    EXPECT_GT(Pretenured, 0u);
    EXPECT_GT(RT.metrics().counterValue("alloc.tlab.pretenure_refills"),
              0u);
    // One more cycle publishes the mirrored counter.
    M->requestGcAndWait();
    EXPECT_GT(RT.metrics().counterValue("site.pretenured_bytes"), 0u);
    EXPECT_GT(RT.metrics().counterValue("site.tagged_bytes"), 0u);
  }
  M.reset();
  VerifyResult V = RT.verifyHeap();
  EXPECT_TRUE(V.ok()) << (V.Errors.empty() ? "" : V.Errors.front());
}
