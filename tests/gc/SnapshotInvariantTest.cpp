//===- tests/gc/SnapshotInvariantTest.cpp -------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Heap-snapshot (locality observatory) invariants:
//
//  - every captured page record is internally consistent (hot <= live <=
//    used, WLB recomputes exactly from the recorded inputs);
//  - the EC decision audit is bit-exact: re-running the §3.1.3 selection
//    offline (replayEcSelection) from the audited inputs reproduces the
//    collector's recorded accept set byte-for-byte, at COLDCONFIDENCE
//    0.0, 0.5 and 1.0;
//  - every page the audit says was selected appears as an
//    ec_page_selected trace event of the same cycle (it actually entered
//    a relocation set rather than being silently dropped);
//  - capture acquires zero allocator shard locks (the walk rides the
//    lock-free active-page registries).
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

using namespace hcsgc;

namespace {

GcConfig snapConfig(double ColdConf) {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 1024 * 1024;
  Cfg.MaxHeapBytes = 32u << 20;
  Cfg.Hotness = true;
  Cfg.ColdConfidence = ColdConf;
  Cfg.SnapshotLogEnabled = true;
  Cfg.TraceEnabled = true;
  Cfg.TraceBufferEvents = size_t(1) << 17;
  return Cfg;
}

/// Array of leaf objects, three GC rounds touching every other element in
/// between: pages carry a hot/cold mix so WLB actually differs from live
/// bytes at non-zero confidence.
void runMixedWorkload(Runtime &RT) {
  ClassId Cls = RT.registerClass("si.Obj", 0, 24);
  auto M = RT.attachMutator();
  {
    Root Arr(*M), Tmp(*M);
    const uint32_t N = 5000;
    M->allocateRefArray(Arr, N);
    for (uint32_t I = 0; I < N; ++I) {
      M->allocate(Tmp, Cls);
      M->storeElem(Arr, I, Tmp);
    }
    for (int Round = 0; Round < 3; ++Round) {
      M->requestGcAndWait();
      for (uint32_t I = 0; I < N; I += 2)
        M->loadElem(Arr, I, Tmp);
    }
  }
  M.reset();
}

} // namespace

TEST(SnapshotInvariantTest, PageRecordsAreConsistent) {
  Runtime RT(snapConfig(0.5));
  runMixedWorkload(RT);
  std::vector<CycleSnapshot> Log = RT.collectSnapshots();
  ASSERT_GE(Log.size(), 2u) << "no snapshots captured";

  size_t Pages = 0;
  for (const CycleSnapshot &S : Log) {
    // Two captures per cycle, in order, sorted pages.
    uint64_t PrevBegin = 0;
    for (const PageRecord &P : S.Pages) {
      ++Pages;
      EXPECT_GT(P.PageBegin, PrevBegin) << "pages not sorted/unique";
      PrevBegin = P.PageBegin;
      EXPECT_LE(P.HotBytes, P.LiveBytes) << "hot bytes exceed live";
      EXPECT_LE(P.LiveBytes, P.UsedBytes) << "live bytes exceed used";
      EXPECT_LE(P.UsedBytes, P.PageSize);
      // The recorded WLB must recompute exactly from the recorded
      // inputs under the capture's confidence.
      EXPECT_EQ(P.Wlb, wlbFormula(P.LiveBytes, P.HotBytes,
                                  S.Hotness != 0, S.ColdConfidence));
      if (P.EcSelected)
        EXPECT_EQ(P.State, SnapPageState::RelocSource);
    }
  }
  EXPECT_GT(Pages, 0u);

  // Both capture points appear, and AfterMark precedes AfterEc within a
  // cycle (the log is chronological).
  std::map<uint64_t, std::vector<SnapshotPoint>> ByCycle;
  for (const CycleSnapshot &S : Log)
    ByCycle[S.Cycle].push_back(S.Point);
  for (const auto &[Cycle, Points] : ByCycle) {
    ASSERT_EQ(Points.size(), 2u) << "cycle " << Cycle;
    EXPECT_EQ(Points[0], SnapshotPoint::AfterMark);
    EXPECT_EQ(Points[1], SnapshotPoint::AfterEc);
  }
}

TEST(SnapshotInvariantTest, EcReplayIsByteExactAcrossConfidences) {
  for (double Conf : {0.0, 0.5, 1.0}) {
    SCOPED_TRACE("ColdConfidence=" + std::to_string(Conf));
    Runtime RT(snapConfig(Conf));
    runMixedWorkload(RT);
    std::vector<CycleSnapshot> Log = RT.collectSnapshots();

    size_t Audited = 0, SelectedTotal = 0;
    for (const CycleSnapshot &S : Log) {
      if (S.Point != SnapshotPoint::AfterEc)
        continue;
      ASSERT_TRUE(S.HasAudit) << "AfterEc capture without audit";
      ++Audited;
      const EcAudit &A = S.Audit;
      EXPECT_EQ(A.Cycle, S.Cycle);
      EXPECT_EQ(A.ColdConfidence, Conf);
      ASSERT_FALSE(A.Entries.empty());

      // The recorded weight of every small candidate must be exactly
      // the shared formula applied to the recorded inputs.
      for (const EcAuditEntry &E : A.Entries) {
        EXPECT_LE(E.HotBytes, E.LiveBytes);
        bool IsCandidateVerdict =
            E.Verdict == EcVerdict::Selected ||
            E.Verdict == EcVerdict::RejectedThreshold ||
            E.Verdict == EcVerdict::RejectedBudget;
        if (E.SizeClass == SnapSizeClass::Small && IsCandidateVerdict &&
            !A.RelocateAll)
          EXPECT_EQ(E.Weight, wlbFormula(E.LiveBytes, E.HotBytes,
                                         A.Hotness != 0,
                                         A.ColdConfidence));
      }

      // Offline replay must reproduce the collector's accept set
      // byte-for-byte.
      std::vector<uint64_t> Replayed = replayEcSelection(A);
      std::vector<uint64_t> Recorded = auditSelectedPages(A);
      EXPECT_EQ(Replayed, Recorded)
          << "cycle " << S.Cycle << ": offline replay diverged from the "
          << "live selector";
      SelectedTotal += Recorded.size();

      // The snapshot's EC-selected pages and the audit agree.
      std::set<uint64_t> SnapSelected;
      for (const PageRecord &P : S.Pages)
        if (P.EcSelected)
          SnapSelected.insert(P.PageBegin);
      for (uint64_t B : Recorded)
        EXPECT_TRUE(SnapSelected.count(B))
            << "audit-selected page 0x" << std::hex << B
            << " not RelocSource in the snapshot";
    }
    EXPECT_GE(Audited, 3u);
    EXPECT_GT(SelectedTotal, 0u)
        << "selection accepted nothing; replay check was vacuous";
  }
}

TEST(SnapshotInvariantTest, AuditedSelectionsAppearInTrace) {
  Runtime RT(snapConfig(0.5));
  runMixedWorkload(RT);
  CollectedTrace T = RT.collectTrace();
  std::vector<CycleSnapshot> Log = RT.collectSnapshots();

  // (cycle, page begin) of every ec_page_selected trace event.
  std::set<std::pair<uint64_t, uint64_t>> Traced;
  for (const TraceEvent &E : T.Events)
    if (E.Kind == TraceEventKind::EcPageSelected)
      Traced.insert({E.Cycle, E.A});

  size_t Checked = 0;
  for (const CycleSnapshot &S : Log) {
    if (!S.HasAudit)
      continue;
    for (const EcAuditEntry &E : S.Audit.Entries) {
      if (E.Verdict != EcVerdict::Selected)
        continue;
      ++Checked;
      EXPECT_TRUE(Traced.count({S.Audit.Cycle, E.PageBegin}))
          << "cycle " << S.Audit.Cycle << " selected page 0x" << std::hex
          << E.PageBegin << " never traced as selected";
    }
  }
  EXPECT_GT(Checked, 0u);
}

TEST(SnapshotInvariantTest, CaptureAcquiresNoShardLocks) {
  Runtime RT(snapConfig(0.5));
  runMixedWorkload(RT);
  RT.driver().waitIdle();

  // The heap is idle: any shard-lock acquisition between the two reads
  // below can only come from the capture itself.
  uint64_t Before =
      RT.metrics().counterValue("alloc.shard.lock_acquisitions");
  RT.heap().captureSnapshot(SnapshotPoint::AfterMark,
                            RT.heap().currentCycle(), nullptr);
  uint64_t After =
      RT.metrics().counterValue("alloc.shard.lock_acquisitions");
  EXPECT_EQ(Before, After)
      << "snapshot capture took an allocator shard lock";

  // And the capture actually recorded pages.
  std::vector<CycleSnapshot> Log = RT.collectSnapshots();
  ASSERT_FALSE(Log.empty());
  EXPECT_FALSE(Log.back().Pages.empty());
  EXPECT_GT(RT.metrics().counterValue("snapshot.captures"), 0u);
  EXPECT_GT(RT.metrics().counterValue("snapshot.pages_recorded"), 0u);
}

TEST(SnapshotInvariantTest, TemperatureCapturesRecomputeAndReplay) {
  // With TEMPERATURE on, every small-page WLB in the log must recompute
  // exactly through the generalized per-tier formula, the recorded tier
  // bytes must partition the live bytes on every page the post-mark
  // accumulation covered, and the offline EC replay must stay bit-exact
  // (the audit carries the per-tier inputs the live selector consumed).
  GcConfig Cfg = snapConfig(1.0);
  Cfg.Temperature = true;
  Cfg.ColdPage = true;
  Cfg.ColdTempCycles = 2;
  Cfg.ColdReclaim = ColdReclaimMode::Simulate;
  Runtime RT(Cfg);
  runMixedWorkload(RT);
  std::vector<CycleSnapshot> Log = RT.collectSnapshots();
  ASSERT_GE(Log.size(), 2u);

  size_t TieredPages = 0, Audited = 0, SelectedTotal = 0;
  for (const CycleSnapshot &S : Log) {
    EXPECT_EQ(S.Temperature, 1);
    for (const PageRecord &P : S.Pages) {
      uint64_t TierSum = 0;
      for (unsigned T = 0; T < SnapTempTiers; ++T)
        TierSum += P.TempBytes[T];
      if (P.SizeClass == SnapSizeClass::Small) {
        EXPECT_EQ(P.Wlb, wlbTempFormula(P.LiveBytes, P.TempBytes,
                                        S.Hotness != 0, S.ColdConfidence));
        if (P.AllocSeq < S.Cycle) {
          // Covered by this cycle's accumulation walk: the four tiers
          // partition the live bytes exactly. (Pages born during the
          // cycle are recorded zeroed and fall back to WLB == live.)
          EXPECT_EQ(TierSum, P.LiveBytes)
              << "cycle " << S.Cycle << " page 0x" << std::hex
              << P.PageBegin;
          if (TierSum > 0)
            ++TieredPages;
        }
      } else {
        // Medium pages carry no temperature plane.
        EXPECT_EQ(TierSum, 0u);
        EXPECT_EQ(P.Wlb, wlbFormula(P.LiveBytes, P.HotBytes,
                                    S.Hotness != 0, S.ColdConfidence));
      }
    }
    if (S.Point != SnapshotPoint::AfterEc)
      continue;
    ASSERT_TRUE(S.HasAudit);
    ++Audited;
    EXPECT_EQ(S.Audit.Temperature, 1);
    for (const EcAuditEntry &E : S.Audit.Entries) {
      bool IsCandidateVerdict = E.Verdict == EcVerdict::Selected ||
                                E.Verdict == EcVerdict::RejectedThreshold ||
                                E.Verdict == EcVerdict::RejectedBudget;
      if (E.SizeClass == SnapSizeClass::Small && IsCandidateVerdict &&
          !S.Audit.RelocateAll) {
        EXPECT_EQ(E.Weight,
                  wlbTempFormula(E.LiveBytes, E.TempBytes,
                                 S.Audit.Hotness != 0,
                                 S.Audit.ColdConfidence));
      }
    }
    std::vector<uint64_t> Recorded = auditSelectedPages(S.Audit);
    EXPECT_EQ(replayEcSelection(S.Audit), Recorded)
        << "cycle " << S.Cycle << ": temperature replay diverged";
    SelectedTotal += Recorded.size();
  }
  EXPECT_GT(TieredPages, 0u) << "accumulation never saw a settled page";
  EXPECT_GE(Audited, 3u);
  EXPECT_GT(SelectedTotal, 0u) << "replay check was vacuous";
}
