//===- tests/gc/TemperatureTest.cpp --------------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Tests the multi-cycle temperature extension (INTERNALS §13): knob
// dependencies, the atomicity of racing temperature bumps on shared
// nibble words (run under TSan in CI), the temp.* tier accounting, and
// the full proven-cold pipeline — decay to temperature 0, cold-streak
// routing onto dedicated cold pages, and the simulated madvise pass that
// reports their bytes as reclaimable RSS.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

#include <gtest/gtest.h>

#include <thread>

using namespace hcsgc;

namespace {

GcConfig tempConfig() {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 1024 * 1024;
  Cfg.MaxHeapBytes = 32u << 20;
  Cfg.Hotness = true;
  Cfg.Temperature = true;
  return Cfg;
}

} // namespace

TEST(TemperatureTest, KnobValidation) {
  GcConfig Cfg;
  Cfg.Temperature = true; // requires Hotness
  EXPECT_FALSE(Cfg.knobsValid());
  Cfg.Hotness = true;
  EXPECT_TRUE(Cfg.knobsValid());

  // Cold reclaim needs the full stack: proven-cold routing only exists
  // with Temperature + ColdPage.
  Cfg.ColdReclaim = ColdReclaimMode::Simulate;
  EXPECT_FALSE(Cfg.knobsValid());
  Cfg.ColdPage = true;
  EXPECT_TRUE(Cfg.knobsValid());
  Cfg.Temperature = false;
  EXPECT_FALSE(Cfg.knobsValid());
  Cfg.Temperature = true;
  Cfg.ColdReclaim = ColdReclaimMode::Madvise;
  EXPECT_TRUE(Cfg.knobsValid());
}

TEST(TemperatureTest, RacingBumpsOnSharedNibbleWordsStaySaturating) {
  // 16 granule nibbles share one atomic word; racing flagHot calls on
  // neighbouring 8-byte objects must neither lose bumps nor corrupt
  // neighbours. gc_tests runs under TSan in CI, which checks the
  // data-race half of that claim.
  constexpr size_t Size = 64 * 1024;
  std::unique_ptr<uint8_t[]> Buf(new uint8_t[Size + 8]);
  uintptr_t Begin =
      (reinterpret_cast<uintptr_t>(Buf.get()) + 7) & ~uintptr_t(7);
  Page P(Begin, Size, PageSizeClass::Small, /*Seq=*/1, /*TrackTemp=*/true);

  constexpr unsigned NumObjs = 64; // spans 4 nibble words
  constexpr unsigned NumThreads = 4;
  uintptr_t Objs[NumObjs];
  for (unsigned I = 0; I < NumObjs; ++I)
    Objs[I] = P.allocate(8);

  for (unsigned Round = 1; Round <= Page::MaxTemperature + 1; ++Round) {
    for (unsigned I = 0; I < NumObjs; ++I)
      P.markLive(Objs[I], 8);
    std::vector<std::thread> Threads;
    for (unsigned T = 0; T < NumThreads; ++T)
      Threads.emplace_back([&, T] {
        // Interleaved subsets: every word sees all four threads.
        for (unsigned I = T; I < NumObjs; I += NumThreads)
          P.flagHot(Objs[I], 8);
      });
    for (auto &Th : Threads)
      Th.join();
    for (unsigned I = 0; I < NumObjs; ++I)
      EXPECT_EQ(P.temperatureOf(Objs[I]),
                std::min(Round, Page::MaxTemperature))
          << "object " << I << " round " << Round;
    EXPECT_EQ(P.hotBytes(), NumObjs * 8u);
    P.ageTemperature();
    P.clearMarkState();
  }
}

TEST(TemperatureTest, TierMetricsTrackTouchedVsUntouched) {
  Runtime RT(tempConfig());
  ClassId Cls = RT.registerClass("t.Obj", 0, 24);
  auto M = RT.attachMutator();
  const uint32_t N = 5000;
  {
    Root Arr(*M), Tmp(*M);
    M->allocateRefArray(Arr, N);
    for (uint32_t I = 0; I < N; ++I) {
      M->allocate(Tmp, Cls);
      M->storeElem(Arr, I, Tmp);
    }
    // Several cycles in which only the first half is ever re-touched:
    // that half climbs toward tier 3, the other half decays to tier 0.
    for (int Round = 0; Round < 5; ++Round) {
      for (uint32_t I = 0; I < N / 2; ++I)
        M->loadElem(Arr, I, Tmp);
      M->requestGcAndWait();
    }
  }
  M.reset();
  MetricsRegistry &MR = RT.metrics();
  EXPECT_GE(MR.counterValue("temp.aging_walks"), 5u);
  // The touched half reached tiers 2-3 (temp.hot_bytes), the untouched
  // half sat at tier 0 (temp.cold_bytes) in the later cycles.
  EXPECT_GT(MR.counterValue("temp.hot_bytes"), N / 2 * 16u);
  EXPECT_GT(MR.counterValue("temp.cold_bytes"), N / 2 * 16u);
}

TEST(TemperatureTest, ProvenColdSurvivorsSettleOnColdPagesAndAreAdvised) {
  // The full pipeline: untouched survivors decay to temperature 0,
  // accrue a cold streak >= ColdTempCycles, get routed onto dedicated
  // cold-tier pages at their next relocation, and — once those pages
  // settle (no longer relocation targets, dense enough to be rejected
  // by EC) — the simulated reclaim pass advises each exactly once and
  // reports their bytes as reclaimable RSS.
  GcConfig Cfg = tempConfig();
  Cfg.ColdPage = true;
  Cfg.ColdConfidence = 1.0;
  Cfg.ColdTempCycles = 2;
  Cfg.ColdReclaim = ColdReclaimMode::Simulate;
  Cfg.EvacBudgetPages = 16;
  Runtime RT(Cfg);
  ClassId Cls = RT.registerClass("t.Cold", 0, 24);
  auto M = RT.attachMutator();
  const uint32_t N = 6400; // 32B each = ~200KB, >= 3 small pages
  {
    Root Arr(*M), Tmp(*M);
    M->allocateRefArray(Arr, N);
    for (uint32_t I = 0; I < N; ++I) {
      M->allocate(Tmp, Cls);
      M->storeElem(Arr, I, Tmp);
    }
    // Hot survivors interleaved 1-in-32 so every source page keeps a
    // heated remnant: with full cold confidence its WLB collapses to
    // roughly the hot bytes, the page clears the EC threshold, and the
    // cold majority gets excavated. Halfway through, the working set
    // drifts to a different 1-in-32 stripe: the newly touched objects
    // re-heat the settled cold pages, EC selects them, and their
    // proven-cold majority is routed onto fresh cold-tier pages by the
    // relocator (the earlier rounds exercise the adoption path — pages
    // that cool down in place and join the cold tier without moving).
    for (int Round = 0; Round < 12; ++Round) {
      uint32_t Off = Round < 6 ? 0 : 1;
      for (uint32_t I = Off; I < N; I += 32)
        M->loadElem(Arr, I, Tmp);
      M->requestGcAndWait();
    }
  }
  M.reset();
  MetricsRegistry &MR = RT.metrics();
  const uint64_t PageBytes = 64 * 1024;
  EXPECT_GE(MR.counterValue("coldpage.pages_allocated"), 2u);
  EXPECT_GT(MR.counterValue("coldpage.relocated_bytes"), 2 * PageBytes);
  // Settled full cold pages were advised once each (Simulate counts the
  // bytes a real MADV_COLD pass would cover, without the syscall).
  EXPECT_GE(MR.counterValue("coldpage.madvise_calls"), 1u);
  EXPECT_GE(MR.counterValue("coldpage.madvise_bytes"), PageBytes);
  // Cold-resident bytes are sampled every cycle as reclaimable RSS; at
  // peak they covered at least one full page.
  const Histogram *Resident = MR.findHistogram("coldpage.resident_bytes");
  ASSERT_NE(Resident, nullptr);
  EXPECT_GT(Resident->count(), 0u);
  EXPECT_GE(Resident->max(), PageBytes);
}
