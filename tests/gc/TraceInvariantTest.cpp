//===- tests/gc/TraceInvariantTest.cpp ----------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Trace-driven protocol checks: instead of asserting on aggregate
// statistics, these tests collect the full GC event stream and check the
// paper's per-event ordering and selection rules:
//
//  - §3.1.2  the hotmap is reset at the start of every M/R phase, before
//            any hot flag of that cycle;
//  - §3.1.3  the WLB rule degenerates correctly at the COLDCONFIDENCE
//            boundaries 0.0 (wlb == live) and 1.0 (wlb == hot, unless
//            the page has no hot bytes);
//  - §3.2    under LAZYRELOCATE, GC threads perform no relocation work
//            between a cycle's end and the next cycle's begin (the
//            mutator owns that window); the only in-cycle GC relocations
//            are STW3 root healing.
//
// All tests run deterministic single-mutator workloads, so they are also
// exercised under TSan by the gc_tests suite.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

using namespace hcsgc;

namespace {

GcConfig tracedConfig() {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 1024 * 1024;
  Cfg.MaxHeapBytes = 32u << 20;
  Cfg.TraceEnabled = true;
  // Per-object events are plentiful; deep rings so no event this test
  // reasons about is dropped.
  Cfg.TraceBufferEvents = size_t(1) << 17;
  return Cfg;
}

/// Builds an array of \p N leaf objects and returns after \p Cycles GC
/// rounds, touching the even-indexed half between rounds so pages carry a
/// hot/cold mix. Returns the collected trace.
CollectedTrace runMixedHotnessWorkload(Runtime &RT, uint32_t N,
                                       int Cycles) {
  ClassId Cls = RT.registerClass("ti.Obj", 0, 24);
  auto M = RT.attachMutator();
  {
    Root Arr(*M), Tmp(*M);
    M->allocateRefArray(Arr, N);
    for (uint32_t I = 0; I < N; ++I) {
      M->allocate(Tmp, Cls);
      M->storeElem(Arr, I, Tmp);
    }
    for (int Round = 0; Round < Cycles; ++Round) {
      M->requestGcAndWait();
      // Touch every other element: every page keeps live-but-cold
      // neighbors next to hot objects.
      for (uint32_t I = 0; I < N; I += 2)
        M->loadElem(Arr, I, Tmp);
    }
  }
  M.reset();
  return RT.collectTrace();
}

} // namespace

// §3.1.2: "the hotmap is reset at the beginning of each M/R phase". The
// reset event of cycle N must sit between cycle N's begin and its STW1
// pause, and no hot flag attributed to cycle N may precede it (hot flags
// of cycle N only start once STW1 has flipped the mark color).
TEST(TraceInvariantTest, HotmapResetStartsEveryMarkPhase) {
  GcConfig Cfg = tracedConfig();
  Cfg.Hotness = true;
  Runtime RT(Cfg);
  CollectedTrace T = runMixedHotnessWorkload(RT, 5000, 3);

  std::map<uint64_t, uint64_t> CycleBeginNs, ResetNs, Stw1BeginNs;
  for (const TraceEvent &E : T.Events) {
    switch (E.Kind) {
    case TraceEventKind::CycleBegin:
      CycleBeginNs[E.Cycle] = E.TimeNs;
      break;
    case TraceEventKind::HotmapReset:
      EXPECT_EQ(ResetNs.count(E.Cycle), 0u)
          << "two hotmap resets in cycle " << E.Cycle;
      ResetNs[E.Cycle] = E.TimeNs;
      break;
    case TraceEventKind::PauseBegin:
      if (static_cast<GcPhase>(E.A) == GcPhase::Stw1)
        Stw1BeginNs[E.Cycle] = E.TimeNs;
      break;
    default:
      break;
    }
  }

  ASSERT_GE(CycleBeginNs.size(), 3u);
  for (const auto &[Cycle, BeginNs] : CycleBeginNs) {
    ASSERT_EQ(ResetNs.count(Cycle), 1u)
        << "cycle " << Cycle << " has no hotmap reset";
    ASSERT_EQ(Stw1BeginNs.count(Cycle), 1u);
    EXPECT_GE(ResetNs[Cycle], BeginNs);
    EXPECT_LE(ResetNs[Cycle], Stw1BeginNs[Cycle])
        << "cycle " << Cycle
        << ": hotmap reset after STW1 — marking saw stale hotness";
  }

  size_t HotFlags = 0;
  for (const TraceEvent &E : T.Events) {
    if (E.Kind != TraceEventKind::HotFlag)
      continue;
    ++HotFlags;
    // A hot flag carries the cycle current at emission; that cycle's
    // hotmap reset must already have happened.
    ASSERT_EQ(ResetNs.count(E.Cycle), 1u)
        << "hot flag in cycle " << E.Cycle << " with no reset";
    EXPECT_GE(E.TimeNs, ResetNs[E.Cycle])
        << "hot flag recorded into a hotmap about to be cleared";
  }
  EXPECT_GT(HotFlags, 1000u) << "workload produced almost no hot flags";
}

// §3.1.3 boundary cases of wlb = hot + cold * (1 - confidence):
// confidence 0.0 treats cold as live (wlb == live bytes, plain ZGC), and
// confidence 1.0 discounts cold entirely (wlb == hot bytes) — except on
// pages with no hot bytes at all, where there is nothing to excavate and
// the rule falls back to live bytes.
TEST(TraceInvariantTest, WlbRespectsColdConfidenceBoundaries) {
  for (double Conf : {0.0, 1.0}) {
    SCOPED_TRACE("ColdConfidence=" + std::to_string(Conf));
    GcConfig Cfg = tracedConfig();
    Cfg.Hotness = true;
    Cfg.ColdConfidence = Conf;
    Runtime RT(Cfg);
    CollectedTrace T = runMixedHotnessWorkload(RT, 5000, 3);

    size_t Considered = 0, Mixed = 0;
    for (const TraceEvent &E : T.Events) {
      if (E.Kind == TraceEventKind::PhaseBegin &&
          static_cast<GcPhase>(E.A) == GcPhase::EcSelect) {
        // The selector must run with the configured knob values.
        EXPECT_DOUBLE_EQ(traceDoubleFromBits(E.B), Conf);
        EXPECT_EQ(E.C, 1u) << "hotness knob not observed by selector";
      }
      if (E.Kind != TraceEventKind::EcPageConsidered)
        continue;
      ++Considered;
      double Live = static_cast<double>(E.B);
      double Hot = static_cast<double>(E.C);
      double Wlb = traceDoubleFromBits(E.D);
      ASSERT_LE(Hot, Live);
      if (Hot > 0.0 && Hot < Live)
        ++Mixed;
      if (Conf == 0.0)
        EXPECT_DOUBLE_EQ(Wlb, Live);
      else
        EXPECT_DOUBLE_EQ(Wlb, Hot > 0.0 ? Hot : Live);
    }
    EXPECT_GT(Considered, 0u) << "EC selection considered no small page";
    EXPECT_GT(Mixed, 0u)
        << "no page with a hot/cold mix; boundary checks were vacuous";
  }
}

// §3.2 / Fig. 3: under LAZYRELOCATE the RE phase is deferred to the start
// of the next cycle, so between CycleEnd(N) and CycleBegin(N+1) only
// mutators relocate. Every GC-thread relocation attributed to cycle N
// must either lie inside cycle N's STW3 pause (root healing: "by the end
// of STW3, all roots pointing into EC are relocated") or happen at/after
// CycleBegin(N+1) (the deferred drain).
TEST(TraceInvariantTest, LazyRelocateGcWorkOnlyAfterNextCycleBegins) {
  GcConfig Cfg = tracedConfig();
  Cfg.LazyRelocate = true;
  Cfg.RelocateAllSmallPages = true;
  Runtime RT(Cfg);

  ClassId Cls = RT.registerClass("ti.L", 0, 24);
  auto M = RT.attachMutator();
  {
    Root Arr(*M), Tmp(*M);
    const uint32_t N = 4000;
    M->allocateRefArray(Arr, N);
    for (uint32_t I = 0; I < N; ++I) {
      M->allocate(Tmp, Cls);
      M->storeElem(Arr, I, Tmp);
    }
    for (int Round = 0; Round < 3; ++Round) {
      M->requestGcAndWait();
      // Touch only half: the untouched-but-live half is guaranteed
      // GC-drain work at the next cycle's start.
      for (uint32_t I = 0; I < N / 2; ++I)
        M->loadElem(Arr, I, Tmp);
    }
  }
  M.reset();
  CollectedTrace T = RT.collectTrace();

  std::map<uint64_t, uint64_t> CycleBeginNs;
  std::vector<std::pair<uint64_t, uint64_t>> Stw3; // pause windows
  std::map<uint64_t, uint64_t> OpenStw3;
  for (const TraceEvent &E : T.Events) {
    if (E.Kind == TraceEventKind::CycleBegin)
      CycleBeginNs[E.Cycle] = E.TimeNs;
    else if (E.Kind == TraceEventKind::PauseBegin &&
             static_cast<GcPhase>(E.A) == GcPhase::Stw3)
      OpenStw3[E.Cycle] = E.TimeNs;
    else if (E.Kind == TraceEventKind::PauseEnd &&
             static_cast<GcPhase>(E.A) == GcPhase::Stw3) {
      ASSERT_EQ(OpenStw3.count(E.Cycle), 1u);
      Stw3.emplace_back(OpenStw3[E.Cycle], E.TimeNs);
    }
  }
  ASSERT_GE(CycleBeginNs.size(), 3u);
  ASSERT_GE(Stw3.size(), 3u);

  auto InStw3 = [&Stw3](uint64_t Ns) {
    for (const auto &[B, E] : Stw3)
      if (Ns >= B && Ns <= E)
        return true;
    return false;
  };

  size_t CheckedDrain = 0, Healing = 0, ByMutator = 0;
  for (const TraceEvent &E : T.Events) {
    if (E.Kind != TraceEventKind::Relocation)
      continue;
    if (!E.GcThread) {
      ++ByMutator;
      continue; // mutators may relocate any time after STW3
    }
    if (InStw3(E.TimeNs)) {
      ++Healing; // STW3 root healing is the sanctioned exception
      continue;
    }
    auto Next = CycleBeginNs.find(E.Cycle + 1);
    if (Next == CycleBeginNs.end())
      continue; // EC still pending at collection time; no window yet
    EXPECT_GE(E.TimeNs, Next->second)
        << "GC thread relocated during cycle " << E.Cycle
        << "'s mutator window";
    ++CheckedDrain;
  }
  EXPECT_GT(CheckedDrain, 0u) << "no deferred-drain relocation checked";
  EXPECT_GT(ByMutator, 0u) << "mutator window produced no relocations";
  EXPECT_GT(Healing, 0u) << "STW3 healed no roots";
}
