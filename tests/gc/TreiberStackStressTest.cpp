//===- tests/gc/TreiberStackStressTest.cpp - lock-free free-list stress --===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hammers the CountedIndexStack — the lock-free cached-free-unit list
/// behind the allocator's zero-lock small-page refill — with the
/// interleavings the allocator produces: concurrent push (unit free),
/// pop (refill), and popAll+walk (flush-coalesce before a multi-unit
/// carve), plus an interleaving purpose-built to provoke the classic
/// Treiber ABA (pop in flight while the observed top is popped, recycled
/// through "page" use, and re-pushed). Each test closes with strict
/// accounting: every index is owned exactly once, nothing is lost,
/// nothing is duplicated. Runs under TSan in CI (gc_tests target), which
/// additionally checks that the release/acquire edges claimed in
/// TreiberStack.h and INTERNALS §11 suffice for the memory handoff —
/// each popper writes to the unit's "payload" without any extra fence.
///
//===----------------------------------------------------------------------===//

#include "heap/TreiberStack.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

using namespace hcsgc;

namespace {

/// Side-link storage + per-index payload/ownership, mirroring how the
/// allocator keeps Treiber links outside page memory.
struct Arena {
  explicit Arena(uint32_t N)
      : Links(N), Payload(N), Owned(N) {
    for (auto &L : Links)
      L.store(CountedIndexStack::Nil, std::memory_order_relaxed);
    for (auto &P : Payload)
      P.store(0, std::memory_order_relaxed);
    for (auto &O : Owned)
      O.store(false, std::memory_order_relaxed);
  }

  auto links() {
    return [this](uint32_t I) -> std::atomic<uint32_t> & {
      return Links[I];
    };
  }

  /// Claims exclusive ownership of \p Idx; fails the test if someone
  /// else already holds it (a duplicate pop — the ABA symptom).
  void claim(uint32_t Idx) {
    ASSERT_FALSE(Owned[Idx].exchange(true, std::memory_order_relaxed))
        << "index " << Idx << " popped by two owners";
  }
  void disown(uint32_t Idx) {
    ASSERT_TRUE(Owned[Idx].exchange(false, std::memory_order_relaxed))
        << "index " << Idx << " released without owner";
  }

  std::vector<std::atomic<uint32_t>> Links;
  /// Stand-in for the page memory a unit denotes: written plainly (no
  /// atomics) by whichever thread owns the unit, so TSan validates the
  /// stack's handoff edge.
  std::vector<std::atomic<uint64_t>> Payload;
  std::vector<std::atomic<bool>> Owned;
};

} // namespace

TEST(TreiberStackStressTest, SingleThreadLifoAndAccounting) {
  constexpr uint32_t N = 64;
  Arena A(N);
  CountedIndexStack S;
  ASSERT_TRUE(S.emptyApprox());
  ASSERT_EQ(S.pop(A.links()), CountedIndexStack::Nil);

  for (uint32_t I = 0; I < N; ++I)
    S.push(I, A.links());
  EXPECT_EQ(S.sizeApprox(), N);

  // LIFO: the most recently pushed index pops first (the allocator
  // relies on this for address-ordered reuse within a carved batch).
  for (uint32_t I = N; I-- > 0;)
    EXPECT_EQ(S.pop(A.links()), I);
  EXPECT_EQ(S.pop(A.links()), CountedIndexStack::Nil);
  EXPECT_EQ(S.sizeApprox(), 0u);

  // popAll detaches the chain for a private walk.
  for (uint32_t I = 0; I < N; ++I)
    S.push(I, A.links());
  uint32_t Idx = S.popAll();
  uint32_t Walked = 0;
  while (Idx != CountedIndexStack::Nil) {
    ++Walked;
    Idx = A.Links[Idx].load(std::memory_order_relaxed);
  }
  S.noteDrained(Walked);
  EXPECT_EQ(Walked, N);
  EXPECT_EQ(S.sizeApprox(), 0u);
  EXPECT_TRUE(S.emptyApprox());
}

TEST(TreiberStackStressTest, ConcurrentPushPopFlushBalances) {
  // The allocator's full mix: per-thread pop/use/push churn, with one
  // thread periodically draining the whole stack via popAll (the flush
  // before a multi-unit carve) and re-pushing the drained units.
  constexpr uint32_t N = 256;
  constexpr unsigned Threads = 4;
  constexpr unsigned OpsPerThread = 20000;
  Arena A(N);
  CountedIndexStack S;
  for (uint32_t I = 0; I < N; ++I)
    S.push(I, A.links());

  std::atomic<uint64_t> Pops{0};
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < Threads; ++T) {
    Ts.emplace_back([&, T] {
      for (unsigned Op = 0; Op < OpsPerThread; ++Op) {
        if (T == 0 && Op % 512 == 0) {
          // Flush: detach everything, walk the private chain, re-push.
          uint32_t Idx = S.popAll();
          uint32_t Drained = 0;
          while (Idx != CountedIndexStack::Nil) {
            uint32_t Next = A.Links[Idx].load(std::memory_order_relaxed);
            A.claim(Idx);
            ++Drained;
            A.disown(Idx);
            S.push(Idx, A.links());
            Idx = Next;
          }
          if (Drained)
            S.noteDrained(Drained);
          continue;
        }
        uint32_t Idx = S.pop(A.links());
        if (Idx == CountedIndexStack::Nil)
          continue;
        A.claim(Idx);
        // Plain use of the handed-off "unit memory": if the stack's
        // release/acquire edges were wrong, TSan would flag this store
        // racing the previous owner's.
        A.Payload[Idx].store(
            (static_cast<uint64_t>(T) << 32) | Op,
            std::memory_order_relaxed);
        Pops.fetch_add(1, std::memory_order_relaxed);
        A.disown(Idx);
        S.push(Idx, A.links());
      }
    });
  }
  for (auto &T : Ts)
    T.join();

  // Accounting: all N indices are back on the stack, each exactly once.
  EXPECT_GT(Pops.load(), 0u);
  EXPECT_EQ(S.sizeApprox(), N);
  std::vector<bool> Seen(N, false);
  uint32_t Idx;
  uint32_t Count = 0;
  while ((Idx = S.pop(A.links())) != CountedIndexStack::Nil) {
    ASSERT_LT(Idx, N);
    ASSERT_FALSE(Seen[Idx]) << "index " << Idx << " on the stack twice";
    Seen[Idx] = true;
    ++Count;
  }
  EXPECT_EQ(Count, N) << "units lost from the free list";
}

TEST(TreiberStackStressTest, AbaProvokingInterleavingStaysLinear) {
  // The classic Treiber ABA shape, run in a tight loop: thread B parks
  // with the head (A-top) loaded; thread A pops A and the index under it
  // (B'), uses both, and re-pushes A — same top index, different chain.
  // With a naive (uncounted) head, B's CAS would now succeed and install
  // its stale next-link, resurrecting B' while B' is owned elsewhere:
  // the double-ownership claim() below would fire. The counted head
  // makes B's CAS fail on the version, so the structure stays linear.
  //
  // The provocation is probabilistic per iteration (it needs B to lose
  // the race while A completes pop-pop-push), so hammer it: with two
  // alternating threads and 30k iterations the window is hit constantly.
  constexpr uint32_t N = 8;
  constexpr unsigned Iters = 30000;
  Arena A(N);
  CountedIndexStack S;
  for (uint32_t I = 0; I < N; ++I)
    S.push(I, A.links());

  std::atomic<bool> Stop{false};
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < 2; ++T) {
    Ts.emplace_back([&, T] {
      for (unsigned It = 0; It < Iters && !Stop.load(); ++It) {
        // Pop two (A and the index B observed as next), touch their
        // payloads, re-push in reverse: the former top returns to the
        // top with a different successor — the ABA trigger.
        uint32_t X = S.pop(A.links());
        if (X == CountedIndexStack::Nil)
          continue;
        A.claim(X);
        uint32_t Y = S.pop(A.links());
        A.Payload[X].store(It, std::memory_order_relaxed);
        if (Y != CountedIndexStack::Nil) {
          A.claim(Y);
          A.Payload[Y].store(It, std::memory_order_relaxed);
          A.disown(Y);
          S.push(Y, A.links());
        }
        A.disown(X);
        S.push(X, A.links());
      }
      Stop.store(true);
    });
  }
  for (auto &T : Ts)
    T.join();

  // Linearity check: every index present exactly once.
  std::vector<bool> Seen(N, false);
  uint32_t Idx;
  uint32_t Count = 0;
  while ((Idx = S.pop(A.links())) != CountedIndexStack::Nil) {
    ASSERT_LT(Idx, N);
    ASSERT_FALSE(Seen[Idx])
        << "ABA: index " << Idx << " resurrected onto the stack";
    Seen[Idx] = true;
    ++Count;
  }
  EXPECT_EQ(Count, N);
}
