//===- tests/gc/VerifierTest.cpp -----------------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gc/Verifier.h"
#include "runtime/Runtime.h"
#include "support/Random.h"

#include "TestSeeds.h"

#include <gtest/gtest.h>

using namespace hcsgc;

namespace {

GcConfig vConfig() {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 1024 * 1024;
  Cfg.MaxHeapBytes = 32u << 20;
  return Cfg;
}

} // namespace

TEST(VerifierTest, CleanHeapVerifies) {
  Runtime RT(vConfig());
  ClassId Node = RT.registerClass("v.Node", 2, 16);
  auto M = RT.attachMutator();
  {
    Root Table(*M), Tmp(*M), Other(*M);
    SplitMix64 Rng(test::testSeed(40));
    const uint32_t N = 2000;
    M->allocateRefArray(Table, N);
    for (uint32_t I = 0; I < N; ++I) {
      M->allocate(Tmp, Node);
      M->storeElem(Table, I, Tmp);
    }
    for (uint32_t I = 0; I < N; ++I) {
      M->loadElem(Table, I, Tmp);
      M->loadElem(Table, static_cast<uint32_t>(Rng.nextBelow(N)), Other);
      M->storeRef(Tmp, 0, Other);
    }
    VerifyResult R = RT.verifyHeap();
    EXPECT_TRUE(R.ok()) << (R.Errors.empty() ? "" : R.Errors[0]);
    EXPECT_GE(R.ObjectsVisited, N);
    EXPECT_GT(R.RefsChecked, N);
  }
  M.reset();
}

TEST(VerifierTest, VerifiesAfterRelocationCycles) {
  GcConfig Cfg = vConfig();
  Cfg.RelocateAllSmallPages = true;
  Cfg.LazyRelocate = true;
  Runtime RT(Cfg);
  ClassId Node = RT.registerClass("v.R", 1, 16);
  auto M = RT.attachMutator();
  {
    Root Head(*M), Cur(*M), Tmp(*M);
    M->allocate(Head, Node);
    M->copyRoot(Head, Cur);
    for (int I = 0; I < 5000; ++I) {
      M->allocate(Tmp, Node);
      M->storeRef(Cur, 0, Tmp);
      M->copyRoot(Tmp, Cur);
    }
    // After a lazy cycle the heap is full of stale-colored references
    // into evacuating pages; the verifier must resolve them through
    // forwarding without complaining.
    M->requestGcAndWait();
    VerifyResult R = RT.verifyHeap();
    EXPECT_TRUE(R.ok()) << (R.Errors.empty() ? "" : R.Errors[0]);
    EXPECT_GE(R.ObjectsVisited, 5000u);
    M->requestGcAndWait();
    VerifyResult R2 = RT.verifyHeap();
    EXPECT_TRUE(R2.ok()) << (R2.Errors.empty() ? "" : R2.Errors[0]);
    EXPECT_GT(R.StaleRefsResolved + R2.StaleRefsResolved, 0u);
  }
  M.reset();
}

TEST(VerifierTest, DetectsCorruptedReference) {
  Runtime RT(vConfig());
  ClassId Node = RT.registerClass("v.C", 1, 16);
  auto M = RT.attachMutator();
  GlobalRoot *G = RT.createGlobalRoot();
  {
    Root A(*M);
    M->allocate(A, Node);
    // Plant a reference with a legal color but a bogus address well past
    // the object, in a root the verifier scans.
    Oop Good = A.rawOop();
    G->poisonForTests(
        makeOop(oopAddr(Good) + (size_t(64) << 20), oopColor(Good)));
    VerifyResult R = RT.verifyHeap();
    EXPECT_FALSE(R.ok());
    G->poisonForTests(NullOop);
    EXPECT_TRUE(RT.verifyHeap().ok());
  }
  M.reset();
  RT.destroyGlobalRoot(G);
}

TEST(VerifierTest, DetectsIllegalColorBits) {
  Runtime RT(vConfig());
  ClassId Node = RT.registerClass("v.B", 0, 8);
  auto M = RT.attachMutator();
  GlobalRoot *G = RT.createGlobalRoot();
  {
    Root A(*M);
    M->allocate(A, Node);
    // All three color bits set at once is never legal.
    G->poisonForTests(A.rawOop() | OopColorMask);
    VerifyResult R = RT.verifyHeap();
    EXPECT_FALSE(R.ok());
  }
  M.reset();
  RT.destroyGlobalRoot(G);
}
