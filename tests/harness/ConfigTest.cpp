//===- tests/harness/ConfigTest.cpp --------------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "harness/Config.h"

#include <gtest/gtest.h>

using namespace hcsgc;

TEST(ConfigTest, Table2Verbatim) {
  // Spot-check the exact Table 2 matrix.
  struct Row {
    int Id, H, CP, RA, LZ;
    double CC;
  };
  const Row Rows[] = {
      {0, 0, 0, 0, 0, 0.0},  {1, 0, 0, 0, 0, 0.0},
      {2, 0, 0, 0, 1, 0.0},  {3, 0, 0, 1, 0, 0.0},
      {4, 0, 0, 1, 1, 0.0},  {5, 1, 0, 0, 0, 0.0},
      {6, 1, 0, 0, 0, 0.5},  {7, 1, 0, 0, 0, 1.0},
      {8, 1, 0, 0, 1, 0.0},  {9, 1, 0, 0, 1, 0.5},
      {10, 1, 0, 0, 1, 1.0}, {11, 1, 1, 0, 0, 0.0},
      {12, 1, 1, 0, 0, 0.5}, {13, 1, 1, 0, 0, 1.0},
      {14, 1, 1, 0, 1, 0.0}, {15, 1, 1, 0, 1, 0.5},
      {16, 1, 1, 0, 1, 1.0}, {17, 1, 1, 1, 0, 0.0},
      {18, 1, 1, 1, 1, 0.0},
  };
  for (const Row &R : Rows) {
    KnobConfig K = table2Config(R.Id);
    EXPECT_EQ(K.Id, R.Id);
    EXPECT_EQ(K.Hotness, R.H == 1) << R.Id;
    EXPECT_EQ(K.ColdPage, R.CP == 1) << R.Id;
    EXPECT_EQ(K.RelocateAllSmallPages, R.RA == 1) << R.Id;
    EXPECT_EQ(K.LazyRelocate, R.LZ == 1) << R.Id;
    EXPECT_DOUBLE_EQ(K.ColdConfidence, R.CC) << R.Id;
  }
}

TEST(ConfigTest, AllConfigsAreValidKnobCombos) {
  for (const KnobConfig &K : allTable2Configs()) {
    GcConfig Cfg = applyKnobs(GcConfig(), K);
    EXPECT_TRUE(Cfg.knobsValid()) << K.Id;
  }
}

TEST(ConfigTest, Config0And1Identical) {
  // "We expect no significant difference between Configurations 0 and 1"
  // — they must be behaviourally identical here.
  GcConfig A = applyKnobs(GcConfig(), table2Config(0));
  GcConfig B = applyKnobs(GcConfig(), table2Config(1));
  EXPECT_EQ(A.Hotness, B.Hotness);
  EXPECT_EQ(A.ColdPage, B.ColdPage);
  EXPECT_EQ(A.RelocateAllSmallPages, B.RelocateAllSmallPages);
  EXPECT_EQ(A.LazyRelocate, B.LazyRelocate);
  EXPECT_DOUBLE_EQ(A.ColdConfidence, B.ColdConfidence);
}

TEST(ConfigTest, Config5TracksHotnessWithoutUsingIt) {
  // "Config 5 turns on hotness tracking but does not use it."
  KnobConfig K = table2Config(5);
  EXPECT_TRUE(K.Hotness);
  EXPECT_FALSE(K.ColdPage);
  EXPECT_DOUBLE_EQ(K.ColdConfidence, 0.0);
  EXPECT_FALSE(K.RelocateAllSmallPages);
  EXPECT_FALSE(K.LazyRelocate);
}

TEST(ConfigTest, DescribeConfig) {
  EXPECT_EQ(describeConfig(table2Config(0)), "ZGC");
  EXPECT_EQ(describeConfig(table2Config(16)), "H1 CP1 CC1.0 RA0 LZ1");
  EXPECT_EQ(describeConfig(table2Config(3)), "H0 CP0 CC0.0 RA1 LZ0");
}

TEST(ConfigTest, AllConfigsCount) {
  EXPECT_EQ(allTable2Configs().size(), 19u);
}

TEST(ConfigTest, TemperatureExtensionConfigs) {
  // Ids 19/20 extend the table beyond the paper: config 16 plus the
  // 2-bit temperature plane (19), plus simulated cold-page reclaim (20).
  // They are NOT part of allTable2Configs() — the paper sweep stays the
  // verbatim 19-row matrix.
  for (int Id : {19, 20}) {
    KnobConfig K = table2Config(Id);
    EXPECT_EQ(K.Id, Id);
    EXPECT_TRUE(K.Hotness);
    EXPECT_TRUE(K.ColdPage);
    EXPECT_DOUBLE_EQ(K.ColdConfidence, 1.0);
    EXPECT_TRUE(K.LazyRelocate);
    EXPECT_TRUE(K.Temperature);
    EXPECT_EQ(K.ColdReclaimSim, Id == 20);
    GcConfig Cfg = applyKnobs(GcConfig(), K);
    EXPECT_TRUE(Cfg.knobsValid()) << Id;
    EXPECT_EQ(Cfg.ColdReclaim, Id == 20 ? ColdReclaimMode::Simulate
                                        : ColdReclaimMode::Off);
  }
  EXPECT_EQ(describeConfig(table2Config(19)), "H1 CP1 CC1.0 RA0 LZ1 T1");
  EXPECT_EQ(describeConfig(table2Config(20)),
            "H1 CP1 CC1.0 RA0 LZ1 T1 CR1");
  // The paper configs keep their exact Table 2 labels — no suffix leaks.
  EXPECT_EQ(describeConfig(table2Config(16)), "H1 CP1 CC1.0 RA0 LZ1");
}

TEST(ConfigTest, SiteProfilingExtensionConfigs) {
  // Ids 21/22 are 19/20 plus allocation-site profiling and pretenuring.
  for (int Id : {21, 22}) {
    KnobConfig K = table2Config(Id);
    EXPECT_EQ(K.Id, Id);
    EXPECT_TRUE(K.Hotness);
    EXPECT_TRUE(K.Temperature);
    EXPECT_TRUE(K.SiteProfile);
    EXPECT_EQ(K.ColdReclaimSim, Id == 22);
    GcConfig Cfg = applyKnobs(GcConfig(), K);
    EXPECT_TRUE(Cfg.knobsValid()) << Id;
    EXPECT_TRUE(Cfg.SiteProfiling) << Id;
  }
  EXPECT_EQ(describeConfig(table2Config(21)),
            "H1 CP1 CC1.0 RA0 LZ1 T1 SP1");
  EXPECT_EQ(describeConfig(table2Config(22)),
            "H1 CP1 CC1.0 RA0 LZ1 T1 CR1 SP1");
  // The temperature-only ids stay untouched by the new suffix.
  EXPECT_EQ(describeConfig(table2Config(19)), "H1 CP1 CC1.0 RA0 LZ1 T1");
  // Site profiling requires hotness: the gate mirrors ColdPage's.
  GcConfig Bad;
  Bad.Hotness = false;
  Bad.SiteProfiling = true;
  EXPECT_FALSE(Bad.knobsValid());
}
