//===- tests/harness/RunnerTest.cpp --------------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "harness/Report.h"
#include "harness/Runner.h"

#include <gtest/gtest.h>

using namespace hcsgc;

namespace {

ExperimentSpec tinySpec() {
  ExperimentSpec Spec;
  Spec.Name = "test experiment";
  Spec.Runs = 2;
  Spec.Configs = {0, 16};
  Spec.BaseConfig = benchBaseConfig(8);
  Spec.BaseConfig.Geometry.SmallPageSize = 64 * 1024;
  Spec.BaseConfig.Geometry.MediumPageSize = 1024 * 1024;
  Spec.Body = [](Mutator &M, RunMeasurement &Meas) -> uint64_t {
    ClassId Cls = M.runtime().registerClass("rt.Obj", 0, 24);
    Root Arr(M), Tmp(M);
    M.allocateRefArray(Arr, 2000);
    uint64_t Sum = 0;
    for (uint32_t I = 0; I < 2000; ++I) {
      M.allocate(Tmp, Cls);
      M.storeWord(Tmp, 0, I);
      M.storeElem(Arr, I, Tmp);
    }
    M.requestGcAndWait();
    for (uint32_t I = 0; I < 2000; ++I) {
      M.loadElem(Arr, I, Tmp);
      Sum += static_cast<uint64_t>(M.loadWord(Tmp, 0));
    }
    Meas.Aux1 = 42.0;
    return Sum;
  };
  return Spec;
}

} // namespace

TEST(RunnerTest, CollectsAllConfigsAndRuns) {
  ExperimentResult R = runExperiment(tinySpec());
  ASSERT_EQ(R.Configs.size(), 2u);
  EXPECT_EQ(R.Configs[0].Knobs.Id, 0);
  EXPECT_EQ(R.Configs[1].Knobs.Id, 16);
  for (const ConfigResult &CR : R.Configs) {
    ASSERT_EQ(CR.Runs.size(), 2u);
    for (const RunMeasurement &Run : CR.Runs) {
      EXPECT_EQ(Run.Checksum, 2000ull * 1999 / 2);
      EXPECT_GT(Run.Loads, 0u);
      EXPECT_GT(Run.ExecSeconds, 0.0);
      EXPECT_GE(Run.GcCycles, 1u);
      EXPECT_DOUBLE_EQ(Run.Aux1, 42.0);
    }
  }
  EXPECT_FALSE(R.BaselineHeapSeries.empty());
}

TEST(RunnerTest, SingleCoreModelAddsGcCycles) {
  ExperimentSpec Unloaded = tinySpec();
  Unloaded.Configs = {0};
  Unloaded.Runs = 1;
  ExperimentSpec Loaded = Unloaded;
  Loaded.Model = CoreModel::SingleCore;
  double U = runExperiment(Unloaded)
                 .Configs[0]
                 .Runs[0]
                 .ExecSeconds;
  double L =
      runExperiment(Loaded).Configs[0].Runs[0].ExecSeconds;
  EXPECT_GT(L, U); // GC-thread cycles are charged to the one core
}

TEST(RunnerTest, ReportPrintsWithoutCrashing) {
  ExperimentResult R = runExperiment(tinySpec());
  std::FILE *Null = fopen("/dev/null", "w");
  ASSERT_NE(Null, nullptr);
  printReport(R, Null);
  printScoreReport(R, "aux1", "aux2", nullptr, Null);
  printScoreReport(R, "aux1", "aux2", "aux3", Null);
  fclose(Null);
}

TEST(RunnerTest, BenchBaseConfigScalesBudget) {
  GcConfig Small = benchBaseConfig(16);
  GcConfig Big = benchBaseConfig(256);
  EXPECT_TRUE(Small.EnableProbes);
  EXPECT_GT(Big.EvacBudgetPages, Small.EvacBudgetPages);
  EXPECT_EQ(Small.Geometry.SmallPageSize, 256u * 1024);
}
