//===- tests/heap/ForwardingTest.cpp -------------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "heap/Forwarding.h"

#include <gtest/gtest.h>

#include <thread>

using namespace hcsgc;

TEST(ForwardingTest, LookupMissReturnsZero) {
  ForwardingTable T(16);
  EXPECT_EQ(T.lookup(0), 0u);
  EXPECT_EQ(T.lookup(1234), 0u);
}

TEST(ForwardingTest, InsertThenLookup) {
  ForwardingTable T(16);
  bool Won = false;
  EXPECT_EQ(T.insertOrGet(64, 0xbeef0, Won), 0xbeef0u);
  EXPECT_TRUE(Won);
  EXPECT_EQ(T.lookup(64), 0xbeef0u);
  EXPECT_EQ(T.size(), 1u);
}

TEST(ForwardingTest, SecondInsertLoses) {
  // §2.2: "Whoever succeeds in the CAS will use its local value ...
  // while others will discard their local value."
  ForwardingTable T(16);
  bool Won = false;
  T.insertOrGet(8, 1000, Won);
  EXPECT_TRUE(Won);
  uintptr_t R = T.insertOrGet(8, 2000, Won);
  EXPECT_FALSE(Won);
  EXPECT_EQ(R, 1000u);
  EXPECT_EQ(T.size(), 1u);
}

TEST(ForwardingTest, OffsetZeroIsAValidKey) {
  ForwardingTable T(16);
  bool Won;
  EXPECT_EQ(T.insertOrGet(0, 4096, Won), 4096u);
  EXPECT_EQ(T.lookup(0), 4096u);
}

TEST(ForwardingTest, ManyEntries) {
  constexpr uint32_t N = 5000;
  ForwardingTable T(N);
  bool Won;
  for (uint32_t I = 0; I < N; ++I)
    T.insertOrGet(I * 8, 0x100000 + I * 16, Won);
  EXPECT_EQ(T.size(), N);
  for (uint32_t I = 0; I < N; ++I)
    EXPECT_EQ(T.lookup(I * 8), 0x100000u + I * 16);
  EXPECT_EQ(T.lookup(N * 8 + 8), 0u);
}

TEST(ForwardingTest, CapacitySizedForPopulation) {
  ForwardingTable T(100);
  EXPECT_GE(T.capacity(), 200u);
  ForwardingTable Tiny(0);
  EXPECT_GE(Tiny.capacity(), 16u);
}

TEST(ForwardingTest, ConcurrentInsertExactlyOneWinnerPerOffset) {
  constexpr uint32_t N = 2000;
  ForwardingTable T(N);
  std::atomic<uint32_t> Wins{0};
  std::vector<std::thread> Threads;
  for (int W = 0; W < 4; ++W)
    Threads.emplace_back([&, W] {
      for (uint32_t I = 0; I < N; ++I) {
        bool Won = false;
        uintptr_t V =
            T.insertOrGet(I * 8, 0x1000000 + I * 64 + W, Won);
        if (Won)
          Wins.fetch_add(1);
        // The winning value must be one of the candidates.
        EXPECT_GE(V, 0x1000000u + I * 64);
        EXPECT_LT(V, 0x1000000u + I * 64 + 4);
      }
    });
  for (auto &Th : Threads)
    Th.join();
  EXPECT_EQ(Wins.load(), N);
  EXPECT_EQ(T.size(), N);
  // Every reader agrees on the winner afterwards.
  for (uint32_t I = 0; I < N; ++I) {
    uintptr_t V = T.lookup(I * 8);
    EXPECT_NE(V, 0u);
  }
}
