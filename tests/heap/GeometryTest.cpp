//===- tests/heap/GeometryTest.cpp ---------------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "heap/Geometry.h"

#include <gtest/gtest.h>

using namespace hcsgc;

TEST(GeometryTest, Table1Defaults) {
  HeapGeometry G;
  EXPECT_EQ(G.SmallPageSize, size_t(2) << 20);
  EXPECT_EQ(G.MediumPageSize, size_t(32) << 20);
  EXPECT_EQ(G.smallObjectMax(), size_t(256) << 10);
  EXPECT_EQ(G.mediumObjectMax(), size_t(4) << 20);
  EXPECT_TRUE(G.valid());
}

TEST(GeometryTest, SizeClassBoundaries) {
  HeapGeometry G;
  EXPECT_EQ(G.sizeClassFor(0), PageSizeClass::Small);
  EXPECT_EQ(G.sizeClassFor(G.smallObjectMax()), PageSizeClass::Small);
  EXPECT_EQ(G.sizeClassFor(G.smallObjectMax() + 1), PageSizeClass::Medium);
  EXPECT_EQ(G.sizeClassFor(G.mediumObjectMax()), PageSizeClass::Medium);
  EXPECT_EQ(G.sizeClassFor(G.mediumObjectMax() + 1), PageSizeClass::Large);
}

TEST(GeometryTest, LargePagesAreSmallPageMultiples) {
  HeapGeometry G;
  // Table 1: "N x 2 (> 4) MB" — large pages round up to small-page
  // multiples and exceed the medium object limit.
  size_t Obj = (size_t(5) << 20) + 123;
  size_t PageBytes = G.pageSizeFor(PageSizeClass::Large, Obj);
  EXPECT_EQ(PageBytes % G.SmallPageSize, 0u);
  EXPECT_GE(PageBytes, Obj);
  EXPECT_LT(PageBytes - Obj, G.SmallPageSize);
}

TEST(GeometryTest, PageSizeForSmallMedium) {
  HeapGeometry G;
  EXPECT_EQ(G.pageSizeFor(PageSizeClass::Small, 100), G.SmallPageSize);
  EXPECT_EQ(G.pageSizeFor(PageSizeClass::Medium, 1 << 20),
            G.MediumPageSize);
}

TEST(GeometryTest, ScaledGeometryKeepsRatios) {
  HeapGeometry G;
  G.SmallPageSize = 256 * 1024;
  G.MediumPageSize = 4 * 1024 * 1024;
  EXPECT_TRUE(G.valid());
  EXPECT_EQ(G.smallObjectMax(), G.SmallPageSize / 8);
  EXPECT_EQ(G.mediumObjectMax(), G.MediumPageSize / 8);
}

TEST(GeometryTest, InvalidGeometriesRejected) {
  HeapGeometry G;
  G.SmallPageSize = 3 * 1024 * 1024; // not a power of two
  EXPECT_FALSE(G.valid());
  G = HeapGeometry();
  G.MediumPageSize = G.SmallPageSize; // must be strictly larger
  EXPECT_FALSE(G.valid());
  G = HeapGeometry();
  G.SmallPageSize = 2048; // below minimum
  EXPECT_FALSE(G.valid());
}
