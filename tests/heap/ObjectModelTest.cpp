//===- tests/heap/ObjectModelTest.cpp ------------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "heap/ObjectModel.h"

#include <gtest/gtest.h>

#include <vector>

using namespace hcsgc;

TEST(ObjectModelTest, HeaderRoundTrip) {
  uint64_t H = makeHeader(/*SizeWords=*/12, /*Cls=*/77, /*NumRefs=*/3,
                          OF_None);
  alignas(8) uint64_t Buf[16] = {H};
  ObjectView V(reinterpret_cast<uintptr_t>(Buf));
  EXPECT_EQ(V.sizeWords(), 12u);
  EXPECT_EQ(V.sizeBytes(), 96u);
  EXPECT_EQ(V.classId(), 77);
  EXPECT_EQ(V.numRefs(), 3u);
  EXPECT_FALSE(V.isRefArray());
}

TEST(ObjectModelTest, RefsFirstLayout) {
  alignas(8) uint64_t Buf[8];
  uintptr_t Addr = reinterpret_cast<uintptr_t>(Buf);
  initializeObject(Addr, /*SizeWords=*/6, /*Cls=*/1, /*NumRefs=*/2,
                   OF_None, 0);
  ObjectView V(Addr);
  EXPECT_EQ(V.refSlotAddr(0), Addr + 8);
  EXPECT_EQ(V.refSlotAddr(1), Addr + 16);
  EXPECT_EQ(V.payloadAddr(), Addr + 24);
  EXPECT_EQ(V.payloadBytes(), 24u);
}

TEST(ObjectModelTest, RefArrayLayout) {
  alignas(8) uint64_t Buf[12];
  uintptr_t Addr = reinterpret_cast<uintptr_t>(Buf);
  uint32_t Len = 5;
  size_t Bytes = refArraySizeFor(Len);
  EXPECT_EQ(Bytes, 8u + 8u + 40u);
  initializeObject(Addr, static_cast<uint32_t>(Bytes / 8), /*Cls=*/0, 0,
                   OF_RefArray, Len);
  ObjectView V(Addr);
  EXPECT_TRUE(V.isRefArray());
  EXPECT_EQ(V.numRefs(), Len);
  EXPECT_EQ(V.refSlotAddr(0), Addr + 16); // after header + length word
  EXPECT_EQ(V.refSlotAddr(4), Addr + 48);
}

TEST(ObjectModelTest, ObjectSizeForAlignsUp) {
  EXPECT_EQ(objectSizeFor(0, 0), 8u);   // header only
  EXPECT_EQ(objectSizeFor(0, 1), 16u);  // 1 payload byte rounds to 8
  EXPECT_EQ(objectSizeFor(0, 24), 32u); // the paper's element object
  EXPECT_EQ(objectSizeFor(1, 16), 32u);
  EXPECT_EQ(objectSizeFor(2, 0), 24u);
}

TEST(ObjectModelTest, PaperElementIs32Bytes) {
  // §4.4: "each pointing to a 32-byte object (including VM metadata)".
  EXPECT_EQ(objectSizeFor(/*NumRefs=*/0, /*PayloadBytes=*/24), 32u);
}

TEST(ObjectModelTest, SlotWritesVisibleThroughView) {
  alignas(8) uint64_t Buf[8];
  uintptr_t Addr = reinterpret_cast<uintptr_t>(Buf);
  initializeObject(Addr, 6, 9, 2, OF_None, 0);
  ObjectView V(Addr);
  *V.refSlot(0) = 0xdeadbeef;
  EXPECT_EQ(*reinterpret_cast<uint64_t *>(Addr + 8), 0xdeadbeefull);
}

TEST(ObjectModelTest, MaxFieldValues) {
  uint64_t H = makeHeader(0xffffffffu, 0xffff, 0xff, 0xff);
  alignas(8) uint64_t Buf[2] = {H, 0};
  ObjectView V(reinterpret_cast<uintptr_t>(Buf));
  EXPECT_EQ(V.sizeWords(), 0xffffffffu);
  EXPECT_EQ(V.classId(), 0xffff);
  EXPECT_EQ(V.flags(), 0xff);
}
