//===- tests/heap/PageAllocatorShardTest.cpp -----------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic single-thread tests of the sharded PageAllocator: shard
/// clamping, the one-lock-per-refill + batched-cache contract (via
/// allocStats), the all-shards fallback, and the lock-all cross-shard
/// merge that keeps exhaustion semantics identical to a single free-run
/// map. Concurrency coverage lives in tests/gc/PageAllocatorStressTest
/// (run under TSan in CI).
///
//===----------------------------------------------------------------------===//

#include "heap/PageAllocator.h"

#include <gtest/gtest.h>

#include <set>

using namespace hcsgc;

namespace {

// 64 KiB small / 1 MiB medium => a medium page spans 16 units.
HeapGeometry smallGeo() {
  HeapGeometry G;
  G.SmallPageSize = 64 * 1024;
  G.MediumPageSize = 1024 * 1024;
  return G;
}

} // namespace

TEST(PageAllocatorShardTest, ShardCountClampsToMediumGranularity) {
  // 16 general units = exactly one medium page: must collapse to a
  // single shard no matter how many are requested.
  PageAllocator Tiny(smallGeo(), 1 << 20, 1 << 20, 0, /*Shards=*/8);
  EXPECT_EQ(Tiny.shardCount(), 1u);

  // 768 general units comfortably fit 4 shards of >= 16 units each.
  PageAllocator Big(smallGeo(), 16 << 20, 0, 0, /*Shards=*/4);
  EXPECT_EQ(Big.shardCount(), 4u);
}

TEST(PageAllocatorShardTest, SmallRefillTakesOneLockAndBatchesCache) {
  PageAllocator A(smallGeo(), 16 << 20, 0, 0, /*Shards=*/4,
                  /*CacheBatch=*/8);
  ASSERT_EQ(A.shardCount(), 4u);

  // One batch worth of small pages from one thread: every allocation
  // takes exactly one shard lock (its home shard), the first carves a
  // batch (miss), the rest hit the cache.
  for (unsigned I = 0; I < 8; ++I)
    ASSERT_NE(A.allocatePage(PageSizeClass::Small, 64, 0), nullptr);

  PageAllocator::AllocStats S = A.allocStats();
  EXPECT_EQ(S.ShardLockAcquisitions, 8u);
  EXPECT_EQ(S.FallbackScans, 0u);
  EXPECT_EQ(S.CacheMisses, 1u);
  EXPECT_EQ(S.CacheHits, 7u);
  EXPECT_EQ(S.CrossShardTakes, 0u);
}

TEST(PageAllocatorShardTest, FallbackFindsUnitsInOtherShards) {
  // 64 general units across 4 shards of 16; max heap admits all 64. One
  // thread must be able to consume every shard's units through the
  // fallback scan, and exhaustion is declared only when the pool is
  // genuinely full.
  PageAllocator A(smallGeo(), 4 << 20, 4 << 20, 0, /*Shards=*/4);
  ASSERT_EQ(A.shardCount(), 4u);

  std::set<uintptr_t> Begins;
  for (unsigned I = 0; I < 64; ++I) {
    Page *P = A.allocatePage(PageSizeClass::Small, 64, 0);
    ASSERT_NE(P, nullptr) << "allocation " << I
                          << " failed with free units remaining";
    Begins.insert(P->begin());
  }
  EXPECT_EQ(Begins.size(), 64u) << "duplicate page address handed out";
  EXPECT_EQ(A.allocatePage(PageSizeClass::Small, 64, 0), nullptr);
  EXPECT_GE(A.allocStats().FallbackScans, 1u);
}

TEST(PageAllocatorShardTest, CrossShardMergeServesRunLargerThanAnyShard) {
  // 4 shards of 16 units; a 20-unit large page fits no single shard, so
  // it must come from the lock-all merged view spanning a partition
  // boundary — the request would have succeeded under a single run map,
  // so it must succeed here.
  PageAllocator A(smallGeo(), 4 << 20, 4 << 20, 0, /*Shards=*/4);
  ASSERT_EQ(A.shardCount(), 4u);

  size_t LargeBytes = 20 * 64 * 1024;
  Page *L = A.allocatePage(PageSizeClass::Large, LargeBytes, 0);
  ASSERT_NE(L, nullptr);
  EXPECT_EQ(L->size(), LargeBytes);
  EXPECT_EQ(A.allocStats().CrossShardTakes, 1u);

  // Releasing the spanning page returns each portion to its shard; the
  // whole pool must be small-allocatable again.
  A.releasePage(L);
  EXPECT_EQ(A.usedBytes(), 0u);
  for (unsigned I = 0; I < 64; ++I)
    ASSERT_NE(A.allocatePage(PageSizeClass::Small, 64, 0), nullptr);
  EXPECT_EQ(A.allocatePage(PageSizeClass::Small, 64, 0), nullptr);
}

TEST(PageAllocatorShardTest, MediumAllocFlushesCacheAndCoalesces) {
  // Single shard of 16 units. A small allocation carves a cache batch
  // out of the run map; after the small page is freed, a medium request
  // (all 16 units) is only satisfiable if the cached units are flushed
  // back and coalesced with the remaining run.
  PageAllocator A(smallGeo(), 1 << 20, 1 << 20, 0, /*Shards=*/1,
                  /*CacheBatch=*/8);
  ASSERT_EQ(A.shardCount(), 1u);

  Page *S = A.allocatePage(PageSizeClass::Small, 64, 0);
  ASSERT_NE(S, nullptr);
  uintptr_t Begin = S->begin();
  A.releasePage(S);

  Page *M = A.allocatePage(PageSizeClass::Medium, 100 * 1024, 0);
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->begin(), Begin) << "medium page should reuse the full run";
  EXPECT_EQ(A.usedBytes(), size_t(1) << 20);
}

TEST(PageAllocatorShardTest, RegistryIterationMatchesSnapshots) {
  PageAllocator A(smallGeo(), 8 << 20, 0, 0, /*Shards=*/4);
  std::set<Page *> Expect;
  for (unsigned I = 0; I < 24; ++I)
    Expect.insert(A.allocatePage(PageSizeClass::Small, 64, /*Seq=*/I));
  ASSERT_EQ(Expect.count(nullptr), 0u);

  // forEachActivePage visits each active page exactly once, and the
  // vector snapshot is just a materialization of the same walk.
  std::set<Page *> Seen;
  size_t Visits = 0;
  A.forEachActivePage([&](Page &P) {
    Seen.insert(&P);
    ++Visits;
  });
  EXPECT_EQ(Visits, Expect.size());
  EXPECT_EQ(Seen, Expect);
  EXPECT_EQ(A.activePagesSnapshot().size(), Expect.size());

  // Quarantine and release drop pages from the walk immediately.
  Page *Gone = *Expect.begin();
  Gone->setState(PageState::Quarantined);
  A.quarantinePage(Gone);
  Expect.erase(Gone);
  Seen.clear();
  A.forEachActivePage([&](Page &P) { Seen.insert(&P); });
  EXPECT_EQ(Seen, Expect);
  A.releasePage(Gone);

  Page *Freed = *Expect.rbegin();
  A.releasePage(Freed);
  Expect.erase(Freed);
  Seen.clear();
  A.forEachActivePage([&](Page &P) { Seen.insert(&P); });
  EXPECT_EQ(Seen, Expect);
}
