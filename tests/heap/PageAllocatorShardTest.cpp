//===- tests/heap/PageAllocatorShardTest.cpp -----------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic single-thread tests of the sharded PageAllocator: shard
/// clamping, the zero-locks-on-cache-hit + batched-cache contract (via
/// allocStats: locks == misses on the small path), adaptive batch sizing,
/// the all-shards fallback, the lock-all cross-shard merge that keeps
/// exhaustion semantics identical to a single free-run map, and the
/// once-per-shard batched quarantine release. Concurrency coverage lives
/// in tests/gc/PageAllocatorStressTest and tests/gc/TreiberStackStressTest
/// (run under TSan in CI).
///
//===----------------------------------------------------------------------===//

#include "heap/PageAllocator.h"

#include <gtest/gtest.h>

#include <set>

using namespace hcsgc;

namespace {

// 64 KiB small / 1 MiB medium => a medium page spans 16 units.
HeapGeometry smallGeo() {
  HeapGeometry G;
  G.SmallPageSize = 64 * 1024;
  G.MediumPageSize = 1024 * 1024;
  return G;
}

} // namespace

TEST(PageAllocatorShardTest, ShardCountClampsToMediumGranularity) {
  // 16 general units = exactly one medium page: must collapse to a
  // single shard no matter how many are requested.
  PageAllocator Tiny(smallGeo(), 1 << 20, 1 << 20, 0, /*Shards=*/8);
  EXPECT_EQ(Tiny.shardCount(), 1u);

  // 768 general units comfortably fit 4 shards of >= 16 units each.
  PageAllocator Big(smallGeo(), 16 << 20, 0, 0, /*Shards=*/4);
  EXPECT_EQ(Big.shardCount(), 4u);
}

TEST(PageAllocatorShardTest, SmallRefillLocksOnlyOnCacheMiss) {
  PageAllocator A(smallGeo(), 16 << 20, 0, 0, /*Shards=*/4,
                  /*CacheBatch=*/8);
  ASSERT_EQ(A.shardCount(), 4u);

  // One batch worth of small pages from one thread: the first carves a
  // batch under the shard lock (the only lock of the whole sequence),
  // the remaining seven are served entirely lock-free from the cache.
  for (unsigned I = 0; I < 8; ++I)
    ASSERT_NE(A.allocatePage(PageSizeClass::Small, 64, 0), nullptr);

  PageAllocator::AllocStats S = A.allocStats();
  EXPECT_EQ(S.ShardLockAcquisitions, 1u);
  EXPECT_EQ(S.CacheMisses, 1u);
  EXPECT_EQ(S.CacheHits, 7u);
  EXPECT_EQ(S.FallbackScans, 0u);
  EXPECT_EQ(S.CrossShardTakes, 0u);
}

TEST(PageAllocatorShardTest, FreedSmallPageIsReusedWithoutLocking) {
  PageAllocator A(smallGeo(), 16 << 20, 0, 0, /*Shards=*/4,
                  /*CacheBatch=*/8);

  Page *P = A.allocatePage(PageSizeClass::Small, 64, 0);
  ASSERT_NE(P, nullptr);
  uintptr_t Begin = P->begin();
  uint64_t LocksAfterCarve = A.allocStats().ShardLockAcquisitions;

  // Free + realloc: the unit goes back onto the lock-free cache and is
  // popped again with zero additional lock acquisitions — and as the
  // most recently freed unit it is the very next one handed out
  // (address reuse keeps the memory cache-warm).
  A.releasePage(P);
  Page *Q = A.allocatePage(PageSizeClass::Small, 64, 0);
  ASSERT_NE(Q, nullptr);
  EXPECT_EQ(Q->begin(), Begin);
  EXPECT_EQ(A.allocStats().ShardLockAcquisitions, LocksAfterCarve);
}

TEST(PageAllocatorShardTest, CacheBatchAdaptsToChurnAndToPressure) {
  // Single shard of 256 units, initial batch 2, max 16: repeated misses
  // with plenty of free space must double the carve batch (churn), and
  // draining the shard below 1/8 free must halve it again.
  PageAllocator A(smallGeo(), 16 << 20, 16 << 20, 0, /*Shards=*/1,
                  /*CacheBatch=*/2, /*CacheBatchMax=*/16);
  ASSERT_EQ(A.shardCount(), 1u);

  std::vector<Page *> Pages;
  // Drain most of the shard. Every 2-4-8-16 batch boundary is a miss,
  // and each miss with >1/8 free space grows the batch.
  for (unsigned I = 0; I < 200; ++I) {
    Page *P = A.allocatePage(PageSizeClass::Small, 64, 0);
    ASSERT_NE(P, nullptr);
    Pages.push_back(P);
  }
  PageAllocator::AllocStats Mid = A.allocStats();
  EXPECT_GE(Mid.CacheBatchGrows, 3u) << "2 -> 4 -> 8 -> 16 under churn";

  // Push the shard below 1/8 free (256/8 = 32 units): further carves
  // must shrink the batch instead.
  for (unsigned I = 0; I < 40; ++I) {
    Page *P = A.allocatePage(PageSizeClass::Small, 64, 0);
    ASSERT_NE(P, nullptr);
    Pages.push_back(P);
  }
  EXPECT_GE(A.allocStats().CacheBatchShrinks, 1u);

  for (Page *P : Pages)
    A.releasePage(P);
  EXPECT_EQ(A.usedBytes(), 0u);
}

TEST(PageAllocatorShardTest, QuarantineReleaseBatchesLocksPerShard) {
  PageAllocator A(smallGeo(), 16 << 20, 0, 0, /*Shards=*/4);
  ASSERT_EQ(A.shardCount(), 4u);

  // Allocate 32 pages (a single thread fills its home shard first) and
  // quarantine all of them at cycle 1.
  std::vector<Page *> Pages;
  for (unsigned I = 0; I < 32; ++I) {
    Page *P = A.allocatePage(PageSizeClass::Small, 64, 0);
    ASSERT_NE(P, nullptr);
    Pages.push_back(P);
  }
  for (Page *P : Pages) {
    P->setState(PageState::Quarantined);
    P->setQuarantineCycle(1);
    A.quarantinePage(P);
  }
  EXPECT_EQ(A.usedBytes(), 0u);
  EXPECT_EQ(A.quarantinedBytes(), 32u * 64 * 1024);

  // Cycle 1 is not yet expired at Cycle=1: nothing released, and idle
  // peeking must not hide the pages.
  EXPECT_EQ(A.releaseQuarantinedBefore(1), 0u);
  EXPECT_EQ(A.quarantinedBytes(), 32u * 64 * 1024);

  // At Cycle=2 all 32 pages retire in ONE pass taking each shard's lock
  // at most once: at most shardCount()+1 release-lock acquisitions for
  // 32 pages (vs 32 under per-page releasePage).
  uint64_t LocksBefore = A.allocStats().QuarantineReleaseLocks;
  EXPECT_EQ(A.releaseQuarantinedBefore(2), 32u);
  PageAllocator::AllocStats S = A.allocStats();
  EXPECT_LE(S.QuarantineReleaseLocks - LocksBefore, A.shardCount() + 1);
  EXPECT_EQ(S.QuarantinePagesReleased, 32u);
  EXPECT_EQ(A.quarantinedBytes(), 0u);

  // A pass over an all-idle allocator takes zero locks.
  uint64_t IdleBefore = A.allocStats().QuarantineReleaseLocks;
  EXPECT_EQ(A.releaseQuarantinedBefore(3), 0u);
  EXPECT_EQ(A.allocStats().QuarantineReleaseLocks, IdleBefore);

  // The address space is whole again: the units coalesced back and can
  // serve a cross-boundary large page.
  Page *L = A.allocatePage(PageSizeClass::Large, 20 * 64 * 1024, 0);
  ASSERT_NE(L, nullptr);
  A.releasePage(L);
}

TEST(PageAllocatorShardTest, FallbackFindsUnitsInOtherShards) {
  // 64 general units across 4 shards of 16; max heap admits all 64. One
  // thread must be able to consume every shard's units through the
  // fallback scan, and exhaustion is declared only when the pool is
  // genuinely full.
  PageAllocator A(smallGeo(), 4 << 20, 4 << 20, 0, /*Shards=*/4);
  ASSERT_EQ(A.shardCount(), 4u);

  std::set<uintptr_t> Begins;
  for (unsigned I = 0; I < 64; ++I) {
    Page *P = A.allocatePage(PageSizeClass::Small, 64, 0);
    ASSERT_NE(P, nullptr) << "allocation " << I
                          << " failed with free units remaining";
    Begins.insert(P->begin());
  }
  EXPECT_EQ(Begins.size(), 64u) << "duplicate page address handed out";
  EXPECT_EQ(A.allocatePage(PageSizeClass::Small, 64, 0), nullptr);
  EXPECT_GE(A.allocStats().FallbackScans, 1u);
}

TEST(PageAllocatorShardTest, CrossShardMergeServesRunLargerThanAnyShard) {
  // 4 shards of 16 units; a 20-unit large page fits no single shard, so
  // it must come from the lock-all merged view spanning a partition
  // boundary — the request would have succeeded under a single run map,
  // so it must succeed here.
  PageAllocator A(smallGeo(), 4 << 20, 4 << 20, 0, /*Shards=*/4);
  ASSERT_EQ(A.shardCount(), 4u);

  size_t LargeBytes = 20 * 64 * 1024;
  Page *L = A.allocatePage(PageSizeClass::Large, LargeBytes, 0);
  ASSERT_NE(L, nullptr);
  EXPECT_EQ(L->size(), LargeBytes);
  EXPECT_EQ(A.allocStats().CrossShardTakes, 1u);

  // Releasing the spanning page returns each portion to its shard; the
  // whole pool must be small-allocatable again.
  A.releasePage(L);
  EXPECT_EQ(A.usedBytes(), 0u);
  for (unsigned I = 0; I < 64; ++I)
    ASSERT_NE(A.allocatePage(PageSizeClass::Small, 64, 0), nullptr);
  EXPECT_EQ(A.allocatePage(PageSizeClass::Small, 64, 0), nullptr);
}

TEST(PageAllocatorShardTest, MediumAllocFlushesCacheAndCoalesces) {
  // Single shard of 16 units. A small allocation carves a cache batch
  // out of the run map; after the small page is freed, a medium request
  // (all 16 units) is only satisfiable if the cached units are flushed
  // back and coalesced with the remaining run.
  PageAllocator A(smallGeo(), 1 << 20, 1 << 20, 0, /*Shards=*/1,
                  /*CacheBatch=*/8);
  ASSERT_EQ(A.shardCount(), 1u);

  Page *S = A.allocatePage(PageSizeClass::Small, 64, 0);
  ASSERT_NE(S, nullptr);
  uintptr_t Begin = S->begin();
  A.releasePage(S);

  Page *M = A.allocatePage(PageSizeClass::Medium, 100 * 1024, 0);
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->begin(), Begin) << "medium page should reuse the full run";
  EXPECT_EQ(A.usedBytes(), size_t(1) << 20);
}

TEST(PageAllocatorShardTest, RegistryIterationMatchesSnapshots) {
  PageAllocator A(smallGeo(), 8 << 20, 0, 0, /*Shards=*/4);
  std::set<Page *> Expect;
  for (unsigned I = 0; I < 24; ++I)
    Expect.insert(A.allocatePage(PageSizeClass::Small, 64, /*Seq=*/I));
  ASSERT_EQ(Expect.count(nullptr), 0u);

  // forEachActivePage visits each active page exactly once, and the
  // vector snapshot is just a materialization of the same walk.
  std::set<Page *> Seen;
  size_t Visits = 0;
  A.forEachActivePage([&](Page &P) {
    Seen.insert(&P);
    ++Visits;
  });
  EXPECT_EQ(Visits, Expect.size());
  EXPECT_EQ(Seen, Expect);
  EXPECT_EQ(A.activePagesSnapshot().size(), Expect.size());

  // Quarantine and release drop pages from the walk immediately.
  Page *Gone = *Expect.begin();
  Gone->setState(PageState::Quarantined);
  A.quarantinePage(Gone);
  Expect.erase(Gone);
  Seen.clear();
  A.forEachActivePage([&](Page &P) { Seen.insert(&P); });
  EXPECT_EQ(Seen, Expect);
  A.releasePage(Gone);

  Page *Freed = *Expect.rbegin();
  A.releasePage(Freed);
  Expect.erase(Freed);
  Seen.clear();
  A.forEachActivePage([&](Page &P) { Seen.insert(&P); });
  EXPECT_EQ(Seen, Expect);
}
