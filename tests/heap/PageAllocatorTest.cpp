//===- tests/heap/PageAllocatorTest.cpp ----------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "heap/PageAllocator.h"

#include <gtest/gtest.h>

using namespace hcsgc;

namespace {

HeapGeometry smallGeo() {
  HeapGeometry G;
  G.SmallPageSize = 64 * 1024;
  G.MediumPageSize = 1024 * 1024;
  return G;
}

} // namespace

TEST(PageAllocatorTest, AllocatesZeroedSmallPage) {
  PageAllocator A(smallGeo(), 4 << 20);
  Page *P = A.allocatePage(PageSizeClass::Small, 100, 1);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->size(), 64u * 1024);
  EXPECT_EQ(P->allocSeq(), 1u);
  EXPECT_EQ(A.usedBytes(), 64u * 1024);
  for (size_t I = 0; I < P->size(); I += 4096)
    EXPECT_EQ(*reinterpret_cast<uint64_t *>(P->begin() + I), 0u);
}

TEST(PageAllocatorTest, PageTableCoversWholePage) {
  PageAllocator A(smallGeo(), 4 << 20);
  Page *P = A.allocatePage(PageSizeClass::Small, 100, 0);
  EXPECT_EQ(A.pageTable().lookup(P->begin()), P);
  EXPECT_EQ(A.pageTable().lookup(P->end() - 8), P);
}

TEST(PageAllocatorTest, MediumPageSpansMultipleUnits) {
  PageAllocator A(smallGeo(), 8 << 20);
  Page *P = A.allocatePage(PageSizeClass::Medium, 500000, 0);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->size(), 1024u * 1024);
  // Every small-page-sized unit inside must map to it.
  for (uintptr_t Addr = P->begin(); Addr < P->end(); Addr += 64 * 1024)
    EXPECT_EQ(A.pageTable().lookup(Addr), P);
}

TEST(PageAllocatorTest, LargePageRoundsToUnits) {
  PageAllocator A(smallGeo(), 8 << 20);
  size_t Obj = 200 * 1000; // > mediumObjectMax (128K)
  ASSERT_EQ(smallGeo().sizeClassFor(Obj), PageSizeClass::Large);
  Page *P = A.allocatePage(PageSizeClass::Large, Obj, 0);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->size() % (64 * 1024), 0u);
  EXPECT_GE(P->size(), Obj);
}

TEST(PageAllocatorTest, MaxHeapEnforced) {
  PageAllocator A(smallGeo(), 256 * 1024); // 4 small pages
  std::vector<Page *> Pages;
  for (int I = 0; I < 4; ++I) {
    Page *P = A.allocatePage(PageSizeClass::Small, 64, 0);
    ASSERT_NE(P, nullptr);
    Pages.push_back(P);
  }
  EXPECT_EQ(A.allocatePage(PageSizeClass::Small, 64, 0), nullptr);
  // Force bypasses the limit (relocation headroom).
  Page *Forced = A.allocatePage(PageSizeClass::Small, 64, 0, true);
  EXPECT_NE(Forced, nullptr);
}

TEST(PageAllocatorTest, ReleaseMakesRoomAgain) {
  PageAllocator A(smallGeo(), 128 * 1024); // 2 pages
  Page *P1 = A.allocatePage(PageSizeClass::Small, 64, 0);
  Page *P2 = A.allocatePage(PageSizeClass::Small, 64, 0);
  ASSERT_TRUE(P1 && P2);
  EXPECT_EQ(A.allocatePage(PageSizeClass::Small, 64, 0), nullptr);
  uintptr_t Freed = P1->begin();
  A.releasePage(P1);
  EXPECT_EQ(A.usedBytes(), 64u * 1024);
  Page *P3 = A.allocatePage(PageSizeClass::Small, 64, 0);
  ASSERT_NE(P3, nullptr);
  EXPECT_EQ(P3->begin(), Freed); // range reused
}

TEST(PageAllocatorTest, QuarantineAccountingAndRetire) {
  PageAllocator A(smallGeo(), 4 << 20);
  Page *P = A.allocatePage(PageSizeClass::Small, 64, 0);
  ASSERT_NE(P, nullptr);
  size_t PageBytes = P->size();
  P->setState(PageState::Quarantined);
  A.quarantinePage(P);
  EXPECT_EQ(A.usedBytes(), 0u);
  EXPECT_EQ(A.quarantinedBytes(), PageBytes);
  // Quarantined pages keep their page-table mapping (stale pointers are
  // still remapped through them).
  EXPECT_EQ(A.pageTable().lookup(P->begin()), P);
  EXPECT_EQ(A.quarantinedPagesSnapshot().size(), 1u);
  uintptr_t Begin = P->begin();
  A.releasePage(P);
  EXPECT_EQ(A.quarantinedBytes(), 0u);
  EXPECT_EQ(A.pageTable().lookup(Begin), nullptr);
}

TEST(PageAllocatorTest, RunCoalescingAllowsMediumAfterSmallFrees) {
  HeapGeometry Geo = smallGeo();
  // Reservation just big enough that a medium page requires coalesced
  // space (16 units reserved).
  PageAllocator A(Geo, 1 << 20, 1 << 20);
  std::vector<Page *> Small;
  for (int I = 0; I < 16; ++I) {
    Page *P = A.allocatePage(PageSizeClass::Small, 64, 0);
    ASSERT_NE(P, nullptr);
    Small.push_back(P);
  }
  EXPECT_EQ(A.allocatePage(PageSizeClass::Medium, 300000, 0), nullptr);
  for (Page *P : Small)
    A.releasePage(P);
  Page *M = A.allocatePage(PageSizeClass::Medium, 300000, 0);
  EXPECT_NE(M, nullptr);
}

TEST(PageAllocatorTest, ActiveSnapshotTracksPages) {
  PageAllocator A(smallGeo(), 4 << 20);
  EXPECT_TRUE(A.activePagesSnapshot().empty());
  Page *P1 = A.allocatePage(PageSizeClass::Small, 64, 0);
  Page *P2 = A.allocatePage(PageSizeClass::Small, 64, 0);
  auto Snap = A.activePagesSnapshot();
  EXPECT_EQ(Snap.size(), 2u);
  A.releasePage(P1);
  EXPECT_EQ(A.activePagesSnapshot().size(), 1u);
  EXPECT_EQ(A.activePagesSnapshot()[0], P2);
}
