//===- tests/heap/PageTableTest.cpp --------------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "heap/PageTable.h"

#include "heap/Page.h"

#include <gtest/gtest.h>

using namespace hcsgc;

namespace {

constexpr size_t Unit = 64 * 1024;

class PageTableTest : public ::testing::Test {
protected:
  PageTableTest()
      : Base(0x10000000), Table(Base, 16 * Unit, Unit),
        Small(Base + 2 * Unit, Unit, PageSizeClass::Small, 0),
        Medium(Base + 4 * Unit, 4 * Unit, PageSizeClass::Medium, 0) {}

  uintptr_t Base;
  PageTable Table;
  Page Small;
  Page Medium;
};

} // namespace

TEST_F(PageTableTest, EmptyLookupsAreNull) {
  EXPECT_EQ(Table.lookup(Base), nullptr);
  EXPECT_EQ(Table.lookup(Base + 15 * Unit), nullptr);
}

TEST_F(PageTableTest, InstallAndLookupSinglePage) {
  Table.install(&Small, 1);
  EXPECT_EQ(Table.lookup(Small.begin()), &Small);
  EXPECT_EQ(Table.lookup(Small.begin() + 100), &Small);
  EXPECT_EQ(Table.lookup(Small.end() - 8), &Small);
  // Neighboring units unaffected.
  EXPECT_EQ(Table.lookup(Small.begin() - 8), nullptr);
  EXPECT_EQ(Table.lookup(Small.end()), nullptr);
}

TEST_F(PageTableTest, MultiUnitPageFillsAllSlots) {
  Table.install(&Medium, 4);
  for (uintptr_t A = Medium.begin(); A < Medium.end(); A += Unit)
    EXPECT_EQ(Table.lookup(A), &Medium);
  EXPECT_EQ(Table.lookup(Medium.end()), nullptr);
}

TEST_F(PageTableTest, RemoveClearsExactRange) {
  Table.install(&Small, 1);
  Table.install(&Medium, 4);
  Table.remove(Medium.begin(), 4);
  EXPECT_EQ(Table.lookup(Small.begin()), &Small);
  for (uintptr_t A = Medium.begin(); A < Medium.end(); A += Unit)
    EXPECT_EQ(Table.lookup(A), nullptr);
}

TEST_F(PageTableTest, Covers) {
  EXPECT_TRUE(Table.covers(Base));
  EXPECT_TRUE(Table.covers(Base + 16 * Unit - 1));
  EXPECT_FALSE(Table.covers(Base + 16 * Unit));
  EXPECT_FALSE(Table.covers(Base - 1));
}

TEST_F(PageTableTest, ReinstallAfterRemove) {
  Table.install(&Small, 1);
  Table.remove(Small.begin(), 1);
  Page Fresh(Small.begin(), Unit, PageSizeClass::Small, 9);
  Table.install(&Fresh, 1);
  EXPECT_EQ(Table.lookup(Small.begin()), &Fresh);
}
