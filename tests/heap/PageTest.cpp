//===- tests/heap/PageTest.cpp -------------------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "heap/Page.h"

#include "heap/ObjectModel.h"

#include <gtest/gtest.h>

#include <thread>

using namespace hcsgc;

namespace {

class PageTest : public ::testing::Test {
protected:
  static constexpr size_t Size = 64 * 1024;
  PageTest()
      : Buf(new uint8_t[Size + 8]),
        Begin((reinterpret_cast<uintptr_t>(Buf.get()) + 7) & ~uintptr_t(7)),
        P(Begin, Size, PageSizeClass::Small, /*Seq=*/3) {}

  std::unique_ptr<uint8_t[]> Buf;
  uintptr_t Begin;
  Page P;
};

} // namespace

TEST_F(PageTest, BumpAllocation) {
  uintptr_t A = P.allocate(32);
  uintptr_t B = P.allocate(32);
  EXPECT_EQ(A, Begin);
  EXPECT_EQ(B, Begin + 32);
  EXPECT_EQ(P.used(), 64u);
  EXPECT_EQ(P.remaining(), Size - 64);
}

TEST_F(PageTest, AllocationAligns) {
  uintptr_t A = P.allocate(12); // rounds to 16
  uintptr_t B = P.allocate(8);
  EXPECT_EQ(B, A + 16);
}

TEST_F(PageTest, AllocationFailsWhenFull) {
  EXPECT_NE(P.allocate(Size), 0u);
  EXPECT_EQ(P.allocate(8), 0u);
}

TEST_F(PageTest, UndoAllocateOnlyAtTop) {
  uintptr_t A = P.allocate(32);
  uintptr_t B = P.allocate(32);
  EXPECT_FALSE(P.undoAllocate(A, 32)); // not the top
  EXPECT_TRUE(P.undoAllocate(B, 32));
  EXPECT_EQ(P.used(), 32u);
  EXPECT_EQ(P.allocate(32), B); // reusable
}

TEST_F(PageTest, LiveMarkingAccumulates) {
  uintptr_t A = P.allocate(32);
  uintptr_t B = P.allocate(48);
  EXPECT_TRUE(P.markLive(A, 32));
  EXPECT_FALSE(P.markLive(A, 32)); // second mark is a no-op
  EXPECT_TRUE(P.markLive(B, 48));
  EXPECT_EQ(P.liveBytes(), 80u);
  EXPECT_EQ(P.liveObjects(), 2u);
  EXPECT_TRUE(P.isLive(A));
  EXPECT_DOUBLE_EQ(P.liveRatio(), 80.0 / Size);
}

TEST_F(PageTest, HotMarkingSeparateFromLive) {
  uintptr_t A = P.allocate(32);
  P.markLive(A, 32);
  EXPECT_FALSE(P.isHot(A));
  EXPECT_TRUE(P.flagHot(A, 32));
  EXPECT_FALSE(P.flagHot(A, 32));
  EXPECT_EQ(P.hotBytes(), 32u);
  EXPECT_EQ(P.coldBytes(), 0u);
}

TEST_F(PageTest, ColdBytesIsLiveMinusHot) {
  uintptr_t A = P.allocate(32);
  uintptr_t B = P.allocate(64);
  P.markLive(A, 32);
  P.markLive(B, 64);
  P.flagHot(A, 32);
  EXPECT_EQ(P.coldBytes(), 64u);
}

TEST_F(PageTest, ClearMarkStateResetsEverything) {
  // "hotmap is reset at the beginning of each M/R phase; this renders
  // all objects cold effectively" (§3.1.2).
  uintptr_t A = P.allocate(32);
  P.markLive(A, 32);
  P.flagHot(A, 32);
  P.clearMarkState();
  EXPECT_EQ(P.liveBytes(), 0u);
  EXPECT_EQ(P.hotBytes(), 0u);
  EXPECT_EQ(P.liveObjects(), 0u);
  EXPECT_FALSE(P.isLive(A));
  EXPECT_FALSE(P.isHot(A));
}

TEST_F(PageTest, ForEachLiveObjectInAddressOrder) {
  std::vector<uintptr_t> Allocated;
  for (int I = 0; I < 10; ++I)
    Allocated.push_back(P.allocate(40));
  // Mark a subset, out of order.
  P.markLive(Allocated[7], 40);
  P.markLive(Allocated[2], 40);
  P.markLive(Allocated[9], 40);
  std::vector<uintptr_t> Seen;
  P.forEachLiveObject([&](uintptr_t A) { Seen.push_back(A); });
  ASSERT_EQ(Seen.size(), 3u);
  EXPECT_EQ(Seen[0], Allocated[2]);
  EXPECT_EQ(Seen[1], Allocated[7]);
  EXPECT_EQ(Seen[2], Allocated[9]);
}

TEST_F(PageTest, StateTransitions) {
  EXPECT_EQ(P.state(), PageState::Active);
  EXPECT_FALSE(P.isRelocSourceOrQuarantined());
  uintptr_t A = P.allocate(32);
  P.markLive(A, 32);
  P.beginEvacuation();
  EXPECT_EQ(P.state(), PageState::RelocSource);
  EXPECT_TRUE(P.isRelocSourceOrQuarantined());
  ASSERT_NE(P.forwarding(), nullptr);
  EXPECT_GE(P.forwarding()->capacity(), P.liveObjects());
  P.setState(PageState::Quarantined);
  P.setQuarantineCycle(42);
  EXPECT_EQ(P.quarantineCycle(), 42u);
  P.retireForwarding();
  EXPECT_EQ(P.forwarding(), nullptr);
}

TEST_F(PageTest, OffsetOf) {
  uintptr_t A = P.allocate(32);
  uintptr_t B = P.allocate(32);
  EXPECT_EQ(P.offsetOf(A), 0u);
  EXPECT_EQ(P.offsetOf(B), 32u);
}

TEST_F(PageTest, ConcurrentAllocationNoOverlap) {
  std::vector<std::vector<uintptr_t>> PerThread(4);
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&, T] {
      for (;;) {
        uintptr_t A = P.allocate(16);
        if (!A)
          break;
        PerThread[T].push_back(A);
      }
    });
  for (auto &T : Threads)
    T.join();
  std::vector<uintptr_t> All;
  for (auto &V : PerThread)
    All.insert(All.end(), V.begin(), V.end());
  std::sort(All.begin(), All.end());
  EXPECT_EQ(All.size(), Size / 16);
  for (size_t I = 1; I < All.size(); ++I)
    EXPECT_EQ(All[I], All[I - 1] + 16);
}

//===----------------------------------------------------------------------===//
// Temperature plane (TEMPERATURE knob, INTERNALS §13)
//===----------------------------------------------------------------------===//

namespace {

/// Same page shape as PageTest, but with the temperature plane armed.
class TempPageTest : public ::testing::Test {
protected:
  static constexpr size_t Size = 64 * 1024;
  TempPageTest()
      : Buf(new uint8_t[Size + 8]),
        Begin((reinterpret_cast<uintptr_t>(Buf.get()) + 7) & ~uintptr_t(7)),
        P(Begin, Size, PageSizeClass::Small, /*Seq=*/3,
          /*TrackTemp=*/true) {}

  /// The driver's pre-STW1 reset in miniature: age using last cycle's
  /// maps, then clear them. Callers re-mark live (and optionally hot)
  /// afterwards, as marking would.
  void endCycle() {
    P.ageTemperature();
    P.clearMarkState();
  }

  std::unique_ptr<uint8_t[]> Buf;
  uintptr_t Begin;
  Page P;
};

} // namespace

TEST_F(TempPageTest, UntrackedPageHasNoTemperaturePlane) {
  Page Plain(Begin, Size, PageSizeClass::Small, /*Seq=*/3);
  EXPECT_FALSE(Plain.tracksTemperature());
  uintptr_t A = Plain.allocate(32);
  Plain.markLive(A, 32);
  Plain.flagHot(A, 32);
  EXPECT_EQ(Plain.temperatureOf(A), 0u);
  EXPECT_EQ(Plain.coldStreakOf(A), 0u);
  Plain.seedTemperature(A, 3, 3); // no-op, must not crash
  Plain.ageTemperature();         // no-op, must not crash
  EXPECT_EQ(Plain.temperatureOf(A), 0u);
}

TEST_F(TempPageTest, RepeatedTouchesSaturateAtMaxTemperature) {
  ASSERT_TRUE(P.tracksTemperature());
  uintptr_t A = P.allocate(32);
  for (unsigned Round = 1; Round <= Page::MaxTemperature + 2; ++Round) {
    P.markLive(A, 32);
    P.flagHot(A, 32);
    EXPECT_EQ(P.temperatureOf(A),
              std::min(Round, Page::MaxTemperature))
        << "round " << Round;
    EXPECT_EQ(P.coldStreakOf(A), 0u);
    endCycle();
  }
}

TEST_F(TempPageTest, DecayIsMonotoneOneStepPerCycle) {
  uintptr_t A = P.allocate(32);
  // Heat to saturation.
  for (unsigned I = 0; I < Page::MaxTemperature; ++I) {
    P.markLive(A, 32);
    P.flagHot(A, 32);
    endCycle();
  }
  // Live-but-untouched cycles: temperature decays exactly one step per
  // aging walk and never rises. The streak stays zero until the granule
  // reaches temperature 0 — and the decaying cycle itself counts as the
  // first cold cycle (streak 1), keeping the nibble nonzero.
  unsigned Prev = Page::MaxTemperature;
  for (unsigned Cycle = 0; Cycle < Page::MaxTemperature; ++Cycle) {
    P.markLive(A, 32);
    endCycle();
    unsigned Cur = P.temperatureOf(A);
    EXPECT_EQ(Cur, Prev - 1) << "cycle " << Cycle;
    EXPECT_EQ(P.coldStreakOf(A), Cur == 0 ? 1u : 0u) << "cycle " << Cycle;
    Prev = Cur;
  }
  EXPECT_EQ(P.temperatureOf(A), 0u);
  // Further untouched cycles accrue cold streak, saturating.
  for (unsigned Cycle = 1; Cycle <= Page::MaxColdStreak + 2; ++Cycle) {
    P.markLive(A, 32);
    endCycle();
    EXPECT_EQ(P.temperatureOf(A), 0u);
    EXPECT_EQ(P.coldStreakOf(A),
              std::min(Cycle + 1, Page::MaxColdStreak))
        << "cycle " << Cycle;
  }
}

TEST_F(TempPageTest, TouchInterruptsColdStreak) {
  uintptr_t A = P.allocate(32);
  // One hot cycle, then decay to temperature 0 with a 2-cycle streak
  // (the decaying cycle starts the streak at 1, the next one accrues).
  P.markLive(A, 32);
  P.flagHot(A, 32);
  endCycle();
  for (int I = 0; I < 2; ++I) {
    P.markLive(A, 32);
    endCycle();
  }
  ASSERT_EQ(P.temperatureOf(A), 0u);
  ASSERT_EQ(P.coldStreakOf(A), 2u);
  // A touch bumps the temperature and wipes the streak immediately.
  P.markLive(A, 32);
  P.flagHot(A, 32);
  EXPECT_EQ(P.temperatureOf(A), 1u);
  EXPECT_EQ(P.coldStreakOf(A), 0u);
  // And the next aging walk keeps the bumped value (touched granules
  // are not decayed).
  endCycle();
  EXPECT_EQ(P.temperatureOf(A), 1u);
  EXPECT_EQ(P.coldStreakOf(A), 0u);
}

TEST_F(TempPageTest, SeedTransfersTemperatureAndStreak) {
  uintptr_t A = P.allocate(32);
  uintptr_t B = P.allocate(32);
  P.seedTemperature(A, 2, 0);
  P.seedTemperature(B, 0, 3);
  EXPECT_EQ(P.temperatureOf(A), 2u);
  EXPECT_EQ(P.coldStreakOf(A), 0u);
  EXPECT_EQ(P.temperatureOf(B), 0u);
  EXPECT_EQ(P.coldStreakOf(B), 3u);
  // Seeded state ages like any other: B was already fully cold, so its
  // streak is saturated; A decays.
  P.markLive(A, 32);
  P.markLive(B, 32);
  endCycle();
  EXPECT_EQ(P.temperatureOf(A), 1u);
  EXPECT_EQ(P.coldStreakOf(B), 3u);
}

TEST_F(TempPageTest, AgingCoversSeededCopiesAbsentFromLivemap) {
  // Relocated-in copies are seeded after marking ended, so they are not
  // in the target page's livemap at the next aging walk. They must age
  // anyway: a livemap-gated walk would freeze survivors that relocate
  // every cycle at their seeded temperature forever, and none would
  // ever prove cold. The live neighbour in the same nibble word is
  // unaffected.
  uintptr_t A = P.allocate(8); // granules 0 and 1 share a nibble word
  uintptr_t B = P.allocate(8);
  P.markLive(A, 8);
  P.flagHot(A, 8);
  P.seedTemperature(B, 2, 0); // as a relocation winner would
  endCycle();
  EXPECT_EQ(P.temperatureOf(A), 1u) << "live granule kept its bump";
  EXPECT_EQ(P.temperatureOf(B), 1u) << "seeded copy decayed one step";
  // The next markings see the copy as a regular live object: the decay
  // to temperature 0 starts the streak at 1, then it accrues normally.
  P.markLive(B, 8);
  endCycle();
  EXPECT_EQ(P.temperatureOf(B), 0u);
  EXPECT_EQ(P.coldStreakOf(B), 1u) << "decaying cycle counts as cold";
  P.markLive(B, 8);
  endCycle();
  EXPECT_EQ(P.coldStreakOf(B), 2u);
}

TEST_F(TempPageTest, TierByteTotalsPartitionLiveBytes) {
  // accumulateTempTierBytes walks real object headers, so write them.
  ClassId Cls = 0;
  std::vector<uintptr_t> Objs;
  for (int I = 0; I < 6; ++I) {
    uintptr_t A = P.allocate(32);
    *reinterpret_cast<uint64_t *>(A) = makeHeader(4, Cls, 0, OF_None);
    P.markLive(A, 32);
    Objs.push_back(A);
  }
  // Temperatures 0,1,2,3,3,0 via seeding (bump path covered above).
  P.seedTemperature(Objs[1], 1, 0);
  P.seedTemperature(Objs[2], 2, 0);
  P.seedTemperature(Objs[3], 3, 0);
  P.seedTemperature(Objs[4], 3, 0);
  P.accumulateTempTierBytes();
  EXPECT_EQ(P.tempTierBytes(0), 64u);
  EXPECT_EQ(P.tempTierBytes(1), 32u);
  EXPECT_EQ(P.tempTierBytes(2), 32u);
  EXPECT_EQ(P.tempTierBytes(3), 64u);
  uint64_t Sum = 0;
  for (unsigned T = 0; T < Page::TempTiers; ++T)
    Sum += P.tempTierBytes(T);
  EXPECT_EQ(Sum, P.liveBytes());
}
