//===- tests/heap/PageTest.cpp -------------------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "heap/Page.h"

#include <gtest/gtest.h>

#include <thread>

using namespace hcsgc;

namespace {

class PageTest : public ::testing::Test {
protected:
  static constexpr size_t Size = 64 * 1024;
  PageTest()
      : Buf(new uint8_t[Size + 8]),
        Begin((reinterpret_cast<uintptr_t>(Buf.get()) + 7) & ~uintptr_t(7)),
        P(Begin, Size, PageSizeClass::Small, /*Seq=*/3) {}

  std::unique_ptr<uint8_t[]> Buf;
  uintptr_t Begin;
  Page P;
};

} // namespace

TEST_F(PageTest, BumpAllocation) {
  uintptr_t A = P.allocate(32);
  uintptr_t B = P.allocate(32);
  EXPECT_EQ(A, Begin);
  EXPECT_EQ(B, Begin + 32);
  EXPECT_EQ(P.used(), 64u);
  EXPECT_EQ(P.remaining(), Size - 64);
}

TEST_F(PageTest, AllocationAligns) {
  uintptr_t A = P.allocate(12); // rounds to 16
  uintptr_t B = P.allocate(8);
  EXPECT_EQ(B, A + 16);
}

TEST_F(PageTest, AllocationFailsWhenFull) {
  EXPECT_NE(P.allocate(Size), 0u);
  EXPECT_EQ(P.allocate(8), 0u);
}

TEST_F(PageTest, UndoAllocateOnlyAtTop) {
  uintptr_t A = P.allocate(32);
  uintptr_t B = P.allocate(32);
  EXPECT_FALSE(P.undoAllocate(A, 32)); // not the top
  EXPECT_TRUE(P.undoAllocate(B, 32));
  EXPECT_EQ(P.used(), 32u);
  EXPECT_EQ(P.allocate(32), B); // reusable
}

TEST_F(PageTest, LiveMarkingAccumulates) {
  uintptr_t A = P.allocate(32);
  uintptr_t B = P.allocate(48);
  EXPECT_TRUE(P.markLive(A, 32));
  EXPECT_FALSE(P.markLive(A, 32)); // second mark is a no-op
  EXPECT_TRUE(P.markLive(B, 48));
  EXPECT_EQ(P.liveBytes(), 80u);
  EXPECT_EQ(P.liveObjects(), 2u);
  EXPECT_TRUE(P.isLive(A));
  EXPECT_DOUBLE_EQ(P.liveRatio(), 80.0 / Size);
}

TEST_F(PageTest, HotMarkingSeparateFromLive) {
  uintptr_t A = P.allocate(32);
  P.markLive(A, 32);
  EXPECT_FALSE(P.isHot(A));
  EXPECT_TRUE(P.flagHot(A, 32));
  EXPECT_FALSE(P.flagHot(A, 32));
  EXPECT_EQ(P.hotBytes(), 32u);
  EXPECT_EQ(P.coldBytes(), 0u);
}

TEST_F(PageTest, ColdBytesIsLiveMinusHot) {
  uintptr_t A = P.allocate(32);
  uintptr_t B = P.allocate(64);
  P.markLive(A, 32);
  P.markLive(B, 64);
  P.flagHot(A, 32);
  EXPECT_EQ(P.coldBytes(), 64u);
}

TEST_F(PageTest, ClearMarkStateResetsEverything) {
  // "hotmap is reset at the beginning of each M/R phase; this renders
  // all objects cold effectively" (§3.1.2).
  uintptr_t A = P.allocate(32);
  P.markLive(A, 32);
  P.flagHot(A, 32);
  P.clearMarkState();
  EXPECT_EQ(P.liveBytes(), 0u);
  EXPECT_EQ(P.hotBytes(), 0u);
  EXPECT_EQ(P.liveObjects(), 0u);
  EXPECT_FALSE(P.isLive(A));
  EXPECT_FALSE(P.isHot(A));
}

TEST_F(PageTest, ForEachLiveObjectInAddressOrder) {
  std::vector<uintptr_t> Allocated;
  for (int I = 0; I < 10; ++I)
    Allocated.push_back(P.allocate(40));
  // Mark a subset, out of order.
  P.markLive(Allocated[7], 40);
  P.markLive(Allocated[2], 40);
  P.markLive(Allocated[9], 40);
  std::vector<uintptr_t> Seen;
  P.forEachLiveObject([&](uintptr_t A) { Seen.push_back(A); });
  ASSERT_EQ(Seen.size(), 3u);
  EXPECT_EQ(Seen[0], Allocated[2]);
  EXPECT_EQ(Seen[1], Allocated[7]);
  EXPECT_EQ(Seen[2], Allocated[9]);
}

TEST_F(PageTest, StateTransitions) {
  EXPECT_EQ(P.state(), PageState::Active);
  EXPECT_FALSE(P.isRelocSourceOrQuarantined());
  uintptr_t A = P.allocate(32);
  P.markLive(A, 32);
  P.beginEvacuation();
  EXPECT_EQ(P.state(), PageState::RelocSource);
  EXPECT_TRUE(P.isRelocSourceOrQuarantined());
  ASSERT_NE(P.forwarding(), nullptr);
  EXPECT_GE(P.forwarding()->capacity(), P.liveObjects());
  P.setState(PageState::Quarantined);
  P.setQuarantineCycle(42);
  EXPECT_EQ(P.quarantineCycle(), 42u);
  P.retireForwarding();
  EXPECT_EQ(P.forwarding(), nullptr);
}

TEST_F(PageTest, OffsetOf) {
  uintptr_t A = P.allocate(32);
  uintptr_t B = P.allocate(32);
  EXPECT_EQ(P.offsetOf(A), 0u);
  EXPECT_EQ(P.offsetOf(B), 32u);
}

TEST_F(PageTest, ConcurrentAllocationNoOverlap) {
  std::vector<std::vector<uintptr_t>> PerThread(4);
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&, T] {
      for (;;) {
        uintptr_t A = P.allocate(16);
        if (!A)
          break;
        PerThread[T].push_back(A);
      }
    });
  for (auto &T : Threads)
    T.join();
  std::vector<uintptr_t> All;
  for (auto &V : PerThread)
    All.insert(All.end(), V.begin(), V.end());
  std::sort(All.begin(), All.end());
  EXPECT_EQ(All.size(), Size / 16);
  for (size_t I = 1; I < All.size(); ++I)
    EXPECT_EQ(All[I], All[I - 1] + 16);
}
