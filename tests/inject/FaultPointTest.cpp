//===- tests/inject/FaultPointTest.cpp - Fault registry unit tests -------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the deterministic fault-point registry: the decision
/// stream must be a pure function of (seed, point, hit ordinal), the
/// SkipFirst/MaxFires windows must be exact, and a disarmed registry must
/// never fire.
///
//===----------------------------------------------------------------------===//

#include "inject/FaultInject.h"

#include "TestSeeds.h"
#include <gtest/gtest.h>

#include <vector>

using namespace hcsgc;

namespace {

std::vector<bool> recordDecisions(uint64_t Seed, FailPoint P,
                                  const FaultSpec &S, unsigned N) {
  FaultPlan Plan(Seed);
  Plan.set(P, S);
  ScopedFaultPlan Armed(Plan);
  std::vector<bool> Out;
  Out.reserve(N);
  FaultRegistry &FR = FaultRegistry::instance();
  for (unsigned I = 0; I < N; ++I)
    Out.push_back(FR.shouldFail(P));
  return Out;
}

TEST(FaultPointTest, DecisionStreamIsDeterministic) {
  const uint64_t Seed = test::testSeed(0xFA01);
  FaultSpec S;
  S.Probability = 0.5;
  auto A = recordDecisions(Seed, FailPoint::PageAlloc, S, 512);
  auto B = recordDecisions(Seed, FailPoint::PageAlloc, S, 512);
  EXPECT_EQ(A, B) << "same (seed, point, ordinal) must decide identically";

  // A different seed must give a different stream (overwhelmingly).
  auto C = recordDecisions(Seed ^ 0x1234, FailPoint::PageAlloc, S, 512);
  EXPECT_NE(A, C);

  // Different points draw decorrelated streams from the same seed.
  auto D = recordDecisions(Seed, FailPoint::TlabRefill, S, 512);
  EXPECT_NE(A, D);
}

TEST(FaultPointTest, ProbabilityEndpoints) {
  FaultSpec Always;
  Always.Probability = 1.0;
  for (bool Fired :
       recordDecisions(test::testSeed(0xFA02), FailPoint::TlabRefill,
                       Always, 100))
    EXPECT_TRUE(Fired);

  FaultSpec Never; // default Probability = 0
  for (bool Fired : recordDecisions(test::testSeed(0xFA03),
                                    FailPoint::TlabRefill, Never, 100))
    EXPECT_FALSE(Fired);
}

TEST(FaultPointTest, ProbabilityIsApproximatelyHonored) {
  FaultSpec S;
  S.Probability = 0.25;
  auto V = recordDecisions(test::testSeed(0xFA04), FailPoint::PageAlloc, S,
                           4000);
  unsigned Fires = 0;
  for (bool B : V)
    Fires += B;
  // 4000 draws at p=0.25: mean 1000, sd ~27. Accept +-6 sd.
  EXPECT_GT(Fires, 840u);
  EXPECT_LT(Fires, 1160u);
}

TEST(FaultPointTest, SkipFirstWindowIsExact) {
  FaultSpec S;
  S.Probability = 1.0;
  S.SkipFirst = 17;
  auto V = recordDecisions(test::testSeed(0xFA05),
                           FailPoint::RelocTargetAlloc, S, 40);
  for (unsigned I = 0; I < 40; ++I)
    EXPECT_EQ(V[I], I >= 17) << "hit " << I;
}

TEST(FaultPointTest, MaxFiresCapIsExact) {
  FaultSpec S;
  S.Probability = 1.0;
  S.MaxFires = 5;
  auto V = recordDecisions(test::testSeed(0xFA06), FailPoint::PageAlloc, S,
                           40);
  unsigned Fires = 0;
  for (bool B : V)
    Fires += B;
  EXPECT_EQ(Fires, 5u);
  // And they are the first five eligible hits.
  for (unsigned I = 0; I < 5; ++I)
    EXPECT_TRUE(V[I]);
  for (unsigned I = 5; I < 40; ++I)
    EXPECT_FALSE(V[I]);
}

TEST(FaultPointTest, CountersTrackHitsAndFires) {
  FaultPlan Plan(test::testSeed(0xFA07));
  FaultSpec S;
  S.Probability = 1.0;
  S.SkipFirst = 3;
  Plan.set(FailPoint::TlabRefill, S);
  ScopedFaultPlan Armed(Plan);
  FaultRegistry &FR = FaultRegistry::instance();
  EXPECT_EQ(FR.hits(FailPoint::TlabRefill), 0u);
  for (unsigned I = 0; I < 10; ++I)
    FR.shouldFail(FailPoint::TlabRefill);
  EXPECT_EQ(FR.hits(FailPoint::TlabRefill), 10u);
  EXPECT_EQ(FR.fires(FailPoint::TlabRefill), 7u);
  // Untouched sites stay at zero.
  EXPECT_EQ(FR.hits(FailPoint::PageAlloc), 0u);
}

TEST(FaultPointTest, DisarmedRegistryNeverFires) {
  FaultRegistry &FR = FaultRegistry::instance();
  {
    FaultPlan Plan(test::testSeed(0xFA08));
    FaultSpec S;
    S.Probability = 1.0;
    Plan.set(FailPoint::PageAlloc, S);
    ScopedFaultPlan Armed(Plan);
    EXPECT_TRUE(FR.armed());
  }
  EXPECT_FALSE(FR.armed());
  // The macro short-circuits on the armed() gate.
  EXPECT_FALSE(HCSGC_INJECT_FAIL(PageAlloc));
}

TEST(FaultPointTest, RearmZeroesCounters) {
  FaultPlan Plan(test::testSeed(0xFA09));
  FaultSpec S;
  S.Probability = 1.0;
  Plan.set(FailPoint::PageAlloc, S);
  FaultRegistry &FR = FaultRegistry::instance();
  {
    ScopedFaultPlan Armed(Plan);
    for (unsigned I = 0; I < 4; ++I)
      FR.shouldFail(FailPoint::PageAlloc);
    EXPECT_EQ(FR.hits(FailPoint::PageAlloc), 4u);
  }
  // Counters survive disarm for post-run inspection...
  EXPECT_EQ(FR.hits(FailPoint::PageAlloc), 4u);
  {
    // ...and reset on the next arm.
    ScopedFaultPlan Armed(Plan);
    EXPECT_EQ(FR.hits(FailPoint::PageAlloc), 0u);
    EXPECT_EQ(FR.fires(FailPoint::PageAlloc), 0u);
  }
}

TEST(FaultPointTest, DelayBoundsAndDeterminism) {
  FaultPlan Plan(test::testSeed(0xFA0A));
  FaultSpec S;
  S.Probability = 0.5;
  S.MaxDelayUs = 200;
  Plan.set(FailPoint::PhaseDelay, S);
  FaultRegistry &FR = FaultRegistry::instance();

  std::vector<uint32_t> First;
  {
    ScopedFaultPlan Armed(Plan);
    for (unsigned I = 0; I < 256; ++I) {
      uint32_t Us = FR.delayUs(FailPoint::PhaseDelay);
      EXPECT_LE(Us, 200u);
      First.push_back(Us);
    }
  }
  unsigned NonZero = 0;
  for (uint32_t Us : First)
    NonZero += Us != 0;
  // p=0.5 over 256 draws: expect roughly half nonzero.
  EXPECT_GT(NonZero, 80u);
  EXPECT_LT(NonZero, 176u);

  // Fired delays are at least 1us (a fire always sleeps).
  for (uint32_t Us : First) {
    if (Us != 0) {
      EXPECT_GE(Us, 1u);
    }
  }

  // Re-arming replays the identical delay sequence.
  {
    ScopedFaultPlan Armed(Plan);
    for (unsigned I = 0; I < 256; ++I)
      EXPECT_EQ(FR.delayUs(FailPoint::PhaseDelay), First[I]) << "hit " << I;
  }
}

TEST(FaultPointTest, ZeroMaxDelayNeverSleeps) {
  FaultPlan Plan(test::testSeed(0xFA0B));
  FaultSpec S;
  S.Probability = 1.0; // fires, but has no delay budget
  Plan.set(FailPoint::SafepointDelay, S);
  ScopedFaultPlan Armed(Plan);
  FaultRegistry &FR = FaultRegistry::instance();
  for (unsigned I = 0; I < 32; ++I)
    EXPECT_EQ(FR.delayUs(FailPoint::SafepointDelay), 0u);
}

TEST(FaultPointTest, DecisionsIndependentOfOtherSites) {
  // The PageAlloc stream must not shift when another site is consulted
  // between its hits — ordinals are per site, which is what makes
  // decisions schedule-independent.
  const uint64_t Seed = test::testSeed(0xFA0C);
  FaultSpec S;
  S.Probability = 0.5;

  auto Pure = recordDecisions(Seed, FailPoint::PageAlloc, S, 128);

  FaultPlan Plan(Seed);
  Plan.set(FailPoint::PageAlloc, S);
  Plan.set(FailPoint::TlabRefill, S);
  ScopedFaultPlan Armed(Plan);
  FaultRegistry &FR = FaultRegistry::instance();
  std::vector<bool> Interleaved;
  for (unsigned I = 0; I < 128; ++I) {
    FR.shouldFail(FailPoint::TlabRefill); // noise on another site
    Interleaved.push_back(FR.shouldFail(FailPoint::PageAlloc));
  }
  EXPECT_EQ(Pure, Interleaved);
}

} // namespace
