//===- tests/observe/HeapSnapshotTest.cpp -------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Pure observe-layer tests for the heap locality observatory: the shared
// WLB formula's boundary behavior, the offline EC replay (filter, sort,
// budget/required-free prefix, RELOCATEALLSMALLPAGES, pinned/dead
// skips), ring-capacity drop accounting, and the JSONL round trip
// (including bit-exact doubles via %.17g).
//
//===----------------------------------------------------------------------===//

#include "observe/HeapSnapshot.h"
#include "observe/SnapshotLog.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace hcsgc;

namespace {

/// Convenience builder for replay-test audits over small pages.
EcAuditEntry smallEntry(uint64_t Begin, uint64_t Live, uint64_t Hot,
                        double Weight, EcVerdict V) {
  EcAuditEntry E;
  E.PageBegin = Begin;
  E.PageSize = 64 * 1024;
  E.LiveBytes = Live;
  E.HotBytes = Hot;
  E.Weight = Weight;
  E.SizeClass = SnapSizeClass::Small;
  E.Verdict = V;
  return E;
}

} // namespace

TEST(WlbFormulaTest, Boundaries) {
  // Hotness off: WLB is plain live bytes regardless of hot/confidence.
  EXPECT_EQ(wlbFormula(1000, 400, false, 0.7), 1000.0);
  // Hot == 0: all bytes are cold, WLB == live at every confidence.
  EXPECT_EQ(wlbFormula(1000, 0, true, 0.0), 1000.0);
  EXPECT_EQ(wlbFormula(1000, 0, true, 1.0), 1000.0);
  // Confidence 0: cold bytes count fully, WLB == live.
  EXPECT_EQ(wlbFormula(1000, 400, true, 0.0), 1000.0);
  // Confidence 1: cold bytes vanish, WLB == hot.
  EXPECT_EQ(wlbFormula(1000, 400, true, 1.0), 400.0);
  // Midpoint: hot + cold/2.
  EXPECT_EQ(wlbFormula(1000, 400, true, 0.5), 400.0 + 300.0);
  // Defensive: hot > live clamps cold to zero rather than going negative.
  EXPECT_EQ(wlbFormula(100, 400, true, 0.5), 400.0);
}

TEST(EcReplayTest, BudgetPrefixTakesLightestPages) {
  EcAudit A;
  A.BudgetSmall = 300.0;
  A.EvacLiveThreshold = 1.0; // Admit everything; test the budget alone.
  A.Hotness = 1;
  // Weights 100, 200, 400 at addresses 0x3000, 0x1000, 0x2000: the sort
  // is (weight, address), the prefix stops once the budget is full.
  A.Entries.push_back(smallEntry(0x3000, 100, 0, 100.0,
                                 EcVerdict::Selected));
  A.Entries.push_back(smallEntry(0x1000, 200, 0, 200.0,
                                 EcVerdict::Selected));
  A.Entries.push_back(smallEntry(0x2000, 400, 0, 400.0,
                                 EcVerdict::RejectedBudget));
  std::vector<uint64_t> Sel = replayEcSelection(A);
  EXPECT_EQ(Sel, (std::vector<uint64_t>{0x1000, 0x3000}));
  EXPECT_EQ(Sel, auditSelectedPages(A));
}

TEST(EcReplayTest, RequiredFreeExtendsPastBudget) {
  EcAudit A;
  A.BudgetSmall = 50.0; // Budget admits nothing on its own...
  // ...but reclamation demand forces the prefix onward until the freed
  // bytes (size - live) cover it.
  A.RequiredFree = 100 * 1024.0;
  A.EvacLiveThreshold = 1.0;
  A.Hotness = 1;
  A.Entries.push_back(smallEntry(0x1000, 1000, 0, 1000.0,
                                 EcVerdict::Selected));
  A.Entries.push_back(smallEntry(0x2000, 2000, 0, 2000.0,
                                 EcVerdict::Selected));
  A.Entries.push_back(smallEntry(0x3000, 3000, 0, 3000.0,
                                 EcVerdict::RejectedBudget));
  // Page 1 frees ~63KB < 100KB, page 2 pushes past it, page 3 is out.
  std::vector<uint64_t> Sel = replayEcSelection(A);
  EXPECT_EQ(Sel, (std::vector<uint64_t>{0x1000, 0x2000}));
  EXPECT_EQ(Sel, auditSelectedPages(A));
}

TEST(EcReplayTest, ThresholdDeadAndPinnedAreFilteredOut) {
  EcAudit A;
  A.BudgetSmall = 1e9;
  A.EvacLiveThreshold = 0.5; // 60000/64K > 0.5 > 100/64K.
  A.Hotness = 1;
  // A threshold rejection never re-enters the candidate pool on replay.
  A.Entries.push_back(smallEntry(0x1000, 60000, 0, 60000.0,
                                 EcVerdict::RejectedThreshold));
  // Dead and pinned pages are not candidates at all.
  A.Entries.push_back(smallEntry(0x2000, 0, 0, 0.0,
                                 EcVerdict::DeadReclaimed));
  EcAuditEntry Pinned = smallEntry(0x3000, 100, 0, 0.0,
                                   EcVerdict::PinnedSkipped);
  Pinned.Pinned = 1;
  A.Entries.push_back(Pinned);
  A.Entries.push_back(smallEntry(0x4000, 100, 0, 100.0,
                                 EcVerdict::Selected));
  std::vector<uint64_t> Sel = replayEcSelection(A);
  EXPECT_EQ(Sel, (std::vector<uint64_t>{0x4000}));
  EXPECT_EQ(Sel, auditSelectedPages(A));
}

TEST(EcReplayTest, RelocateAllSelectsEverySmallCandidate) {
  EcAudit A;
  A.RelocateAll = 1;
  A.BudgetSmall = 0.0; // RELOCATEALLSMALLPAGES ignores the budget.
  A.Hotness = 1;
  A.Entries.push_back(smallEntry(0x2000, 60000, 0, 0.0,
                                 EcVerdict::Selected));
  A.Entries.push_back(smallEntry(0x1000, 100, 0, 0.0,
                                 EcVerdict::Selected));
  A.Entries.push_back(smallEntry(0x3000, 0, 0, 0.0,
                                 EcVerdict::DeadReclaimed));
  std::vector<uint64_t> Sel = replayEcSelection(A);
  EXPECT_EQ(Sel, (std::vector<uint64_t>{0x1000, 0x2000}));
  EXPECT_EQ(Sel, auditSelectedPages(A));
}

TEST(EcReplayTest, MediumPagesUseOwnBudget) {
  EcAudit A;
  A.BudgetSmall = 1e9;
  A.BudgetMedium = 5000.0;
  A.EvacLiveThreshold = 0.5;
  A.Hotness = 1;
  EcAuditEntry M1 = smallEntry(0x100000, 4000, 0, 4000.0,
                               EcVerdict::Selected);
  M1.SizeClass = SnapSizeClass::Medium;
  M1.PageSize = 1024 * 1024;
  EcAuditEntry M2 = smallEntry(0x200000, 40000, 0, 40000.0,
                               EcVerdict::RejectedBudget);
  M2.SizeClass = SnapSizeClass::Medium;
  M2.PageSize = 1024 * 1024;
  EcAuditEntry L = smallEntry(0x300000, 123, 0, 123.0,
                              EcVerdict::LargeIgnored);
  L.SizeClass = SnapSizeClass::Large;
  A.Entries.push_back(M1);
  A.Entries.push_back(M2);
  A.Entries.push_back(L);
  std::vector<uint64_t> Sel = replayEcSelection(A);
  EXPECT_EQ(Sel, (std::vector<uint64_t>{0x100000}));
  EXPECT_EQ(Sel, auditSelectedPages(A));
}

TEST(SnapshotRingTest, DropsOldestPastCapacity) {
  SnapshotRing Ring(2);
  auto MakeSnap = [](uint64_t Cycle, size_t NPages) {
    CycleSnapshot S;
    S.Cycle = Cycle;
    S.Pages.resize(NPages);
    return S;
  };
  EXPECT_EQ(Ring.push(MakeSnap(1, 3)), 0u);
  EXPECT_EQ(Ring.push(MakeSnap(2, 5)), 0u);
  // Third push evicts cycle 1 and reports its 3 page records dropped.
  EXPECT_EQ(Ring.push(MakeSnap(3, 7)), 3u);
  std::vector<CycleSnapshot> H = Ring.history();
  ASSERT_EQ(H.size(), 2u);
  EXPECT_EQ(H[0].Cycle, 2u);
  EXPECT_EQ(H[1].Cycle, 3u);
}

TEST(SnapshotLogTest, JsonlRoundTripIsExact) {
  CycleSnapshot S;
  S.Cycle = 42;
  S.Point = SnapshotPoint::AfterEc;
  S.TimeNs = 123456789;
  S.ColdConfidence = 1.0 / 3.0; // Not representable in few digits.
  S.Hotness = 1;

  PageRecord P;
  P.PageBegin = 0xdeadbeef0000ull;
  P.PageSize = 64 * 1024;
  P.UsedBytes = 60000;
  P.LiveBytes = 50000;
  P.HotBytes = 12345;
  P.AllocSeq = 7;
  P.RelocOutBytesGc = 100;
  P.RelocOutBytesMutator = 200;
  P.Wlb = wlbFormula(P.LiveBytes, P.HotBytes, true, S.ColdConfidence);
  P.SizeClass = SnapSizeClass::Small;
  P.State = SnapPageState::RelocSource;
  P.Pinned = 0;
  P.EcSelected = 1;
  S.Pages.push_back(P);

  S.HasAudit = true;
  S.Audit.Cycle = 42;
  S.Audit.ColdConfidence = S.ColdConfidence;
  S.Audit.EvacLiveThreshold = 0.1;
  S.Audit.BudgetSmall = 98765.4321;
  S.Audit.BudgetMedium = 0.125;
  S.Audit.RequiredFree = 4096.0;
  S.Audit.Hotness = 1;
  S.Audit.RelocateAll = 0;
  S.Audit.Entries.push_back(
      smallEntry(P.PageBegin, P.LiveBytes, P.HotBytes, P.Wlb,
                 EcVerdict::Selected));

  std::string Line = snapshotToJson(S);
  CycleSnapshot R;
  std::string Error;
  ASSERT_TRUE(parseSnapshotLine(Line, R, Error)) << Error;

  EXPECT_EQ(R.Cycle, S.Cycle);
  EXPECT_EQ(R.Point, S.Point);
  EXPECT_EQ(R.TimeNs, S.TimeNs);
  EXPECT_EQ(R.ColdConfidence, S.ColdConfidence); // Bit-exact via %.17g.
  EXPECT_EQ(R.Hotness, S.Hotness);
  ASSERT_EQ(R.Pages.size(), 1u);
  const PageRecord &Q = R.Pages[0];
  EXPECT_EQ(Q.PageBegin, P.PageBegin);
  EXPECT_EQ(Q.PageSize, P.PageSize);
  EXPECT_EQ(Q.UsedBytes, P.UsedBytes);
  EXPECT_EQ(Q.LiveBytes, P.LiveBytes);
  EXPECT_EQ(Q.HotBytes, P.HotBytes);
  EXPECT_EQ(Q.AllocSeq, P.AllocSeq);
  EXPECT_EQ(Q.RelocOutBytesGc, P.RelocOutBytesGc);
  EXPECT_EQ(Q.RelocOutBytesMutator, P.RelocOutBytesMutator);
  EXPECT_EQ(Q.Wlb, P.Wlb);
  EXPECT_EQ(Q.SizeClass, P.SizeClass);
  EXPECT_EQ(Q.State, P.State);
  EXPECT_EQ(Q.Pinned, P.Pinned);
  EXPECT_EQ(Q.EcSelected, P.EcSelected);
  ASSERT_TRUE(R.HasAudit);
  EXPECT_EQ(R.Audit.Cycle, S.Audit.Cycle);
  EXPECT_EQ(R.Audit.ColdConfidence, S.Audit.ColdConfidence);
  EXPECT_EQ(R.Audit.EvacLiveThreshold, S.Audit.EvacLiveThreshold);
  EXPECT_EQ(R.Audit.BudgetSmall, S.Audit.BudgetSmall);
  EXPECT_EQ(R.Audit.BudgetMedium, S.Audit.BudgetMedium);
  EXPECT_EQ(R.Audit.RequiredFree, S.Audit.RequiredFree);
  EXPECT_EQ(R.Audit.Hotness, S.Audit.Hotness);
  EXPECT_EQ(R.Audit.RelocateAll, S.Audit.RelocateAll);
  ASSERT_EQ(R.Audit.Entries.size(), 1u);
  EXPECT_EQ(R.Audit.Entries[0].PageBegin, P.PageBegin);
  EXPECT_EQ(R.Audit.Entries[0].Weight, P.Wlb);
  EXPECT_EQ(R.Audit.Entries[0].Verdict, EcVerdict::Selected);

  // Replay works identically on the round-tripped audit.
  EXPECT_EQ(replayEcSelection(R.Audit), replayEcSelection(S.Audit));
}

TEST(SnapshotLogTest, ReadLogSkipsBlanksAndReportsLineNumbers) {
  CycleSnapshot A, B;
  A.Cycle = 1;
  B.Cycle = 2;
  std::string Text =
      snapshotToJson(A) + "\n\n" + snapshotToJson(B) + "\n";
  std::vector<CycleSnapshot> Out;
  std::string Error;
  ASSERT_TRUE(readSnapshotLog(Text, Out, Error)) << Error;
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Out[0].Cycle, 1u);
  EXPECT_EQ(Out[1].Cycle, 2u);

  // A corrupt third line fails and names its line number.
  Text += "{not json\n";
  Out.clear();
  EXPECT_FALSE(readSnapshotLog(Text, Out, Error));
  EXPECT_NE(Error.find("4"), std::string::npos) << Error;
}

TEST(WlbTempFormulaTest, Boundaries) {
  // Hotness off: plain live bytes, whatever the tiers say.
  {
    uint64_t TB[SnapTempTiers] = {100, 200, 300, 400};
    EXPECT_EQ(wlbTempFormula(1000, TB, false, 0.7), 1000.0);
  }
  // Nothing above tier 0: all bytes are cold candidates with no hot
  // object to excavate toward — WLB stays at live (mirrors wlbFormula's
  // Hot == 0 branch).
  {
    uint64_t TB[SnapTempTiers] = {1000, 0, 0, 0};
    EXPECT_EQ(wlbTempFormula(1000, TB, true, 1.0), 1000.0);
  }
  // Confidence 0: every tier weighs 1, WLB == live.
  {
    uint64_t TB[SnapTempTiers] = {100, 200, 300, 400};
    EXPECT_EQ(wlbTempFormula(1000, TB, true, 0.0), 1000.0);
  }
  // Confidence 1: w(t) = t/3 — tier 0 vanishes, tier 3 counts fully,
  // the middle tiers interpolate.
  {
    uint64_t TB[SnapTempTiers] = {100, 300, 300, 400};
    EXPECT_DOUBLE_EQ(wlbTempFormula(1100, TB, true, 1.0),
                     300.0 / 3.0 + 300.0 * 2.0 / 3.0 + 400.0);
  }
}

TEST(WlbTempFormulaTest, BinaryReductionIsBitExact) {
  // With only tiers {0, 3} populated (what a 1-bit temperature would
  // produce), the generalized formula must reduce BIT-EXACTLY to the
  // paper's binary formula — heapscope replays mixed-era logs with
  // operator== on the weights, so "close" is not good enough. Sweep
  // awkward confidences (1/3 and friends are not exactly
  // representable) against awkward byte counts.
  const double Confs[] = {0.0,      0.1,           1.0 / 3.0, 0.5,
                          2.0 / 3.0, 0.1 + 0.2,    0.7,       0.875,
                          0.9999999999999999, 1.0};
  const uint64_t Lives[] = {1,      4096,        60000,
                            123457, (1ull << 33) + 7};
  for (double CC : Confs)
    for (uint64_t Live : Lives)
      for (uint64_t Hot : {uint64_t(0), Live / 3, Live - 1, Live}) {
        uint64_t TB[SnapTempTiers] = {Live - Hot, 0, 0, Hot};
        EXPECT_EQ(wlbTempFormula(Live, TB, true, CC),
                  wlbFormula(Live, Hot, true, CC))
            << "cc=" << CC << " live=" << Live << " hot=" << Hot;
      }
}

TEST(EcReplayTest, TemperatureWeightsDriveReplay) {
  // The audit says TEMPERATURE was on, so the replay must recompute
  // weights from the per-tier bytes — NOT from the binary hot bytes.
  // Page 0x1000 is a trap for a binary replay: its hotmap says 100 hot
  // bytes (WLB 100 at full confidence, ratio ~0 -> would be selected)
  // but its temperature plane says everything sat at tier 0 (WLB ==
  // live, ratio 0.92 -> rejected by threshold).
  EcAudit A;
  A.BudgetSmall = 1e9;
  A.EvacLiveThreshold = 0.75;
  A.ColdConfidence = 1.0;
  A.Hotness = 1;
  A.Temperature = 1;

  EcAuditEntry Trap = smallEntry(0x1000, 60000, 100, 0.0,
                                 EcVerdict::RejectedThreshold);
  Trap.TempBytes[0] = 60000;
  Trap.Weight = wlbTempFormula(Trap.LiveBytes, Trap.TempBytes, true,
                               A.ColdConfidence);

  EcAuditEntry Mixed = smallEntry(0x2000, 60000, 0, 0.0,
                                  EcVerdict::Selected);
  Mixed.TempBytes[0] = 50000;
  Mixed.TempBytes[1] = 6000;
  Mixed.TempBytes[2] = 3000;
  Mixed.TempBytes[3] = 1000;
  Mixed.Weight = wlbTempFormula(Mixed.LiveBytes, Mixed.TempBytes, true,
                                A.ColdConfidence);

  A.Entries.push_back(Trap);
  A.Entries.push_back(Mixed);
  std::vector<uint64_t> Sel = replayEcSelection(A);
  EXPECT_EQ(Sel, (std::vector<uint64_t>{0x2000}));
  EXPECT_EQ(Sel, auditSelectedPages(A));
}

TEST(SnapshotLogTest, TemperatureRoundTripIsExact) {
  CycleSnapshot S;
  S.Cycle = 9;
  S.Point = SnapshotPoint::AfterEc;
  S.ColdConfidence = 2.0 / 3.0;
  S.Hotness = 1;
  S.Temperature = 1;

  PageRecord P;
  P.PageBegin = 0xabcd0000ull;
  P.PageSize = 64 * 1024;
  P.LiveBytes = 40000;
  P.TempBytes[0] = 10000;
  P.TempBytes[1] = 10000;
  P.TempBytes[2] = 10000;
  P.TempBytes[3] = 10000;
  P.Wlb = wlbTempFormula(P.LiveBytes, P.TempBytes, true,
                         S.ColdConfidence);
  P.SizeClass = SnapSizeClass::Small;
  P.Tier = static_cast<uint8_t>(SnapPageTier::Cold);
  S.Pages.push_back(P);

  S.HasAudit = true;
  S.Audit.Cycle = 9;
  S.Audit.ColdConfidence = S.ColdConfidence;
  S.Audit.EvacLiveThreshold = 0.75;
  S.Audit.BudgetSmall = 1e6;
  S.Audit.Hotness = 1;
  S.Audit.Temperature = 1;
  EcAuditEntry E = smallEntry(P.PageBegin, P.LiveBytes, 0, P.Wlb,
                              EcVerdict::Selected);
  for (unsigned T = 0; T < SnapTempTiers; ++T)
    E.TempBytes[T] = P.TempBytes[T];
  S.Audit.Entries.push_back(E);

  CycleSnapshot R;
  std::string Error;
  ASSERT_TRUE(parseSnapshotLine(snapshotToJson(S), R, Error)) << Error;
  EXPECT_EQ(R.Temperature, 1);
  ASSERT_EQ(R.Pages.size(), 1u);
  for (unsigned T = 0; T < SnapTempTiers; ++T)
    EXPECT_EQ(R.Pages[0].TempBytes[T], P.TempBytes[T]);
  EXPECT_EQ(R.Pages[0].Wlb, P.Wlb); // Bit-exact via %.17g.
  EXPECT_EQ(R.Pages[0].Tier, static_cast<uint8_t>(SnapPageTier::Cold));
  ASSERT_TRUE(R.HasAudit);
  EXPECT_EQ(R.Audit.Temperature, 1);
  ASSERT_EQ(R.Audit.Entries.size(), 1u);
  for (unsigned T = 0; T < SnapTempTiers; ++T)
    EXPECT_EQ(R.Audit.Entries[0].TempBytes[T], E.TempBytes[T]);
  EXPECT_EQ(R.Audit.Entries[0].Weight, P.Wlb);
  EXPECT_EQ(replayEcSelection(R.Audit), replayEcSelection(S.Audit));
}

TEST(SnapshotLogTest, PreTemperatureLinesParseWithZeroTiers) {
  // A line written before the temperature extension: no "temperature",
  // no t0..t3, no "tier". It must still parse, with the new fields
  // reading as off/zero/none — heapscope replays old logs unchanged.
  const std::string Legacy =
      "{\"cycle\":3,\"point\":\"after_mark\",\"time_ns\":1,"
      "\"cold_confidence\":0.5,\"hotness\":true,\"pages\":["
      "{\"begin\":\"0x1000\",\"size\":65536,\"used\":100,\"live\":100,"
      "\"hot\":50,\"alloc_seq\":1,\"reloc_gc\":0,\"reloc_mut\":0,"
      "\"wlb\":75,\"class\":\"small\",\"state\":\"active\","
      "\"pinned\":false,\"ec\":false}]}";
  CycleSnapshot R;
  std::string Error;
  ASSERT_TRUE(parseSnapshotLine(Legacy, R, Error)) << Error;
  EXPECT_EQ(R.Temperature, 0);
  ASSERT_EQ(R.Pages.size(), 1u);
  for (unsigned T = 0; T < SnapTempTiers; ++T)
    EXPECT_EQ(R.Pages[0].TempBytes[T], 0u);
  EXPECT_EQ(R.Pages[0].Tier, static_cast<uint8_t>(SnapPageTier::None));
}

TEST(CycleRangeTest, SingleNumberMeansDegenerateRange) {
  uint64_t Lo = 77, Hi = 88;
  ASSERT_TRUE(parseCycleRange("5", Lo, Hi));
  EXPECT_EQ(Lo, 5u);
  EXPECT_EQ(Hi, 5u);
  ASSERT_TRUE(parseCycleRange("2..9", Lo, Hi));
  EXPECT_EQ(Lo, 2u);
  EXPECT_EQ(Hi, 9u);
  ASSERT_TRUE(parseCycleRange("4..4", Lo, Hi));
  EXPECT_EQ(Lo, 4u);
  EXPECT_EQ(Hi, 4u);
}

TEST(CycleRangeTest, RejectsMalformedSpecsAndLeavesOutputsAlone) {
  const char *Bad[] = {"",     "x",     "5x",    "3..",   "..4",
                       "9..2", "3..7junk", "..",  "5..x", nullptr};
  for (const char **S = Bad; *S || S == &Bad[9]; ++S) {
    if (S == &Bad[9])
      break;
    uint64_t Lo = 123, Hi = 456;
    EXPECT_FALSE(parseCycleRange(*S, Lo, Hi)) << "spec: " << *S;
    EXPECT_EQ(Lo, 123u) << "Lo clobbered by: " << *S;
    EXPECT_EQ(Hi, 456u) << "Hi clobbered by: " << *S;
  }
  uint64_t Lo = 1, Hi = 2;
  EXPECT_FALSE(parseCycleRange(nullptr, Lo, Hi));
}
