//===- tests/observe/HeapSnapshotTest.cpp -------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Pure observe-layer tests for the heap locality observatory: the shared
// WLB formula's boundary behavior, the offline EC replay (filter, sort,
// budget/required-free prefix, RELOCATEALLSMALLPAGES, pinned/dead
// skips), ring-capacity drop accounting, and the JSONL round trip
// (including bit-exact doubles via %.17g).
//
//===----------------------------------------------------------------------===//

#include "observe/HeapSnapshot.h"
#include "observe/SnapshotLog.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace hcsgc;

namespace {

/// Convenience builder for replay-test audits over small pages.
EcAuditEntry smallEntry(uint64_t Begin, uint64_t Live, uint64_t Hot,
                        double Weight, EcVerdict V) {
  EcAuditEntry E;
  E.PageBegin = Begin;
  E.PageSize = 64 * 1024;
  E.LiveBytes = Live;
  E.HotBytes = Hot;
  E.Weight = Weight;
  E.SizeClass = SnapSizeClass::Small;
  E.Verdict = V;
  return E;
}

} // namespace

TEST(WlbFormulaTest, Boundaries) {
  // Hotness off: WLB is plain live bytes regardless of hot/confidence.
  EXPECT_EQ(wlbFormula(1000, 400, false, 0.7), 1000.0);
  // Hot == 0: all bytes are cold, WLB == live at every confidence.
  EXPECT_EQ(wlbFormula(1000, 0, true, 0.0), 1000.0);
  EXPECT_EQ(wlbFormula(1000, 0, true, 1.0), 1000.0);
  // Confidence 0: cold bytes count fully, WLB == live.
  EXPECT_EQ(wlbFormula(1000, 400, true, 0.0), 1000.0);
  // Confidence 1: cold bytes vanish, WLB == hot.
  EXPECT_EQ(wlbFormula(1000, 400, true, 1.0), 400.0);
  // Midpoint: hot + cold/2.
  EXPECT_EQ(wlbFormula(1000, 400, true, 0.5), 400.0 + 300.0);
  // Defensive: hot > live clamps cold to zero rather than going negative.
  EXPECT_EQ(wlbFormula(100, 400, true, 0.5), 400.0);
}

TEST(EcReplayTest, BudgetPrefixTakesLightestPages) {
  EcAudit A;
  A.BudgetSmall = 300.0;
  A.EvacLiveThreshold = 1.0; // Admit everything; test the budget alone.
  A.Hotness = 1;
  // Weights 100, 200, 400 at addresses 0x3000, 0x1000, 0x2000: the sort
  // is (weight, address), the prefix stops once the budget is full.
  A.Entries.push_back(smallEntry(0x3000, 100, 0, 100.0,
                                 EcVerdict::Selected));
  A.Entries.push_back(smallEntry(0x1000, 200, 0, 200.0,
                                 EcVerdict::Selected));
  A.Entries.push_back(smallEntry(0x2000, 400, 0, 400.0,
                                 EcVerdict::RejectedBudget));
  std::vector<uint64_t> Sel = replayEcSelection(A);
  EXPECT_EQ(Sel, (std::vector<uint64_t>{0x1000, 0x3000}));
  EXPECT_EQ(Sel, auditSelectedPages(A));
}

TEST(EcReplayTest, RequiredFreeExtendsPastBudget) {
  EcAudit A;
  A.BudgetSmall = 50.0; // Budget admits nothing on its own...
  // ...but reclamation demand forces the prefix onward until the freed
  // bytes (size - live) cover it.
  A.RequiredFree = 100 * 1024.0;
  A.EvacLiveThreshold = 1.0;
  A.Hotness = 1;
  A.Entries.push_back(smallEntry(0x1000, 1000, 0, 1000.0,
                                 EcVerdict::Selected));
  A.Entries.push_back(smallEntry(0x2000, 2000, 0, 2000.0,
                                 EcVerdict::Selected));
  A.Entries.push_back(smallEntry(0x3000, 3000, 0, 3000.0,
                                 EcVerdict::RejectedBudget));
  // Page 1 frees ~63KB < 100KB, page 2 pushes past it, page 3 is out.
  std::vector<uint64_t> Sel = replayEcSelection(A);
  EXPECT_EQ(Sel, (std::vector<uint64_t>{0x1000, 0x2000}));
  EXPECT_EQ(Sel, auditSelectedPages(A));
}

TEST(EcReplayTest, ThresholdDeadAndPinnedAreFilteredOut) {
  EcAudit A;
  A.BudgetSmall = 1e9;
  A.EvacLiveThreshold = 0.5; // 60000/64K > 0.5 > 100/64K.
  A.Hotness = 1;
  // A threshold rejection never re-enters the candidate pool on replay.
  A.Entries.push_back(smallEntry(0x1000, 60000, 0, 60000.0,
                                 EcVerdict::RejectedThreshold));
  // Dead and pinned pages are not candidates at all.
  A.Entries.push_back(smallEntry(0x2000, 0, 0, 0.0,
                                 EcVerdict::DeadReclaimed));
  EcAuditEntry Pinned = smallEntry(0x3000, 100, 0, 0.0,
                                   EcVerdict::PinnedSkipped);
  Pinned.Pinned = 1;
  A.Entries.push_back(Pinned);
  A.Entries.push_back(smallEntry(0x4000, 100, 0, 100.0,
                                 EcVerdict::Selected));
  std::vector<uint64_t> Sel = replayEcSelection(A);
  EXPECT_EQ(Sel, (std::vector<uint64_t>{0x4000}));
  EXPECT_EQ(Sel, auditSelectedPages(A));
}

TEST(EcReplayTest, RelocateAllSelectsEverySmallCandidate) {
  EcAudit A;
  A.RelocateAll = 1;
  A.BudgetSmall = 0.0; // RELOCATEALLSMALLPAGES ignores the budget.
  A.Hotness = 1;
  A.Entries.push_back(smallEntry(0x2000, 60000, 0, 0.0,
                                 EcVerdict::Selected));
  A.Entries.push_back(smallEntry(0x1000, 100, 0, 0.0,
                                 EcVerdict::Selected));
  A.Entries.push_back(smallEntry(0x3000, 0, 0, 0.0,
                                 EcVerdict::DeadReclaimed));
  std::vector<uint64_t> Sel = replayEcSelection(A);
  EXPECT_EQ(Sel, (std::vector<uint64_t>{0x1000, 0x2000}));
  EXPECT_EQ(Sel, auditSelectedPages(A));
}

TEST(EcReplayTest, MediumPagesUseOwnBudget) {
  EcAudit A;
  A.BudgetSmall = 1e9;
  A.BudgetMedium = 5000.0;
  A.EvacLiveThreshold = 0.5;
  A.Hotness = 1;
  EcAuditEntry M1 = smallEntry(0x100000, 4000, 0, 4000.0,
                               EcVerdict::Selected);
  M1.SizeClass = SnapSizeClass::Medium;
  M1.PageSize = 1024 * 1024;
  EcAuditEntry M2 = smallEntry(0x200000, 40000, 0, 40000.0,
                               EcVerdict::RejectedBudget);
  M2.SizeClass = SnapSizeClass::Medium;
  M2.PageSize = 1024 * 1024;
  EcAuditEntry L = smallEntry(0x300000, 123, 0, 123.0,
                              EcVerdict::LargeIgnored);
  L.SizeClass = SnapSizeClass::Large;
  A.Entries.push_back(M1);
  A.Entries.push_back(M2);
  A.Entries.push_back(L);
  std::vector<uint64_t> Sel = replayEcSelection(A);
  EXPECT_EQ(Sel, (std::vector<uint64_t>{0x100000}));
  EXPECT_EQ(Sel, auditSelectedPages(A));
}

TEST(SnapshotRingTest, DropsOldestPastCapacity) {
  SnapshotRing Ring(2);
  auto MakeSnap = [](uint64_t Cycle, size_t NPages) {
    CycleSnapshot S;
    S.Cycle = Cycle;
    S.Pages.resize(NPages);
    return S;
  };
  EXPECT_EQ(Ring.push(MakeSnap(1, 3)), 0u);
  EXPECT_EQ(Ring.push(MakeSnap(2, 5)), 0u);
  // Third push evicts cycle 1 and reports its 3 page records dropped.
  EXPECT_EQ(Ring.push(MakeSnap(3, 7)), 3u);
  std::vector<CycleSnapshot> H = Ring.history();
  ASSERT_EQ(H.size(), 2u);
  EXPECT_EQ(H[0].Cycle, 2u);
  EXPECT_EQ(H[1].Cycle, 3u);
}

TEST(SnapshotLogTest, JsonlRoundTripIsExact) {
  CycleSnapshot S;
  S.Cycle = 42;
  S.Point = SnapshotPoint::AfterEc;
  S.TimeNs = 123456789;
  S.ColdConfidence = 1.0 / 3.0; // Not representable in few digits.
  S.Hotness = 1;

  PageRecord P;
  P.PageBegin = 0xdeadbeef0000ull;
  P.PageSize = 64 * 1024;
  P.UsedBytes = 60000;
  P.LiveBytes = 50000;
  P.HotBytes = 12345;
  P.AllocSeq = 7;
  P.RelocOutBytesGc = 100;
  P.RelocOutBytesMutator = 200;
  P.Wlb = wlbFormula(P.LiveBytes, P.HotBytes, true, S.ColdConfidence);
  P.SizeClass = SnapSizeClass::Small;
  P.State = SnapPageState::RelocSource;
  P.Pinned = 0;
  P.EcSelected = 1;
  S.Pages.push_back(P);

  S.HasAudit = true;
  S.Audit.Cycle = 42;
  S.Audit.ColdConfidence = S.ColdConfidence;
  S.Audit.EvacLiveThreshold = 0.1;
  S.Audit.BudgetSmall = 98765.4321;
  S.Audit.BudgetMedium = 0.125;
  S.Audit.RequiredFree = 4096.0;
  S.Audit.Hotness = 1;
  S.Audit.RelocateAll = 0;
  S.Audit.Entries.push_back(
      smallEntry(P.PageBegin, P.LiveBytes, P.HotBytes, P.Wlb,
                 EcVerdict::Selected));

  std::string Line = snapshotToJson(S);
  CycleSnapshot R;
  std::string Error;
  ASSERT_TRUE(parseSnapshotLine(Line, R, Error)) << Error;

  EXPECT_EQ(R.Cycle, S.Cycle);
  EXPECT_EQ(R.Point, S.Point);
  EXPECT_EQ(R.TimeNs, S.TimeNs);
  EXPECT_EQ(R.ColdConfidence, S.ColdConfidence); // Bit-exact via %.17g.
  EXPECT_EQ(R.Hotness, S.Hotness);
  ASSERT_EQ(R.Pages.size(), 1u);
  const PageRecord &Q = R.Pages[0];
  EXPECT_EQ(Q.PageBegin, P.PageBegin);
  EXPECT_EQ(Q.PageSize, P.PageSize);
  EXPECT_EQ(Q.UsedBytes, P.UsedBytes);
  EXPECT_EQ(Q.LiveBytes, P.LiveBytes);
  EXPECT_EQ(Q.HotBytes, P.HotBytes);
  EXPECT_EQ(Q.AllocSeq, P.AllocSeq);
  EXPECT_EQ(Q.RelocOutBytesGc, P.RelocOutBytesGc);
  EXPECT_EQ(Q.RelocOutBytesMutator, P.RelocOutBytesMutator);
  EXPECT_EQ(Q.Wlb, P.Wlb);
  EXPECT_EQ(Q.SizeClass, P.SizeClass);
  EXPECT_EQ(Q.State, P.State);
  EXPECT_EQ(Q.Pinned, P.Pinned);
  EXPECT_EQ(Q.EcSelected, P.EcSelected);
  ASSERT_TRUE(R.HasAudit);
  EXPECT_EQ(R.Audit.Cycle, S.Audit.Cycle);
  EXPECT_EQ(R.Audit.ColdConfidence, S.Audit.ColdConfidence);
  EXPECT_EQ(R.Audit.EvacLiveThreshold, S.Audit.EvacLiveThreshold);
  EXPECT_EQ(R.Audit.BudgetSmall, S.Audit.BudgetSmall);
  EXPECT_EQ(R.Audit.BudgetMedium, S.Audit.BudgetMedium);
  EXPECT_EQ(R.Audit.RequiredFree, S.Audit.RequiredFree);
  EXPECT_EQ(R.Audit.Hotness, S.Audit.Hotness);
  EXPECT_EQ(R.Audit.RelocateAll, S.Audit.RelocateAll);
  ASSERT_EQ(R.Audit.Entries.size(), 1u);
  EXPECT_EQ(R.Audit.Entries[0].PageBegin, P.PageBegin);
  EXPECT_EQ(R.Audit.Entries[0].Weight, P.Wlb);
  EXPECT_EQ(R.Audit.Entries[0].Verdict, EcVerdict::Selected);

  // Replay works identically on the round-tripped audit.
  EXPECT_EQ(replayEcSelection(R.Audit), replayEcSelection(S.Audit));
}

TEST(SnapshotLogTest, ReadLogSkipsBlanksAndReportsLineNumbers) {
  CycleSnapshot A, B;
  A.Cycle = 1;
  B.Cycle = 2;
  std::string Text =
      snapshotToJson(A) + "\n\n" + snapshotToJson(B) + "\n";
  std::vector<CycleSnapshot> Out;
  std::string Error;
  ASSERT_TRUE(readSnapshotLog(Text, Out, Error)) << Error;
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Out[0].Cycle, 1u);
  EXPECT_EQ(Out[1].Cycle, 2u);

  // A corrupt third line fails and names its line number.
  Text += "{not json\n";
  Out.clear();
  EXPECT_FALSE(readSnapshotLog(Text, Out, Error));
  EXPECT_NE(Error.find("4"), std::string::npos) << Error;
}
