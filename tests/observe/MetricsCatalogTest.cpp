//===- tests/observe/MetricsCatalogTest.cpp - docs/METRICS.md vs runtime -===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Keeps docs/METRICS.md honest, in both directions: every counter,
/// histogram and trace-event name the runtime registers must have a row
/// in the catalog, and every catalogued name must still exist in code.
/// Boots a full Runtime, drives one relocating cycle so every metric
/// family (alloc TLAB, alloc shard/cache/quarantine, gc.*) is bound,
/// then diffs the registry and the trace-event name table against the
/// backtick-quoted first-column names parsed from the markdown. The
/// catalog path is baked in via the HCSGC_SOURCE_DIR compile definition.
///
//===----------------------------------------------------------------------===//

#include "observe/TraceEvent.h"
#include "runtime/Runtime.h"
#include "workloads/KvWorkload.h"

#include <gtest/gtest.h>

#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>

using namespace hcsgc;

namespace {

std::string catalogPath() {
  return std::string(HCSGC_SOURCE_DIR) + "/docs/METRICS.md";
}

/// Names from table rows: the backtick-quoted word opening a `| ... |`
/// line. Section membership is irrelevant — all names share one space.
std::set<std::string> parseCatalogNames() {
  std::ifstream In(catalogPath());
  EXPECT_TRUE(In.good()) << "cannot open " << catalogPath();
  std::set<std::string> Names;
  std::regex RowRe(R"(^\|\s*`([^`]+)`\s*\|)");
  std::string Line;
  while (std::getline(In, Line)) {
    std::smatch M;
    if (std::regex_search(Line, M, RowRe) && M[1] != "Name")
      Names.insert(M[1]);
  }
  return Names;
}

/// Registers every runtime metric by exercising all emitting subsystems:
/// small + medium allocation, a relocating GC cycle (quarantine + ec +
/// reloc counters), then returns the populated runtime.
std::unique_ptr<Runtime> bootAllMetrics() {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 512 * 1024;
  Cfg.MaxHeapBytes = 16u << 20;
  Cfg.TriggerFraction = 1.0;
  Cfg.RelocateAllSmallPages = true;
  Cfg.SnapshotLogEnabled = true; // Exercise the snapshot.* family too.
  auto RT = std::make_unique<Runtime>(Cfg);
  ClassId Small = RT->registerClass("cat.Small", 1, 1024);
  ClassId Medium = RT->registerClass("cat.Medium", 0, 16 * 1024);
  auto M = RT->attachMutator();
  {
    Root Keep(*M);
    M->allocate(Keep, Small);
    Root Tmp(*M);
    M->allocate(Tmp, Medium);
    M->requestGcAndWait();
    M->requestGcAndWait();

    // A tiny KV run binds the kv.* workload family (counters plus the
    // merged op-latency histogram).
    KvWorkloadParams P;
    P.Records = 200;
    P.ChurnKeys = 64;
    P.Ops = 1500;
    P.Threads = 2;
    P.Shards = 2;
    P.ValueWords = 2;
    P.ReadPct = 60; // leave a churn share so kv.ops.insert/remove bind
    P.UpdatePct = 20;
    P.ComputeCyclesPerOp = 0;
    runKvWorkload(*M, P);
  }
  M.reset();
  return RT;
}

} // namespace

TEST(MetricsCatalogTest, RuntimeNamesAllCatalogued) {
  std::set<std::string> Catalog = parseCatalogNames();
  ASSERT_FALSE(Catalog.empty());
  auto RT = bootAllMetrics();

  for (const auto &[Name, Value] : RT->metrics().counterSnapshot())
    EXPECT_TRUE(Catalog.count(Name))
        << "counter \"" << Name
        << "\" is registered at runtime but missing from docs/METRICS.md";
  for (const std::string &Name : RT->metrics().histogramNames())
    EXPECT_TRUE(Catalog.count(Name))
        << "histogram \"" << Name
        << "\" is registered at runtime but missing from docs/METRICS.md";
  for (unsigned K = 0;
       K <= static_cast<unsigned>(TraceEventKind::EmergencyCycle); ++K)
    EXPECT_TRUE(Catalog.count(
        traceEventKindName(static_cast<TraceEventKind>(K))))
        << "trace event \""
        << traceEventKindName(static_cast<TraceEventKind>(K))
        << "\" is missing from docs/METRICS.md";
}

TEST(MetricsCatalogTest, CataloguedNamesAllExist) {
  std::set<std::string> Catalog = parseCatalogNames();
  ASSERT_FALSE(Catalog.empty());
  auto RT = bootAllMetrics();

  std::set<std::string> Live;
  for (const auto &[Name, Value] : RT->metrics().counterSnapshot())
    Live.insert(Name);
  for (const std::string &Name : RT->metrics().histogramNames())
    Live.insert(Name);
  for (unsigned K = 0;
       K <= static_cast<unsigned>(TraceEventKind::EmergencyCycle); ++K)
    Live.insert(traceEventKindName(static_cast<TraceEventKind>(K)));

  for (const std::string &Name : Catalog)
    EXPECT_TRUE(Live.count(Name))
        << "docs/METRICS.md lists \"" << Name
        << "\" but the runtime no longer registers it — update the doc";
}

TEST(MetricsCatalogTest, EveryMetricFamilyIsExercised) {
  // Guard the booter itself: if a future refactor stops the boot
  // workload from touching a family, the two tests above would silently
  // compare against a shrunken live set.
  auto RT = bootAllMetrics();
  EXPECT_GT(RT->metrics().counterValue("alloc.tlab.refills"), 0u);
  EXPECT_GT(RT->metrics().counterValue("alloc.tlab.medium_refills"), 0u);
  EXPECT_GT(RT->metrics().counterValue("alloc.cache.page_misses"), 0u);
  EXPECT_GT(RT->metrics().counterValue("alloc.quarantine.batch_passes"),
            0u);
  EXPECT_GT(RT->metrics().counterValue("gc.cycles"), 0u);
  EXPECT_GT(RT->metrics().counterValue("snapshot.captures"), 0u);
  EXPECT_GT(RT->metrics().counterValue("snapshot.pages_recorded"), 0u);
  EXPECT_GT(RT->metrics().counterValue("kv.ops.read"), 0u);
  EXPECT_GT(RT->metrics().counterValue("kv.ops.insert"), 0u);
  EXPECT_NE(RT->metrics().findHistogram("kv.op_latency_ns"), nullptr);

  // The site.* family must be registered even with SITEPROFILING off
  // (the boot config runs without hotness): the names are created
  // unconditionally so the catalog diff is config-independent.
  std::set<std::string> Names;
  for (const auto &[Name, Value] : RT->metrics().counterSnapshot())
    Names.insert(Name);
  for (const char *N :
       {"site.tagged_bytes", "site.survived_bytes", "site.relocated_bytes",
        "site.pretenured_bytes", "site.route_flips", "site.profile_cycles",
        "alloc.tlab.pretenure_refills"})
    EXPECT_TRUE(Names.count(N)) << N;

  // Likewise the raw-speed counters (INTERNALS §14): registered even
  // when probes are off and MarkPrefetchDistance is 0, so the catalog
  // diff never depends on the boot config.
  for (const char *N :
       {"simcache.batch_flushes", "simcache.batch_events",
        "simcache.batch_sampled_out", "mark.prefetch_issued",
        "mark.prefetch_drains"})
    EXPECT_TRUE(Names.count(N)) << N;
  // The boot workload runs with the default nonzero prefetch distance,
  // so the mark drain must actually account its prefetches.
  EXPECT_GT(RT->metrics().counterValue("mark.prefetch_issued"), 0u);
}
