//===- tests/observe/MetricsTest.cpp ------------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// MetricsRegistry aggregation semantics: counters sum across threads,
// histograms keep exact count/sum/min/max with bucket-resolution
// percentiles, and lookups return stable references.
//
//===----------------------------------------------------------------------===//

#include "observe/Metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace hcsgc;

TEST(MetricsTest, CounterAccumulates) {
  Counter C;
  EXPECT_EQ(C.value(), 0u);
  C.increment();
  C.add(41);
  EXPECT_EQ(C.value(), 42u);
}

TEST(MetricsTest, CounterSumsAcrossThreads) {
  MetricsRegistry R;
  Counter &C = R.counter("test.parallel");
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&C] {
      for (int I = 0; I < 10000; ++I)
        C.increment();
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(C.value(), 40000u);
}

TEST(MetricsTest, HistogramExactMoments) {
  Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.percentile(0.5), 0u);
  for (uint64_t S : {5u, 10u, 15u, 1000u})
    H.record(S);
  EXPECT_EQ(H.count(), 4u);
  EXPECT_EQ(H.sum(), 1030u);
  EXPECT_EQ(H.min(), 5u);
  EXPECT_EQ(H.max(), 1000u);
  EXPECT_DOUBLE_EQ(H.mean(), 1030.0 / 4.0);
}

TEST(MetricsTest, HistogramZeroSample) {
  Histogram H;
  H.record(0);
  EXPECT_EQ(H.count(), 1u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 0u);
  EXPECT_EQ(H.percentile(0.5), 0u);
  EXPECT_EQ(H.buckets()[0], 1u);
}

TEST(MetricsTest, HistogramBucketsByBitWidth) {
  Histogram H;
  H.record(1);    // width 1 -> bucket 1
  H.record(2);    // width 2 -> bucket 2
  H.record(3);    // width 2 -> bucket 2
  H.record(1024); // width 11 -> bucket 11
  std::vector<uint64_t> B = H.buckets();
  EXPECT_EQ(B[1], 1u);
  EXPECT_EQ(B[2], 2u);
  EXPECT_EQ(B[11], 1u);
}

TEST(MetricsTest, HistogramPercentilesOrderedAndClamped) {
  Histogram H;
  for (uint64_t I = 1; I <= 1000; ++I)
    H.record(I);
  uint64_t P50 = H.percentile(0.5);
  uint64_t P95 = H.percentile(0.95);
  uint64_t P100 = H.percentile(1.0);
  EXPECT_LE(P50, P95);
  EXPECT_LE(P95, P100);
  EXPECT_GE(P50, H.min());
  EXPECT_LE(P100, H.max());
  // Bucket resolution is a power of two: the p50 of 1..1000 must land in
  // the same power-of-two decade as the true median 500.
  EXPECT_GE(P50, 256u);
  EXPECT_LE(P50, 1000u);
}

TEST(MetricsTest, HistogramPercentileInterpolatesWithinBucket) {
  // 1000 samples of 600 plus one of 100: every percentile above ~0.1%
  // ranks inside bucket 10 ([512, 1023]), and the within-bucket linear
  // interpolation must stay clamped to the observed max rather than
  // reporting the bucket's upper edge.
  Histogram H;
  H.record(100);
  for (int I = 0; I < 1000; ++I)
    H.record(600);
  EXPECT_LE(H.percentile(0.99), 600u);
  EXPECT_GE(H.percentile(0.99), 512u);
  // A low rank inside the bucket sits near its lower edge, a high rank
  // near its (clamped) top — interpolation, not a constant per bucket.
  Histogram G;
  for (uint64_t I = 512; I < 1024; ++I)
    G.record(I);
  uint64_t P10 = G.percentile(0.10);
  uint64_t P90 = G.percentile(0.90);
  EXPECT_LT(P10, P90); // Same bucket, different estimates.
  EXPECT_NEAR(static_cast<double>(P10), 512.0 + 0.10 * 511.0, 32.0);
  EXPECT_NEAR(static_cast<double>(P90), 512.0 + 0.90 * 511.0, 32.0);
}

TEST(MetricsTest, HistogramConcurrentRecords) {
  Histogram H;
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&H, T] {
      for (uint64_t I = 0; I < 5000; ++I)
        H.record(static_cast<uint64_t>(T) * 5000 + I);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(H.count(), 20000u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 19999u);
  EXPECT_EQ(H.sum(), 19999u * 20000u / 2);
}

TEST(MetricsTest, HistogramMergeEqualsSingleThreadedRecording) {
  // The per-thread pattern: each worker records into its own local
  // histogram, merged once at the end. The merged result must be
  // indistinguishable from one histogram that saw every sample.
  constexpr int Shards = 4;
  constexpr uint64_t PerShard = 2500;
  Histogram Single, Parts[Shards], Merged;
  for (int S = 0; S < Shards; ++S)
    for (uint64_t I = 0; I < PerShard; ++I) {
      // Mixed magnitudes so many buckets are populated, including 0.
      uint64_t Sample = (I * 7919 + static_cast<uint64_t>(S)) %
                        (I % 3 == 0 ? 17 : 1 << 20);
      Single.record(Sample);
      Parts[S].record(Sample);
    }
  for (const Histogram &P : Parts)
    Merged.merge(P);

  EXPECT_EQ(Merged.count(), Single.count());
  EXPECT_EQ(Merged.sum(), Single.sum());
  EXPECT_EQ(Merged.min(), Single.min());
  EXPECT_EQ(Merged.max(), Single.max());
  EXPECT_EQ(Merged.buckets(), Single.buckets());
  EXPECT_DOUBLE_EQ(Merged.mean(), Single.mean());
  for (double P : {0.5, 0.9, 0.99, 1.0})
    EXPECT_EQ(Merged.percentile(P), Single.percentile(P)) << "p" << P;
}

TEST(MetricsTest, HistogramMergeEmptyCases) {
  Histogram Empty, H;
  H.record(42);
  // Merging an empty histogram changes nothing — in particular min must
  // not be clobbered by the empty sentinel.
  H.merge(Empty);
  EXPECT_EQ(H.count(), 1u);
  EXPECT_EQ(H.min(), 42u);
  EXPECT_EQ(H.max(), 42u);
  // Merging into an empty histogram adopts everything.
  Histogram Target;
  Target.merge(H);
  EXPECT_EQ(Target.count(), 1u);
  EXPECT_EQ(Target.min(), 42u);
  EXPECT_EQ(Target.max(), 42u);
  EXPECT_EQ(Target.sum(), 42u);
  // Empty-into-empty stays empty.
  Histogram A, B;
  A.merge(B);
  EXPECT_EQ(A.count(), 0u);
  EXPECT_EQ(A.percentile(0.5), 0u);
}

TEST(MetricsTest, HistogramMergeConcurrentWithReads) {
  // The merge target may be observed concurrently (the registry
  // histogram is global); readers must never see count move backwards.
  Histogram Parts[4], Target;
  for (int S = 0; S < 4; ++S)
    for (uint64_t I = 0; I < 1000; ++I)
      Parts[S].record(I);
  std::atomic<bool> Done{false};
  std::thread Reader([&] {
    uint64_t Prev = 0;
    while (!Done.load(std::memory_order_acquire)) {
      uint64_t C = Target.count();
      EXPECT_GE(C, Prev);
      Prev = C;
    }
  });
  std::vector<std::thread> Mergers;
  for (int S = 0; S < 4; ++S)
    Mergers.emplace_back([&, S] { Target.merge(Parts[S]); });
  for (std::thread &T : Mergers)
    T.join();
  Done.store(true, std::memory_order_release);
  Reader.join();
  EXPECT_EQ(Target.count(), 4000u);
  EXPECT_EQ(Target.min(), 0u);
  EXPECT_EQ(Target.max(), 999u);
}

TEST(MetricsTest, RegistryReturnsStableReferences) {
  MetricsRegistry R;
  Counter &A = R.counter("stable.a");
  A.add(7);
  Counter &B = R.counter("stable.b");
  B.add(1);
  // Creating more metrics must not move existing ones.
  for (int I = 0; I < 100; ++I)
    R.counter("filler." + std::to_string(I));
  EXPECT_EQ(&R.counter("stable.a"), &A);
  EXPECT_EQ(A.value(), 7u);

  Histogram &H = R.histogram("stable.h");
  H.record(3);
  EXPECT_EQ(&R.histogram("stable.h"), &H);
}

TEST(MetricsTest, RegistryReaderConveniences) {
  MetricsRegistry R;
  EXPECT_EQ(R.counterValue("missing"), 0u);
  EXPECT_EQ(R.findHistogram("missing"), nullptr);

  R.counter("x").add(5);
  R.counter("a").add(1);
  EXPECT_EQ(R.counterValue("x"), 5u);

  auto Snap = R.counterSnapshot();
  ASSERT_EQ(Snap.size(), 2u);
  EXPECT_EQ(Snap[0].first, "a"); // sorted by name
  EXPECT_EQ(Snap[1].first, "x");
  EXPECT_EQ(Snap[1].second, 5u);

  R.histogram("h1");
  R.histogram("h0");
  auto Names = R.histogramNames();
  ASSERT_EQ(Names.size(), 2u);
  EXPECT_EQ(Names[0], "h0");
  EXPECT_EQ(Names[1], "h1");
  EXPECT_NE(R.findHistogram("h0"), nullptr);
}
