//===- tests/observe/TraceBufferTest.cpp --------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The TraceBuffer semantics the rest of the trace layer is built on:
// per-buffer FIFO order, drop-newest overflow that never corrupts
// retained events, and a TraceSession that merges per-thread buffers into
// one time-sorted stream.
//
//===----------------------------------------------------------------------===//

#include "observe/TraceBuffer.h"

#include <gtest/gtest.h>

#include <thread>

using namespace hcsgc;

namespace {

TraceEvent makeEvent(uint64_t Time, uint64_t Payload) {
  TraceEvent E;
  E.TimeNs = Time;
  E.Kind = TraceEventKind::HotFlag;
  E.Cycle = 1;
  E.A = Payload;
  return E;
}

} // namespace

TEST(TraceBufferTest, DrainsInFifoOrder) {
  TraceBuffer Buf(/*Capacity=*/16, /*Tid=*/0, /*GcThread=*/false);
  for (uint64_t I = 0; I < 10; ++I)
    ASSERT_TRUE(Buf.tryPush(makeEvent(I, 100 + I)));
  EXPECT_EQ(Buf.size(), 10u);

  std::vector<TraceEvent> Out;
  EXPECT_EQ(Buf.drainTo(Out), 10u);
  ASSERT_EQ(Out.size(), 10u);
  for (uint64_t I = 0; I < 10; ++I) {
    EXPECT_EQ(Out[I].TimeNs, I);
    EXPECT_EQ(Out[I].A, 100 + I);
  }
  EXPECT_EQ(Buf.size(), 0u);
  EXPECT_EQ(Buf.dropped(), 0u);
}

TEST(TraceBufferTest, OverflowDropsNewestAndCounts) {
  const size_t Cap = 8;
  TraceBuffer Buf(Cap, 0, false);
  for (uint64_t I = 0; I < Cap; ++I)
    ASSERT_TRUE(Buf.tryPush(makeEvent(I, I)));
  // The ring is full: further pushes are dropped, retained events stay
  // intact.
  for (uint64_t I = Cap; I < Cap + 5; ++I)
    EXPECT_FALSE(Buf.tryPush(makeEvent(I, I)));
  EXPECT_EQ(Buf.dropped(), 5u);
  EXPECT_EQ(Buf.size(), Cap);

  std::vector<TraceEvent> Out;
  Buf.drainTo(Out);
  ASSERT_EQ(Out.size(), Cap);
  for (uint64_t I = 0; I < Cap; ++I)
    EXPECT_EQ(Out[I].A, I) << "retained event corrupted by overflow";
}

TEST(TraceBufferTest, ReusableAfterDrain) {
  TraceBuffer Buf(4, 0, false);
  std::vector<TraceEvent> Out;
  for (int Round = 0; Round < 3; ++Round) {
    for (uint64_t I = 0; I < 4; ++I)
      ASSERT_TRUE(Buf.tryPush(makeEvent(I, I)));
    EXPECT_FALSE(Buf.tryPush(makeEvent(9, 9)));
    Out.clear();
    EXPECT_EQ(Buf.drainTo(Out), 4u);
  }
  EXPECT_EQ(Buf.dropped(), 3u); // one overflow per round
}

TEST(TraceBufferTest, SessionRegistersOneBufferPerSlot) {
  TraceSession S(/*BufferCapacity=*/64);
  EXPECT_FALSE(S.enabled());
  S.setEnabled(true);

  TraceBuffer *Slot = nullptr;
  S.record(Slot, /*GcThread=*/true, TraceEventKind::CycleBegin, 1);
  ASSERT_NE(Slot, nullptr);
  TraceBuffer *First = Slot;
  S.record(Slot, true, TraceEventKind::CycleEnd, 1);
  EXPECT_EQ(Slot, First) << "slot must be registered exactly once";
  EXPECT_EQ(S.threadCount(), 1u);
  EXPECT_TRUE(Slot->isGcThread());
}

TEST(TraceBufferTest, MacroSkipsWhenDisabled) {
  TraceSession S(64);
  TraceBuffer *Slot = nullptr;
  // Disabled: the macro must not evaluate the recording path at all.
  HCSGC_TRACE(S, Slot, false, TraceEventKind::HotFlag, 1, 0xdead);
  EXPECT_EQ(Slot, nullptr);
  EXPECT_EQ(S.threadCount(), 0u);

  S.setEnabled(true);
  HCSGC_TRACE(S, Slot, false, TraceEventKind::HotFlag, 1, 0xbeef);
  ASSERT_NE(Slot, nullptr);
  CollectedTrace T = S.collect();
  ASSERT_EQ(T.Events.size(), 1u);
  EXPECT_EQ(T.Events[0].A, 0xbeefu);
}

TEST(TraceBufferTest, CollectMergesThreadsSortedByTime) {
  TraceSession S(1 << 10);
  S.setEnabled(true);

  auto Producer = [&S](bool GcThread, int Count) {
    TraceBuffer *Slot = nullptr;
    for (int I = 0; I < Count; ++I)
      S.record(Slot, GcThread, TraceEventKind::HotFlag, 1,
               static_cast<uint64_t>(I));
  };
  std::thread T1([&] { Producer(true, 200); });
  std::thread T2([&] { Producer(false, 300); });
  T1.join();
  T2.join();

  CollectedTrace T = S.collect();
  ASSERT_EQ(T.Events.size(), 500u);
  ASSERT_EQ(T.Threads.size(), 2u);
  for (size_t I = 1; I < T.Events.size(); ++I)
    EXPECT_LE(T.Events[I - 1].TimeNs, T.Events[I].TimeNs);
  // Per-thread FIFO survives the merge.
  uint64_t NextPerTid[2] = {0, 0};
  for (const TraceEvent &E : T.Events) {
    ASSERT_LT(E.Tid, 2u);
    EXPECT_EQ(E.A, NextPerTid[E.Tid]++);
  }
  EXPECT_EQ(T.DroppedTotal, 0u);

  // Collection consumes: a second collect sees no events but still lists
  // the registered threads.
  CollectedTrace Again = S.collect();
  EXPECT_TRUE(Again.Events.empty());
  EXPECT_EQ(Again.Threads.size(), 2u);
}

TEST(TraceBufferTest, EventsWhileDisabledAreNotRecorded) {
  TraceSession S(64);
  S.setEnabled(true);
  TraceBuffer *Slot = nullptr;
  S.record(Slot, false, TraceEventKind::HotFlag, 1, 1);
  S.setEnabled(false);
  // record() itself is below the enabled() gate the macro applies; the
  // instrumented sites never call it while disabled.
  HCSGC_TRACE(S, Slot, false, TraceEventKind::HotFlag, 1, 2);
  S.setEnabled(true);
  S.record(Slot, false, TraceEventKind::HotFlag, 1, 3);

  CollectedTrace T = S.collect();
  ASSERT_EQ(T.Events.size(), 2u);
  EXPECT_EQ(T.Events[0].A, 1u);
  EXPECT_EQ(T.Events[1].A, 3u);
}
