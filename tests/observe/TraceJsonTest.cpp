//===- tests/observe/TraceJsonTest.cpp ----------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Exporter <-> loader round-trip against the Chrome trace_event schema:
// every event kind survives a write/read cycle field-exact (addresses as
// hex strings, doubles bit-exact via %.17g, timestamps at ns resolution),
// the emitted document has the shape chrome://tracing expects, and the
// loader tolerates foreign events while rejecting non-trace input.
//
//===----------------------------------------------------------------------===//

#include "observe/Json.h"
#include "observe/TraceJson.h"

#include <gtest/gtest.h>

using namespace hcsgc;

namespace {

TraceEvent event(TraceEventKind Kind, uint64_t TimeNs, uint64_t Cycle,
                 uint64_t A = 0, uint64_t B = 0, uint64_t C = 0,
                 uint64_t D = 0, uint8_t GcThread = 0, uint16_t Tid = 0) {
  TraceEvent E;
  E.Kind = Kind;
  E.TimeNs = TimeNs;
  E.Cycle = Cycle;
  E.A = A;
  E.B = B;
  E.C = C;
  E.D = D;
  E.GcThread = GcThread;
  E.Tid = Tid;
  return E;
}

/// One of every kind, with payloads chosen to stress the encoding:
/// full-width addresses, doubles 0.0/1.0/non-terminating, ns timestamps
/// that only survive if the µs conversion keeps 3 decimals.
CollectedTrace makeFullTrace() {
  CollectedTrace T;
  T.DroppedTotal = 42;
  T.Threads.push_back({/*Tid=*/0, /*GcThread=*/true, 9, 0});
  T.Threads.push_back({/*Tid=*/2, /*GcThread=*/false, 3, 42});

  uint64_t Ts = 123456789; // 123456.789 us: needs all three decimals
  auto Next = [&Ts] { return Ts += 1001; };

  T.Events.push_back(event(TraceEventKind::CycleBegin, Next(), 7, 0, 0, 0,
                           0, 1, 0));
  T.Events.push_back(event(TraceEventKind::HotmapReset, Next(), 7,
                           /*pages=*/512, 0, 0, 0, 1, 0));
  T.Events.push_back(event(TraceEventKind::PauseBegin, Next(), 7,
                           uint64_t(GcPhase::Stw1), 0, 0, 0, 1, 0));
  T.Events.push_back(event(TraceEventKind::PauseEnd, Next(), 7,
                           uint64_t(GcPhase::Stw1), 0, 0, 0, 1, 0));
  T.Events.push_back(event(TraceEventKind::PhaseBegin, Next(), 7,
                           uint64_t(GcPhase::Mark), 0, 0, 0, 1, 0));
  T.Events.push_back(event(TraceEventKind::HotFlag, Next(), 7,
                           /*addr=*/0x7f00deadbeef0ull, /*bytes=*/48, 0,
                           0, 0, 2));
  T.Events.push_back(event(TraceEventKind::PhaseEnd, Next(), 7,
                           uint64_t(GcPhase::Mark), 0, 0, 0, 1, 0));
  T.Events.push_back(event(TraceEventKind::PhaseBegin, Next(), 7,
                           uint64_t(GcPhase::EcSelect),
                           traceBitsFromDouble(1.0 / 3.0), /*hotness=*/1,
                           0, 1, 0));
  T.Events.push_back(event(TraceEventKind::EcPageConsidered, Next(), 7,
                           /*page=*/0x200000ull, /*live=*/65536,
                           /*hot=*/4096,
                           traceBitsFromDouble(65536.0 - 4096.0 * 0.25),
                           1, 0));
  T.Events.push_back(event(TraceEventKind::EcPageSelected, Next(), 7,
                           0x200000ull, 65536, 4096,
                           traceBitsFromDouble(0.0), 1, 0));
  T.Events.push_back(event(TraceEventKind::EcPageReclaimed, Next(), 7,
                           /*page=*/0x240000ull,
                           /*page_bytes=*/256 * 1024, 0, 0, 1, 0));
  T.Events.push_back(event(TraceEventKind::PhaseEnd, Next(), 7,
                           uint64_t(GcPhase::EcSelect), 0, 0, 0, 1, 0));
  T.Events.push_back(event(TraceEventKind::PauseBegin, Next(), 7,
                           uint64_t(GcPhase::Stw3), 0, 0, 0, 1, 0));
  T.Events.push_back(event(TraceEventKind::Relocation, Next(), 7,
                           /*from=*/0xffffffffffff8ull,
                           /*to=*/0x300040ull, /*bytes=*/64, 0, 0, 2));
  T.Events.push_back(event(TraceEventKind::PauseEnd, Next(), 7,
                           uint64_t(GcPhase::Stw3), 0, 0, 0, 1, 0));
  T.Events.push_back(event(TraceEventKind::PhaseBegin, Next(), 7,
                           uint64_t(GcPhase::Relocate), 0, 0, 0, 1, 0));
  T.Events.push_back(event(TraceEventKind::PhaseEnd, Next(), 7,
                           uint64_t(GcPhase::Relocate), 0, 0, 0, 1, 0));
  T.Events.push_back(event(TraceEventKind::AllocStall, Next(), 7,
                           /*bytes=*/1552, /*attempt=*/3,
                           /*cycles=*/2, 0, 0, 2));
  T.Events.push_back(event(TraceEventKind::EmergencyCycle, Next(), 7,
                           /*used=*/4128768, /*quarantined=*/131072, 0,
                           0, 1, 0));
  T.Events.push_back(event(TraceEventKind::CycleEnd, Next(), 7, 0, 0, 0,
                           0, 1, 0));
  return T;
}

} // namespace

TEST(TraceJsonTest, RoundTripsEveryEventKindFieldExact) {
  CollectedTrace Orig = makeFullTrace();
  std::string Json = chromeTraceToString(Orig);

  CollectedTrace Back;
  std::string Error;
  ASSERT_TRUE(readChromeTrace(Json, Back, Error)) << Error;

  EXPECT_EQ(Back.DroppedTotal, 42u);
  ASSERT_EQ(Back.Events.size(), Orig.Events.size());
  for (size_t I = 0; I < Orig.Events.size(); ++I) {
    const TraceEvent &A = Orig.Events[I];
    const TraceEvent &B = Back.Events[I];
    SCOPED_TRACE(std::string("event ") + std::to_string(I) + " (" +
                 traceEventKindName(A.Kind) + ")");
    EXPECT_EQ(B.Kind, A.Kind);
    EXPECT_EQ(B.TimeNs, A.TimeNs);
    EXPECT_EQ(B.Cycle, A.Cycle);
    EXPECT_EQ(B.Tid, A.Tid);
    EXPECT_EQ(B.GcThread, A.GcThread);
    EXPECT_EQ(B.A, A.A);
    EXPECT_EQ(B.B, A.B);
    EXPECT_EQ(B.C, A.C);
    EXPECT_EQ(B.D, A.D) << "doubles must round-trip bit-exact (%.17g)";
  }

  // Thread table rebuilt from metadata + events, GC attribution intact.
  ASSERT_EQ(Back.Threads.size(), 2u); // tid 0 (gc), tid 2 (mutator)
  for (const TraceThreadInfo &Info : Back.Threads) {
    if (Info.Tid == 0)
      EXPECT_TRUE(Info.GcThread);
    else
      EXPECT_FALSE(Info.GcThread);
  }
}

TEST(TraceJsonTest, DocumentMatchesTraceEventSchema) {
  CollectedTrace T = makeFullTrace();
  std::string Json = chromeTraceToString(T);

  JsonValue Doc;
  std::string Error;
  ASSERT_TRUE(parseJson(Json, Doc, Error)) << Error;

  // Top-level shape chrome://tracing / Perfetto expect.
  EXPECT_EQ(Doc["displayTimeUnit"].stringOr(""), "ms");
  EXPECT_EQ(Doc["otherData"]["tool"].stringOr(""), "hcsgc");
  EXPECT_DOUBLE_EQ(Doc["otherData"]["dropped_events"].numberOr(-1), 42.0);
  ASSERT_TRUE(Doc["traceEvents"].isArray());

  size_t Meta = 0, Durations = 0, Instants = 0;
  for (const JsonValue &EV : Doc["traceEvents"].array()) {
    ASSERT_TRUE(EV.isObject());
    std::string Ph = EV["ph"].stringOr("");
    if (Ph == "M") {
      ++Meta;
      EXPECT_EQ(EV["name"].stringOr(""), "thread_name");
      EXPECT_FALSE(EV["args"]["name"].stringOr("").empty());
      continue;
    }
    // Every real event: required trace_event fields plus our args.
    EXPECT_TRUE(EV["ts"].isNumber());
    EXPECT_DOUBLE_EQ(EV["pid"].numberOr(0), 1.0);
    EXPECT_TRUE(EV["tid"].isNumber());
    EXPECT_EQ(EV["cat"].stringOr(""), "gc");
    EXPECT_TRUE(EV["args"]["cycle"].isNumber());
    EXPECT_TRUE(EV["args"]["gc_thread"].isBool());
    if (Ph == "B" || Ph == "E") {
      ++Durations;
    } else {
      ASSERT_EQ(Ph, "i") << "unexpected phase type";
      ++Instants;
      // Instants need a scope or chrome://tracing refuses to render them.
      EXPECT_EQ(EV["s"].stringOr(""), "t");
      // Addresses must be strings: 64-bit ints overflow JSON doubles.
      std::string Name = EV["name"].stringOr("");
      if (Name == "ec_page_considered" || Name == "ec_page_reclaimed") {
        EXPECT_TRUE(EV["args"]["page"].isString());
      }
      if (Name == "hot_flag") {
        EXPECT_TRUE(EV["args"]["addr"].isString());
      }
      if (Name == "relocation") {
        EXPECT_TRUE(EV["args"]["from"].isString());
        EXPECT_TRUE(EV["args"]["to"].isString());
      }
    }
  }
  EXPECT_EQ(Meta, T.Threads.size());
  EXPECT_EQ(Durations + Instants, T.Events.size());
  // B/E events must balance for the timeline to nest properly.
  EXPECT_EQ(Durations % 2, 0u);
}

TEST(TraceJsonTest, EcSelectPhaseCarriesKnobSettings) {
  CollectedTrace T = makeFullTrace();
  JsonValue Doc;
  std::string Error;
  ASSERT_TRUE(parseJson(chromeTraceToString(T), Doc, Error)) << Error;

  bool Found = false;
  for (const JsonValue &EV : Doc["traceEvents"].array()) {
    if (EV["name"].stringOr("") != "ec_select" ||
        EV["ph"].stringOr("") != "B")
      continue;
    Found = true;
    EXPECT_DOUBLE_EQ(EV["args"]["confidence"].numberOr(-1), 1.0 / 3.0);
    EXPECT_TRUE(EV["args"]["hotness"].isBool());
    EXPECT_TRUE(EV["args"]["hotness"].boolean());
  }
  EXPECT_TRUE(Found);
}

TEST(TraceJsonTest, LoaderSkipsForeignEventsAndSortsByTime) {
  // A document with foreign events (other tools' categories) interleaved
  // and events out of timestamp order: the loader must keep only ours,
  // time-sorted.
  std::string Json =
      "{\"traceEvents\":["
      "{\"name\":\"relocation\",\"cat\":\"gc\",\"ph\":\"i\",\"ts\":5.0,"
      "\"pid\":1,\"tid\":1,\"s\":\"t\",\"args\":{\"cycle\":3,"
      "\"gc_thread\":true,\"from\":\"0x10\",\"to\":\"0x20\","
      "\"bytes\":32}},"
      "{\"name\":\"MinorGC\",\"cat\":\"v8\",\"ph\":\"X\",\"ts\":1.0,"
      "\"pid\":1,\"tid\":1,\"dur\":3,\"args\":{}},"
      "{\"name\":\"hot_flag\",\"cat\":\"gc\",\"ph\":\"i\",\"ts\":2.0,"
      "\"pid\":1,\"tid\":1,\"s\":\"t\",\"args\":{\"cycle\":3,"
      "\"gc_thread\":false,\"addr\":\"0xabc\",\"bytes\":16}},"
      "17,"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"app\"}}"
      "]}";
  CollectedTrace T;
  std::string Error;
  ASSERT_TRUE(readChromeTrace(Json, T, Error)) << Error;
  ASSERT_EQ(T.Events.size(), 2u);
  EXPECT_EQ(T.Events[0].Kind, TraceEventKind::HotFlag);
  EXPECT_EQ(T.Events[0].TimeNs, 2000u);
  EXPECT_EQ(T.Events[0].A, 0xabcu);
  EXPECT_EQ(T.Events[1].Kind, TraceEventKind::Relocation);
  EXPECT_EQ(T.Events[1].TimeNs, 5000u);
  EXPECT_EQ(T.Events[1].C, 32u);
  EXPECT_EQ(T.DroppedTotal, 0u); // no otherData: defaults to zero
}

TEST(TraceJsonTest, LoaderRejectsMalformedInput) {
  CollectedTrace T;
  std::string Error;

  EXPECT_FALSE(readChromeTrace("{\"traceEvents\":[", T, Error));
  EXPECT_FALSE(Error.empty());

  Error.clear();
  EXPECT_FALSE(readChromeTrace("{\"notATrace\":true}", T, Error));
  EXPECT_NE(Error.find("traceEvents"), std::string::npos);

  Error.clear();
  EXPECT_FALSE(readChromeTrace("[1,2,3]", T, Error));
}

TEST(TraceJsonTest, EmptyTraceStillWellFormed) {
  CollectedTrace Empty;
  std::string Json = chromeTraceToString(Empty);
  CollectedTrace Back;
  std::string Error;
  ASSERT_TRUE(readChromeTrace(Json, Back, Error)) << Error;
  EXPECT_TRUE(Back.Events.empty());
  EXPECT_TRUE(Back.Threads.empty());
  EXPECT_EQ(Back.DroppedTotal, 0u);
}
