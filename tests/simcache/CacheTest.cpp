//===- tests/simcache/CacheTest.cpp ------------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "simcache/Cache.h"

#include <gtest/gtest.h>

using namespace hcsgc;

TEST(CacheTest, ColdMissThenHit) {
  SetAssocCache C(16, 2);
  EXPECT_FALSE(C.access(100));
  EXPECT_TRUE(C.access(100));
  EXPECT_TRUE(C.contains(100));
}

TEST(CacheTest, DistinctSetsDontConflict) {
  SetAssocCache C(16, 1);
  EXPECT_FALSE(C.access(0));
  EXPECT_FALSE(C.access(1)); // different set
  EXPECT_TRUE(C.access(0));
  EXPECT_TRUE(C.access(1));
}

TEST(CacheTest, DirectMappedConflictEvicts) {
  SetAssocCache C(16, 1);
  // Lines 0 and 16 map to the same set in a 16-set cache.
  EXPECT_FALSE(C.access(0));
  EXPECT_FALSE(C.access(16));
  EXPECT_FALSE(C.contains(0));
  EXPECT_FALSE(C.access(0)); // evicted, miss again
}

TEST(CacheTest, LruEvictsLeastRecentlyUsed) {
  SetAssocCache C(1, 2); // one set, two ways
  C.access(1);
  C.access(2);
  C.access(1);           // 2 is now LRU
  C.access(3);           // evicts 2
  EXPECT_TRUE(C.contains(1));
  EXPECT_FALSE(C.contains(2));
  EXPECT_TRUE(C.contains(3));
}

TEST(CacheTest, LruFourWays) {
  SetAssocCache C(1, 4);
  for (uint64_t L = 0; L < 4; ++L)
    C.access(L * 1); // fill: 0,1,2,3 (0 is LRU)
  C.access(0);       // 1 becomes LRU
  C.access(4);       // evicts 1
  EXPECT_TRUE(C.contains(0));
  EXPECT_FALSE(C.contains(1));
  EXPECT_TRUE(C.contains(2));
  EXPECT_TRUE(C.contains(3));
  EXPECT_TRUE(C.contains(4));
}

TEST(CacheTest, FillInsertsWithoutDemand) {
  SetAssocCache C(16, 2);
  C.fill(5);
  EXPECT_TRUE(C.access(5)); // prefetch made this a hit
}

TEST(CacheTest, WorkingSetWithinCapacityAllHits) {
  SetAssocCache C(64, 8); // 512 lines
  for (int Round = 0; Round < 3; ++Round) {
    size_t Misses = 0;
    for (uint64_t L = 0; L < 512; ++L)
      if (!C.access(L))
        ++Misses;
    if (Round == 0)
      EXPECT_EQ(Misses, 512u);
    else
      EXPECT_EQ(Misses, 0u);
  }
}

TEST(CacheTest, ClearDropsContents) {
  SetAssocCache C(4, 2);
  C.access(9);
  C.clear();
  EXPECT_FALSE(C.contains(9));
  EXPECT_FALSE(C.access(9));
}

TEST(CacheTest, LargeTagsDisambiguated) {
  SetAssocCache C(16, 2);
  uint64_t A = 16 * 1000 + 3, B = 16 * 2000 + 3; // same set, diff tags
  C.access(A);
  C.access(B);
  EXPECT_TRUE(C.contains(A));
  EXPECT_TRUE(C.contains(B));
}
