//===- tests/simcache/HierarchyTest.cpp ----------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "simcache/Hierarchy.h"

#include "support/Random.h"

#include "TestSeeds.h"

#include <gtest/gtest.h>

using namespace hcsgc;

TEST(HierarchyTest, CountsLoadsAndStores) {
  CacheHierarchy H;
  H.onLoad(0, 8);
  H.onLoad(64, 8);
  H.onStore(128, 8);
  EXPECT_EQ(H.counters().Loads, 2u);
  EXPECT_EQ(H.counters().Stores, 1u);
}

TEST(HierarchyTest, RepeatedAccessHitsL1) {
  CacheHierarchy H;
  H.onLoad(1000, 8);
  uint64_t MissesAfterFirst = H.counters().L1Misses;
  for (int I = 0; I < 100; ++I)
    H.onLoad(1000, 8);
  EXPECT_EQ(H.counters().L1Misses, MissesAfterFirst);
}

TEST(HierarchyTest, StraddlingAccessTouchesTwoLines) {
  CacheHierarchy H;
  H.onLoad(60, 8); // crosses the 64-byte boundary
  EXPECT_EQ(H.counters().Loads, 1u);
  EXPECT_EQ(H.counters().L1Misses, 2u);
}

TEST(HierarchyTest, SequentialCheaperThanRandom) {
  CacheConfig Cfg;
  CacheHierarchy Seq(Cfg), Rnd(Cfg);
  SplitMix64 Rng(test::testSeed(31));
  constexpr int N = 100000;
  for (int I = 0; I < N; ++I)
    Seq.onLoad(static_cast<uintptr_t>(I) * 32, 8);
  for (int I = 0; I < N; ++I)
    Rnd.onLoad(Rng.nextBelow(64u << 20), 8);
  // The stream prefetcher plus line reuse must make the sequential walk
  // far cheaper — this differential is the core effect the whole
  // reproduction measures.
  EXPECT_LT(Seq.counters().Cycles * 3, Rnd.counters().Cycles);
  EXPECT_LT(Seq.counters().LlcMisses * 5, Rnd.counters().LlcMisses);
}

TEST(HierarchyTest, PrefetchDisabledIsSlowerSequential) {
  CacheConfig On, Off;
  Off.PrefetchEnabled = false;
  CacheHierarchy HOn(On), HOff(Off);
  for (int I = 0; I < 50000; ++I) {
    HOn.onLoad(static_cast<uintptr_t>(I) * 64, 8);
    HOff.onLoad(static_cast<uintptr_t>(I) * 64, 8);
  }
  EXPECT_LT(HOn.counters().Cycles, HOff.counters().Cycles);
  EXPECT_GT(HOn.counters().PrefetchesIssued, 0u);
  EXPECT_EQ(HOff.counters().PrefetchesIssued, 0u);
}

TEST(HierarchyTest, WorkingSetBeyondLlcMissesLlc) {
  CacheHierarchy H;
  // Walk 16 MiB (4x the 4 MiB LLC) twice: second pass still misses LLC.
  constexpr uintptr_t Span = 16u << 20;
  for (int Pass = 0; Pass < 2; ++Pass)
    for (uintptr_t A = 0; A < Span; A += 64)
      H.onLoad(A, 8);
  EXPECT_GT(H.counters().LlcMisses, 0u);
}

TEST(HierarchyTest, SmallWorkingSetStaysInLlc) {
  CacheConfig Cfg;
  Cfg.PrefetchEnabled = false;
  CacheHierarchy H(Cfg);
  constexpr uintptr_t Span = 512 * 1024; // fits LLC, beyond L1/L2
  for (int Pass = 0; Pass < 4; ++Pass)
    for (uintptr_t A = 0; A < Span; A += 64)
      H.onLoad(A, 8);
  uint64_t Lines = Span / 64;
  // Only the first pass's cold misses reach memory.
  EXPECT_EQ(H.counters().LlcMisses, Lines);
}

TEST(HierarchyTest, ComputeAddsCycles) {
  CacheHierarchy H;
  uint64_t Before = H.counters().Cycles;
  H.onCompute(1234);
  EXPECT_EQ(H.counters().Cycles, Before + 1234);
}

TEST(HierarchyTest, CountersAggregate) {
  CacheCounters A, B;
  A.Loads = 10;
  A.Cycles = 100;
  B.Loads = 5;
  B.LlcMisses = 2;
  A += B;
  EXPECT_EQ(A.Loads, 15u);
  EXPECT_EQ(A.Cycles, 100u);
  EXPECT_EQ(A.LlcMisses, 2u);
}

TEST(HierarchyTest, ResetCountersKeepsContents) {
  CacheHierarchy H;
  H.onLoad(64, 8);
  H.resetCounters();
  EXPECT_EQ(H.counters().Loads, 0u);
  H.onLoad(64, 8); // still resident
  EXPECT_EQ(H.counters().L1Misses, 0u);
}
